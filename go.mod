module aggmac

go 1.24
