// Integration tests: cross-module scenarios running the full stack —
// PHY model, channel, DCF MAC with aggregation, network layer, routing,
// TCP/UDP/flooding — together.
package main

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/flood"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/rate"
	"aggmac/internal/routing"
	"aggmac/internal/tcp"
	"aggmac/internal/topology"
	"aggmac/internal/udp"
)

func baOpts(i, n int) mac.Options { return mac.DefaultOptions(mac.BA, phy.Rate1300k) }

// TestMixedWorkload runs TCP, UDP and flooding simultaneously on one
// 2-hop chain: everything must make progress and finish.
func TestMixedWorkload(t *testing.T) {
	net := topology.NewLinear(2, topology.Config{Seed: 5, Phy: phy.DefaultParams(), OptsFor: baOpts})

	// TCP 0 -> 2.
	stacks := make([]*tcp.Stack, 3)
	for i, n := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, n, tcp.DefaultConfig())
	}
	var tcpRcvd int
	lis := stacks[2].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { tcpRcvd += len(b) }
		c.OnPeerClose = func() { c.Close() }
	}

	// UDP 2 -> 0 (opposite direction).
	eps := make([]*udp.Endpoint, 3)
	for i, n := range net.Nodes {
		eps[i] = udp.NewEndpoint(net.Sched, n)
	}
	sink := udp.NewSink(eps[0], 9000)
	sender := &udp.Sender{Endpoint: eps[2], Dst: 0, SrcPort: 9001, DstPort: 9000,
		PayloadBytes: 500, Interval: 40 * time.Millisecond, Burst: 1}

	// Flooding from the relay.
	gen := flood.NewGenerator(net.Sched, net.Nodes[1], 300*time.Millisecond)
	floods := flood.NewCounter(net.Nodes[0])

	net.Sched.After(0, "start", func() {
		sender.Start()
		gen.Start()
		conn := stacks[0].Connect(2, 80)
		conn.OnEstablished = func() {
			_ = conn.Send(make([]byte, 100_000))
			conn.Close()
		}
	})
	net.Sched.RunUntil(60 * time.Second)
	sender.Stop()
	gen.Stop()

	if tcpRcvd != 100_000 {
		t.Errorf("TCP moved %d of 100000 bytes under mixed load", tcpRcvd)
	}
	if sink.Packets < 100 {
		t.Errorf("UDP delivered only %d packets under mixed load", sink.Packets)
	}
	if floods.Received < 10 {
		t.Errorf("floods delivered: %d", floods.Received)
	}
}

// TestFiveHopChain checks deep chains still converge.
func TestFiveHopChain(t *testing.T) {
	res := core.RunTCP(core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 5,
		FileBytes: 60_000, Seed: 7})
	if !res.Completed {
		t.Fatal("5-hop transfer did not complete")
	}
	h2 := core.RunTCP(core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2,
		FileBytes: 60_000, Seed: 7})
	if res.ThroughputMbps >= h2.ThroughputMbps {
		t.Errorf("5-hop (%.3f) not slower than 2-hop (%.3f)", res.ThroughputMbps, h2.ThroughputMbps)
	}
}

// TestBidirectionalSessions runs two TCP transfers in opposite directions
// on one chain: both complete, and both directions' data frames aggregate.
func TestBidirectionalSessions(t *testing.T) {
	net := topology.NewLinear(2, topology.Config{Seed: 11, Phy: phy.DefaultParams(), OptsFor: baOpts})
	stacks := make([]*tcp.Stack, 3)
	for i, n := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, n, tcp.DefaultConfig())
	}
	rcvd := map[string]int{}
	setup := func(st *tcp.Stack, port uint16, key string) {
		lis := st.Listen(port)
		lis.Setup = func(c *tcp.Conn) {
			c.OnData = func(b []byte) { rcvd[key] += len(b) }
			c.OnPeerClose = func() { c.Close() }
		}
	}
	setup(stacks[2], 80, "fwd")
	setup(stacks[0], 81, "rev")
	net.Sched.After(0, "fwd", func() {
		c := stacks[0].Connect(2, 80)
		c.OnEstablished = func() { _ = c.Send(make([]byte, 80_000)); c.Close() }
	})
	net.Sched.After(3*time.Millisecond, "rev", func() {
		c := stacks[2].Connect(0, 81)
		c.OnEstablished = func() { _ = c.Send(make([]byte, 80_000)); c.Close() }
	})
	net.Sched.RunUntil(120 * time.Second)
	if rcvd["fwd"] != 80_000 || rcvd["rev"] != 80_000 {
		t.Fatalf("bidirectional transfers incomplete: %+v", rcvd)
	}
	// The relay carried both directions: data frames for both endpoints.
	if fw := net.Nodes[1].Stats().Forwarded; fw < 100 {
		t.Errorf("relay forwarded only %d packets", fw)
	}
}

// TestLinkFlapRecovery cuts the relay-client link mid-transfer for two
// seconds; MAC retries drop the bundles, TCP times out and recovers after
// the link returns.
func TestLinkFlapRecovery(t *testing.T) {
	net := topology.NewLinear(2, topology.Config{Seed: 13, Phy: phy.DefaultParams(), OptsFor: baOpts})
	stacks := make([]*tcp.Stack, 3)
	for i, n := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, n, tcp.DefaultConfig())
	}
	var rcvdBuf bytes.Buffer
	lis := stacks[2].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvdBuf.Write(b) }
		c.OnPeerClose = func() { c.Close() }
	}
	data := make([]byte, 120_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	net.Sched.After(0, "go", func() {
		c := stacks[0].Connect(2, 80)
		c.OnEstablished = func() { _ = c.Send(data); c.Close() }
	})
	net.Sched.After(500*time.Millisecond, "cut", func() {
		net.Medium.SetConnected(1, 2, false)
	})
	net.Sched.After(2500*time.Millisecond, "heal", func() {
		net.Medium.SetConnected(1, 2, true)
	})
	net.Sched.RunUntil(180 * time.Second)
	if !bytes.Equal(rcvdBuf.Bytes(), data) {
		t.Fatalf("after link flap: %d of %d bytes, content ok=%v",
			rcvdBuf.Len(), len(data), bytes.HasPrefix(data, rcvdBuf.Bytes()))
	}
	if d := net.Nodes[1].MAC().Counters().Drops; d == 0 {
		t.Error("relay never dropped a bundle during the outage")
	}
}

// TestNoUndetectedCorruption: on a noisy channel, every payload that
// reaches the application is byte-perfect — the FCS catches all damage.
func TestNoUndetectedCorruption(t *testing.T) {
	net := topology.NewLinear(1, topology.Config{Seed: 17, Phy: phy.DefaultParams(), OptsFor: baOpts})
	net.Medium.SetSNR(0, 1, 13) // heavy frame loss at QPSK
	eps := []*udp.Endpoint{udp.NewEndpoint(net.Sched, net.Nodes[0]), udp.NewEndpoint(net.Sched, net.Nodes[1])}
	bad := 0
	good := 0
	eps[1].Listen(9000, func(_ network.NodeID, d udp.Datagram) {
		for i, b := range d.Payload {
			if b != byte(i*31) {
				bad++
				return
			}
		}
		good++
	})
	payload := make([]byte, 800)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	n := 0
	var send func()
	send = func() {
		if n >= 300 {
			return
		}
		n++
		_ = eps[0].Send(1, 9001, 9000, payload)
		net.Sched.After(30*time.Millisecond, "next", send)
	}
	net.Sched.After(0, "start", send)
	net.Sched.RunUntil(30 * time.Second)
	if bad != 0 {
		t.Fatalf("%d corrupted payloads reached the application", bad)
	}
	if good == 0 {
		t.Fatal("nothing delivered at all")
	}
}

// TestFullStackTogether combines dynamic routing, rate adaptation, block
// ACKs and BA aggregation in one network.
func TestFullStackTogether(t *testing.T) {
	opts := func(i, n int) mac.Options {
		o := mac.DefaultOptions(mac.BA, phy.Rate650k)
		o.RateController = rate.NewRBAR(phy.DefaultParams(), phy.Rate650k)
		o.BlockAck = true
		o.AutoAggSize = true
		return o
	}
	net := topology.NewLinear(3, topology.Config{Seed: 19, Phy: phy.DefaultParams(), OptsFor: opts})
	// Radio-limit to adjacent hops and drop static routes: discovery runs.
	for i := 0; i < 4; i++ {
		for j := i + 2; j < 4; j++ {
			net.Medium.SetConnected(medium.NodeID(i), medium.NodeID(j), false)
		}
	}
	for _, n := range net.Nodes {
		for d := network.NodeID(0); d < 4; d++ {
			n.DelRoute(d)
		}
	}
	for _, n := range net.Nodes {
		routing.New(net.Sched, n, routing.DefaultConfig())
	}
	stacks := make([]*tcp.Stack, 4)
	for i, n := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, n, tcp.DefaultConfig())
	}
	var rcvd int
	lis := stacks[3].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvd += len(b) }
		c.OnPeerClose = func() { c.Close() }
	}
	net.Sched.After(0, "go", func() {
		c := stacks[0].Connect(3, 80)
		c.OnEstablished = func() { _ = c.Send(make([]byte, 60_000)); c.Close() }
	})
	net.Sched.RunUntil(180 * time.Second)
	if rcvd != 60_000 {
		t.Fatalf("full-stack transfer moved %d of 60000 bytes", rcvd)
	}
}

// TestExperimentDeterminism: identical configs and seeds give identical
// results across the whole experiment surface.
func TestExperimentDeterminism(t *testing.T) {
	u1 := core.RunUDP(core.UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2,
		FloodInterval: 200 * time.Millisecond, Seed: 23, Duration: 20 * time.Second})
	u2 := core.RunUDP(core.UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2,
		FloodInterval: 200 * time.Millisecond, Seed: 23, Duration: 20 * time.Second})
	if u1.ThroughputMbps != u2.ThroughputMbps || u1.SinkPackets != u2.SinkPackets ||
		u1.Delay.Mean != u2.Delay.Mean || u1.FloodsRcvd != u2.FloodsRcvd {
		t.Fatalf("UDP experiment not deterministic:\n%+v\n%+v", u1, u2)
	}
	s1 := core.RunTCP(core.TCPConfig{Scheme: mac.DBA, Rate: phy.Rate2600k, Star: true, Seed: 23})
	s2 := core.RunTCP(core.TCPConfig{Scheme: mac.DBA, Rate: phy.Rate2600k, Star: true, Seed: 23})
	if fmt.Sprint(s1.SessionMbps) != fmt.Sprint(s2.SessionMbps) {
		t.Fatalf("TCP star experiment not deterministic: %v vs %v", s1.SessionMbps, s2.SessionMbps)
	}
}

// TestDBATradesDelayForAggregation quantifies what the paper never
// measured: delayed BA's latency cost. On lightly paced traffic the
// 3-frame hold only adds flush-timeout delay (inter-arrivals exceed the
// flush, so aggregation cannot grow); on bursty arrivals the hold pays off
// as larger aggregates.
func TestDBATradesDelayForAggregation(t *testing.T) {
	run := func(scheme mac.Scheme, burst int, iv time.Duration) core.UDPResult {
		return core.RunUDP(core.UDPConfig{Scheme: scheme, Rate: phy.Rate1300k, Hops: 2,
			Burst: burst, Interval: iv, Seed: 29, Duration: 30 * time.Second})
	}
	// Light singles: pure delay cost, no aggregation benefit.
	ba := run(mac.BA, 1, 25*time.Millisecond)
	dba := run(mac.DBA, 1, 25*time.Millisecond)
	if dba.Delay.Mean <= ba.Delay.Mean {
		t.Errorf("DBA delay %v not above BA %v on paced traffic", dba.Delay.Mean, ba.Delay.Mean)
	}
	// Bursts of three: the hold converts into aggregation at the relay.
	dbaB := run(mac.DBA, 3, 75*time.Millisecond)
	relDBA := core.Relay(dbaB.Nodes).MAC
	if agg := relDBA.AvgSubframes(); agg < 2 {
		t.Errorf("DBA relay aggregation %.2f on bursty traffic, want >= 2", agg)
	}
}

// TestTinyQueuesStillComplete stresses drop-tail backpressure.
func TestTinyQueuesStillComplete(t *testing.T) {
	res := core.RunTCP(core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2,
		FileBytes: 60_000, Seed: 31,
		Tweak: func(o *mac.Options) { o.QueueLimit = 6 }})
	if !res.Completed {
		t.Fatal("transfer with 6-frame queues did not complete")
	}
}

// TestRadioLimitedChainWithRTS: hidden terminals exist when radios only
// reach neighbours; RTS/CTS keeps the loss bounded and the transfer
// completes.
func TestRadioLimitedChainWithRTS(t *testing.T) {
	net := topology.NewLinear(3, topology.Config{Seed: 37, Phy: phy.DefaultParams(), OptsFor: baOpts})
	for i := 0; i < 4; i++ {
		for j := i + 2; j < 4; j++ {
			net.Medium.SetConnected(medium.NodeID(i), medium.NodeID(j), false)
		}
	}
	stacks := make([]*tcp.Stack, 4)
	for i, n := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, n, tcp.DefaultConfig())
	}
	var rcvd int
	lis := stacks[3].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvd += len(b) }
		c.OnPeerClose = func() { c.Close() }
	}
	net.Sched.After(0, "go", func() {
		c := stacks[0].Connect(3, 80)
		c.OnEstablished = func() { _ = c.Send(make([]byte, 60_000)); c.Close() }
	})
	net.Sched.RunUntil(180 * time.Second)
	if rcvd != 60_000 {
		t.Fatalf("hidden-terminal chain moved %d of 60000 bytes", rcvd)
	}
}
