// Golden determinism tests: for one TCP and one UDP configuration per MAC
// scheme, the full result of a seeded run — every throughput float (exact
// bits), every per-node counter, and the scheduler's executed-event count —
// is hashed and pinned in testdata/golden.json.
//
// Any change to the event core, the PHY error model, or the channel that
// alters a single RNG draw, FIFO tie-break, or delivered byte changes these
// hashes. Performance PRs (pooled schedulers, memoized error models,
// zero-copy delivery) must keep them byte-identical; regenerate with
//
//	go test -run TestGolden -update
//
// only when an intentional behaviour change is being made, and say so in the
// commit message.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/traffic"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from the current implementation")

const goldenPath = "testdata/golden.json"

type goldenEntry struct {
	Hash      string `json:"hash"`
	EventsRun uint64 `json:"events_run"`
}

// hexFloat renders a float64 exactly (hex mantissa), so two runs hash equal
// only when every bit of every metric is equal.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func hashNodes(w *strings.Builder, nodes []core.NodeReport) {
	for _, n := range nodes {
		fmt.Fprintf(w, "node=%d role=%s mac=%+v net=%+v pre=%s\n",
			n.ID, n.Role, n.MAC, n.Net, hexFloat(n.PreambleBytes))
	}
}

func tcpGolden(scheme mac.Scheme) (string, uint64) {
	res := core.RunTCP(core.TCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k, Hops: 2,
		FileBytes: 30_000, Seed: 1,
	})
	var w strings.Builder
	fmt.Fprintf(&w, "tcp scheme=%s completed=%v elapsed=%d events=%d\n",
		scheme.Name(), res.Completed, int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "throughput=%s\n", hexFloat(res.ThroughputMbps))
	for _, m := range res.SessionMbps {
		fmt.Fprintf(&w, "session=%s\n", hexFloat(m))
	}
	for _, s := range res.Sessions {
		fmt.Fprintf(&w, "sess %d->%d done=%v finish=%d snd=%+v rcv=%+v\n",
			int(s.Server), int(s.Client), s.Done, int64(s.Finish), s.Sender, s.Receiver)
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

func udpGolden(scheme mac.Scheme) (string, uint64) {
	res := core.RunUDP(core.UDPConfig{
		Scheme: scheme, Rate: phy.Rate2600k, Hops: 2,
		Duration: 5 * time.Second, Warmup: 1 * time.Second, Seed: 1,
	})
	var w strings.Builder
	fmt.Fprintf(&w, "udp scheme=%s packets=%d events=%d\n",
		scheme.Name(), res.SinkPackets, res.EventsRun)
	fmt.Fprintf(&w, "throughput=%s\n", hexFloat(res.ThroughputMbps))
	fmt.Fprintf(&w, "delay n=%d mean=%d p50=%d p95=%d max=%d\n",
		res.Delay.Count, int64(res.Delay.Mean), int64(res.Delay.P50),
		int64(res.Delay.P95), int64(res.Delay.Max))
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

// meshGolden pins large-topology determinism the same way: the full result
// of a seeded many-flow mesh run — per-flow goodput bits, per-node
// counters, event count — hashed. Grid and random-disk layouts are both
// covered so generator placement, bridging, and shortest-path routing stay
// deterministic too.
func meshGolden(topo string, scheme mac.Scheme) (string, uint64) {
	res := core.RunMeshTCP(core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: topo, Nodes: 16, Flows: 3,
		FileBytes: 15_000, Seed: 1,
	})
	var w strings.Builder
	fmt.Fprintf(&w, "mesh topo=%s scheme=%s nodes=%d links=%d deg=%s completed=%v elapsed=%d events=%d\n",
		topo, scheme.Name(), res.NodeCount, res.LinkCount, hexFloat(res.AvgDegree),
		res.Completed, int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "agg=%s min=%s mean=%s done=%d\n",
		hexFloat(res.AggregateMbps), hexFloat(res.MinMbps), hexFloat(res.MeanMbps), res.FlowsDone)
	for _, f := range res.Flows {
		fmt.Fprintf(&w, "flow %d->%d hops=%d done=%v finish=%d mbps=%s\n",
			int(f.Server), int(f.Client), f.Hops, f.Done, int64(f.Finish), hexFloat(f.Mbps))
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

// meshParallelGolden pins the sharded engine: a K-shard run is documented as
// a pure function of (config, K), so its full result hashes just like a
// sequential mesh run. These entries catch any change that perturbs the
// shard partition, boundary replay order, or per-shard RNG streams.
func meshParallelGolden(topo string, scheme mac.Scheme, shards int) (string, uint64) {
	res := core.RunMeshTCP(core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: topo, Nodes: 36, Flows: 4,
		FileBytes: 8_000, Seed: 1, Shards: shards,
		Deadline: 300 * time.Second,
	})
	var w strings.Builder
	fmt.Fprintf(&w, "mesh-par topo=%s scheme=%s shards=%d nodes=%d links=%d deg=%s completed=%v elapsed=%d events=%d\n",
		topo, scheme.Name(), res.Shards, res.NodeCount, res.LinkCount, hexFloat(res.AvgDegree),
		res.Completed, int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "agg=%s min=%s mean=%s done=%d\n",
		hexFloat(res.AggregateMbps), hexFloat(res.MinMbps), hexFloat(res.MeanMbps), res.FlowsDone)
	for _, f := range res.Flows {
		fmt.Fprintf(&w, "flow %d->%d hops=%d done=%v finish=%d mbps=%s\n",
			int(f.Server), int(f.Client), f.Hops, f.Done, int64(f.Finish), hexFloat(f.Mbps))
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

// mobilityGolden pins the full time-varying pipeline: a seeded mobile-mesh
// run — waypoint or drift motion, delta link reconciliation, periodic
// route recomputation — hashed like meshGolden plus the churn counters
// (link ups/downs, route flaps, recompute rounds).
func mobilityGolden(kind string, scheme mac.Scheme, speed float64) (string, uint64) {
	res := core.RunMeshTCP(core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 16, Flows: 3,
		FileBytes: 15_000, Seed: 1,
		Mobility: kind, Speed: speed,
		Pause: time.Second, MoveInterval: 500 * time.Millisecond,
		Deadline: 300 * time.Second,
	})
	var w strings.Builder
	fmt.Fprintf(&w, "mobility kind=%s scheme=%s speed=%s nodes=%d links=%d completed=%v elapsed=%d events=%d\n",
		kind, scheme.Name(), hexFloat(speed), res.NodeCount, res.LinkCount,
		res.Completed, int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "churn ups=%d downs=%d flaps=%d recomputes=%d\n",
		res.LinkUps, res.LinkDowns, res.RouteFlaps, res.RouteRecomputes)
	fmt.Fprintf(&w, "agg=%s min=%s mean=%s done=%d\n",
		hexFloat(res.AggregateMbps), hexFloat(res.MinMbps), hexFloat(res.MeanMbps), res.FlowsDone)
	for _, f := range res.Flows {
		fmt.Fprintf(&w, "flow %d->%d hops=%d done=%v finish=%d mbps=%s\n",
			int(f.Server), int(f.Client), f.Hops, f.Done, int64(f.Finish), hexFloat(f.Mbps))
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

// faultGolden pins the fault-injection pipeline: a seeded faulty mesh run —
// crash/recover hooks, flap and partition link cuts through the overlay,
// killed-flow classification, stall and availability accounting — hashed
// like meshGolden plus every fault counter and degradation metric.
func faultGolden(kind string, scheme mac.Scheme) (string, uint64) {
	cfg := core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 16, Flows: 3,
		FileBytes: 15_000, Seed: 1,
		Deadline: 300 * time.Second,
	}
	switch kind {
	case "crash":
		cfg.Faults = &faults.Config{CrashMTBF: 20 * time.Second, CrashMTTR: 5 * time.Second}
	case "flap":
		cfg.Faults = &faults.Config{FlapMTBF: 10 * time.Second, FlapMTTR: 2 * time.Second}
	case "partition":
		cfg.Faults = &faults.Config{Partitions: []faults.Partition{
			{Start: 2 * time.Second, Duration: 10 * time.Second, Axis: faults.AxisX, At: 1.5},
		}}
	default:
		panic("unknown fault golden kind " + kind)
	}
	res := core.RunMeshTCP(cfg)
	var w strings.Builder
	fmt.Fprintf(&w, "faults kind=%s scheme=%s nodes=%d links=%d completed=%v elapsed=%d events=%d\n",
		kind, scheme.Name(), res.NodeCount, res.LinkCount,
		res.Completed, int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "churn ups=%d downs=%d flaps=%d recomputes=%d\n",
		res.LinkUps, res.LinkDowns, res.RouteFlaps, res.RouteRecomputes)
	fmt.Fprintf(&w, "faults crashes=%d recoveries=%d flapdowns=%d flapups=%d parts=%d/%d bursts=%d\n",
		res.NodeCrashes, res.NodeRecoveries, res.FaultLinkDowns, res.FaultLinkUps,
		res.PartitionsStarted, res.PartitionsHealed, res.SNRBursts)
	fmt.Fprintf(&w, "degradation killed=%d avail=%s heal=%d maxstall=%d meanstall=%d\n",
		res.FlowsKilledByFault, hexFloat(res.Availability), int64(res.MeanHealLatency),
		int64(res.MaxFlowStall), int64(res.MeanFlowStall))
	fmt.Fprintf(&w, "agg=%s min=%s mean=%s done=%d\n",
		hexFloat(res.AggregateMbps), hexFloat(res.MinMbps), hexFloat(res.MeanMbps), res.FlowsDone)
	for _, f := range res.Flows {
		fmt.Fprintf(&w, "flow %d->%d hops=%d done=%v killed=%v finish=%d stall=%d mbps=%s\n",
			int(f.Server), int(f.Client), f.Hops, f.Done, f.Killed,
			int64(f.Finish), int64(f.Stall), hexFloat(f.Mbps))
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

// scenarioGolden pins the workload engine: a seeded scenario run — flow
// arrivals, per-flow traffic sources, FCT accounting — hashed over every
// per-flow outcome (endpoints, model, arrival time, delivered bytes, FCT
// bits), the aggregate and per-model summaries, churn counters and
// per-node counters.
func scenarioGolden(mode string, scheme mac.Scheme) (string, uint64) {
	sc := traffic.Scenario{
		Version:   traffic.SchemaVersion,
		Name:      "golden-" + mode,
		Seed:      1,
		DurationS: 20,
		DeadlineS: 60,
		Schemes:   []string{"na", "ua", "ba", "dba"},
		RateMbps:  2.6,
		Topology:  traffic.Topology{Kind: "grid", Nodes: 16},
		Traffic: traffic.Traffic{
			Mode:        mode,
			ArrivalRate: 0.5,
			Users:       3,
			ThinkS:      1,
			Mix: []traffic.WeightedModel{
				{Model: traffic.Model{Kind: traffic.Pareto, Bytes: 8_000, MaxBytes: 80_000}, Weight: 2},
				{Model: traffic.Model{Kind: traffic.CBR, RateMbps: 0.05, PacketBytes: 600, DurationS: 3}, Weight: 1},
			},
		},
	}
	res := core.RunScenario(core.ScenarioConfig{Scenario: sc, Scheme: scheme})
	var w strings.Builder
	fmt.Fprintf(&w, "scenario mode=%s scheme=%s nodes=%d links=%d deg=%s elapsed=%d events=%d\n",
		mode, res.Scheme, res.NodeCount, res.LinkCount, hexFloat(res.AvgDegree),
		int64(res.Elapsed), res.EventsRun)
	fmt.Fprintf(&w, "churn started=%d done=%d abandoned=%d skipped=%d peak=%d\n",
		res.FlowsStarted, res.FlowsCompleted, res.FlowsAbandoned, res.FlowsSkipped, res.PeakActive)
	fmt.Fprintf(&w, "agg=%s delivered=%d fct mean=%d p50=%d p95=%d p99=%d max=%d n=%d\n",
		hexFloat(res.AggregateMbps), res.DeliveredBytes,
		int64(res.FCT.Mean), int64(res.FCT.P50), int64(res.FCT.P95),
		int64(res.FCT.P99), int64(res.FCT.Max), res.FCT.Count)
	for _, pm := range res.PerModel {
		fmt.Fprintf(&w, "model %s flows=%d done=%d bytes=%d mbps=%s p99=%d\n",
			pm.Kind, pm.Flows, pm.FlowsDone, pm.Bytes, hexFloat(pm.GoodputMbps), int64(pm.FCT.P99))
	}
	for _, f := range res.Flows {
		fmt.Fprintf(&w, "flow %d->%d model=%d hops=%d start=%d bytes=%d done=%v fct=%d\n",
			int(f.Server), int(f.Client), f.Model, f.Hops, int64(f.Start), f.Bytes, f.Done, int64(f.FCT))
	}
	hashNodes(&w, res.Nodes)
	return fmt.Sprintf("%x", sha256.Sum256([]byte(w.String()))), res.EventsRun
}

func goldenSchemes() []mac.Scheme {
	return []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA}
}

func runGoldens() map[string]goldenEntry {
	got := make(map[string]goldenEntry)
	for _, s := range goldenSchemes() {
		h, ev := tcpGolden(s)
		got["tcp/"+s.Name()] = goldenEntry{Hash: h, EventsRun: ev}
		h, ev = udpGolden(s)
		got["udp/"+s.Name()] = goldenEntry{Hash: h, EventsRun: ev}
	}
	for _, s := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		h, ev := meshGolden(core.MeshGrid, s)
		got["mesh-grid/"+s.Name()] = goldenEntry{Hash: h, EventsRun: ev}
		h, ev = meshGolden(core.MeshDisk, s)
		got["mesh-disk/"+s.Name()] = goldenEntry{Hash: h, EventsRun: ev}
	}
	for _, pc := range []struct {
		topo   string
		scheme mac.Scheme
		shards int
	}{
		{core.MeshGrid, mac.BA, 2},
		{core.MeshGrid, mac.BA, 4},
		{core.MeshDisk, mac.UA, 2},
	} {
		h, ev := meshParallelGolden(pc.topo, pc.scheme, pc.shards)
		got[fmt.Sprintf("mesh-par%d-%s/%s", pc.shards, pc.topo, pc.scheme.Name())] = goldenEntry{Hash: h, EventsRun: ev}
	}
	for _, mc := range []struct {
		kind   string
		scheme mac.Scheme
		speed  float64
	}{
		{core.MobilityWaypoint, mac.BA, 2},
		{core.MobilityWaypoint, mac.NA, 1},
		{core.MobilityDrift, mac.UA, 4},
	} {
		h, ev := mobilityGolden(mc.kind, mc.scheme, mc.speed)
		got[fmt.Sprintf("mobility-%s/%s", mc.kind, mc.scheme.Name())] = goldenEntry{Hash: h, EventsRun: ev}
	}
	for _, fg := range []struct {
		kind   string
		scheme mac.Scheme
	}{
		{"crash", mac.NA},
		{"crash", mac.BA},
		{"flap", mac.UA},
		{"flap", mac.BA},
		{"partition", mac.NA},
		{"partition", mac.UA},
	} {
		h, ev := faultGolden(fg.kind, fg.scheme)
		got[fmt.Sprintf("faults-%s/%s", fg.kind, fg.scheme.Name())] = goldenEntry{Hash: h, EventsRun: ev}
	}
	for _, sg := range []struct {
		mode   string
		scheme mac.Scheme
	}{
		{traffic.ModeOpen, mac.BA},
		{traffic.ModeClosed, mac.UA},
	} {
		h, ev := scenarioGolden(sg.mode, sg.scheme)
		got[fmt.Sprintf("scenario-%s/%s", sg.mode, sg.scheme.Name())] = goldenEntry{Hash: h, EventsRun: ev}
	}
	return got
}

func TestGoldenDeterminism(t *testing.T) {
	got := runGoldens()

	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d entries", goldenPath, len(got))
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, run produced %d", len(want), len(got))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: missing from run", name)
			continue
		}
		if g.EventsRun != w.EventsRun {
			t.Errorf("%s: EventsRun = %d, golden %d (the event sequence changed)",
				name, g.EventsRun, w.EventsRun)
		}
		if g.Hash != w.Hash {
			t.Errorf("%s: output hash %s, golden %s (output is no longer byte-identical)",
				name, g.Hash, w.Hash)
		}
	}
}
