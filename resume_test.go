// Crash-safety gate: a sweep SIGKILLed mid-matrix and re-run with -resume
// must produce output byte-identical to an uninterrupted run, serving the
// already-completed cells from the store. Exercises the real binaries as
// subprocesses — the kill has to land on a live process, not a test seam.
package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"aggmac/internal/store"
)

// buildBinary compiles a command for subprocess tests.
func buildBinary(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func countObjects(dir string) int {
	m, _ := filepath.Glob(filepath.Join(dir, "objects", "*.json"))
	return len(m)
}

var cachedRe = regexp.MustCompile(`(\d+) cell\(s\) cached`)

// TestKillAndResumeByteIdentical is the acceptance gate for crash-safe
// sweeps: reference run (no store), interrupted run (killed after at least
// two cells land durably), resumed run — whose stdout must equal the
// reference byte for byte, with at least one cell served from the cache.
func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills subprocesses")
	}
	bin := buildBinary(t, "./cmd/aggbench")
	args := []string{"-quick", "-exp", "fig7", "-seed", "3", "-json"}

	ref, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	storeDir := filepath.Join(t.TempDir(), "results")
	withStore := append(append([]string{}, args...), "-store", storeDir, "-resume", "-parallel", "1")

	// Interrupted run: serial so cells land one at a time, killed as soon
	// as a couple of objects are durably on disk.
	victim := exec.Command(bin, withStore...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	for deadline := time.Now().Add(60 * time.Second); time.Now().Before(deadline); {
		if countObjects(storeDir) >= 2 {
			_ = victim.Process.Kill()
			killed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	_ = victim.Wait()
	if !killed {
		t.Fatal("sweep never landed two cells; nothing to interrupt")
	}
	landed := countObjects(storeDir)
	if landed < 2 {
		t.Fatalf("only %d objects on disk after the kill", landed)
	}

	// Resumed run: must finish cleanly, match the uninterrupted output
	// exactly, and report the surviving cells as cache hits.
	var stdout, stderr bytes.Buffer
	resumed := exec.Command(bin, withStore...)
	resumed.Stdout, resumed.Stderr = &stdout, &stderr
	if err := resumed.Run(); err != nil {
		t.Fatalf("resumed run failed: %v\nstderr: %s", err, stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), ref) {
		t.Error("resumed run's stdout differs from the uninterrupted run")
	}
	m := cachedRe.FindStringSubmatch(stderr.String())
	if m == nil {
		t.Fatalf("no resume summary on stderr: %q", stderr.String())
	}
	if cached, _ := strconv.Atoi(m[1]); cached < 1 {
		t.Errorf("resume summary reports %d cached cells, want >= 1 (stderr: %s)", cached, stderr.String())
	}

	// A third run over the warm store executes nothing at all.
	stdout.Reset()
	stderr.Reset()
	warm := exec.Command(bin, withStore...)
	warm.Stdout, warm.Stderr = &stdout, &stderr
	if err := warm.Run(); err != nil {
		t.Fatalf("warm run failed: %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), ref) {
		t.Error("warm run's stdout differs from the uninterrupted run")
	}
	if m := cachedRe.FindStringSubmatch(stderr.String()); m == nil || m[1] == "0" {
		t.Errorf("warm run served nothing from cache: %s", stderr.String())
	}
}

func exitCode(t *testing.T, bin string, args ...string) int {
	t.Helper()
	err := exec.Command(bin, args...).Run()
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	t.Fatalf("%s %v: %v", bin, args, err)
	return -1
}

// TestUsageErrorsExitTwoWithoutTouchingStore pins the exit-code contract:
// flag/validation problems exit 2 and never create the store directory,
// keeping them distinguishable from run failures (exit 1) in scripts.
func TestUsageErrorsExitTwoWithoutTouchingStore(t *testing.T) {
	if testing.Short() {
		t.Skip("builds subprocesses")
	}
	bench := buildBinary(t, "./cmd/aggbench")
	sim := buildBinary(t, "./cmd/aggsim")
	storeDir := filepath.Join(t.TempDir(), "never-created")

	cases := []struct {
		name string
		bin  string
		args []string
	}{
		{"bench unknown experiment", bench, []string{"-exp", "no-such-exp", "-store", storeDir, "-resume"}},
		{"bench resume without store", bench, []string{"-resume", "-exp", "fig7"}},
		{"bench negative retries", bench, []string{"-retries", "-1", "-exp", "fig7", "-store", storeDir}},
		{"bench json+csv", bench, []string{"-json", "-csv", "-store", storeDir}},
		{"sim resume without store", sim, []string{"-resume"}},
		{"sim store on single run", sim, []string{"-store", storeDir}},
		{"sim store on mesh run", sim, []string{"-topo", "grid", "-store", storeDir}},
		{"sim store with trace", sim, []string{"-scheme", "na,ba", "-store", storeDir, "-trace"}},
	}
	for _, c := range cases {
		if code := exitCode(t, c.bin, c.args...); code != 2 {
			t.Errorf("%s: exit code %d, want 2", c.name, code)
		}
	}
	if _, err := os.Stat(storeDir); !os.IsNotExist(err) {
		t.Error("a usage error created the store directory")
	}
}

// TestLockedStoreExitsOne: environment failures (another writer holds the
// store) are run failures, exit 1 — not usage errors.
func TestLockedStoreExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("builds subprocesses")
	}
	bench := buildBinary(t, "./cmd/aggbench")
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code := exitCode(t, bench, "-quick", "-exp", "fig7", "-store", dir); code != 1 {
		t.Errorf("locked store: exit code %d, want 1", code)
	}
}
