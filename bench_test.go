// Benchmarks regenerating the paper's evaluation. One benchmark per table
// and figure (run cmd/aggbench for the full formatted rows), plus ablation
// benches for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Throughput experiments report their headline metric via b.ReportMetric
// (Mbps or percent), so `-bench` output doubles as a compact reproduction
// record. Simulated seconds per wall-clock second is the performance figure
// of the simulator itself.
package main

import (
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/experiments"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/tcp"
	"aggmac/internal/traffic"
)

func runWithMACTweak(seed int64, tweak func(*mac.Options)) core.TCPResult {
	return core.RunTCP(core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2,
		Seed: seed, Tweak: tweak})
}

func runStarWithMACTweak(seed int64, tweak func(*mac.Options)) core.TCPResult {
	return core.RunTCP(core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Star: true,
		Seed: seed, Tweak: tweak})
}

func defaultTCP() tcp.Config { return tcp.DefaultConfig() }

var quick = experiments.Options{Seed: 1, Quick: true}

// benchTable runs a whole experiment regeneration per iteration and reports
// the first row's first value so regressions are visible in bench output.
func benchTable(b *testing.B, run func(experiments.Options) experiments.Table, metric string) {
	b.Helper()
	b.ReportAllocs()
	var tab experiments.Table
	for i := 0; i < b.N; i++ {
		tab = run(quick)
	}
	if len(tab.Rows) > 0 && len(tab.Rows[0].Values) > 0 {
		last := tab.Rows[len(tab.Rows)-1]
		b.ReportMetric(last.Values[len(last.Values)-1], metric)
	}
}

func BenchmarkFigure7(b *testing.B)  { benchTable(b, experiments.Figure7, "Mbps") }
func BenchmarkTable2(b *testing.B)   { benchTable(b, experiments.Table2, "pct") }
func BenchmarkFigure8(b *testing.B)  { benchTable(b, experiments.Figure8, "Mbps") }
func BenchmarkFigure9(b *testing.B)  { benchTable(b, experiments.Figure9, "Mbps") }
func BenchmarkFigure10(b *testing.B) { benchTable(b, experiments.Figure10, "Mbps") }
func BenchmarkFigure11(b *testing.B) { benchTable(b, experiments.Figure11, "Mbps") }
func BenchmarkFigure12(b *testing.B) { benchTable(b, experiments.Figure12, "Mbps") }
func BenchmarkFigure13(b *testing.B) { benchTable(b, experiments.Figure13, "Mbps") }
func BenchmarkFigure14(b *testing.B) { benchTable(b, experiments.Figure14, "Mbps") }
func BenchmarkTable3(b *testing.B)   { benchTable(b, experiments.Table3, "pct") }
func BenchmarkTable4(b *testing.B)   { benchTable(b, experiments.Table4, "pct") }
func BenchmarkTable5to7(b *testing.B) {
	benchTable(b, experiments.Tables5to7, "pct")
}
func BenchmarkTable8(b *testing.B) { benchTable(b, experiments.Table8, "bytes") }

// benchTCP runs one TCP experiment per iteration, reporting throughput and
// the simulation speed (simulated seconds per wall second).
func benchTCP(b *testing.B, cfg core.TCPConfig) {
	b.Helper()
	b.ReportAllocs()
	var res core.TCPResult
	start := time.Now()
	var simulated time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = core.RunTCP(cfg)
		simulated += res.Elapsed
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simulated.Seconds()/wall, "simsec/sec")
	}
}

// Headline single-configuration benches.
func BenchmarkTCP2HopNA(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2})
}
func BenchmarkTCP2HopUA(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Hops: 2})
}
func BenchmarkTCP2HopBA(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2})
}
func BenchmarkTCP2HopDBA(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.DBA, Rate: phy.Rate2600k, Hops: 2})
}
func BenchmarkTCPStarBA(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Star: true})
}

// benchMesh runs one mesh scaling cell per iteration (many concurrent TCP
// flows over a generated sparse topology), reporting aggregate goodput and
// simulation speed. The configs come from experiments.ScalingCell, so these
// benches measure exactly what `aggbench -exp scaling` runs; the Dense
// variant forces the O(N) dense-scan medium the neighbor index replaced —
// its simsec/sec against BenchmarkMeshGrid100BA is the tentpole's ≥5x
// acceptance ratio (see also BenchmarkMediumTx in internal/medium).
func benchMesh(b *testing.B, cfg core.MeshTCPConfig) {
	b.Helper()
	b.ReportAllocs()
	var res core.MeshResult
	start := time.Now()
	var simulated time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = core.RunMeshTCP(cfg)
		simulated += res.Elapsed
	}
	b.ReportMetric(res.AggregateMbps, "Mbps")
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simulated.Seconds()/wall, "simsec/sec")
	}
}

func BenchmarkMeshGrid100BA(b *testing.B) {
	benchMesh(b, experiments.ScalingCell(core.MeshGrid, mac.BA, 100, 0))
}
func BenchmarkMeshGrid400BA(b *testing.B) {
	benchMesh(b, experiments.ScalingCell(core.MeshGrid, mac.BA, 400, 0))
}
func BenchmarkMeshDisk100BA(b *testing.B) {
	benchMesh(b, experiments.ScalingCell(core.MeshDisk, mac.BA, 100, 0))
}
func BenchmarkMeshGrid100BADense(b *testing.B) {
	cfg := experiments.ScalingCell(core.MeshGrid, mac.BA, 100, 0)
	cfg.DenseScan = true
	benchMesh(b, cfg)
}

// The sharded variants run the identical scaling cell on the parallel
// engine; against their serial twins they price the conservative
// synchronization (and, on multi-core hardware, measure its speedup —
// compare simsec/sec). The 1600-node cell is the largest mesh the repo
// benchmarks and the regime the shard partition is designed for: at 4
// shards each strip is 10 grid columns, so boundary traffic is a small
// fraction of the whole.
func BenchmarkMeshGrid400BAShard4(b *testing.B) {
	cfg := experiments.ScalingCell(core.MeshGrid, mac.BA, 400, 0)
	cfg.Shards = 4
	benchMesh(b, cfg)
}
func BenchmarkMeshGrid1600BA(b *testing.B) {
	benchMesh(b, experiments.ScalingCell(core.MeshGrid, mac.BA, 1600, 0))
}
func BenchmarkMeshGrid1600BAShard4(b *testing.B) {
	cfg := experiments.ScalingCell(core.MeshGrid, mac.BA, 1600, 0)
	cfg.Shards = 4
	benchMesh(b, cfg)
}

// BenchmarkMeshGridWaypointBA is the mobility experiment's hottest cell
// (fast nodes, fast updates): it prices the whole time-varying path —
// waypoint stepping, delta link reconciliation, periodic route
// recomputation — on top of the usual many-flow traffic.
func BenchmarkMeshGridWaypointBA(b *testing.B) {
	benchMesh(b, experiments.MobilityCell(mac.BA, 4, 500*time.Millisecond, 0))
}

// benchScenario runs one offered-load cell per iteration: flow arrivals,
// per-flow traffic sources, FCT accounting and the usual mesh traffic
// underneath. The configs come from experiments.LoadCell, so these benches
// measure exactly what `aggbench -exp load` runs.
func benchScenario(b *testing.B, cfg core.ScenarioConfig) {
	b.Helper()
	b.ReportAllocs()
	var res core.ScenarioResult
	start := time.Now()
	var simulated time.Duration
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		res = core.RunScenario(cfg)
		simulated += res.Elapsed
	}
	b.ReportMetric(res.AggregateMbps, "Mbps")
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(simulated.Seconds()/wall, "simsec/sec")
	}
}

func BenchmarkScenarioOpenBA(b *testing.B) {
	benchScenario(b, experiments.LoadCell(traffic.ModeOpen, mac.BA, 1.0, 0, 0, false))
}
func BenchmarkScenarioClosedBA(b *testing.B) {
	benchScenario(b, experiments.LoadCell(traffic.ModeClosed, mac.BA, 0, 6, 0, false))
}

// ---- ablation benches (DESIGN.md §5) ----

// AblationRTS: is RTS/CTS worth its cost once frames are aggregated?
func BenchmarkAblationRTSOn(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2})
}

func BenchmarkAblationRTSOff(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = runWithMACTweak(int64(i+1), func(o *mac.Options) { o.UseRTSCTS = false })
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationBlockAck: all-or-nothing CRC rule vs per-subframe block ACKs at
// an aggregation size past the coherence budget.
func BenchmarkAblationAllOrNothingOversize(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = core.RunTCP(core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1,
			MaxAggBytes: 8192, FileBytes: 50_000, Seed: int64(i + 1),
			Deadline: 600 * time.Second})
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

func BenchmarkAblationBlockAckOversize(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = core.RunTCP(core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1,
			MaxAggBytes: 8192, FileBytes: 50_000, BlockAck: true, Seed: int64(i + 1),
			Deadline: 600 * time.Second})
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationGather: skip-over queue scan vs head-only runs on the star,
// where the centre interleaves destinations.
func BenchmarkAblationSkipOverGather(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Star: true})
}

func BenchmarkAblationHeadOnlyGather(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = runStarWithMACTweak(int64(i+1), func(o *mac.Options) { o.HeadOnlyGather = true })
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationDelayedAck: every-segment ACKing (the paper's stack) vs delayed
// ACKs under BA — fewer ACKs means less backward-aggregation benefit.
func BenchmarkAblationAckEverySegment(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2})
}

func BenchmarkAblationDelayedAck(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		cfg := core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2, Seed: int64(i + 1)}
		tcfg := defaultTCP()
		tcfg.DelayedAck = true
		cfg.TCP = tcfg
		res = core.RunTCP(cfg)
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationDBAThreshold: sensitivity of the delayed-BA frame threshold.
func BenchmarkAblationDBAThreshold2(b *testing.B) { benchDBAThreshold(b, 2) }
func BenchmarkAblationDBAThreshold3(b *testing.B) { benchDBAThreshold(b, 3) }
func BenchmarkAblationDBAThreshold4(b *testing.B) { benchDBAThreshold(b, 4) }

func benchDBAThreshold(b *testing.B, min int) {
	b.Helper()
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		s := mac.DBA
		s.DelayMinFrames = min
		res = core.RunTCP(core.TCPConfig{Scheme: s, Rate: phy.Rate2600k, Hops: 2, Seed: int64(i + 1)})
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationBroadcastPlacement: prepended (paper) vs appended broadcasts.
func BenchmarkAblationBroadcastFirst(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2})
}

func BenchmarkAblationBroadcastLast(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = runWithMACTweak(int64(i+1), func(o *mac.Options) { o.BroadcastLast = true })
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationAutoAggSize: the §7 rate-adaptive aggregation size at an unsafe
// cap.
func BenchmarkAblationAutoAggSize(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = core.RunTCP(core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1,
			MaxAggBytes: 8192, AutoAggSize: true, FileBytes: 50_000, Seed: int64(i + 1)})
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// AblationDedup: duplicate suppression (absent from the Hydra prototype,
// whose subframe header has no sequence field).
func BenchmarkAblationDedupOff(b *testing.B) {
	benchTCP(b, core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2})
}

func BenchmarkAblationDedupOn(b *testing.B) {
	b.ReportAllocs()
	var res core.TCPResult
	for i := 0; i < b.N; i++ {
		res = runWithMACTweak(int64(i+1), func(o *mac.Options) { o.DedupWindow = 64 })
	}
	b.ReportMetric(res.ThroughputMbps, "Mbps")
}

// Extension tables as benches.
func BenchmarkExtensionFairness(b *testing.B) {
	benchTable(b, experiments.ExtensionFairness, "jain")
}

func BenchmarkExtensionDelay(b *testing.B) {
	benchTable(b, experiments.ExtensionDelay, "ms")
}
