// Command aggsim runs a single configured experiment on the aggregation
// MAC simulator and prints throughput plus per-node detail.
//
// Examples:
//
//	aggsim -traffic tcp -scheme ba -rate 2.6 -hops 2
//	aggsim -traffic tcp -scheme dba -star -file 200000
//	aggsim -traffic udp -scheme na -rate 0.65 -hops 2 -flood 1s
//	aggsim -traffic udp -scheme ba -hops 1 -agg 8192   # past the cliff
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func schemeByName(name string) (mac.Scheme, error) {
	switch strings.ToLower(name) {
	case "na":
		return mac.NA, nil
	case "ua":
		return mac.UA, nil
	case "ba":
		return mac.BA, nil
	case "dba":
		return mac.DBA, nil
	}
	return mac.Scheme{}, fmt.Errorf("unknown scheme %q (na|ua|ba|dba)", name)
}

func main() {
	var (
		traffic  = flag.String("traffic", "tcp", "tcp or udp")
		scheme   = flag.String("scheme", "ba", "na | ua | ba | dba")
		rateMbps = flag.Float64("rate", 1.3, "PHY data rate in Mbps (0.65|1.3|1.95|2.6|...)")
		bcRate   = flag.Float64("bcast-rate", 0, "fixed broadcast-portion rate in Mbps (0 = same as unicast)")
		hops     = flag.Int("hops", 2, "linear chain hop count")
		star     = flag.Bool("star", false, "use the 2-session star topology (TCP only)")
		file     = flag.Int("file", core.PaperFileBytes, "TCP transfer size in bytes")
		agg      = flag.Int("agg", 5120, "maximum aggregation size in bytes")
		noFwd    = flag.Bool("no-forward-agg", false, "disable forward aggregation (Fig 14)")
		blockAck = flag.Bool("block-ack", false, "enable the block-ACK extension")
		autoAgg  = flag.Bool("auto-agg", false, "rate-adaptive aggregation size extension")
		flood    = flag.Duration("flood", 0, "flooding interval per node (UDP only; 0 = off)")
		dur      = flag.Duration("dur", 40*time.Second, "UDP measurement duration")
		seed     = flag.Int64("seed", 1, "simulation seed")
		verbose  = flag.Bool("v", false, "print per-node detail")
		doTrace  = flag.Bool("trace", false, "stream the channel timeline to stderr")
	)
	flag.Parse()
	var traceTo io.Writer
	if *doTrace {
		traceTo = os.Stderr
	}

	sch, err := schemeByName(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(2)
	}
	sch.DisableForwardAggregation = *noFwd
	rate, err := phy.RateFromMbps(*rateMbps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		os.Exit(2)
	}

	switch *traffic {
	case "tcp":
		cfg := core.TCPConfig{
			Scheme: sch, Rate: rate, Hops: *hops, Star: *star,
			FileBytes: *file, MaxAggBytes: *agg, Seed: *seed,
			BlockAck: *blockAck, AutoAggSize: *autoAgg,
			TraceTo: traceTo,
		}
		if *bcRate > 0 {
			br, err := phy.RateFromMbps(*bcRate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aggsim:", err)
				os.Exit(2)
			}
			cfg.FixedBroadcastRate = &br
		}
		res := core.RunTCP(cfg)
		fmt.Printf("scheme=%s rate=%v topology=%s\n", sch.Name(), rate, topoName(*hops, *star))
		for i, m := range res.SessionMbps {
			fmt.Printf("session %d: %.3f Mbps (done=%v)\n", i, m, res.Sessions[i].Done)
		}
		fmt.Printf("end-to-end throughput: %.3f Mbps (worst session), elapsed %v\n",
			res.ThroughputMbps, res.Elapsed.Round(time.Millisecond))
		if !res.Completed {
			fmt.Println("WARNING: not all sessions completed before the deadline")
		}
		if *verbose {
			printNodes(res.Nodes)
			for i, s := range res.Sessions {
				fmt.Printf("session %d sender: sent=%d rtx=%d fastRtx=%d timeouts=%d\n",
					i, s.Sender.SegsSent, s.Sender.Retransmits, s.Sender.FastRetransmits, s.Sender.Timeouts)
			}
		}
	case "udp":
		res := core.RunUDP(core.UDPConfig{
			Scheme: sch, Rate: rate, Hops: *hops, MaxAggBytes: *agg,
			FloodInterval: *flood, Duration: *dur, Seed: *seed,
			TraceTo: traceTo,
		})
		fmt.Printf("scheme=%s rate=%v hops=%d flood=%v\n", sch.Name(), rate, *hops, *flood)
		fmt.Printf("goodput: %.3f Mbps (%d packets delivered)\n", res.ThroughputMbps, res.SinkPackets)
		if *flood > 0 {
			fmt.Printf("flooding: %d sent, %d received\n", res.FloodsSent, res.FloodsRcvd)
		}
		if *verbose {
			printNodes(res.Nodes)
		}
	default:
		fmt.Fprintf(os.Stderr, "aggsim: unknown traffic %q (tcp|udp)\n", *traffic)
		os.Exit(2)
	}
}

func topoName(hops int, star bool) string {
	if star {
		return "star (2 sessions via centre)"
	}
	return fmt.Sprintf("%d-hop chain", hops)
}

func printNodes(nodes []core.NodeReport) {
	fmt.Printf("%-3s %-7s %7s %9s %7s %7s %8s %8s %7s\n",
		"id", "role", "dataTx", "avgFrameB", "subAvg", "retries", "sizeOv%", "timeOv%", "qDrops")
	for _, n := range nodes {
		fmt.Printf("%-3d %-7s %7d %9.0f %7.2f %7d %8.2f %8.2f %7d\n",
			n.ID, n.Role, n.MAC.DataTx, n.MAC.AvgFrameBytes(), n.MAC.AvgSubframes(),
			n.MAC.Retries, 100*n.MAC.SizeOverhead(n.PreambleBytes),
			100*n.MAC.TimeOverhead(), n.MAC.QueueDrops)
	}
}
