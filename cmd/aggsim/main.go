// Command aggsim runs configured experiments on the aggregation MAC
// simulator. With scalar flags it runs one sim and prints throughput plus
// per-node detail; give any of -scheme, -rate, or -hops a comma-separated
// list (or set -reps > 1) and it fans the whole parameter grid across a
// worker pool, with per-run seeds derived deterministically from -seed.
//
// Examples:
//
//	aggsim -traffic tcp -scheme ba -rate 2.6 -hops 2
//	aggsim -traffic tcp -scheme dba -star -file 200000
//	aggsim -traffic udp -scheme na -rate 0.65 -hops 2 -flood 1s
//	aggsim -traffic udp -scheme ba -hops 1 -agg 8192   # past the cliff
//	aggsim -traffic tcp -scheme na,ua,ba,dba -rate 0.65,1.3,1.95,2.6 -hops 1,2,3,4
//	aggsim -traffic udp -scheme ba -rate 1.3 -hops 2 -reps 8 -csv
//
// Generated mesh topologies (-topo) run many concurrent TCP flows over a
// grid, a seeded random disk graph, or parallel chains with cross traffic:
//
//	aggsim -topo grid -nodes 100 -flows 8 -scheme ba -rate 2.6
//	aggsim -topo disk -nodes 400 -flows 33 -file 30000
//	aggsim -topo chains -chains 4 -chain-hops 4 -cross-flows 2
//
// Mesh topologies can be made mobile (-mobility): nodes roam under a
// seeded motion model, links and per-link SNR follow the distances, and
// shortest-path routes are recomputed every -move-interval:
//
//	aggsim -topo grid -mobility waypoint -speed 2 -seed 7
//	aggsim -topo disk -nodes 49 -mobility drift -speed 4 -move-interval 500ms
//
// Workload mode replaces the "N flows forever" setup with flows that
// arrive and complete over time, reporting flow-completion-time
// percentiles: -scenario runs a declarative JSON file (one run per scheme
// it lists; see examples/scenarios), while -arrival-rate (open-loop
// Poisson arrivals) or -users (closed-loop think-time users) builds an
// ad-hoc workload from a single -traffic model on the -topo mesh:
//
//	aggsim -scenario examples/scenarios/web-open.json
//	aggsim -topo grid -nodes 25 -arrival-rate 0.5 -traffic pareto -scheme na,ua,ba
//	aggsim -topo disk -users 8 -think 2s -traffic cbr -dur 20s
//
// -json emits any single, mesh or scenario run as one machine-readable
// document; -trace (optionally narrowed by -trace-nodes) streams the
// channel timeline of single, mesh and scenario runs to stderr.
//
// Sweeps and scenario runs are crash-safe with -store DIR: every completed
// cell is flushed durably as it lands, and -resume serves already-stored
// cells instead of re-running them (see README "Crash-safe sweeps");
// -retries N re-executes transient failures. Exit codes: 0 success; 1 a
// run failed (or the store/output did); 2 flag/usage error — usage errors
// never touch the store.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/experiments"
	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/runner"
	"aggmac/internal/store"
	"aggmac/internal/telemetry"
	// Aliased: the -traffic flag variable shadows the package name here.
	wl "aggmac/internal/traffic"
)

func parseSchemes(list string) ([]mac.Scheme, error) {
	var out []mac.Scheme
	for _, s := range strings.Split(list, ",") {
		sch, err := mac.SchemeByName(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, sch)
	}
	return out, nil
}

func parseRates(list string) ([]phy.Rate, error) {
	var out []phy.Rate
	for _, s := range strings.Split(list, ",") {
		mbps, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", s, err)
		}
		r, err := phy.RateFromMbps(mbps)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseHops(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		h, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || h < 1 {
			return nil, fmt.Errorf("bad hop count %q", s)
		}
		out = append(out, h)
	}
	return out, nil
}

func main() {
	var (
		traffic  = flag.String("traffic", "tcp", "tcp or udp; with -arrival-rate/-users: a traffic model (bulk|cbr|poisson|onoff|pareto)")
		scheme   = flag.String("scheme", "ba", "scheme or comma list: na | ua | ba | dba")
		rateList = flag.String("rate", "1.3", "PHY data rate in Mbps (0.65|1.3|1.95|2.6|...) or comma list")
		bcRate   = flag.Float64("bcast-rate", 0, "fixed broadcast-portion rate in Mbps (0 = same as unicast)")
		hopsList = flag.String("hops", "2", "linear chain hop count or comma list")
		star     = flag.Bool("star", false, "use the 2-session star topology (TCP only, no sweep)")
		file     = flag.Int("file", core.PaperFileBytes, "TCP transfer size in bytes")
		agg      = flag.Int("agg", 5120, "maximum aggregation size in bytes")
		noFwd    = flag.Bool("no-forward-agg", false, "disable forward aggregation (Fig 14)")
		blockAck = flag.Bool("block-ack", false, "enable the block-ACK extension")
		autoAgg  = flag.Bool("auto-agg", false, "rate-adaptive aggregation size extension")
		flood    = flag.Duration("flood", 0, "flooding interval per node (UDP only; 0 = off)")
		dur      = flag.Duration("dur", 40*time.Second, "UDP measurement duration")
		seed     = flag.Int64("seed", 1, "simulation seed (sweep: base seed for per-run derivation)")
		reps     = flag.Int("reps", 1, "seed replications per sweep point (>1 forces sweep mode)")
		parallel = flag.Int("parallel", 0, "sweep workers (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "sweep: emit the result table as JSON")
		csvOut   = flag.Bool("csv", false, "sweep: emit the result table as CSV")
		progress = flag.Bool("progress", false, "sweep: report each completed run on stderr")
		storeDir = flag.String("store", "", "durable results store directory (sweep and scenario modes); completed cells are flushed there as they land")
		resume   = flag.Bool("resume", false, "serve already-stored cells from -store instead of re-running them")
		retries  = flag.Int("retries", 0, "extra attempts for transiently failed runs (wall-budget timeouts), with capped exponential backoff")
		verbose  = flag.Bool("v", false, "print per-node detail (single run)")
		doTrace  = flag.Bool("trace", false, "stream the channel timeline to stderr (single, mesh and scenario runs)")
		traceNds = flag.String("trace-nodes", "", "with -trace: comma list of node IDs; only events touching them are traced")
		traceFmt = flag.String("trace-format", core.TraceText, "with -trace: timeline format: text | jsonl")

		metricsPath = flag.String("metrics", "", "write simulated-time telemetry series as JSONL to this file (single, mesh and scenario runs)")
		metricsIv   = flag.Duration("metrics-interval", telemetry.DefaultInterval, "with -metrics: simulated-time sampling interval")
		chromeTrace = flag.String("chrome-trace", "", "write a chrome://tracing trace-event file of per-shard wall-clock spans (sharded mesh runs; not deterministic)")
		blockProf   = flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit")
		mutexProf   = flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")

		scenario = flag.String("scenario", "", "run a declarative scenario file (JSON; see examples/scenarios)")
		arrival  = flag.Float64("arrival-rate", 0, "workload: open-loop Poisson flow arrivals per second (requires -topo)")
		users    = flag.Int("users", 0, "workload: closed-loop think-time user population (requires -topo)")
		think    = flag.Duration("think", 2*time.Second, "workload: closed-loop mean think time")

		topo      = flag.String("topo", "", "mesh topology: grid | disk | chains (empty = paper chain/star)")
		nodes     = flag.Int("nodes", 25, "mesh: node budget (grid rounds down to k²)")
		flows     = flag.Int("flows", 0, "mesh: concurrent TCP flows (0 = max(2, nodes/10))")
		chains    = flag.Int("chains", 4, "mesh chains: number of parallel chains")
		chainHops = flag.Int("chain-hops", 4, "mesh chains: hops per chain")
		crossFl   = flag.Int("cross-flows", 0, "mesh chains: vertical cross-traffic flows")
		minHops   = flag.Int("min-hops", 2, "mesh grid/disk: minimum route length for sampled flows")
		dense     = flag.Bool("dense-scan", false, "mesh: force the O(N) dense-scan medium (perf baseline)")
		sparseRt  = flag.Bool("sparse-routes", false, "mesh: install routes toward flow endpoints only (large static meshes; avoids the O(N^2) all-pairs route build)")
		shards    = flag.Int("shards", 0, "mesh: run the event core on N parallel shards (0 = sequential; static -topo only; 1 is bit-identical to sequential)")

		mobility = flag.String("mobility", "", "mesh: mobility model: waypoint | drift (empty = static)")
		speed    = flag.Float64("speed", 1, "mesh mobility: node speed in spacing units per second")
		pause    = flag.Duration("pause", time.Second, "mesh mobility: waypoint dwell time at each target")
		moveIv   = flag.Duration("move-interval", time.Second, "mesh mobility: position/link/route update interval")

		crashMTBF  = flag.Duration("crash-mtbf", 0, "mesh faults: mean node up time between crashes (0 = no crashes)")
		crashMTTR  = flag.Duration("crash-mttr", 0, "mesh faults: mean node repair time (default 10s when crashes are on)")
		flapRate   = flag.Float64("flap-rate", 0, "mesh faults: per-link flap rate in flaps per second (0 = no flapping)")
		flapDown   = flag.Duration("flap-down", 0, "mesh faults: mean link down time per flap (default 2s)")
		partitions = flag.String("partition", "", "mesh faults: comma list of start:dur:axis:at area partitions (e.g. 100s:30s:x:2.5)")
		snrBurst   = flag.Duration("snr-burst", 0, "mesh faults: mean time between SNR-degradation bursts (0 = off)")
		snrBurstDB = flag.Float64("snr-burst-db", 0, "mesh faults: per-endpoint SNR penalty in dB during a burst (default 10)")
	)
	flag.Parse()

	schemes, err := parseSchemes(*scheme)
	if err != nil {
		fatal(err)
	}
	rates, err := parseRates(*rateList)
	if err != nil {
		fatal(err)
	}
	hops, err := parseHops(*hopsList)
	if err != nil {
		fatal(err)
	}
	if *jsonOut && *csvOut {
		fatal(fmt.Errorf("-json and -csv are mutually exclusive"))
	}
	if *resume && *storeDir == "" {
		fatal(fmt.Errorf("-resume requires -store"))
	}
	if *retries < 0 {
		fatal(fmt.Errorf("-retries must be >= 0"))
	}
	if *storeDir != "" && *doTrace {
		fatal(fmt.Errorf("-store cannot cache traced runs (drop -trace)"))
	}
	traceNodes, err := parseTraceNodes(*traceNds)
	if err != nil {
		fatal(err)
	}
	switch *traceFmt {
	case core.TraceText, core.TraceJSONL:
	default:
		fatal(fmt.Errorf("unknown -trace-format %q (text|jsonl)", *traceFmt))
	}
	if *traceFmt != core.TraceText && !*doTrace {
		fatal(fmt.Errorf("-trace-format requires -trace"))
	}
	var traceTo io.Writer
	if *doTrace {
		traceTo = os.Stderr
	}
	if *metricsIv <= 0 {
		fatal(fmt.Errorf("-metrics-interval must be positive"))
	}
	if *metricsPath != "" && *storeDir != "" {
		// The store caches a run's declared config; a telemetry recorder is
		// side output the cache could neither replay nor invalidate on.
		fatal(fmt.Errorf("-metrics cannot be combined with -store"))
	}
	if *chromeTrace != "" && (*topo == "" || *shards <= 0) {
		fatal(fmt.Errorf("-chrome-trace requires a sharded mesh run (-topo with -shards >= 1)"))
	}
	faultCfg, err := faultConfig(*crashMTBF, *crashMTTR, *flapRate, *flapDown, *partitions, *snrBurst, *snrBurstDB)
	if err != nil {
		fatal(err)
	}

	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
	}
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
	}
	defer writeProfile("block", *blockProf)
	defer writeProfile("mutex", *mutexProf)

	// Scenario-file mode: everything (topology, traffic, schemes) comes
	// from the file; -seed (when given explicitly), -parallel, -json,
	// -progress, -v and the trace flags still apply.
	if *scenario != "" {
		if faultCfg != nil {
			fatal(fmt.Errorf("fault flags apply to -topo mesh runs only; scenario files declare faults in their own \"faults\" section"))
		}
		sc, err := wl.Load(*scenario)
		if err != nil {
			fatal(err)
		}
		var schemes []mac.Scheme
		for _, name := range sc.Schemes {
			s, err := mac.SchemeByName(name)
			if err != nil {
				fatal(err)
			}
			schemes = append(schemes, s)
		}
		var seedOverride int64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = *seed
			}
		})
		runScenarios(scenarioArgs{
			sc: sc, schemes: schemes, seed: seedOverride,
			parallel: *parallel, jsonOut: *jsonOut, progress: *progress,
			verbose: *verbose, traceTo: traceTo, traceNodes: traceNodes,
			traceFormat: *traceFmt, metrics: *metricsPath, metricsIv: *metricsIv,
			st: openStore(*storeDir), resume: *resume, retries: *retries,
		})
		return
	}

	// Ad-hoc workload mode: -arrival-rate / -users turn the -topo mesh
	// into an open- or closed-loop scenario with a single-model mix.
	if *arrival > 0 || *users > 0 {
		if *topo == "" {
			fatal(fmt.Errorf("-arrival-rate/-users need a mesh topology (-topo grid|disk|chains)"))
		}
		if *csvOut {
			fatal(fmt.Errorf("-csv is not supported in workload mode"))
		}
		if len(rates) > 1 || len(hops) > 1 || *reps > 1 {
			fatal(fmt.Errorf("workload mode cannot be combined with a -rate/-hops/-reps sweep"))
		}
		// Mesh-only knobs the workload engine does not thread through must
		// fail loudly, not silently measure something else.
		if *dense || *flows != 0 || *crossFl != 0 {
			fatal(fmt.Errorf("-dense-scan/-flows/-cross-flows do not apply in workload mode (the engine samples its own flows)"))
		}
		if *sparseRt {
			fatal(fmt.Errorf("-sparse-routes applies to static -topo TCP runs only"))
		}
		if *shards != 0 {
			fatal(fmt.Errorf("-shards applies to static -topo TCP runs only"))
		}
		if faultCfg != nil {
			fatal(fmt.Errorf("fault flags apply to -topo mesh runs only, not workload mode"))
		}
		model := *traffic
		if model == "tcp" {
			model = wl.Pareto // web-like objects by default
		}
		ma := meshArgs{
			topo: *topo, rate: rates[0],
			nodes: *nodes, chains: *chains, chainHops: *chainHops,
			minHops: *minHops, mobility: *mobility, speed: *speed,
			pause: *pause, moveIv: *moveIv,
			file: *file, agg: *agg, seed: *seed,
		}
		sc, err := adhocScenario(ma, model, *arrival, *users, *think, *dur, schemes)
		if err != nil {
			fatal(err)
		}
		runScenarios(scenarioArgs{
			sc: sc, schemes: schemes,
			parallel: *parallel, jsonOut: *jsonOut, progress: *progress,
			verbose: *verbose, traceTo: traceTo, traceNodes: traceNodes,
			traceFormat: *traceFmt, metrics: *metricsPath, metricsIv: *metricsIv,
			st: openStore(*storeDir), resume: *resume, retries: *retries,
		})
		return
	}

	if *traffic != "tcp" && *traffic != "udp" {
		fatal(fmt.Errorf("unknown traffic %q (tcp|udp; traffic models need -arrival-rate or -users)", *traffic))
	}

	switch *mobility {
	case "", core.MobilityWaypoint, core.MobilityDrift:
	default:
		fatal(fmt.Errorf("unknown -mobility %q (waypoint|drift)", *mobility))
	}
	if *mobility != "" && *topo == "" {
		fatal(fmt.Errorf("-mobility requires a mesh topology (-topo grid|disk|chains)"))
	}

	if *topo != "" {
		switch *topo {
		case core.MeshGrid, core.MeshDisk, core.MeshChains:
		default:
			fatal(fmt.Errorf("unknown -topo %q (grid|disk|chains)", *topo))
		}
		if *traffic != "tcp" {
			fatal(fmt.Errorf("-topo supports TCP traffic only"))
		}
		if len(schemes) > 1 || len(rates) > 1 || len(hops) > 1 || *reps > 1 {
			fatal(fmt.Errorf("-topo cannot be combined with a parameter sweep"))
		}
		if *csvOut {
			fatal(fmt.Errorf("-csv is not supported in -topo mode"))
		}
		if *storeDir != "" {
			fatal(fmt.Errorf("-store applies to sweeps and scenario runs, not single mesh runs"))
		}
		if *shards < 0 || *shards > core.MaxShards {
			fatal(fmt.Errorf("-shards must be in 0..%d", core.MaxShards))
		}
		if *shards > 0 {
			switch {
			case *mobility != "":
				fatal(fmt.Errorf("-shards supports static topologies only (drop -mobility)"))
			case *dense:
				fatal(fmt.Errorf("-shards requires the neighbor-indexed medium (drop -dense-scan)"))
			case traceTo != nil:
				fatal(fmt.Errorf("-shards cannot stream the channel timeline (drop -trace)"))
			case faultCfg != nil:
				fatal(fmt.Errorf("-shards cannot run with fault injection (drop the fault flags)"))
			}
		}
		if *sparseRt {
			switch {
			case *mobility != "":
				fatal(fmt.Errorf("-sparse-routes supports static topologies only (drop -mobility)"))
			case faultCfg != nil:
				fatal(fmt.Errorf("-sparse-routes cannot run with fault injection (crash recovery rebuilds full route tables)"))
			}
		}
		runMesh(meshArgs{
			topo: *topo, scheme: schemes[0], rate: rates[0],
			nodes: *nodes, flows: *flows, chains: *chains, chainHops: *chainHops,
			crossFlows: *crossFl, minHops: *minHops, dense: *dense, sparseRoutes: *sparseRt, shards: *shards,
			mobility: *mobility, speed: *speed, pause: *pause, moveIv: *moveIv,
			faults: faultCfg,
			file:   *file, agg: *agg, seed: *seed, verbose: *verbose,
			jsonOut: *jsonOut, traceTo: traceTo, traceNodes: traceNodes,
			traceFormat: *traceFmt, metrics: *metricsPath, metricsIv: *metricsIv,
			chromeTrace: *chromeTrace,
		})
		return
	}
	if *shards != 0 {
		fatal(fmt.Errorf("-shards applies to static -topo TCP runs only"))
	}
	if *sparseRt {
		fatal(fmt.Errorf("-sparse-routes applies to static -topo TCP runs only"))
	}
	if faultCfg != nil {
		fatal(fmt.Errorf("fault flags apply to -topo mesh runs only"))
	}

	if len(schemes)*len(rates)*len(hops) > 1 || *reps > 1 {
		if *star {
			fatal(fmt.Errorf("-star cannot be combined with a parameter sweep"))
		}
		if *metricsPath != "" {
			fatal(fmt.Errorf("-metrics applies to single, mesh and scenario runs, not sweeps"))
		}
		var fixedBC *phy.Rate
		if *bcRate > 0 {
			br, err := phy.RateFromMbps(*bcRate)
			if err != nil {
				fatal(err)
			}
			fixedBC = &br
		}
		runSweep(sweepArgs{
			traffic: *traffic, schemes: schemes, rates: rates, hops: hops,
			reps: *reps, seed: *seed, agg: *agg, file: *file, dur: *dur,
			flood: *flood, parallel: *parallel,
			noFwd: *noFwd, blockAck: *blockAck, autoAgg: *autoAgg, bcRate: fixedBC,
			jsonOut: *jsonOut, csvOut: *csvOut, progress: *progress,
			st: openStore(*storeDir), resume: *resume, retries: *retries,
		})
		return
	}

	if *csvOut {
		fatal(fmt.Errorf("-csv requires a parameter sweep (comma-list -scheme/-rate/-hops or -reps > 1)"))
	}
	if *storeDir != "" {
		fatal(fmt.Errorf("-store applies to sweeps and scenario runs, not single runs"))
	}
	runSingle(singleArgs{
		traffic: *traffic, scheme: schemes[0], rate: rates[0], hops: hops[0],
		star: *star, file: *file, agg: *agg, noFwd: *noFwd,
		blockAck: *blockAck, autoAgg: *autoAgg, flood: *flood, dur: *dur,
		seed: *seed, bcRate: *bcRate, verbose: *verbose,
		jsonOut: *jsonOut, traceTo: traceTo, traceNodes: traceNodes,
		traceFormat: *traceFmt, metrics: *metricsPath, metricsIv: *metricsIv,
	})
}

// writeProfile writes the named runtime profile (block, mutex) at exit; an
// empty path is a no-op. Profiles are best-effort diagnostics: a write
// failure warns on stderr without changing the exit code.
func writeProfile(name, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "aggsim:", err)
	}
}

// fatal reports a flag/validation error and exits with the usage code (2).
// Usage errors never create, lock or mutate the results store.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggsim:", err)
	os.Exit(2)
}

// runFail reports a failed or aborted run (sim error, store or output I/O)
// and exits with the run-failure code (1), distinct from usage errors so
// scripts can tell "retry this" from "fix the invocation".
func runFail(err error) {
	fmt.Fprintln(os.Stderr, "aggsim:", err)
	os.Exit(1)
}

// openStore opens (creating if needed) the durable results store. It must
// only be called after every flag validation has passed: usage errors must
// not touch the store. A nil return means no -store was given.
func openStore(dir string) *store.Store {
	if dir == "" {
		return nil
	}
	st, err := store.Open(dir)
	if err != nil {
		runFail(err)
	}
	return st
}

type sweepArgs struct {
	traffic           string
	schemes           []mac.Scheme
	rates             []phy.Rate
	hops              []int
	reps              int
	seed              int64
	agg, file         int
	dur, flood        time.Duration
	parallel          int
	noFwd             bool
	blockAck, autoAgg bool
	bcRate            *phy.Rate
	jsonOut, csvOut   bool
	progress          bool
	st                *store.Store
	resume            bool
	retries           int
}

func runSweep(a sweepArgs) {
	sw := runner.Sweep{
		Traffic: a.traffic, Schemes: a.schemes, Rates: a.rates, Hops: a.hops,
		Reps: a.reps, BaseSeed: a.seed,
		MaxAggBytes: a.agg, FileBytes: a.file,
		Duration: a.dur, FloodInterval: a.flood,
		NoForwardAgg: a.noFwd, BlockAck: a.blockAck, AutoAggSize: a.autoAgg,
		FixedBroadcastRate: a.bcRate,
	}
	specs := sw.Specs()
	pool := runner.Pool{Workers: a.parallel,
		Retry: runner.RetryPolicy{MaxAttempts: a.retries + 1}}
	if a.progress {
		pool.OnResult = runner.StderrProgress
	}
	var cached, executed, retried int
	if a.st != nil {
		pool.Cache = a.st
		pool.Resume = a.resume
		// OnResult calls are serialized by the pool, so plain counters are
		// safe; chain the user's -progress reporter behind the counting.
		user := pool.OnResult
		pool.OnResult = func(p runner.Progress) {
			if p.Cached {
				cached++
			} else {
				executed++
				if p.Attempts > 1 {
					retried++
				}
			}
			if user != nil {
				user(p)
			}
		}
	}
	start := time.Now()
	results, err := pool.Run(context.Background(), specs)
	if err != nil {
		runFail(err)
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "aggsim: run %s failed: %v\n", r.Key, r.Err)
		}
	}
	tab := experiments.SweepTable(sw, results)
	switch {
	case a.jsonOut:
		if err := experiments.WriteJSON(os.Stdout, []experiments.Table{tab}); err != nil {
			runFail(err)
		}
	case a.csvOut:
		if err := experiments.WriteCSV(os.Stdout, []experiments.Table{tab}); err != nil {
			runFail(err)
		}
	default:
		fmt.Print(tab.Format())
		fmt.Printf("swept %d run(s) in %v (wall clock)\n", len(specs), time.Since(start).Round(time.Millisecond))
	}
	if a.st != nil {
		storeSummary(a.st, cached, executed, retried)
		a.st.Close()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "aggsim: %d of %d runs failed\n", failed, len(specs))
		os.Exit(1)
	}
}

// storeSummary prints the resume accounting on stderr (stdout stays
// byte-identical with and without a warm store; CI's resume gate relies on
// that).
func storeSummary(st *store.Store, cached, executed, retried int) {
	fmt.Fprintf(os.Stderr, "aggsim: store %s: %d cell(s) cached, %d executed, %d retried\n",
		st.Dir(), cached, executed, retried)
	if c := st.Stats().Corrupt; c > 0 {
		fmt.Fprintf(os.Stderr, "aggsim: store: quarantined %d corrupt object(s)\n", c)
	}
}

type singleArgs struct {
	traffic           string
	scheme            mac.Scheme
	rate              phy.Rate
	hops              int
	star              bool
	file, agg         int
	noFwd             bool
	blockAck, autoAgg bool
	flood, dur        time.Duration
	seed              int64
	bcRate            float64
	verbose           bool
	jsonOut           bool
	traceTo           io.Writer
	traceNodes        []int
	traceFormat       string
	metrics           string
	metricsIv         time.Duration
}

// recorder builds the telemetry recorder for a -metrics run; nil (metrics
// off) keeps every instrumented run byte-identical to an uninstrumented one.
func recorder(path string, interval time.Duration) *telemetry.Recorder {
	if path == "" {
		return nil
	}
	return telemetry.NewRecorder(interval)
}

// writeMetrics flushes the recorder's sampled series as JSONL; a nil
// recorder is a no-op. Output I/O failures are run failures (exit 1).
func writeMetrics(rec *telemetry.Recorder, path string) {
	if rec == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		runFail(err)
	}
	if err := rec.WriteJSONL(f); err != nil {
		f.Close()
		runFail(err)
	}
	if err := f.Close(); err != nil {
		runFail(err)
	}
	fmt.Fprintf(os.Stderr, "aggsim: telemetry written to %s\n", path)
}

func runSingle(a singleArgs) {
	sch := a.scheme
	sch.DisableForwardAggregation = a.noFwd
	rec := recorder(a.metrics, a.metricsIv)

	switch a.traffic {
	case "tcp":
		cfg := core.TCPConfig{
			Scheme: sch, Rate: a.rate, Hops: a.hops, Star: a.star,
			FileBytes: a.file, MaxAggBytes: a.agg, Seed: a.seed,
			BlockAck: a.blockAck, AutoAggSize: a.autoAgg,
			TraceTo: a.traceTo, TraceNodes: a.traceNodes,
			TraceFormat: a.traceFormat, Metrics: rec,
		}
		if a.bcRate > 0 {
			br, err := phy.RateFromMbps(a.bcRate)
			if err != nil {
				fatal(err)
			}
			cfg.FixedBroadcastRate = &br
		}
		res := core.RunTCP(cfg)
		writeMetrics(rec, a.metrics)
		if a.jsonOut {
			writeJSON(jsonResult{Kind: "tcp", TCP: &res, Telemetry: rec.Summary()})
			return
		}
		fmt.Printf("scheme=%s rate=%v topology=%s\n", sch.Name(), a.rate, topoName(a.hops, a.star))
		for i, m := range res.SessionMbps {
			fmt.Printf("session %d: %.3f Mbps (done=%v)\n", i, m, res.Sessions[i].Done)
		}
		fmt.Printf("end-to-end throughput: %.3f Mbps (worst session), elapsed %v\n",
			res.ThroughputMbps, res.Elapsed.Round(time.Millisecond))
		if !res.Completed {
			fmt.Println("WARNING: not all sessions completed before the deadline")
		}
		if a.verbose {
			printNodes(res.Nodes)
			for i, s := range res.Sessions {
				fmt.Printf("session %d sender: sent=%d rtx=%d fastRtx=%d timeouts=%d\n",
					i, s.Sender.SegsSent, s.Sender.Retransmits, s.Sender.FastRetransmits, s.Sender.Timeouts)
			}
		}
	case "udp":
		res := core.RunUDP(core.UDPConfig{
			Scheme: sch, Rate: a.rate, Hops: a.hops, MaxAggBytes: a.agg,
			FloodInterval: a.flood, Duration: a.dur, Seed: a.seed,
			TraceTo: a.traceTo, TraceNodes: a.traceNodes,
			TraceFormat: a.traceFormat, Metrics: rec,
		})
		writeMetrics(rec, a.metrics)
		if a.jsonOut {
			writeJSON(jsonResult{Kind: "udp", UDP: &res, Telemetry: rec.Summary()})
			return
		}
		fmt.Printf("scheme=%s rate=%v hops=%d flood=%v\n", sch.Name(), a.rate, a.hops, a.flood)
		fmt.Printf("goodput: %.3f Mbps (%d packets delivered)\n", res.ThroughputMbps, res.SinkPackets)
		if a.flood > 0 {
			fmt.Printf("flooding: %d sent, %d received\n", res.FloodsSent, res.FloodsRcvd)
		}
		if a.verbose {
			printNodes(res.Nodes)
		}
	}
}

type meshArgs struct {
	topo              string
	scheme            mac.Scheme
	rate              phy.Rate
	nodes, flows      int
	chains, chainHops int
	crossFlows        int
	minHops           int
	dense             bool
	sparseRoutes      bool
	shards            int
	mobility          string
	speed             float64
	pause, moveIv     time.Duration
	faults            *faults.Config
	file, agg         int
	seed              int64
	verbose           bool
	jsonOut           bool
	traceTo           io.Writer
	traceNodes        []int
	traceFormat       string
	metrics           string
	metricsIv         time.Duration
	chromeTrace       string
}

// faultConfig assembles the fault-injection config from the CLI flags; it
// returns nil when no fault flag was set.
func faultConfig(crashMTBF, crashMTTR time.Duration, flapRate float64, flapDown time.Duration,
	partitions string, snrBurst time.Duration, snrBurstDB float64) (*faults.Config, error) {
	// Negative values would read as "disabled" through Config.Enabled;
	// reject them loudly instead of silently running fault-free.
	if crashMTBF < 0 || crashMTTR < 0 || flapRate < 0 || flapDown < 0 || snrBurst < 0 || snrBurstDB < 0 {
		return nil, fmt.Errorf("fault flags must not be negative")
	}
	cfg := &faults.Config{
		CrashMTBF: crashMTBF, CrashMTTR: crashMTTR,
		FlapMTTR:     flapDown,
		SNRBurstMTBF: snrBurst, SNRBurstDB: snrBurstDB,
	}
	if flapRate > 0 {
		cfg.FlapMTBF = time.Duration(float64(time.Second) / flapRate)
	}
	if partitions != "" {
		for _, spec := range strings.Split(partitions, ",") {
			parts := strings.Split(strings.TrimSpace(spec), ":")
			if len(parts) != 4 {
				return nil, fmt.Errorf("bad -partition %q (want start:dur:axis:at, e.g. 100s:30s:x:2.5)", spec)
			}
			start, err := time.ParseDuration(parts[0])
			if err != nil {
				return nil, fmt.Errorf("bad -partition start %q: %v", parts[0], err)
			}
			dur, err := time.ParseDuration(parts[1])
			if err != nil {
				return nil, fmt.Errorf("bad -partition duration %q: %v", parts[1], err)
			}
			at, err := strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return nil, fmt.Errorf("bad -partition coordinate %q: %v", parts[3], err)
			}
			cfg.Partitions = append(cfg.Partitions, faults.Partition{
				Start: start, Duration: dur, Axis: parts[2], At: at,
			})
		}
	}
	if !cfg.Enabled() {
		return nil, nil
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

func runMesh(a meshArgs) {
	rec := recorder(a.metrics, a.metricsIv)
	cfg := core.MeshTCPConfig{
		Scheme: a.scheme, Rate: a.rate,
		Topology: a.topo, Nodes: a.nodes, Flows: a.flows,
		Chains: a.chains, ChainHops: a.chainHops, CrossFlows: a.crossFlows,
		MinHops: a.minHops, DenseScan: a.dense, SparseRoutes: a.sparseRoutes, Shards: a.shards,
		Mobility: a.mobility, Speed: a.speed, Pause: a.pause, MoveInterval: a.moveIv,
		Faults:    a.faults,
		FileBytes: a.file, MaxAggBytes: a.agg, Seed: a.seed,
		TraceTo: a.traceTo, TraceNodes: a.traceNodes,
		TraceFormat: a.traceFormat, Metrics: rec,
	}
	var chromeFile *os.File
	if a.chromeTrace != "" {
		var err error
		if chromeFile, err = os.Create(a.chromeTrace); err != nil {
			runFail(err)
		}
		cfg.ShardTrace = chromeFile
	}
	res := core.RunMeshTCP(cfg)
	if chromeFile != nil {
		if err := chromeFile.Close(); err != nil {
			runFail(err)
		}
		fmt.Fprintf(os.Stderr, "aggsim: chrome trace written to %s\n", a.chromeTrace)
	}
	writeMetrics(rec, a.metrics)
	if a.jsonOut {
		writeJSON(jsonResult{Kind: "mesh", Mesh: &res, Telemetry: rec.Summary()})
		return
	}
	fmt.Printf("scheme=%s rate=%v topology=%s nodes=%d links=%d avg-degree=%.1f\n",
		a.scheme.Name(), a.rate, a.topo, res.NodeCount, res.LinkCount, res.AvgDegree)
	if res.Shards > 0 {
		fmt.Printf("parallel engine: %d shards, %d events executed\n", res.Shards, res.EventsRun)
	}
	if a.mobility != "" {
		fmt.Printf("mobility=%s speed=%g interval=%v: %d link ups, %d link downs, %d route flaps over %d recomputes\n",
			a.mobility, a.speed, a.moveIv,
			res.LinkUps, res.LinkDowns, res.RouteFlaps, res.RouteRecomputes)
	}
	if a.faults != nil {
		fmt.Printf("faults: %d crashes (%d recovered), %d flap downs (%d restored), %d/%d partitions healed, %d SNR bursts\n",
			res.NodeCrashes, res.NodeRecoveries, res.FaultLinkDowns, res.FaultLinkUps,
			res.PartitionsHealed, res.PartitionsStarted, res.SNRBursts)
		fmt.Printf("degradation: availability %.4f, %d flows killed, max stall %v, mean stall %v, heal latency %v\n",
			res.Availability, res.FlowsKilledByFault,
			res.MaxFlowStall.Round(time.Millisecond), res.MeanFlowStall.Round(time.Millisecond),
			res.MeanHealLatency.Round(time.Millisecond))
	}
	for i, f := range res.Flows {
		fmt.Printf("flow %d: %d->%d (%d hops) %.3f Mbps (done=%v)\n",
			i, int(f.Server), int(f.Client), f.Hops, f.Mbps, f.Done)
	}
	fmt.Printf("aggregate %.3f Mbps across %d flows (min %.3f, mean %.3f), %d/%d done, elapsed %v\n",
		res.AggregateMbps, len(res.Flows), res.MinMbps, res.MeanMbps,
		res.FlowsDone, len(res.Flows), res.Elapsed.Round(time.Millisecond))
	if !res.Completed {
		fmt.Println("WARNING: not all flows completed before the deadline")
	}
	if a.verbose {
		printNodes(res.Nodes)
	}
}

func topoName(hops int, star bool) string {
	if star {
		return "star (2 sessions via centre)"
	}
	return fmt.Sprintf("%d-hop chain", hops)
}

func printNodes(nodes []core.NodeReport) {
	fmt.Printf("%-3s %-7s %7s %9s %7s %7s %8s %8s %7s\n",
		"id", "role", "dataTx", "avgFrameB", "subAvg", "retries", "sizeOv%", "timeOv%", "qDrops")
	for _, n := range nodes {
		fmt.Printf("%-3d %-7s %7d %9.0f %7.2f %7d %8.2f %8.2f %7d\n",
			n.ID, n.Role, n.MAC.DataTx, n.MAC.AvgFrameBytes(), n.MAC.AvgSubframes(),
			n.MAC.Retries, 100*n.MAC.SizeOverhead(n.PreambleBytes),
			100*n.MAC.TimeOverhead(), n.MAC.QueueDrops)
	}
}
