// Scenario mode: run a declarative workload — a -scenario file, or an
// ad-hoc open/closed-loop workload assembled from flags — under one or
// more MAC schemes, fanned across the worker pool. Output is strictly
// deterministic (no wall-clock lines), so repeated runs hash identically;
// the CI determinism job relies on that.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/runner"
	"aggmac/internal/store"
	"aggmac/internal/telemetry"
	"aggmac/internal/traffic"
)

// parseTraceNodes parses the -trace-nodes comma list.
func parseTraceNodes(list string) ([]int, error) {
	if list == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -trace-nodes entry %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// scenarioArgs carries everything scenario mode needs from main.
type scenarioArgs struct {
	sc          traffic.Scenario
	schemes     []mac.Scheme // resolved run list (file's schemes, or -scheme)
	seed        int64        // >0 overrides the scenario's seed
	parallel    int
	jsonOut     bool
	progress    bool
	verbose     bool
	traceTo     io.Writer
	traceNodes  []int
	traceFormat string
	metrics     string // telemetry JSONL path; "" = metrics off
	metricsIv   time.Duration
	st          *store.Store // nil = no durable store
	resume      bool
	retries     int
}

// adhocScenario assembles a Scenario from CLI flags: the -topo mesh flags
// shape the topology (including -rate, carried as the PHY rate), -traffic
// names a single traffic model, and -arrival-rate / -users pick the
// arrival discipline.
func adhocScenario(a meshArgs, model string, arrivalRate float64, users int, think, dur time.Duration, schemes []mac.Scheme) (traffic.Scenario, error) {
	mode := traffic.ModeOpen
	if users > 0 {
		mode = traffic.ModeClosed
		if arrivalRate > 0 {
			return traffic.Scenario{}, fmt.Errorf("-arrival-rate and -users are mutually exclusive (open vs closed loop)")
		}
	}
	m := traffic.Model{Kind: model}
	switch model {
	case traffic.Bulk:
		m.Bytes = a.file
	case traffic.Pareto:
		m.Bytes = a.file
	case traffic.CBR, traffic.Poisson, traffic.OnOff:
		m.DurationS = dur.Seconds()
	default:
		return traffic.Scenario{}, fmt.Errorf("workload mode needs -traffic bulk|cbr|poisson|onoff|pareto, got %q", model)
	}
	names := make([]string, len(schemes))
	for i, s := range schemes {
		names[i] = strings.ToLower(s.Name())
	}
	sc := traffic.Scenario{
		Version:     traffic.SchemaVersion,
		Name:        fmt.Sprintf("adhoc-%s-%s", mode, model),
		Seed:        a.seed,
		DurationS:   dur.Seconds(),
		Schemes:     names,
		RateMbps:    a.rate.Mbps(),
		MaxAggBytes: a.agg,
		Topology: traffic.Topology{
			Kind: a.topo, Nodes: a.nodes,
			Chains: a.chains, ChainHops: a.chainHops,
		},
		Traffic: traffic.Traffic{
			Mode:        mode,
			ArrivalRate: arrivalRate,
			Users:       users,
			ThinkS:      think.Seconds(),
			MinHops:     a.minHops,
			Mix:         []traffic.WeightedModel{{Model: m, Weight: 1}},
		},
	}
	if a.mobility != "" {
		sc.Mobility = &traffic.Mobility{
			Model: a.mobility, Speed: a.speed,
			PauseS: a.pause.Seconds(), MoveIntervalS: a.moveIv.Seconds(),
		}
	}
	if err := sc.Validate(); err != nil {
		return traffic.Scenario{}, err
	}
	return sc, nil
}

// runScenarios executes the scenario once per scheme across the worker
// pool and prints per-scheme reports in scheme order.
func runScenarios(a scenarioArgs) {
	if a.seed != 0 {
		// Reflect an explicit -seed in the scenario itself so the printed
		// header matches what actually ran.
		a.sc.Seed = a.seed
	}
	var rec *telemetry.Recorder
	if a.metrics != "" {
		// One recorder belongs to one run: a multi-scheme scenario would
		// interleave the schemes' series in completion order.
		if len(a.schemes) != 1 {
			fatal(fmt.Errorf("-metrics requires exactly one scheme per run (got %d)", len(a.schemes)))
		}
		rec = telemetry.NewRecorder(a.metricsIv)
	}
	specs := make([]runner.Spec, len(a.schemes))
	for i, scheme := range a.schemes {
		cfg := core.ScenarioConfig{
			Scenario: a.sc, Scheme: scheme, Seed: a.seed,
			TraceTo: a.traceTo, TraceNodes: a.traceNodes,
			TraceFormat: a.traceFormat, Metrics: rec,
		}
		specs[i] = runner.Spec{
			Key:      fmt.Sprintf("scenario/%s/%s", a.sc.Name, scheme.Name()),
			Scenario: &cfg,
		}
	}
	pool := runner.Pool{Workers: a.parallel,
		Retry: runner.RetryPolicy{MaxAttempts: a.retries + 1}}
	if a.progress {
		pool.OnResult = runner.StderrProgress
	}
	var cached, executed, retried int
	if a.st != nil {
		pool.Cache = a.st
		pool.Resume = a.resume
		user := pool.OnResult
		pool.OnResult = func(p runner.Progress) {
			if p.Cached {
				cached++
			} else {
				executed++
				if p.Attempts > 1 {
					retried++
				}
			}
			if user != nil {
				user(p)
			}
		}
	}
	var results []runner.Result
	if a.traceTo == nil {
		var err error
		results, err = pool.Run(context.Background(), specs)
		if err != nil {
			runFail(err)
		}
	} else {
		// Tracing: concurrent runs would interleave unlabeled timelines
		// from independent virtual clocks on one writer. Run the schemes
		// one at a time and delimit each run's timeline.
		for _, spec := range specs {
			fmt.Fprintf(a.traceTo, "=== trace %s\n", spec.Key)
			rs, err := pool.Run(context.Background(), []runner.Spec{spec})
			if err != nil {
				runFail(err)
			}
			results = append(results, rs...)
		}
	}
	if a.st != nil {
		storeSummary(a.st, cached, executed, retried)
		a.st.Close()
	}
	for _, r := range results {
		if r.Err != nil {
			runFail(fmt.Errorf("run %s failed: %v", r.Key, r.Err))
		}
	}
	writeMetrics(rec, a.metrics)

	if a.jsonOut {
		out := make([]core.ScenarioResult, len(results))
		for i, r := range results {
			out[i] = *r.Scenario
		}
		writeJSON(out)
		return
	}
	printScenarioHeader(a.sc)
	for _, r := range results {
		printScenarioResult(*r.Scenario, a.verbose)
	}
}

func printScenarioHeader(sc traffic.Scenario) {
	fmt.Printf("scenario %s: topology=%s mode=%s duration=%gs deadline=%gs rate=%g Mbps seed=%d\n",
		sc.Name, sc.Topology.Kind, sc.Traffic.Mode, sc.DurationS, sc.DeadlineS, sc.RateMbps, sc.Seed)
	switch sc.Traffic.Mode {
	case traffic.ModeOpen:
		fmt.Printf("  open loop: Poisson arrivals at %g flows/s\n", sc.Traffic.ArrivalRate)
	case traffic.ModeClosed:
		fmt.Printf("  closed loop: %d users, mean think %gs\n", sc.Traffic.Users, sc.Traffic.ThinkS)
	}
	for i, wm := range sc.Traffic.Mix {
		fmt.Printf("  mix[%d]: %s weight=%g\n", i, wm.Model.Kind, wm.Weight)
	}
	if sc.Mobility != nil {
		fmt.Printf("  mobility: %s speed=%g interval=%gs\n",
			sc.Mobility.Model, sc.Mobility.Speed, sc.Mobility.MoveIntervalS)
	}
}

func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }

func printScenarioResult(r core.ScenarioResult, verbose bool) {
	fmt.Printf("scheme %s: nodes=%d links=%d avg-degree=%.1f\n",
		r.Scheme, r.NodeCount, r.LinkCount, r.AvgDegree)
	fmt.Printf("  flows: %d arrived, %d done, %d abandoned, %d skipped; peak %d active\n",
		r.FlowsStarted, r.FlowsCompleted, r.FlowsAbandoned, r.FlowsSkipped, r.PeakActive)
	fmt.Printf("  goodput: %.3f Mbps (%d bytes delivered over the arrival window)\n",
		r.AggregateMbps, r.DeliveredBytes)
	fmt.Printf("  fct: p50=%s p95=%s p99=%s mean=%s max=%s (%d samples)\n",
		fmtDur(r.FCT.P50), fmtDur(r.FCT.P95), fmtDur(r.FCT.P99),
		fmtDur(r.FCT.Mean), fmtDur(r.FCT.Max), r.FCT.Count)
	for _, pm := range r.PerModel {
		fmt.Printf("  model %-8s %d flows (%d done) %.3f Mbps, fct p50=%s p95=%s p99=%s\n",
			pm.Kind, pm.Flows, pm.FlowsDone, pm.GoodputMbps,
			fmtDur(pm.FCT.P50), fmtDur(pm.FCT.P95), fmtDur(pm.FCT.P99))
	}
	if r.LinkUps+r.LinkDowns+r.RouteRecomputes > 0 {
		fmt.Printf("  churn: %d link ups, %d link downs, %d route flaps over %d recomputes\n",
			r.LinkUps, r.LinkDowns, r.RouteFlaps, r.RouteRecomputes)
	}
	if r.Availability < 1 || r.NodeCrashes+r.FaultLinkDowns+r.PartitionsStarted+r.SNRBursts > 0 {
		fmt.Printf("  faults: %d crashes (%d recovered), %d flap downs (%d restored), %d/%d partitions healed, %d SNR bursts\n",
			r.NodeCrashes, r.NodeRecoveries, r.FaultLinkDowns, r.FaultLinkUps,
			r.PartitionsHealed, r.PartitionsStarted, r.SNRBursts)
		fmt.Printf("  degradation: availability %.4f, %d flows killed, heal latency %s\n",
			r.Availability, r.FlowsKilledByFault, fmtDur(r.MeanHealLatency))
	}
	fmt.Printf("  elapsed %s, %d events\n", fmtDur(r.Elapsed), r.EventsRun)
	if verbose {
		printNodes(r.Nodes)
	}
}

// writeJSON emits one machine-readable document on stdout.
func writeJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		runFail(err)
	}
}

// jsonResult wraps a single-run result with its kind, the -json envelope
// for non-sweep runs (mirrors aggbench -json being an array of tables).
// Telemetry carries the -metrics per-run summary (the full series stay in
// the JSONL file); nil when metrics are off.
type jsonResult struct {
	Kind      string               `json:"kind"`
	TCP       *core.TCPResult      `json:"tcp,omitempty"`
	UDP       *core.UDPResult      `json:"udp,omitempty"`
	Mesh      *core.MeshResult     `json:"mesh,omitempty"`
	Scenario  *core.ScenarioResult `json:"scenario,omitempty"`
	Telemetry *telemetry.Summary   `json:"telemetry,omitempty"`
}
