// Command aggbench regenerates the paper's evaluation: every table and
// figure of "Improving the Performance of Multi-hop Wireless Networks using
// Frame Aggregation and Broadcast for TCP ACKs" (Kim et al., CoNEXT 2008),
// printed as aligned text tables.
//
// Usage:
//
//	aggbench                 # run everything (paper order)
//	aggbench -exp fig11      # one experiment
//	aggbench -seed 7 -quick  # shorter UDP windows, different seed
//	aggbench -list           # list experiment names
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aggmac/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (empty = all); see -list")
		seed  = flag.Int64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "shorter UDP measurement windows")
		list  = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Println(e.Name)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick}
	ran := 0
	start := time.Now()
	for _, e := range all {
		if *exp != "" && e.Name != *exp {
			continue
		}
		t := e.Run(opts)
		fmt.Println(t.Format())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "aggbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("regenerated %d experiment(s) in %v (wall clock)\n", ran, time.Since(start).Round(time.Millisecond))
}
