// Command aggbench regenerates the paper's evaluation: every table and
// figure of "Improving the Performance of Multi-hop Wireless Networks using
// Frame Aggregation and Broadcast for TCP ACKs" (Kim et al., CoNEXT 2008),
// printed as aligned text tables, JSON, or CSV.
//
// Each experiment's independent simulation runs are fanned across a worker
// pool (internal/runner); output is bit-identical at any worker count, so
// -parallel only changes wall-clock time.
//
// Usage:
//
//	aggbench                 # run everything (paper order), GOMAXPROCS workers
//	aggbench -exp fig11      # one experiment
//	aggbench -seed 7 -quick  # shorter UDP windows, different seed
//	aggbench -parallel 1     # force serial execution
//	aggbench -json > e.json  # machine-readable output
//	aggbench -csv  > e.csv
//	aggbench -progress       # per-run progress lines on stderr
//	aggbench -list           # list experiment names
//
// The mesh scaling experiment takes size/topology overrides:
//
//	aggbench -exp scaling                          # N ∈ {25,100,400}, grid+disk
//	aggbench -exp scaling -mesh-sizes 49,225       # custom network sizes
//	aggbench -exp scaling -mesh-topos grid,chains  # custom generators
//
// The offered-load experiment (workload engine: open-loop Poisson flow
// arrivals and closed-loop think-time users, FCT p50/p95/p99 columns):
//
//	aggbench -exp load
//
// Performance tooling (see README "Performance"):
//
//	aggbench -cpuprofile cpu.pprof -exp fig7   # profile the hot path
//	aggbench -memprofile mem.pprof -exp fig7
//	aggbench -benchjson > BENCH_baseline.json  # headline benches as JSON
//	aggbench -benchfmt BENCH_baseline.json     # JSON -> `go test -bench`
//	                                           # text, for benchstat
//
// Crash-safe sweeps (see README "Crash-safe sweeps"): -store DIR flushes
// every completed cell durably as it lands; -resume additionally serves
// already-stored cells from the store, so a killed regeneration re-run
// with the same flags produces byte-identical output to an uninterrupted
// run; -retries N re-executes transient failures (wall-budget timeouts):
//
//	aggbench -store results/ -resume -json > eval.json
//
// Exit codes: 0 success; 1 a run failed or the environment did (store
// locked, I/O error); 2 flag/usage error. Usage errors never touch the
// store.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/experiments"
	"aggmac/internal/runner"
	"aggmac/internal/store"
)

// Exit codes, documented in the README: usage/validation errors must be
// distinguishable from run failures in scripts and CI, and must never
// create or lock the results store.
const (
	exitRunFail = 1
	exitUsage   = 2
)

func main() {
	var (
		exp        = flag.String("exp", "", "experiment to run (empty = all); see -list")
		seed       = flag.Int64("seed", 1, "simulation seed")
		quick      = flag.Bool("quick", false, "shorter UDP measurement windows")
		parallel   = flag.Int("parallel", 0, "concurrent simulation workers (0 = GOMAXPROCS, 1 = serial)")
		jsonOut    = flag.Bool("json", false, "emit tables as a JSON array")
		csvOut     = flag.Bool("csv", false, "emit tables as CSV")
		progress   = flag.Bool("progress", false, "report each completed run on stderr")
		list       = flag.Bool("list", false, "list experiment names and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchjson  = flag.Bool("benchjson", false, "run the headline benchmarks and emit name → ns/op, allocs/op, simsec/sec as JSON")
		benchsel   = flag.String("benchfilter", "", "with -benchjson: run only benches whose name contains this substring (baseline rows are append-only, so new rows are measured alone and merged)")
		benchfmt   = flag.String("benchfmt", "", "read a -benchjson file and print it in `go test -bench` text form (benchstat input)")
		meshSizes  = flag.String("mesh-sizes", "", "scaling experiment: comma list of network sizes (default 25,100,400)")
		meshTopos  = flag.String("mesh-topos", "", "scaling experiment: comma list of topologies: grid|disk|chains (default grid,disk)")
		storeDir   = flag.String("store", "", "durable results store directory; completed cells are flushed there as they land")
		resume     = flag.Bool("resume", false, "serve already-stored cells from -store instead of re-running them")
		retries    = flag.Int("retries", 0, "extra attempts for transiently failed runs (wall-budget timeouts), with capped exponential backoff")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "aggbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "aggbench:", err)
			}
		}()
	}

	if *benchfmt != "" {
		if err := writeBenchText(os.Stdout, *benchfmt); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		return
	}
	if *benchjson {
		if err := writeBenchJSON(os.Stdout, *benchsel); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
		return
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Println(e.Name)
		}
		return
	}
	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "aggbench: -json and -csv are mutually exclusive")
		os.Exit(exitUsage)
	}
	if *resume && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "aggbench: -resume requires -store")
		os.Exit(exitUsage)
	}
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "aggbench: -retries must be >= 0")
		os.Exit(exitUsage)
	}
	// Resolve the experiment selection before touching the store: an unknown
	// -exp is a usage error and must not create, lock or mutate anything.
	var selected []experiments.Experiment
	for _, e := range all {
		if *exp == "" || e.Name == *exp {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "aggbench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(exitUsage)
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Workers: *parallel}
	if *progress {
		opts.Progress = runner.StderrProgress
	}
	if *meshSizes != "" {
		for _, s := range strings.Split(*meshSizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 4 {
				fmt.Fprintf(os.Stderr, "aggbench: bad -mesh-sizes entry %q\n", s)
				os.Exit(exitUsage)
			}
			opts.MeshSizes = append(opts.MeshSizes, n)
		}
	}
	if *meshTopos != "" {
		for _, s := range strings.Split(*meshTopos, ",") {
			topo := strings.TrimSpace(s)
			switch topo {
			case core.MeshGrid, core.MeshDisk, core.MeshChains:
				opts.MeshTopos = append(opts.MeshTopos, topo)
			default:
				fmt.Fprintf(os.Stderr, "aggbench: bad -mesh-topos entry %q (grid|disk|chains)\n", s)
				os.Exit(exitUsage)
			}
		}
	}

	// All validation is done; only now may the store be created and locked.
	var st *store.Store
	var cached, executed, retried int
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(exitRunFail)
		}
		defer st.Close()
		opts.Cache = st
		opts.Resume = *resume
		// Count cache traffic for the resume summary without disturbing the
		// user's -progress reporter. OnResult calls are serialized per pool
		// and experiments run sequentially, so plain ints are safe.
		user := opts.Progress
		opts.Progress = func(p runner.Progress) {
			if p.Cached {
				cached++
			} else {
				executed++
				if p.Attempts > 1 {
					retried++
				}
			}
			if user != nil {
				user(p)
			}
		}
	}
	opts.Retry = runner.RetryPolicy{MaxAttempts: *retries + 1}

	// JSON/CSV need the whole set before encoding; text mode prints each
	// table as soon as its runs finish.
	var tables []experiments.Table
	start := time.Now()
	for _, e := range selected {
		t, err := runExperiment(e, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aggbench: experiment %s: %v\n", e.Name, err)
			if st != nil {
				st.Close() // completed cells are already durable
			}
			os.Exit(exitRunFail)
		}
		if *jsonOut || *csvOut {
			tables = append(tables, t)
		} else {
			fmt.Println(t.Format())
		}
	}
	if st != nil {
		fmt.Fprintf(os.Stderr, "aggbench: store %s: %d cell(s) cached, %d executed, %d retried\n",
			st.Dir(), cached, executed, retried)
		if c := st.Stats().Corrupt; c > 0 {
			fmt.Fprintf(os.Stderr, "aggbench: store: quarantined %d corrupt object(s)\n", c)
		}
	}

	switch {
	case *jsonOut:
		if err := experiments.WriteJSON(os.Stdout, tables); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
	case *csvOut:
		if err := experiments.WriteCSV(os.Stdout, tables); err != nil {
			fmt.Fprintln(os.Stderr, "aggbench:", err)
			os.Exit(1)
		}
	default:
		fmt.Printf("regenerated %d experiment(s) in %v (wall clock)\n",
			len(selected), time.Since(start).Round(time.Millisecond))
	}
}

// runExperiment converts a failed run's panic (how experiments.plan surfaces
// sim failures and cache errors) into an error, so main can exit with the
// run-failure code instead of a stack trace.
func runExperiment(e experiments.Experiment, opts experiments.Options) (t experiments.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(error); ok {
				err = re
			} else {
				err = fmt.Errorf("%v", r)
			}
		}
	}()
	return e.Run(opts), nil
}
