// The -benchjson / -benchfmt modes: run the repo's headline benchmarks
// in-process (via testing.Benchmark) and record ns/op, allocs/op and
// simsec/sec as JSON, so the perf trajectory of the simulator is committed
// alongside the code (BENCH_baseline.json) and CI can compare fresh runs
// against it with benchstat.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// BenchRecord is one benchmark's committed measurement.
type BenchRecord struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimsecPerSec float64 `json:"simsec_per_sec"`
	Mbps         float64 `json:"mbps"`
}

// headlineBenches mirrors the BenchmarkTCP2Hop*/BenchmarkTCPStarBA benches
// in bench_test.go: same configs, same per-iteration seed derivation, so a
// `go test -bench` run is directly comparable to a -benchjson record.
func headlineBenches() []struct {
	Name string
	Cfg  core.TCPConfig
} {
	return []struct {
		Name string
		Cfg  core.TCPConfig
	}{
		{"BenchmarkTCP2HopNA", core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2}},
		{"BenchmarkTCP2HopUA", core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Hops: 2}},
		{"BenchmarkTCP2HopBA", core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2}},
		{"BenchmarkTCP2HopDBA", core.TCPConfig{Scheme: mac.DBA, Rate: phy.Rate2600k, Hops: 2}},
		{"BenchmarkTCPStarBA", core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Star: true}},
	}
}

func measure(cfg core.TCPConfig) BenchRecord {
	var mbps float64
	var simulated time.Duration
	var wall time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		simulated = 0
		start := time.Now()
		for i := 0; i < b.N; i++ {
			cfg.Seed = int64(i + 1)
			res := core.RunTCP(cfg)
			simulated += res.Elapsed
			mbps = res.ThroughputMbps
		}
		wall = time.Since(start)
	})
	rec := BenchRecord{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Mbps:        mbps,
	}
	if w := wall.Seconds(); w > 0 {
		rec.SimsecPerSec = simulated.Seconds() / w
	}
	return rec
}

func writeBenchJSON(w io.Writer) error {
	out := make(map[string]BenchRecord)
	for _, hb := range headlineBenches() {
		fmt.Fprintf(os.Stderr, "aggbench: benching %s\n", hb.Name)
		out[hb.Name] = measure(hb.Cfg)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeBenchText converts a -benchjson file to `go test -bench` output text
// so benchstat can diff a committed baseline against a fresh run.
func writeBenchText(w io.Writer, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var recs map[string]BenchRecord
	if err := json.Unmarshal(blob, &recs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(recs))
	for n := range recs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "goos: linux")
	fmt.Fprintln(w, "goarch: amd64")
	fmt.Fprintln(w, "pkg: aggmac")
	for _, n := range names {
		r := recs[n]
		// Repeat each measurement so benchstat has enough samples to print
		// a delta against a -count=5 fresh run (a single sample renders as
		// "~" and defeats the CI regression grep). Names carry no
		// -GOMAXPROCS suffix; the CI job strips the suffix from the fresh
		// run so the rows key together.
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "%s \t 1\t%.0f ns/op\t%d B/op\t%d allocs/op\t%.2f simsec/sec\n",
				n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.SimsecPerSec)
		}
	}
	return nil
}
