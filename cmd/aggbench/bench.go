// The -benchjson / -benchfmt modes: run the repo's headline benchmarks
// in-process (via testing.Benchmark) and record ns/op, allocs/op and
// simsec/sec as JSON, so the perf trajectory of the simulator is committed
// alongside the code (BENCH_baseline.json) and CI can compare fresh runs
// against it with benchstat.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/experiments"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/traffic"
)

// BenchRecord is one benchmark's committed measurement.
type BenchRecord struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimsecPerSec float64 `json:"simsec_per_sec"`
	Mbps         float64 `json:"mbps"`
}

// benchCase is one headline benchmark: per iteration it runs a full
// simulation at the given seed and reports goodput plus simulated time.
type benchCase struct {
	Name string
	Run  func(seed int64) (mbps float64, simulated time.Duration)
}

func tcpCase(name string, cfg core.TCPConfig) benchCase {
	return benchCase{Name: name, Run: func(seed int64) (float64, time.Duration) {
		cfg.Seed = seed
		res := core.RunTCP(cfg)
		return res.ThroughputMbps, res.Elapsed
	}}
}

func meshCase(name string, cfg core.MeshTCPConfig) benchCase {
	return benchCase{Name: name, Run: func(seed int64) (float64, time.Duration) {
		cfg.Seed = seed
		res := core.RunMeshTCP(cfg)
		return res.AggregateMbps, res.Elapsed
	}}
}

// mediumTxCase mirrors internal/medium's BenchmarkMediumTx/<name> rows
// through the shared TxBench harness: per-op cost of one transmission burst
// on a k×k grid. The workload is built lazily on the first iteration and
// reused, so — like the Go benchmark — the recorded ns/op and B/op are the
// steady state, not construction. Seeds are ignored: the workload is
// deterministic and stateless across bursts.
func mediumTxCase(name string, k int, dense bool) benchCase {
	var tb *medium.TxBench
	return benchCase{Name: name, Run: func(int64) (float64, time.Duration) {
		if tb == nil {
			tb = medium.NewTxBench(k, dense)
		}
		before := tb.SimNow()
		tb.Burst()
		return 0, tb.SimNow() - before
	}}
}

func scenarioCase(name string, cfg core.ScenarioConfig) benchCase {
	return benchCase{Name: name, Run: func(seed int64) (float64, time.Duration) {
		cfg.Seed = seed
		res := core.RunScenario(cfg)
		return res.AggregateMbps, res.Elapsed
	}}
}

// headlineBenches mirrors the BenchmarkTCP2Hop*/BenchmarkTCPStarBA and
// BenchmarkMesh* benches in bench_test.go: same configs, same
// per-iteration seed derivation, so a `go test -bench` run is directly
// comparable to a -benchjson record. The mesh entries are the scaling and
// mobility experiments' own cells (experiments.ScalingCell /
// experiments.MobilityCell); the Dense variant runs the identical scenario
// on the O(N) dense-scan medium, so the committed baseline pins the
// neighbor index's speedup.
func headlineBenches() []benchCase {
	cases := []benchCase{
		tcpCase("BenchmarkTCP2HopNA", core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2}),
		tcpCase("BenchmarkTCP2HopUA", core.TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Hops: 2}),
		tcpCase("BenchmarkTCP2HopBA", core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2}),
		tcpCase("BenchmarkTCP2HopDBA", core.TCPConfig{Scheme: mac.DBA, Rate: phy.Rate2600k, Hops: 2}),
		tcpCase("BenchmarkTCPStarBA", core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Star: true}),
		meshCase("BenchmarkMeshGrid100BA", experiments.ScalingCell(core.MeshGrid, mac.BA, 100, 0)),
		meshCase("BenchmarkMeshGrid400BA", experiments.ScalingCell(core.MeshGrid, mac.BA, 400, 0)),
		meshCase("BenchmarkMeshDisk100BA", experiments.ScalingCell(core.MeshDisk, mac.BA, 100, 0)),
	}
	dense := experiments.ScalingCell(core.MeshGrid, mac.BA, 100, 0)
	dense.DenseScan = true
	cases = append(cases, meshCase("BenchmarkMeshGrid100BADense", dense))
	// Sharded twins of the scaling cells: identical scenarios on the
	// parallel engine, so the baseline pins the conservative
	// synchronization's overhead (single-core) or speedup (multi-core).
	shard400 := experiments.ScalingCell(core.MeshGrid, mac.BA, 400, 0)
	shard400.Shards = 4
	cases = append(cases, meshCase("BenchmarkMeshGrid400BAShard4", shard400))
	cases = append(cases, meshCase("BenchmarkMeshGrid1600BA",
		experiments.ScalingCell(core.MeshGrid, mac.BA, 1600, 0)))
	shard1600 := experiments.ScalingCell(core.MeshGrid, mac.BA, 1600, 0)
	shard1600.Shards = 4
	cases = append(cases, meshCase("BenchmarkMeshGrid1600BAShard4", shard1600))
	cases = append(cases, meshCase("BenchmarkMeshGridWaypointBA",
		experiments.MobilityCell(mac.BA, 4, 500*time.Millisecond, 0)))
	// The workload engine's own cells: the offered-load experiment's
	// highest open-loop rate and its closed-loop population, both under
	// BA — they price flow arrivals, per-flow sources and FCT accounting
	// on top of the usual mesh traffic.
	cases = append(cases,
		scenarioCase("BenchmarkScenarioOpenBA",
			experiments.LoadCell(traffic.ModeOpen, mac.BA, 1.0, 0, 0, false)),
		scenarioCase("BenchmarkScenarioClosedBA",
			experiments.LoadCell(traffic.ModeClosed, mac.BA, 0, 6, 0, false)))
	// The medium's transmission-burst micro-benches (see internal/medium
	// BenchmarkMediumTx): the rows whose B/op the CI bench gate watches for
	// sparse-table allocation regressions.
	for _, k := range []int{5, 10, 20} { // N = 25, 100, 400
		for _, mode := range []struct {
			name  string
			dense bool
		}{{"indexed", false}, {"dense", true}} {
			cases = append(cases, mediumTxCase(
				fmt.Sprintf("BenchmarkMediumTx/N%d/%s", k*k, mode.name), k, mode.dense))
		}
	}
	return cases
}

func measure(bc benchCase) BenchRecord {
	var mbps float64
	var simulated time.Duration
	var wall time.Duration
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		simulated = 0
		start := time.Now()
		for i := 0; i < b.N; i++ {
			m, sim := bc.Run(int64(i + 1))
			simulated += sim
			mbps = m
		}
		wall = time.Since(start)
	})
	rec := BenchRecord{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Mbps:        mbps,
	}
	if w := wall.Seconds(); w > 0 {
		rec.SimsecPerSec = simulated.Seconds() / w
	}
	return rec
}

func writeBenchJSON(w io.Writer, filter string) error {
	out := make(map[string]BenchRecord)
	for _, bc := range headlineBenches() {
		if filter != "" && !strings.Contains(bc.Name, filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "aggbench: benching %s\n", bc.Name)
		out[bc.Name] = measure(bc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeBenchText converts a -benchjson file to `go test -bench` output text
// so benchstat can diff a committed baseline against a fresh run.
func writeBenchText(w io.Writer, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var recs map[string]BenchRecord
	if err := json.Unmarshal(blob, &recs); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(recs))
	for n := range recs {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "goos: linux")
	fmt.Fprintln(w, "goarch: amd64")
	fmt.Fprintln(w, "pkg: aggmac")
	for _, n := range names {
		r := recs[n]
		// Repeat each measurement so benchstat has enough samples to print
		// a delta against a -count=5 fresh run (a single sample renders as
		// "~" and defeats the CI regression grep). Names carry no
		// -GOMAXPROCS suffix; the CI job strips the suffix from the fresh
		// run so the rows key together.
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "%s \t 1\t%.0f ns/op\t%d B/op\t%d allocs/op\t%.2f simsec/sec\n",
				n, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.SimsecPerSec)
		}
	}
	return nil
}
