// rateadapt demonstrates Hydra's rate-adaptation algorithms (§4.1.2) with
// the §7 rate-adaptive aggregation extension: ARF probes its way up the
// rate table from transmission outcomes, RBAR jumps straight to the
// fastest reliable rate from the CTS SNR feedback, and AutoAggSize keeps
// every aggregate inside the channel-coherence budget at whatever rate is
// in force — so aggregation stays safe while the rate moves.
//
//	go run ./examples/rateadapt
package main

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/rate"
)

func run(label string, snr float64, mk func() mac.RateController) {
	res := core.RunTCP(core.TCPConfig{
		Scheme: mac.BA, Rate: phy.Rate650k, Hops: 2, Seed: 1,
		FileBytes:   100_000,
		AutoAggSize: true,
		Phy:         phyAt(snr),
		Tweak:       func(o *mac.Options) { o.RateController = mk() },
	})
	fmt.Printf("%-22s SNR=%4.1f dB: %.3f Mbps (done in %v)\n",
		label, snr, res.ThroughputMbps, res.Elapsed.Round(time.Millisecond))
}

func phyAt(snr float64) *phy.Params {
	p := phy.DefaultParams()
	p.SNRdB = snr
	return &p
}

func main() {
	fmt.Println("2-hop TCP transfer, starting rate 0.65 Mbps, adaptive from there:")
	for _, snr := range []float64{25, 18, 14} {
		run("fixed 0.65", snr, func() mac.RateController { return rate.Fixed(phy.Rate650k) })
		run("ARF", snr, func() mac.RateController { return rate.NewARF(phy.Rate650k) })
		run("RBAR", snr, func() mac.RateController {
			p := phy.DefaultParams()
			p.SNRdB = snr
			return rate.NewRBAR(p, phy.Rate650k)
		})
		fmt.Println()
	}
	fmt.Println("ARF climbs by probing (and pays for failed probes); RBAR uses the")
	fmt.Println("explicit SNR feedback Hydra carries in its RTS/CTS exchange, so it")
	fmt.Println("reaches the best rate after the first CTS.")
}
