// routediscovery replaces the paper's static routes with on-demand (AODV
// style) route discovery over a radio-limited 3-hop chain, then runs a TCP
// transfer across the discovered path. The route-request flood is exactly
// the broadcast control traffic §3.2 motivates broadcast aggregation with:
// under BA the RREQs ride inside data frames.
//
//	go run ./examples/routediscovery
package main

import (
	"fmt"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/routing"
	"aggmac/internal/tcp"
	"aggmac/internal/topology"
)

func main() {
	// A 3-hop chain where radios only reach adjacent neighbours (unlike
	// the paper's one-room testbed, discovery here is genuinely
	// multi-hop). Start from the standard topology and cut the long links.
	net := topology.NewLinear(3, topology.Config{
		Seed: 1,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			return mac.DefaultOptions(mac.BA, phy.Rate1300k)
		},
	})
	for i := 0; i < 4; i++ {
		for j := i + 2; j < 4; j++ {
			net.Medium.SetConnected(medium.NodeID(i), medium.NodeID(j), false)
		}
	}
	// Drop the static routes the builder installed: routing is on-demand.
	for _, node := range net.Nodes {
		for d := network.NodeID(0); d < 4; d++ {
			node.DelRoute(d)
		}
	}
	routers := make([]*routing.Router, 4)
	for i, node := range net.Nodes {
		routers[i] = routing.New(net.Sched, node, routing.DefaultConfig())
	}

	stacks := make([]*tcp.Stack, 4)
	for i, node := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, node, tcp.DefaultConfig())
	}

	const fileSize = 100_000
	var done time.Duration
	var rcvd int
	lis := stacks[3].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) {
			rcvd += len(b)
			if rcvd >= fileSize && done == 0 {
				done = time.Duration(net.Sched.Now())
			}
		}
		c.OnPeerClose = func() { c.Close() }
	}
	net.Sched.After(0, "connect", func() {
		conn := stacks[0].Connect(3, 80)
		conn.OnEstablished = func() {
			fmt.Printf("connection established at t=%v (discovery + handshake)\n",
				time.Duration(net.Sched.Now()).Round(time.Millisecond))
			_ = conn.Send(make([]byte, fileSize))
			conn.Close()
		}
	})
	net.Sched.RunUntil(120 * time.Second)

	fmt.Printf("transferred %d bytes over a discovered 3-hop route in %v (%.3f Mbps)\n",
		rcvd, done.Round(time.Millisecond), float64(fileSize)*8/done.Seconds()/1e6)
	for i, r := range routers {
		s := r.Stats()
		fmt.Printf("node %d: %d RREQ sent, %d RREP sent/fwd, %d routes installed\n",
			i, s.RREQSent, s.RREPSent+s.RREPFwd, s.RoutesAdded)
	}
	next, _ := net.Nodes[0].Route(3)
	fmt.Printf("node 0 reaches node 3 via node %d\n", next)
}
