// tcptransfer compares the paper's four MAC configurations — no
// aggregation (NA), unicast aggregation (UA), broadcast aggregation with
// TCP-ACKs-as-broadcasts (BA), and delayed BA (DBA) — across all four
// experiment rates on 2- and 3-hop chains. This is the workload of the
// paper's Figures 8, 11 and 13.
//
//	go run ./examples/tcptransfer
package main

import (
	"fmt"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func main() {
	schemes := []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA}
	for _, hops := range []int{2, 3} {
		fmt.Printf("%d-hop chain, 0.2 MB transfer (Mbps):\n", hops)
		fmt.Printf("%-6s", "")
		for _, r := range phy.ExperimentRates() {
			fmt.Printf("%10s", r)
		}
		fmt.Println()
		base := make([]float64, len(phy.ExperimentRates()))
		for _, s := range schemes {
			fmt.Printf("%-6s", s.Name())
			for i, r := range phy.ExperimentRates() {
				res := core.RunTCP(core.TCPConfig{Scheme: s, Rate: r, Hops: hops, Seed: 1})
				if s.Name() == "NA" {
					base[i] = res.ThroughputMbps
				}
				fmt.Printf("%10.3f", res.ThroughputMbps)
				_ = i
			}
			fmt.Println()
		}
		// Gain of full BA over no aggregation at the top rate.
		ba := core.RunTCP(core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: hops, Seed: 1})
		fmt.Printf("BA gains %.0f%% over NA at 2.6 Mbps\n\n",
			100*(ba.ThroughputMbps-base[3])/base[3])
	}
}
