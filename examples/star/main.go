// star runs the paper's two-session star topology (Figure 6): two servers
// stream files through a shared centre node to one client. Congestion at
// the centre lengthens its queues, which broadcast aggregation converts
// into bigger frames — ACKs for *different* servers ride one PHY frame
// together with data for the client, something unicast aggregation cannot
// do (§6.4.2, Tables 5–7).
//
//	go run ./examples/star
package main

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func run(scheme mac.Scheme) core.TCPResult {
	return core.RunTCP(core.TCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k, Star: true, Seed: 1,
	})
}

func main() {
	ua := run(mac.UA)
	ba := run(mac.BA)

	fmt.Println("star topology: servers 2,3 -> centre 1 -> client 0; two 0.2 MB sessions at 2.6 Mbps")
	fmt.Printf("%-4s %28s %28s\n", "", "unicast aggregation", "broadcast aggregation")
	for i := range ua.Sessions {
		fmt.Printf("session %d (server %d): %10.3f Mbps %27.3f Mbps\n",
			i, ua.Sessions[i].Server, ua.SessionMbps[i], ba.SessionMbps[i])
	}
	fmt.Printf("worst-case session:   %10.3f Mbps %27.3f Mbps  (+%.1f%%)\n",
		ua.ThroughputMbps, ba.ThroughputMbps,
		100*(ba.ThroughputMbps-ua.ThroughputMbps)/ua.ThroughputMbps)

	cu, cb := ua.Nodes[1], ba.Nodes[1]
	fmt.Printf("\nat the congested centre:\n")
	fmt.Printf("  UA: %4d TXs, %6.0f B/frame, %5.2f subframes, elapsed %v\n",
		cu.MAC.DataTx, cu.MAC.AvgFrameBytes(), cu.MAC.AvgSubframes(), ua.Elapsed.Round(time.Millisecond))
	fmt.Printf("  BA: %4d TXs, %6.0f B/frame, %5.2f subframes, elapsed %v\n",
		cb.MAC.DataTx, cb.MAC.AvgFrameBytes(), cb.MAC.AvgSubframes(), ba.Elapsed.Round(time.Millisecond))
	fmt.Printf("  BA folded %d TCP ACKs (for both servers) into broadcast portions\n",
		cb.MAC.BroadcastSubTx)
	if cu.MAC.QueueDrops > 0 || cb.MAC.QueueDrops > 0 {
		fmt.Printf("  queue overflow at the centre: UA dropped %d, BA dropped %d (cf. §6.4.5)\n",
			cu.MAC.QueueDrops, cb.MAC.QueueDrops)
	}
}
