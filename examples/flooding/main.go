// flooding shows how route-discovery-style broadcast traffic erodes UDP
// goodput on a 2-hop chain, and how broadcast aggregation folds the floods
// into data transmissions almost for free (the paper's §6.3 / Figure 9).
//
//	go run ./examples/flooding
package main

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func main() {
	intervals := []time.Duration{0, time.Second, 200 * time.Millisecond, 100 * time.Millisecond, 50 * time.Millisecond}

	fmt.Println("2-hop UDP goodput at 1.3 Mbps under flooding (every node floods):")
	fmt.Printf("%-22s %12s %12s %8s\n", "flooding interval", "no agg", "bcast agg", "agg win")
	for _, iv := range intervals {
		na := core.RunUDP(core.UDPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Hops: 2,
			FloodInterval: iv, Seed: 1, Duration: 40 * time.Second})
		ba := core.RunUDP(core.UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2,
			FloodInterval: iv, Seed: 1, Duration: 40 * time.Second})
		label := "none"
		if iv > 0 {
			label = iv.String()
		}
		fmt.Printf("%-22s %9.3f Mb %9.3f Mb %+7.1f%%\n", label,
			na.ThroughputMbps, ba.ThroughputMbps,
			100*(ba.ThroughputMbps-na.ThroughputMbps)/na.ThroughputMbps)
	}

	// How the relay handles the floods under BA: they ride along.
	res := core.RunUDP(core.UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2,
		FloodInterval: 500 * time.Millisecond, Seed: 1, Duration: 40 * time.Second})
	relay := core.Relay(res.Nodes)
	fmt.Printf("\nunder BA at 0.5s flooding: relay sent %d broadcast subframes inside %d aggregates\n",
		relay.MAC.BroadcastSubTx, relay.MAC.DataTx)
	fmt.Printf("flood receptions: %d across all nodes for %d sent (each flood is heard by both neighbours)\n",
		res.FloodsRcvd, res.FloodsSent)
}
