// Quickstart: run one 0.2 MB TCP transfer over a 2-hop wireless chain with
// broadcast aggregation (the paper's BA scheme) and print the end-to-end
// throughput plus what the relay did with the frames.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func main() {
	res := core.RunTCP(core.TCPConfig{
		Scheme: mac.BA,        // unicast + broadcast aggregation, TCP ACKs as broadcasts
		Rate:   phy.Rate2600k, // 2.6 Mbps (16-QAM 1/2 on the Hydra PHY)
		Hops:   2,             // server — relay — client
		Seed:   1,
	})

	fmt.Printf("transferred %d bytes over 2 hops in %v\n",
		core.PaperFileBytes, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("end-to-end throughput: %.3f Mbps\n\n", res.ThroughputMbps)

	relay := core.Relay(res.Nodes)
	fmt.Printf("at the relay:\n")
	fmt.Printf("  %d aggregate transmissions, %.2f subframes each, %.0f B average\n",
		relay.MAC.DataTx, relay.MAC.AvgSubframes(), relay.MAC.AvgFrameBytes())
	fmt.Printf("  %d TCP ACKs carried as broadcast subframes (no RTS/CTS, no link ACK)\n",
		relay.MAC.BroadcastSubTx)
	fmt.Printf("  airtime overhead: %.1f%% (headers+control+backoff+IFS)\n",
		100*relay.MAC.TimeOverhead())

	// The same transfer without any aggregation, for contrast.
	na := core.RunTCP(core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2, Seed: 1})
	fmt.Printf("\nwithout aggregation: %.3f Mbps — aggregation gained %.0f%%\n",
		na.ThroughputMbps, 100*(res.ThroughputMbps-na.ThroughputMbps)/na.ThroughputMbps)
}
