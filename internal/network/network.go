// Package network provides the network layer of a simulated Hydra node:
// an IP-like packet format carried inside the Hydra/Click encapsulation,
// static routing (the paper forces multi-hop topologies with static routes
// because all nodes are in radio range), hop-by-hop forwarding, and the
// cross-layer classifier hook that sorts pure TCP ACKs into the MAC's
// broadcast queue.
package network

import (
	"encoding/binary"
	"errors"
	"fmt"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
)

// NodeID identifies a node at the network layer; it equals the node's
// medium.NodeID.
type NodeID int

// BroadcastID addresses a packet to every node in range.
const BroadcastID NodeID = -1

// IP protocol numbers used by the simulated stack.
const (
	ProtoTCP   = 6
	ProtoUDP   = 17
	ProtoFlood = 253 // flooding/control traffic (route-discovery stand-in)
)

// Wire layout: [encap 39 B][IP-like header 20 B][transport payload][pad].
const (
	// EncapLen reproduces Hydra's Click encapsulation/annotation overhead;
	// with it, an MSS-1357 TCP segment becomes exactly the paper's 1464 B
	// MAC frame.
	EncapLen = 39
	// IPHeaderLen is the IP-like header.
	IPHeaderLen = 20
	// HeaderLen is the total network-layer overhead per packet.
	HeaderLen = EncapLen + IPHeaderLen
	// MinSubframeBytes is the PHY's minimum MAC frame size (channel
	// tracking needs a minimum symbol count); it makes a pure TCP ACK
	// exactly the paper's 160 B MAC frame.
	MinSubframeBytes = 160

	encapMagic = 0x4859 // "HY"
	defaultTTL = 16
)

// Errors returned by Send and the decoder.
var (
	ErrNoRoute   = errors.New("network: no route to destination")
	ErrQueueFull = errors.New("network: MAC queue full")
	ErrBadPacket = errors.New("network: malformed packet")
)

// Packet is one network-layer datagram.
type Packet struct {
	Proto   uint8
	TTL     uint8
	Src     NodeID
	Dst     NodeID
	ID      uint16
	Payload []byte
}

func nodeIP(id NodeID) uint32 {
	if id == BroadcastID {
		return 0x0affffff // 10.255.255.255
	}
	return 0x0a000000 | uint32(uint16(id))
}

func ipNode(ip uint32) NodeID {
	if ip == 0x0affffff {
		return BroadcastID
	}
	return NodeID(ip & 0xffff)
}

// ipChecksum is the ones-complement sum over the header with the checksum
// field zeroed.
func ipChecksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(h[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal produces the subframe payload: encap, IP header, transport
// payload, and trailing pad up to the PHY minimum frame size.
func (p *Packet) Marshal() []byte {
	wire := frame.SubframeOverhead + HeaderLen + len(p.Payload)
	pad := 0
	if wire < MinSubframeBytes {
		pad = MinSubframeBytes - wire
	}
	b := make([]byte, HeaderLen, HeaderLen+len(p.Payload)+pad)

	// Encap: magic(2) flags(1) padLen(2) reserved(34).
	binary.BigEndian.PutUint16(b[0:2], encapMagic)
	b[2] = 1 // version
	binary.BigEndian.PutUint16(b[3:5], uint16(pad))

	// IP-like header.
	ip := b[EncapLen:]
	ip[0] = 0x45
	ip[1] = p.Proto
	ip[2] = p.TTL
	ip[3] = 0
	binary.BigEndian.PutUint16(ip[4:6], uint16(IPHeaderLen+len(p.Payload)))
	binary.BigEndian.PutUint16(ip[6:8], p.ID)
	binary.BigEndian.PutUint32(ip[8:12], nodeIP(p.Src))
	binary.BigEndian.PutUint32(ip[12:16], nodeIP(p.Dst))
	binary.BigEndian.PutUint16(ip[16:18], 0) // checksum slot
	binary.BigEndian.PutUint16(ip[18:20], 0)
	binary.BigEndian.PutUint16(ip[16:18], ipChecksum(ip[:IPHeaderLen]))

	b = append(b, p.Payload...)
	b = append(b, make([]byte, pad)...)
	return b
}

// Decode parses a subframe payload back into a Packet.
func Decode(b []byte) (Packet, error) {
	var p Packet
	if len(b) < HeaderLen {
		return p, fmt.Errorf("%w: %d bytes", ErrBadPacket, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != encapMagic {
		return p, fmt.Errorf("%w: bad encap magic", ErrBadPacket)
	}
	pad := int(binary.BigEndian.Uint16(b[3:5]))
	ip := b[EncapLen:]
	if ip[0] != 0x45 {
		return p, fmt.Errorf("%w: bad IP version", ErrBadPacket)
	}
	if ipChecksum(ip[:IPHeaderLen]) != 0 {
		// Checksum over a header including its own checksum folds to zero.
		return p, fmt.Errorf("%w: IP checksum", ErrBadPacket)
	}
	totLen := int(binary.BigEndian.Uint16(ip[4:6]))
	if totLen < IPHeaderLen || EncapLen+totLen+pad != len(b) {
		return p, fmt.Errorf("%w: length %d + pad %d vs %d", ErrBadPacket, totLen, pad, len(b))
	}
	p.Proto = ip[1]
	p.TTL = ip[2]
	p.ID = binary.BigEndian.Uint16(ip[6:8])
	p.Src = ipNode(binary.BigEndian.Uint32(ip[8:12]))
	p.Dst = ipNode(binary.BigEndian.Uint32(ip[12:16]))
	p.Payload = ip[IPHeaderLen:totLen]
	return p, nil
}

// Handler consumes packets addressed to (or broadcast at) this node.
type Handler func(pkt Packet)

// AckClassifier reports whether a transport payload is a pure TCP ACK
// (no data, not part of connection setup or teardown). The TCP package
// provides the implementation; injecting it here keeps the deliberate
// layering violation in one visible place.
type AckClassifier func(transport []byte) bool

// Stats counts network-layer events per node.
type Stats struct {
	Sent        int
	Forwarded   int
	Delivered   int
	AcksBcast   int // pure TCP ACKs routed through the broadcast queue
	ParseErrors int
	TTLDrops    int
	NoRoute     int
	QueueFull   int
}

// Node is the network layer of one simulated node.
type Node struct {
	id       NodeID
	mac      *mac.MAC
	routes   map[NodeID]NodeID // destination -> next hop
	handlers map[uint8]Handler
	classify AckClassifier
	nextID   uint16
	stats    Stats

	// OnNoRoute, when set, fires whenever Send finds no route for dst —
	// the hook an on-demand routing protocol uses to start discovery.
	OnNoRoute func(dst NodeID)
}

// NewNode creates the network layer for a node. Construct the MAC with the
// node's Bind() callback, then call AttachMAC:
//
//	node := network.NewNode(id)
//	m := mac.New(sched, med, id, opts, node.Bind())
//	node.AttachMAC(m)
func NewNode(id NodeID) *Node {
	return &Node{
		id:       id,
		routes:   make(map[NodeID]NodeID),
		handlers: make(map[uint8]Handler),
	}
}

// Bind returns the mac.DeliverFunc that feeds this node.
func (n *Node) Bind() mac.DeliverFunc {
	return func(d frame.DecodedSubframe, viaBroadcast bool) { n.fromMAC(d, viaBroadcast) }
}

// AttachMAC wires the node's transmit path. It panics if called twice or
// skipped before Send: both are wiring bugs.
func (n *Node) AttachMAC(m *mac.MAC) {
	if n.mac != nil {
		panic("network: MAC attached twice")
	}
	n.mac = m
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// MAC returns the underlying MAC entity.
func (n *Node) MAC() *mac.MAC { return n.mac }

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats { return n.stats }

// AddRoute installs a route: packets for dst leave via next.
func (n *Node) AddRoute(dst, next NodeID) { n.routes[dst] = next }

// DelRoute removes the route for dst (route expiry).
func (n *Node) DelRoute(dst NodeID) { delete(n.routes, dst) }

// Route reports the installed next hop for dst.
func (n *Node) Route(dst NodeID) (NodeID, bool) {
	next, ok := n.routes[dst]
	return next, ok
}

// Handle registers the upper-layer handler for an IP protocol number.
func (n *Node) Handle(proto uint8, h Handler) { n.handlers[proto] = h }

// SetAckClassifier installs the pure-TCP-ACK classifier.
func (n *Node) SetAckClassifier(c AckClassifier) { n.classify = c }

// Send originates or forwards a packet. Broadcast packets go out the
// broadcast queue unacknowledged; unicast packets are routed, and pure TCP
// ACKs ride the broadcast queue when the MAC's scheme classifies them.
func (n *Node) Send(pkt Packet) error {
	if pkt.TTL == 0 {
		pkt.TTL = defaultTTL
	}
	if pkt.ID == 0 {
		n.nextID++
		pkt.ID = n.nextID
	}
	out := mac.Outgoing{Src: frame.NodeAddr(int(pkt.Src)), Payload: pkt.Marshal()}
	viaBroadcastQueue := false
	if pkt.Dst == BroadcastID {
		out.Dst = frame.Broadcast
		viaBroadcastQueue = true
	} else {
		next, ok := n.routes[pkt.Dst]
		if !ok {
			n.stats.NoRoute++
			if n.OnNoRoute != nil {
				n.OnNoRoute(pkt.Dst)
			}
			return fmt.Errorf("%w: %d", ErrNoRoute, pkt.Dst)
		}
		out.Dst = frame.NodeAddr(int(next))
		if pkt.Proto == ProtoTCP && n.classify != nil &&
			n.mac.Opts().Scheme.ClassifyTCPAcks && n.classify(pkt.Payload) {
			viaBroadcastQueue = true
			n.stats.AcksBcast++
		}
	}
	if !n.mac.Enqueue(out, viaBroadcastQueue) {
		n.stats.QueueFull++
		return ErrQueueFull
	}
	n.stats.Sent++
	return nil
}

// fromMAC handles subframes the MAC delivered: parse, then consume or
// forward.
func (n *Node) fromMAC(d frame.DecodedSubframe, viaBroadcast bool) {
	pkt, err := Decode(d.Payload)
	if err != nil {
		n.stats.ParseErrors++
		return
	}
	if pkt.Dst == BroadcastID || pkt.Dst == n.id {
		n.stats.Delivered++
		if h := n.handlers[pkt.Proto]; h != nil {
			h(pkt)
		}
		return
	}
	// Relay role: forward along the static route.
	if pkt.TTL <= 1 {
		n.stats.TTLDrops++
		return
	}
	pkt.TTL--
	n.stats.Forwarded++
	_ = n.Send(pkt) // route misses / queue overflow are counted in stats
}
