package network

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// rig builds a linear chain of n nodes with routes both directions.
type rig struct {
	s     *sim.Scheduler
	med   *medium.Medium
	nodes []*Node
}

func newRig(t *testing.T, n int, scheme mac.Scheme) *rig {
	t.Helper()
	r := &rig{s: sim.NewScheduler(7)}
	r.med = medium.New(r.s, phy.DefaultParams(), n)
	opts := mac.DefaultOptions(scheme, phy.Rate1300k)
	for i := 0; i < n; i++ {
		node := NewNode(NodeID(i))
		m := mac.New(r.s, r.med, medium.NodeID(i), opts, node.Bind())
		node.AttachMAC(m)
		r.nodes = append(r.nodes, node)
	}
	// Linear chain routes: next hop toward either end.
	for i := 0; i < n; i++ {
		for d := 0; d < n; d++ {
			if d == i {
				continue
			}
			next := i + 1
			if d < i {
				next = i - 1
			}
			r.nodes[i].AddRoute(NodeID(d), NodeID(next))
		}
	}
	return r
}

func TestPacketRoundTrip(t *testing.T) {
	p := Packet{Proto: ProtoUDP, TTL: 9, Src: 0, Dst: 2, ID: 77, Payload: []byte("hello world")}
	b := p.Marshal()
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != p.Proto || got.TTL != p.TTL || got.Src != p.Src || got.Dst != p.Dst || got.ID != p.ID {
		t.Fatalf("fields mangled: %+v vs %+v", got, p)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mangled")
	}
}

func TestPacketMinFramePadding(t *testing.T) {
	// A 20-byte transport payload (pure TCP ACK) pads so the MAC subframe
	// is exactly the paper's 160 B.
	p := Packet{Proto: ProtoTCP, TTL: 1, Src: 0, Dst: 1, Payload: make([]byte, 20)}
	sf := frame.Subframe{Payload: p.Marshal()}
	if sf.WireSize() != MinSubframeBytes {
		t.Fatalf("ACK subframe = %d B, want %d", sf.WireSize(), MinSubframeBytes)
	}
	// An MSS-sized TCP segment -> 1464 B subframe.
	p.Payload = make([]byte, 20+1357)
	sf = frame.Subframe{Payload: p.Marshal()}
	if sf.WireSize() != 1464 {
		t.Fatalf("data subframe = %d B, want 1464", sf.WireSize())
	}
}

func TestPacketBroadcastRoundTrip(t *testing.T) {
	p := Packet{Proto: ProtoFlood, TTL: 1, Src: 3, Dst: BroadcastID, Payload: []byte("flood")}
	got, err := Decode(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != BroadcastID || got.Src != 3 {
		t.Fatalf("broadcast fields mangled: %+v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil decoded")
	}
	if _, err := Decode(make([]byte, HeaderLen)); err == nil {
		t.Error("zero magic decoded")
	}
	p := Packet{Proto: ProtoUDP, TTL: 1, Src: 0, Dst: 1, Payload: []byte("x")}
	b := p.Marshal()
	b[EncapLen+9] ^= 0xff // corrupt an IP header byte
	if _, err := Decode(b); err == nil {
		t.Error("checksum failure not detected")
	}
}

func TestOneHopDelivery(t *testing.T) {
	r := newRig(t, 2, mac.UA)
	var got []Packet
	r.nodes[1].Handle(ProtoUDP, func(p Packet) { got = append(got, p) })
	r.s.After(0, "send", func() {
		if err := r.nodes[0].Send(Packet{Proto: ProtoUDP, Src: 0, Dst: 1, Payload: []byte("abc")}); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	r.s.Run()
	if len(got) != 1 || string(got[0].Payload) != "abc" {
		t.Fatalf("delivery: %+v", got)
	}
	if r.nodes[1].Stats().Delivered != 1 {
		t.Fatal("delivered counter wrong")
	}
}

func TestMultiHopForwarding(t *testing.T) {
	r := newRig(t, 4, mac.UA)
	var got []Packet
	r.nodes[3].Handle(ProtoUDP, func(p Packet) { got = append(got, p) })
	r.s.After(0, "send", func() {
		_ = r.nodes[0].Send(Packet{Proto: ProtoUDP, Src: 0, Dst: 3, Payload: []byte("far")})
	})
	r.s.Run()
	if len(got) != 1 {
		t.Fatalf("3-hop delivery failed: %d packets", len(got))
	}
	if got[0].Src != 0 || got[0].TTL != defaultTTL-2 {
		t.Fatalf("forwarded packet fields: %+v", got[0])
	}
	if r.nodes[1].Stats().Forwarded != 1 || r.nodes[2].Stats().Forwarded != 1 {
		t.Fatal("relays did not count forwards")
	}
}

func TestTTLExpiry(t *testing.T) {
	r := newRig(t, 3, mac.UA)
	delivered := 0
	r.nodes[2].Handle(ProtoUDP, func(Packet) { delivered++ })
	r.s.After(0, "send", func() {
		_ = r.nodes[0].Send(Packet{Proto: ProtoUDP, TTL: 1, Src: 0, Dst: 2, Payload: []byte("dies")})
	})
	r.s.Run()
	if delivered != 0 {
		t.Fatal("TTL-1 packet crossed two hops")
	}
	if r.nodes[1].Stats().TTLDrops != 1 {
		t.Fatal("relay did not count the TTL drop")
	}
}

func TestNoRoute(t *testing.T) {
	r := newRig(t, 2, mac.UA)
	err := r.nodes[0].Send(Packet{Proto: ProtoUDP, Src: 0, Dst: 9})
	if err == nil {
		t.Fatal("send to unrouted destination succeeded")
	}
	if r.nodes[0].Stats().NoRoute != 1 {
		t.Fatal("NoRoute not counted")
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	r := newRig(t, 4, mac.BA)
	got := make([]int, 4)
	for i := range r.nodes {
		i := i
		r.nodes[i].Handle(ProtoFlood, func(Packet) { got[i]++ })
	}
	r.s.After(0, "send", func() {
		_ = r.nodes[1].Send(Packet{Proto: ProtoFlood, Src: 1, Dst: BroadcastID, Payload: []byte("flood")})
	})
	r.s.Run()
	for i := range got {
		want := 1
		if i == 1 {
			want = 0 // no loopback
		}
		if got[i] != want {
			t.Errorf("node %d got %d floods, want %d", i, got[i], want)
		}
	}
}

func TestClassifierRoutesAcksToBroadcastQueue(t *testing.T) {
	r := newRig(t, 2, mac.BA)
	// Classifier: treat any 20-byte payload as a pure ACK.
	r.nodes[0].SetAckClassifier(func(b []byte) bool { return len(b) == 20 })
	r.s.After(0, "send", func() {
		_ = r.nodes[0].Send(Packet{Proto: ProtoTCP, Src: 0, Dst: 1, Payload: make([]byte, 20)})
		_ = r.nodes[0].Send(Packet{Proto: ProtoTCP, Src: 0, Dst: 1, Payload: make([]byte, 500)})
	})
	r.s.Run()
	if r.nodes[0].Stats().AcksBcast != 1 {
		t.Fatalf("AcksBcast = %d, want 1", r.nodes[0].Stats().AcksBcast)
	}
	c := r.nodes[0].MAC().Counters()
	if c.BroadcastSubTx != 1 || c.UnicastSubTx != 1 {
		t.Fatalf("portions %d/%d, want 1/1", c.BroadcastSubTx, c.UnicastSubTx)
	}
}

func TestClassifierIgnoredWhenSchemeOff(t *testing.T) {
	r := newRig(t, 2, mac.UA) // UA does not classify ACKs
	r.nodes[0].SetAckClassifier(func(b []byte) bool { return true })
	r.s.After(0, "send", func() {
		_ = r.nodes[0].Send(Packet{Proto: ProtoTCP, Src: 0, Dst: 1, Payload: make([]byte, 20)})
	})
	r.s.Run()
	if r.nodes[0].Stats().AcksBcast != 0 {
		t.Fatal("UA scheme must not classify ACKs as broadcasts")
	}
	if c := r.nodes[0].MAC().Counters(); c.BroadcastSubTx != 0 {
		t.Fatal("ACK left through the broadcast portion under UA")
	}
}

func TestForwardedAckReclassifiedAtRelay(t *testing.T) {
	// An ACK traveling 0->2 via relay 1 must ride the broadcast queue on
	// both hops.
	r := newRig(t, 3, mac.BA)
	for _, n := range r.nodes {
		n.SetAckClassifier(func(b []byte) bool { return len(b) == 20 })
	}
	delivered := 0
	r.nodes[2].Handle(ProtoTCP, func(Packet) { delivered++ })
	r.s.After(0, "send", func() {
		_ = r.nodes[0].Send(Packet{Proto: ProtoTCP, Src: 0, Dst: 2, Payload: make([]byte, 20)})
	})
	r.s.Run()
	if delivered != 1 {
		t.Fatalf("ACK not delivered end-to-end: %d", delivered)
	}
	if r.nodes[1].Stats().AcksBcast != 1 {
		t.Fatal("relay did not reclassify the forwarded ACK")
	}
	if c := r.nodes[1].MAC().Counters(); c.BroadcastSubTx != 1 {
		t.Fatal("relay sent the ACK outside the broadcast portion")
	}
}

// Property: Marshal/Decode round-trips arbitrary packets.
func TestPropertyPacketRoundTrip(t *testing.T) {
	f := func(proto, ttl uint8, src, dst uint16, id uint16, payload []byte) bool {
		if ttl == 0 {
			ttl = 1
		}
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		p := Packet{Proto: proto, TTL: ttl, Src: NodeID(src), Dst: NodeID(dst), ID: id, Payload: payload}
		got, err := Decode(p.Marshal())
		return err == nil && got.Proto == p.Proto && got.TTL == p.TTL &&
			got.Src == p.Src && got.Dst == p.Dst && got.ID == p.ID &&
			bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}
