package mac

import "time"

// Counters accumulate everything the paper's detailed analysis
// (Tables 3–8) reports, per node.
type Counters struct {
	// Transmit side.
	DataTx         int   // aggregate (floor-acquired data) transmissions
	BroadcastOnly  int   // of which carried no unicast portion
	SubframesTx    int   // subframes across all data transmissions
	BroadcastSubTx int   // subframes sent in broadcast portions
	UnicastSubTx   int   // subframes sent in unicast portions
	BodyBytesTx    int64 // aggregate body bytes (both portions)
	PayloadBytesTx int64 // payload bytes inside those subframes
	HeaderBytesTx  int64 // subframe header+FCS+pad bytes
	Retries        int   // retransmission attempts
	Drops          int   // unicast bundles dropped at retry limit
	QueueDrops     int   // frames rejected by full queues
	RTSTx, CTSTx   int
	AckTx          int // link-level ACKs sent (receiver role)

	// Receive side.
	RxDelivered   int // subframes handed to the upper layer
	RxDropsCRC    int // subframes lost to FCS failure or lost delineation
	RxDropsAddr   int // overheard subframes dropped by address filtering
	RxBundleFails int // whole unicast portions discarded (all-or-nothing)
	RxDupes       int // retransmitted duplicates suppressed (DedupWindow)

	// Airtime accounting for Table 4. Categories sum to the node's share
	// of channel occupancy attributable to its own exchanges.
	PayloadTime  time.Duration // payload bytes on the air
	HeaderTime   time.Duration // subframe header/FCS/pad bytes on the air
	PreambleTime time.Duration // PHY preamble/PLCP + broadcast descriptor
	ControlTime  time.Duration // RTS/CTS/ACK airtime (incl. their preambles)
	IFSTime      time.Duration // SIFS + DIFS spent in own exchanges
	BackoffTime  time.Duration // backoff slots consumed before own TXs
}

// AvgFrameBytes is the mean aggregate body size per data transmission
// (Table 3 "Frame Size").
func (c *Counters) AvgFrameBytes() float64 {
	if c.DataTx == 0 {
		return 0
	}
	return float64(c.BodyBytesTx) / float64(c.DataTx)
}

// SizeOverhead is the fraction of transmitted bytes spent on MAC subframe
// headers plus the PHY preamble expressed in byte-equivalents
// (Table 3 "Size overhead").
func (c *Counters) SizeOverhead(preambleBytesPerTx float64) float64 {
	over := float64(c.HeaderBytesTx) + preambleBytesPerTx*float64(c.DataTx)
	total := float64(c.BodyBytesTx) + preambleBytesPerTx*float64(c.DataTx)
	if total == 0 {
		return 0
	}
	return over / total
}

// TimeOverhead is the fraction of exchange airtime not spent on payload
// bits (Table 4).
func (c *Counters) TimeOverhead() float64 {
	over := c.HeaderTime + c.PreambleTime + c.ControlTime + c.IFSTime + c.BackoffTime
	total := over + c.PayloadTime
	if total == 0 {
		return 0
	}
	return float64(over) / float64(total)
}

// AvgSubframes is the mean subframe count per data transmission.
func (c *Counters) AvgSubframes() float64 {
	if c.DataTx == 0 {
		return 0
	}
	return float64(c.SubframesTx) / float64(c.DataTx)
}
