package mac

import (
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// rig wires n MACs to one medium and records deliveries per node.
type rig struct {
	s     *sim.Scheduler
	med   *medium.Medium
	macs  []*MAC
	recvd [][]delivery
}

type delivery struct {
	payload      []byte
	viaBroadcast bool
	from         frame.Addr
}

func newRig(t *testing.T, n int, opts Options) *rig {
	t.Helper()
	r := &rig{
		s:     sim.NewScheduler(42),
		recvd: make([][]delivery, n),
	}
	r.med = medium.New(r.s, phy.DefaultParams(), n)
	for i := 0; i < n; i++ {
		i := i
		r.macs = append(r.macs, New(r.s, r.med, medium.NodeID(i), opts, func(d frame.DecodedSubframe, viaB bool) {
			r.recvd[i] = append(r.recvd[i], delivery{
				payload:      append([]byte(nil), d.Payload...),
				viaBroadcast: viaB,
				from:         d.Addr2,
			})
		}))
	}
	return r
}

func payload(n int, tag byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = tag
	}
	return p
}

func (r *rig) enqueue(from, to int, p []byte, viaBroadcast bool) {
	dst := frame.NodeAddr(to)
	if to < 0 {
		dst = frame.Broadcast
	}
	r.s.After(0, "enq", func() {
		r.macs[from].Enqueue(Outgoing{Dst: dst, Src: frame.NodeAddr(from), Payload: p}, viaBroadcast)
	})
}

func TestUnicastDelivery(t *testing.T) {
	r := newRig(t, 2, DefaultOptions(NA, phy.Rate1300k))
	r.enqueue(0, 1, payload(1436, 7), false)
	r.s.Run()
	if len(r.recvd[1]) != 1 {
		t.Fatalf("node 1 got %d frames, want 1", len(r.recvd[1]))
	}
	d := r.recvd[1][0]
	if d.viaBroadcast || len(d.payload) != 1436 || d.payload[0] != 7 {
		t.Fatalf("bad delivery: %+v", d)
	}
	c0, c1 := r.macs[0].Counters(), r.macs[1].Counters()
	if c0.RTSTx != 1 || c1.CTSTx != 1 || c1.AckTx != 1 {
		t.Errorf("control exchange: RTS=%d CTS=%d ACK=%d, want 1/1/1", c0.RTSTx, c1.CTSTx, c1.AckTx)
	}
	if c0.DataTx != 1 || c0.SubframesTx != 1 {
		t.Errorf("DataTx=%d SubframesTx=%d, want 1/1", c0.DataTx, c0.SubframesTx)
	}
	if c0.Retries != 0 || c0.Drops != 0 {
		t.Errorf("unexpected retries=%d drops=%d", c0.Retries, c0.Drops)
	}
}

func TestNANoAggregation(t *testing.T) {
	r := newRig(t, 2, DefaultOptions(NA, phy.Rate1300k))
	for i := 0; i < 4; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	c := r.macs[0].Counters()
	if c.DataTx != 4 {
		t.Fatalf("NA sent %d transmissions for 4 frames, want 4", c.DataTx)
	}
	if len(r.recvd[1]) != 4 {
		t.Fatalf("node 1 got %d frames, want 4", len(r.recvd[1]))
	}
}

func TestUAAggregatesToSameDestination(t *testing.T) {
	r := newRig(t, 2, DefaultOptions(UA, phy.Rate1300k))
	for i := 0; i < 3; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	c := r.macs[0].Counters()
	// 3×1464 = 4392 ≤ 5120: all three fit one aggregate. (The first frame
	// may leave alone if the MAC wins the floor before the rest arrive;
	// enqueues here land at the same instant, so one TX.)
	if c.DataTx != 1 || c.SubframesTx != 3 {
		t.Fatalf("UA: %d TXs with %d subframes, want 1 TX with 3", c.DataTx, c.SubframesTx)
	}
	if len(r.recvd[1]) != 3 {
		t.Fatalf("node 1 got %d frames, want 3", len(r.recvd[1]))
	}
	// Order preserved.
	for i, d := range r.recvd[1] {
		if d.payload[0] != byte(i) {
			t.Errorf("frame %d out of order (tag %d)", i, d.payload[0])
		}
	}
}

func TestUAMaxAggregationSize(t *testing.T) {
	r := newRig(t, 2, DefaultOptions(UA, phy.Rate1300k))
	// 4 data frames: 4×1464 = 5856 > 5120, so 3 + 1.
	for i := 0; i < 4; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	c := r.macs[0].Counters()
	if c.DataTx != 2 {
		t.Fatalf("UA sent %d TXs for 4 frames with a 5 KB cap, want 2", c.DataTx)
	}
	if len(r.recvd[1]) != 4 {
		t.Fatalf("node 1 got %d frames, want 4", len(r.recvd[1]))
	}
}

func TestUASkipOverScan(t *testing.T) {
	// Frames interleaved for two destinations: the first TX gathers both
	// frames for the head's destination past the interloper.
	r := newRig(t, 3, DefaultOptions(UA, phy.Rate1300k))
	r.enqueue(0, 1, payload(500, 1), false)
	r.enqueue(0, 2, payload(500, 2), false)
	r.enqueue(0, 1, payload(500, 3), false)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.DataTx != 2 {
		t.Fatalf("skip-over: %d TXs, want 2 (two to node1 together, one to node2)", c.DataTx)
	}
	if len(r.recvd[1]) != 2 || len(r.recvd[2]) != 1 {
		t.Fatalf("deliveries: node1=%d node2=%d, want 2/1", len(r.recvd[1]), len(r.recvd[2]))
	}
}

func TestUADoesNotMixDestinations(t *testing.T) {
	r := newRig(t, 3, DefaultOptions(UA, phy.Rate1300k))
	r.enqueue(0, 1, payload(500, 1), false)
	r.enqueue(0, 2, payload(500, 2), false)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.DataTx != 2 {
		t.Fatalf("frames for different destinations shared a TX: %d TXs", c.DataTx)
	}
}

func TestBroadcastNoControlExchange(t *testing.T) {
	r := newRig(t, 3, DefaultOptions(NA, phy.Rate1300k))
	r.enqueue(0, -1, payload(132, 9), true)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.RTSTx != 0 {
		t.Error("broadcast transmission used RTS")
	}
	if c.BroadcastOnly != 1 {
		t.Errorf("BroadcastOnly = %d, want 1", c.BroadcastOnly)
	}
	for i := 1; i <= 2; i++ {
		if len(r.recvd[i]) != 1 || !r.recvd[i][0].viaBroadcast {
			t.Errorf("node %d broadcast delivery wrong: %+v", i, r.recvd[i])
		}
		if r.macs[i].Counters().AckTx != 0 {
			t.Errorf("node %d acked a broadcast", i)
		}
	}
}

func TestBACombinesBroadcastAndUnicast(t *testing.T) {
	r := newRig(t, 3, DefaultOptions(BA, phy.Rate1300k))
	// One classified TCP ACK (broadcast queue, unicast address to node 2)
	// plus two data frames for node 1: a single PHY frame carries all.
	r.enqueue(0, 2, payload(132, 8), true)
	r.enqueue(0, 1, payload(1436, 1), false)
	r.enqueue(0, 1, payload(1436, 2), false)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.DataTx != 1 {
		t.Fatalf("BA sent %d TXs, want 1 combined", c.DataTx)
	}
	if c.BroadcastSubTx != 1 || c.UnicastSubTx != 2 {
		t.Fatalf("portions: bcast=%d ucast=%d, want 1/2", c.BroadcastSubTx, c.UnicastSubTx)
	}
	// Node 2 gets the ACK (via broadcast portion, addressed to it).
	if len(r.recvd[2]) != 1 || !r.recvd[2][0].viaBroadcast {
		t.Fatalf("node 2 ACK delivery: %+v", r.recvd[2])
	}
	// Node 1 gets the data and dropped the overheard ACK.
	if len(r.recvd[1]) != 2 {
		t.Fatalf("node 1 got %d frames, want 2", len(r.recvd[1]))
	}
	if r.macs[1].Counters().RxDropsAddr == 0 {
		t.Error("node 1 should have dropped the overheard unicast-addressed broadcast subframe")
	}
}

func TestOverheardClassifiedAckNotDelivered(t *testing.T) {
	r := newRig(t, 3, DefaultOptions(BA, phy.Rate1300k))
	r.enqueue(0, 2, payload(132, 8), true) // ACK for node 2 rides broadcast
	r.s.Run()
	if len(r.recvd[1]) != 0 {
		t.Fatal("node 1 delivered a TCP ACK addressed to node 2 (would duplicate at IP layer)")
	}
	if len(r.recvd[2]) != 1 {
		t.Fatal("node 2 missed its ACK")
	}
}

func TestRetryAndDropWhenPeerGone(t *testing.T) {
	opts := DefaultOptions(UA, phy.Rate1300k)
	opts.RetryLimit = 3
	r := newRig(t, 2, opts)
	r.med.SetConnected(0, 1, false)
	r.enqueue(0, 1, payload(100, 1), false)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.Retries != 3 {
		t.Errorf("retries = %d, want 3", c.Retries)
	}
	if c.Drops != 1 {
		t.Errorf("drops = %d, want 1", c.Drops)
	}
	if len(r.recvd[1]) != 0 {
		t.Error("unreachable peer received data")
	}
}

func TestAllOrNothingUnicastPortion(t *testing.T) {
	// A huge aggregate at 0.65 Mbps blows the coherence budget: tail
	// subframes fail CRC, so the receiver must deliver nothing and send
	// no ACK; the sender retries and finally drops.
	opts := DefaultOptions(UA, phy.Rate650k)
	opts.MaxAggBytes = 16000
	opts.RetryLimit = 2
	r := newRig(t, 2, opts)
	for i := 0; i < 10; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	c1 := r.macs[1].Counters()
	if c1.RxBundleFails == 0 {
		t.Error("no all-or-nothing bundle failure observed")
	}
	if len(r.recvd[1]) != 0 {
		t.Errorf("node 1 delivered %d frames from corrupt bundles, want 0", len(r.recvd[1]))
	}
	if r.macs[0].Counters().Drops == 0 {
		t.Error("sender never dropped the doomed bundle")
	}
}

func TestAutoAggSizeStaysWithinCoherence(t *testing.T) {
	// Same setup as above but AutoAggSize caps the aggregate to the
	// coherence budget: everything gets through.
	opts := DefaultOptions(UA, phy.Rate650k)
	opts.MaxAggBytes = 16000
	opts.AutoAggSize = true
	r := newRig(t, 2, opts)
	for i := 0; i < 10; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	if len(r.recvd[1]) != 10 {
		t.Fatalf("node 1 got %d/10 frames with AutoAggSize", len(r.recvd[1]))
	}
	if d := r.macs[0].Counters().Drops; d != 0 {
		t.Errorf("AutoAggSize still dropped %d frames", d)
	}
}

func TestBlockAckPartialDelivery(t *testing.T) {
	// Same doomed-aggregate setup, but with the block-ACK extension the
	// in-budget head subframes are delivered and acknowledged; only the
	// aged tail retries.
	opts := DefaultOptions(UA, phy.Rate650k)
	opts.MaxAggBytes = 16000
	opts.BlockAck = true
	r := newRig(t, 2, opts)
	for i := 0; i < 8; i++ {
		r.enqueue(0, 1, payload(1436, byte(i)), false)
	}
	r.s.Run()
	if len(r.recvd[1]) != 8 {
		t.Fatalf("block-ACK delivered %d/8 frames", len(r.recvd[1]))
	}
	if r.macs[0].Counters().Drops != 0 {
		t.Error("block-ACK mode dropped frames that should have been selectively retransmitted")
	}
}

func TestDBADelaysUntilThreeFrames(t *testing.T) {
	opts := DefaultOptions(DBA, phy.Rate1300k)
	r := newRig(t, 2, opts)
	// Two frames at t=0, third at t=5ms: nothing may fly before the third
	// arrives (flush timeout is 25 ms).
	r.enqueue(0, 1, payload(1436, 1), false)
	r.enqueue(0, 1, payload(1436, 2), false)
	var firstTx sim.Time
	r.s.After(4*time.Millisecond, "check", func() {
		if r.macs[0].Counters().DataTx != 0 {
			t.Error("DBA transmitted before reaching 3 queued frames")
		}
	})
	r.s.After(5*time.Millisecond, "third", func() {
		r.macs[0].Enqueue(Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0), Payload: payload(1436, 3)}, false)
		firstTx = r.s.Now()
	})
	r.s.Run()
	_ = firstTx
	c := r.macs[0].Counters()
	if c.DataTx != 1 || c.SubframesTx != 3 {
		t.Fatalf("DBA: %d TXs / %d subframes, want 1/3", c.DataTx, c.SubframesTx)
	}
}

func TestDBAFlushTimeout(t *testing.T) {
	opts := DefaultOptions(DBA, phy.Rate1300k)
	opts.FlushTimeout = 10 * time.Millisecond
	r := newRig(t, 2, opts)
	r.enqueue(0, 1, payload(1436, 1), false)
	r.s.Run()
	if len(r.recvd[1]) != 1 {
		t.Fatal("DBA flush timeout never released the lone frame")
	}
	if r.s.Now() < 10*time.Millisecond {
		t.Fatalf("frame left at %v, before the flush timeout", r.s.Now())
	}
}

func TestForwardAggregationDisabled(t *testing.T) {
	s := BA
	s.DisableForwardAggregation = true
	opts := DefaultOptions(s, phy.Rate1300k)
	r := newRig(t, 2, opts)
	r.enqueue(0, 1, payload(132, 1), true) // backward (ACK) frame
	r.enqueue(0, 1, payload(132, 2), true) // second ACK: must NOT join
	r.enqueue(0, 1, payload(1436, 3), false)
	r.enqueue(0, 1, payload(1436, 4), false) // second data: must NOT join
	r.s.Run()
	c := r.macs[0].Counters()
	// 1 ACK + 1 data per TX: two transmissions.
	if c.DataTx != 2 {
		t.Fatalf("no-forward-agg: %d TXs, want 2", c.DataTx)
	}
	if c.SubframesTx != 4 {
		t.Fatalf("subframes = %d, want 4", c.SubframesTx)
	}
	if len(r.recvd[1]) != 4 {
		t.Fatalf("node 1 got %d frames, want 4", len(r.recvd[1]))
	}
}

func TestTwoContendersBothComplete(t *testing.T) {
	r := newRig(t, 3, DefaultOptions(UA, phy.Rate1300k))
	for i := 0; i < 5; i++ {
		r.enqueue(0, 1, payload(1000, byte(i)), false)
		r.enqueue(2, 1, payload(1000, byte(0x80+i)), false)
	}
	r.s.Run()
	if len(r.recvd[1]) != 10 {
		t.Fatalf("node 1 got %d frames, want 10", len(r.recvd[1]))
	}
	if r.macs[0].Counters().Drops+r.macs[2].Counters().Drops != 0 {
		t.Error("contention caused drops on a clean channel")
	}
}

func TestNAVSuppressesThirdParty(t *testing.T) {
	// Node 2 overhears the 0→1 exchange; its own frame for node 0 must
	// wait, and no collisions may occur on a fully-connected channel.
	r := newRig(t, 3, DefaultOptions(UA, phy.Rate1300k))
	r.enqueue(0, 1, payload(1436, 1), false)
	r.s.After(400*time.Microsecond, "enq2", func() {
		// Mid-RTS: node 2 wants to talk to node 0.
		r.macs[2].Enqueue(Outgoing{Dst: frame.NodeAddr(0), Src: frame.NodeAddr(2), Payload: payload(1436, 2)}, false)
	})
	r.s.Run()
	if len(r.recvd[1]) != 1 || len(r.recvd[0]) != 1 {
		t.Fatalf("deliveries: node1=%d node0=%d, want 1/1", len(r.recvd[1]), len(r.recvd[0]))
	}
	if col := r.med.Stats().Collisions; col != 0 {
		t.Errorf("%d collisions despite carrier sense + NAV", col)
	}
}

func TestQueueLimitDrops(t *testing.T) {
	opts := DefaultOptions(UA, phy.Rate1300k)
	opts.QueueLimit = 5
	r := newRig(t, 2, opts)
	r.s.After(0, "enq", func() {
		for i := 0; i < 10; i++ {
			r.macs[0].Enqueue(Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0), Payload: payload(100, byte(i))}, false)
		}
	})
	r.s.Run()
	c := r.macs[0].Counters()
	if c.QueueDrops != 5 {
		t.Fatalf("QueueDrops = %d, want 5", c.QueueDrops)
	}
	if len(r.recvd[1]) != 5 {
		t.Fatalf("node 1 got %d frames, want 5", len(r.recvd[1]))
	}
}

func TestCountersTimeAccounting(t *testing.T) {
	r := newRig(t, 2, DefaultOptions(NA, phy.Rate650k))
	r.enqueue(0, 1, payload(1436, 1), false)
	r.s.Run()
	c := r.macs[0].Counters()
	if c.PayloadTime <= 0 || c.HeaderTime <= 0 || c.PreambleTime <= 0 || c.ControlTime <= 0 || c.IFSTime <= 0 {
		t.Fatalf("incomplete time accounting: %+v", c)
	}
	// 1436 payload bytes at 0.65 Mbps ≈ 17.67 ms.
	wantPayload := phy.Airtime(1436, phy.Rate650k)
	if c.PayloadTime != wantPayload {
		t.Errorf("PayloadTime = %v, want %v", c.PayloadTime, wantPayload)
	}
	// Overhead fraction for a single maximum-size frame at 0.65 Mbps
	// should be in the vicinity of the paper's 22.4% (Table 4 NA column).
	over := c.TimeOverhead()
	if over < 0.10 || over > 0.35 {
		t.Errorf("NA time overhead at 0.65 = %.3f, expected ~0.15-0.25", over)
	}
}

func TestSchemeNames(t *testing.T) {
	if NA.Name() != "NA" || UA.Name() != "UA" || BA.Name() != "BA" || DBA.Name() != "DBA" {
		t.Fatalf("scheme names: %s %s %s %s", NA.Name(), UA.Name(), BA.Name(), DBA.Name())
	}
}

func TestFixedBroadcastRateUsed(t *testing.T) {
	opts := DefaultOptions(BA, phy.Rate2600k)
	opts.BroadcastRate = phy.Rate650k
	r := newRig(t, 2, opts)
	r.enqueue(0, 1, payload(132, 1), true)
	r.enqueue(0, 1, payload(1436, 2), false)
	start := time.Duration(-1)
	var airtime time.Duration
	r.s.After(0, "spy", func() { start = 0 })
	r.s.Run()
	_ = start
	_ = airtime
	// Verify via counters: the mixed TX occurred and both frames arrived.
	if len(r.recvd[1]) != 2 {
		t.Fatalf("node 1 got %d frames, want 2", len(r.recvd[1]))
	}
	c := r.macs[0].Counters()
	if c.BroadcastSubTx != 1 || c.UnicastSubTx != 1 {
		t.Fatalf("portions %d/%d, want 1/1", c.BroadcastSubTx, c.UnicastSubTx)
	}
}

func TestHeadOnlyGatherStopsAtForeignDst(t *testing.T) {
	opts := DefaultOptions(UA, phy.Rate1300k)
	opts.HeadOnlyGather = true
	r := newRig(t, 3, opts)
	r.enqueue(0, 1, payload(500, 1), false)
	r.enqueue(0, 2, payload(500, 2), false)
	r.enqueue(0, 1, payload(500, 3), false)
	r.s.Run()
	// Head-only: [1], [2], [1] — three transmissions (skip-over would do 2).
	if c := r.macs[0].Counters(); c.DataTx != 3 {
		t.Fatalf("head-only gather: %d TXs, want 3", c.DataTx)
	}
	if len(r.recvd[1]) != 2 || len(r.recvd[2]) != 1 {
		t.Fatalf("deliveries wrong: %d/%d", len(r.recvd[1]), len(r.recvd[2]))
	}
}

func TestBroadcastLastExposedToAging(t *testing.T) {
	// With broadcasts appended after a near-budget unicast portion, the
	// broadcast subframe rides in the aged tail and dies; prepended (the
	// paper's design) it survives. This is exactly the rationale of
	// §4.2.3's placement rule.
	run := func(last bool) (bcastDelivered int) {
		opts := DefaultOptions(BA, phy.Rate650k)
		opts.MaxAggBytes = 16000
		opts.BroadcastLast = last
		r := newRig(t, 2, opts)
		r.enqueue(0, 1, payload(132, 9), true)
		for i := 0; i < 8; i++ {
			r.enqueue(0, 1, payload(1436, byte(i)), false)
		}
		r.s.Run()
		for _, d := range r.recvd[1] {
			if d.viaBroadcast {
				bcastDelivered++
			}
		}
		return bcastDelivered
	}
	// Prepended: delivered at least once (each retry of the doomed unicast
	// bundle re-delivers it — retries keep the assembled frame).
	if got := run(false); got < 1 {
		t.Errorf("prepended broadcast lost (%d delivered)", got)
	}
	if got := run(true); got != 0 {
		t.Errorf("appended broadcast survived the aged tail (%d delivered)", got)
	}
}

func TestDedupSuppressesRetransmittedDuplicates(t *testing.T) {
	// Cut the reverse link so CTS/ACK never return: the receiver hears
	// every data attempt but the sender keeps retrying. Without dedup the
	// duplicates all reach the upper layer; with it, one copy does.
	run := func(window int) (delivered, dupes int) {
		opts := DefaultOptions(UA, phy.Rate1300k)
		opts.UseRTSCTS = false // data goes straight out, so receiver sees it
		opts.RetryLimit = 4
		opts.DedupWindow = window
		r := newRig(t, 2, opts)
		r.med.SetConnectedDirected(1, 0, false)
		r.enqueue(0, 1, payload(500, 7), false)
		r.s.Run()
		return len(r.recvd[1]), r.macs[1].Counters().RxDupes
	}
	delivered, _ := run(0)
	if delivered != 5 { // initial + 4 retries, no dedup
		t.Fatalf("without dedup: %d deliveries, want 5", delivered)
	}
	delivered, dupes := run(16)
	if delivered != 1 {
		t.Fatalf("with dedup: %d deliveries, want 1", delivered)
	}
	if dupes != 4 {
		t.Fatalf("dupes counted = %d, want 4", dupes)
	}
}

func TestDedupDoesNotSuppressDistinctFrames(t *testing.T) {
	opts := DefaultOptions(UA, phy.Rate1300k)
	opts.DedupWindow = 16
	r := newRig(t, 2, opts)
	for i := 0; i < 8; i++ {
		r.enqueue(0, 1, payload(500, byte(i)), false)
	}
	r.s.Run()
	if len(r.recvd[1]) != 8 {
		t.Fatalf("dedup ate distinct frames: %d of 8", len(r.recvd[1]))
	}
	if d := r.macs[1].Counters().RxDupes; d != 0 {
		t.Fatalf("false dupes: %d", d)
	}
}

func TestRTSIgnoredWhileBusyWithOwnExchange(t *testing.T) {
	// While node 1 awaits a CTS for its own exchange, an RTS addressed to
	// it must go unanswered (the sender times out and retries).
	r := newRig(t, 3, DefaultOptions(UA, phy.Rate1300k))
	// Node 1 starts an exchange toward node 2 that can never complete
	// (link cut), pinning it in awaiting-CTS retry cycles.
	r.med.SetConnectedDirected(2, 1, false)
	r.enqueue(1, 2, payload(1000, 1), false)
	// Node 0 tries to talk to node 1 meanwhile.
	r.s.After(5*time.Millisecond, "enq0", func() {
		r.macs[0].Enqueue(Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
			Payload: payload(1000, 2)}, false)
	})
	r.s.Run()
	// Node 1's exchange died (retry limit); node 0's eventually succeeded
	// once node 1 returned to idle between retries.
	if len(r.recvd[1]) != 1 {
		t.Fatalf("node 1 received %d frames, want 1 after contention resolves", len(r.recvd[1]))
	}
	if r.macs[1].Counters().Drops != 1 {
		t.Fatalf("node 1 drops = %d, want 1", r.macs[1].Counters().Drops)
	}
}

func TestReceiverSeesRetryFlag(t *testing.T) {
	// First data attempt is heard but its ACK path is cut, so the second
	// attempt arrives with the Retry bit set.
	opts := DefaultOptions(UA, phy.Rate1300k)
	opts.UseRTSCTS = false
	opts.RetryLimit = 1
	r := newRig(t, 2, opts)
	r.med.SetConnectedDirected(1, 0, false)
	retrySeen := false
	r.macs[1].deliver = func(d frame.DecodedSubframe, viaB bool) {
		if d.Retry {
			retrySeen = true
		}
	}
	r.enqueue(0, 1, payload(300, 5), false)
	r.s.Run()
	if !retrySeen {
		t.Fatal("retransmission did not carry the Retry flag")
	}
}

func TestBroadcastOnlyStillDefersToCarrier(t *testing.T) {
	// A broadcast-only transmission must wait out a busy medium like any
	// other: start a long unicast exchange, enqueue a broadcast elsewhere,
	// and verify zero collisions.
	r := newRig(t, 3, DefaultOptions(BA, phy.Rate650k))
	r.enqueue(0, 1, payload(1436, 1), false)
	r.s.After(2*time.Millisecond, "bcast", func() {
		r.macs[2].Enqueue(Outgoing{Dst: frame.Broadcast, Src: frame.NodeAddr(2),
			Payload: payload(132, 2)}, true)
	})
	r.s.Run()
	if col := r.med.Stats().Collisions; col != 0 {
		t.Fatalf("broadcast-only TX collided %d times despite carrier sense", col)
	}
	if len(r.recvd[1]) != 2 { // data + broadcast
		t.Fatalf("node 1 received %d frames, want 2", len(r.recvd[1]))
	}
}

func TestCountersAvgHelpersZeroSafe(t *testing.T) {
	var c Counters
	if c.AvgFrameBytes() != 0 || c.AvgSubframes() != 0 || c.TimeOverhead() != 0 || c.SizeOverhead(10) != 0 {
		t.Fatal("zero-valued counters must not divide by zero")
	}
}
