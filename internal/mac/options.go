package mac

import (
	"fmt"
	"strings"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
)

// RateController adapts the unicast-portion rate per destination; the
// algorithms live in internal/rate (ARF, RBAR, Fixed). A nil controller
// pins Options.UnicastRate, which is the paper's experimental setup.
type RateController interface {
	TxRate(dst frame.Addr) phy.Rate
	OnResult(dst frame.Addr, r phy.Rate, ok bool)
	OnFeedback(dst frame.Addr, snrdB float64)
}

// Scheme selects which of the paper's aggregation techniques are active.
type Scheme struct {
	// AggregateUnicast enables unicast aggregation (§3.1): several frames
	// for one receiver share a PHY frame and one link-level ACK.
	AggregateUnicast bool
	// AggregateBroadcast enables broadcast aggregation (§3.2): broadcast
	// subframes are prepended to the unicast portion.
	AggregateBroadcast bool
	// ClassifyTCPAcks treats pure TCP ACKs as broadcast frames (§3.3).
	// The classifier itself lives in the network layer; this flag tells it
	// whether to route ACKs to the broadcast queue.
	ClassifyTCPAcks bool
	// DelayMinFrames, when >1, holds the floor request until that many
	// frames are queued (§6.4.3, delayed BA). Applied per node; the
	// experiment runner sets it on relays only.
	DelayMinFrames int
	// DisableForwardAggregation limits both portions to one subframe each,
	// isolating backward (data+ACK) aggregation (§6.4.4).
	DisableForwardAggregation bool
}

// The paper's four configurations.
var (
	// NA: no aggregation.
	NA = Scheme{}
	// UA: unicast aggregation only.
	UA = Scheme{AggregateUnicast: true}
	// BA: unicast + broadcast aggregation with TCP ACKs as broadcasts.
	BA = Scheme{AggregateUnicast: true, AggregateBroadcast: true, ClassifyTCPAcks: true}
	// DBA: BA plus a 3-frame minimum at relays.
	DBA = Scheme{AggregateUnicast: true, AggregateBroadcast: true, ClassifyTCPAcks: true, DelayMinFrames: 3}
)

// SchemeByName resolves the paper's abbreviation (case-insensitive) to its
// scheme — the single resolver the CLIs share. The scenario schema
// validates names against traffic.SchemeNames, which must list exactly
// the names accepted here (enforced by a test in internal/core).
func SchemeByName(name string) (Scheme, error) {
	switch strings.ToLower(name) {
	case "na":
		return NA, nil
	case "ua":
		return UA, nil
	case "ba":
		return BA, nil
	case "dba":
		return DBA, nil
	}
	return Scheme{}, fmt.Errorf("unknown scheme %q (na|ua|ba|dba)", name)
}

// Name returns the paper's abbreviation for the scheme.
func (s Scheme) Name() string {
	switch {
	case s.DelayMinFrames > 1:
		return "DBA"
	case s.AggregateBroadcast:
		return "BA"
	case s.AggregateUnicast:
		return "UA"
	default:
		return "NA"
	}
}

// Options configure one node's MAC.
type Options struct {
	Scheme Scheme

	// UnicastRate is the PHY rate for the unicast portion (and for NA/UA
	// transmissions of every kind).
	UnicastRate phy.Rate
	// RateController, when non-nil, overrides UnicastRate per destination
	// and learns from exchange outcomes and CTS SNR feedback (Hydra's
	// RBAR/ARF support, §4.1.2).
	RateController RateController
	// BroadcastRate is the rate for the broadcast portion. The paper
	// evaluates both a fixed broadcast rate (Fig. 10) and
	// broadcast-at-unicast-rate (Fig. 11 onward).
	BroadcastRate phy.Rate

	// MaxAggBytes caps the summed wire size of all subframes in one
	// aggregate. The paper settles on 5 KB (§6.1).
	MaxAggBytes int
	// AutoAggSize, when set, additionally caps the aggregate so its
	// airtime fits the channel-coherence budget at the current rate
	// (the paper's §7 rate-adaptive aggregation extension).
	AutoAggSize bool

	// UseRTSCTS gates the RTS/CTS exchange for transmissions with a
	// unicast portion (the Hydra MAC always uses it).
	UseRTSCTS bool
	// BlockAck enables the §7 block-ACK extension: per-subframe bitmap
	// acknowledgements with selective retransmission.
	BlockAck bool
	// HeadOnlyGather restricts unicast assembly to a consecutive run at
	// the queue head instead of scanning past frames for other
	// destinations (ablation of the §4.2.3 "gathers" behaviour).
	HeadOnlyGather bool
	// BroadcastLast appends broadcast subframes after the unicast portion
	// instead of prepending them, exposing them to channel-estimate aging
	// (ablation of the paper's placement rationale, §4.2.3).
	BroadcastLast bool
	// DedupWindow, when > 0, suppresses duplicate deliveries of
	// retransmitted subframes by remembering the last N delivered frames.
	// Hydra's subframe header (Fig. 4) has no sequence-control field, so
	// the prototype could not dedup; this extension closes that gap using
	// a (transmitter, payload-CRC) cache consulted only for frames with
	// the Retry flag set.
	DedupWindow int

	// RetryLimit is the number of retransmission attempts for the unicast
	// portion before it is dropped.
	RetryLimit int
	// CWmin and CWmax bound the contention window (slots).
	CWmin, CWmax int
	// QueueLimit bounds each of the two transmit queues (frames).
	QueueLimit int

	// FlushTimeout bounds how long DelayMinFrames may hold traffic. The
	// paper does not describe its tail behaviour; without a flush the last
	// frames of a transfer would deadlock.
	FlushTimeout time.Duration

	// Timing parameters.
	Slot, SIFS, DIFS time.Duration
	// CTSTimeout and AckTimeout extra slack beyond the expected response
	// airtime.
	TimeoutSlack time.Duration
}

// DefaultOptions returns the calibrated Hydra-like MAC configuration at the
// given rate, with broadcasts sent at the unicast rate.
func DefaultOptions(s Scheme, rate phy.Rate) Options {
	return Options{
		Scheme:        s,
		UnicastRate:   rate,
		BroadcastRate: rate,
		MaxAggBytes:   5120,
		UseRTSCTS:     true,
		RetryLimit:    7,
		CWmin:         31,
		CWmax:         1023,
		QueueLimit:    50,
		FlushTimeout:  5 * time.Millisecond,
		Slot:          20 * time.Microsecond,
		SIFS:          10 * time.Microsecond,
		DIFS:          50 * time.Microsecond,
		TimeoutSlack:  60 * time.Microsecond,
	}
}
