// Package mac implements the paper's medium access control layer: IEEE
// 802.11 DCF (CSMA/CA with binary exponential backoff, NAV virtual carrier
// sense, RTS/CTS, link-level ACKs and retransmission) extended with the
// three aggregation techniques of Kim et al.: unicast aggregation,
// broadcast aggregation, and TCP ACKs carried as broadcast subframes.
//
// The transmit path keeps two queues — one for broadcast frames (including
// classified TCP ACKs) and one for unicast frames. When the DCF acquires
// the floor, the MAC assembles the aggregate: queued broadcast subframes
// first (least exposed to channel-estimate aging), then unicast subframes
// bound for the destination at the head of the unicast queue, up to the
// maximum aggregation size. Transmissions with a unicast portion use
// RTS/CTS and require a single link ACK; broadcast-only transmissions use
// neither.
//
// The receive path mirrors §4.2.2 of the paper: broadcast subframes are
// delivered individually as their CRCs pass (subframes addressed to another
// node are dropped, not forwarded up); the unicast portion is all-or-nothing
// — every CRC must pass before anything is delivered and the ACK sent.
package mac

import (
	"fmt"
	"hash/crc32"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
	"aggmac/internal/telemetry"
)

// txState enumerates the sender-side exchange states.
type txState int

const (
	stIdle txState = iota
	stAwaitCTS
	stSIFSData // CTS received, waiting SIFS before data
	stSending  // data on the air
	stAwaitAck
)

// Outgoing is one frame handed down by the network layer.
type Outgoing struct {
	Dst     frame.Addr // Addr1: next hop, or the broadcast address
	Src     frame.Addr // Addr3: original source
	Payload []byte
	seq     uint64
}

// DeliverFunc receives subframes that passed the MAC's receive rules.
// viaBroadcast tells the network layer the subframe arrived in the
// broadcast portion (so a unicast-addressed TCP ACK is recognisable).
type DeliverFunc func(d frame.DecodedSubframe, viaBroadcast bool)

// MAC is one node's MAC entity.
type MAC struct {
	id    medium.NodeID
	addr  frame.Addr
	sched *sim.Scheduler
	med   *medium.Medium
	opts  Options

	deliver DeliverFunc

	bq, uq []Outgoing
	seq    uint64

	cw           int
	retries      int
	backoffSlots int // -1: not drawn
	inAccess     bool
	state        txState
	respBusy     bool // transmitting a CTS/ACK response
	current      *frame.Aggregate
	currentUni   int // unicast subframes in current (for drop accounting)
	nav          sim.Time
	flushDue     bool
	down         bool // crashed: no tx, no rx, no responses (fault injection)

	difsTimer, slotTimer, respTimer, navTimer, flushTimer sim.Timer
	// The data-path and response-path timers are stored too so Reset can
	// cancel a mid-exchange MAC without leaving an event that would
	// dereference the cleared exchange state.
	sifsTimer, dataTimer, respSifsTimer, respEndTimer sim.Timer

	// Precomputed event callbacks: the DCF schedules thousands of timers per
	// simulated second, so the hot path hands the scheduler these stable
	// funcs instead of allocating a fresh closure (or method value) per At.
	resumeFn, difsFn, slotFn, timeoutFn, startDataFn, dataEndFn, respEndFn, flushFn func()

	// rxScratch is the reusable aggregate-decode buffer; RxAggregate and
	// everything it calls run synchronously, so one per MAC suffices.
	rxScratch frame.DecodedAggregate

	// aggScratch/sfScratch back the assembled aggregate. A MAC has at most
	// one exchange bundle in flight and assemble only runs once m.current is
	// nil again, so both recycle between exchanges without copies.
	aggScratch frame.Aggregate
	sfScratch  []frame.Subframe

	dedup    []uint64 // ring of recently delivered frame signatures
	dedupPos int

	// aggHist, when set, observes the body size of every transmitted
	// aggregate. Nil (the default) costs one predictable branch per
	// data transmission and nothing else.
	aggHist *telemetry.Histogram

	c Counters
}

// New creates a MAC for node id and attaches it to the medium.
func New(sched *sim.Scheduler, med *medium.Medium, id medium.NodeID, opts Options, deliver DeliverFunc) *MAC {
	if opts.QueueLimit <= 0 {
		opts.QueueLimit = 50
	}
	m := &MAC{
		id: id, addr: frame.NodeAddr(int(id)),
		sched: sched, med: med, opts: opts,
		deliver:      deliver,
		cw:           opts.CWmin,
		backoffSlots: -1,
	}
	m.resumeFn = m.resumeAccess
	m.difsFn = m.onDIFS
	m.slotFn = m.onSlot
	m.timeoutFn = m.onExchangeTimeout
	m.startDataFn = m.startData
	m.dataEndFn = m.onDataEnd
	m.respEndFn = func() { m.respBusy = false; m.resumeAccess() }
	m.flushFn = func() { m.flushDue = true; m.maybeStartAccess() }
	med.Attach(id, m)
	return m
}

// Addr returns the node's MAC address.
func (m *MAC) Addr() frame.Addr { return m.addr }

// Opts returns the MAC's configuration.
func (m *MAC) Opts() Options { return m.opts }

// Counters returns a snapshot of the node's counters.
func (m *MAC) Counters() Counters { return m.c }

// QueueLen returns the broadcast and unicast queue depths.
func (m *MAC) QueueLen() (broadcast, unicast int) { return len(m.bq), len(m.uq) }

// SetAggSizeHist attaches a telemetry histogram observing the body size
// (bytes) of every transmitted aggregate. A nil histogram handle is
// valid and free; observation itself never allocates, so metrics-off
// runs and golden hashes are untouched either way.
func (m *MAC) SetAggSizeHist(h *telemetry.Histogram) { m.aggHist = h }

// SetDown marks the MAC crashed (true) or recovered (false). A down MAC
// accepts no frames, starts no access cycles, and ignores everything it
// hears — the fault layer pairs SetDown(true) with Reset so the crash
// forgets all volatile state, and link cuts at the topology layer isolate
// the radio. Recovery is just SetDown(false): the MAC restarts from an
// empty, idle state as a rebooted node would.
func (m *MAC) SetDown(down bool) { m.down = down }

// Down reports whether the MAC is crashed.
func (m *MAC) Down() bool { return m.down }

// Reset drops all volatile MAC state: queues, the in-flight exchange,
// backoff and NAV, and every pending timer — including the mid-exchange
// data/response events, which would otherwise fire into the cleared state.
// Counters survive (they describe the run, not the node's uptime). Frames
// already on the air are the medium's business and complete there; the
// reset MAC simply no longer reacts to their outcome.
func (m *MAC) Reset() {
	m.difsTimer.Stop()
	m.slotTimer.Stop()
	m.respTimer.Stop()
	m.navTimer.Stop()
	m.flushTimer.Stop()
	m.sifsTimer.Stop()
	m.dataTimer.Stop()
	m.respSifsTimer.Stop()
	m.respEndTimer.Stop()
	m.c.Drops += len(m.bq) + len(m.uq) + m.currentUni
	m.bq = m.bq[:0]
	m.uq = m.uq[:0]
	m.current = nil
	m.currentUni = 0
	m.state = stIdle
	m.cw = m.opts.CWmin
	m.retries = 0
	m.backoffSlots = -1
	m.inAccess = false
	m.respBusy = false
	m.nav = 0
	m.flushDue = false
}

// PreambleBytesPerTx expresses the preamble+PLCP in byte-equivalents at the
// unicast rate, for the Table 3 size-overhead metric.
func (m *MAC) PreambleBytesPerTx() float64 {
	p := m.med.Params()
	return p.PreamblePLCP.Seconds() * float64(m.opts.UnicastRate.BitsPerSecond()) / 8
}

// Enqueue accepts a frame from the network layer. viaBroadcastQueue routes
// the frame through the broadcast queue (true for broadcast-addressed
// frames and for classified TCP ACKs). It reports false when the queue is
// full and the frame was dropped.
func (m *MAC) Enqueue(out Outgoing, viaBroadcastQueue bool) bool {
	if m.down {
		m.c.QueueDrops++
		return false
	}
	out.seq = m.seq
	m.seq++
	q := &m.uq
	if viaBroadcastQueue {
		q = &m.bq
	}
	if len(*q) >= m.opts.QueueLimit {
		m.c.QueueDrops++
		return false
	}
	*q = append(*q, out)
	m.maybeStartAccess()
	return true
}

func (m *MAC) queued() int { return len(m.bq) + len(m.uq) }

// mediumBusy folds physical carrier sense, NAV, our own responses and our
// own exchange state into one deferral predicate.
func (m *MAC) mediumBusy() bool {
	return m.med.CarrierBusy(m.id) || m.sched.Now() < m.nav || m.respBusy || m.state != stIdle
}

// maybeStartAccess begins a DCF access cycle when there is work to do.
func (m *MAC) maybeStartAccess() {
	if m.down || m.inAccess || m.state != stIdle {
		return
	}
	if m.current == nil {
		if m.queued() == 0 {
			return
		}
		// Delayed BA: hold the floor request until enough frames queue up,
		// bounded by the flush timeout so transfer tails drain.
		if min := m.opts.Scheme.DelayMinFrames; min > 1 && m.queued() < min && !m.flushDue {
			if !m.flushTimer.Pending() {
				m.flushTimer = m.sched.After(m.opts.FlushTimeout, "mac:flush", m.flushFn)
			}
			return
		}
	}
	m.inAccess = true
	m.resumeAccess()
}

// resumeAccess (re)starts the DIFS wait; called at access start and on every
// medium-idle transition.
func (m *MAC) resumeAccess() {
	if !m.inAccess || m.state != stIdle || m.respBusy {
		return
	}
	if m.mediumBusy() {
		m.armNavTimer()
		return
	}
	m.difsTimer.Stop()
	m.difsTimer = m.sched.After(m.opts.DIFS, "mac:difs", m.difsFn)
}

// armNavTimer schedules an access resume at NAV expiry (physical idleness
// produces its own CarrierIdle edge).
func (m *MAC) armNavTimer() {
	if m.sched.Now() >= m.nav {
		return
	}
	if m.navTimer.Pending() {
		return
	}
	m.navTimer = m.sched.At(m.nav, "mac:navExpiry", m.resumeFn)
}

func (m *MAC) onDIFS() {
	if m.mediumBusy() {
		return
	}
	m.c.IFSTime += m.opts.DIFS
	if m.backoffSlots < 0 {
		m.backoffSlots = m.sched.Rand().Intn(m.cw + 1)
	}
	m.tickSlot()
}

func (m *MAC) tickSlot() {
	if m.backoffSlots == 0 {
		m.backoffSlots = -1
		m.transmitNow()
		return
	}
	m.slotTimer = m.sched.After(m.opts.Slot, "mac:slot", m.slotFn)
}

func (m *MAC) onSlot() {
	if m.mediumBusy() {
		return // frozen; resumeAccess will restart from DIFS
	}
	m.backoffSlots--
	m.c.BackoffTime += m.opts.Slot
	m.tickSlot()
}

// freezeAccess cancels pending DIFS/slot timers; the backoff counter value
// is preserved (802.11 backoff freezing).
func (m *MAC) freezeAccess() {
	m.difsTimer.Stop()
	m.slotTimer.Stop()
}

// transmitNow fires when the DCF acquires the floor: assemble (or reuse the
// retry bundle) and launch the exchange.
func (m *MAC) transmitNow() {
	m.inAccess = false
	if m.current == nil {
		m.current = m.assemble()
		m.flushDue = false
	}
	if m.current == nil {
		// DBA gating raced with the queues; try again later.
		m.maybeStartAccess()
		return
	}
	agg := m.current
	if agg.HasUnicast() {
		// Rate adaptation re-evaluates on every attempt, so retransmitted
		// bundles can step down (classic ARF behaviour).
		if rc := m.opts.RateController; rc != nil {
			agg.UnicastRate = rc.TxRate(agg.Unicast[0].Addr1)
		}
		if m.opts.UseRTSCTS {
			m.sendRTS(agg)
			return
		}
	}
	m.sendData(false)
}

// exchangeTail is the on-air time left after the data frame: SIFS+ACK when
// a unicast portion needs acknowledgement.
func (m *MAC) exchangeTail(agg *frame.Aggregate) time.Duration {
	if !agg.HasUnicast() {
		return 0
	}
	ack := frame.Control{Type: frame.TypeAck}
	if m.opts.BlockAck {
		ack.Type = frame.TypeBlockAck
	}
	return m.opts.SIFS + m.med.ControlAirtime(&ack)
}

func (m *MAC) sendRTS(agg *frame.Aggregate) {
	cts := frame.Control{Type: frame.TypeCTS}
	dur := m.opts.SIFS + m.med.ControlAirtime(&cts) +
		m.opts.SIFS + m.med.AggregateAirtime(agg) + m.exchangeTail(agg)
	rts := frame.Control{Type: frame.TypeRTS, Duration: dur, RA: agg.Unicast[0].Addr1, TA: m.addr}
	air := m.med.TransmitControl(m.id, rts)
	m.c.RTSTx++
	m.c.ControlTime += air
	m.state = stAwaitCTS
	timeout := air + m.opts.SIFS + m.med.ControlAirtime(&cts) + m.opts.TimeoutSlack
	m.respTimer = m.sched.After(timeout, "mac:ctsTimeout", m.timeoutFn)
}

// sendData launches m.current (the active exchange bundle); afterCTS marks
// the SIFS-deferred variant. The data-path callbacks read m.current rather
// than capturing the aggregate: it cannot change between here and dataEnd
// (only the ack/timeout handlers replace it, and they are unreachable while
// the frame is still on the air).
func (m *MAC) sendData(afterCTS bool) {
	if afterCTS {
		m.state = stSIFSData
		m.c.IFSTime += 2 * m.opts.SIFS // RTS→CTS and CTS→DATA gaps
		m.sifsTimer = m.sched.After(m.opts.SIFS, "mac:sifsData", m.startDataFn)
	} else {
		m.startData()
	}
}

func (m *MAC) startData() {
	agg := m.current
	m.state = stSending
	m.stampDurations(agg)
	air := m.med.TransmitAggregate(m.id, agg)
	m.accountDataTx(agg, air)
	m.dataTimer = m.sched.After(air, "mac:dataEnd", m.dataEndFn)
}

func (m *MAC) onDataEnd() {
	if !m.current.HasUnicast() {
		m.completeSuccess()
		return
	}
	m.state = stAwaitAck
	ack := frame.Control{Type: frame.TypeAck}
	if m.opts.BlockAck {
		ack.Type = frame.TypeBlockAck
	}
	timeout := m.opts.SIFS + m.med.ControlAirtime(&ack) + m.opts.TimeoutSlack
	m.respTimer = m.sched.After(timeout, "mac:ackTimeout", m.timeoutFn)
}

// stampDurations writes the NAV reservation into every subframe; only the
// first unicast subframe's value is used by receivers, but the prototype
// fills them all (§4.2.1).
func (m *MAC) stampDurations(agg *frame.Aggregate) {
	tail := m.exchangeTail(agg)
	for _, sf := range agg.Unicast {
		sf.Duration = tail
		sf.Retry = m.retries > 0
	}
	for _, sf := range agg.Broadcast {
		sf.Duration = 0
		// Broadcast subframes ride again when the unicast portion
		// retries; mark them so receivers with dedup enabled can drop
		// the repeats.
		sf.Retry = m.retries > 0
	}
}

// frameSig builds the dedup signature of a delivered subframe.
func frameSig(d *frame.DecodedSubframe) uint64 {
	h := crc32.ChecksumIEEE(d.Payload)
	a := d.Addr2
	addr := uint64(a[3])<<16 | uint64(a[4])<<8 | uint64(a[5])
	return uint64(h) | addr<<40
}

// isDuplicate consults and maintains the dedup ring. Only retransmitted
// frames are checked; every delivered frame is recorded.
func (m *MAC) isDuplicate(d *frame.DecodedSubframe) bool {
	if m.opts.DedupWindow <= 0 {
		return false
	}
	sig := frameSig(d)
	if d.Retry {
		for _, s := range m.dedup {
			if s == sig {
				m.c.RxDupes++
				return true
			}
		}
	}
	if len(m.dedup) < m.opts.DedupWindow {
		m.dedup = append(m.dedup, sig)
	} else {
		m.dedup[m.dedupPos] = sig
		m.dedupPos = (m.dedupPos + 1) % m.opts.DedupWindow
	}
	return false
}

func (m *MAC) accountDataTx(agg *frame.Aggregate, air time.Duration) {
	m.c.DataTx++
	if !agg.HasUnicast() {
		m.c.BroadcastOnly++
	}
	m.c.SubframesTx += agg.Subframes()
	m.c.BroadcastSubTx += len(agg.Broadcast)
	m.c.UnicastSubTx += len(agg.Unicast)
	body := int64(agg.Bytes())
	var payload int64
	var payloadTime time.Duration
	for _, sf := range agg.Broadcast {
		payload += int64(len(sf.Payload))
		payloadTime += phy.Airtime(len(sf.Payload), agg.BroadcastRate)
	}
	for _, sf := range agg.Unicast {
		payload += int64(len(sf.Payload))
		payloadTime += phy.Airtime(len(sf.Payload), agg.UnicastRate)
	}
	m.aggHist.Observe(float64(body))
	m.c.BodyBytesTx += body
	m.c.PayloadBytesTx += payload
	m.c.HeaderBytesTx += body - payload
	p := m.med.Params()
	pre := p.PreamblePLCP + p.BroadcastDescDuration(agg.HasBroadcast())
	m.c.PreambleTime += pre
	m.c.PayloadTime += payloadTime
	m.c.HeaderTime += air - pre - payloadTime
}

// notifyRateResult reports the unicast exchange outcome to the rate
// controller.
func (m *MAC) notifyRateResult(ok bool) {
	rc := m.opts.RateController
	if rc == nil || m.current == nil || !m.current.HasUnicast() {
		return
	}
	rc.OnResult(m.current.Unicast[0].Addr1, m.current.UnicastRate, ok)
}

func (m *MAC) onExchangeTimeout() {
	if m.state != stAwaitCTS && m.state != stAwaitAck {
		return
	}
	m.notifyRateResult(false)
	m.state = stIdle
	m.retries++
	if m.retries > m.opts.RetryLimit {
		m.c.Drops += m.currentUni
		m.resetExchange()
		m.maybeStartAccess()
		return
	}
	m.c.Retries++
	m.cw = min(2*m.cw+1, m.opts.CWmax)
	m.inAccess = true
	m.resumeAccess()
}

func (m *MAC) resetExchange() {
	m.current = nil
	m.currentUni = 0
	m.retries = 0
	m.cw = m.opts.CWmin
}

func (m *MAC) completeSuccess() {
	m.state = stIdle
	m.resetExchange()
	m.maybeStartAccess()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---- medium.Radio implementation ----

// CarrierBusy implements medium.Radio.
func (m *MAC) CarrierBusy() { m.freezeAccess() }

// CarrierIdle implements medium.Radio.
func (m *MAC) CarrierIdle() { m.resumeAccess() }

// RxControl implements medium.Radio.
func (m *MAC) RxControl(src medium.NodeID, c frame.Control, snrdB float64) {
	if m.down {
		return
	}
	switch c.Type {
	case frame.TypeRTS:
		if c.RA == m.addr {
			m.respondCTS(c)
			return
		}
		m.updateNAV(c.Duration)
	case frame.TypeCTS:
		if m.state == stAwaitCTS && c.RA == m.addr {
			m.respTimer.Stop()
			m.c.ControlTime += m.med.ControlAirtime(&c)
			if rc := m.opts.RateController; rc != nil && m.current.HasUnicast() {
				// Hydra's explicit-feedback RTS/CTS: with reciprocal
				// links, the CTS reception SNR stands in for the
				// receiver's RTS measurement.
				rc.OnFeedback(m.current.Unicast[0].Addr1, snrdB)
			}
			m.sendData(true)
			return
		}
		m.updateNAV(c.Duration)
	case frame.TypeAck:
		if m.state == stAwaitAck && c.RA == m.addr {
			m.respTimer.Stop()
			m.c.ControlTime += m.med.ControlAirtime(&c)
			m.c.IFSTime += m.opts.SIFS // DATA→ACK gap
			m.notifyRateResult(true)
			m.completeSuccess()
		}
	case frame.TypeBlockAck:
		if m.state == stAwaitAck && c.RA == m.addr {
			m.respTimer.Stop()
			m.c.ControlTime += m.med.ControlAirtime(&c)
			m.c.IFSTime += m.opts.SIFS
			m.handleBlockAck(c.Bitmap)
		}
	}
}

// respondCTS answers an RTS addressed to us when we are free to do so.
func (m *MAC) respondCTS(rts frame.Control) {
	if m.state != stIdle || m.respBusy {
		return
	}
	if m.sched.Now() < m.nav {
		// 802.11: a node with an active NAV stays silent on RTS. (The
		// physical carrier is still accounted busy with the RTS itself at
		// delivery time, so only the NAV matters here.)
		return
	}
	ctsDur := rts.Duration - m.opts.SIFS
	cts := frame.Control{Type: frame.TypeCTS, RA: rts.TA}
	ctsDur -= m.med.ControlAirtime(&cts)
	if ctsDur < 0 {
		ctsDur = 0
	}
	cts.Duration = ctsDur
	m.transmitResponse(cts)
	m.c.CTSTx++
}

// transmitResponse sends a CTS/ACK SIFS after the triggering frame,
// suspending our own access cycle for the duration.
func (m *MAC) transmitResponse(c frame.Control) {
	m.respBusy = true
	m.freezeAccess()
	m.respSifsTimer = m.sched.After(m.opts.SIFS, "mac:respSIFS", func() {
		air := m.med.TransmitControl(m.id, c)
		m.respEndTimer = m.sched.After(air, "mac:respEnd", m.respEndFn)
	})
}

// handleBlockAck removes acknowledged subframes; unacked ones retry.
func (m *MAC) handleBlockAck(bitmap uint16) {
	agg := m.current
	var remain []*frame.Subframe
	for i, sf := range agg.Unicast {
		if i < 16 && bitmap&(1<<uint(i)) != 0 {
			continue
		}
		remain = append(remain, sf)
	}
	m.notifyRateResult(len(remain) == 0)
	m.state = stIdle
	if len(remain) == 0 {
		m.completeSuccess()
		return
	}
	// Partial: keep only the unacknowledged subframes; broadcasts are not
	// repeated (they were delivered with the first attempt).
	agg.Unicast = remain
	agg.Broadcast = nil
	m.currentUni = len(remain)
	m.retries++
	if m.retries > m.opts.RetryLimit {
		m.c.Drops += len(remain)
		m.resetExchange()
		m.maybeStartAccess()
		return
	}
	m.c.Retries++
	m.cw = min(2*m.cw+1, m.opts.CWmax)
	m.inAccess = true
	m.resumeAccess()
}

// RxAggregate implements medium.Radio: the §4.2.2 receive process.
func (m *MAC) RxAggregate(src medium.NodeID, hdr frame.PHYHeader, body []byte) {
	if m.down {
		return
	}
	if err := frame.DecodeAggregateInto(&m.rxScratch, hdr, body); err != nil {
		return
	}
	dec := &m.rxScratch
	// Broadcast portion: deliver each CRC-passing subframe immediately.
	for _, d := range dec.Broadcast {
		if !d.CRCOK {
			m.c.RxDropsCRC++
			continue
		}
		if d.Addr1 != m.addr && !d.Addr1.IsBroadcast() {
			// Overheard classified TCP ACK: dropped, never passed up
			// (passing it up would duplicate the ACK at the IP layer).
			m.c.RxDropsAddr++
			continue
		}
		if m.isDuplicate(&d) {
			continue
		}
		m.c.RxDelivered++
		if m.deliver != nil {
			m.deliver(d, true)
		}
	}
	if dec.BroadcastLost > 0 {
		m.c.RxDropsCRC++
	}

	// Unicast portion: all-or-nothing.
	if len(dec.Unicast) == 0 && dec.UnicastLost == 0 {
		return
	}
	mine, addrKnown := false, false
	for _, d := range dec.Unicast {
		if d.CRCOK {
			mine = d.Addr1 == m.addr
			addrKnown = true
			break
		}
	}
	if !addrKnown {
		// Nothing decodable: stay silent, the sender will retry.
		m.c.RxBundleFails++
		return
	}
	if !mine {
		m.c.RxDropsAddr += len(dec.Unicast)
		// Virtual carrier sense from the first unicast subframe (§4.2.1).
		m.updateNAV(dec.Unicast[0].Duration)
		return
	}

	if m.opts.BlockAck {
		m.receiveWithBlockAck(dec)
		return
	}

	allOK := dec.UnicastLost == 0
	for _, d := range dec.Unicast {
		if !d.CRCOK || d.Addr1 != m.addr {
			allOK = false
			break
		}
	}
	if !allOK {
		m.c.RxBundleFails++
		m.c.RxDropsCRC += len(dec.Unicast)
		return
	}
	for _, d := range dec.Unicast {
		if m.isDuplicate(&d) {
			continue // still acknowledged: the sender needs the ACK
		}
		m.c.RxDelivered++
		if m.deliver != nil {
			m.deliver(d, false)
		}
	}
	m.c.AckTx++
	m.transmitResponse(frame.Control{Type: frame.TypeAck, RA: dec.Unicast[0].Addr2})
}

// receiveWithBlockAck delivers passing subframes and acknowledges them with
// a bitmap (the paper's §7 extension).
func (m *MAC) receiveWithBlockAck(dec *frame.DecodedAggregate) {
	var bitmap uint16
	var ta frame.Addr
	for i, d := range dec.Unicast {
		if !d.CRCOK || d.Addr1 != m.addr {
			m.c.RxDropsCRC++
			continue
		}
		if i < 16 {
			bitmap |= 1 << uint(i)
		}
		ta = d.Addr2
		if m.isDuplicate(&d) {
			continue
		}
		m.c.RxDelivered++
		if m.deliver != nil {
			m.deliver(d, false)
		}
	}
	if bitmap == 0 {
		m.c.RxBundleFails++
		return
	}
	m.c.AckTx++
	m.transmitResponse(frame.Control{Type: frame.TypeBlockAck, RA: ta, Bitmap: bitmap})
}

func (m *MAC) updateNAV(d time.Duration) {
	if d <= 0 {
		return
	}
	until := m.sched.Now() + d
	if until > m.nav {
		m.nav = until
		if m.inAccess {
			m.freezeAccess()
			m.armNavTimer()
		}
	}
}

// String identifies the MAC in traces.
func (m *MAC) String() string {
	return fmt.Sprintf("mac(%d,%s)", int(m.id), m.opts.Scheme.Name())
}
