package mac

import "aggmac/internal/frame"

// assemble builds the next aggregate from the two queues, implementing the
// §4.2.3 transmit process: broadcast subframes first, then unicast frames
// bound for the destination at the head of the unicast queue, up to the
// maximum aggregation size. Later unicast frames for the same destination
// aggregate past interleaved frames for other destinations (skip-over
// scan). It returns nil when nothing is queued.
func (m *MAC) assemble() *frame.Aggregate {
	s := m.opts.Scheme
	unicastRate := m.opts.UnicastRate
	if rc := m.opts.RateController; rc != nil && len(m.uq) > 0 {
		unicastRate = rc.TxRate(m.uq[0].Dst)
	}
	maxBytes := m.opts.MaxAggBytes
	if m.opts.AutoAggSize {
		if b := m.med.Params().MaxBytesWithinCoherence(unicastRate); b < maxBytes {
			maxBytes = b
		}
	}
	// Recycle the scratch aggregate: the previous bundle is fully dead by
	// the time assemble runs again (the medium copied its bytes on
	// transmit, and m.current was cleared by ack/drop). Reserve the
	// subframe slab up front — appends must not reallocate mid-assembly or
	// the *Subframe pointers already stored in the portions would go stale.
	agg := &m.aggScratch
	agg.BroadcastRate = m.opts.BroadcastRate
	agg.UnicastRate = unicastRate
	agg.BroadcastTrailing = m.opts.BroadcastLast
	agg.Broadcast = agg.Broadcast[:0]
	agg.Unicast = agg.Unicast[:0]
	if need := len(m.bq) + len(m.uq); cap(m.sfScratch) < need {
		m.sfScratch = make([]frame.Subframe, 0, need)
	} else {
		m.sfScratch = m.sfScratch[:0]
	}
	size := 0

	mkSub := func(out *Outgoing) *frame.Subframe {
		m.sfScratch = append(m.sfScratch, frame.Subframe{Addr1: out.Dst, Addr2: m.addr, Addr3: out.Src, Payload: out.Payload})
		return &m.sfScratch[len(m.sfScratch)-1]
	}

	takeBroadcast := func(limit int) {
		for len(m.bq) > 0 && (limit <= 0 || len(agg.Broadcast) < limit) {
			sf := mkSub(&m.bq[0])
			w := sf.WireSize()
			if size > 0 && size+w > maxBytes {
				break
			}
			m.bq = m.bq[1:]
			agg.Broadcast = append(agg.Broadcast, sf)
			size += w
		}
	}

	if !s.AggregateBroadcast {
		// Without broadcast aggregation, frames leave one at a time in
		// arrival order across the two queues.
		if len(m.bq) > 0 && (len(m.uq) == 0 || m.bq[0].seq < m.uq[0].seq) {
			takeBroadcast(1)
			m.currentUni = 0
			return agg
		}
	} else {
		limit := 0
		if s.DisableForwardAggregation {
			limit = 1
		}
		takeBroadcast(limit)
	}

	if len(m.uq) > 0 {
		limit := 1
		if s.AggregateUnicast && !s.DisableForwardAggregation {
			limit = int(^uint(0) >> 1)
		}
		dst := m.uq[0].Dst
		for i := 0; i < len(m.uq) && len(agg.Unicast) < limit; {
			out := &m.uq[i]
			if out.Dst != dst {
				if m.opts.HeadOnlyGather {
					break
				}
				i++
				continue
			}
			sf := mkSub(out)
			w := sf.WireSize()
			if size > 0 && size+w > maxBytes {
				break
			}
			m.uq = append(m.uq[:i], m.uq[i+1:]...)
			agg.Unicast = append(agg.Unicast, sf)
			size += w
		}
	}
	if agg.Subframes() == 0 {
		return nil
	}
	m.currentUni = len(agg.Unicast)
	return agg
}
