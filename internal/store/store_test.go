package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/runner"
)

// tcpSpec builds a cheap, cacheable TCP spec; vary seed for distinct cells.
func tcpSpec(seed int64) runner.Spec {
	return runner.Spec{
		Key: "tcp/test",
		TCP: &core.TCPConfig{
			Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 1,
			FileBytes: 10000, MaxAggBytes: 5120, Seed: seed,
		},
	}
}

func tcpResult(mbps float64) runner.Result {
	return runner.Result{Key: "tcp/test", TCP: &core.TCPResult{ThroughputMbps: mbps}}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	spec := tcpSpec(7)
	if _, ok, err := s.Lookup(spec); err != nil || ok {
		t.Fatalf("fresh store Lookup = ok=%v err=%v, want miss", ok, err)
	}
	want := tcpResult(2.5)
	if err := s.Store(spec, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Lookup(spec)
	if err != nil || !ok {
		t.Fatalf("Lookup after Store = ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got.TCP, want.TCP) || got.Key != want.Key {
		t.Fatalf("Lookup returned %+v, want %+v", got, want)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Errorf("Stats = %+v, want 1 hit, 1 miss, 0 corrupt", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A different seed occupies a different slot; reopening serves both.
	s2 := mustOpen(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("reopened store Len = %d, want 1", s2.Len())
	}
	if _, ok, _ := s2.Lookup(spec); !ok {
		t.Error("reopened store missed the stored cell")
	}
	if _, ok, _ := s2.Lookup(tcpSpec(8)); ok {
		t.Error("different seed hit the same slot")
	}
}

func TestSpecIDIgnoresDisplayKey(t *testing.T) {
	a, b := tcpSpec(1), tcpSpec(1)
	b.Key = "renamed/cell"
	ida, err := SpecID(a)
	if err != nil {
		t.Fatal(err)
	}
	idb, err := SpecID(b)
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Error("display key changed the content hash")
	}
	c := tcpSpec(1)
	c.TCP.MaxAggBytes = 8192
	if idc, _ := SpecID(c); idc == ida {
		t.Error("config change did not move the cell to a new slot")
	}
}

func TestSpecWithHookNotCacheable(t *testing.T) {
	spec := tcpSpec(1)
	spec.TCP.Tweak = func(*mac.Options) {}
	if _, err := SpecID(spec); err == nil || !strings.Contains(err.Error(), "not cacheable") {
		t.Fatalf("SpecID with a set hook = %v, want a not-cacheable error", err)
	}
	s := mustOpen(t, t.TempDir())
	if _, _, err := s.Lookup(spec); err == nil {
		t.Error("Lookup accepted an uncacheable spec")
	}
	if err := s.Store(spec, tcpResult(1)); err == nil {
		t.Error("Store accepted an uncacheable spec")
	}
}

func TestStoreRefusesFailedRun(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	r := tcpResult(1)
	r.Err = errors.New("boom")
	if err := s.Store(tcpSpec(1), r); err == nil {
		t.Fatal("Store accepted a failed result")
	}
	if s.Len() != 0 {
		t.Error("failed result landed in the index")
	}
}

func TestSecondWriterLockedOut(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second Open = %v, want ErrLocked", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after Close = %v", err)
	}
	s2.Close()
}

func TestCorruptObjectQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	spec := tcpSpec(3)
	if err := s.Store(spec, tcpResult(3.3)); err != nil {
		t.Fatal(err)
	}
	id, _ := SpecID(spec)
	objPath := filepath.Join(dir, objectsDir, id+".json")
	if err := os.WriteFile(objPath, []byte(`{"id":"flipped bits`), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Lookup(spec); err != nil || ok {
		t.Fatalf("Lookup of corrupt object = ok=%v err=%v, want clean miss", ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(objPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt object still in objects/")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, id+".json")); err != nil {
		t.Errorf("corrupt object not moved to quarantine/: %v", err)
	}
	if s.Len() != 0 {
		t.Error("corrupt entry still indexed")
	}

	// The slot is usable again: re-store and hit.
	if err := s.Store(spec, tcpResult(3.3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Lookup(spec); !ok {
		t.Error("re-stored cell missed")
	}
}

// storeTwo populates a fresh store with two cells and closes it, returning
// the specs for later lookups.
func storeTwo(t *testing.T, dir string) [2]runner.Spec {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	specs := [2]runner.Spec{tcpSpec(1), tcpSpec(2)}
	for i, sp := range specs {
		if err := s.Store(sp, tcpResult(float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return specs
}

func TestGarbageIndexRebuiltFromObjects(t *testing.T) {
	dir := t.TempDir()
	specs := storeTwo(t, dir)
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("{torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if s.Len() != 2 {
		t.Fatalf("rebuilt store Len = %d, want 2", s.Len())
	}
	for _, sp := range specs {
		if _, ok, _ := s.Lookup(sp); !ok {
			t.Errorf("rebuilt store missed %v", sp.TCP.Seed)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, indexName)); err != nil {
		t.Errorf("damaged index not quarantined: %v", err)
	}
}

func TestWrongVersionIndexRebuilt(t *testing.T) {
	dir := t.TempDir()
	storeTwo(t, dir)
	if err := os.WriteFile(filepath.Join(dir, indexName),
		[]byte(`{"version": 99, "entries": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if s.Len() != 2 {
		t.Fatalf("store with future-version index Len = %d, want 2 after rebuild", s.Len())
	}
}

func TestMissingIndexRebuilt(t *testing.T) {
	dir := t.TempDir()
	specs := storeTwo(t, dir)
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	if s.Len() != 2 {
		t.Fatalf("store without index Len = %d, want 2 after rebuild", s.Len())
	}
	if _, ok, _ := s.Lookup(specs[0]); !ok {
		t.Error("rebuilt store missed a cell")
	}
}

func TestRebuildDiscardsTempAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	storeTwo(t, dir)
	objects := filepath.Join(dir, objectsDir)
	// A temp file from an interrupted atomic write, a stray file, and an
	// object whose recorded ID disagrees with its name.
	if err := os.WriteFile(filepath.Join(objects, tmpPrefix+"leftover"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(objects, "README.txt"), []byte("not an object"), 0o644); err != nil {
		t.Fatal(err)
	}
	liar := strings.Repeat("ab", 32) + ".json"
	if err := os.WriteFile(filepath.Join(objects, liar), []byte(`{"id":"`+strings.Repeat("cd", 32)+`"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}

	s := mustOpen(t, dir)
	if s.Len() != 2 {
		t.Fatalf("rebuild indexed %d cells, want 2", s.Len())
	}
	if _, err := os.Stat(filepath.Join(objects, tmpPrefix+"leftover")); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp leftover not removed by rebuild")
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, liar)); err != nil {
		t.Errorf("lying object not quarantined: %v", err)
	}
}

func TestIndexEncodeParseRoundTrip(t *testing.T) {
	dir := t.TempDir()
	storeTwo(t, dir)
	data, err := os.ReadFile(filepath.Join(dir, indexName))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ParseIndex(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := idx.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Error("Encode(Parse(index)) is not byte-identical")
	}
}

func TestParseIndexRejectsEscapingPaths(t *testing.T) {
	id := strings.Repeat("ab", 32)
	sum := strings.Repeat("cd", 32)
	for _, file := range []string{
		"../../etc/passwd",
		"objects/../index.json",
		"/objects/" + id + ".json",
		"quarantine/x.json",
		`objects\evil.json`,
	} {
		doc := `{"version":1,"entries":{"` + id + `":{"file":"` + file +
			`","sha256":"` + sum + `","key":"k","scheme":"BA","seed":1}}}`
		if _, err := ParseIndex([]byte(doc)); err == nil {
			t.Errorf("ParseIndex accepted escaping path %q", file)
		}
	}
}
