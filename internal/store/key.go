// Cache keys: a cell is identified by the content of its spec — the full
// simulation config including scheme and seed — not by its position in a
// sweep or its display key. Two sweeps that enumerate the same (config,
// seed) cell therefore share one cache slot, and any config change (a
// different aggregation cap, an extra fault process, a new seed) moves the
// cell to a fresh slot instead of serving stale results.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/runner"
)

// specEnvelope is the shape that gets canonicalized and hashed. Exactly one
// of the config pointers is set; the field names distinguish the run kinds,
// so a TCP config and a UDP config with coincidentally equal bytes can
// never collide. Spec.Key is deliberately excluded: the key only matters
// through the seed it derived, and the seed is part of the config.
type specEnvelope struct {
	Timeout  time.Duration
	TCP      *core.TCPConfig
	UDP      *core.UDPConfig
	Mesh     *core.MeshTCPConfig
	Scenario *core.ScenarioConfig
}

// SpecID returns the content hash identifying a spec's store slot: the
// SHA-256 of the spec's canonical JSON encoding (see canonical). Specs
// carrying non-serializable hooks (a set Tweak callback) are not cacheable
// and report an error rather than hashing to something that ignores the
// hook and serves a result the hook would have changed.
func SpecID(s runner.Spec) (string, error) {
	env, err := canonical(reflect.ValueOf(specEnvelope{
		Timeout: s.Timeout,
		TCP:     s.TCP, UDP: s.UDP, Mesh: s.Mesh, Scenario: s.Scenario,
	}))
	if err != nil {
		return "", fmt.Errorf("store: spec %q is not cacheable: %w", s.Key, err)
	}
	b, err := json.Marshal(env)
	if err != nil {
		return "", fmt.Errorf("store: spec %q is not cacheable: %w", s.Key, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// canonical converts a config value into a JSON-marshalable form with a
// deterministic encoding: structs become maps keyed by field name (the
// encoder sorts map keys), nil pointers/slices become null, and func-typed
// hook fields are skipped when nil — encoding/json would reject them even
// unset, which would make every TCP and mesh config uncacheable. A hook
// that is actually set makes the spec uncacheable: the hook's effect on the
// run cannot be captured in the hash.
func canonical(v reflect.Value) (any, error) {
	switch v.Kind() {
	case reflect.Invalid:
		return nil, nil
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			return nil, nil
		}
		return canonical(v.Elem())
	case reflect.Func:
		if v.IsNil() {
			return nil, nil
		}
		return nil, fmt.Errorf("non-serializable %s hook is set", v.Type())
	case reflect.Struct:
		t := v.Type()
		m := make(map[string]any, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			if f.Type.Kind() == reflect.Func {
				if !v.Field(i).IsNil() {
					return nil, fmt.Errorf("%s.%s hook is set", t.Name(), f.Name)
				}
				continue
			}
			c, err := canonical(v.Field(i))
			if err != nil {
				return nil, err
			}
			m[f.Name] = c
		}
		return m, nil
	case reflect.Slice:
		if v.IsNil() {
			return nil, nil
		}
		fallthrough
	case reflect.Array:
		out := make([]any, v.Len())
		for i := range out {
			c, err := canonical(v.Index(i))
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	case reflect.Map:
		if v.IsNil() {
			return nil, nil
		}
		if v.Type().Key().Kind() != reflect.String {
			return nil, fmt.Errorf("non-string map key in %s", v.Type())
		}
		m := make(map[string]any, v.Len())
		it := v.MapRange()
		for it.Next() {
			c, err := canonical(it.Value())
			if err != nil {
				return nil, err
			}
			m[it.Key().String()] = c
		}
		return m, nil
	case reflect.Chan, reflect.UnsafePointer:
		return nil, fmt.Errorf("non-serializable %s field", v.Type())
	default:
		return v.Interface(), nil
	}
}

// specMeta extracts the human-readable identity recorded alongside each
// entry: the MAC scheme name and the run's seed.
func specMeta(s runner.Spec) (scheme string, seed int64) {
	switch {
	case s.TCP != nil:
		return s.TCP.Scheme.Name(), s.TCP.Seed
	case s.UDP != nil:
		return s.UDP.Scheme.Name(), s.UDP.Seed
	case s.Mesh != nil:
		return s.Mesh.Scheme.Name(), s.Mesh.Seed
	case s.Scenario != nil:
		seed := s.Scenario.Seed
		if seed == 0 {
			seed = s.Scenario.Scenario.Seed
		}
		return s.Scenario.Scheme.Name(), seed
	}
	return "", 0
}
