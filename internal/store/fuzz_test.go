package store

import (
	"strings"
	"testing"
)

// FuzzStoreIndex pins two properties of the index parser on arbitrary
// bytes: it never panics, and anything it accepts survives an encode/parse
// round trip unchanged — so a store can always rewrite the index it just
// read. CI runs the seed corpus plus a short fuzz smoke; `go test -fuzz
// FuzzStoreIndex ./internal/store` digs deeper locally.
func FuzzStoreIndex(f *testing.F) {
	id := strings.Repeat("ab", 32)
	sum := strings.Repeat("cd", 32)
	valid := `{"version":1,"entries":{"` + id + `":{"file":"objects/` + id +
		`.json","sha256":"` + sum + `","key":"tcp/BA/1hop","scheme":"BA","seed":42}}}`
	f.Add([]byte(valid))
	f.Add([]byte(`{"version":1,"entries":{}}`))
	f.Add([]byte(`{"version":99,"entries":{}}`))
	f.Add([]byte(`{"version":1,"entries":{"` + id + `":{"file":"../escape","sha256":"` + sum + `"}}}`))
	f.Add([]byte(`{"version":1,"entries":{"short":{"file":"objects/x.json","sha256":"` + sum + `"}}}`))
	f.Add([]byte(valid[:len(valid)/2])) // truncated write
	f.Add([]byte(valid + "trailing garbage"))
	f.Add([]byte(`{"version":1,"entries":{},"unknown":true}`))
	f.Add([]byte(""))
	f.Add([]byte("null"))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := ParseIndex(data)
		if err != nil {
			return
		}
		// Accepted documents must round-trip: encode, re-parse, compare.
		enc, err := idx.Encode()
		if err != nil {
			t.Fatalf("accepted index failed to encode: %v", err)
		}
		again, err := ParseIndex(enc)
		if err != nil {
			t.Fatalf("encoded index failed to re-parse: %v", err)
		}
		if again.Version != idx.Version || len(again.Entries) != len(idx.Entries) {
			t.Fatalf("round trip changed the index: %+v vs %+v", again, idx)
		}
		for k, e := range idx.Entries {
			if again.Entries[k] != e {
				t.Fatalf("round trip changed entry %s: %+v vs %+v", k, again.Entries[k], e)
			}
		}
	})
}
