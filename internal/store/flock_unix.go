//go:build unix

package store

import (
	"errors"
	"os"
	"syscall"
)

// acquireLock takes a non-blocking exclusive flock on path. flock locks
// follow the open file description, so the kernel releases them when the
// process exits by any means — a SIGKILLed sweep never leaves a stale lock
// behind, which is exactly what a resumable store needs.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, ErrLocked
		}
		return nil, err
	}
	return f, nil
}

// releaseLock drops the flock by closing the descriptor. The LOCK file
// itself stays behind — it carries no state, only the lock.
func releaseLock(f *os.File) error { return f.Close() }
