// Package store is the durable, content-addressed results store behind
// crash-safe sweeps: each completed simulation cell is persisted as it
// lands, keyed by the content hash of its full spec (config, scheme, seed),
// so a killed sweep re-run with -resume serves finished cells from disk and
// only executes the remainder — byte-identical to an uninterrupted run,
// because cells are pure functions of their spec and JSON round-trips of
// the result structs are lossless.
//
// Durability and integrity:
//
//   - Every write (object files and the index) goes through write-to-temp,
//     fsync, rename in the same directory, so a SIGKILL or crash leaves
//     either the old state or the new state, never a torn file.
//   - Every object records its SHA-256 in the index; reads verify it, and a
//     mismatch quarantines the file (moved into quarantine/, index entry
//     dropped) and reports a miss instead of serving corrupt data.
//   - The store root is guarded by an exclusive file lock; a second writer
//     fails fast with ErrLocked instead of interleaving index rewrites.
//   - An unreadable or wrong-version index is quarantined and rebuilt from
//     the objects themselves (each object is self-describing and
//     self-authenticating), so index damage costs a scan, not the cache.
//
// Layout under the store root:
//
//	LOCK                    flock target, held for the store's lifetime
//	index.json              versioned index (see index.go)
//	objects/<id>.json       one completed cell per file, id = spec hash
//	quarantine/             corrupt files moved aside for post-mortem
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"aggmac/internal/core"
	"aggmac/internal/runner"
)

const (
	objectsDir    = "objects"
	quarantineDir = "quarantine"
	indexName     = "index.json"
	lockName      = "LOCK"
)

// ErrLocked reports that another process holds the store's writer lock.
var ErrLocked = errors.New("store: already locked by another process")

// Stats counts cache traffic since Open.
type Stats struct {
	// Hits and Misses count Lookup outcomes.
	Hits, Misses int
	// Corrupt counts entries quarantined after failing verification.
	Corrupt int
}

// Store is a directory-backed results cache. It implements runner.Cache.
// All methods are safe for concurrent use by the worker pool.
type Store struct {
	dir  string
	lock *os.File

	mu    sync.Mutex
	idx   Index
	stats Stats
}

// object is the durable form of one completed run: self-describing (it
// repeats its ID and identity) so the index can be rebuilt from objects
// alone, and carrying exactly one result payload. Wall-clock time is
// deliberately not stored — a cached cell reports Wall 0 and Cached true.
type object struct {
	ID       string               `json:"id"`
	Key      string               `json:"key"`
	Scheme   string               `json:"scheme"`
	Seed     int64                `json:"seed"`
	TCP      *core.TCPResult      `json:"tcp,omitempty"`
	UDP      *core.UDPResult      `json:"udp,omitempty"`
	Mesh     *core.MeshResult     `json:"mesh,omitempty"`
	Scenario *core.ScenarioResult `json:"scenario,omitempty"`
}

// Open creates (if needed) and locks the store at dir. It fails fast with
// an error wrapping ErrLocked when another process holds the lock, and
// recovers from a damaged or wrong-version index by quarantining it and
// rebuilding from the object files.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	lock, err := acquireLock(filepath.Join(dir, lockName))
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	s := &Store{dir: dir, lock: lock, idx: Index{Version: IndexVersion, Entries: map[string]Entry{}}}

	data, err := os.ReadFile(filepath.Join(dir, indexName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh store (or one killed before its first flush): rebuild picks
		// up any objects that landed without an index update.
		if err := s.rebuild(); err != nil {
			releaseLock(lock)
			return nil, err
		}
	case err != nil:
		releaseLock(lock)
		return nil, fmt.Errorf("store: %w", err)
	default:
		idx, perr := ParseIndex(data)
		if perr != nil {
			// Damaged index: move it aside and recover from the objects.
			_ = os.Rename(filepath.Join(dir, indexName), filepath.Join(dir, quarantineDir, indexName))
			if err := s.rebuild(); err != nil {
				releaseLock(lock)
				return nil, err
			}
		} else {
			s.idx = idx
		}
	}
	return s, nil
}

// Close releases the store's lock. The index and objects are already
// durable — every Put flushes synchronously — so Close has nothing to
// write.
func (s *Store) Close() error {
	if s.lock == nil {
		return nil
	}
	err := releaseLock(s.lock)
	s.lock = nil
	return err
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of cells currently indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx.Entries)
}

// Stats returns cache-traffic counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Lookup implements runner.Cache: it returns the stored result for the
// spec's cell, verifying the object's checksum first. Corrupt entries are
// quarantined and report a miss, so a damaged store degrades to re-running
// cells, never to serving wrong data.
func (s *Store) Lookup(spec runner.Spec) (runner.Result, bool, error) {
	id, err := SpecID(spec)
	if err != nil {
		return runner.Result{}, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.idx.Entries[id]
	if !ok {
		s.stats.Misses++
		return runner.Result{}, false, nil
	}
	blob, err := os.ReadFile(filepath.Join(s.dir, e.File))
	if err != nil {
		s.quarantineLocked(id, e)
		return runner.Result{}, false, nil
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != e.SHA256 {
		s.quarantineLocked(id, e)
		return runner.Result{}, false, nil
	}
	var obj object
	if err := json.Unmarshal(blob, &obj); err != nil || obj.ID != id {
		s.quarantineLocked(id, e)
		return runner.Result{}, false, nil
	}
	s.stats.Hits++
	return runner.Result{
		Key: obj.Key,
		TCP: obj.TCP, UDP: obj.UDP, Mesh: obj.Mesh, Scenario: obj.Scenario,
	}, true, nil
}

// Store implements runner.Cache: it durably persists a completed result
// (object file, then index, each via temp+fsync+rename) before returning,
// so a kill immediately after sees the cell on resume. Failed runs are
// never stored — an error result would otherwise mask a later success.
func (s *Store) Store(spec runner.Spec, r runner.Result) error {
	if r.Err != nil {
		return fmt.Errorf("store: refusing to store failed run %q: %v", spec.Key, r.Err)
	}
	id, err := SpecID(spec)
	if err != nil {
		return err
	}
	scheme, seed := specMeta(spec)
	obj := object{
		ID: id, Key: spec.Key, Scheme: scheme, Seed: seed,
		TCP: r.TCP, UDP: r.UDP, Mesh: r.Mesh, Scenario: r.Scenario,
	}
	blob, err := json.Marshal(obj)
	if err != nil {
		return fmt.Errorf("store: encode result %q: %w", spec.Key, err)
	}
	sum := sha256.Sum256(blob)
	rel := objectsDir + "/" + id + ".json"

	s.mu.Lock()
	defer s.mu.Unlock()
	if err := atomicWrite(filepath.Join(s.dir, rel), blob); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.idx.Entries[id] = Entry{
		File: rel, SHA256: hex.EncodeToString(sum[:]),
		Key: spec.Key, Scheme: scheme, Seed: seed,
	}
	return s.writeIndexLocked()
}

// quarantineLocked moves a failed entry's file into quarantine/, drops it
// from the index and persists the index, best-effort: the caller already
// treats the entry as a miss, and the next Put will rewrite the index
// anyway.
func (s *Store) quarantineLocked(id string, e Entry) {
	s.stats.Corrupt++
	_ = os.Rename(filepath.Join(s.dir, e.File), filepath.Join(s.dir, quarantineDir, filepath.Base(e.File)))
	delete(s.idx.Entries, id)
	_ = s.writeIndexLocked()
}

// writeIndexLocked persists the in-memory index atomically.
func (s *Store) writeIndexLocked() error {
	b, err := s.idx.Encode()
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(s.dir, indexName), b); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// rebuild reconstructs the index by scanning objects/: every well-formed,
// self-consistent object becomes an entry (checksummed over its exact
// bytes); anything else — temp leftovers, truncated writes, files whose
// recorded ID disagrees with their name — is quarantined or ignored.
func (s *Store) rebuild() error {
	dir := filepath.Join(s.dir, objectsDir)
	des, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("store: rebuild: %w", err)
	}
	s.idx = Index{Version: IndexVersion, Entries: map[string]Entry{}}
	for _, de := range des {
		name := de.Name()
		id, okName := strings.CutSuffix(name, ".json")
		if de.IsDir() || !okName || !isHex64(id) {
			// Temp files from interrupted writes and stray names are not
			// objects; remove temps, ignore the rest.
			if strings.HasPrefix(name, tmpPrefix) {
				_ = os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var obj object
		if json.Unmarshal(blob, &obj) != nil || obj.ID != id {
			s.stats.Corrupt++
			_ = os.Rename(filepath.Join(dir, name), filepath.Join(s.dir, quarantineDir, name))
			continue
		}
		sum := sha256.Sum256(blob)
		s.idx.Entries[id] = Entry{
			File: objectsDir + "/" + name, SHA256: hex.EncodeToString(sum[:]),
			Key: obj.Key, Scheme: obj.Scheme, Seed: obj.Seed,
		}
	}
	return s.writeIndexLocked()
}

const tmpPrefix = ".tmp-"

// atomicWrite lands data at path via a temp file in the same directory,
// fsync and rename, so concurrent readers and post-kill recovery see
// either the previous content or the new content in full.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
