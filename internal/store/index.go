// Index file format for the on-disk results store.
//
// The index is one JSON document mapping entry IDs (the spec content hash)
// to the object file holding that cell's result plus its checksum and
// human-readable identity (runner key, scheme, seed). It is versioned so a
// future layout change fails loudly instead of silently misreading old
// stores, and the parser is strict — unknown fields, trailing garbage,
// malformed IDs, checksums, or escaping file paths are all rejected — so a
// half-written or tampered index can never direct reads outside the store
// or at the wrong object. FuzzStoreIndex pins the no-panic and
// parse/encode round-trip properties.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path"
	"strings"
)

// IndexVersion is the store layout generation this package reads and
// writes. Opening a store whose index declares another version fails (the
// index is quarantined and rebuilt from the objects themselves).
const IndexVersion = 1

// Index is the store's versioned table of contents.
type Index struct {
	Version int              `json:"version"`
	Entries map[string]Entry `json:"entries"`
}

// Entry locates and authenticates one stored result.
type Entry struct {
	// File is the object's path relative to the store root, always inside
	// objects/.
	File string `json:"file"`
	// SHA256 is the hex checksum of the object file's exact bytes.
	SHA256 string `json:"sha256"`
	// Key, Scheme and Seed identify the cell for humans; the map key (the
	// spec content hash) is what lookups use.
	Key    string `json:"key"`
	Scheme string `json:"scheme"`
	Seed   int64  `json:"seed"`
}

// isHex64 reports whether s is a 64-character lowercase hex string (a
// SHA-256 digest).
func isHex64(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validEntryFile reports whether p is a clean relative path confined to the
// objects directory — the property that keeps a corrupted or hostile index
// from directing reads or quarantine renames outside the store.
func validEntryFile(p string) bool {
	if p == "" || strings.Contains(p, "\\") {
		return false
	}
	if path.Clean(p) != p {
		return false
	}
	return strings.HasPrefix(p, objectsDir+"/") && !strings.Contains(p, "..")
}

// ParseIndex decodes and validates an index document. It never panics on
// arbitrary input; any structural problem — wrong version, unknown fields,
// trailing data, malformed IDs, checksums or paths — is an error, so a
// damaged index is quarantined and rebuilt rather than trusted.
func ParseIndex(data []byte) (Index, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var idx Index
	if err := dec.Decode(&idx); err != nil {
		return Index{}, fmt.Errorf("store: index: %w", err)
	}
	if dec.More() {
		return Index{}, fmt.Errorf("store: index: trailing data after document")
	}
	if idx.Version != IndexVersion {
		return Index{}, fmt.Errorf("store: index version %d, this build reads version %d", idx.Version, IndexVersion)
	}
	if idx.Entries == nil {
		idx.Entries = map[string]Entry{}
	}
	for id, e := range idx.Entries {
		if !isHex64(id) {
			return Index{}, fmt.Errorf("store: index: entry ID %q is not a SHA-256 hex digest", id)
		}
		if !isHex64(e.SHA256) {
			return Index{}, fmt.Errorf("store: index: entry %s: checksum %q is not a SHA-256 hex digest", id[:12], e.SHA256)
		}
		if !validEntryFile(e.File) {
			return Index{}, fmt.Errorf("store: index: entry %s: file %q escapes the objects directory", id[:12], e.File)
		}
	}
	return idx, nil
}

// Encode renders the index deterministically (encoding/json sorts map
// keys), so identical stores produce identical index bytes.
func (ix Index) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(ix, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode index: %w", err)
	}
	return append(b, '\n'), nil
}
