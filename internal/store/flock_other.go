//go:build !unix

package store

import (
	"errors"
	"fmt"
	"os"
)

// acquireLock on platforms without flock falls back to an O_EXCL lock
// file. Unlike flock it is not self-releasing on SIGKILL; the error
// message tells the operator which file to remove after a crash.
func acquireLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w (remove %s if the previous run crashed)", ErrLocked, path)
		}
		return nil, err
	}
	return f, nil
}

// releaseLock removes the lock file: with O_EXCL semantics the file's
// existence IS the lock.
func releaseLock(f *os.File) error {
	path := f.Name()
	err := f.Close()
	if rerr := os.Remove(path); err == nil {
		err = rerr
	}
	return err
}
