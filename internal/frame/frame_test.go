package frame

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aggmac/internal/phy"
)

func mkSubframe(n int, a1 byte) *Subframe {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return &Subframe{
		Duration: 1200 * time.Microsecond,
		Addr1:    Addr{a1, 1, 2, 3, 4, 5},
		Addr2:    NodeAddr(2),
		Addr3:    NodeAddr(3),
		Payload:  p,
	}
}

func TestNodeAddrUniqueUnicast(t *testing.T) {
	seen := map[Addr]bool{}
	for i := 0; i < 1000; i++ {
		a := NodeAddr(i)
		if a.IsBroadcast() {
			t.Fatalf("NodeAddr(%d) is broadcast", i)
		}
		if seen[a] {
			t.Fatalf("NodeAddr(%d) collides", i)
		}
		seen[a] = true
	}
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast.IsBroadcast() = false")
	}
	if NodeAddr(1).String() == "" {
		t.Fatal("empty addr string")
	}
}

func TestSubframeRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 3, 79, 132, 1436} {
		sf := mkSubframe(n, 9)
		sf.Retry = n%2 == 0
		wire := sf.AppendWire(nil)
		if len(wire) != sf.WireSize() {
			t.Fatalf("payload %d: wire len %d != WireSize %d", n, len(wire), sf.WireSize())
		}
		if len(wire)%4 != 0 {
			t.Fatalf("payload %d: wire size %d not 4-byte aligned", n, len(wire))
		}
		d, consumed, err := DecodeSubframe(wire)
		if err != nil {
			t.Fatalf("payload %d: decode: %v", n, err)
		}
		if consumed != len(wire) {
			t.Fatalf("payload %d: consumed %d of %d", n, consumed, len(wire))
		}
		if !d.CRCOK {
			t.Fatalf("payload %d: CRC failed on clean frame", n)
		}
		if d.Retry != sf.Retry || d.Addr1 != sf.Addr1 || d.Addr2 != sf.Addr2 || d.Addr3 != sf.Addr3 {
			t.Fatalf("payload %d: header fields mangled: %+v", n, d)
		}
		if !bytes.Equal(d.Payload, sf.Payload) {
			t.Fatalf("payload %d: payload mangled", n)
		}
		if d.Duration != sf.Duration {
			t.Fatalf("payload %d: duration %v != %v", n, d.Duration, sf.Duration)
		}
	}
}

func TestPaperFrameSizes(t *testing.T) {
	// §5: MSS 1357 -> 1464 B MAC frame; pure TCP ACKs -> 160 B.
	// With the 39 B Hydra/Click encap: data payload is 1357+40+39 = 1436,
	// ACK payload (after min-pad) is 132.
	if got := (&Subframe{Payload: make([]byte, 1436)}).WireSize(); got != 1464 {
		t.Errorf("TCP data subframe = %d B, paper says 1464", got)
	}
	if got := (&Subframe{Payload: make([]byte, 132)}).WireSize(); got != 160 {
		t.Errorf("TCP ACK subframe = %d B, paper says 160", got)
	}
	if got := (&Subframe{Payload: make([]byte, 1112)}).WireSize(); got != 1140 {
		t.Errorf("UDP subframe = %d B, paper says 1140", got)
	}
}

func TestSubframeCorruptionDetected(t *testing.T) {
	sf := mkSubframe(200, 9)
	wire := sf.AppendWire(nil)
	// Flip a bit in the payload region: CRC must catch it.
	wire[SubframeHeaderLen+50] ^= 0x10
	d, _, err := DecodeSubframe(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.CRCOK {
		t.Fatal("payload corruption not detected by FCS")
	}
}

func TestSubframeHeaderCorruptionDetected(t *testing.T) {
	sf := mkSubframe(200, 9)
	wire := sf.AppendWire(nil)
	wire[5] ^= 0x01 // Addr1 bit
	d, _, err := DecodeSubframe(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if d.CRCOK {
		t.Fatal("address corruption not detected by FCS")
	}
}

func TestDecodeSubframeTruncated(t *testing.T) {
	if _, _, err := DecodeSubframe(make([]byte, 10)); err == nil {
		t.Fatal("want error on short buffer")
	}
	sf := mkSubframe(100, 1)
	wire := sf.AppendWire(nil)
	if _, _, err := DecodeSubframe(wire[:len(wire)-8]); err == nil {
		t.Fatal("want error when length field exceeds buffer")
	}
}

func TestDecodePortionWalk(t *testing.T) {
	var body []byte
	sizes := []int{40, 1436, 132, 0, 500}
	for i, n := range sizes {
		body = mkSubframe(n, byte(i)).AppendWire(body)
	}
	subs, lost := DecodePortion(body)
	if lost != 0 {
		t.Fatalf("lost %d bytes on clean portion", lost)
	}
	if len(subs) != len(sizes) {
		t.Fatalf("decoded %d subframes, want %d", len(subs), len(sizes))
	}
	for i, d := range subs {
		if !d.CRCOK {
			t.Errorf("subframe %d CRC failed", i)
		}
		if len(d.Payload) != sizes[i] {
			t.Errorf("subframe %d payload %d, want %d", i, len(d.Payload), sizes[i])
		}
	}
}

func TestDecodePortionStopsOnBrokenLength(t *testing.T) {
	var body []byte
	body = mkSubframe(100, 0).AppendWire(body)
	second := len(body)
	body = mkSubframe(100, 1).AppendWire(body)
	body = mkSubframe(100, 2).AppendWire(body)
	// Smash the second subframe's length field to a huge value.
	body[second+22] = 0xff
	body[second+23] = 0xff
	subs, lost := DecodePortion(body)
	if len(subs) != 1 {
		t.Fatalf("decoded %d subframes, want 1 (walk must stop)", len(subs))
	}
	if lost == 0 {
		t.Fatal("lost bytes not reported")
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	agg := &Aggregate{
		BroadcastRate: phy.Rate1300k,
		UnicastRate:   phy.Rate2600k,
		Broadcast:     []*Subframe{mkSubframe(132, 1), mkSubframe(132, 2)},
		Unicast:       []*Subframe{mkSubframe(1436, 3), mkSubframe(1436, 3), mkSubframe(1436, 3)},
	}
	body, spans := agg.Marshal()
	if len(body) != agg.Bytes() {
		t.Fatalf("body %d bytes, Bytes() says %d", len(body), agg.Bytes())
	}
	if len(spans) != 5 {
		t.Fatalf("%d spans, want 5", len(spans))
	}
	if agg.BroadcastBytes() != 2*160 {
		t.Fatalf("broadcast bytes = %d, want 320", agg.BroadcastBytes())
	}
	if agg.UnicastBytes() != 3*1464 {
		t.Fatalf("unicast bytes = %d, want 4392", agg.UnicastBytes())
	}
	// Spans are contiguous and ordered broadcast-first.
	off := 0
	for i, sp := range spans {
		if sp.Off != off {
			t.Fatalf("span %d off %d, want %d", i, sp.Off, off)
		}
		if (i < 2) != sp.Broadcast {
			t.Fatalf("span %d broadcast flag wrong", i)
		}
		off += sp.Size
	}

	hdr := agg.Header()
	wire := hdr.AppendWire(nil)
	if len(wire) != PHYHeaderLen {
		t.Fatalf("PHY header %d bytes, want %d", len(wire), PHYHeaderLen)
	}
	hdr2, err := DecodePHYHeader(wire)
	if err != nil || hdr2 != hdr {
		t.Fatalf("PHY header round trip: %+v vs %+v (%v)", hdr2, hdr, err)
	}

	dec, err := DecodeAggregate(hdr, body)
	if err != nil {
		t.Fatalf("DecodeAggregate: %v", err)
	}
	if len(dec.Broadcast) != 2 || len(dec.Unicast) != 3 || dec.LostBytes != 0 {
		t.Fatalf("decoded %d/%d subframes, lost %d", len(dec.Broadcast), len(dec.Unicast), dec.LostBytes)
	}
	for _, d := range append(dec.Broadcast, dec.Unicast...) {
		if !d.CRCOK {
			t.Fatal("clean aggregate subframe failed CRC")
		}
	}
}

func TestAggregateBroadcastOnlyAndUnicastOnly(t *testing.T) {
	bo := &Aggregate{BroadcastRate: phy.Rate650k, Broadcast: []*Subframe{mkSubframe(132, 1)}}
	if bo.HasUnicast() || !bo.HasBroadcast() {
		t.Fatal("broadcast-only flags wrong")
	}
	h := bo.Header()
	if h.UnicastLen != 0 || h.BroadcastLen != 160 {
		t.Fatalf("broadcast-only header: %+v", h)
	}
	uo := &Aggregate{UnicastRate: phy.Rate650k, Unicast: []*Subframe{mkSubframe(1436, 1)}}
	if uo.HasBroadcast() || !uo.HasUnicast() {
		t.Fatal("unicast-only flags wrong")
	}
	body, _ := uo.Marshal()
	dec, err := DecodeAggregate(uo.Header(), body)
	if err != nil || len(dec.Unicast) != 1 || len(dec.Broadcast) != 0 {
		t.Fatalf("unicast-only decode: %+v, %v", dec, err)
	}
}

func TestDecodeAggregateLengthMismatch(t *testing.T) {
	agg := &Aggregate{UnicastRate: phy.Rate650k, Unicast: []*Subframe{mkSubframe(100, 1)}}
	body, _ := agg.Marshal()
	hdr := agg.Header()
	hdr.UnicastLen++
	if _, err := DecodeAggregate(hdr, body); err == nil {
		t.Fatal("want error on header/body length mismatch")
	}
}

func TestControlRoundTrip(t *testing.T) {
	cases := []Control{
		{Type: TypeRTS, Duration: 5 * time.Millisecond, RA: NodeAddr(1), TA: NodeAddr(2)},
		{Type: TypeCTS, Duration: 4 * time.Millisecond, RA: NodeAddr(2)},
		{Type: TypeAck, RA: NodeAddr(3)},
		{Type: TypeBlockAck, RA: NodeAddr(4), Bitmap: 0b1011},
	}
	wantLen := []int{RTSLen, CTSLen, AckLen, BlockAckLen}
	for i, c := range cases {
		wire := c.AppendWire(nil)
		if len(wire) != wantLen[i] {
			t.Errorf("%v wire = %d bytes, want %d", c.Type, len(wire), wantLen[i])
		}
		if len(wire) != c.WireSize() {
			t.Errorf("%v WireSize = %d, wire %d", c.Type, c.WireSize(), len(wire))
		}
		got, err := DecodeControl(wire)
		if err != nil {
			t.Fatalf("%v decode: %v", c.Type, err)
		}
		if got.Type != c.Type || got.RA != c.RA {
			t.Errorf("%v fields mangled: %+v", c.Type, got)
		}
		if c.Type == TypeRTS && got.TA != c.TA {
			t.Errorf("RTS TA mangled")
		}
		if c.Type == TypeBlockAck && got.Bitmap != c.Bitmap {
			t.Errorf("BlockAck bitmap mangled: %b", got.Bitmap)
		}
	}
}

func TestControlCorruptionDetected(t *testing.T) {
	c := Control{Type: TypeCTS, Duration: time.Millisecond, RA: NodeAddr(1)}
	wire := c.AppendWire(nil)
	wire[6] ^= 0x80
	if _, err := DecodeControl(wire); err == nil {
		t.Fatal("corrupted CTS decoded without error")
	}
	if _, err := DecodeControl([]byte{1, 2, 3}); err == nil {
		t.Fatal("short control decoded without error")
	}
	bad := make([]byte, CTSLen)
	bad[0] = 0x7 // not a valid type
	if _, err := DecodeControl(bad); err == nil {
		t.Fatal("bad type decoded without error")
	}
}

func TestDurationRounding(t *testing.T) {
	// Durations round UP to the 4 µs unit so NAV reservations never
	// under-cover the exchange.
	sf := &Subframe{Duration: 10*time.Microsecond + time.Nanosecond}
	d, _, err := DecodeSubframe(sf.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	if d.Duration < sf.Duration {
		t.Fatalf("decoded duration %v < original %v", d.Duration, sf.Duration)
	}
	if d.Duration > sf.Duration+4*time.Microsecond {
		t.Fatalf("decoded duration %v over-rounds", d.Duration)
	}
}

// Property: any payload round-trips bit-exactly and never fails CRC.
func TestPropertySubframeRoundTrip(t *testing.T) {
	f := func(payload []byte, a1, a2, a3 [6]byte, retry bool) bool {
		if len(payload) > 60000 {
			payload = payload[:60000]
		}
		sf := &Subframe{Retry: retry, Addr1: a1, Addr2: a2, Addr3: a3, Payload: payload}
		d, n, err := DecodeSubframe(sf.AppendWire(nil))
		return err == nil && n == sf.WireSize() && d.CRCOK &&
			bytes.Equal(d.Payload, payload) && d.Addr1 == Addr(a1) && d.Retry == retry
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single bit of the un-padded region is detected.
func TestPropertyAnySingleBitFlipDetected(t *testing.T) {
	f := func(seed int64, bitIdx uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, 1+rng.Intn(300))
		rng.Read(payload)
		sf := &Subframe{Addr1: NodeAddr(1), Addr2: NodeAddr(2), Payload: payload}
		wire := sf.AppendWire(nil)
		protected := (SubframeOverhead + len(payload)) * 8
		bit := int(bitIdx) % protected
		wire[bit/8] ^= 1 << (bit % 8)
		d, _, err := DecodeSubframe(wire)
		if err != nil {
			// Length-field corruption can make the frame undecodable:
			// that is detection too.
			return true
		}
		return !d.CRCOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

// Property: an aggregate with arbitrary subframe sizes round-trips with all
// spans contiguous and all CRCs passing.
func TestPropertyAggregateRoundTrip(t *testing.T) {
	f := func(bSizes, uSizes []uint16) bool {
		if len(bSizes) > 8 {
			bSizes = bSizes[:8]
		}
		if len(uSizes) > 8 {
			uSizes = uSizes[:8]
		}
		agg := &Aggregate{BroadcastRate: phy.Rate650k, UnicastRate: phy.Rate1300k}
		for i, n := range bSizes {
			agg.Broadcast = append(agg.Broadcast, mkSubframe(int(n%2000), byte(i)))
		}
		for i, n := range uSizes {
			agg.Unicast = append(agg.Unicast, mkSubframe(int(n%2000), byte(i)))
		}
		body, spans := agg.Marshal()
		if len(spans) != agg.Subframes() {
			return false
		}
		dec, err := DecodeAggregate(agg.Header(), body)
		if err != nil {
			return false
		}
		if len(dec.Broadcast) != len(bSizes) || len(dec.Unicast) != len(uSizes) {
			return false
		}
		for _, d := range append(dec.Broadcast, dec.Unicast...) {
			if !d.CRCOK {
				return false
			}
		}
		return dec.LostBytes == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(13))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSubframeMarshal(b *testing.B) {
	sf := mkSubframe(1436, 1)
	buf := make([]byte, 0, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = sf.AppendWire(buf[:0])
	}
}

func BenchmarkAggregateDecode(b *testing.B) {
	agg := &Aggregate{
		BroadcastRate: phy.Rate650k, UnicastRate: phy.Rate1300k,
		Broadcast: []*Subframe{mkSubframe(132, 1)},
		Unicast:   []*Subframe{mkSubframe(1436, 2), mkSubframe(1436, 2), mkSubframe(1436, 2)},
	}
	body, _ := agg.Marshal()
	hdr := agg.Header()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeAggregate(hdr, body); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAggregateBroadcastTrailing(t *testing.T) {
	agg := &Aggregate{
		BroadcastRate:     phy.Rate650k,
		UnicastRate:       phy.Rate1300k,
		Broadcast:         []*Subframe{mkSubframe(132, 1)},
		Unicast:           []*Subframe{mkSubframe(1436, 2)},
		BroadcastTrailing: true,
	}
	body, spans := agg.Marshal()
	// Unicast leads on the wire.
	if spans[0].Broadcast || !spans[1].Broadcast {
		t.Fatalf("trailing layout wrong: %+v", spans)
	}
	if spans[0].Off != 0 || spans[1].Off != 1464 {
		t.Fatalf("offsets wrong: %+v", spans)
	}
	hdr := agg.Header()
	if !hdr.Trailing {
		t.Fatal("header lost the trailing flag")
	}
	// Header round-trips the flag.
	hdr2, err := DecodePHYHeader(hdr.AppendWire(nil))
	if err != nil || hdr2 != hdr {
		t.Fatalf("trailing header round trip: %+v vs %+v (%v)", hdr2, hdr, err)
	}
	dec, err := DecodeAggregate(hdr, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Broadcast) != 1 || len(dec.Unicast) != 1 {
		t.Fatalf("trailing decode: %d/%d", len(dec.Broadcast), len(dec.Unicast))
	}
	for _, d := range append(dec.Broadcast, dec.Unicast...) {
		if !d.CRCOK {
			t.Fatal("trailing-layout subframe failed CRC")
		}
	}
}
