// Package frame defines the byte-level wire formats of the aggregation MAC:
// MAC subframes (Figure 4 of the paper), aggregated PHY frames with separate
// broadcast and unicast portions (Figures 1 and 2), and the RTS/CTS/ACK
// control frames of 802.11 DCF.
//
// All formats marshal to and decode from real bytes, with a CRC-32 frame
// check sequence computed over each subframe's header and payload. The
// channel model corrupts transmitted bytes, and receivers detect the damage
// through these CRCs exactly as the Hydra MAC does.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"aggmac/internal/phy"
)

// Addr is a 6-byte MAC address.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// NodeAddr derives a deterministic locally-administered unicast address for
// a simulated node id.
func NodeAddr(id int) Addr {
	return Addr{0x02, 0x00, 0x48, 0x59, byte(id >> 8), byte(id)}
}

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Type discriminates MAC frame kinds.
type Type uint8

const (
	TypeData Type = iota
	TypeRTS
	TypeCTS
	TypeAck
	TypeBlockAck
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeRTS:
		return "RTS"
	case TypeCTS:
		return "CTS"
	case TypeAck:
		return "ACK"
	case TypeBlockAck:
		return "BACK"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Wire layout constants.
const (
	// SubframeHeaderLen is the MAC subframe header of Figure 4:
	// frame control (2) + duration (2) + three addresses (18) + length (2).
	SubframeHeaderLen = 24
	// FCSLen is the CRC-32 frame check sequence.
	FCSLen = 4
	// SubframeOverhead is header + FCS, the per-subframe fixed cost.
	SubframeOverhead = SubframeHeaderLen + FCSLen
	// padAlign: subframes are padded to a 4-byte boundary (PAD octets in
	// Figure 4) so the PHY hands the MAC whole words.
	padAlign = 4

	// RTSLen, CTSLen, AckLen are standard 802.11 control frame sizes.
	RTSLen = 20
	CTSLen = 14
	AckLen = 14
	// BlockAckLen carries RA plus a 16-bit subframe bitmap (the paper's
	// §7 block-ACK extension).
	BlockAckLen = 16

	flagRetry = 1 << 0

	// durationUnit is the granularity of the 2-byte duration field. Hydra
	// aggregates can stay on the air for >65 ms, which overflows 802.11's
	// 1 µs × 15-bit NAV field, so the field counts 4 µs units instead
	// (documented deviation; max ≈ 262 ms).
	durationUnit = 4 * time.Microsecond
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("frame: truncated")
	ErrBadLength = errors.New("frame: length field exceeds buffer")
	ErrBadType   = errors.New("frame: unexpected frame type")
)

// Subframe is one MAC frame carried inside an aggregate (Figure 4).
type Subframe struct {
	Retry    bool
	Duration time.Duration // NAV reservation, rounded to durationUnit
	Addr1    Addr          // receiver (next hop), or broadcast
	Addr2    Addr          // transmitter
	Addr3    Addr          // original source (no Address 4: ad-hoc only)
	Payload  []byte
}

// padLen returns the PAD octet count for a payload of n bytes.
func padLen(n int) int {
	total := SubframeOverhead + n
	if r := total % padAlign; r != 0 {
		return padAlign - r
	}
	return 0
}

// WireSize returns the subframe's on-air size including header, FCS and pad.
func (sf *Subframe) WireSize() int {
	return SubframeOverhead + len(sf.Payload) + padLen(len(sf.Payload))
}

func encodeDuration(d time.Duration) uint16 {
	u := (d + durationUnit - 1) / durationUnit
	if u > 0xffff {
		u = 0xffff
	}
	return uint16(u)
}

func decodeDuration(u uint16) time.Duration { return time.Duration(u) * durationUnit }

// AppendWire marshals the subframe, appending its bytes to b.
func (sf *Subframe) AppendWire(b []byte) []byte {
	start := len(b)
	var fc [2]byte
	fc[0] = byte(TypeData)
	if sf.Retry {
		fc[1] |= flagRetry
	}
	b = append(b, fc[0], fc[1])
	b = binary.BigEndian.AppendUint16(b, encodeDuration(sf.Duration))
	b = append(b, sf.Addr1[:]...)
	b = append(b, sf.Addr2[:]...)
	b = append(b, sf.Addr3[:]...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(sf.Payload)))
	b = append(b, sf.Payload...)
	fcs := crc32.ChecksumIEEE(b[start:])
	b = binary.BigEndian.AppendUint32(b, fcs)
	for i := 0; i < padLen(len(sf.Payload)); i++ {
		b = append(b, 0)
	}
	return b
}

// DecodedSubframe is the receive-side view of one subframe: its parsed
// fields plus whether the FCS verified.
type DecodedSubframe struct {
	Subframe
	CRCOK bool
}

// DecodeSubframe parses one subframe from the front of b. It returns the
// parsed subframe, the number of bytes consumed (including pad), and an
// error only when the buffer cannot contain a subframe at all. A corrupted
// FCS is not an error: the subframe is returned with CRCOK=false so the MAC
// can apply its per-portion discard rules.
func DecodeSubframe(b []byte) (DecodedSubframe, int, error) {
	var d DecodedSubframe
	if len(b) < SubframeOverhead {
		return d, 0, ErrTruncated
	}
	plen := int(binary.BigEndian.Uint16(b[22:24]))
	wire := SubframeOverhead + plen + padLen(plen)
	if wire > len(b) {
		return d, 0, fmt.Errorf("%w: need %d bytes, have %d", ErrBadLength, wire, len(b))
	}
	d.Retry = b[1]&flagRetry != 0
	d.Duration = decodeDuration(binary.BigEndian.Uint16(b[2:4]))
	copy(d.Addr1[:], b[4:10])
	copy(d.Addr2[:], b[10:16])
	copy(d.Addr3[:], b[16:22])
	d.Payload = b[SubframeHeaderLen : SubframeHeaderLen+plen]
	want := binary.BigEndian.Uint32(b[SubframeHeaderLen+plen : SubframeHeaderLen+plen+FCSLen])
	got := crc32.ChecksumIEEE(b[:SubframeHeaderLen+plen])
	d.CRCOK = want == got && Type(b[0]&0x7) == TypeData
	return d, wire, nil
}

// DecodePortion walks a broadcast or unicast portion of an aggregate,
// returning every subframe it can delineate. Parsing stops early if a
// length field points outside the portion (bytes after that point are
// unrecoverable without 802.11n-style delimiters); lost reports how many
// bytes could not be walked.
func DecodePortion(b []byte) (subs []DecodedSubframe, lost int) {
	return DecodePortionAppend(nil, b)
}

// DecodePortionAppend is DecodePortion appending into dst, so a receiver
// can reuse one backing array across frames.
func DecodePortionAppend(dst []DecodedSubframe, b []byte) (subs []DecodedSubframe, lost int) {
	subs = dst
	for len(b) > 0 {
		d, n, err := DecodeSubframe(b)
		if err != nil {
			return subs, len(b)
		}
		subs = append(subs, d)
		b = b[n:]
	}
	return subs, 0
}

// PHYHeader is the aggregate descriptor of Figure 2: rate and length for
// the (optional) broadcast portion and for the unicast portion. Trailing
// flips the on-air order (an ablation of the paper's prepend-broadcasts
// placement rule).
type PHYHeader struct {
	BroadcastRate phy.Rate
	BroadcastLen  int // bytes; 0 means no broadcast portion
	UnicastRate   phy.Rate
	UnicastLen    int // bytes; 0 means broadcast-only frame
	Trailing      bool
}

// PHYHeaderLen is the marshaled descriptor size: 1+3 bytes per portion.
const PHYHeaderLen = 8

const trailingBit = 0x80

// AppendWire marshals the PHY header.
func (h *PHYHeader) AppendWire(b []byte) []byte {
	r0 := byte(h.BroadcastRate)
	if h.Trailing {
		r0 |= trailingBit
	}
	b = append(b, r0)
	b = append(b, byte(h.BroadcastLen>>16), byte(h.BroadcastLen>>8), byte(h.BroadcastLen))
	b = append(b, byte(h.UnicastRate))
	b = append(b, byte(h.UnicastLen>>16), byte(h.UnicastLen>>8), byte(h.UnicastLen))
	return b
}

// DecodePHYHeader parses a marshaled PHY header.
func DecodePHYHeader(b []byte) (PHYHeader, error) {
	var h PHYHeader
	if len(b) < PHYHeaderLen {
		return h, ErrTruncated
	}
	h.Trailing = b[0]&trailingBit != 0
	h.BroadcastRate = phy.Rate(b[0] &^ trailingBit)
	h.BroadcastLen = int(b[1])<<16 | int(b[2])<<8 | int(b[3])
	h.UnicastRate = phy.Rate(b[4])
	h.UnicastLen = int(b[5])<<16 | int(b[6])<<8 | int(b[7])
	if h.BroadcastLen > 0 && !h.BroadcastRate.Valid() || h.UnicastLen > 0 && !h.UnicastRate.Valid() {
		return h, fmt.Errorf("frame: invalid rate in PHY header")
	}
	return h, nil
}

// Aggregate is a whole PHY frame: broadcast subframes first (closest to the
// training sequences, least exposed to channel aging), then the unicast
// subframes, all bound for one receiver. BroadcastTrailing reverses the
// placement (ablation knob).
type Aggregate struct {
	BroadcastRate     phy.Rate
	UnicastRate       phy.Rate
	Broadcast         []*Subframe
	Unicast           []*Subframe
	BroadcastTrailing bool
}

// Span locates one subframe inside the marshaled aggregate body.
type Span struct {
	Broadcast bool
	Off, Size int
}

// HasBroadcast reports whether the aggregate carries broadcast subframes.
func (a *Aggregate) HasBroadcast() bool { return len(a.Broadcast) > 0 }

// HasUnicast reports whether the aggregate carries unicast subframes.
func (a *Aggregate) HasUnicast() bool { return len(a.Unicast) > 0 }

// Subframes returns the total subframe count.
func (a *Aggregate) Subframes() int { return len(a.Broadcast) + len(a.Unicast) }

// BroadcastBytes returns the wire size of the broadcast portion.
func (a *Aggregate) BroadcastBytes() int {
	n := 0
	for _, sf := range a.Broadcast {
		n += sf.WireSize()
	}
	return n
}

// UnicastBytes returns the wire size of the unicast portion.
func (a *Aggregate) UnicastBytes() int {
	n := 0
	for _, sf := range a.Unicast {
		n += sf.WireSize()
	}
	return n
}

// Bytes returns the wire size of the whole body (both portions).
func (a *Aggregate) Bytes() int { return a.BroadcastBytes() + a.UnicastBytes() }

// Header builds the PHY descriptor for the aggregate.
func (a *Aggregate) Header() PHYHeader {
	h := PHYHeader{UnicastRate: a.UnicastRate, UnicastLen: a.UnicastBytes()}
	if a.HasBroadcast() {
		h.BroadcastRate = a.BroadcastRate
		h.BroadcastLen = a.BroadcastBytes()
		h.Trailing = a.BroadcastTrailing
	}
	return h
}

// Marshal serializes both portions and returns the body bytes plus the span
// of every subframe (used by the channel model to corrupt individual
// subframes by airtime offset).
func (a *Aggregate) Marshal() (body []byte, spans []Span) {
	return a.AppendMarshal(make([]byte, 0, a.Bytes()), nil)
}

// AppendMarshal is Marshal appending into caller-provided slices, so the
// channel model can reuse a pooled span array across transmissions (the body
// is shared with every receiver and must come in fresh — pass a slice no one
// else retains).
func (a *Aggregate) AppendMarshal(body []byte, spans []Span) ([]byte, []Span) {
	writeBcast := func() {
		for _, sf := range a.Broadcast {
			off := len(body)
			body = sf.AppendWire(body)
			spans = append(spans, Span{Broadcast: true, Off: off, Size: len(body) - off})
		}
	}
	writeUcast := func() {
		for _, sf := range a.Unicast {
			off := len(body)
			body = sf.AppendWire(body)
			spans = append(spans, Span{Off: off, Size: len(body) - off})
		}
	}
	if a.BroadcastTrailing {
		writeUcast()
		writeBcast()
	} else {
		writeBcast()
		writeUcast()
	}
	return body, spans
}

// DecodedAggregate is the receive-side view of an aggregate.
type DecodedAggregate struct {
	Header    PHYHeader
	Broadcast []DecodedSubframe
	Unicast   []DecodedSubframe
	// BroadcastLost and UnicastLost count portion bytes that could not be
	// delineated because a corrupted length field broke the subframe walk.
	BroadcastLost int
	UnicastLost   int
	// LostBytes is the total across both portions.
	LostBytes int
}

// DecodeAggregate splits the body per the PHY header and walks each portion.
func DecodeAggregate(hdr PHYHeader, body []byte) (DecodedAggregate, error) {
	var out DecodedAggregate
	err := DecodeAggregateInto(&out, hdr, body)
	return out, err
}

// DecodeAggregateInto is DecodeAggregate reusing out's slice backing, so a
// receiver decoding one frame at a time allocates nothing in steady state.
// The decoded Payload fields alias body; out's contents are valid until the
// next call with the same out.
func DecodeAggregateInto(out *DecodedAggregate, hdr PHYHeader, body []byte) error {
	out.Header = hdr
	out.Broadcast = out.Broadcast[:0]
	out.Unicast = out.Unicast[:0]
	out.BroadcastLost, out.UnicastLost, out.LostBytes = 0, 0, 0
	if hdr.BroadcastLen+hdr.UnicastLen != len(body) {
		return fmt.Errorf("%w: header says %d+%d bytes, body is %d",
			ErrBadLength, hdr.BroadcastLen, hdr.UnicastLen, len(body))
	}
	if hdr.Trailing {
		out.Unicast, out.UnicastLost = DecodePortionAppend(out.Unicast, body[:hdr.UnicastLen])
		out.Broadcast, out.BroadcastLost = DecodePortionAppend(out.Broadcast, body[hdr.UnicastLen:])
	} else {
		out.Broadcast, out.BroadcastLost = DecodePortionAppend(out.Broadcast, body[:hdr.BroadcastLen])
		out.Unicast, out.UnicastLost = DecodePortionAppend(out.Unicast, body[hdr.BroadcastLen:])
	}
	out.LostBytes = out.BroadcastLost + out.UnicastLost
	return nil
}

// Control is an RTS, CTS, ACK or BlockAck frame.
type Control struct {
	Type     Type
	Duration time.Duration
	RA       Addr   // receiver
	TA       Addr   // transmitter (RTS only)
	Bitmap   uint16 // BlockAck only: bit i acknowledges unicast subframe i
}

// WireSize returns the control frame's on-air size.
func (c *Control) WireSize() int {
	switch c.Type {
	case TypeRTS:
		return RTSLen
	case TypeBlockAck:
		return BlockAckLen
	default:
		return CTSLen
	}
}

// AppendWire marshals the control frame.
func (c *Control) AppendWire(b []byte) []byte {
	start := len(b)
	b = append(b, byte(c.Type), 0)
	b = binary.BigEndian.AppendUint16(b, encodeDuration(c.Duration))
	b = append(b, c.RA[:]...)
	switch c.Type {
	case TypeRTS:
		b = append(b, c.TA[:]...)
	case TypeBlockAck:
		b = binary.BigEndian.AppendUint16(b, c.Bitmap)
	}
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b[start:]))
}

// DecodeControl parses a control frame and verifies its FCS.
func DecodeControl(b []byte) (Control, error) {
	var c Control
	if len(b) < CTSLen {
		return c, ErrTruncated
	}
	c.Type = Type(b[0] & 0x7)
	var n int
	switch c.Type {
	case TypeRTS:
		n = RTSLen
	case TypeCTS, TypeAck:
		n = CTSLen
	case TypeBlockAck:
		n = BlockAckLen
	default:
		return c, ErrBadType
	}
	if len(b) < n {
		return c, ErrTruncated
	}
	want := binary.BigEndian.Uint32(b[n-FCSLen : n])
	if got := crc32.ChecksumIEEE(b[:n-FCSLen]); got != want {
		return c, fmt.Errorf("frame: control FCS mismatch")
	}
	c.Duration = decodeDuration(binary.BigEndian.Uint16(b[2:4]))
	copy(c.RA[:], b[4:10])
	switch c.Type {
	case TypeRTS:
		copy(c.TA[:], b[10:16])
	case TypeBlockAck:
		c.Bitmap = binary.BigEndian.Uint16(b[10:12])
	}
	return c, nil
}
