// Sharded parallel execution: a conservative bounded-lag engine that runs K
// independent Schedulers on K goroutines and synchronizes them with a fixed
// lookahead L.
//
// Model. Each shard owns a Scheduler and publishes a monotone clock C_i: a
// lower bound on the time of any event the shard will ever execute in the
// future. Because every cross-shard effect is posted at least L after the
// event that causes it (Post enforces at >= now+L), shard j may safely
// execute any event strictly below its horizon
//
//	H_j = min over connected neighbors i of (C_i + L).
//
// Cross-shard effects arrive as timestamped boundary events in per-directed-
// pair inboxes and are merged through a per-shard staging heap ordered by
// (time, source shard, source sequence), so the execution order — and
// therefore the whole run — is a pure function of the configuration,
// independent of goroutine scheduling, GOMAXPROCS, or wall-clock timing.
//
// Why draining inboxes once per horizon computation is sufficient: a shard
// reads neighbor clocks with acquire loads, and a sender pushes to the inbox
// before publishing the clock value (release store) that the receiver's
// horizon was computed from. Any event a neighbor pushes after that clock
// read carries a timestamp >= (observed clock) + L = the receiver's current
// horizon, so it cannot belong to the current batch.
//
// Termination uses a double-collect: a shard with no executable work left
// (nothing at or below the deadline, locally or staged) marks itself idle;
// any idle shard may then snapshot all status words, verify every inbox's
// pushed count equals its drained count, and re-verify the snapshot
// unchanged. Shards bump an epoch in their status word before leaving the
// idle state, so a successful double-collect proves no event was in flight.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxTime is the horizon of a shard with no neighbors (never constrained).
const maxTime = Time(math.MaxInt64)

// A blocked shard spins (Gosched between passes) up to blockedSpins times
// waiting for a neighbor clock to move, then stops burning the core. In
// normal builds it parks for real: a per-shard wakeup channel, signalled
// whenever a neighbor's published clock advances, a boundary event is
// posted to the shard, or the engine terminates, with a coarse fallback
// timer guarding against any wakeup the signalling misses (see
// shard_norace.go). Under the race detector every blocked pass costs
// microseconds of instrumented atomics and channel parking serializes
// against the shard that can progress, so race builds keep the historical
// spin-then-nap path (shard_race.go). Wall-clock timing never affects
// event order, so all of this is performance-only.
const blockedNap = 20 * time.Microsecond

// parkTimeout is the parked shard's fallback wakeup. The explicit wakeups
// make it nearly unreachable; it only bounds the cost of a lost wakeup.
const parkTimeout = time.Millisecond

// boundaryEvent is one cross-shard effect: fn runs on the destination shard
// with the destination scheduler's clock advanced exactly to at.
type boundaryEvent struct {
	at  Time
	src int32  // source shard, first tie-break
	seq uint64 // per-(src,dst) FIFO sequence, second tie-break
	fn  func()
}

// inbox carries boundary events for one directed shard pair. The sender
// appends under mu and then increments pushed (release); the receiver swaps
// the slice out under mu. pushed/drained are compared by the termination
// double-collect to detect in-flight events.
type inbox struct {
	mu      sync.Mutex
	items   []boundaryEvent
	spare   []boundaryEvent // recycled backing array for items
	pushed  atomic.Uint64
	drained atomic.Uint64
}

// paddedClock keeps each published clock on its own cache line so shards do
// not false-share their hottest word.
type paddedClock struct {
	_ [64]byte
	v atomic.Int64
	_ [56]byte
}

// engineShard is the per-goroutine state.
type engineShard struct {
	id    int
	sched *Scheduler
	nbrs  []int    // connected shards, ascending
	in    []*inbox // indexed by source shard id; nil when not connected
	out   []*inbox // indexed by destination shard id; nil when not connected
	seq   []uint64 // next boundary sequence per destination shard

	staging []boundaryEvent // min-heap ordered by (at, src, seq)

	// status is epoch<<1 | idleBit, written only by the owner.
	status atomic.Uint64

	// wake and parked implement real blocking for a shard with nothing
	// runnable (see park). wake is buffered so wakers never block; parked
	// is the Dekker flag that makes the token delivery race-free.
	wake   chan struct{}
	parked atomic.Bool

	// Diagnostic span recording (EnableDiag). Owner-only state: spans is
	// read by DiagSpans after Run returns.
	spans       []ShardSpan
	batchStart  time.Duration
	batchEvents uint64

	panicked any
}

// ShardSpan is one wall-clock interval of a shard goroutine's life,
// recorded only when EnableDiag was called before Run: Kind "run" covers
// one batch of executed events, "blocked" one park waiting for a
// neighbor's horizon. Start and End are wall-clock offsets from Run's
// start; SimAt is the shard's simulated clock when the span closed.
// Wall-clock spans vary run to run by construction — they feed the
// Chrome trace exporter only and never any deterministic output.
type ShardSpan struct {
	Shard  int
	Kind   string // "run" | "blocked"
	Start  time.Duration
	End    time.Duration
	SimAt  Time
	Events uint64 // events executed during a "run" span
}

// ShardEngine couples K Schedulers under conservative synchronization.
// Build one with NewShardEngine, declare cross-shard reachability with
// Connect, then Run. Post may only be called from inside an event executing
// on the source shard.
type ShardEngine struct {
	shards   []*engineShard
	clocks   []paddedClock
	look     Time
	deadline Time
	done     atomic.Bool
	running  atomic.Bool

	diag      bool
	wallStart time.Time
}

// EnableDiag turns on per-shard wall-clock span recording for the Chrome
// trace exporter. Must be called before Run. Diagnostics never affect
// event order — they only read the wall clock around batches and parks —
// but they do cost a timestamp per batch, so they are off by default.
func (e *ShardEngine) EnableDiag() {
	if e.running.Load() {
		panic("sim: EnableDiag after Run started")
	}
	e.diag = true
}

// DiagSpans returns the spans recorded during Run, grouped by shard in
// ascending order. Empty unless EnableDiag was called.
func (e *ShardEngine) DiagSpans() []ShardSpan {
	var out []ShardSpan
	for _, s := range e.shards {
		out = append(out, s.spans...)
	}
	return out
}

// closeRunSpan ends the in-progress "run" span of a batch that executed
// at least one event.
func (e *ShardEngine) closeRunSpan(s *engineShard) {
	s.spans = append(s.spans, ShardSpan{
		Shard:  s.id,
		Kind:   "run",
		Start:  s.batchStart,
		End:    time.Since(e.wallStart),
		SimAt:  s.sched.Now(),
		Events: s.batchEvents,
	})
}

// NewShardEngine builds an engine over the given schedulers. lookahead is
// the minimum delay between a source event and any effect it may post to
// another shard; it must be positive.
func NewShardEngine(scheds []*Scheduler, lookahead Time) *ShardEngine {
	if len(scheds) == 0 {
		panic("sim: ShardEngine needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: ShardEngine lookahead must be positive")
	}
	e := &ShardEngine{
		shards: make([]*engineShard, len(scheds)),
		clocks: make([]paddedClock, len(scheds)),
		look:   lookahead,
	}
	for i, s := range scheds {
		if s == nil {
			panic("sim: ShardEngine scheduler is nil")
		}
		e.shards[i] = &engineShard{
			id:    i,
			sched: s,
			in:    make([]*inbox, len(scheds)),
			out:   make([]*inbox, len(scheds)),
			seq:   make([]uint64, len(scheds)),
			wake:  make(chan struct{}, 1),
		}
	}
	return e
}

// Shards returns the number of shards.
func (e *ShardEngine) Shards() int { return len(e.shards) }

// Lookahead returns the engine's conservative lookahead L.
func (e *ShardEngine) Lookahead() Time { return e.look }

// Connect declares that shards a and b can affect each other: each
// constrains the other's horizon and gets an inbox in each direction.
// Connect the exact pairs that share a radio link across the partition
// boundary; unconnected pairs may not Post to each other.
func (e *ShardEngine) Connect(a, b int) {
	if e.running.Load() {
		panic("sim: Connect after Run started")
	}
	if a == b {
		panic("sim: Connect of a shard to itself")
	}
	sa, sb := e.shards[a], e.shards[b]
	if sa.out[b] != nil {
		return
	}
	ab, ba := &inbox{}, &inbox{}
	sa.out[b], sb.in[a] = ab, ab
	sb.out[a], sa.in[b] = ba, ba
	sa.nbrs = insertSorted(sa.nbrs, b)
	sb.nbrs = insertSorted(sb.nbrs, a)
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Post schedules fn on shard dst at absolute time at. It must be called
// from an event executing on shard src, and at must respect the lookahead
// contract: at >= src's current time + L. fn runs with dst's scheduler
// advanced exactly to at.
func (e *ShardEngine) Post(src, dst int, at Time, fn func()) {
	s := e.shards[src]
	if min := s.sched.Now() + e.look; at < min {
		panic(fmt.Sprintf("sim: Post from shard %d at %v violates lookahead (now %v + L %v)",
			src, at, s.sched.Now(), e.look))
	}
	box := s.out[dst]
	if box == nil {
		panic(fmt.Sprintf("sim: Post from shard %d to unconnected shard %d", src, dst))
	}
	ev := boundaryEvent{at: at, src: int32(src), seq: s.seq[dst], fn: fn}
	s.seq[dst]++
	box.mu.Lock()
	box.items = append(box.items, ev)
	box.mu.Unlock()
	box.pushed.Add(1)
	if parkBlocked {
		e.shards[dst].wakeup()
	}
}

// Run executes all shards concurrently until every shard has drained its
// work at or below deadline (or halted), then advances every scheduler's
// clock to the deadline, mirroring Scheduler.RunUntil. Run may be called
// once per engine.
func (e *ShardEngine) Run(deadline Time) {
	if e.running.Swap(true) {
		panic("sim: ShardEngine.Run called twice")
	}
	e.deadline = deadline
	if e.diag {
		e.wallStart = time.Now()
	}
	var wg sync.WaitGroup
	for _, s := range e.shards {
		wg.Add(1)
		go func(s *engineShard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					s.panicked = r
					e.done.Store(true)
					e.wakeAll()
				}
			}()
			e.runShard(s)
		}(s)
	}
	wg.Wait()
	for _, s := range e.shards {
		if s.panicked != nil {
			panic(s.panicked)
		}
	}
	for _, s := range e.shards {
		if s.sched.Now() < deadline {
			s.sched.AdvanceTo(deadline)
		}
	}
}

// horizon returns the largest time strictly below which s may execute.
func (e *ShardEngine) horizon(s *engineShard) Time {
	h := maxTime
	for _, n := range s.nbrs {
		c := Time(e.clocks[n].v.Load())
		if c+e.look < h {
			h = c + e.look
		}
	}
	return h
}

// publish raises shard s's clock to t (owner-only writer, so a plain
// compare suffices; the store has release semantics). An actual advance
// can only widen the horizons of s's neighbors, so they are woken.
func (e *ShardEngine) publish(s *engineShard, t Time) {
	if int64(t) > e.clocks[s.id].v.Load() {
		e.clocks[s.id].v.Store(int64(t))
		if parkBlocked {
			for _, n := range s.nbrs {
				e.shards[n].wakeup()
			}
		}
	}
}

// wakeup delivers a non-blocking token to a parked shard. The parked flag
// is set before the sleeper's final state re-check (Dekker), so a state
// change that the sleeper misses always finds parked == true here and the
// token is never lost; a stale token at worst costs one spurious pass.
func (s *engineShard) wakeup() {
	if s.parked.Load() {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
}

// wakeAll unparks every shard; called whenever done flips so no goroutine
// outlives termination by a park timeout.
func (e *ShardEngine) wakeAll() {
	for _, s := range e.shards {
		s.wakeup()
	}
}

// inboxDirty reports whether any inbound inbox has undrained events.
func (s *engineShard) inboxDirty() bool {
	for _, n := range s.nbrs {
		box := s.in[n]
		if box.pushed.Load() != box.drained.Load() {
			return true
		}
	}
	return false
}

// park blocks s until a neighbor clock advance, an inbound boundary event,
// engine termination, or the fallback timeout. h is the horizon the caller
// computed before deciding it was blocked: if the live horizon has already
// moved past it, the nap is skipped. The Dekker protocol — store parked,
// re-check every unblock condition, only then sleep — closes the window
// between the caller's checks and the channel receive.
func (e *ShardEngine) park(s *engineShard, h Time) {
	s.parked.Store(true)
	if e.done.Load() || e.horizon(s) > h || s.inboxDirty() {
		s.parked.Store(false)
		return
	}
	t := time.NewTimer(parkTimeout)
	select {
	case <-s.wake:
	case <-t.C:
	}
	t.Stop()
	s.parked.Store(false)
	select { // drop a token raced in by the timer path
	case <-s.wake:
	default:
	}
}

// drain moves every pending inbox item into the staging heap.
func (s *engineShard) drain() {
	for _, n := range s.nbrs {
		box := s.in[n]
		if box.pushed.Load() == box.drained.Load() {
			continue
		}
		box.mu.Lock()
		items := box.items
		box.items = box.spare[:0]
		box.mu.Unlock()
		for _, ev := range items {
			s.stagePush(ev)
		}
		box.spare = items[:0]
		box.drained.Add(uint64(len(items)))
	}
}

func (s *engineShard) stagePush(ev boundaryEvent) {
	s.staging = append(s.staging, ev)
	i := len(s.staging) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !stageLess(s.staging[i], s.staging[p]) {
			break
		}
		s.staging[i], s.staging[p] = s.staging[p], s.staging[i]
		i = p
	}
}

func (s *engineShard) stagePop() boundaryEvent {
	h := s.staging
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = boundaryEvent{} // release fn for GC
	s.staging = h[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && stageLess(h[c+1], h[c]) {
			c++
		}
		if !stageLess(h[c], h[i]) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	return top
}

// stageLess orders staged events by (time, source shard, source sequence):
// a total, schedule-independent order for same-instant arrivals.
func stageLess(a, b boundaryEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

const statusIdle = uint64(1)

// setIdle and setActive maintain status = epoch<<1 | idleBit. The epoch
// bump on wake-up is what makes the termination double-collect sound.
func (s *engineShard) setIdle() {
	st := s.status.Load()
	if st&statusIdle == 0 {
		s.status.Store(st | statusIdle)
	}
}

func (s *engineShard) setActive() {
	st := s.status.Load()
	if st&statusIdle != 0 {
		s.status.Store((st>>1 + 1) << 1) // bump epoch, clear idle
	}
}

// tryTerminate performs the double-collect and, on success, stops the run.
func (e *ShardEngine) tryTerminate(snap []uint64) bool {
	for i, s := range e.shards {
		st := s.status.Load()
		if st&statusIdle == 0 {
			return false
		}
		snap[i] = st
	}
	for _, s := range e.shards {
		for _, n := range s.nbrs {
			box := s.in[n]
			if box.pushed.Load() != box.drained.Load() {
				return false
			}
		}
	}
	for i, s := range e.shards {
		if s.status.Load() != snap[i] {
			return false
		}
	}
	e.done.Store(true)
	e.wakeAll()
	return true
}

// runShard is one shard's main loop.
func (e *ShardEngine) runShard(s *engineShard) {
	sched := s.sched
	snap := make([]uint64, len(e.shards))
	idlePasses := 0
	for !e.done.Load() {
		// Read neighbor clocks (acquire) before draining: every boundary
		// event relevant below the resulting horizon is then visible.
		h := e.horizon(s)
		s.drain()

		progressed := false
		for {
			st, sok := stagePeek(s.staging)
			lt, lok := sched.PeekTime()
			var t Time
			var useStaged bool
			switch {
			case sok && lok:
				// Staged-before-local on time ties: a boundary event's
				// position in the source's sequence is fixed, while local
				// seq numbers depend only on local history, so this rule is
				// deterministic.
				useStaged = st <= lt
				t = lt
				if useStaged {
					t = st
				}
			case sok:
				useStaged, t = true, st
			case lok:
				useStaged, t = false, lt
			default:
				goto blocked
			}
			if t >= h || t > e.deadline {
				goto blocked
			}
			if !progressed {
				s.setActive()
				e.publish(s, t)
				progressed = true
				if e.diag {
					s.batchStart = time.Since(e.wallStart)
					s.batchEvents = 0
				}
			}
			if e.diag {
				s.batchEvents++
			}
			if useStaged {
				ev := s.stagePop()
				sched.AdvanceTo(ev.at)
				ev.fn()
			} else {
				sched.Step()
			}
			if sched.Halted() {
				// Halt is only meaningful for single-shard runs (the
				// bit-identity path); a halted shard drains nothing more.
				if e.diag {
					e.closeRunSpan(s)
				}
				e.haltShard(s)
				return
			}
		}

	blocked:
		if progressed && e.diag {
			e.closeRunSpan(s)
		}
		// Publish the best promise available while blocked: the earliest
		// thing this shard could ever execute next, capped by its own
		// horizon (arrivals from neighbor i land at >= C_i + L >= horizon).
		next := h
		if st, ok := stagePeek(s.staging); ok && st < next {
			next = st
		}
		if lt, ok := sched.PeekTime(); ok && lt < next {
			next = lt
		}
		e.publish(s, next)

		st, sok := stagePeek(s.staging)
		lt, lok := sched.PeekTime()
		if (!sok || st > e.deadline) && (!lok || lt > e.deadline) {
			s.setIdle()
			if e.tryTerminate(snap) {
				return
			}
		}
		if progressed {
			idlePasses = 0
		} else if idlePasses++; idlePasses <= blockedSpins {
			runtime.Gosched()
		} else if e.diag {
			t0 := time.Since(e.wallStart)
			if parkBlocked {
				e.park(s, h)
			} else {
				time.Sleep(blockedNap)
			}
			s.spans = append(s.spans, ShardSpan{
				Shard: s.id, Kind: "blocked",
				Start: t0, End: time.Since(e.wallStart), SimAt: sched.Now(),
			})
		} else if parkBlocked {
			e.park(s, h)
		} else {
			time.Sleep(blockedNap)
		}
	}
}

func stagePeek(h []boundaryEvent) (Time, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// haltShard marks a halted shard permanently idle and keeps its inboxes
// drained (discarding arrivals) so the other shards can still terminate.
func (e *ShardEngine) haltShard(s *engineShard) {
	e.publish(s, maxTime-e.look)
	idlePasses := 0
	for !e.done.Load() {
		for _, n := range s.nbrs {
			box := s.in[n]
			if box.pushed.Load() == box.drained.Load() {
				continue
			}
			box.mu.Lock()
			n := len(box.items)
			box.items = box.items[:0]
			box.mu.Unlock()
			box.drained.Add(uint64(n))
		}
		s.setIdle()
		snap := make([]uint64, len(e.shards))
		if e.tryTerminate(snap) {
			return
		}
		if idlePasses++; idlePasses <= blockedSpins {
			runtime.Gosched()
		} else if parkBlocked {
			e.park(s, maxTime)
		} else {
			time.Sleep(blockedNap)
		}
	}
}
