// Package sim provides the discrete-event simulation engine that all other
// subsystems run on: a virtual clock, an event queue with deterministic
// ordering, cancellable timers, and a seeded random source.
//
// All simulated components share one *Scheduler. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO), which keeps
// runs fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is the simulated clock value, measured as an offset from the start of
// the run. It uses time.Duration (nanoseconds) so PHY-level math — samples at
// 2 Msps are 500 ns each — stays exact.
type Time = time.Duration

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among equal times
	fn     func()
	index  int // heap index, -1 when not queued
	dead   bool
	What   string // optional label, used in traces and tests
	cancel bool
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *Event }

// Stop cancels the timer. It reports whether the timer was still pending
// (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.cancel {
		return false
	}
	t.ev.cancel = true
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.dead && !t.ev.cancel
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	ran    uint64
	halted bool
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
// The same seed always yields the same run.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// EventsRun returns the number of events executed so far.
func (s *Scheduler) EventsRun() uint64 { return s.ran }

// Pending returns the number of events currently queued (including
// cancelled-but-unreaped ones).
func (s *Scheduler) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a simulation bug, never a recoverable condition.
func (s *Scheduler) At(at Time, what string, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", what, at, s.now))
	}
	ev := &Event{at: at, seq: s.seq, fn: fn, What: what, index: -1}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, what string, fn func()) *Timer {
	return s.At(s.now+d, what, fn)
}

// Halt stops the run loop after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// Step runs the next pending event, advancing the clock to its deadline.
// It reports false when no events remain.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		ev.dead = true
		if ev.cancel {
			continue
		}
		s.now = ev.at
		s.ran++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with deadlines <= end, then sets the clock to end.
// Events scheduled beyond end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			break
		}
		// Peek: queue[0] is the earliest event.
		if s.queue[0].at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}
