// Package sim provides the discrete-event simulation engine that all other
// subsystems run on: a virtual clock, an event queue with deterministic
// ordering, cancellable timers, and a seeded random source.
//
// All simulated components share one *Scheduler. Events scheduled for the
// same instant fire in the order they were scheduled (FIFO), which keeps
// runs fully deterministic for a given seed.
//
// The event core is allocation-free in steady state: events live in a slab
// recycled through a free list, the priority queue is a value-based 4-ary
// index heap over slab slots, and Timer handles are generation-stamped
// values — scheduling, firing and cancelling events never touches the heap
// allocator once the slab has grown to the run's high-water mark.
// Timer.Stop removes the event from the queue immediately (no lazy-cancel
// tombstones), so Pending is exact and cancelled slots are reused at once.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is the simulated clock value, measured as an offset from the start of
// the run. It uses time.Duration (nanoseconds) so PHY-level math — samples at
// 2 Msps are 500 ns each — stays exact.
type Time = time.Duration

// event is one slab slot. A slot is queued when pos >= 0; a freed slot bumps
// gen so stale Timer handles can never cancel its next occupant.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among equal times
	fn   func()
	what string // optional label, used in panic messages
	gen  uint32
	pos  int32 // index into Scheduler.queue, -1 when not queued
}

// Timer is a handle to a scheduled event that can be cancelled. It is a
// small value (no allocation per timer); the zero Timer is valid and behaves
// like one that already fired.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
}

// Stop cancels the timer, removing its event from the queue immediately and
// recycling the slot. It reports whether the timer was still pending (false
// if it already fired or was already stopped).
func (t Timer) Stop() bool {
	s := t.s
	if s == nil {
		return false
	}
	ev := &s.events[t.slot]
	if ev.gen != t.gen || ev.pos < 0 {
		return false
	}
	s.removeAt(int(ev.pos))
	s.release(t.slot)
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.events[t.slot]
	return ev.gen == t.gen && ev.pos >= 0
}

// Scheduler owns the virtual clock and the pending-event queue.
type Scheduler struct {
	now    Time
	events []event // slab; grows to the high-water mark, then stable
	queue  []int32 // 4-ary min-heap of slab slots, ordered by (at, seq)
	free   []int32 // recycled slots
	seq    uint64
	rng    *rand.Rand
	ran    uint64
	halted bool

	wallBudget time.Duration // 0: no watchdog
	wallStart  time.Time
}

// WallBudgetError reports a run that exceeded its wall-clock budget. It is
// raised as a panic from Step so a hung simulation fails loudly mid-run;
// the runner's recover converts it into a per-run error, so one
// pathological cell reports instead of stalling a whole sweep.
type WallBudgetError struct {
	// Budget is the configured wall-clock allowance.
	Budget time.Duration
	// SimTime and Events locate how far the run got.
	SimTime Time
	Events  uint64
}

func (e *WallBudgetError) Error() string {
	return fmt.Sprintf("sim: wall-clock budget %v exceeded at simulated %v after %d events",
		e.Budget, e.SimTime, e.Events)
}

// SetWallBudget arms a wall-clock watchdog: once more than d of real time
// elapses (measured from this call), Step panics with a *WallBudgetError.
// The check samples the wall clock every few thousand events, so the
// overhead on healthy runs is negligible and event order is never
// affected — the watchdog only decides whether the run survives, not what
// it computes. d <= 0 disarms.
func (s *Scheduler) SetWallBudget(d time.Duration) {
	s.wallBudget = d
	s.wallStart = time.Now()
}

// NewScheduler returns a scheduler whose random source is seeded with seed.
// The same seed always yields the same run.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the scheduler's deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// EventsRun returns the number of events executed so far.
func (s *Scheduler) EventsRun() uint64 { return s.ran }

// Pending returns the number of events currently queued. Stopped timers are
// removed immediately, so the count is exact.
func (s *Scheduler) Pending() int { return len(s.queue) }

// PoolStats reports the event core's slab occupancy: slots is the slab's
// high-water mark, free the recycled slots available for reuse, and
// pending the events currently queued. The telemetry layer samples these
// as the event-pool occupancy gauges.
func (s *Scheduler) PoolStats() (slots, free, pending int) {
	return len(s.events), len(s.free), len(s.queue)
}

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a simulation bug, never a recoverable condition.
func (s *Scheduler) At(at Time, what string, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v, before now %v", what, at, s.now))
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.events = append(s.events, event{})
		slot = int32(len(s.events) - 1)
	}
	ev := &s.events[slot]
	ev.at, ev.seq, ev.fn, ev.what = at, s.seq, fn, what
	s.seq++
	i := len(s.queue)
	s.queue = append(s.queue, slot)
	ev.pos = int32(i)
	s.siftUp(i)
	return Timer{s: s, slot: slot, gen: ev.gen}
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, what string, fn func()) Timer {
	return s.At(s.now+d, what, fn)
}

// Halt stops the run loop after the current event returns.
func (s *Scheduler) Halt() { s.halted = true }

// Halted reports whether Halt has been called since the last Run/RunUntil
// started. The shard engine polls it between events; Run and RunUntil clear
// it on entry.
func (s *Scheduler) Halted() bool { return s.halted }

// PeekTime returns the deadline of the earliest pending event without
// executing it. ok is false when the queue is empty.
func (s *Scheduler) PeekTime() (at Time, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.events[s.queue[0]].at, true
}

// AdvanceTo moves the clock forward to t without executing anything. The
// shard engine uses it to run externally-staged boundary events at their
// exact timestamps. Moving backwards panics: conservative synchronization
// guarantees staged events are never in the local past, so a violation is
// an engine bug.
func (s *Scheduler) AdvanceTo(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, s.now))
	}
	s.now = t
}

// Step runs the next pending event, advancing the clock to its deadline.
// It reports false when no events remain.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	slot := s.queue[0]
	s.removeAt(0)
	ev := &s.events[slot]
	at, fn := ev.at, ev.fn
	s.release(slot)
	s.now = at
	s.ran++
	if s.wallBudget > 0 && s.ran&4095 == 0 && time.Since(s.wallStart) > s.wallBudget {
		panic(&WallBudgetError{Budget: s.wallBudget, SimTime: s.now, Events: s.ran})
	}
	fn()
	return true
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with deadlines <= end, then sets the clock to end.
// Events scheduled beyond end remain queued.
func (s *Scheduler) RunUntil(end Time) {
	s.halted = false
	for !s.halted {
		if len(s.queue) == 0 {
			break
		}
		// Peek: queue[0] is the earliest event.
		if s.events[s.queue[0]].at > end {
			break
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// release recycles a slot: the generation bump invalidates outstanding Timer
// handles, and dropping fn releases the closure for the GC.
func (s *Scheduler) release(slot int32) {
	ev := &s.events[slot]
	ev.gen++
	ev.fn = nil
	ev.what = ""
	ev.pos = -1
	s.free = append(s.free, slot)
}

// less orders two slab slots by (at, seq). The order is total (seq is
// unique), so any heap arity yields the same pop sequence.
func (s *Scheduler) less(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	return ea.at < eb.at || (ea.at == eb.at && ea.seq < eb.seq)
}

// siftUp restores the heap above position i.
func (s *Scheduler) siftUp(i int) {
	q := s.queue
	slot := q[i]
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(slot, q[p]) {
			break
		}
		q[i] = q[p]
		s.events[q[i]].pos = int32(i)
		i = p
	}
	q[i] = slot
	s.events[slot].pos = int32(i)
}

// siftDown restores the heap below position i.
func (s *Scheduler) siftDown(i int) {
	q := s.queue
	n := len(q)
	slot := q[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if s.less(q[j], q[best]) {
				best = j
			}
		}
		if !s.less(q[best], slot) {
			break
		}
		q[i] = q[best]
		s.events[q[i]].pos = int32(i)
		i = best
	}
	q[i] = slot
	s.events[slot].pos = int32(i)
}

// removeAt deletes the queue entry at position i, preserving heap order.
func (s *Scheduler) removeAt(i int) {
	n := len(s.queue) - 1
	last := s.queue[n]
	s.queue = s.queue[:n]
	if i == n {
		return
	}
	s.queue[i] = last
	s.events[last].pos = int32(i)
	s.siftDown(i)
	if s.queue[i] == last {
		s.siftUp(i)
	}
}
