package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Microsecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Microsecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Microsecond, "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	s.After(time.Millisecond, "outer", func() {
		fired = append(fired, "outer")
		s.After(time.Millisecond, "inner", func() { fired = append(fired, "inner") })
	})
	s.Run()
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("nested scheduling failed: %v", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.After(time.Millisecond, "x", func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before Stop")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("timer should not be pending after Stop")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, "x", func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Millisecond, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(0, "past", func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	s.After(time.Millisecond, "a", func() { fired = append(fired, "a") })
	s.After(3*time.Millisecond, "b", func() { fired = append(fired, "b") })
	s.RunUntil(2 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("RunUntil fired %v, want [a]", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(time.Millisecond, "a", func() { n++; s.Halt() })
	s.After(2*time.Millisecond, "b", func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("Halt did not stop the loop: ran %d events", n)
	}
	s.Run()
	if n != 2 {
		t.Fatalf("second Run did not resume: ran %d events", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(s.Now()), s.rng.Int63n(1000))
			if len(trace) < 200 {
				s.After(time.Duration(1+s.rng.Intn(100))*time.Microsecond, "step", step)
			}
		}
		s.After(0, "start", step)
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := NewScheduler(7)
		var fireTimes []Time
		var maxd time.Duration
		for _, d := range delaysRaw {
			dur := time.Duration(d) * time.Microsecond
			if dur > maxd {
				maxd = dur
			}
			s.After(dur, "p", func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return s.Now() == maxd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of timers means exactly the
// complement fires.
func TestPropertyCancellation(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		s := NewScheduler(3)
		fired := make([]bool, len(delays))
		timers := make([]*Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.After(time.Duration(d)*time.Microsecond, "p", func() { fired[i] = true })
		}
		cancelled := make([]bool, len(delays))
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				timers[i].Stop()
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, "bench", func() {})
		s.Step()
	}
}
