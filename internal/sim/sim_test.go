package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(30*time.Microsecond, "c", func() { got = append(got, 3) })
	s.After(10*time.Microsecond, "a", func() { got = append(got, 1) })
	s.After(20*time.Microsecond, "b", func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Microsecond {
		t.Fatalf("Now = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, "tie", func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events ran out of order: %v", got)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	s.After(time.Millisecond, "outer", func() {
		fired = append(fired, "outer")
		s.After(time.Millisecond, "inner", func() { fired = append(fired, "inner") })
	})
	s.Run()
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("nested scheduling failed: %v", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler(1)
	ran := false
	tm := s.After(time.Millisecond, "x", func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before Stop")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("timer should not be pending after Stop")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, "x", func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler(1)
	s.After(time.Millisecond, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(0, "past", func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(1)
	var fired []string
	s.After(time.Millisecond, "a", func() { fired = append(fired, "a") })
	s.After(3*time.Millisecond, "b", func() { fired = append(fired, "b") })
	s.RunUntil(2 * time.Millisecond)
	if len(fired) != 1 || fired[0] != "a" {
		t.Fatalf("RunUntil fired %v, want [a]", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not run: %v", fired)
	}
}

// RunUntil must never execute an event past its deadline, even when the
// queue head at the deadline check is a cancelled timer. The lazy-cancel
// scheduler had exactly this bug: Step() reaped tombstones and then ran the
// next live event unconditionally, so a cancelled head with at <= end let
// one event beyond end slip through.
func TestRunUntilStopsAtDeadlineWithCancelledHead(t *testing.T) {
	s := NewScheduler(1)
	tm := s.After(time.Millisecond, "cancelled-head", func() {})
	ran := false
	s.After(5*time.Millisecond, "beyond", func() { ran = true })
	tm.Stop()
	s.RunUntil(2 * time.Millisecond)
	if ran {
		t.Fatal("RunUntil executed an event past its deadline")
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	s := NewScheduler(1)
	s.RunUntil(5 * time.Second)
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := NewScheduler(1)
	n := 0
	s.After(time.Millisecond, "a", func() { n++; s.Halt() })
	s.After(2*time.Millisecond, "b", func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("Halt did not stop the loop: ran %d events", n)
	}
	s.Run()
	if n != 2 {
		t.Fatalf("second Run did not resume: ran %d events", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := NewScheduler(seed)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(s.Now()), s.rng.Int63n(1000))
			if len(trace) < 200 {
				s.After(time.Duration(1+s.rng.Intn(100))*time.Microsecond, "step", step)
			}
		}
		s.After(0, "start", step)
		s.Run()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock ends at the max delay.
func TestPropertyEventOrder(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 {
			return true
		}
		s := NewScheduler(7)
		var fireTimes []Time
		var maxd time.Duration
		for _, d := range delaysRaw {
			dur := time.Duration(d) * time.Microsecond
			if dur > maxd {
				maxd = dur
			}
			s.After(dur, "p", func() { fireTimes = append(fireTimes, s.Now()) })
		}
		s.Run()
		if len(fireTimes) != len(delaysRaw) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return s.Now() == maxd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of timers means exactly the
// complement fires.
func TestPropertyCancellation(t *testing.T) {
	f := func(delays []uint8, cancelMask []bool) bool {
		s := NewScheduler(3)
		fired := make([]bool, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = s.After(time.Duration(d)*time.Microsecond, "p", func() { fired[i] = true })
		}
		cancelled := make([]bool, len(delays))
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				timers[i].Stop()
				cancelled[i] = true
			}
		}
		s.Run()
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Stopping a timer must free its queue slot immediately (no lazy-cancel
// tombstones lingering until the deadline).
func TestStopReapsImmediately(t *testing.T) {
	s := NewScheduler(1)
	tms := make([]Timer, 10)
	for i := range tms {
		tms[i] = s.After(time.Duration(i+1)*time.Millisecond, "x", func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	for i := 0; i < 5; i++ {
		tms[2*i].Stop()
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending after 5 Stops = %d, want 5 (cancelled events must be reaped in place)", s.Pending())
	}
	n := 0
	for s.Step() {
		n++
	}
	if n != 5 {
		t.Fatalf("ran %d events, want 5", n)
	}
}

// A Timer handle from a fired or stopped event must stay inert even after
// its slab slot is reused by a new event (generation stamps).
func TestStaleTimerCannotTouchReusedSlot(t *testing.T) {
	s := NewScheduler(1)
	old := s.After(time.Millisecond, "old", func() {})
	if !old.Stop() {
		t.Fatal("first Stop should succeed")
	}
	ran := false
	fresh := s.After(2*time.Millisecond, "fresh", func() { ran = true })
	if old.Stop() {
		t.Fatal("stale handle stopped the slot's new occupant")
	}
	if old.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if !fresh.Pending() {
		t.Fatal("fresh timer should be pending")
	}
	s.Run()
	if !ran {
		t.Fatal("fresh event did not run")
	}
}

// The zero Timer is valid: Stop and Pending are no-ops.
func TestZeroTimer(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer Stop should report false")
	}
	if tm.Pending() {
		t.Fatal("zero Timer should not be pending")
	}
}

// Steady-state scheduling must not allocate: slots recycle through the free
// list and Timer handles are values.
func TestSteadyStateAllocFree(t *testing.T) {
	s := NewScheduler(1)
	fn := func() {}
	// Prime the slab.
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Microsecond, "prime", fn)
	}
	for s.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Microsecond, "steady", fn)
		_ = tm.Pending()
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %v times per op, want 0", allocs)
	}
}

// Property: interleaving schedules and cancellations at random always pops
// the survivors in exact (at, seq) order — the heap invariant under Remove.
func TestPropertyHeapOrderUnderChurn(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewScheduler(9)
		type rec struct {
			at  Time
			seq int
		}
		var live []rec
		var timers []Timer
		seq := 0
		for _, op := range ops {
			if op%5 == 4 && len(timers) > 0 {
				i := int(op/5) % len(timers)
				if timers[i].Stop() {
					// Drop the matching live record (same index: timers
					// and live grow in lockstep and Stop is idempotent).
					live[i].seq = -1
				}
				continue
			}
			at := time.Duration(op%1000) * time.Microsecond
			k := seq
			seq++
			live = append(live, rec{at: at, seq: k})
			timers = append(timers, s.After(at, "p", func() {}))
		}
		var want []rec
		for _, r := range live {
			if r.seq >= 0 {
				want = append(want, r)
			}
		}
		// Expected order: by (at, seq).
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && (want[j].at < want[j-1].at ||
				(want[j].at == want[j-1].at && want[j].seq < want[j-1].seq)); j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		var got []Time
		for s.Step() {
			got = append(got, s.Now())
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := NewScheduler(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, "bench", func() {})
		s.Step()
	}
}

func BenchmarkSchedulerStopChurn(b *testing.B) {
	s := NewScheduler(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := s.After(time.Microsecond, "bench", fn)
		tm.Stop()
	}
}
