//go:build !race

package sim

// Without the race detector a blocked shard's pass is ~100ns of plain atomic
// loads; pure spinning wins and the nap path is effectively unreachable.
const blockedSpins = 1 << 30
