//go:build !race

package sim

// Without the race detector a blocked shard's pass is ~100ns of plain atomic
// loads. A short spin still wins for tight handoffs, but past that the shard
// parks on its wakeup channel instead of burning the core: neighbor clock
// advances, inbound posts, and termination all deliver explicit wakeups, so
// the latency cost of parking is one channel send instead of a sleep-timer
// granule.
const (
	blockedSpins = 128
	parkBlocked  = true
)
