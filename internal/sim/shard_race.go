//go:build race

package sim

// Under the race detector each blocked pass costs microseconds of
// instrumented atomics and the spinners serialize against the shard that can
// actually progress; give up quickly and sleep instead.
const blockedSpins = 64
