//go:build race

package sim

// Under the race detector each blocked pass costs microseconds of
// instrumented atomics and the spinners serialize against the shard that can
// actually progress; give up quickly and sleep instead. Channel parking is
// also disabled: instrumented channel ops on every publish would slow the
// fast path more than the naps cost.
const (
	blockedSpins = 64
	parkBlocked  = false
)
