package sim

import (
	"testing"
	"time"
)

// TestShardDiagSpans: with diagnostics enabled the engine records per-shard
// run/blocked wall-clock spans without perturbing the simulation itself —
// logs and event counts must match a non-diag run exactly.
func TestShardDiagSpans(t *testing.T) {
	refLogs, refRan := runPingMesh(3, 42)

	e, scheds, logs := buildPingMesh(3, 42, 3)
	e.EnableDiag()
	e.Run(50 * time.Millisecond)

	for i := range refLogs {
		if len(logs[i]) != len(refLogs[i]) {
			t.Fatalf("diag run: shard %d ran %d events, want %d", i, len(logs[i]), len(refLogs[i]))
		}
		for j := range logs[i] {
			if logs[i][j] != refLogs[i][j] {
				t.Fatalf("diag run: shard %d event %d = %q, want %q", i, j, logs[i][j], refLogs[i][j])
			}
		}
		if scheds[i].EventsRun() != refRan[i] {
			t.Fatalf("diag run: shard %d EventsRun %d, want %d", i, scheds[i].EventsRun(), refRan[i])
		}
	}

	spans := e.DiagSpans()
	if len(spans) == 0 {
		t.Fatalf("no spans recorded with diagnostics enabled")
	}
	var ranEvents uint64
	seenShard := map[int]bool{}
	for _, sp := range spans {
		if sp.Shard < 0 || sp.Shard >= 3 {
			t.Fatalf("span shard %d out of range", sp.Shard)
		}
		seenShard[sp.Shard] = true
		if sp.End < sp.Start {
			t.Fatalf("span %+v ends before it starts", sp)
		}
		switch sp.Kind {
		case "run":
			ranEvents += sp.Events
		case "blocked":
			if sp.Events != 0 {
				t.Fatalf("blocked span %+v carries events", sp)
			}
		default:
			t.Fatalf("span %+v has unknown kind", sp)
		}
	}
	if len(seenShard) != 3 {
		t.Fatalf("spans cover %d shards, want 3", len(seenShard))
	}
	// Run spans count staged boundary arrivals as well as local events, so
	// they account for at least every locally-scheduled event.
	var want uint64
	for _, r := range refRan {
		want += r
	}
	if ranEvents < want {
		t.Fatalf("run spans account for %d events, want >= %d", ranEvents, want)
	}
}

// TestShardDiagOffByDefault: without EnableDiag the engine records nothing.
func TestShardDiagOffByDefault(t *testing.T) {
	e, _, _ := buildPingMesh(2, 7, 3)
	e.Run(10 * time.Millisecond)
	if spans := e.DiagSpans(); len(spans) != 0 {
		t.Fatalf("got %d spans without EnableDiag, want 0", len(spans))
	}
}
