package sim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

const testLook = 100 * time.Microsecond

// buildPingMesh wires nShards schedulers in a line (i — i+1) with a
// self-propagating workload: every local event may post boundary events to
// its neighbors, which in turn schedule more local events. Returns the
// engine and per-shard execution logs.
func buildPingMesh(nShards int, seed int64, fanout int) (*ShardEngine, []*Scheduler, [][]string) {
	scheds := make([]*Scheduler, nShards)
	for i := range scheds {
		scheds[i] = NewScheduler(seed + int64(i)*7919)
	}
	e := NewShardEngine(scheds, testLook)
	for i := 0; i+1 < nShards; i++ {
		e.Connect(i, i+1)
	}
	logs := make([][]string, nShards)

	var local func(shard, depth int, tag string) func()
	local = func(shard, depth int, tag string) func() {
		return func() {
			s := scheds[shard]
			logs[shard] = append(logs[shard], fmt.Sprintf("%s@%v", tag, s.Now()))
			if depth <= 0 {
				return
			}
			for f := 0; f < fanout; f++ {
				jitter := Time(s.Rand().Intn(50)) * time.Microsecond
				child := fmt.Sprintf("%s.%d", tag, f)
				if f%2 == 0 || shard == nShards-1 {
					s.After(testLook/2+jitter, child, local(shard, depth-1, child))
					continue
				}
				dst := shard + 1
				at := s.Now() + testLook + jitter
				e.Post(shard, dst, at, func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("x%s@%v", child, scheds[dst].Now()))
					scheds[dst].After(jitter, child, local(dst, depth-1, child))
				})
			}
		}
	}
	for i := range scheds {
		for k := 0; k < 3; k++ {
			tag := fmt.Sprintf("s%d.%d", i, k)
			scheds[i].At(Time(k*30)*time.Microsecond, tag, local(i, 5, tag))
		}
	}
	return e, scheds, logs
}

func runPingMesh(nShards int, seed int64) ([][]string, []uint64) {
	e, scheds, logs := buildPingMesh(nShards, seed, 3)
	e.Run(50 * time.Millisecond)
	ran := make([]uint64, nShards)
	for i, s := range scheds {
		ran[i] = s.EventsRun()
		if s.Now() != 50*time.Millisecond {
			panic(fmt.Sprintf("shard %d clock %v, want deadline", i, s.Now()))
		}
	}
	return logs, ran
}

// TestShardEngineDeterministic proves the engine is schedule-independent:
// identical logs and event counts across repeats and GOMAXPROCS settings.
func TestShardEngineDeterministic(t *testing.T) {
	refLogs, refRan := runPingMesh(4, 42)
	total := 0
	for i, l := range refLogs {
		if len(l) == 0 {
			t.Fatalf("shard %d executed nothing", i)
		}
		total += len(l)
	}
	if total < 100 {
		t.Fatalf("workload too small to be meaningful: %d log entries", total)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			logs, ran := runPingMesh(4, 42)
			for i := range refLogs {
				if len(logs[i]) != len(refLogs[i]) {
					t.Fatalf("GOMAXPROCS=%d rep %d: shard %d ran %d events, want %d",
						procs, rep, i, len(logs[i]), len(refLogs[i]))
				}
				for j := range logs[i] {
					if logs[i][j] != refLogs[i][j] {
						t.Fatalf("GOMAXPROCS=%d rep %d: shard %d event %d = %q, want %q",
							procs, rep, i, j, logs[i][j], refLogs[i][j])
					}
				}
				if ran[i] != refRan[i] {
					t.Fatalf("GOMAXPROCS=%d rep %d: shard %d EventsRun %d, want %d",
						procs, rep, i, ran[i], refRan[i])
				}
			}
		}
	}
}

// TestShardEngineSingleShardMatchesSequential: with one shard the engine
// must reproduce Scheduler.RunUntil exactly, including EventsRun and Halt.
func TestShardEngineSingleShardMatchesSequential(t *testing.T) {
	build := func(s *Scheduler, log *[]string, haltAt int) {
		n := 0
		var tick func()
		tick = func() {
			n++
			*log = append(*log, fmt.Sprintf("t%d@%v", n, s.Now()))
			if n == haltAt {
				s.Halt()
				return
			}
			d := Time(s.Rand().Intn(200)+1) * time.Microsecond
			s.After(d, "tick", tick)
			s.After(d*2, "tock", func() { *log = append(*log, fmt.Sprintf("o@%v", s.Now())) })
		}
		s.At(0, "tick", tick)
	}
	for _, haltAt := range []int{0 /* never: runs to deadline */, 25} {
		seqS := NewScheduler(7)
		var seqLog []string
		build(seqS, &seqLog, haltAt)
		seqS.RunUntil(10 * time.Millisecond)

		parS := NewScheduler(7)
		var parLog []string
		build(parS, &parLog, haltAt)
		e := NewShardEngine([]*Scheduler{parS}, testLook)
		e.Run(10 * time.Millisecond)

		if len(seqLog) != len(parLog) {
			t.Fatalf("haltAt=%d: engine log %d entries, sequential %d", haltAt, len(parLog), len(seqLog))
		}
		for i := range seqLog {
			if seqLog[i] != parLog[i] {
				t.Fatalf("haltAt=%d: entry %d = %q, want %q", haltAt, i, parLog[i], seqLog[i])
			}
		}
		if seqS.EventsRun() != parS.EventsRun() {
			t.Fatalf("haltAt=%d: EventsRun %d, want %d", haltAt, parS.EventsRun(), seqS.EventsRun())
		}
		if seqS.Now() != parS.Now() {
			t.Fatalf("haltAt=%d: Now %v, want %v", haltAt, parS.Now(), seqS.Now())
		}
	}
}

// TestShardEngineTieOrder: boundary events landing at the same instant
// execute in (source shard, source seq) order, before local events at that
// instant.
func TestShardEngineTieOrder(t *testing.T) {
	scheds := []*Scheduler{NewScheduler(1), NewScheduler(2), NewScheduler(3)}
	e := NewShardEngine(scheds, testLook)
	e.Connect(0, 1)
	e.Connect(2, 1)
	var log []string
	at := testLook
	scheds[1].At(at, "local", func() { log = append(log, "local") })
	scheds[0].At(0, "post", func() {
		e.Post(0, 1, at, func() { log = append(log, "from0a") })
		e.Post(0, 1, at, func() { log = append(log, "from0b") })
	})
	scheds[2].At(0, "post", func() {
		e.Post(2, 1, at, func() { log = append(log, "from2") })
	})
	e.Run(time.Millisecond)
	want := []string{"from0a", "from0b", "from2", "local"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

// TestShardEngineDeadline: events beyond the deadline stay unexecuted and
// every scheduler lands exactly on the deadline.
func TestShardEngineDeadline(t *testing.T) {
	scheds := []*Scheduler{NewScheduler(1), NewScheduler(2)}
	e := NewShardEngine(scheds, testLook)
	e.Connect(0, 1)
	ran := 0
	scheds[0].At(time.Millisecond, "in", func() { ran++ })
	scheds[0].At(3*time.Millisecond, "out", func() { t.Error("event beyond deadline executed") })
	scheds[1].At(2*time.Millisecond, "in", func() {
		ran++
		// Posts whose timestamp lands beyond the deadline must not wedge
		// termination.
		e.Post(1, 0, 2*time.Millisecond+2*testLook, func() { t.Error("late boundary executed") })
	})
	e.Run(2*time.Millisecond + testLook/2)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	for i, s := range scheds {
		if s.Now() != 2*time.Millisecond+testLook/2 {
			t.Fatalf("shard %d clock %v, want deadline", i, s.Now())
		}
		if s.Pending() != 1 && i == 0 {
			t.Fatalf("shard 0 should still hold its beyond-deadline event")
		}
	}
}

// TestShardEnginePostContract: lookahead violations and posts to
// unconnected shards panic.
func TestShardEnginePostContract(t *testing.T) {
	scheds := []*Scheduler{NewScheduler(1), NewScheduler(2), NewScheduler(3)}
	e := NewShardEngine(scheds, testLook)
	e.Connect(0, 1)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	scheds[0].At(0, "violations", func() {
		expectPanic("lookahead", func() { e.Post(0, 1, testLook/2, func() {}) })
		expectPanic("unconnected", func() { e.Post(0, 2, testLook, func() {}) })
	})
	e.Run(time.Millisecond)
}

func TestSchedulerPeekAdvance(t *testing.T) {
	s := NewScheduler(1)
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	s.At(5*time.Microsecond, "a", func() {})
	if at, ok := s.PeekTime(); !ok || at != 5*time.Microsecond {
		t.Fatalf("PeekTime = %v,%v", at, ok)
	}
	s.AdvanceTo(3 * time.Microsecond)
	if s.Now() != 3*time.Microsecond {
		t.Fatalf("Now = %v after AdvanceTo", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	s.AdvanceTo(time.Microsecond)
}
