// Package analytic provides closed-form throughput predictions for the
// aggregation MAC — the back-of-envelope math of §2's observation that MAC
// overhead bounds throughput, made precise. The simulator is validated
// against these expressions (see tests), and they explain the calibration
// of the PHY/MAC timing constants against the paper's Table 4.
//
// The model assumes a saturated, error-free channel with no collisions
// (contention cost enters only as the mean backoff of CWmin/2 slots),
// which is accurate for the paper's chain topologies where carrier sense
// plus NAV serializes the nodes.
package analytic

import (
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// Model holds the timing constants.
type Model struct {
	Phy phy.Params
	MAC mac.Options
}

// New builds a model from the calibrated defaults at the given rate.
func New(rate phy.Rate) Model {
	return Model{Phy: phy.DefaultParams(), MAC: mac.DefaultOptions(mac.BA, rate)}
}

// meanBackoff is the expected initial contention window wait.
func (m Model) meanBackoff() time.Duration {
	return time.Duration(m.MAC.CWmin) * m.MAC.Slot / 2
}

func (m Model) control(size int) time.Duration {
	return m.Phy.PreamblePLCP + phy.Airtime(size, m.Phy.ControlRate)
}

// UnicastExchange is the channel time of one RTS/CTS-protected aggregate
// carrying bodyBytes at rate, including floor acquisition.
//
//	DIFS + E[backoff] + RTS + SIFS + CTS + SIFS + (preamble + body) +
//	SIFS + ACK
func (m Model) UnicastExchange(bodyBytes int, rate phy.Rate, hasBroadcastDesc bool) time.Duration {
	return m.MAC.DIFS + m.meanBackoff() +
		m.control(frame.RTSLen) + m.MAC.SIFS +
		m.control(frame.CTSLen) + m.MAC.SIFS +
		m.Phy.PreamblePLCP + m.Phy.BroadcastDescDuration(hasBroadcastDesc) +
		phy.Airtime(bodyBytes, rate) +
		m.MAC.SIFS + m.control(frame.AckLen)
}

// BroadcastExchange is the channel time of a broadcast-only transmission:
// no RTS/CTS, no link ACK.
func (m Model) BroadcastExchange(bodyBytes int, rate phy.Rate) time.Duration {
	return m.MAC.DIFS + m.meanBackoff() +
		m.Phy.PreamblePLCP + m.Phy.BroadcastDescDuration(true) +
		phy.Airtime(bodyBytes, rate)
}

// UDPFrameBytes is the paper's UDP MAC frame size.
const UDPFrameBytes = 1140

// udpPayload is the application payload inside one 1140 B UDP frame.
const udpPayload = UDPFrameBytes - frame.SubframeOverhead - 59 - 8 // encap+IP, UDP

// UDPThroughputMbps predicts saturated UDP goodput over an n-hop chain
// with aggregates of aggFrames frames. Hops share one collision domain, so
// per-packet channel time multiplies by the hop count.
func (m Model) UDPThroughputMbps(hops, aggFrames int, rate phy.Rate) float64 {
	body := aggFrames * UDPFrameBytes
	t := m.UnicastExchange(body, rate, false)
	perPacket := time.Duration(hops) * t / time.Duration(aggFrames)
	return float64(udpPayload) * 8 / perPacket.Seconds() / 1e6
}

// TCP frame sizes from the paper (§5).
const (
	TCPDataFrameBytes = 1464
	TCPAckFrameBytes  = 160
	TCPMSS            = 1357
)

// TCPThroughputMbps predicts steady-state TCP goodput over an n-hop chain
// for the paper's schemes. dataAgg and ackAgg are the aggregation degrees
// (1 for NA; the paper's ~3 data and ~3 ACKs for UA/BA).
//
// Channel time per window of dataAgg segments:
//
//	NA/UA: every hop carries a data exchange and an ACK exchange.
//	BA:    relays fold the ACKs into the data exchange's broadcast
//	       portion; only the client pays a separate (broadcast-only,
//	       uncontrolled) transmission for its ACK bundle.
func (m Model) TCPThroughputMbps(scheme mac.Scheme, hops, dataAgg, ackAgg int, rate phy.Rate) float64 {
	if !scheme.AggregateUnicast {
		dataAgg, ackAgg = 1, 1
	}
	dataBody := dataAgg * TCPDataFrameBytes
	segments := dataAgg

	var perWindow time.Duration
	if scheme.AggregateBroadcast && scheme.ClassifyTCPAcks {
		// acks matching the window, rounded up to bundles of ackAgg
		ackBody := segments * TCPAckFrameBytes
		// Data hops: data exchange with ACKs riding at relays (all hops
		// except the first carry the previous window's ACK bytes).
		first := m.UnicastExchange(dataBody, rate, false)
		relayHops := hops - 1
		withAcks := m.UnicastExchange(dataBody+ackBody, rate, true)
		client := m.BroadcastExchange(ackBody, rate)
		perWindow = first + time.Duration(relayHops)*withAcks + client
	} else {
		ackBundles := (segments + ackAgg - 1) / ackAgg
		data := m.UnicastExchange(dataBody, rate, false)
		ack := m.UnicastExchange(ackAgg*TCPAckFrameBytes, rate, false)
		perWindow = time.Duration(hops) * (data + time.Duration(ackBundles)*ack)
	}
	return float64(segments*TCPMSS) * 8 / perWindow.Seconds() / 1e6
}

// NATimeOverhead predicts the Table 4 overhead fraction for a NA relay
// forwarding the paper's TCP mix: the non-payload share of one data and
// one ACK exchange.
func (m Model) NATimeOverhead(rate phy.Rate) float64 {
	var overhead, payload time.Duration
	for _, f := range []struct{ frame, pay int }{
		{TCPDataFrameBytes, TCPDataFrameBytes - frame.SubframeOverhead},
		{TCPAckFrameBytes, TCPAckFrameBytes - frame.SubframeOverhead},
	} {
		t := m.UnicastExchange(f.frame, rate, false)
		p := phy.Airtime(f.pay, rate)
		payload += p
		overhead += t - p
	}
	return float64(overhead) / float64(overhead+payload)
}
