package analytic

import (
	"math"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func within(t *testing.T, what string, got, want, tolerance float64) {
	t.Helper()
	if math.Abs(got-want)/want > tolerance {
		t.Errorf("%s: model %.3f vs %.3f (tolerance %.0f%%)", what, got, want, 100*tolerance)
	}
}

func TestExchangeComposition(t *testing.T) {
	m := New(phy.Rate650k)
	// A 1140 B frame at 0.65 Mbps: ~14.03 ms of body plus ~2.66 ms of
	// fixed overhead (hand computation from the calibrated constants).
	got := m.UnicastExchange(1140, phy.Rate650k, false)
	if got < 16*time.Millisecond || got > 17500*time.Microsecond {
		t.Errorf("exchange time %v, expected ~16.7 ms", got)
	}
	// Broadcast exchanges skip RTS/CTS/ACK: strictly cheaper.
	if b := m.BroadcastExchange(1140, phy.Rate650k); b >= got {
		t.Errorf("broadcast exchange %v not cheaper than unicast %v", b, got)
	}
}

func TestModelMatchesPaperTable4(t *testing.T) {
	// The analytic NA overhead must land on the paper's measured column
	// (this is the calibration identity).
	paper := map[phy.Rate]float64{
		phy.Rate650k:  0.224,
		phy.Rate1300k: 0.349,
		phy.Rate1950k: 0.444,
		phy.Rate2600k: 0.521,
	}
	for rate, want := range paper {
		m := New(rate)
		within(t, "NA overhead "+rate.String(), m.NATimeOverhead(rate), want, 0.06)
	}
}

func TestModelMatchesSimulatorUDP(t *testing.T) {
	// Saturated UDP on clean channels: the simulator should track the
	// closed form within ~10%.
	for _, c := range []struct {
		hops   int
		agg    int
		scheme mac.Scheme
		rate   phy.Rate
	}{
		{1, 1, mac.NA, phy.Rate650k},
		{2, 1, mac.NA, phy.Rate650k},
		{2, 1, mac.NA, phy.Rate1300k},
		{2, 4, mac.UA, phy.Rate650k},
		{2, 4, mac.UA, phy.Rate1300k},
	} {
		m := New(c.rate)
		pred := m.UDPThroughputMbps(c.hops, c.agg, c.rate)
		sim := core.RunUDP(core.UDPConfig{Scheme: c.scheme, Rate: c.rate, Hops: c.hops,
			Seed: 9, Duration: 30 * time.Second}).ThroughputMbps
		within(t, c.scheme.Name()+" UDP", pred, sim, 0.12)
	}
}

func TestModelMatchesSimulatorTCPNA(t *testing.T) {
	m := New(phy.Rate650k)
	pred := m.TCPThroughputMbps(mac.NA, 2, 1, 1, phy.Rate650k)
	sim := core.RunTCP(core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate650k, Hops: 2, Seed: 9}).ThroughputMbps
	within(t, "TCP NA 2-hop", pred, sim, 0.15)
}

func TestModelSchemeOrdering(t *testing.T) {
	// The closed form itself predicts the paper's ordering at every rate.
	for _, rate := range phy.ExperimentRates() {
		m := New(rate)
		na := m.TCPThroughputMbps(mac.NA, 2, 1, 1, rate)
		ua := m.TCPThroughputMbps(mac.UA, 2, 3, 3, rate)
		ba := m.TCPThroughputMbps(mac.BA, 2, 3, 3, rate)
		if !(na < ua && ua < ba) {
			t.Errorf("at %v: model predicts NA %.3f, UA %.3f, BA %.3f — ordering broken",
				rate, na, ua, ba)
		}
	}
	// And the BA edge grows with rate.
	mLow, mHigh := New(phy.Rate650k), New(phy.Rate2600k)
	gLow := mLow.TCPThroughputMbps(mac.BA, 2, 3, 3, phy.Rate650k)/mLow.TCPThroughputMbps(mac.UA, 2, 3, 3, phy.Rate650k) - 1
	gHigh := mHigh.TCPThroughputMbps(mac.BA, 2, 3, 3, phy.Rate2600k)/mHigh.TCPThroughputMbps(mac.UA, 2, 3, 3, phy.Rate2600k) - 1
	if gHigh <= gLow {
		t.Errorf("model BA/UA gap does not grow with rate: %.3f -> %.3f", gLow, gHigh)
	}
}

func TestAggregationAmortizesOverhead(t *testing.T) {
	m := New(phy.Rate2600k)
	one := m.UDPThroughputMbps(1, 1, phy.Rate2600k)
	four := m.UDPThroughputMbps(1, 4, phy.Rate2600k)
	if four <= one {
		t.Fatalf("aggregation did not help: %.3f vs %.3f", four, one)
	}
	// Diminishing returns: 4->8 gains less than 1->4.
	eight := m.UDPThroughputMbps(1, 8, phy.Rate2600k)
	if (eight-four)/four >= (four-one)/one {
		t.Error("no diminishing returns in aggregation degree")
	}
}
