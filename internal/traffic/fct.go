package traffic

import (
	"sort"
	"time"
)

// FCT collects flow-completion-time samples and summarizes them — the
// metric that distinguishes aggregation schemes under churn, where
// steady-state goodput cannot (a scheme that batches aggressively may move
// more bytes yet finish every short flow later).
type FCT struct {
	samples []time.Duration
}

// Record adds one completed flow's completion time.
func (f *FCT) Record(d time.Duration) { f.samples = append(f.samples, d) }

// Count returns the number of recorded completions.
func (f *FCT) Count() int { return len(f.samples) }

// FCTStats summarizes flow completion times. Percentiles select
// sorted[Count·p/100] — the upper-rank convention udp.DelayStats already
// uses, kept identical so FCT and delay tables read the same way (for 100
// samples, P99 is the maximum). A zero Count zeroes everything.
type FCTStats struct {
	Count         int
	Mean          time.Duration
	P50, P95, P99 time.Duration
	Max           time.Duration
}

// Stats computes the summary without mutating the collector.
func (f *FCT) Stats() FCTStats {
	st := FCTStats{Count: len(f.samples)}
	if st.Count == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), f.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	st.Mean = sum / time.Duration(st.Count)
	st.P50 = sorted[st.Count/2]
	st.P95 = sorted[st.Count*95/100]
	st.P99 = sorted[st.Count*99/100]
	st.Max = sorted[st.Count-1]
	return st
}
