// Flow-arrival processes: the layer that decides WHEN flows begin, as
// opposed to the Models that decide what each flow sends. Two disciplines
// cover the classic workload dichotomy:
//
//   - OpenLoop: flows arrive by a Poisson process at a configured rate,
//     regardless of how the network is coping — offered load is external,
//     and congestion shows up as growing flow-completion times.
//   - Think: a fixed population of closed-loop users; each starts its next
//     flow an exponential think time after the previous one completes, so
//     a slow network self-throttles the offered load.
//
// Both own decoupled seeded random streams, so arrival sequences are pure
// functions of (parameters, seed).
package traffic

import (
	"fmt"
	"math/rand"
	"time"
)

// Traffic modes.
const (
	ModeOpen   = "open"   // open-loop Poisson flow arrivals
	ModeClosed = "closed" // closed-loop think-time users
)

// OpenLoop is a Poisson flow-arrival process: inter-arrival gaps are
// exponential with mean 1/rate.
type OpenLoop struct {
	rate float64 // flows per second
	rng  *rand.Rand
}

// NewOpenLoop creates an arrival process at flowsPerSec on its own stream.
func NewOpenLoop(flowsPerSec float64, seed int64) *OpenLoop {
	if flowsPerSec <= 0 {
		panic(fmt.Sprintf("traffic: arrival rate must be positive, got %g", flowsPerSec))
	}
	return &OpenLoop{rate: flowsPerSec, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the gap to the next flow arrival.
func (o *OpenLoop) Next() time.Duration {
	return time.Duration(o.rng.ExpFloat64() / o.rate * float64(time.Second))
}

// Think samples a closed-loop user's exponential think times.
type Think struct {
	mean time.Duration
	rng  *rand.Rand
}

// NewThink creates a think-time sampler with the given mean on its own
// stream (one per user, seeded via DeriveSeed, keeps users decoupled).
func NewThink(mean time.Duration, seed int64) *Think {
	if mean <= 0 {
		panic(fmt.Sprintf("traffic: think time must be positive, got %v", mean))
	}
	return &Think{mean: mean, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the user's next think time.
func (t *Think) Next() time.Duration {
	return time.Duration(t.rng.ExpFloat64() * float64(t.mean))
}

// WeightedModel is one entry of a traffic mix.
type WeightedModel struct {
	Model  Model   `json:"model"`
	Weight float64 `json:"weight"`
}

// Mix is a validated weighted set of traffic models; arriving flows sample
// their model from it.
type Mix struct {
	entries []WeightedModel
	total   float64
}

// NewMix validates the entries and builds a sampler.
func NewMix(entries []WeightedModel) (Mix, error) {
	if len(entries) == 0 {
		return Mix{}, fmt.Errorf("traffic: mix needs at least one model")
	}
	var total float64
	for i, e := range entries {
		if e.Weight <= 0 {
			return Mix{}, fmt.Errorf("traffic: mix entry %d weight must be positive, got %g", i, e.Weight)
		}
		if err := e.Model.Validate(); err != nil {
			return Mix{}, fmt.Errorf("traffic: mix entry %d: %w", i, err)
		}
		total += e.Weight
	}
	return Mix{entries: entries, total: total}, nil
}

// Len returns the number of models in the mix.
func (m Mix) Len() int { return len(m.entries) }

// Model returns entry i's model.
func (m Mix) Model(i int) Model { return m.entries[i].Model }

// Pick samples a model index by weight from rng.
func (m Mix) Pick(rng *rand.Rand) int {
	x := rng.Float64() * m.total
	for i, e := range m.entries {
		x -= e.Weight
		if x < 0 {
			return i
		}
	}
	return len(m.entries) - 1 // float round-off lands on the last entry
}
