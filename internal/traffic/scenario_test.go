package traffic

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const goodScenario = `{
  "version": 1,
  "name": "test-open",
  "seed": 7,
  "duration_s": 30,
  "schemes": ["na", "ba"],
  "topology": {"kind": "grid", "nodes": 16},
  "traffic": {
    "mode": "open",
    "arrival_rate": 0.5,
    "mix": [
      {"model": {"kind": "pareto", "bytes": 20000}, "weight": 3},
      {"model": {"kind": "bulk", "bytes": 100000}, "weight": 1}
    ]
  }
}`

func TestParseGoodScenario(t *testing.T) {
	s, err := Parse(strings.NewReader(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-open" || s.Seed != 7 || len(s.Schemes) != 2 {
		t.Errorf("fields not decoded: %+v", s)
	}
	// Defaults resolved by Normalize.
	if s.DeadlineS != 60 {
		t.Errorf("deadline default = %g, want 2×duration = 60", s.DeadlineS)
	}
	if s.RateMbps != 2.6 || s.MaxAggBytes != 5120 {
		t.Errorf("rate/agg defaults wrong: %g / %d", s.RateMbps, s.MaxAggBytes)
	}
	if s.Traffic.MinHops != 2 || s.Traffic.MaxFlows != MaxFlowsLimit {
		t.Errorf("traffic defaults wrong: %+v", s.Traffic)
	}
	if s.Traffic.Mix[0].Model.Shape != 1.5 {
		t.Errorf("mix model defaults not resolved: %+v", s.Traffic.Mix[0].Model)
	}
	if s.Duration().Seconds() != 30 || s.Deadline().Seconds() != 60 {
		t.Errorf("duration helpers wrong: %v / %v", s.Duration(), s.Deadline())
	}
}

// mutate parses the good scenario, applies f, and returns Validate's error.
func mutate(t *testing.T, f func(*Scenario)) error {
	t.Helper()
	s, err := Parse(strings.NewReader(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	f(&s)
	return s.Validate()
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Scenario)
	}{
		{"future version", func(s *Scenario) { s.Version = SchemaVersion + 1 }},
		{"zero version", func(s *Scenario) { s.Version = 0 }},
		{"no duration", func(s *Scenario) { s.DurationS = 0 }},
		{"deadline before duration", func(s *Scenario) { s.DeadlineS = 10 }},
		{"no schemes", func(s *Scenario) { s.Schemes = nil }},
		{"bad scheme", func(s *Scenario) { s.Schemes = []string{"xa"} }},
		{"bad topology", func(s *Scenario) { s.Topology.Kind = "torus" }},
		{"tiny topology", func(s *Scenario) { s.Topology.Nodes = 2 }},
		{"bad mobility", func(s *Scenario) { s.Mobility = &Mobility{Model: "teleport"} }},
		{"open without rate", func(s *Scenario) { s.Traffic.ArrivalRate = 0 }},
		{"bad mode", func(s *Scenario) { s.Traffic.Mode = "ajar" }},
		{"closed without users", func(s *Scenario) { s.Traffic.Mode = ModeClosed; s.Traffic.Users = 0 }},
		{"empty mix", func(s *Scenario) { s.Traffic.Mix = nil }},
		{"bad mix model", func(s *Scenario) { s.Traffic.Mix[0].Model.Kind = "warp" }},
		{"max_flows over engine limit", func(s *Scenario) { s.Traffic.MaxFlows = MaxFlowsLimit + 1 }},
		{"faults on v1", func(s *Scenario) { s.Faults = &Faults{CrashMTBFS: 10} }},
		{"crash mtbf below minimum", func(s *Scenario) { s.Version = 2; s.Faults = &Faults{CrashMTBFS: 0.0001} }},
		{"flap mttr below minimum", func(s *Scenario) {
			s.Version = 2
			s.Faults = &Faults{FlapMTBFS: 10, FlapMTTRS: 0.0001}
		}},
		{"negative snr penalty", func(s *Scenario) {
			s.Version = 2
			s.Faults = &Faults{SNRBurstMTBFS: 10, SNRBurstDB: -1}
		}},
		{"bad partition axis", func(s *Scenario) {
			s.Version = 2
			s.Faults = &Faults{Partitions: []PartitionSpec{{StartS: 1, DurationS: 1, Axis: "z"}}}
		}},
		{"zero-duration partition", func(s *Scenario) {
			s.Version = 2
			s.Faults = &Faults{Partitions: []PartitionSpec{{StartS: 1}}}
		}},
		{"negative partition start", func(s *Scenario) {
			s.Version = 2
			s.Faults = &Faults{Partitions: []PartitionSpec{{StartS: -1, DurationS: 1}}}
		}},
	}
	for _, c := range cases {
		if err := mutate(t, c.f); err == nil {
			t.Errorf("%s: expected a validation error", c.name)
		}
	}
	// Valid tweaks must keep validating.
	if err := mutate(t, func(s *Scenario) { s.Mobility = &Mobility{Model: "waypoint", Speed: 2} }); err != nil {
		t.Errorf("waypoint mobility rejected: %v", err)
	}
	if err := mutate(t, func(s *Scenario) {
		s.Traffic.Mode = ModeClosed
		s.Traffic.Users = 4
	}); err != nil {
		t.Errorf("closed mode rejected: %v", err)
	}
	if err := mutate(t, func(s *Scenario) { s.Topology = Topology{Kind: "chains"} }); err != nil {
		t.Errorf("chains topology rejected: %v", err)
	}
	// Scheme names validate case-insensitively, like mac.SchemeByName.
	if err := mutate(t, func(s *Scenario) { s.Schemes = []string{"BA", "Na"} }); err != nil {
		t.Errorf("uppercase scheme names rejected: %v", err)
	}
	// A v2 faults section validates and its defaults resolve like the
	// faults package's own Normalize.
	s, err := Parse(strings.NewReader(goodScenario))
	if err != nil {
		t.Fatal(err)
	}
	s.Version = 2
	s.Faults = &Faults{CrashMTBFS: 30, FlapMTBFS: 20, SNRBurstMTBFS: 15,
		Partitions: []PartitionSpec{{StartS: 5, DurationS: 2, At: 1.5}}}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid v2 faults section rejected: %v", err)
	}
	if s.Faults.CrashMTTRS != 10 || s.Faults.FlapMTTRS != 2 ||
		s.Faults.SNRBurstMTTRS != 1 || s.Faults.SNRBurstDB != 10 {
		t.Errorf("faults MTTR/penalty defaults wrong: %+v", s.Faults)
	}
	if s.Faults.Partitions[0].Axis != "x" {
		t.Errorf("partition axis default = %q, want x", s.Faults.Partitions[0].Axis)
	}
	// Clone must deep-copy the faults section.
	c := s.Clone()
	c.Faults.Partitions[0].At = 99
	if s.Faults.Partitions[0].At == 99 {
		t.Error("Clone shares the partitions slice")
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(goodScenario, `"seed": 7,`, `"sede": 7,`, 1)
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("typo'd field name parsed without error")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(goodScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-open" {
		t.Errorf("loaded name %q", s.Name)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	// A nameless scenario takes its path as the name.
	anon := strings.Replace(goodScenario, `"name": "test-open",`, ``, 1)
	path2 := filepath.Join(dir, "anon.json")
	if err := os.WriteFile(path2, []byte(anon), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(path2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Name != path2 {
		t.Errorf("anonymous scenario name %q, want its path", s2.Name)
	}
}

func TestFCTStats(t *testing.T) {
	var f FCT
	if st := f.Stats(); st.Count != 0 || st.P99 != 0 {
		t.Errorf("empty FCT stats not zero: %+v", st)
	}
	for i := 100; i >= 1; i-- {
		f.Record(time.Duration(i) * time.Millisecond)
	}
	st := f.Stats()
	if st.Count != 100 {
		t.Fatalf("count %d", st.Count)
	}
	if st.Max != 100*time.Millisecond {
		t.Errorf("max %v", st.Max)
	}
	if st.P50 != 51*time.Millisecond || st.P95 != 96*time.Millisecond || st.P99 != 100*time.Millisecond {
		t.Errorf("percentiles p50=%v p95=%v p99=%v", st.P50, st.P95, st.P99)
	}
	if st.Mean != 50500*time.Microsecond {
		t.Errorf("mean %v", st.Mean)
	}
}
