// Package traffic is the workload-generation subsystem: the traffic
// models, flow-arrival processes and declarative scenario schema that turn
// the repo's "N flows forever" experiments into churning workloads whose
// flows arrive, transfer and complete over time.
//
// Everything here is seed-deterministic and engine-agnostic. A Model is a
// declarative description (JSON-serializable, validated); instantiating it
// with a per-flow seed yields a Source — a pull-based iterator over
// (delay, bytes) chunks. Because a Source owns its random stream and is
// only ever pulled, the arrival/size sequence it produces is a pure
// function of (model, seed): it cannot depend on worker count, scheduler
// tick size, or how eagerly the consumer drains it. The engine in
// internal/core pulls chunks on the simulated clock; the property tests
// pull them in different step sizes and on different goroutines and
// require identical streams.
package traffic

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Model kinds.
const (
	Bulk    = "bulk"    // one object of exactly Bytes, sent immediately
	CBR     = "cbr"     // constant bit rate: PacketBytes every fixed interval
	Poisson = "poisson" // Poisson packet arrivals at a mean rate
	OnOff   = "onoff"   // exponential on/off bursts of CBR traffic
	Pareto  = "pareto"  // one object with a Pareto-sampled (web-like) size
)

// Kinds lists every model kind.
func Kinds() []string { return []string{Bulk, CBR, Poisson, OnOff, Pareto} }

// Model declares one traffic model. It is pure data: the scenario schema
// embeds it, Validate checks it, and New instantiates it with a per-flow
// seed. Zero fields take model-specific defaults (see Validate).
type Model struct {
	// Kind selects the model: bulk | cbr | poisson | onoff | pareto.
	Kind string `json:"kind"`
	// Bytes is the transfer size (bulk) or the mean object size (pareto).
	Bytes int `json:"bytes,omitempty"`
	// PacketBytes sizes each chunk of the paced models (cbr, poisson,
	// onoff). Default 1000.
	PacketBytes int `json:"packet_bytes,omitempty"`
	// RateMbps is the sending rate of the paced models: the constant rate
	// (cbr), the mean arrival rate (poisson), or the on-burst rate (onoff).
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// DurationS bounds a paced flow's sending time in seconds, which makes
	// every flow finite so its completion time is well-defined.
	DurationS float64 `json:"duration_s,omitempty"`
	// MeanOnS / MeanOffS are the exponential burst/silence means of the
	// onoff model, in seconds. Defaults 1 and 1.
	MeanOnS  float64 `json:"mean_on_s,omitempty"`
	MeanOffS float64 `json:"mean_off_s,omitempty"`
	// Shape is the Pareto tail exponent (must exceed 1 for a finite mean;
	// default 1.5, the classic heavy-tailed web-object figure).
	Shape float64 `json:"shape,omitempty"`
	// MaxBytes caps Pareto-sampled object sizes (default 100 × Bytes), so
	// one astronomically unlucky draw cannot dominate a whole run.
	MaxBytes int `json:"max_bytes,omitempty"`
}

// withDefaults returns the model with zero fields resolved.
func (m Model) withDefaults() Model {
	switch m.Kind {
	case Bulk:
		if m.Bytes == 0 {
			m.Bytes = 200_000
		}
	case Pareto:
		if m.Bytes == 0 {
			m.Bytes = 30_000
		}
		if m.Shape == 0 {
			m.Shape = 1.5
		}
		if m.MaxBytes == 0 {
			m.MaxBytes = 100 * m.Bytes
		}
	case CBR, Poisson, OnOff:
		if m.PacketBytes == 0 {
			m.PacketBytes = 1000
		}
		if m.RateMbps == 0 {
			m.RateMbps = 0.2
		}
		if m.DurationS == 0 {
			m.DurationS = 10
		}
		if m.Kind == OnOff {
			if m.MeanOnS == 0 {
				m.MeanOnS = 1
			}
			if m.MeanOffS == 0 {
				m.MeanOffS = 1
			}
		}
	}
	return m
}

// Validate reports the first problem with the model, after defaults.
func (m Model) Validate() error {
	d := m.withDefaults()
	switch m.Kind {
	case Bulk:
		if d.Bytes < 1 {
			return fmt.Errorf("traffic: bulk bytes must be positive, got %d", d.Bytes)
		}
	case Pareto:
		if d.Bytes < 1 {
			return fmt.Errorf("traffic: pareto mean bytes must be positive, got %d", d.Bytes)
		}
		if d.Shape <= 1 {
			return fmt.Errorf("traffic: pareto shape must exceed 1 for a finite mean, got %g", d.Shape)
		}
		if d.MaxBytes < d.Bytes {
			return fmt.Errorf("traffic: pareto max_bytes %d below mean %d", d.MaxBytes, d.Bytes)
		}
	case CBR, Poisson, OnOff:
		if d.PacketBytes < 1 {
			return fmt.Errorf("traffic: %s packet_bytes must be positive, got %d", m.Kind, d.PacketBytes)
		}
		if d.RateMbps <= 0 {
			return fmt.Errorf("traffic: %s rate_mbps must be positive, got %g", m.Kind, d.RateMbps)
		}
		if d.DurationS <= 0 {
			return fmt.Errorf("traffic: %s duration_s must be positive, got %g", m.Kind, d.DurationS)
		}
		// A packet interval that truncates to zero nanoseconds would let a
		// source emit unbounded zero-wait chunks and never advance: the
		// engine pumps wait==0 chunks synchronously, so such a model must
		// be rejected, not run.
		if d.interval() <= 0 {
			return fmt.Errorf("traffic: %s rate %g Mbps is too fast for %d-byte packets (interval rounds to zero)", m.Kind, d.RateMbps, d.PacketBytes)
		}
		if m.Kind == OnOff && (d.MeanOnS <= 0 || d.MeanOffS <= 0) {
			return fmt.Errorf("traffic: onoff mean_on_s/mean_off_s must be positive, got %g/%g", d.MeanOnS, d.MeanOffS)
		}
	default:
		return fmt.Errorf("traffic: unknown model kind %q (bulk|cbr|poisson|onoff|pareto)", m.Kind)
	}
	return nil
}

// Source is a pull-based iterator over one flow's send schedule. Next
// returns the delay from the previous chunk (or from the flow's start, for
// the first) to the next chunk and that chunk's size; ok=false means the
// flow has sent everything and should close. The stream a Source produces
// depends only on (Model, seed), never on when or how it is pulled.
type Source interface {
	// Kind names the generating model.
	Kind() string
	Next() (wait time.Duration, bytes int, ok bool)
}

// New instantiates the model as a Source with its own decoupled random
// stream. It panics on an invalid model; validate first when the model
// comes from user input.
func (m Model) New(seed int64) Source {
	if err := m.Validate(); err != nil {
		panic(err.Error())
	}
	d := m.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	switch d.Kind {
	case Bulk:
		return &bulkSource{bytes: d.Bytes}
	case Pareto:
		return &bulkSource{kind: Pareto, bytes: d.sampleParetoBytes(rng)}
	case CBR:
		return &cbrSource{model: d}
	case Poisson:
		return &poissonSource{model: d, rng: rng}
	default: // OnOff
		return &onoffSource{model: d, rng: rng}
	}
}

// sampleParetoBytes draws one Pareto(shape) object size with mean Bytes,
// clamped to [1, MaxBytes].
func (m Model) sampleParetoBytes(rng *rand.Rand) int {
	// Mean of Pareto(xm, α) is xm·α/(α−1); invert for the scale xm.
	xm := float64(m.Bytes) * (m.Shape - 1) / m.Shape
	u := 1 - rng.Float64() // (0, 1]: keeps the draw finite
	size := int(xm / math.Pow(u, 1/m.Shape))
	if size > m.MaxBytes {
		size = m.MaxBytes
	}
	if size < 1 {
		size = 1
	}
	return size
}

// interval is the fixed packet spacing of a paced model at its rate.
func (m Model) interval() time.Duration {
	return time.Duration(float64(m.PacketBytes*8) / (m.RateMbps * 1e6) * float64(time.Second))
}

// bulkSource emits one chunk immediately (bulk and sampled pareto objects).
type bulkSource struct {
	kind  string
	bytes int
	done  bool
}

func (s *bulkSource) Kind() string {
	if s.kind != "" {
		return s.kind
	}
	return Bulk
}

func (s *bulkSource) Next() (time.Duration, int, bool) {
	if s.done {
		return 0, 0, false
	}
	s.done = true
	return 0, s.bytes, true
}

// cbrSource emits PacketBytes every interval for DurationS.
type cbrSource struct {
	model   Model
	elapsed time.Duration
	first   bool
}

func (s *cbrSource) Kind() string { return CBR }

func (s *cbrSource) Next() (time.Duration, int, bool) {
	wait := s.model.interval()
	if !s.first {
		s.first = true
		wait = 0
	}
	if s.elapsed+wait > time.Duration(s.model.DurationS*float64(time.Second)) {
		return 0, 0, false
	}
	s.elapsed += wait
	return wait, s.model.PacketBytes, true
}

// poissonSource emits PacketBytes at exponential inter-arrival times whose
// mean matches RateMbps, for DurationS.
type poissonSource struct {
	model   Model
	rng     *rand.Rand
	elapsed time.Duration
}

func (s *poissonSource) Kind() string { return Poisson }

func (s *poissonSource) Next() (time.Duration, int, bool) {
	mean := s.model.interval()
	wait := time.Duration(s.rng.ExpFloat64() * float64(mean))
	if s.elapsed+wait > time.Duration(s.model.DurationS*float64(time.Second)) {
		return 0, 0, false
	}
	s.elapsed += wait
	return wait, s.model.PacketBytes, true
}

// onoffSource alternates exponential ON bursts of CBR traffic with
// exponential OFF silences, for DurationS of total (on + off) time.
type onoffSource struct {
	model    Model
	rng      *rand.Rand
	elapsed  time.Duration // total time consumed, on + off
	burnLeft time.Duration // remaining ON time of the current burst
	started  bool
}

func (s *onoffSource) Kind() string { return OnOff }

func (s *onoffSource) Next() (time.Duration, int, bool) {
	iv := s.model.interval()
	bound := time.Duration(s.model.DurationS * float64(time.Second))
	var wait time.Duration
	if !s.started {
		s.started = true
		s.burnLeft = time.Duration(s.rng.ExpFloat64() * s.model.MeanOnS * float64(time.Second))
	}
	// Walk off-periods until the next packet fits inside an ON burst. The
	// duration bound is checked inside the walk: with MeanOnS far below
	// the packet interval, bursts long enough to carry a packet are
	// astronomically rare draws, and only the bound keeps Next finite.
	for s.burnLeft < iv {
		wait += s.burnLeft // tail of the dying burst passes in silence
		wait += time.Duration(s.rng.ExpFloat64() * s.model.MeanOffS * float64(time.Second))
		s.burnLeft = time.Duration(s.rng.ExpFloat64() * s.model.MeanOnS * float64(time.Second))
		if s.elapsed+wait > bound {
			return 0, 0, false
		}
	}
	wait += iv
	s.burnLeft -= iv
	if s.elapsed+wait > bound {
		return 0, 0, false
	}
	s.elapsed += wait
	return wait, s.model.PacketBytes, true
}

// Event is one materialized chunk of a source's schedule, at a cumulative
// offset from the flow's start.
type Event struct {
	At    time.Duration
	Bytes int
}

// Events drains up to max chunks of src into a cumulative-time schedule —
// the materialized form the property tests compare across seeds, step
// sizes and goroutines.
func Events(src Source, max int) []Event {
	var out []Event
	var at time.Duration
	for len(out) < max {
		wait, bytes, ok := src.Next()
		if !ok {
			break
		}
		at += wait
		out = append(out, Event{At: at, Bytes: bytes})
	}
	return out
}

// DeriveSeed maps (base seed, key) to a decoupled per-flow seed: FNV-1a
// over the key mixed with the base through a splitmix64 finalizer. It is a
// pure function, so the random stream a flow gets never depends on worker
// count or completion order — only on the base seed and the flow's
// identity. internal/runner re-exports it for per-run seeds.
func DeriveSeed(base int64, key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := uint64(base) ^ h.Sum64()
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}
