package traffic

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// everyModel returns one representative Model per kind, exercising the
// non-default knobs.
func everyModel() []Model {
	return []Model{
		{Kind: Bulk, Bytes: 50_000},
		{Kind: CBR, RateMbps: 0.4, PacketBytes: 800, DurationS: 5},
		{Kind: Poisson, RateMbps: 0.3, PacketBytes: 600, DurationS: 5},
		{Kind: OnOff, RateMbps: 0.5, PacketBytes: 1000, DurationS: 8, MeanOnS: 0.5, MeanOffS: 1.5},
		{Kind: Pareto, Bytes: 20_000, Shape: 1.4, MaxBytes: 400_000},
	}
}

func TestModelValidation(t *testing.T) {
	for _, m := range everyModel() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: unexpected validation error: %v", m.Kind, err)
		}
	}
	bad := []Model{
		{Kind: "warp"},
		{Kind: Bulk, Bytes: -1},
		{Kind: Pareto, Shape: 0.9},
		{Kind: Pareto, Bytes: 1000, MaxBytes: 10},
		{Kind: CBR, RateMbps: -2},
		{Kind: Poisson, DurationS: -1},
		{Kind: OnOff, MeanOnS: -0.5},
		// Interval truncates to 0 ns: an infinite zero-wait stream.
		{Kind: CBR, RateMbps: 9000, PacketBytes: 1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%+v: expected validation error", m)
		}
	}
}

// TestSeedDeterminism: same (model, seed) → identical streams; different
// seeds → different streams (for the randomized models).
func TestSeedDeterminism(t *testing.T) {
	for _, m := range everyModel() {
		t.Run(m.Kind, func(t *testing.T) {
			a := Events(m.New(42), 10_000)
			b := Events(m.New(42), 10_000)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed produced different streams (%d vs %d events)", len(a), len(b))
			}
			if len(a) == 0 {
				t.Fatalf("model produced no events")
			}
			if m.Kind == Poisson || m.Kind == OnOff || m.Kind == Pareto {
				c := Events(m.New(43), 10_000)
				if reflect.DeepEqual(a, c) {
					t.Errorf("different seeds produced identical streams")
				}
			}
		})
	}
}

// steppedEvents consumes src the way a polling engine with tick size step
// would: it advances a clock in fixed increments and only releases chunks
// whose due time has passed. The materialized schedule must equal the
// directly pulled one for every step size — the tick-size invariance the
// pull-based Source contract guarantees.
func steppedEvents(src Source, step time.Duration, max int) []Event {
	var out []Event
	var clock, due time.Duration
	wait, bytes, ok := src.Next()
	due = wait
	for ok && len(out) < max {
		for clock < due {
			clock += step
		}
		out = append(out, Event{At: due, Bytes: bytes})
		wait, bytes, ok = src.Next()
		due += wait
	}
	return out
}

func TestTickSizeInvariance(t *testing.T) {
	steps := []time.Duration{time.Microsecond, 3 * time.Millisecond, 250 * time.Millisecond, 2 * time.Second}
	for _, m := range everyModel() {
		t.Run(m.Kind, func(t *testing.T) {
			want := Events(m.New(7), 10_000)
			for _, step := range steps {
				got := steppedEvents(m.New(7), step, 10_000)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("step %v changed the schedule (%d vs %d events)", step, len(want), len(got))
				}
			}
		})
	}
}

// TestGOMAXPROCSInvariance pulls every model's stream concurrently from
// many goroutines at several GOMAXPROCS settings; each goroutine owns its
// own Source, so every stream must come out identical to the serial one.
func TestGOMAXPROCSInvariance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, m := range everyModel() {
			want := Events(m.New(11), 5_000)
			var wg sync.WaitGroup
			got := make([][]Event, 8)
			for i := range got {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = Events(m.New(11), 5_000)
				}(i)
			}
			wg.Wait()
			for i := range got {
				if !reflect.DeepEqual(want, got[i]) {
					t.Fatalf("GOMAXPROCS=%d %s: goroutine %d diverged from serial stream", procs, m.Kind, i)
				}
			}
		}
	}
}

func TestCBRPacing(t *testing.T) {
	m := Model{Kind: CBR, RateMbps: 0.8, PacketBytes: 1000, DurationS: 2}
	ev := Events(m.New(1), 1_000_000)
	// 0.8 Mbps at 1000 B/packet → 100 packets/s → 200 packets in 2 s, the
	// first at t=0.
	if len(ev) != 201 {
		t.Fatalf("expected 201 packets, got %d", len(ev))
	}
	if ev[0].At != 0 {
		t.Errorf("first CBR packet at %v, want 0", ev[0].At)
	}
	iv := ev[1].At - ev[0].At
	for i := 2; i < len(ev); i++ {
		if ev[i].At-ev[i-1].At != iv {
			t.Fatalf("CBR interval drifted at packet %d", i)
		}
	}
}

func TestPoissonMeanRate(t *testing.T) {
	m := Model{Kind: Poisson, RateMbps: 0.5, PacketBytes: 1000, DurationS: 200}
	ev := Events(m.New(3), 1_000_000)
	// Mean inter-arrival 16 ms → ≈12500 packets over 200 s; allow ±10%.
	if len(ev) < 11_000 || len(ev) > 14_000 {
		t.Errorf("poisson packet count %d far from expected 12500", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("time went backwards at event %d", i)
		}
	}
}

// TestOnOffPathologicalBurstsTerminate: with a mean burst far shorter than
// one packet interval, bursts that carry a packet are ~e^-40 draws; the
// duration bound inside the off-period walk must still end the flow.
func TestOnOffPathologicalBurstsTerminate(t *testing.T) {
	m := Model{Kind: OnOff, RateMbps: 0.02, PacketBytes: 1000, DurationS: 5, MeanOnS: 0.01, MeanOffS: 1}
	done := make(chan []Event, 1)
	go func() { done <- Events(m.New(1), 1000) }()
	select {
	case ev := <-done:
		for _, e := range ev {
			if e.At > 5*time.Second {
				t.Errorf("event at %v past the 5s duration bound", e.At)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onoff source with pathological burst lengths never terminated")
	}
}

func TestOnOffHasSilences(t *testing.T) {
	m := Model{Kind: OnOff, RateMbps: 1, PacketBytes: 1000, DurationS: 60, MeanOnS: 0.2, MeanOffS: 1}
	ev := Events(m.New(5), 1_000_000)
	if len(ev) < 10 {
		t.Fatalf("onoff produced only %d events", len(ev))
	}
	iv := m.withDefaults().interval()
	gaps := 0
	for i := 1; i < len(ev); i++ {
		if ev[i].At-ev[i-1].At > 5*iv {
			gaps++
		}
	}
	if gaps == 0 {
		t.Errorf("onoff stream shows no off-period gaps")
	}
	last := ev[len(ev)-1].At
	if last > 60*time.Second {
		t.Errorf("onoff exceeded its duration bound: %v", last)
	}
}

func TestParetoSizes(t *testing.T) {
	m := Model{Kind: Pareto, Bytes: 30_000, Shape: 1.5, MaxBytes: 3_000_000}
	var sum, max float64
	n := 4000
	for i := 0; i < n; i++ {
		ev := Events(m.New(DeriveSeed(1, fmt.Sprintf("pareto/%d", i))), 2)
		if len(ev) != 1 {
			t.Fatalf("pareto flow %d produced %d chunks, want 1", i, len(ev))
		}
		if ev[0].Bytes < 1 || ev[0].Bytes > m.MaxBytes {
			t.Fatalf("pareto size %d outside [1, %d]", ev[0].Bytes, m.MaxBytes)
		}
		sum += float64(ev[0].Bytes)
		if float64(ev[0].Bytes) > max {
			max = float64(ev[0].Bytes)
		}
	}
	mean := sum / float64(n)
	// Heavy-tailed: the sample mean converges slowly, so bound loosely.
	if mean < 15_000 || mean > 60_000 {
		t.Errorf("pareto sample mean %.0f far from configured 30000", mean)
	}
	if max < 100_000 {
		t.Errorf("pareto max %.0f shows no heavy tail", max)
	}
}

func TestMixPickDistribution(t *testing.T) {
	mix, err := NewMix([]WeightedModel{
		{Model: Model{Kind: Bulk}, Weight: 3},
		{Model: Model{Kind: Pareto}, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	counts := [2]int{}
	for i := 0; i < 10_000; i++ {
		counts[mix.Pick(rng)]++
	}
	frac := float64(counts[0]) / 10_000
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("weight-3 entry picked %.3f of the time, want ≈0.75", frac)
	}
	// Picks are deterministic per seed.
	a, b := rand.New(rand.NewSource(4)), rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		if mix.Pick(a) != mix.Pick(b) {
			t.Fatalf("mix picks diverged at draw %d", i)
		}
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(nil); err == nil {
		t.Error("empty mix validated")
	}
	if _, err := NewMix([]WeightedModel{{Model: Model{Kind: Bulk}, Weight: 0}}); err == nil {
		t.Error("zero weight validated")
	}
	if _, err := NewMix([]WeightedModel{{Model: Model{Kind: "bad"}, Weight: 1}}); err == nil {
		t.Error("bad model validated")
	}
}

func TestOpenLoopArrivals(t *testing.T) {
	a := NewOpenLoop(2, 1) // 2 flows/s → mean gap 500 ms
	b := NewOpenLoop(2, 1)
	var sum time.Duration
	n := 20_000
	for i := 0; i < n; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("same-seed arrival streams diverged at %d", i)
		}
		sum += ga
	}
	mean := sum / time.Duration(n)
	if mean < 450*time.Millisecond || mean > 550*time.Millisecond {
		t.Errorf("mean arrival gap %v far from 500ms", mean)
	}
}

func TestThinkTimes(t *testing.T) {
	th := NewThink(2*time.Second, 3)
	var sum time.Duration
	n := 20_000
	for i := 0; i < n; i++ {
		sum += th.Next()
	}
	mean := sum / time.Duration(n)
	if mean < 1900*time.Millisecond || mean > 2100*time.Millisecond {
		t.Errorf("mean think time %v far from 2s", mean)
	}
}

func TestDeriveSeedMatchesRunnerDiscipline(t *testing.T) {
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("distinct keys collided")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("distinct bases collided")
	}
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("DeriveSeed is not stable")
	}
}
