package traffic

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseScenario drives the scenario JSON parser with arbitrary input.
// Parse must never panic; when it accepts an input, the result must be
// internally consistent: it re-validates cleanly, its durations are
// non-negative, and its canonical re-marshaling parses to an equivalent
// scenario (the parser and the schema agree on every field).
//
// Seeds come from the shipped example scenarios plus the checked-in corpus
// under testdata/fuzz/FuzzParseScenario.
func FuzzParseScenario(f *testing.F) {
	examples, err := filepath.Glob(filepath.FromSlash("../../examples/scenarios/*.json"))
	if err != nil || len(examples) == 0 {
		f.Fatalf("example scenarios missing: %v (%d files)", err, len(examples))
	}
	for _, path := range examples {
		blob, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"duration_s":1e308,"deadline_s":1e308}`))
	f.Add([]byte(`not json`))
	// Fault-section seeds (schema v2): valid, boundary, and malformed —
	// a faults section on a v1 scenario, sub-minimum means, a bad axis, a
	// zero-duration partition, and a negative SNR penalty.
	const faultBase = `"name":"f","seed":1,"duration_s":5,"deadline_s":20,"schemes":["ba"],"rate_mbps":2.6,` +
		`"topology":{"kind":"grid","nodes":9},` +
		`"traffic":{"mode":"open","arrival_rate":0.2,"mix":[{"model":{"kind":"pareto","bytes":4000},"weight":1}]}`
	f.Add([]byte(`{"version":2,` + faultBase + `,"faults":{"crash_mtbf_s":20,"crash_mttr_s":5}}`))
	f.Add([]byte(`{"version":2,` + faultBase + `,"faults":{"flap_mtbf_s":0.001,"flap_mttr_s":0.001,` +
		`"snr_burst_mtbf_s":10,"snr_burst_db":25,` +
		`"partitions":[{"start_s":0,"duration_s":1,"axis":"y","at":1.5}]}}`))
	f.Add([]byte(`{"version":1,` + faultBase + `,"faults":{"crash_mtbf_s":20}}`))
	f.Add([]byte(`{"version":2,` + faultBase + `,"faults":{"crash_mtbf_s":0.0001}}`))
	f.Add([]byte(`{"version":2,` + faultBase + `,"faults":{"partitions":[{"start_s":1,"duration_s":0,"axis":"z","at":0}]}}`))
	f.Add([]byte(`{"version":2,` + faultBase + `,"faults":{"snr_burst_mtbf_s":5,"snr_burst_db":-3}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted scenario fails re-validation: %v", err)
		}
		if s.Duration() < 0 || s.Deadline() < 0 {
			t.Fatalf("accepted scenario has negative durations: %v / %v", s.Duration(), s.Deadline())
		}
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		s2, err := Parse(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("canonical re-marshaling is rejected: %v\n%s", err, blob)
		}
		// Compare through canonical JSON so map ordering cannot matter.
		blob2, err := json.Marshal(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("round-trip changed the scenario:\n%s\n%s", blob, blob2)
		}
		for _, name := range s.Schemes {
			if strings.TrimSpace(name) == "" {
				t.Fatal("accepted scenario with blank scheme name")
			}
		}
	})
}
