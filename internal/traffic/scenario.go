// The declarative scenario schema: a versioned JSON file that names a
// complete experiment — topology, radio, mobility, traffic mix, schemes,
// duration — so workloads are data, not code. internal/core resolves a
// Scenario into a running simulation (core.RunScenario); cmd/aggsim loads
// one with -scenario; examples/scenarios/ holds annotated instances.
package traffic

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// SchemaVersion is the scenario file format this build reads. Bump it on
// incompatible schema changes; Validate rejects files from the future so a
// stale binary fails loudly instead of misreading new fields. Version 2
// added the optional "faults" section; files that use it must declare at
// least version 2, and version-1 files parse unchanged.
const SchemaVersion = 2

// Scenario is one declarative experiment. All durations are plain seconds
// (JSON numbers), not Go duration strings, so files stay tool-friendly.
type Scenario struct {
	// Version is the schema version; required, at most SchemaVersion.
	Version int `json:"version"`
	// Name labels reports and derived per-flow seeds.
	Name string `json:"name"`
	// Seed makes the whole scenario reproducible (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationS is how long (simulated seconds) flows keep arriving.
	DurationS float64 `json:"duration_s"`
	// DeadlineS bounds the whole simulation, giving in-flight flows time
	// to drain after arrivals stop (default 2 × duration_s). Flows still
	// incomplete at the deadline count as abandoned.
	DeadlineS float64 `json:"deadline_s,omitempty"`
	// Schemes lists the MAC schemes to run the scenario under
	// (na|ua|ba|dba); one run per scheme.
	Schemes []string `json:"schemes"`
	// RateMbps is the PHY data rate (default 2.6).
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// MaxAggBytes caps aggregation (default 5120).
	MaxAggBytes int `json:"max_agg_bytes,omitempty"`

	Topology Topology  `json:"topology"`
	Mobility *Mobility `json:"mobility,omitempty"`
	Traffic  Traffic   `json:"traffic"`
	// Faults injects seeded failures (schema version >= 2).
	Faults *Faults `json:"faults,omitempty"`
}

// Topology selects a generated mesh layout.
type Topology struct {
	// Kind is grid | disk | chains.
	Kind string `json:"kind"`
	// Nodes is the node budget for grid/disk (default 25).
	Nodes int `json:"nodes,omitempty"`
	// Chains / ChainHops / RowSpacing shape the chains layout.
	Chains     int     `json:"chains,omitempty"`
	ChainHops  int     `json:"chain_hops,omitempty"`
	RowSpacing float64 `json:"row_spacing,omitempty"`
	// Radio overrides the distance-derived connectivity model.
	Radio *Radio `json:"radio,omitempty"`
}

// Radio mirrors topology.RadioModel in schema form.
type Radio struct {
	Range    float64 `json:"range,omitempty"`
	RefSNRdB float64 `json:"ref_snr_db,omitempty"`
	Exponent float64 `json:"exponent,omitempty"`
}

// Mobility turns on node motion.
type Mobility struct {
	// Model is waypoint | drift.
	Model string `json:"model"`
	// Speed in spacing units per second (default 1).
	Speed float64 `json:"speed,omitempty"`
	// PauseS is the waypoint dwell time (seconds).
	PauseS float64 `json:"pause_s,omitempty"`
	// MoveIntervalS is the position/link/route update interval (default 1).
	MoveIntervalS float64 `json:"move_interval_s,omitempty"`
}

// Faults mirrors faults.Config in schema form: seeded node crash/recover
// cycles, link flapping, scheduled area partitions and SNR-degradation
// bursts. All times are mean seconds of exponential draws; a class whose
// MTBF is 0 (or absent) is disabled. See internal/faults for semantics.
type Faults struct {
	// CrashMTBFS is each node's mean up time between crashes;
	// CrashMTTRS the mean repair time (default 10 when crashes are on).
	CrashMTBFS float64 `json:"crash_mtbf_s,omitempty"`
	CrashMTTRS float64 `json:"crash_mttr_s,omitempty"`
	// FlapMTBFS/FlapMTTRS drive per-link up/down flapping (MTTR default 2).
	FlapMTBFS float64 `json:"flap_mtbf_s,omitempty"`
	FlapMTTRS float64 `json:"flap_mttr_s,omitempty"`
	// SNRBurstMTBFS/SNRBurstMTTRS drive per-node SNR-degradation bursts
	// (MTTR default 1); SNRBurstDB is the per-endpoint penalty (default 10).
	SNRBurstMTBFS float64 `json:"snr_burst_mtbf_s,omitempty"`
	SNRBurstMTTRS float64 `json:"snr_burst_mttr_s,omitempty"`
	SNRBurstDB    float64 `json:"snr_burst_db,omitempty"`
	// Partitions are scheduled area partitions, applied independently.
	Partitions []PartitionSpec `json:"partitions,omitempty"`
}

// PartitionSpec is one scheduled area partition: for seconds
// [start_s, start_s+duration_s) every link crossing the line axis = at is
// cut.
type PartitionSpec struct {
	StartS    float64 `json:"start_s"`
	DurationS float64 `json:"duration_s"`
	// Axis is "x" (default) or "y".
	Axis string  `json:"axis,omitempty"`
	At   float64 `json:"at"`
}

// Traffic declares the workload: an arrival discipline plus a model mix.
type Traffic struct {
	// Mode is open (Poisson flow arrivals) or closed (think-time users).
	Mode string `json:"mode"`
	// ArrivalRate is the open-loop flow arrival rate, flows per second.
	ArrivalRate float64 `json:"arrival_rate,omitempty"`
	// Users is the closed-loop population size.
	Users int `json:"users,omitempty"`
	// ThinkS is the closed-loop mean think time in seconds (default 1).
	ThinkS float64 `json:"think_s,omitempty"`
	// MinHops is the minimum route length for sampled endpoint pairs
	// (default 2, matching the mesh experiments).
	MinHops int `json:"min_hops,omitempty"`
	// MaxFlows caps total flow starts as a runaway guard (default and
	// hard limit MaxFlowsLimit; Validate rejects larger values).
	MaxFlows int `json:"max_flows,omitempty"`
	// Mix is the weighted model set arriving flows sample from.
	Mix []WeightedModel `json:"mix"`
}

// MaxFlowsLimit is the hard bound on flow starts per run: the engine
// assigns each flow a listener port in 1..MaxFlowsLimit, below the TCP
// stacks' ephemeral range (10000+), so every flow's port is collision-free.
const MaxFlowsLimit = 9999

// Clone returns a deep copy: the Schemes and Mix slices and the Mobility
// pointer are duplicated, so normalizing or running the copy can never
// write through memory shared with the original. core.RunScenario clones
// its input first — one Scenario value fanned across pool workers (one
// run per scheme) would otherwise race on Normalize's in-place writes.
func (s Scenario) Clone() Scenario {
	c := s
	c.Schemes = append([]string(nil), s.Schemes...)
	c.Traffic.Mix = append([]WeightedModel(nil), s.Traffic.Mix...)
	if s.Mobility != nil {
		mob := *s.Mobility
		c.Mobility = &mob
	}
	if s.Topology.Radio != nil {
		radio := *s.Topology.Radio
		c.Topology.Radio = &radio
	}
	if s.Faults != nil {
		f := *s.Faults
		f.Partitions = append([]PartitionSpec(nil), s.Faults.Partitions...)
		c.Faults = &f
	}
	return c
}

// SchemeNames lists the scheme names scenarios may reference. It must
// stay in lockstep with mac.SchemeByName; a test in internal/core (which
// can see both packages) enforces that.
func SchemeNames() []string { return []string{"na", "ua", "ba", "dba"} }

// knownSchemes indexes SchemeNames for validation (case-insensitive, like
// mac.SchemeByName).
var knownSchemes = func() map[string]bool {
	m := make(map[string]bool)
	for _, n := range SchemeNames() {
		m[n] = true
	}
	return m
}()

// knownTopologies mirrors core's mesh kinds.
var knownTopologies = map[string]bool{"grid": true, "disk": true, "chains": true}

// knownMobility mirrors topology's model names.
var knownMobility = map[string]bool{"waypoint": true, "drift": true}

// Normalize fills defaulted fields in place. Validate calls it; it is
// idempotent and exported so tests can inspect the resolved scenario.
func (s *Scenario) Normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.DeadlineS == 0 {
		s.DeadlineS = 2 * s.DurationS
	}
	if s.RateMbps == 0 {
		s.RateMbps = 2.6
	}
	if s.MaxAggBytes == 0 {
		s.MaxAggBytes = 5120
	}
	if s.Topology.Nodes == 0 && s.Topology.Kind != "chains" {
		s.Topology.Nodes = 25
	}
	if s.Topology.Kind == "chains" {
		if s.Topology.Chains == 0 {
			s.Topology.Chains = 4
		}
		if s.Topology.ChainHops == 0 {
			s.Topology.ChainHops = 4
		}
	}
	if s.Mobility != nil {
		if s.Mobility.Speed == 0 {
			s.Mobility.Speed = 1
		}
		if s.Mobility.PauseS == 0 {
			s.Mobility.PauseS = 1
		}
		if s.Mobility.MoveIntervalS == 0 {
			s.Mobility.MoveIntervalS = 1
		}
	}
	if s.Traffic.ThinkS == 0 {
		s.Traffic.ThinkS = 1
	}
	if s.Traffic.MinHops == 0 {
		s.Traffic.MinHops = 2
	}
	if s.Traffic.MaxFlows == 0 {
		s.Traffic.MaxFlows = MaxFlowsLimit
	}
	for i := range s.Traffic.Mix {
		s.Traffic.Mix[i].Model = s.Traffic.Mix[i].Model.withDefaults()
	}
	if f := s.Faults; f != nil {
		// Mirror faults.Config.Normalize so the resolved schema and the
		// fault engine agree on the effective parameters.
		if f.CrashMTBFS > 0 && f.CrashMTTRS == 0 {
			f.CrashMTTRS = 10
		}
		if f.FlapMTBFS > 0 && f.FlapMTTRS == 0 {
			f.FlapMTTRS = 2
		}
		if f.SNRBurstMTBFS > 0 {
			if f.SNRBurstMTTRS == 0 {
				f.SNRBurstMTTRS = 1
			}
			if f.SNRBurstDB == 0 {
				f.SNRBurstDB = 10
			}
		}
		for i := range f.Partitions {
			if f.Partitions[i].Axis == "" {
				f.Partitions[i].Axis = "x"
			}
		}
	}
}

// Validate normalizes the scenario and reports the first problem.
func (s *Scenario) Validate() error {
	if s.Version < 1 {
		return fmt.Errorf("traffic: scenario is missing \"version\" (current schema is %d)", SchemaVersion)
	}
	if s.Version > SchemaVersion {
		return fmt.Errorf("traffic: scenario version %d is newer than this build's schema %d", s.Version, SchemaVersion)
	}
	s.Normalize()
	if s.DurationS <= 0 {
		return fmt.Errorf("traffic: duration_s must be positive, got %g", s.DurationS)
	}
	if s.DeadlineS < s.DurationS {
		return fmt.Errorf("traffic: deadline_s %g is shorter than duration_s %g", s.DeadlineS, s.DurationS)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("traffic: scenario needs at least one scheme (na|ua|ba|dba)")
	}
	for _, sch := range s.Schemes {
		if !knownSchemes[strings.ToLower(sch)] {
			return fmt.Errorf("traffic: unknown scheme %q (na|ua|ba|dba)", sch)
		}
	}
	if !knownTopologies[s.Topology.Kind] {
		return fmt.Errorf("traffic: unknown topology kind %q (grid|disk|chains)", s.Topology.Kind)
	}
	if s.Topology.Kind != "chains" && s.Topology.Nodes < 4 {
		return fmt.Errorf("traffic: topology needs at least 4 nodes, got %d", s.Topology.Nodes)
	}
	if s.Mobility != nil && !knownMobility[s.Mobility.Model] {
		return fmt.Errorf("traffic: unknown mobility model %q (waypoint|drift)", s.Mobility.Model)
	}
	switch s.Traffic.Mode {
	case ModeOpen:
		if s.Traffic.ArrivalRate <= 0 {
			return fmt.Errorf("traffic: open mode needs arrival_rate > 0, got %g", s.Traffic.ArrivalRate)
		}
	case ModeClosed:
		if s.Traffic.Users < 1 {
			return fmt.Errorf("traffic: closed mode needs users >= 1, got %d", s.Traffic.Users)
		}
		if s.Traffic.ThinkS <= 0 {
			return fmt.Errorf("traffic: think_s must be positive, got %g", s.Traffic.ThinkS)
		}
	default:
		return fmt.Errorf("traffic: unknown traffic mode %q (open|closed)", s.Traffic.Mode)
	}
	if s.Traffic.MinHops < 1 {
		return fmt.Errorf("traffic: min_hops must be at least 1, got %d", s.Traffic.MinHops)
	}
	if s.Traffic.MaxFlows > MaxFlowsLimit {
		return fmt.Errorf("traffic: max_flows %d exceeds the engine limit %d", s.Traffic.MaxFlows, MaxFlowsLimit)
	}
	if _, err := NewMix(s.Traffic.Mix); err != nil {
		return err
	}
	if f := s.Faults; f != nil {
		if s.Version < 2 {
			return fmt.Errorf("traffic: the faults section needs schema version >= 2, got %d", s.Version)
		}
		// 0.001 s mirrors the fault engine's minimum mean (faults.minMean):
		// renewal legs are consumed one by one, so a tiny mean would make
		// every dynamics tick arbitrarily expensive.
		const minMeanS = 0.001
		check := func(name string, mtbf, mttr float64) error {
			if mtbf == 0 && mttr >= 0 {
				return nil
			}
			if mtbf != 0 && mtbf < minMeanS {
				return fmt.Errorf("traffic: faults %s_mtbf_s %g is below the minimum %g", name, mtbf, minMeanS)
			}
			if mttr < minMeanS {
				return fmt.Errorf("traffic: faults %s_mttr_s %g is below the minimum %g", name, mttr, minMeanS)
			}
			return nil
		}
		if err := check("crash", f.CrashMTBFS, f.CrashMTTRS); err != nil {
			return err
		}
		if err := check("flap", f.FlapMTBFS, f.FlapMTTRS); err != nil {
			return err
		}
		if err := check("snr_burst", f.SNRBurstMTBFS, f.SNRBurstMTTRS); err != nil {
			return err
		}
		if f.SNRBurstDB < 0 {
			return fmt.Errorf("traffic: faults snr_burst_db %g is negative", f.SNRBurstDB)
		}
		for i, p := range f.Partitions {
			if p.Axis != "x" && p.Axis != "y" {
				return fmt.Errorf("traffic: faults partition %d axis %q (want x|y)", i, p.Axis)
			}
			if p.StartS < 0 {
				return fmt.Errorf("traffic: faults partition %d start_s %g is negative", i, p.StartS)
			}
			if p.DurationS <= 0 {
				return fmt.Errorf("traffic: faults partition %d duration_s %g must be positive", i, p.DurationS)
			}
		}
	}
	return nil
}

// Duration returns the arrival window as a time.Duration.
func (s *Scenario) Duration() time.Duration {
	return time.Duration(s.DurationS * float64(time.Second))
}

// Deadline returns the simulation bound as a time.Duration.
func (s *Scenario) Deadline() time.Duration {
	return time.Duration(s.DeadlineS * float64(time.Second))
}

// Parse decodes and validates a scenario. Unknown fields are errors, so a
// typo'd key fails instead of silently running the defaults.
func Parse(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("traffic: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Load reads and validates a scenario file.
func Load(path string) (Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return Scenario{}, fmt.Errorf("traffic: %w", err)
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = path
	}
	return s, nil
}
