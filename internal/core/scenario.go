// The scenario engine: churning workloads on generated meshes. Where
// RunMeshTCP starts N identical flows at t=0 and measures steady-state
// goodput, RunScenario resolves a declarative traffic.Scenario — topology,
// mobility, a weighted mix of traffic models, an arrival discipline — and
// lets flows arrive, transfer and complete over simulated time. The
// headline metric moves from saturated goodput to flow-completion time
// (p50/p95/p99), the quantity that actually separates aggregation schemes
// under churn: a scheme that batches aggressively can move more bytes yet
// finish every short flow later.
//
// Determinism: the whole run is a pure function of (scenario, scheme,
// seed). Arrival gaps, model picks, endpoint pairs, think times and every
// per-flow chunk stream come from decoupled seeded streams derived via
// traffic.DeriveSeed, so no draw ever depends on completion order.
package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/telemetry"
	"aggmac/internal/topology"
	"aggmac/internal/traffic"
)

// ScenarioConfig binds a declarative scenario to one MAC scheme (a
// scenario file lists several; each becomes one run).
type ScenarioConfig struct {
	Scenario traffic.Scenario
	Scheme   mac.Scheme
	// Seed, when non-zero, overrides the scenario's own seed (sweep
	// replications derive per-run seeds here).
	Seed int64
	// TraceTo streams the channel timeline to the writer; TraceNodes
	// restricts it to events touching the listed nodes; TraceFormat
	// selects TraceText (default) or TraceJSONL.
	TraceTo     io.Writer
	TraceNodes  []int
	TraceFormat string
	// Metrics samples the telemetry catalog plus the engine's flow-churn
	// gauges on simulated-time ticks; nil schedules nothing.
	Metrics *telemetry.Recorder
	// TCP overrides the transport config; zero value means defaults.
	TCP tcp.Config
	// Phy overrides the channel constants; nil means calibrated defaults.
	Phy *phy.Params
	// WallBudget bounds the run's real elapsed time (see
	// MeshTCPConfig.WallBudget). 0 means no watchdog.
	WallBudget time.Duration
}

// ScenarioFlowReport is one flow's outcome.
type ScenarioFlowReport struct {
	Server, Client network.NodeID
	// Model is the mix index of the flow's traffic model.
	Model int
	// Hops is the route length at arrival time.
	Hops int
	// Start is the flow's arrival time.
	Start time.Duration
	// Bytes is the payload delivered to the receiver.
	Bytes int64
	Done  bool
	// Killed marks a flow terminated by a fault at one of its endpoints.
	Killed bool
	// FCT is the flow completion time (last payload byte minus arrival).
	FCT time.Duration
}

// ScenarioModelReport aggregates one mix entry's flows.
type ScenarioModelReport struct {
	// Kind names the traffic model.
	Kind string
	// Flows arrived, FlowsDone completed.
	Flows, FlowsDone int
	// Bytes delivered across the model's flows.
	Bytes int64
	// GoodputMbps is the model's delivered bytes over the arrival window.
	GoodputMbps float64
	// FCT summarizes the model's completed flows.
	FCT traffic.FCTStats
}

// ScenarioResult is what a scenario run measures.
type ScenarioResult struct {
	// Name/Scheme identify the run.
	Name   string
	Scheme string
	// Flow churn: Started flows arrived, Completed finished, Abandoned
	// were still in flight at the deadline, Skipped arrivals found no
	// eligible endpoint pair (partitioned mobile meshes).
	FlowsStarted, FlowsCompleted int
	FlowsAbandoned, FlowsSkipped int
	// PeakActive is the high-water mark of concurrently active flows.
	PeakActive int
	// FCT summarizes completion times across every completed flow.
	FCT traffic.FCTStats
	// DeliveredBytes is total payload delivered to receivers, including
	// partial delivery of flows later abandoned; AggregateMbps normalizes
	// it over the scenario's arrival window.
	DeliveredBytes int64
	AggregateMbps  float64
	// PerModel breaks the workload down by mix entry, in mix order.
	PerModel []ScenarioModelReport
	// Flows holds per-flow detail, in arrival order.
	Flows []ScenarioFlowReport
	// Elapsed is the simulated time the run actually used (the deadline,
	// or earlier when every flow drained).
	Elapsed time.Duration
	// EventsRun pins the executed-event count for determinism tests.
	EventsRun uint64
	// Topology shape and mobility churn, as in MeshResult.
	NodeCount, LinkCount int
	AvgDegree            float64
	LinkUps, LinkDowns   int
	RouteFlaps           int
	RouteRecomputes      int
	// Fault-injection outcome, as in MeshResult (all zero, Availability 1,
	// without a faults section). FlowsKilledByFault counts flows whose
	// endpoint crashed mid-transfer; they are excluded from FlowsAbandoned.
	NodeCrashes, NodeRecoveries         int
	FaultLinkDowns, FaultLinkUps        int
	PartitionsStarted, PartitionsHealed int
	SNRBursts                           int
	FlowsKilledByFault                  int
	Availability                        float64
	MeanHealLatency                     time.Duration
	// Nodes holds per-node counters (roles by traffic part, as in mesh).
	Nodes []NodeReport
}

// scenarioFlow is one live or finished flow.
type scenarioFlow struct {
	model          int
	server, client network.NodeID
	hops           int
	start          sim.Time
	lastData       sim.Time
	got            int64
	done           bool
	killed         bool   // terminated by an endpoint crash
	onComplete     func() // closed-loop: resume the owning user
}

// scenarioEngine holds a run's mutable state.
type scenarioEngine struct {
	sc     traffic.Scenario
	seed   int64
	m      *topology.Mesh
	stacks []*tcp.Stack
	mix    traffic.Mix

	flows        []*scenarioFlow
	active       int
	peakActive   int
	skipped      int
	killedCount  int
	faults       *faults.Set // nil without a faults section
	arrivalsOpen bool        // open loop: more arrivals may come
	liveUsers    int         // closed loop: users still cycling

	fct        traffic.FCT
	fctByModel []traffic.FCT
	halted     bool     // the engine drained before the deadline
	haltAt     sim.Time // when it drained (may legitimately be 0)

	scratch []byte // reused send buffer; tcp.Conn.Send copies
}

// RunScenario executes one (scenario, scheme) run. It panics on an invalid
// scenario — CLIs validate at load time, so a panic here is a programming
// error, consistent with the other Run entry points.
func RunScenario(cfg ScenarioConfig) ScenarioResult {
	// Clone first: Validate normalizes in place, and one Scenario value is
	// routinely fanned across pool workers (one run per scheme), so the
	// shared Mix array and Mobility pointer must never be written here.
	sc := cfg.Scenario.Clone()
	if err := sc.Validate(); err != nil {
		panic(err.Error())
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = sc.Seed
	}
	rate, err := phy.RateFromMbps(sc.RateMbps)
	if err != nil {
		panic(fmt.Sprintf("core: scenario %q: %v", sc.Name, err))
	}
	mix, err := traffic.NewMix(sc.Traffic.Mix)
	if err != nil {
		panic(err.Error())
	}
	tcfg := cfg.TCP
	if tcfg.MSS == 0 {
		tcfg = tcp.DefaultConfig()
	}

	// The mesh build is the one RunMeshTCP uses, driven by the scenario's
	// topology/radio block.
	mcfg := MeshTCPConfig{
		Scheme: cfg.Scheme, Rate: rate,
		Topology: sc.Topology.Kind, Nodes: sc.Topology.Nodes,
		Chains: sc.Topology.Chains, ChainHops: sc.Topology.ChainHops,
		RowSpacing:  sc.Topology.RowSpacing,
		MaxAggBytes: sc.MaxAggBytes,
		Phy:         cfg.Phy,
		Seed:        seed,
	}
	if r := sc.Topology.Radio; r != nil {
		mcfg.Radio = topology.RadioModel{Range: r.Range, RefSNRdB: r.RefSNRdB, Exponent: r.Exponent}
	}
	mcfg.fill()
	m := mcfg.buildMesh()
	if obs := traceObserver(cfg.TraceTo, cfg.TraceNodes, cfg.TraceFormat); obs != nil {
		m.Medium.SetObserver(obs)
	}

	// Engine and stacks first (NewStack schedules nothing and draws no
	// randomness, so this ordering leaves the event sequence untouched);
	// the dynamics hooks below need them to react to crashes.
	e := &scenarioEngine{
		sc: sc, seed: seed, m: m, mix: mix,
		stacks:     make([]*tcp.Stack, len(m.Nodes)),
		fctByModel: make([]traffic.FCT, mix.Len()),
	}
	for i, node := range m.Nodes {
		e.stacks[i] = tcp.NewStack(m.Sched, node, tcfg)
	}

	var model string
	var speed float64
	var pause, interval time.Duration
	if mob := sc.Mobility; mob != nil {
		model, speed = mob.Model, mob.Speed
		pause = time.Duration(mob.PauseS * float64(time.Second))
		interval = time.Duration(mob.MoveIntervalS * float64(time.Second))
	}
	churn := startDynamics(m, model, speed, pause, interval,
		scenarioFaultConfig(sc.Faults), seed, dynamicsHooks{
			onCrash: func(node int) {
				mc := m.Nodes[node].MAC()
				mc.SetDown(true)
				mc.Reset()
				e.stacks[node].Abort()
				e.killFlowsAt(network.NodeID(node))
			},
			onRecover: func(node int) { m.Nodes[node].MAC().SetDown(false) },
		})
	e.faults = churn.set

	switch sc.Traffic.Mode {
	case traffic.ModeOpen:
		e.startOpenLoop()
	case traffic.ModeClosed:
		e.startClosedLoop()
	}

	if cfg.Metrics != nil {
		reg := cfg.Metrics.Registry(0)
		registerRunMetrics(reg, m.Sched, m.Medium, m.Nodes, e.stacks, mcfg.MaxAggBytes)
		reg.Gauge("scn.active_flows", func() float64 { return float64(e.active) })
		reg.Gauge("scn.flows_started", func() float64 { return float64(len(e.flows)) })
		reg.Gauge("scn.flows_completed", func() float64 { return float64(e.fct.Count()) })
		reg.Start(m.Sched, cfg.Metrics.Interval(), sc.Deadline())
	}

	if cfg.WallBudget > 0 {
		m.Sched.SetWallBudget(cfg.WallBudget)
	}
	// An open-loop run whose first arrival already falls past the window
	// halts synchronously above; RunUntil resets the scheduler's halt
	// flag on entry, so it must not run at all in that case.
	if !e.halted {
		m.Sched.RunUntil(sc.Deadline())
	}

	return e.assemble(cfg, churn)
}

// scenarioFaultConfig maps the scenario schema's faults section onto the
// fault engine's config. nil in, nil out.
func scenarioFaultConfig(sf *traffic.Faults) *faults.Config {
	if sf == nil {
		return nil
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	c := &faults.Config{
		CrashMTBF:    sec(sf.CrashMTBFS),
		CrashMTTR:    sec(sf.CrashMTTRS),
		FlapMTBF:     sec(sf.FlapMTBFS),
		FlapMTTR:     sec(sf.FlapMTTRS),
		SNRBurstMTBF: sec(sf.SNRBurstMTBFS),
		SNRBurstMTTR: sec(sf.SNRBurstMTTRS),
		SNRBurstDB:   sf.SNRBurstDB,
	}
	for _, p := range sf.Partitions {
		c.Partitions = append(c.Partitions, faults.Partition{
			Start:    sec(p.StartS),
			Duration: sec(p.DurationS),
			Axis:     p.Axis,
			At:       p.At,
		})
	}
	return c
}

// killFlowsAt marks every live flow terminating at the crashed node as
// fault-killed. A closed-loop user whose flow dies resumes its think cycle
// (the user did not crash, its request did).
func (e *scenarioEngine) killFlowsAt(node network.NodeID) {
	for _, f := range e.flows {
		if f.done || f.killed || (f.server != node && f.client != node) {
			continue
		}
		f.killed = true
		e.active--
		e.killedCount++
		if f.onComplete != nil {
			f.onComplete()
		}
		e.maybeHalt()
	}
}

// maybeHalt stops the scheduler once no flow can arrive or progress.
// RunUntil advances the clock to the deadline even on an early halt, so
// the halt time is captured here for the Elapsed metric.
func (e *scenarioEngine) maybeHalt() {
	if e.active == 0 && !e.arrivalsOpen && e.liveUsers == 0 {
		e.halted = true
		e.haltAt = e.m.Sched.Now()
		e.m.Sched.Halt()
	}
}

// startOpenLoop schedules Poisson flow arrivals over the arrival window.
func (e *scenarioEngine) startOpenLoop() {
	arr := traffic.NewOpenLoop(e.sc.Traffic.ArrivalRate, traffic.DeriveSeed(e.seed, "scn/arrivals"))
	pick := rand.New(rand.NewSource(traffic.DeriveSeed(e.seed, "scn/pick")))
	e.arrivalsOpen = true
	var schedule func()
	schedule = func() {
		gap := arr.Next()
		due := time.Duration(e.m.Sched.Now()) + gap
		if due > e.sc.Duration() || len(e.flows) >= e.flowCap() {
			e.arrivalsOpen = false
			e.maybeHalt()
			return
		}
		e.m.Sched.After(gap, "scn:arrival", func() {
			mi := e.mix.Pick(pick)
			srv, cli, ok := e.sampleEndpoints(pick)
			if ok {
				e.launch(mi, srv, cli, nil)
			} else {
				e.skipped++
			}
			schedule()
		})
	}
	schedule()
}

// startClosedLoop launches the think-time user population. Each user owns
// decoupled random streams (model picks, endpoints, think times), so one
// user's pace never perturbs another's draws.
func (e *scenarioEngine) startClosedLoop() {
	e.liveUsers = e.sc.Traffic.Users
	think := time.Duration(e.sc.Traffic.ThinkS * float64(time.Second))
	for u := 0; u < e.sc.Traffic.Users; u++ {
		u := u
		rng := rand.New(rand.NewSource(traffic.DeriveSeed(e.seed, fmt.Sprintf("scn/user/%d", u))))
		th := traffic.NewThink(think, traffic.DeriveSeed(e.seed, fmt.Sprintf("scn/think/%d", u)))
		var next func()
		next = func() {
			if time.Duration(e.m.Sched.Now()) >= e.sc.Duration() || len(e.flows) >= e.flowCap() {
				e.liveUsers--
				e.maybeHalt()
				return
			}
			mi := e.mix.Pick(rng)
			srv, cli, ok := e.sampleEndpoints(rng)
			if !ok {
				// No eligible pair right now (partitioned mobile mesh):
				// think and retry rather than spinning.
				e.skipped++
				e.m.Sched.After(th.Next(), "scn:think", next)
				return
			}
			e.launch(mi, srv, cli, func() {
				e.m.Sched.After(th.Next(), "scn:think", next)
			})
		}
		// Stagger user starts so initial SYNs do not collide on identical
		// backoff draws (the same trick the mesh runner uses).
		e.m.Sched.After(time.Duration(u)*150*time.Microsecond, "scn:user", next)
	}
}

// flowCap is the validated per-run flow-start bound; the schema caps it at
// traffic.MaxFlowsLimit, which keeps every listener port (1 + flow index)
// below the stacks' ephemeral range.
func (e *scenarioEngine) flowCap() int { return e.sc.Traffic.MaxFlows }

// sampleEndpoints draws a server/client pair at least MinHops apart on the
// current topology. ok=false when no eligible pair turns up.
func (e *scenarioEngine) sampleEndpoints(rng *rand.Rand) (srv, cli int, ok bool) {
	n := len(e.m.Nodes)
	for tries := 0; tries < 200; tries++ {
		srv, cli = rng.Intn(n), rng.Intn(n)
		if srv == cli {
			continue
		}
		if e.faults != nil && (e.faults.NodeDown(srv) || e.faults.NodeDown(cli)) {
			continue
		}
		if d := e.m.HopDistance(srv, cli); d < e.sc.Traffic.MinHops {
			continue
		}
		return srv, cli, true
	}
	return 0, 0, false
}

// launch starts one flow: listener on the client, a paced source on the
// server, completion bookkeeping in between.
func (e *scenarioEngine) launch(modelIdx, srv, cli int, onComplete func()) {
	id := len(e.flows)
	f := &scenarioFlow{
		model:  modelIdx,
		server: network.NodeID(srv), client: network.NodeID(cli),
		hops:       e.m.HopDistance(srv, cli),
		start:      e.m.Sched.Now(),
		onComplete: onComplete,
	}
	e.flows = append(e.flows, f)
	e.active++
	if e.active > e.peakActive {
		e.peakActive = e.active
	}

	port := uint16(1 + id) // 1..9999: below the ephemeral range
	lis := e.stacks[cli].Listen(port)
	lis.Setup = func(conn *tcp.Conn) {
		conn.OnData = func(b []byte) {
			f.got += int64(len(b))
			f.lastData = e.m.Sched.Now()
		}
		// TCP delivers in order, so the peer's FIN arrives after every
		// payload byte: peer-close at the receiver means the flow is done.
		conn.OnPeerClose = func() {
			conn.Close()
			e.complete(f)
		}
	}

	src := e.mix.Model(modelIdx).New(traffic.DeriveSeed(e.seed, fmt.Sprintf("scn/flow/%d", id)))
	conn := e.stacks[srv].Connect(network.NodeID(cli), port)
	conn.OnEstablished = func() { e.pump(conn, src) }
}

// pump drives a source's chunk schedule onto the connection: pull the next
// (wait, bytes), send after wait, repeat; close when the source drains.
// Chunk times are anchored to pull time, and pulls happen at send events,
// so the on-wire offsets are exactly the source's cumulative schedule.
func (e *scenarioEngine) pump(conn *tcp.Conn, src traffic.Source) {
	wait, n, ok := src.Next()
	if !ok {
		conn.Close()
		return
	}
	send := func() {
		if n > len(e.scratch) {
			e.scratch = make([]byte, n)
		}
		_ = conn.Send(e.scratch[:n])
		e.pump(conn, src)
	}
	if wait == 0 {
		send()
		return
	}
	e.m.Sched.After(wait, "scn:send", send)
}

// complete records one flow's completion. Killed flows never complete:
// their active slot was already released by killFlowsAt, and a late
// peer-close from the surviving endpoint must not double-count.
func (e *scenarioEngine) complete(f *scenarioFlow) {
	if f.done || f.killed {
		return
	}
	f.done = true
	e.active--
	// A flow that delivered no payload (a paced source whose first chunk
	// never fit the window) completes at close time; pinning lastData here
	// keeps the per-flow report and the FCT stats telling the same story.
	if f.lastData == 0 {
		f.lastData = e.m.Sched.Now()
	}
	d := time.Duration(f.lastData - f.start)
	e.fct.Record(d)
	e.fctByModel[f.model].Record(d)
	if f.onComplete != nil {
		f.onComplete()
	}
	e.maybeHalt()
}

// assemble builds the result after the scheduler stops.
func (e *scenarioEngine) assemble(cfg ScenarioConfig, churn *mobilityChurn) ScenarioResult {
	sc := e.sc
	res := ScenarioResult{
		Name:            sc.Name,
		Scheme:          cfg.Scheme.Name(),
		FlowsStarted:    len(e.flows),
		FlowsCompleted:  e.fct.Count(),
		FlowsSkipped:    e.skipped,
		PeakActive:      e.peakActive,
		FCT:             e.fct.Stats(),
		Elapsed:         time.Duration(e.m.Sched.Now()),
		EventsRun:       e.m.Sched.EventsRun(),
		NodeCount:       len(e.m.Nodes),
		LinkCount:       e.m.LinkCount,
		AvgDegree:       e.m.AvgDegree(),
		LinkUps:         churn.LinkUps,
		LinkDowns:       churn.LinkDowns,
		RouteFlaps:      churn.RouteFlaps,
		RouteRecomputes: churn.Recomputes,
	}
	if e.halted {
		// RunUntil advances the clock to the deadline even when the engine
		// halted early; report the drain time instead.
		res.Elapsed = time.Duration(e.haltAt)
	}
	res.NodeCrashes = churn.Crashes
	res.NodeRecoveries = churn.Recoveries
	res.FaultLinkDowns = churn.FaultLinkDowns
	res.FaultLinkUps = churn.FaultLinkUps
	res.PartitionsStarted = churn.PartStarts
	res.PartitionsHealed = churn.PartHeals
	res.SNRBursts = churn.Bursts
	res.FlowsKilledByFault = e.killedCount
	res.Availability = 1
	if churn.set != nil {
		res.Availability = churn.set.Availability(res.Elapsed)
	}
	if churn.PartHeals > 0 {
		res.MeanHealLatency = churn.HealLatency / time.Duration(churn.PartHeals)
	}
	res.FlowsAbandoned = res.FlowsStarted - res.FlowsCompleted - res.FlowsKilledByFault

	perModel := make([]ScenarioModelReport, e.mix.Len())
	for i := range perModel {
		perModel[i].Kind = e.mix.Model(i).Kind
		perModel[i].FCT = e.fctByModel[i].Stats()
	}
	for _, f := range e.flows {
		rep := ScenarioFlowReport{
			Server: f.server, Client: f.client,
			Model: f.model, Hops: f.hops,
			Start: time.Duration(f.start),
			Bytes: f.got, Done: f.done, Killed: f.killed,
		}
		if f.done {
			rep.FCT = time.Duration(f.lastData - f.start)
		}
		res.Flows = append(res.Flows, rep)
		pm := &perModel[f.model]
		pm.Flows++
		pm.Bytes += f.got
		if f.done {
			pm.FlowsDone++
		}
	}
	for i := range perModel {
		perModel[i].GoodputMbps = float64(perModel[i].Bytes) * 8 / sc.DurationS / 1e6
		res.DeliveredBytes += perModel[i].Bytes
	}
	res.AggregateMbps = float64(res.DeliveredBytes) * 8 / sc.DurationS / 1e6
	res.PerModel = perModel

	role := make([]string, len(e.m.Nodes))
	for i := range role {
		role[i] = "idle"
	}
	for i, node := range e.m.Nodes {
		if node.Stats().Forwarded > 0 {
			role[i] = "relay"
		}
	}
	for _, f := range e.flows {
		role[f.client] = "client"
	}
	for _, f := range e.flows {
		role[f.server] = "server"
	}
	for i, node := range e.m.Nodes {
		res.Nodes = append(res.Nodes, NodeReport{
			ID:            i,
			Role:          role[i],
			MAC:           node.MAC().Counters(),
			Net:           node.Stats(),
			PreambleBytes: node.MAC().PreambleBytesPerTx(),
		})
	}
	return res
}
