package core

import (
	"os"
	"reflect"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// TestRunMeshTCPSparseRoutesEquivalent pins the SparseRoutes contract: a
// run that installs routes only toward its flow endpoints is bit-identical
// to the same run on all-pairs tables. BA is the scheme that stresses it —
// overheard broadcast ACKs are forwarded by any node with a route — and
// grid, disk and chains exercise all three flow-planning paths.
func TestRunMeshTCPSparseRoutesEquivalent(t *testing.T) {
	cases := []struct {
		name string
		cfg  MeshTCPConfig
	}{
		{"grid", MeshTCPConfig{
			Scheme: mac.BA, Rate: phy.Rate2600k,
			Topology: MeshGrid, Nodes: 25, Flows: 4,
			FileBytes: 8_000, Seed: 3,
			Deadline: 600 * time.Second,
		}},
		{"disk", MeshTCPConfig{
			Scheme: mac.BA, Rate: phy.Rate2600k,
			Topology: MeshDisk, Nodes: 30, Flows: 3,
			FileBytes: 6_000, Seed: 5,
			Deadline: 600 * time.Second,
		}},
		{"chains", MeshTCPConfig{
			Scheme: mac.UA, Rate: phy.Rate2600k,
			Topology: MeshChains, Chains: 3, ChainHops: 3, CrossFlows: 1,
			FileBytes: 6_000, Seed: 2,
			Deadline: 600 * time.Second,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			full := RunMeshTCP(tc.cfg)
			cfg := tc.cfg
			cfg.SparseRoutes = true
			sparse := RunMeshTCP(cfg)
			if full.EventsRun != sparse.EventsRun {
				t.Fatalf("EventsRun diverged: full routes %d, sparse routes %d", full.EventsRun, sparse.EventsRun)
			}
			if !reflect.DeepEqual(full, sparse) {
				t.Fatal("full-route and sparse-route mesh runs diverged")
			}
		})
	}
}

// TestRunMeshTCPSparseRoutesShardedEquivalent repeats the pin on the
// sharded engine, whose route install happens on rebuilt nodes.
func TestRunMeshTCPSparseRoutesShardedEquivalent(t *testing.T) {
	cfg := MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: MeshGrid, Nodes: 25, Flows: 3,
		FileBytes: 6_000, Seed: 7, Shards: 2,
		Deadline: 600 * time.Second,
	}
	full := RunMeshTCP(cfg)
	cfg.SparseRoutes = true
	sparse := RunMeshTCP(cfg)
	if !reflect.DeepEqual(full, sparse) {
		t.Fatal("full-route and sparse-route sharded runs diverged")
	}
}

// TestRunMeshTCPSparseRoutesRejectsDynamics: mobility and fault recovery
// rebuild full route tables, so combining them with SparseRoutes must fail
// loudly instead of silently measuring a different system.
func TestRunMeshTCPSparseRoutesRejectsDynamics(t *testing.T) {
	expectPanic := func(name string, cfg MeshTCPConfig) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: SparseRoutes accepted a dynamic topology", name)
			}
		}()
		RunMeshTCP(cfg)
	}
	cfg := quickMeshCfg()
	cfg.SparseRoutes = true
	cfg.Mobility = MobilityWaypoint
	expectPanic("mobility", cfg)
}

// scaleGated skips t unless AGGMAC_SCALE is set: the large-N tests below
// take tens of seconds and real memory, so only the CI scale job (and
// explicit local runs) pay for them.
func scaleGated(t *testing.T) {
	if os.Getenv("AGGMAC_SCALE") == "" {
		t.Skip("set AGGMAC_SCALE=1 to run large-N scale tests")
	}
}

// TestMeshSparseVsDenseFullRunN400 is the scale job's full-run equivalence
// gate: one N=400 scaling cell simulated end to end on the sparse
// neighbor-indexed table and again on the materialized dense oracle, with
// every result field compared.
func TestMeshSparseVsDenseFullRunN400(t *testing.T) {
	scaleGated(t)
	cfg := MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: MeshGrid, Nodes: 400, Flows: 33,
		FileBytes: 30_000, Seed: 1,
		Deadline: 1200 * time.Second,
	}
	fast := RunMeshTCP(cfg)
	cfg.DenseScan = true
	dense := RunMeshTCP(cfg)
	if fast.EventsRun != dense.EventsRun {
		t.Fatalf("EventsRun diverged: sparse %d, dense %d", fast.EventsRun, dense.EventsRun)
	}
	if !reflect.DeepEqual(fast, dense) {
		t.Fatal("sparse and dense-oracle N=400 full runs diverged")
	}
}

// TestLargeGridSmoke is the acceptance smoke for the sparse table: an
// N=25600 grid mesh must construct and simulate with link-state memory
// O(N·degree). The interesting assertions are that it finishes at all
// (construction used to be O(N²) in both time and memory) and that the
// link store holds only real links — a grid's 8-neighborhood keeps the
// directed count under 8N where the dense matrix held N² entries.
func TestLargeGridSmoke(t *testing.T) {
	scaleGated(t)
	const n = 25600 // 160×160
	res := RunMeshTCP(MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: MeshGrid, Nodes: n, Flows: 4,
		FileBytes: 20_000, Seed: 1,
		SparseRoutes: true,
		Deadline:     600 * time.Second,
	})
	if res.NodeCount != n {
		t.Fatalf("built %d nodes, want %d", res.NodeCount, n)
	}
	if res.FlowsDone == 0 {
		t.Fatal("smoke sim completed no flows")
	}
	// 160×160 grid, radio range 1.5: interior nodes have degree 8, so the
	// bidirectional link count sits well under 4N.
	if res.LinkCount >= 4*n {
		t.Fatalf("grid wired %d links — not a sparse 8-neighborhood", res.LinkCount)
	}
}
