package core

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/sim"
	"aggmac/internal/traffic"
)

func quickFaultCfg() MeshTCPConfig {
	cfg := quickMeshCfg()
	cfg.Nodes = 16
	cfg.Flows = 3
	cfg.Deadline = 300 * time.Second
	cfg.Faults = &faults.Config{CrashMTBF: 10 * time.Second, CrashMTTR: 5 * time.Second}
	return cfg
}

// A faulty run is a pure function of its config: same seed, same events,
// same fault schedule, same degradation metrics.
func TestRunMeshTCPFaultsDeterministic(t *testing.T) {
	a := RunMeshTCP(quickFaultCfg())
	b := RunMeshTCP(quickFaultCfg())
	if a.EventsRun != b.EventsRun {
		t.Fatalf("EventsRun diverged: %d vs %d", a.EventsRun, b.EventsRun)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical faulty configs produced different results")
	}
}

// Crash faults must be observable end to end: crashes counted, availability
// below 1, and any flow whose endpoint crashed classified as killed (not
// merely unfinished) with its goodput zeroed.
func TestRunMeshTCPFaultsCrash(t *testing.T) {
	res := RunMeshTCP(quickFaultCfg())
	if res.NodeCrashes == 0 {
		t.Fatal("300 s at 10 s MTBF observed no crashes")
	}
	if res.Availability >= 1 || res.Availability <= 0 {
		t.Fatalf("availability %v despite crashes", res.Availability)
	}
	killed := 0
	for _, f := range res.Flows {
		if f.Killed {
			killed++
			if f.Done {
				t.Errorf("flow %d->%d both done and killed", f.Server, f.Client)
			}
			if f.Mbps != 0 {
				t.Errorf("killed flow %d->%d credited %v Mbps", f.Server, f.Client, f.Mbps)
			}
		}
	}
	if killed != res.FlowsKilledByFault {
		t.Errorf("FlowsKilledByFault=%d but %d flows marked killed", res.FlowsKilledByFault, killed)
	}
	if res.FlowsDone+killed > len(res.Flows) {
		t.Errorf("done %d + killed %d exceeds %d flows", res.FlowsDone, killed, len(res.Flows))
	}
}

// A fault-free run reports the zero fault outcome: availability exactly 1,
// no crashes, no kills, no stalls beyond the flows' own progress gaps.
func TestRunMeshTCPFaultsOffBaseline(t *testing.T) {
	res := RunMeshTCP(quickMeshCfg())
	if res.NodeCrashes != 0 || res.FaultLinkDowns != 0 || res.PartitionsStarted != 0 ||
		res.SNRBursts != 0 || res.FlowsKilledByFault != 0 {
		t.Errorf("fault counters nonzero on a fault-free run: %+v", res)
	}
	if res.Availability != 1 {
		t.Errorf("availability %v on a fault-free run, want exactly 1", res.Availability)
	}
	for _, f := range res.Flows {
		if f.Killed {
			t.Errorf("flow %d->%d killed without faults", f.Server, f.Client)
		}
	}
}

// A scheduled partition must open and heal on the dynamics tick, cut the
// crossing links while active (visible as route recompute rounds), and
// report the reconnection latency.
func TestRunMeshTCPFaultsPartition(t *testing.T) {
	cfg := quickMeshCfg()
	cfg.Nodes = 16
	cfg.Deadline = 300 * time.Second
	cfg.Faults = &faults.Config{Partitions: []faults.Partition{
		{Start: 1 * time.Second, Duration: 5 * time.Second, Axis: faults.AxisX, At: 1.5},
	}}
	res := RunMeshTCP(cfg)
	if res.PartitionsStarted != 1 || res.PartitionsHealed != 1 {
		t.Fatalf("partitions %d/%d, want 1/1", res.PartitionsStarted, res.PartitionsHealed)
	}
	// Partition cuts flow through UpdateLinks, so they land in the same
	// link-churn counters mobility uses (FaultLinkDowns counts flap edges).
	if res.LinkDowns == 0 || res.LinkUps == 0 {
		t.Errorf("partition cut no links: downs=%d ups=%d", res.LinkDowns, res.LinkUps)
	}
	if res.RouteRecomputes == 0 {
		t.Error("partition edges triggered no route recompute")
	}
	if res.MeanHealLatency < 0 || res.MeanHealLatency >= time.Second {
		t.Errorf("heal latency %v outside one dynamics tick", res.MeanHealLatency)
	}
}

// SNR bursts must degrade links through the overlay without any crash/kill
// side effects.
func TestRunMeshTCPFaultsSNRBurst(t *testing.T) {
	cfg := quickMeshCfg()
	cfg.Nodes = 16
	cfg.Deadline = 300 * time.Second
	cfg.Faults = &faults.Config{SNRBurstMTBF: 5 * time.Second, SNRBurstMTTR: 2 * time.Second, SNRBurstDB: 40}
	res := RunMeshTCP(cfg)
	if res.SNRBursts == 0 {
		t.Fatal("no SNR bursts at 5 s MTBF over 300 s")
	}
	if res.NodeCrashes != 0 || res.FlowsKilledByFault != 0 {
		t.Errorf("bursts caused crashes/kills: %d/%d", res.NodeCrashes, res.FlowsKilledByFault)
	}
	// Bursts do not cut links; they lower SNR on the reconcile. A 40 dB
	// penalty must change the channel's error draws, so the run cannot be
	// identical to the burst-free one.
	baseline := quickMeshCfg()
	baseline.Nodes = 16
	baseline.Deadline = 300 * time.Second
	if reflect.DeepEqual(res.Flows, RunMeshTCP(baseline).Flows) {
		t.Error("40 dB bursts left every flow outcome bit-identical to the burst-free run")
	}
}

// Faults compose with mobility on one dynamics tick.
func TestRunMeshTCPFaultsWithMobility(t *testing.T) {
	cfg := quickMobilityCfg()
	cfg.Faults = &faults.Config{CrashMTBF: 20 * time.Second, CrashMTTR: 5 * time.Second}
	a := RunMeshTCP(cfg)
	b := RunMeshTCP(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("mobile faulty runs diverged")
	}
	if a.RouteRecomputes == 0 {
		t.Error("no recompute rounds on a mobile faulty run")
	}
	if a.NodeCrashes == 0 {
		t.Error("no crashes at 20 s MTBF over the mobile run")
	}
}

// The sharded engine rejects fault injection loudly.
func TestRunMeshTCPFaultsRejectsShards(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Shards>0 with Faults did not panic")
		}
		if !strings.Contains(r.(string), "sequential engine") {
			t.Fatalf("wrong panic: %v", r)
		}
	}()
	cfg := quickFaultCfg()
	cfg.Shards = 2
	RunMeshTCP(cfg)
}

// The wall-clock watchdog converts a hung run into a typed panic without
// perturbing the event order of runs that finish in time.
func TestRunMeshTCPWallBudget(t *testing.T) {
	cfg := quickMeshCfg()
	cfg.WallBudget = time.Hour // generous: must not fire
	withBudget := RunMeshTCP(cfg)
	plain := RunMeshTCP(quickMeshCfg())
	if !reflect.DeepEqual(withBudget, plain) {
		t.Fatal("an unfired wall budget changed the run")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("1 ns wall budget did not fire")
		}
		if _, ok := r.(*sim.WallBudgetError); !ok {
			t.Fatalf("panic value %T, want *sim.WallBudgetError", r)
		}
	}()
	cfg = quickMeshCfg()
	cfg.WallBudget = time.Nanosecond
	RunMeshTCP(cfg)
}

// Scenario runs thread the same fault pipeline: killed flows are classified
// apart from abandoned ones and the run stays deterministic.
func TestRunScenarioFaults(t *testing.T) {
	sc := traffic.Scenario{
		Version:   traffic.SchemaVersion,
		Name:      "faulty",
		Seed:      1,
		DurationS: 30,
		DeadlineS: 90,
		Schemes:   []string{"ba"},
		RateMbps:  2.6,
		Topology:  traffic.Topology{Kind: "grid", Nodes: 16},
		Traffic: traffic.Traffic{
			Mode:        traffic.ModeOpen,
			ArrivalRate: 0.5,
			Mix: []traffic.WeightedModel{
				{Model: traffic.Model{Kind: traffic.Pareto, Bytes: 8_000, MaxBytes: 40_000}, Weight: 1},
			},
		},
		Faults: &traffic.Faults{CrashMTBFS: 8, CrashMTTRS: 4},
	}
	a := RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
	b := RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("faulty scenario runs diverged")
	}
	if a.NodeCrashes == 0 {
		t.Fatal("no crashes at 8 s MTBF over 30 s on 16 nodes")
	}
	if a.Availability >= 1 {
		t.Errorf("availability %v despite crashes", a.Availability)
	}
	killed := 0
	for _, f := range a.Flows {
		if f.Killed {
			killed++
			if f.Done {
				t.Errorf("flow %d->%d both done and killed", f.Server, f.Client)
			}
		}
	}
	if killed != a.FlowsKilledByFault {
		t.Errorf("FlowsKilledByFault=%d but %d flows marked killed", a.FlowsKilledByFault, killed)
	}
	if a.FlowsStarted != a.FlowsCompleted+a.FlowsAbandoned+a.FlowsKilledByFault {
		t.Errorf("flow accounting: started %d != done %d + abandoned %d + killed %d",
			a.FlowsStarted, a.FlowsCompleted, a.FlowsAbandoned, a.FlowsKilledByFault)
	}
}

// A v1 scenario (no faults section) still runs, and a faults section on a
// v1 scenario is rejected at validation.
func TestScenarioFaultsVersionGate(t *testing.T) {
	sc := traffic.Scenario{
		Version:   1,
		Name:      "v1",
		Seed:      1,
		DurationS: 5,
		DeadlineS: 20,
		Schemes:   []string{"ba"},
		RateMbps:  2.6,
		Topology:  traffic.Topology{Kind: "grid", Nodes: 9},
		Traffic: traffic.Traffic{
			Mode:        traffic.ModeOpen,
			ArrivalRate: 0.3,
			Mix: []traffic.WeightedModel{
				{Model: traffic.Model{Kind: traffic.Pareto, Bytes: 4_000, MaxBytes: 20_000}, Weight: 1},
			},
		},
	}
	RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA}) // must not panic

	sc.Faults = &traffic.Faults{CrashMTBFS: 10}
	defer func() {
		if recover() == nil {
			t.Fatal("v1 scenario with a faults section did not panic")
		}
	}()
	RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
}
