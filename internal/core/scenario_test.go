package core

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/traffic"
)

// testScenario builds a small, fast scenario the engine tests share.
func testScenario(mode string) traffic.Scenario {
	sc := traffic.Scenario{
		Version:   traffic.SchemaVersion,
		Name:      "engine-test",
		Seed:      1,
		DurationS: 30,
		DeadlineS: 120,
		Schemes:   []string{"ba"},
		RateMbps:  2.6,
		Topology:  traffic.Topology{Kind: "grid", Nodes: 16},
		Traffic: traffic.Traffic{
			Mode:        mode,
			ArrivalRate: 0.4,
			Users:       3,
			ThinkS:      2,
			Mix: []traffic.WeightedModel{
				{Model: traffic.Model{Kind: traffic.Pareto, Bytes: 8_000, MaxBytes: 60_000}, Weight: 3},
				{Model: traffic.Model{Kind: traffic.Bulk, Bytes: 20_000}, Weight: 1},
			},
		},
	}
	return sc
}

func TestRunScenarioOpenLoop(t *testing.T) {
	res := RunScenario(ScenarioConfig{Scenario: testScenario(traffic.ModeOpen), Scheme: mac.BA})
	if res.FlowsStarted < 5 {
		t.Fatalf("only %d flows arrived over 30 s at 0.4/s", res.FlowsStarted)
	}
	if res.FlowsCompleted == 0 {
		t.Fatal("no flow completed")
	}
	if res.FlowsStarted != res.FlowsCompleted+res.FlowsAbandoned {
		t.Errorf("churn accounting broken: %d != %d + %d",
			res.FlowsStarted, res.FlowsCompleted, res.FlowsAbandoned)
	}
	if res.FCT.Count != res.FlowsCompleted {
		t.Errorf("FCT count %d != completed %d", res.FCT.Count, res.FlowsCompleted)
	}
	if res.FCT.P50 <= 0 || res.FCT.P99 < res.FCT.P95 || res.FCT.P95 < res.FCT.P50 {
		t.Errorf("FCT percentiles disordered: %+v", res.FCT)
	}
	if res.AggregateMbps <= 0 || res.DeliveredBytes <= 0 {
		t.Errorf("no goodput recorded: %+v", res.AggregateMbps)
	}
	if len(res.PerModel) != 2 {
		t.Fatalf("per-model reports: %d", len(res.PerModel))
	}
	var flows, bytes int64
	for _, pm := range res.PerModel {
		flows += int64(pm.Flows)
		bytes += pm.Bytes
	}
	if int(flows) != res.FlowsStarted || bytes != res.DeliveredBytes {
		t.Errorf("per-model totals (%d flows, %d B) disagree with run totals (%d, %d)",
			flows, bytes, res.FlowsStarted, res.DeliveredBytes)
	}
	if res.PerModel[0].Kind != traffic.Pareto || res.PerModel[1].Kind != traffic.Bulk {
		t.Errorf("per-model order does not follow the mix: %+v", res.PerModel)
	}
	if res.PeakActive < 1 {
		t.Errorf("peak active %d", res.PeakActive)
	}
	if res.Scheme != "BA" || res.Name != "engine-test" {
		t.Errorf("identity fields: %q %q", res.Scheme, res.Name)
	}
	// Every flow drained: the engine halts before the deadline.
	if res.FlowsAbandoned == 0 && res.Elapsed >= 120*time.Second {
		t.Errorf("engine did not halt early despite draining (elapsed %v)", res.Elapsed)
	}
	if len(res.Nodes) != 16 {
		t.Errorf("node reports: %d", len(res.Nodes))
	}
}

func TestRunScenarioClosedLoop(t *testing.T) {
	res := RunScenario(ScenarioConfig{Scenario: testScenario(traffic.ModeClosed), Scheme: mac.UA})
	if res.FlowsStarted < 3 {
		t.Fatalf("closed loop started only %d flows", res.FlowsStarted)
	}
	if res.FlowsCompleted == 0 {
		t.Fatal("no closed-loop flow completed")
	}
	// A 3-user closed loop can never have more flows in flight than users.
	if res.PeakActive > 3 {
		t.Errorf("peak active %d exceeds the user population", res.PeakActive)
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	for _, mode := range []string{traffic.ModeOpen, traffic.ModeClosed} {
		a := RunScenario(ScenarioConfig{Scenario: testScenario(mode), Scheme: mac.BA})
		b := RunScenario(ScenarioConfig{Scenario: testScenario(mode), Scheme: mac.BA})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical configs produced different results", mode)
		}
		if a.EventsRun == 0 {
			t.Errorf("%s: no events ran", mode)
		}
	}
}

func TestRunScenarioSeedOverride(t *testing.T) {
	base := RunScenario(ScenarioConfig{Scenario: testScenario(traffic.ModeOpen), Scheme: mac.BA})
	over := RunScenario(ScenarioConfig{Scenario: testScenario(traffic.ModeOpen), Scheme: mac.BA, Seed: 99})
	if reflect.DeepEqual(base, over) {
		t.Error("seed override did not change the run")
	}
}

func TestRunScenarioMobility(t *testing.T) {
	sc := testScenario(traffic.ModeOpen)
	sc.Mobility = &traffic.Mobility{Model: "waypoint", Speed: 3, PauseS: 0.5, MoveIntervalS: 0.5}
	res := RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
	if res.LinkUps+res.LinkDowns == 0 {
		t.Error("mobile scenario recorded no link churn")
	}
	if res.RouteRecomputes == 0 {
		t.Error("mobile scenario recorded no route recomputes")
	}
}

func TestRunScenarioPacedModels(t *testing.T) {
	sc := testScenario(traffic.ModeOpen)
	sc.Traffic.ArrivalRate = 0.2
	sc.Traffic.Mix = []traffic.WeightedModel{
		{Model: traffic.Model{Kind: traffic.CBR, RateMbps: 0.1, PacketBytes: 500, DurationS: 3}, Weight: 1},
		{Model: traffic.Model{Kind: traffic.OnOff, RateMbps: 0.2, PacketBytes: 500, DurationS: 4, MeanOnS: 0.5, MeanOffS: 0.5}, Weight: 1},
		{Model: traffic.Model{Kind: traffic.Poisson, RateMbps: 0.1, PacketBytes: 500, DurationS: 3}, Weight: 1},
	}
	res := RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
	if res.FlowsCompleted == 0 {
		t.Fatal("no paced flow completed")
	}
	// A paced flow's completion time is at least its pacing duration.
	if res.FCT.P50 < 2*time.Second {
		t.Errorf("paced FCT p50 %v shorter than the pacing window", res.FCT.P50)
	}
}

// TestSchemeNamesMatchResolver enforces the lockstep between the scenario
// schema's name list (traffic.SchemeNames) and the resolver the CLIs use
// (mac.SchemeByName): every schema name must resolve, and every resolvable
// scheme must be representable in a scenario file.
func TestSchemeNamesMatchResolver(t *testing.T) {
	names := traffic.SchemeNames()
	for _, n := range names {
		if _, err := mac.SchemeByName(n); err != nil {
			t.Errorf("schema scheme %q does not resolve: %v", n, err)
		}
	}
	seen := make(map[string]bool)
	for _, n := range names {
		seen[n] = true
	}
	for _, s := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		if !seen[strings.ToLower(s.Name())] {
			t.Errorf("scheme %s is resolvable but missing from traffic.SchemeNames", s.Name())
		}
	}
}

// TestRunScenarioSharedScenarioIsRaceFree fans one Scenario value across
// concurrent RunScenario calls (the aggsim one-run-per-scheme pattern):
// RunScenario clones before normalizing, so the shared Mix backing array
// and Mobility pointer must never be written. Run under -race this fails
// without the clone; it also asserts the caller's value stays unmodified.
func TestRunScenarioSharedScenarioIsRaceFree(t *testing.T) {
	sc := testScenario(traffic.ModeOpen)
	sc.Mobility = &traffic.Mobility{Model: "waypoint"} // zero Speed: Normalize would write 1
	var wg sync.WaitGroup
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		scheme := scheme
		wg.Add(1)
		go func() {
			defer wg.Done()
			RunScenario(ScenarioConfig{Scenario: sc, Scheme: scheme})
		}()
	}
	wg.Wait()
	if sc.Mobility.Speed != 0 || sc.Traffic.MaxFlows != 0 {
		t.Errorf("RunScenario normalized the caller's scenario in place (speed=%g maxflows=%d)",
			sc.Mobility.Speed, sc.Traffic.MaxFlows)
	}
}

// TestRunScenarioZeroArrivals: an arrival rate so low the first Poisson
// gap overshoots the window halts synchronously before the scheduler ever
// runs; the run must terminate immediately instead of burning mobility
// ticks to the deadline, and Elapsed must not report the deadline.
func TestRunScenarioZeroArrivals(t *testing.T) {
	sc := testScenario(traffic.ModeOpen)
	sc.Traffic.ArrivalRate = 1e-9
	sc.Mobility = &traffic.Mobility{Model: "waypoint", Speed: 2, MoveIntervalS: 0.5}
	res := RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
	if res.FlowsStarted != 0 {
		t.Fatalf("expected no arrivals, got %d", res.FlowsStarted)
	}
	if res.Elapsed != 0 {
		t.Errorf("empty run reports elapsed %v, want 0", res.Elapsed)
	}
	if res.EventsRun != 0 {
		t.Errorf("empty run executed %d events", res.EventsRun)
	}
}

func TestRunScenarioInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid scenario did not panic")
		}
	}()
	sc := testScenario(traffic.ModeOpen)
	sc.Traffic.Mode = "bogus"
	RunScenario(ScenarioConfig{Scenario: sc, Scheme: mac.BA})
}
