//go:build !race

package core

// raceEnabled mirrors the race build tag so heavyweight statistical sweeps
// can shrink under the race detector, where each run costs ~20x wall clock.
const raceEnabled = false
