package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"aggmac/internal/mac"
)

// hashMeshResult renders every field of a MeshResult (floats in exact hex)
// and hashes it, ignoring Shards — the one field that legitimately differs
// between the engines.
func hashMeshResult(r MeshResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "agg=%x min=%x mean=%x done=%d completed=%v elapsed=%d events=%d nodes=%d links=%d deg=%x\n",
		r.AggregateMbps, r.MinMbps, r.MeanMbps, r.FlowsDone, r.Completed, r.Elapsed,
		r.EventsRun, r.NodeCount, r.LinkCount, r.AvgDegree)
	fmt.Fprintf(&b, "churn=%d/%d/%d/%d\n", r.LinkUps, r.LinkDowns, r.RouteFlaps, r.RouteRecomputes)
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "flow %d->%d hops=%d mbps=%x done=%v finish=%d\n",
			f.Server, f.Client, f.Hops, f.Mbps, f.Done, f.Finish)
	}
	for _, nr := range r.Nodes {
		fmt.Fprintf(&b, "node %d %s mac=%+v net=%+v pre=%x\n", nr.ID, nr.Role, nr.MAC, nr.Net, nr.PreambleBytes)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// equivCases is the randomized matrix for the parallel-vs-sequential
// property test: topology × scheme × seed cells kept small enough for CI.
func equivCases(short bool) []MeshTCPConfig {
	base := func(topo string, scheme mac.Scheme, seed int64) MeshTCPConfig {
		return MeshTCPConfig{
			Scheme: scheme, Topology: topo, Nodes: 36, Flows: 4,
			FileBytes: 8000, Seed: seed, Deadline: 300 * time.Second,
		}
	}
	cases := []MeshTCPConfig{
		base(MeshGrid, mac.BA, 1),
		base(MeshDisk, mac.UA, 7),
		base(MeshGrid, mac.NA, 3),
	}
	if !short {
		cases = append(cases,
			base(MeshDisk, mac.DBA, 11),
			base(MeshGrid, mac.UA, 1234),
			base(MeshDisk, mac.BA, 99),
		)
	}
	return cases
}

// TestParallelOneShardBitIdentical: Shards=1 must reproduce the sequential
// engine byte for byte — same flows, counters, finish times and executed
// event count.
func TestParallelOneShardBitIdentical(t *testing.T) {
	for _, cfg := range equivCases(testing.Short()) {
		name := fmt.Sprintf("%s/%v/seed%d", cfg.Topology, cfg.Scheme, cfg.Seed)
		seqCfg, parCfg := cfg, cfg
		parCfg.Shards = 1
		seq := RunMeshTCP(seqCfg)
		par := RunMeshTCP(parCfg)
		if par.Shards != 1 || seq.Shards != 0 {
			t.Fatalf("%s: engine labels seq=%d par=%d", name, seq.Shards, par.Shards)
		}
		if hs, hp := hashMeshResult(seq), hashMeshResult(par); hs != hp {
			t.Errorf("%s: one-shard run diverged from sequential\nseq events=%d agg=%.3f\npar events=%d agg=%.3f",
				name, seq.EventsRun, seq.AggregateMbps, par.EventsRun, par.AggregateMbps)
		}
	}
}

// TestParallelDeterministicAcrossRuns: a K-shard run is a pure function of
// (config, K): identical hashes across repeats and GOMAXPROCS settings.
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	cases := equivCases(testing.Short())[:2]
	if raceEnabled {
		// Interleaving coverage, not statistical coverage: under the race
		// detector every run costs ~20x wall clock, and a K>1 run drains to
		// the deadline (no early halt), so wall clock scales with simulated
		// time. Hash stability doesn't need completed flows — a short
		// deadline probes the same synchronization paths at a fraction of
		// the cost.
		cases = []MeshTCPConfig{{Scheme: mac.BA, Topology: MeshGrid, Nodes: 16,
			Flows: 2, FileBytes: 2000, Seed: 1, Deadline: 5 * time.Second}}
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, cfg := range cases {
		for _, k := range []int{2, 4} {
			cfg.Shards = k
			name := fmt.Sprintf("%s/%v/seed%d/k%d", cfg.Topology, cfg.Scheme, cfg.Seed, k)
			runtime.GOMAXPROCS(4)
			ref := hashMeshResult(RunMeshTCP(cfg))
			for _, procs := range []int{1, 4} {
				runtime.GOMAXPROCS(procs)
				if h := hashMeshResult(RunMeshTCP(cfg)); h != ref {
					t.Errorf("%s: hash changed at GOMAXPROCS=%d", name, procs)
				}
			}
		}
	}
}

// TestParallelStatisticallyEquivalent: K>1 runs approximate cross-shard
// carrier sense inside the first lookahead window, so a single run is not
// bit-identical — collision realizations diverge chaotically, with the
// same magnitude as changing the seed (measured ±30-50% per run at this
// flow size). The statistical claim is therefore paired across seeds: the
// same seed set runs in both modes (identical flow plans), every flow must
// complete in both, per-run divergence must stay below the catastrophic
// threshold, and the cross-seed mean goodput and channel activity must
// agree within a tolerance well under the single-seed noise floor.
//
// The mesh is sized so shards stay coarser than the radio range (8x8 grid,
// k<=4 → strips two columns wide). Sharding finer than the radio range puts
// every node on a boundary and the lookahead-window carrier-sense
// approximation turns into a measurable systematic bias (34% mean goodput
// loss at 36 nodes / k=4 vs 9% at 64 nodes / k=4) — that regime is
// documented as out of scope, not asserted here.
func TestParallelStatisticallyEquivalent(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	families := []MeshTCPConfig{
		{Scheme: mac.BA, Topology: MeshGrid},
		{Scheme: mac.UA, Topology: MeshDisk},
		{Scheme: mac.NA, Topology: MeshGrid},
	}
	if testing.Short() {
		seeds = seeds[:4]
		families = families[:2]
	}
	if raceEnabled {
		// The race detector's value here is interleaving coverage, not
		// statistical power — the mean assertions are skipped and a trimmed
		// matrix keeps the race job's wall clock sane.
		seeds = seeds[:2]
		families = families[:1]
	}
	for _, fam := range families {
		fam.Nodes, fam.Flows, fam.FileBytes, fam.Deadline = 64, 4, 8000, 300*time.Second
		for _, k := range []int{2, 4} {
			name := fmt.Sprintf("%s/%s/k%d", fam.Topology, fam.Scheme.Name(), k)
			var seqAgg, parAgg float64
			var seqTx, parTx int
			for _, seed := range seeds {
				cfg := fam
				cfg.Seed = seed
				seq := RunMeshTCP(cfg)
				cfg.Shards = k
				par := RunMeshTCP(cfg)
				if par.FlowsDone != seq.FlowsDone {
					t.Errorf("%s seed=%d: FlowsDone %d, sequential %d", name, seed, par.FlowsDone, seq.FlowsDone)
				}
				if rel := relDiff(par.AggregateMbps, seq.AggregateMbps); rel > 0.75 {
					t.Errorf("%s seed=%d: catastrophic divergence: %.3f vs %.3f Mbps",
						name, seed, par.AggregateMbps, seq.AggregateMbps)
				}
				seqAgg += seq.AggregateMbps
				parAgg += par.AggregateMbps
				for i := range seq.Nodes {
					seqTx += seq.Nodes[i].MAC.DataTx
					parTx += par.Nodes[i].MAC.DataTx
				}
			}
			if raceEnabled {
				continue // too few seeds for the mean assertions to have power
			}
			if rel := relDiff(parAgg, seqAgg); rel > 0.25 {
				t.Errorf("%s: mean aggregate goodput %.3f vs %.3f Mbps over %d seeds (%.0f%% apart)",
					name, parAgg/float64(len(seeds)), seqAgg/float64(len(seeds)), len(seeds), rel*100)
			}
			if rel := relDiff(float64(parTx), float64(seqTx)); rel > 0.25 {
				t.Errorf("%s: total data transmissions %d vs %d over %d seeds (%.0f%% apart)",
					name, parTx, seqTx, len(seeds), rel*100)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// TestParallelRejectsUnsupportedModes: the sharded path must refuse
// configurations whose semantics it cannot reproduce.
func TestParallelRejectsUnsupportedModes(t *testing.T) {
	base := MeshTCPConfig{Scheme: mac.BA, Nodes: 16, Flows: 2, FileBytes: 2000,
		Seed: 1, Deadline: 60 * time.Second, Shards: 2}
	for name, mutate := range map[string]func(*MeshTCPConfig){
		"mobility":  func(c *MeshTCPConfig) { c.Mobility = MobilityWaypoint },
		"densescan": func(c *MeshTCPConfig) { c.DenseScan = true },
		"trace":     func(c *MeshTCPConfig) { c.TraceTo = &strings.Builder{} },
	} {
		cfg := base
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: sharded run did not panic", name)
				}
			}()
			RunMeshTCP(cfg)
		}()
	}
}
