package core

import (
	"reflect"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func quickMeshCfg() MeshTCPConfig {
	return MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: MeshGrid, Nodes: 9, Flows: 2,
		FileBytes: 10_000, Seed: 1,
		Deadline: 600 * time.Second,
	}
}

func TestRunMeshTCPGrid(t *testing.T) {
	res := RunMeshTCP(quickMeshCfg())
	if res.NodeCount != 9 {
		t.Fatalf("grid built %d nodes, want 9", res.NodeCount)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("planned %d flows, want 2", len(res.Flows))
	}
	if !res.Completed || res.FlowsDone != 2 {
		t.Fatalf("flows incomplete: %+v", res.Flows)
	}
	if res.AggregateMbps <= 0 || res.MinMbps <= 0 {
		t.Fatalf("no goodput: agg=%v min=%v", res.AggregateMbps, res.MinMbps)
	}
	for _, f := range res.Flows {
		if f.Hops < 2 {
			t.Errorf("flow %d->%d has %d hops, want >= MinHops(2)", f.Server, f.Client, f.Hops)
		}
	}
	// Someone must have forwarded: these are multi-hop flows.
	relays := 0
	for _, n := range res.Nodes {
		if n.Role == "relay" {
			relays++
		}
	}
	if relays == 0 {
		t.Error("no relay nodes in a multi-hop mesh run")
	}
}

func TestRunMeshTCPDeterministic(t *testing.T) {
	a := RunMeshTCP(quickMeshCfg())
	b := RunMeshTCP(quickMeshCfg())
	if a.EventsRun != b.EventsRun {
		t.Fatalf("EventsRun diverged: %d vs %d", a.EventsRun, b.EventsRun)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs produced different results")
	}
}

// TestRunMeshTCPDenseScanEquivalent pins the tentpole's end-to-end safety:
// the neighbor-indexed medium and the seed's dense-scan path produce
// bit-identical mesh simulations — same event count, same goodput floats,
// same per-node counters.
func TestRunMeshTCPDenseScanEquivalent(t *testing.T) {
	fast := RunMeshTCP(quickMeshCfg())
	cfg := quickMeshCfg()
	cfg.DenseScan = true
	dense := RunMeshTCP(cfg)
	if fast.EventsRun != dense.EventsRun {
		t.Fatalf("EventsRun diverged: indexed %d, dense %d", fast.EventsRun, dense.EventsRun)
	}
	if !reflect.DeepEqual(fast, dense) {
		t.Fatal("indexed and dense-scan mesh runs diverged")
	}
}

func TestRunMeshTCPChainsWithCrossTraffic(t *testing.T) {
	res := RunMeshTCP(MeshTCPConfig{
		Scheme: mac.UA, Rate: phy.Rate2600k,
		Topology: MeshChains, Chains: 3, ChainHops: 3, CrossFlows: 1,
		FileBytes: 8_000, Seed: 2,
		Deadline: 600 * time.Second,
	})
	if res.NodeCount != 12 {
		t.Fatalf("chains built %d nodes, want 12", res.NodeCount)
	}
	if len(res.Flows) != 4 { // 3 per-chain + 1 cross
		t.Fatalf("planned %d flows, want 4", len(res.Flows))
	}
	cross := res.Flows[3]
	if cross.Hops != 2 {
		t.Errorf("cross flow spans %d hops, want 2 (3 chains)", cross.Hops)
	}
	if !res.Completed {
		t.Fatalf("chains run incomplete: %+v", res.Flows)
	}
}

func TestRunMeshTCPDisk(t *testing.T) {
	res := RunMeshTCP(MeshTCPConfig{
		Scheme: mac.NA, Rate: phy.Rate2600k,
		Topology: MeshDisk, Nodes: 16, Flows: 2,
		FileBytes: 6_000, Seed: 3,
		Deadline: 600 * time.Second,
	})
	if res.NodeCount != 16 {
		t.Fatalf("disk built %d nodes, want 16", res.NodeCount)
	}
	if len(res.Flows) != 2 || !res.Completed {
		t.Fatalf("disk run incomplete: %+v", res.Flows)
	}
}

func quickMobilityCfg() MeshTCPConfig {
	cfg := quickMeshCfg()
	cfg.Nodes = 16
	cfg.Mobility = MobilityWaypoint
	cfg.Speed = 3
	cfg.Pause = time.Second
	cfg.MoveInterval = 500 * time.Millisecond
	return cfg
}

// A mobile run is a pure function of its config: same seed, same events,
// same goodput bits, same churn counters.
func TestRunMeshTCPMobilityDeterministic(t *testing.T) {
	a := RunMeshTCP(quickMobilityCfg())
	b := RunMeshTCP(quickMobilityCfg())
	if a.EventsRun != b.EventsRun {
		t.Fatalf("EventsRun diverged: %d vs %d", a.EventsRun, b.EventsRun)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical mobile configs produced different results")
	}
}

// Mobility must actually churn the topology and the routing tables, and
// the counters must report it; a static run must report all zeros.
func TestRunMeshTCPMobilityCounters(t *testing.T) {
	res := RunMeshTCP(quickMobilityCfg())
	if res.RouteRecomputes == 0 {
		t.Fatal("no route recomputes on a mobile run")
	}
	if res.LinkUps+res.LinkDowns == 0 {
		t.Error("no link churn at speed 3 with 500 ms updates")
	}
	if res.RouteFlaps == 0 {
		t.Error("no route flaps despite link churn")
	}

	static := RunMeshTCP(quickMeshCfg())
	if static.LinkUps != 0 || static.LinkDowns != 0 || static.RouteFlaps != 0 || static.RouteRecomputes != 0 {
		t.Errorf("static run reported churn: %+v %+v %+v %+v",
			static.LinkUps, static.LinkDowns, static.RouteFlaps, static.RouteRecomputes)
	}
}

// Drift is the other model; it must run end to end too.
func TestRunMeshTCPMobilityDrift(t *testing.T) {
	cfg := quickMobilityCfg()
	cfg.Mobility = MobilityDrift
	res := RunMeshTCP(cfg)
	if res.RouteRecomputes == 0 {
		t.Fatal("drift run scheduled no mobility ticks")
	}
}

func TestRunMeshTCPMobilityUnknownModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mobility model did not panic")
		}
	}()
	cfg := quickMeshCfg()
	cfg.Mobility = "teleport"
	RunMeshTCP(cfg)
}
