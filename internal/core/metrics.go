// Telemetry registration: the per-layer instrument catalog every Run
// entry point shares. Gauges read always-on layer counters at sampler
// ticks, so a metrics-on run adds only the tick events themselves;
// the sole hot-path instrument is the MAC's aggregate-size histogram,
// whose nil-check fast path costs one branch when metrics are off.
//
// Determinism: gauges are registered in a fixed order, read integer
// counters or ratios of them, and sums over node slices run in slice
// order — never over map iteration. Nothing here consumes scheduler
// randomness or mutates simulation state.
package core

import (
	"fmt"
	"time"

	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/telemetry"
)

// aggBodyBounds buckets aggregate body sizes (bytes). 5120 is the
// paper's §6.1 default aggregation cap, so the top finite buckets
// bracket it.
var aggBodyBounds = []float64{256, 512, 1024, 2048, 3072, 4096, 5120, 8192}

// registerRunMetrics wires the shared medium/MAC/network/TCP/sim
// instrument catalog for one scheduler's node set. Sharded runs call it
// once per shard with that shard's scheduler, medium, and owned nodes;
// sequential runs pass everything. stacks may be nil (UDP runs).
func registerRunMetrics(reg *telemetry.Registry, sched *sim.Scheduler, med *medium.Medium,
	nodes []*network.Node, stacks []*tcp.Stack, maxAggBytes int) {
	if reg == nil {
		return
	}
	reg.Gauge("medium.airtime_frac", func() float64 {
		now := sched.Now()
		if now <= 0 {
			return 0
		}
		return float64(med.Stats().AirtimeTotal) / float64(now)
	})
	reg.Gauge("medium.collisions", func() float64 {
		return float64(med.Stats().Collisions)
	})
	reg.Gauge("medium.foreign_tx", func() float64 {
		return float64(med.Stats().ForeignTx)
	})
	reg.Gauge("mac.queue_depth", func() float64 {
		total := 0
		for _, node := range nodes {
			b, u := node.MAC().QueueLen()
			total += b + u
		}
		return float64(total)
	})
	reg.Gauge("mac.agg_fill_ratio", func() float64 {
		var body, capacity int64
		for _, node := range nodes {
			c := node.MAC().Counters()
			body += c.BodyBytesTx
			capacity += int64(c.DataTx) * int64(maxAggBytes)
		}
		if capacity == 0 {
			return 0
		}
		return float64(body) / float64(capacity)
	})
	reg.Gauge("mac.retries", func() float64 {
		n := 0
		for _, node := range nodes {
			n += node.MAC().Counters().Retries
		}
		return float64(n)
	})
	reg.Gauge("mac.acks_tx", func() float64 {
		n := 0
		for _, node := range nodes {
			n += node.MAC().Counters().AckTx
		}
		return float64(n)
	})
	// The paper's core quantity, from both ends: broadcast-only
	// transmissions elicit no link ACK (mac.acks_suppressed), and the
	// network layer counts TCP ACKs it routed through the broadcast
	// queue instead of as unicast data (net.tcp_acks_bcast).
	reg.Gauge("mac.acks_suppressed", func() float64 {
		n := 0
		for _, node := range nodes {
			n += node.MAC().Counters().BroadcastOnly
		}
		return float64(n)
	})
	reg.Gauge("net.tcp_acks_bcast", func() float64 {
		n := 0
		for _, node := range nodes {
			n += node.Stats().AcksBcast
		}
		return float64(n)
	})
	if stacks != nil {
		reg.Gauge("tcp.open_conns", func() float64 {
			total := 0
			for _, st := range stacks {
				n, _ := st.OpenConns()
				total += n
			}
			return float64(total)
		})
		reg.Gauge("tcp.cwnd_bytes", func() float64 {
			total := 0
			for _, st := range stacks {
				_, cw := st.OpenConns()
				total += cw
			}
			return float64(total)
		})
		reg.Gauge("tcp.rto_events", func() float64 {
			n := 0
			for _, st := range stacks {
				n += st.Totals().Timeouts
			}
			return float64(n)
		})
		reg.Gauge("tcp.retransmits", func() float64 {
			n := 0
			for _, st := range stacks {
				n += st.Totals().Retransmits
			}
			return float64(n)
		})
	}
	reg.Gauge("sim.events_run", func() float64 {
		return float64(sched.EventsRun())
	})
	reg.Gauge("sim.pending_events", func() float64 {
		_, _, pending := sched.PoolStats()
		return float64(pending)
	})
	reg.Gauge("sim.pool_slots", func() float64 {
		slots, _, _ := sched.PoolStats()
		return float64(slots)
	})
	h := reg.Histogram("mac.agg_body_bytes", aggBodyBounds)
	for _, node := range nodes {
		node.MAC().SetAggSizeHist(h)
	}
}

// registerFlowMetrics adds the per-flow stall gauges of a mesh run: the
// simulated time since each started, unfinished flow last made payload
// progress.
func registerFlowMetrics(reg *telemetry.Registry, sched *sim.Scheduler, flows []*meshFlow) {
	if reg == nil {
		return
	}
	for i, f := range flows {
		f := f
		reg.Gauge(fmt.Sprintf("mesh.flow%d.stall_s", i), func() float64 {
			if !f.started || f.done || f.killed {
				return 0
			}
			return time.Duration(sched.Now() - f.lastProgress).Seconds()
		})
	}
}
