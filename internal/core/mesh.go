// Mesh experiments: many concurrent TCP flows over generated
// multi-collision-domain topologies (grid, random disk graph, parallel
// chains with cross traffic). This is the scenario family the paper's
// 9-node testbed could not reach and the neighbor-indexed medium exists
// for: per-transmission cost tracks node degree, so networks of hundreds
// of nodes simulate at the same per-event speed as the paper's chains.
//
// With Mobility set the topology itself becomes a function of time: a
// seeded motion model moves the nodes, links come and go with distance
// through the medium's incremental connectivity paths, and shortest-path
// routes are recomputed periodically with route-flap accounting — the
// regime where hidden-terminal and aggregate-length effects change
// character (Sharon's aggregation-scheduling work over rapidly varying
// channels, and TCP-over-mesh fragility generally).
package core

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/routing"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/telemetry"
	"aggmac/internal/topology"
)

// Mesh topology kinds.
const (
	MeshGrid   = "grid"   // k×k grid, unit spacing
	MeshDisk   = "disk"   // seeded uniform placement, disk connectivity
	MeshChains = "chains" // parallel linear chains, optional cross traffic
)

// Mobility model names, re-exported from internal/topology.
const (
	MobilityWaypoint = topology.MobilityWaypoint
	MobilityDrift    = topology.MobilityDrift
)

// MeshTCPConfig describes a many-flow TCP experiment on a generated mesh.
type MeshTCPConfig struct {
	Scheme mac.Scheme
	Rate   phy.Rate
	// Topology is MeshGrid (default), MeshDisk, or MeshChains.
	Topology string
	// Nodes is the node budget for grid/disk layouts (default 25). Grids
	// round down to the largest k×k that fits.
	Nodes int
	// Chains/ChainHops shape the MeshChains layout (defaults 4 chains of
	// 4 hops); Nodes is ignored there.
	Chains    int
	ChainHops int
	// RowSpacing separates the chains (0 = 1.0: adjacent chains share
	// spectrum and cross-chain links exist).
	RowSpacing float64
	// Flows is the number of concurrent TCP sessions (default max(2,
	// nodes/10)). Grid/disk flows are sampled seed-deterministically among
	// pairs at least MinHops apart; chains run one flow down each chain
	// (plus CrossFlows column flows).
	Flows int
	// CrossFlows adds vertical cross-traffic sessions on MeshChains.
	CrossFlows int
	// MinHops is the minimum route length for sampled flows (default 2).
	MinHops int
	// Radio overrides the distance-derived connectivity model.
	Radio topology.RadioModel
	// FileBytes per flow; defaults to PaperFileBytes.
	FileBytes int
	// MaxAggBytes caps aggregation; defaults to 5120.
	MaxAggBytes int
	// DenseScan forces the medium's O(N) dense-scan oracle instead of the
	// neighbor index — the baseline the scaling benches compare against.
	DenseScan bool
	// SparseRoutes plans flows from BFS hop distances and installs routes
	// only toward the flows' endpoints (one BFS tree per distinct
	// endpoint) instead of the generators' all-pairs install — O(D·(N+E))
	// time and O(D·N) route entries instead of O(N²), the remaining
	// quadratic startup term at 10k+ nodes. Behaviorally identical for
	// mesh runs: every packet a run can carry is addressed to a flow
	// endpoint, so every forwarding decision — including BA's
	// overheard-broadcast-ACK forwarding — reads the same table entry the
	// full install would have written (pinned by the sparse-routes
	// equivalence test). Static topologies only: mobility and fault
	// recovery rebuild full tables and are rejected.
	SparseRoutes bool
	// Shards selects the sharded parallel engine: the mesh is partitioned
	// into Shards contiguous spatial domains, each running its own event
	// loop, synchronized conservatively with lookahead ShardLookahead (see
	// mesh_parallel.go). 0 (default) runs the sequential engine. Shards: 1
	// is byte-identical to sequential; Shards > 1 is statistically
	// equivalent (cross-shard carrier sense inside the first lookahead
	// window of a frame is approximated) and deterministic for a given
	// shard count. Static topologies only: Mobility, DenseScan and TraceTo
	// are rejected.
	Shards int
	// Mobility selects a node-motion model: "" (static, the default),
	// MobilityWaypoint or MobilityDrift. Moving nodes change link
	// existence and SNR with distance; every MoveInterval the positions
	// advance, link state is reconciled through the medium's incremental
	// paths, and shortest-path routes are recomputed.
	Mobility string
	// Speed is node speed in spacing units per simulated second
	// (default 1).
	Speed float64
	// Pause is the waypoint model's dwell time at each target.
	Pause time.Duration
	// MoveInterval is the mobility tick interval (default 1 s). Faults
	// share it: one dynamics tick steps motion and failures together.
	MoveInterval time.Duration
	// Faults injects seeded failures (node crashes, link flaps, scheduled
	// partitions, SNR bursts; see internal/faults). nil injects nothing. A
	// crashed node's MAC is detached and reset, its TCP connections are
	// aborted in place, and flows terminating at it are marked killed;
	// links cut by faults reconcile through the same incremental paths
	// mobility uses. Sequential engine only: rejected with Shards > 0.
	Faults *faults.Config
	// WallBudget bounds the run's real elapsed time; past it the scheduler
	// panics with *sim.WallBudgetError (the runner converts that into a
	// per-run error). 0 means no watchdog.
	WallBudget time.Duration
	// Tweak adjusts every node's final MAC options.
	Tweak func(*mac.Options)
	// TraceTo streams the channel timeline to the writer; TraceNodes
	// restricts it to events touching the listed nodes; TraceFormat
	// selects TraceText (default) or TraceJSONL.
	TraceTo     io.Writer
	TraceNodes  []int
	TraceFormat string
	// Metrics samples the telemetry catalog on simulated-time ticks —
	// per shard on parallel runs. nil schedules nothing, so the event
	// sequence and golden hashes are untouched.
	Metrics *telemetry.Recorder
	// ShardTrace, with Shards > 0, receives a Chrome trace-event file of
	// per-shard run/blocked wall-clock spans after the run — the shard
	// imbalance view. Wall-clock by nature, so never deterministic.
	ShardTrace io.Writer
	// TCP overrides the transport config; zero value means defaults.
	TCP tcp.Config
	// Phy overrides the channel constants; nil means calibrated defaults.
	Phy  *phy.Params
	Seed int64
	// Deadline bounds simulated time (default 1200 s).
	Deadline time.Duration
}

// MeshFlowReport is one flow's outcome.
type MeshFlowReport struct {
	Server, Client network.NodeID
	// Hops is the route length at setup time.
	Hops int
	Mbps float64
	Done bool
	// Finish is when the last payload byte arrived.
	Finish time.Duration
	// Killed marks a flow terminated by a fault at one of its endpoints.
	Killed bool
	// Stall is the flow's longest gap between payload progress events
	// (unfinished flows include the tail gap to the end of the run).
	Stall time.Duration
}

// MeshResult is what a mesh experiment measures.
type MeshResult struct {
	// AggregateMbps sums every flow's goodput (incomplete flows count 0).
	AggregateMbps float64
	// MinMbps/MeanMbps summarize per-flow goodput.
	MinMbps, MeanMbps float64
	// Flows holds per-flow detail.
	Flows []MeshFlowReport
	// FlowsDone counts sessions that finished within the deadline.
	FlowsDone int
	Completed bool
	// Elapsed is the slowest completed flow's finish time.
	Elapsed time.Duration
	// EventsRun pins the executed-event count for determinism tests (the
	// sum over shards on parallel runs).
	EventsRun uint64
	// Shards records the engine that produced the run: 0 for the
	// sequential scheduler, otherwise the parallel shard count.
	Shards int
	// Topology shape: NodeCount is fixed; LinkCount and AvgDegree are
	// measured at the end of the run (mobility churns them).
	NodeCount, LinkCount int
	AvgDegree            float64
	// Mobility churn (all zero on static runs): LinkUps/LinkDowns count
	// links that came into/fell out of radio range, RouteFlaps counts
	// route-table entries changed by the periodic recomputation, and
	// RouteRecomputes counts the recompute rounds that ran — ticks whose
	// link set did not change skip the BFS pass entirely.
	LinkUps, LinkDowns int
	RouteFlaps         int
	RouteRecomputes    int
	// Fault-injection outcome (all zero, with Availability 1, when Faults
	// is unset). NodeCrashes/NodeRecoveries count observed node state
	// changes; FaultLinkDowns/FaultLinkUps count link-flap edges;
	// PartitionsStarted/PartitionsHealed count partition windows opening
	// and closing; SNRBursts counts degradation bursts that began.
	NodeCrashes, NodeRecoveries         int
	FaultLinkDowns, FaultLinkUps        int
	PartitionsStarted, PartitionsHealed int
	SNRBursts                           int
	// FlowsKilledByFault counts flows whose endpoint crashed mid-transfer.
	FlowsKilledByFault int
	// Availability is the time-averaged fraction of nodes that were up.
	Availability float64
	// MeanHealLatency averages, over healed partitions, the delay between
	// the scheduled window end and the dynamics tick that restored links —
	// the reconnection latency the periodic reconcile imposes.
	MeanHealLatency time.Duration
	// MaxFlowStall/MeanFlowStall summarize per-flow Stall values — how
	// long traffic froze while routes repaired around failures.
	MaxFlowStall, MeanFlowStall time.Duration
	// Nodes holds per-node counters (role is "server"/"client"/"relay" by
	// the node's part in the traffic, else "idle").
	Nodes []NodeReport
}

func (c *MeshTCPConfig) fill() {
	if c.Topology == "" {
		c.Topology = MeshGrid
	}
	if c.Nodes == 0 {
		c.Nodes = 25
	}
	if c.Chains == 0 {
		c.Chains = 4
	}
	if c.ChainHops == 0 {
		c.ChainHops = 4
	}
	if c.MinHops == 0 {
		c.MinHops = 2
	}
	if c.FileBytes == 0 {
		c.FileBytes = PaperFileBytes
	}
	if c.MaxAggBytes == 0 {
		c.MaxAggBytes = 5120
	}
	if c.Deadline == 0 {
		c.Deadline = 1200 * time.Second
	}
}

func (c *MeshTCPConfig) phyParams() phy.Params {
	if c.Phy != nil {
		return *c.Phy
	}
	return phy.DefaultParams()
}

// optsFor returns node i's MAC options (shared by the sequential build and
// the sharded rebuild, which must configure identical MACs).
func (c *MeshTCPConfig) optsFor(i, n int) mac.Options {
	opts := mac.DefaultOptions(c.Scheme, c.Rate)
	opts.MaxAggBytes = c.MaxAggBytes
	if c.Tweak != nil {
		c.Tweak(&opts)
	}
	return opts
}

// buildMesh constructs the configured topology.
func (c *MeshTCPConfig) buildMesh() *topology.Mesh {
	mcfg := topology.MeshConfig{
		Config: topology.Config{
			Seed:    c.Seed,
			Phy:     c.phyParams(),
			OptsFor: c.optsFor,
		},
		Radio:       c.Radio,
		DeferRoutes: c.SparseRoutes,
	}
	switch c.Topology {
	case MeshGrid:
		k := int(math.Sqrt(float64(c.Nodes)))
		if k < 2 {
			k = 2
		}
		return topology.NewGrid(k, mcfg)
	case MeshDisk:
		return topology.NewRandomDisk(c.Nodes, mcfg)
	case MeshChains:
		return topology.NewParallelChains(c.Chains, c.ChainHops, c.RowSpacing, mcfg)
	default:
		panic(fmt.Sprintf("core: unknown mesh topology %q", c.Topology))
	}
}

// meshFlow is one planned session.
type meshFlow struct {
	server, client network.NodeID
	hops           int
	port           uint16
	done           bool
	killed         bool
	finish         sim.Time
	started        bool
	lastProgress   sim.Time
	maxStall       time.Duration
}

// planFlows picks the experiment's sessions deterministically from the
// seed: chains get one flow along each chain plus CrossFlows column flows;
// grid/disk sample distinct multi-hop pairs from a placement-independent
// stream.
func (c *MeshTCPConfig) planFlows(m *topology.Mesh) []*meshFlow {
	dist := c.hopDist(m)
	var flows []*meshFlow
	addFlow := func(srv, cli int) {
		flows = append(flows, &meshFlow{
			server: network.NodeID(srv),
			client: network.NodeID(cli),
			hops:   dist(srv, cli),
			port:   uint16(8000 + len(flows)),
		})
	}
	if c.Topology == MeshChains {
		n := c.Flows
		if n <= 0 || n > c.Chains {
			n = c.Chains
		}
		for i := 0; i < n; i++ {
			addFlow(topology.ChainNode(i, 0, c.ChainHops), topology.ChainNode(i, c.ChainHops, c.ChainHops))
		}
		cols := c.ChainHops + 1
		for x := 0; x < c.CrossFlows; x++ {
			col := (x * cols) / (c.CrossFlows + 1) % cols
			srv := topology.ChainNode(0, col, c.ChainHops)
			cli := topology.ChainNode(c.Chains-1, col, c.ChainHops)
			// A single chain has no "across", and chains spaced beyond
			// radio range have no vertical route: a flow that can never
			// connect would just burn the deadline, so skip it.
			if srv == cli || dist(srv, cli) < 1 {
				continue
			}
			addFlow(srv, cli)
		}
		return flows
	}

	n := len(m.Nodes)
	want := c.Flows
	if want <= 0 {
		want = n / 10
		if want < 2 {
			want = 2
		}
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x666c6f77)) // "flow": decoupled from sim and placement streams
	used := make(map[[2]int]bool)
	for tries := 0; len(flows) < want && tries < 200*want; tries++ {
		srv, cli := rng.Intn(n), rng.Intn(n)
		if srv == cli || used[[2]int{srv, cli}] {
			continue
		}
		if d := dist(srv, cli); d < c.MinHops {
			continue
		}
		used[[2]int{srv, cli}] = true
		addFlow(srv, cli)
	}
	return flows
}

// hopDist returns the distance function planFlows samples with: the
// installed-route walk normally, or per-source-cached BFS over the
// adjacency when SparseRoutes deferred route installation. The two agree
// exactly — HopDistance walks all-pairs shortest-path routes, so both
// report the hop-count shortest distance, -1 where unreachable — which is
// what makes sparse runs plan the identical flow set.
func (c *MeshTCPConfig) hopDist(m *topology.Mesh) func(a, b int) int {
	if !c.SparseRoutes {
		return m.HopDistance
	}
	n := len(m.Nodes)
	adj := m.Adjacency()
	cache := make(map[int][]int)
	return func(a, b int) int {
		d, ok := cache[a]
		if !ok {
			d = routing.Distances(n, adj, a)
			cache[a] = d
		}
		return d[b]
	}
}

// flowEndpoints returns the sorted distinct node ids appearing as a flow
// server or client — the only destinations a mesh run ever addresses.
func flowEndpoints(flows []*meshFlow) []int {
	seen := make(map[int]bool, 2*len(flows))
	var ids []int
	for _, f := range flows {
		for _, v := range [2]network.NodeID{f.server, f.client} {
			if !seen[int(v)] {
				seen[int(v)] = true
				ids = append(ids, int(v))
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// mobilityChurn accumulates the topology-dynamics counters of a run:
// mobility link churn plus fault-injection observations.
type mobilityChurn struct {
	LinkUps, LinkDowns int
	RouteFlaps         int
	Recomputes         int

	Crashes, Recoveries          int
	FaultLinkDowns, FaultLinkUps int
	PartStarts, PartHeals        int
	Bursts                       int
	HealLatency                  time.Duration
	set                          *faults.Set // nil when faults are off
}

// dynamicsHooks let the run layer react to observed node state changes
// before the tick's link reconcile runs.
type dynamicsHooks struct {
	onCrash, onRecover func(node int)
}

// startDynamics wires the topology-dynamics tick shared by RunMeshTCP and
// RunScenario: a periodic event on the mesh's scheduler advances node
// positions and fault processes together, reconciles link state through
// the medium's incremental SetConnected/SetSNR paths, and recomputes
// shortest-path routes with flap accounting. With neither mobility nor
// faults configured it schedules nothing, so a static run's event
// sequence — and golden hash — is untouched; fault processes draw only
// from their private streams, so enabling them perturbs no other draw.
func startDynamics(m *topology.Mesh, model string, speed float64, pause, interval time.Duration,
	fcfg *faults.Config, seed int64, hooks dynamicsHooks) *mobilityChurn {
	churn := &mobilityChurn{}
	var mob topology.Model
	if model != "" {
		var err error
		mob, err = topology.NewMobility(model, m, speed, pause, seed)
		if err != nil {
			panic(err.Error())
		}
	}
	if fcfg.Enabled() {
		churn.set = faults.New(*fcfg.Clone(), m, seed)
		m.SetOverlay(churn.set)
	}
	if mob == nil && churn.set == nil {
		return churn
	}
	iv := interval
	if iv <= 0 {
		iv = time.Second
	}
	var tick func()
	tick = func() {
		now := m.Sched.Now()
		pos := m.Pos
		if mob != nil {
			pos = mob.Step(now)
		}
		if churn.set != nil {
			fd := churn.set.Step(now)
			churn.Crashes += len(fd.Crashed)
			churn.Recoveries += len(fd.Recovered)
			churn.FaultLinkDowns += fd.FlapsDown
			churn.FaultLinkUps += fd.FlapsUp
			churn.PartStarts += fd.PartitionsStarted
			churn.PartHeals += fd.PartitionsHealed
			churn.HealLatency += fd.HealLatency
			churn.Bursts += fd.BurstsStarted
			// Hooks run before the reconcile: a crashed node's MAC and
			// transport die in the same tick its links are cut.
			for _, i := range fd.Crashed {
				if hooks.onCrash != nil {
					hooks.onCrash(i)
				}
			}
			for _, i := range fd.Recovered {
				if hooks.onRecover != nil {
					hooks.onRecover(i)
				}
			}
		}
		delta := m.UpdateLinks(pos)
		churn.LinkUps += delta.Up
		churn.LinkDowns += delta.Down
		// Hop-count routes only depend on link existence, and a
		// recompute over an unchanged graph provably changes nothing
		// (same BFS, same tie-breaks) — skip the O(N·(N+E)) pass on
		// ticks that moved nodes without crossing a range boundary.
		if delta.Up+delta.Down > 0 {
			churn.RouteFlaps += routing.RecomputeShortestPaths(m.Nodes, m.Adjacency())
			churn.Recomputes++
		}
		m.Sched.After(iv, "mesh:mobility", tick)
	}
	m.Sched.After(iv, "mesh:mobility", tick)
	return churn
}

// RunMeshTCP executes the experiment: build the mesh, start every flow
// (staggered a few hundred µs apart so the initial SYNs do not collide on
// identical backoff draws), run to completion or deadline. With Shards set
// the run executes on the sharded parallel engine instead of the
// sequential scheduler (see mesh_parallel.go).
func RunMeshTCP(cfg MeshTCPConfig) MeshResult {
	cfg.fill()
	tcfg := cfg.TCP
	if tcfg.MSS == 0 {
		tcfg = tcp.DefaultConfig()
	}
	if cfg.SparseRoutes && (cfg.Mobility != "" || cfg.Faults.Enabled()) {
		panic("core: SparseRoutes requires a static topology (mobility and fault recovery rebuild full route tables)")
	}
	if cfg.Shards > 0 {
		return runMeshTCPSharded(cfg, tcfg)
	}

	m := cfg.buildMesh()
	if cfg.DenseScan {
		m.Medium.SetDenseScan(true)
	}
	if obs := traceObserver(cfg.TraceTo, cfg.TraceNodes, cfg.TraceFormat); obs != nil {
		m.Medium.SetObserver(obs)
	}
	flows := cfg.planFlows(m)
	if cfg.SparseRoutes {
		routing.InstallPathsToward(m.Nodes, m.Adjacency(), flowEndpoints(flows))
	}

	stacks := make([]*tcp.Stack, len(m.Nodes))
	for i, node := range m.Nodes {
		stacks[i] = tcp.NewStack(m.Sched, node, tcfg)
	}

	killFlow := wireFlows(&cfg, flows, stacks,
		func(network.NodeID) *sim.Scheduler { return m.Sched }, m.Sched.Halt)

	churn := startDynamics(m, cfg.Mobility, cfg.Speed, cfg.Pause, cfg.MoveInterval,
		cfg.Faults, cfg.Seed, dynamicsHooks{
			onCrash: func(node int) {
				mc := m.Nodes[node].MAC()
				mc.SetDown(true)
				mc.Reset()
				stacks[node].Abort()
				killFlow(network.NodeID(node))
			},
			onRecover: func(node int) { m.Nodes[node].MAC().SetDown(false) },
		})

	if cfg.Metrics != nil {
		reg := cfg.Metrics.Registry(0)
		registerRunMetrics(reg, m.Sched, m.Medium, m.Nodes, stacks, cfg.MaxAggBytes)
		registerFlowMetrics(reg, m.Sched, flows)
		reg.Start(m.Sched, cfg.Metrics.Interval(), cfg.Deadline)
	}

	if cfg.WallBudget > 0 {
		m.Sched.SetWallBudget(cfg.WallBudget)
	}
	m.Sched.RunUntil(cfg.Deadline)

	return assembleMeshResult(&cfg, flows, m.Nodes, m.LinkCount, m.AvgDegree(), churn,
		m.Sched.EventsRun(), m.Sched.Now())
}

// wireFlows installs every planned flow: a listener plus completion
// bookkeeping on the client's scheduler, and a staggered connect event on
// the server's. onAllDone (when non-nil) fires as the last flow completes;
// parallel runs with more than one shard pass nil — flow completions land
// on different goroutines there, and the run drains to the deadline
// deterministically instead of halting early. The returned func marks
// every live flow terminating at the given node as fault-killed (the
// crash hook calls it); killed flows count toward onAllDone so a run
// whose remaining flows all die still halts early.
func wireFlows(cfg *MeshTCPConfig, flows []*meshFlow, stacks []*tcp.Stack,
	schedFor func(network.NodeID) *sim.Scheduler, onAllDone func()) func(network.NodeID) {
	remaining := len(flows)
	settle := func(f *meshFlow) {
		if onAllDone != nil {
			remaining--
			if remaining == 0 {
				onAllDone()
			}
		}
	}
	for i, f := range flows {
		i, f := i, f
		cli := schedFor(f.client)
		lis := stacks[f.client].Listen(f.port)
		var got int64
		lis.Setup = func(conn *tcp.Conn) {
			conn.OnData = func(b []byte) {
				got += int64(len(b))
				now := cli.Now()
				if gap := now - f.lastProgress; gap > f.maxStall {
					f.maxStall = gap
				}
				f.lastProgress = now
				if !f.done && !f.killed && got >= int64(cfg.FileBytes) {
					f.done = true
					f.finish = now
					settle(f)
				}
			}
			conn.OnPeerClose = func() { conn.Close() }
		}
		start := time.Duration(i) * 150 * time.Microsecond
		schedFor(f.server).After(start, "mesh:connect", func() {
			f.started = true
			f.lastProgress = schedFor(f.server).Now()
			conn := stacks[f.server].Connect(f.client, f.port)
			data := make([]byte, cfg.FileBytes)
			conn.OnEstablished = func() {
				_ = conn.Send(data)
				conn.Close()
			}
		})
	}
	return func(node network.NodeID) {
		for _, f := range flows {
			if f.done || f.killed || (f.server != node && f.client != node) {
				continue
			}
			f.killed = true
			settle(f)
		}
	}
}

// assembleMeshResult turns the finished run's state into a MeshResult;
// shared by the sequential and sharded paths. end is the run's final
// simulated time, used for availability and tail-stall accounting.
func assembleMeshResult(cfg *MeshTCPConfig, flows []*meshFlow, nodes []*network.Node,
	linkCount int, avgDegree float64, churn *mobilityChurn, eventsRun uint64, end sim.Time) MeshResult {
	res := MeshResult{
		Completed:         true,
		EventsRun:         eventsRun,
		NodeCount:         len(nodes),
		LinkCount:         linkCount,
		AvgDegree:         avgDegree,
		LinkUps:           churn.LinkUps,
		LinkDowns:         churn.LinkDowns,
		RouteFlaps:        churn.RouteFlaps,
		RouteRecomputes:   churn.Recomputes,
		NodeCrashes:       churn.Crashes,
		NodeRecoveries:    churn.Recoveries,
		FaultLinkDowns:    churn.FaultLinkDowns,
		FaultLinkUps:      churn.FaultLinkUps,
		PartitionsStarted: churn.PartStarts,
		PartitionsHealed:  churn.PartHeals,
		SNRBursts:         churn.Bursts,
		Availability:      1,
	}
	if churn.set != nil {
		res.Availability = churn.set.Availability(end)
	}
	if churn.PartHeals > 0 {
		res.MeanHealLatency = churn.HealLatency / time.Duration(churn.PartHeals)
	}
	res.MinMbps = math.Inf(1)
	for _, f := range flows {
		rep := MeshFlowReport{Server: f.server, Client: f.client, Hops: f.hops,
			Done: f.done, Killed: f.killed}
		if f.started && !f.done && !f.killed {
			// The tail gap — last progress to the end of the run — is a
			// stall too: a flow frozen by an unhealed failure shows up
			// here, not as a mid-run gap. (A killed flow stops accruing
			// stall at its endpoint's crash.)
			if gap := end - f.lastProgress; gap > f.maxStall {
				f.maxStall = gap
			}
		}
		rep.Stall = f.maxStall
		if rep.Stall > res.MaxFlowStall {
			res.MaxFlowStall = rep.Stall
		}
		res.MeanFlowStall += rep.Stall
		if f.killed {
			res.FlowsKilledByFault++
		}
		if f.done {
			rep.Finish = time.Duration(f.finish)
			rep.Mbps = float64(cfg.FileBytes) * 8 / rep.Finish.Seconds() / 1e6
			res.FlowsDone++
			if rep.Finish > res.Elapsed {
				res.Elapsed = rep.Finish
			}
		} else {
			res.Completed = false
		}
		res.AggregateMbps += rep.Mbps
		if rep.Mbps < res.MinMbps {
			res.MinMbps = rep.Mbps
		}
		res.Flows = append(res.Flows, rep)
	}
	if len(flows) > 0 {
		res.MeanFlowStall /= time.Duration(len(flows))
	}
	if len(flows) > 0 {
		res.MeanMbps = res.AggregateMbps / float64(len(flows))
	} else {
		res.MinMbps = 0
	}

	role := make([]string, len(nodes))
	for i := range role {
		role[i] = "idle"
	}
	for i, node := range nodes {
		if node.Stats().Forwarded > 0 {
			role[i] = "relay"
		}
	}
	for _, f := range flows {
		role[f.client] = "client"
	}
	for _, f := range flows {
		role[f.server] = "server"
	}
	for i, node := range nodes {
		res.Nodes = append(res.Nodes, NodeReport{
			ID:            i,
			Role:          role[i],
			MAC:           node.MAC().Counters(),
			Net:           node.Stats(),
			PreambleBytes: node.MAC().PreambleBytesPerTx(),
		})
	}
	return res
}
