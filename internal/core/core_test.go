package core

import (
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

func TestRunTCPCompletes(t *testing.T) {
	r := RunTCP(TCPConfig{Scheme: mac.UA, Rate: phy.Rate1300k, Hops: 2, Seed: 1})
	if !r.Completed {
		t.Fatal("2-hop UA transfer did not complete")
	}
	if r.ThroughputMbps <= 0 || r.ThroughputMbps > phy.Rate1300k.Mbps() {
		t.Fatalf("throughput %v Mbps out of range", r.ThroughputMbps)
	}
	if len(r.Nodes) != 3 {
		t.Fatalf("%d node reports, want 3", len(r.Nodes))
	}
	if r.Nodes[0].Role != "server" || r.Nodes[1].Role != "relay" || r.Nodes[2].Role != "client" {
		t.Fatalf("roles: %s/%s/%s", r.Nodes[0].Role, r.Nodes[1].Role, r.Nodes[2].Role)
	}
	// The run halts the instant the client has the whole file, so check
	// delivery at the receiver (the sender may still await final ACKs).
	if r.Sessions[0].Receiver.BytesDelivered < PaperFileBytes {
		t.Errorf("receiver delivered only %d bytes", r.Sessions[0].Receiver.BytesDelivered)
	}
}

func TestRunTCPDeterministicPerSeed(t *testing.T) {
	a := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1950k, Hops: 2, Seed: 7})
	b := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1950k, Hops: 2, Seed: 7})
	if a.ThroughputMbps != b.ThroughputMbps || a.Elapsed != b.Elapsed {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.ThroughputMbps, a.Elapsed, b.ThroughputMbps, b.Elapsed)
	}
	c := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1950k, Hops: 2, Seed: 8})
	if a.Elapsed == c.Elapsed {
		t.Log("different seeds produced identical runs (possible but unlikely)")
	}
}

// TestSchemeOrdering is the paper's headline claim: at every rate,
// UA > NA and BA >= UA (within noise) for 2-hop TCP, with the gaps growing
// as the rate rises (Figures 8 and 11).
func TestSchemeOrdering(t *testing.T) {
	var naPrev, uaPrev float64
	for _, rate := range phy.ExperimentRates() {
		na := RunTCP(TCPConfig{Scheme: mac.NA, Rate: rate, Hops: 2, Seed: 11}).ThroughputMbps
		ua := RunTCP(TCPConfig{Scheme: mac.UA, Rate: rate, Hops: 2, Seed: 11}).ThroughputMbps
		ba := RunTCP(TCPConfig{Scheme: mac.BA, Rate: rate, Hops: 2, Seed: 11}).ThroughputMbps
		if ua <= na {
			t.Errorf("at %v: UA (%.3f) not above NA (%.3f)", rate, ua, na)
		}
		if ba < ua*0.98 {
			t.Errorf("at %v: BA (%.3f) clearly below UA (%.3f)", rate, ba, ua)
		}
		// Gaps grow with rate (check at the top rate).
		if rate == phy.Rate2600k {
			if (ua-na)/na < 0.20 {
				t.Errorf("UA/NA gap at 2.6 Mbps only %.1f%%, paper shows large gains",
					100*(ua-na)/na)
			}
			if (ba-ua)/ua < 0.02 {
				t.Errorf("BA/UA gap at 2.6 Mbps only %.1f%%, paper shows ~10%%",
					100*(ba-ua)/ua)
			}
		}
		naPrev, uaPrev = na, ua
	}
	_, _ = naPrev, uaPrev
}

func TestHopCountReducesThroughput(t *testing.T) {
	h2 := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2, Seed: 13}).ThroughputMbps
	h3 := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 3, Seed: 13}).ThroughputMbps
	if h3 >= h2 {
		t.Fatalf("3-hop (%.3f) not below 2-hop (%.3f)", h3, h2)
	}
}

func TestStarRunsTwoSessions(t *testing.T) {
	r := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Star: true, Seed: 17,
		FileBytes: 100_000})
	if !r.Completed {
		t.Fatal("star sessions did not complete")
	}
	if len(r.SessionMbps) != 2 {
		t.Fatalf("%d sessions, want 2", len(r.SessionMbps))
	}
	// Worst-case selection.
	worst := r.SessionMbps[0]
	if r.SessionMbps[1] < worst {
		worst = r.SessionMbps[1]
	}
	if r.ThroughputMbps != worst {
		t.Fatalf("ThroughputMbps %v != worst session %v", r.ThroughputMbps, worst)
	}
	// The centre forwarded both streams.
	center := r.Nodes[1]
	if center.Role != "center" || center.Net.Forwarded == 0 {
		t.Fatalf("centre report wrong: %+v", center.Role)
	}
}

// TestStarBAAggregatesAcrossSessions reproduces the §6.4.5 star insight:
// under BA the centre combines TCP ACKs for different servers with data
// for the client in single frames, which UA cannot (Table 5: BA frame size
// grows in the star, UA's does not).
func TestStarBAAggregatesAcrossSessions(t *testing.T) {
	ua := RunTCP(TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Star: true, Seed: 19, FileBytes: 100_000})
	ba := RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Star: true, Seed: 19, FileBytes: 100_000})
	uaC, baC := ua.Nodes[1].MAC, ba.Nodes[1].MAC
	if baC.AvgFrameBytes() <= uaC.AvgFrameBytes() {
		t.Errorf("star centre: BA frames (%.0f B) not larger than UA frames (%.0f B)",
			baC.AvgFrameBytes(), uaC.AvgFrameBytes())
	}
	if baC.BroadcastSubTx == 0 {
		t.Error("star centre sent no broadcast subframes under BA")
	}
}

func TestForwardAggregationAblation(t *testing.T) {
	// Fig 14: BA without forward aggregation sits between NA and BA, and
	// the gap to full BA grows with rate.
	noFwd := mac.BA
	noFwd.DisableForwardAggregation = true
	for _, rate := range []phy.Rate{phy.Rate650k, phy.Rate2600k} {
		na := RunTCP(TCPConfig{Scheme: mac.NA, Rate: rate, Hops: 3, Seed: 23}).ThroughputMbps
		bo := RunTCP(TCPConfig{Scheme: noFwd, Rate: rate, Hops: 3, Seed: 23}).ThroughputMbps
		ba := RunTCP(TCPConfig{Scheme: mac.BA, Rate: rate, Hops: 3, Seed: 23}).ThroughputMbps
		if !(na <= bo*1.02 && bo <= ba*1.02) {
			t.Errorf("at %v: ordering NA(%.3f) <= BA-noFwd(%.3f) <= BA(%.3f) violated",
				rate, na, bo, ba)
		}
	}
}

func TestRelayDetailMetrics(t *testing.T) {
	// Table 3 shape: frame size NA < UA <= BA; TX count NA > UA > BA;
	// size overhead NA > UA >= BA.
	na := Relay(RunTCP(TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2, Seed: 29}).Nodes)
	ua := Relay(RunTCP(TCPConfig{Scheme: mac.UA, Rate: phy.Rate2600k, Hops: 2, Seed: 29}).Nodes)
	ba := Relay(RunTCP(TCPConfig{Scheme: mac.BA, Rate: phy.Rate2600k, Hops: 2, Seed: 29}).Nodes)

	if !(na.MAC.AvgFrameBytes() < ua.MAC.AvgFrameBytes()) {
		t.Errorf("frame size: NA %.0f !< UA %.0f", na.MAC.AvgFrameBytes(), ua.MAC.AvgFrameBytes())
	}
	if !(ua.MAC.AvgFrameBytes() < ba.MAC.AvgFrameBytes()*1.05) {
		t.Errorf("frame size: UA %.0f not <= BA %.0f", ua.MAC.AvgFrameBytes(), ba.MAC.AvgFrameBytes())
	}
	if !(na.MAC.DataTx > ua.MAC.DataTx && ua.MAC.DataTx > ba.MAC.DataTx) {
		t.Errorf("TX counts: NA %d, UA %d, BA %d — must strictly decrease",
			na.MAC.DataTx, ua.MAC.DataTx, ba.MAC.DataTx)
	}
	naOv := na.MAC.SizeOverhead(na.PreambleBytes)
	uaOv := ua.MAC.SizeOverhead(ua.PreambleBytes)
	baOv := ba.MAC.SizeOverhead(ba.PreambleBytes)
	if !(naOv > uaOv && uaOv >= baOv*0.95) {
		t.Errorf("size overhead: NA %.3f, UA %.3f, BA %.3f — must decrease", naOv, uaOv, baOv)
	}
	// NA per-frame average is between an ACK (160) and a data frame (1464).
	if f := na.MAC.AvgFrameBytes(); f < 400 || f > 1200 {
		t.Errorf("NA relay frame avg %.0f B, paper reports 765 B", f)
	}
}

func TestTimeOverheadGrowsWithRate(t *testing.T) {
	// Table 4: NA overhead grows from ~22%% at 0.65 to ~52%% at 2.6, and
	// aggregation cuts it several-fold.
	var prev float64
	for _, rate := range phy.ExperimentRates() {
		na := Relay(RunTCP(TCPConfig{Scheme: mac.NA, Rate: rate, Hops: 2, Seed: 31}).Nodes)
		ov := na.MAC.TimeOverhead()
		if ov <= prev {
			t.Errorf("NA time overhead not growing: %.3f at %v after %.3f", ov, rate, prev)
		}
		prev = ov

		ba := Relay(RunTCP(TCPConfig{Scheme: mac.BA, Rate: rate, Hops: 2, Seed: 31}).Nodes)
		if bo := ba.MAC.TimeOverhead(); bo >= ov {
			t.Errorf("at %v BA overhead %.3f not below NA %.3f", rate, bo, ov)
		}
	}
	// Absolute anchors from Table 4's NA column.
	na065 := Relay(RunTCP(TCPConfig{Scheme: mac.NA, Rate: phy.Rate650k, Hops: 2, Seed: 31}).Nodes)
	if ov := na065.MAC.TimeOverhead(); ov < 0.12 || ov > 0.35 {
		t.Errorf("NA overhead at 0.65 = %.3f, paper reports 0.224", ov)
	}
	na26 := Relay(RunTCP(TCPConfig{Scheme: mac.NA, Rate: phy.Rate2600k, Hops: 2, Seed: 31}).Nodes)
	if ov := na26.MAC.TimeOverhead(); ov < 0.35 || ov > 0.65 {
		t.Errorf("NA overhead at 2.6 = %.3f, paper reports 0.521", ov)
	}
}

func TestRunUDPThroughputAndFlooding(t *testing.T) {
	base := RunUDP(UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2, Seed: 37,
		Duration: 30 * time.Second})
	if base.ThroughputMbps <= 0 {
		t.Fatal("no UDP throughput")
	}
	flooded := RunUDP(UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2, Seed: 37,
		Duration: 30 * time.Second, FloodInterval: time.Second})
	if flooded.FloodsSent == 0 || flooded.FloodsRcvd == 0 {
		t.Fatal("flooding generators idle")
	}
	if flooded.ThroughputMbps >= base.ThroughputMbps {
		t.Errorf("flooding did not cost anything: %.3f vs %.3f",
			flooded.ThroughputMbps, base.ThroughputMbps)
	}
}

// TestFloodingHurtsNAMoreThanBA is Figure 9's claim.
func TestFloodingHurtsNAMoreThanBA(t *testing.T) {
	interval := 500 * time.Millisecond
	naBase := RunUDP(UDPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Hops: 2, Seed: 41, Duration: 30 * time.Second})
	naFld := RunUDP(UDPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Hops: 2, Seed: 41, Duration: 30 * time.Second, FloodInterval: interval})
	baBase := RunUDP(UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2, Seed: 41, Duration: 30 * time.Second})
	baFld := RunUDP(UDPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 2, Seed: 41, Duration: 30 * time.Second, FloodInterval: interval})
	naLoss := (naBase.ThroughputMbps - naFld.ThroughputMbps) / naBase.ThroughputMbps
	baLoss := (baBase.ThroughputMbps - baFld.ThroughputMbps) / baBase.ThroughputMbps
	if naLoss <= baLoss {
		t.Errorf("flooding hurt NA (%.1f%%) no more than BA (%.1f%%)", 100*naLoss, 100*baLoss)
	}
}

// TestFig7Cliff reproduces §6.1: throughput rises with aggregation size up
// to the coherence budget, then collapses to ~0.
func TestFig7Cliff(t *testing.T) {
	run := func(agg int) float64 {
		return RunUDP(UDPConfig{Scheme: mac.BA, Rate: phy.Rate650k, Hops: 1,
			MaxAggBytes: agg, Seed: 43, Duration: 30 * time.Second}).ThroughputMbps
	}
	small, best, beyond := run(2048), run(5120), run(8192)
	if best <= small {
		t.Errorf("throughput did not rise with aggregation size: %.3f @2KB vs %.3f @5KB", small, best)
	}
	if beyond > best/10 {
		t.Errorf("no cliff past the coherence budget: %.3f @8KB vs %.3f @5KB", beyond, best)
	}
}

func TestAutoAggSizeSurvivesBeyondBudget(t *testing.T) {
	// The §7 extension: with rate-adaptive sizing the 8 KB cap is trimmed
	// to the coherence budget and throughput stays near the 5 KB optimum.
	cfgBase := UDPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1, Seed: 47, Duration: 20 * time.Second}

	broken := cfgBase
	broken.MaxAggBytes = 8192
	dead := RunUDP(broken).ThroughputMbps

	// AutoAggSize is a mac option; expose through TCPConfig only — here,
	// drive it via a custom run below using the same knob through RunTCP.
	r := RunTCP(TCPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1, Seed: 47,
		MaxAggBytes: 8192, AutoAggSize: true, FileBytes: 50_000})
	if !r.Completed {
		t.Fatal("AutoAggSize transfer did not complete")
	}
	if dead > 0.05 {
		t.Errorf("8 KB aggregates at 0.65 Mbps should collapse, got %.3f Mbps", dead)
	}
}

func TestBlockAckBeyondBudget(t *testing.T) {
	// With block ACKs, oversized aggregates lose only their aged tail:
	// the transfer completes even with an 8 KB cap at 0.65 Mbps.
	r := RunTCP(TCPConfig{Scheme: mac.UA, Rate: phy.Rate650k, Hops: 1, Seed: 53,
		MaxAggBytes: 8192, BlockAck: true, FileBytes: 50_000, Deadline: 600 * time.Second})
	if !r.Completed {
		t.Fatal("block-ACK transfer did not complete despite selective retransmission")
	}
}

func TestRelayHelper(t *testing.T) {
	nodes := []NodeReport{{ID: 0, Role: "server"}, {ID: 1, Role: "relay"}, {ID: 2, Role: "client"}}
	if Relay(nodes).ID != 1 {
		t.Error("Relay did not find the relay")
	}
	if Relay(nil).Role != "" {
		t.Error("Relay on empty input should return zero report")
	}
}
