package core

import (
	"fmt"
	"io"

	"aggmac/internal/medium"
	"aggmac/internal/trace"
)

// Trace formats accepted by the configs' TraceFormat field.
const (
	TraceText  = "text"  // human-readable timeline (default)
	TraceJSONL = "jsonl" // one JSON object per event
)

// traceObserver builds the channel-timeline observer every Run entry point
// shares: a tracer writing to w, optionally filtered to events that touch
// one of the listed nodes (either endpoint matches; transmissions, whose
// Dst is -1, match on the sender). format selects the text tracer ("" or
// TraceText) or the JSONL tracer (TraceJSONL); both share the same
// medium.Observer contract and filter semantics. A nil writer disables
// tracing.
func traceObserver(w io.Writer, nodes []int, format string) medium.Observer {
	if w == nil {
		return nil
	}
	var filter func(medium.Event) bool
	if len(nodes) > 0 {
		set := make(map[medium.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[medium.NodeID(n)] = true
		}
		filter = func(ev medium.Event) bool { return set[ev.Src] || set[ev.Dst] }
	}
	switch format {
	case "", TraceText:
		tr := trace.New(w)
		tr.Filter = filter
		return tr.Observe
	case TraceJSONL:
		tr := trace.NewJSON(w)
		tr.Filter = filter
		return tr.Observe
	default:
		panic(fmt.Sprintf("core: unknown trace format %q", format))
	}
}
