package core

import (
	"io"

	"aggmac/internal/medium"
	"aggmac/internal/trace"
)

// traceObserver builds the channel-timeline observer every Run entry point
// shares: a trace.Tracer writing to w, optionally filtered to events that
// touch one of the listed nodes (either endpoint matches; transmissions,
// whose Dst is -1, match on the sender). A nil writer disables tracing.
func traceObserver(w io.Writer, nodes []int) medium.Observer {
	if w == nil {
		return nil
	}
	tr := trace.New(w)
	if len(nodes) > 0 {
		set := make(map[medium.NodeID]bool, len(nodes))
		for _, n := range nodes {
			set[medium.NodeID(n)] = true
		}
		tr.Filter = func(ev medium.Event) bool { return set[ev.Src] || set[ev.Dst] }
	}
	return tr.Observe
}
