// Package core is the public experiment API of the reproduction: it wires
// topology, MAC scheme, PHY rates and traffic into runnable experiments and
// returns the metrics the paper reports — end-to-end throughput plus the
// per-node frame-size / transmission-count / overhead detail of its
// Tables 3–8.
package core

import (
	"fmt"
	"io"
	"time"

	"aggmac/internal/flood"
	"aggmac/internal/mac"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/telemetry"
	"aggmac/internal/topology"
	"aggmac/internal/udp"
)

// PaperFileBytes is the paper's transfer size (§5: a 0.2 Mbyte file).
const PaperFileBytes = 200_000

// NodeReport captures one node's counters after a run.
type NodeReport struct {
	ID   int
	Role string
	MAC  mac.Counters
	Net  network.Stats
	// PreambleBytes is the preamble byte-equivalent used by the Table 3
	// size-overhead metric at this node's rate.
	PreambleBytes float64
}

// TCPConfig describes a TCP experiment.
type TCPConfig struct {
	Scheme mac.Scheme
	Rate   phy.Rate
	// FixedBroadcastRate pins the broadcast-portion rate (Figure 10);
	// nil means broadcast at the unicast rate (Figure 11 onward).
	FixedBroadcastRate *phy.Rate
	// Hops selects an N-hop linear chain; ignored when Star is set.
	Hops int
	// Star runs the two-session star topology instead.
	Star bool
	// FileBytes per session; defaults to PaperFileBytes.
	FileBytes int
	// MaxAggBytes caps aggregation; defaults to 5120 (§6.1).
	MaxAggBytes int
	// DelayRelaysOnly applies the scheme's DelayMinFrames at relay nodes
	// only, as §6.4.3 describes. Default true (set DelayEverywhere to
	// override).
	DelayEverywhere bool
	// BlockAck / AutoAggSize enable the §7 extensions.
	BlockAck    bool
	AutoAggSize bool
	// FlushTimeout overrides the DBA flush bound (0 keeps the default).
	FlushTimeout time.Duration
	// Tweak, when set, adjusts every node's final MAC options — the hook
	// the ablation benches use (RTS off, head-only gather, ...).
	Tweak func(*mac.Options)
	// TraceTo, when set, streams the channel timeline (every control
	// frame, aggregate, collision) to the writer; TraceNodes restricts it
	// to events touching the listed nodes; TraceFormat selects TraceText
	// (default) or TraceJSONL.
	TraceTo     io.Writer
	TraceNodes  []int
	TraceFormat string
	// Metrics, when set, samples the telemetry catalog on simulated-time
	// ticks (see internal/telemetry). nil — the default — schedules
	// nothing, so the event sequence and golden hashes are untouched.
	Metrics *telemetry.Recorder
	// TCP overrides the transport config; zero value means defaults.
	TCP tcp.Config
	// Phy overrides the channel constants; nil means calibrated defaults.
	Phy *phy.Params
	// Seed makes runs reproducible; rows of a sweep should vary it.
	Seed int64
	// Deadline bounds simulated time (default 1200 s).
	Deadline time.Duration
}

// SessionReport describes one TCP session's outcome.
type SessionReport struct {
	Server, Client network.NodeID
	Mbps           float64
	Done           bool
	Finish         time.Duration
	Sender         tcp.Stats
	Receiver       tcp.Stats
}

// TCPResult is what a TCP experiment measures.
type TCPResult struct {
	// ThroughputMbps is end-to-end goodput; for the star it is the
	// worst-case session, matching §6.4.2.
	ThroughputMbps float64
	// SessionMbps lists each session's goodput.
	SessionMbps []float64
	// Sessions holds per-session detail including TCP counters.
	Sessions []SessionReport
	// Completed reports whether every session finished within Deadline.
	Completed bool
	// Elapsed is the slowest session's completion time.
	Elapsed time.Duration
	// EventsRun is the number of discrete events the scheduler executed;
	// the golden determinism tests pin it to catch any event-core change
	// that alters the run, not just ones that alter the metrics.
	EventsRun uint64
	// Nodes holds per-node counters (relay rows feed Tables 3–8).
	Nodes []NodeReport
}

func (c *TCPConfig) fill() {
	if c.FileBytes == 0 {
		c.FileBytes = PaperFileBytes
	}
	if c.MaxAggBytes == 0 {
		c.MaxAggBytes = 5120
	}
	if c.Deadline == 0 {
		c.Deadline = 1200 * time.Second
	}
	if c.Hops == 0 && !c.Star {
		c.Hops = 2
	}
}

func (c *TCPConfig) phyParams() phy.Params {
	if c.Phy != nil {
		return *c.Phy
	}
	return phy.DefaultParams()
}

// macOptsFor builds per-node MAC options honouring the per-role DBA rule.
func (c *TCPConfig) macOptsFor(relay func(i, n int) bool) func(i, n int) mac.Options {
	return func(i, n int) mac.Options {
		scheme := c.Scheme
		if scheme.DelayMinFrames > 1 && !c.DelayEverywhere && !relay(i, n) {
			scheme.DelayMinFrames = 0
		}
		opts := mac.DefaultOptions(scheme, c.Rate)
		opts.MaxAggBytes = c.MaxAggBytes
		opts.BlockAck = c.BlockAck
		opts.AutoAggSize = c.AutoAggSize
		if c.FlushTimeout > 0 {
			opts.FlushTimeout = c.FlushTimeout
		}
		if c.FixedBroadcastRate != nil {
			opts.BroadcastRate = *c.FixedBroadcastRate
		}
		if c.Tweak != nil {
			c.Tweak(&opts)
		}
		return opts
	}
}

// session is one file transfer.
type session struct {
	server, client network.NodeID
	port           uint16
	done           bool
	finish         sim.Time
}

// RunTCP executes the experiment.
func RunTCP(cfg TCPConfig) TCPResult {
	cfg.fill()
	tcfg := cfg.TCP
	if tcfg.MSS == 0 {
		tcfg = tcp.DefaultConfig()
	}

	var net *topology.Network
	var sessions []*session
	var roleOf func(i, n int) string
	if cfg.Star {
		relay := func(i, n int) bool { return i == topology.StarCenter }
		net = topology.NewStar(topology.Config{Seed: cfg.Seed, Phy: cfg.phyParams(), OptsFor: cfg.macOptsFor(relay)})
		for si, srv := range topology.StarServers() {
			sessions = append(sessions, &session{server: srv, client: topology.StarClient, port: uint16(8000 + si)})
		}
		roleOf = func(i, n int) string { return topology.StarRole(i) }
	} else {
		net = topology.NewLinear(cfg.Hops, topology.Config{Seed: cfg.Seed, Phy: cfg.phyParams(), OptsFor: cfg.macOptsFor(topology.IsRelay)})
		sessions = append(sessions, &session{server: 0, client: network.NodeID(cfg.Hops), port: 8000})
		roleOf = topology.LinearRole
	}

	if obs := traceObserver(cfg.TraceTo, cfg.TraceNodes, cfg.TraceFormat); obs != nil {
		net.Medium.SetObserver(obs)
	}

	stacks := make([]*tcp.Stack, len(net.Nodes))
	for i, node := range net.Nodes {
		stacks[i] = tcp.NewStack(net.Sched, node, tcfg)
	}

	remaining := len(sessions)
	conns := make([]*tcp.Conn, len(sessions))
	rconns := make([]*tcp.Conn, len(sessions))
	for i, s := range sessions {
		i, s := i, s
		lis := stacks[s.client].Listen(s.port)
		var got int64
		lis.Setup = func(conn *tcp.Conn) {
			rconns[i] = conn
			conn.OnData = func(b []byte) {
				got += int64(len(b))
				if !s.done && got >= int64(cfg.FileBytes) {
					s.done = true
					s.finish = net.Sched.Now()
					remaining--
					if remaining == 0 {
						net.Sched.Halt()
					}
				}
			}
			conn.OnPeerClose = func() { conn.Close() }
		}
		// Stagger session starts by a few microseconds so simultaneous
		// SYNs do not collide forever on identical backoff draws.
		start := time.Duration(s.port-8000) * 150 * time.Microsecond
		net.Sched.After(start, "core:connect", func() {
			conn := stacks[s.server].Connect(s.client, s.port)
			conns[i] = conn
			data := make([]byte, cfg.FileBytes)
			conn.OnEstablished = func() {
				_ = conn.Send(data)
				conn.Close()
			}
		})
	}

	if cfg.Metrics != nil {
		reg := cfg.Metrics.Registry(0)
		registerRunMetrics(reg, net.Sched, net.Medium, net.Nodes, stacks, cfg.MaxAggBytes)
		for i := range sessions {
			i := i
			// Both connection slots stay nil until the handshake events
			// fire, so the gauges guard every read.
			reg.Gauge(fmt.Sprintf("tcp.session%d.cwnd", i), func() float64 {
				if conns[i] == nil {
					return 0
				}
				return float64(conns[i].Cwnd())
			})
			reg.Gauge(fmt.Sprintf("tcp.session%d.srtt_s", i), func() float64 {
				if conns[i] == nil {
					return 0
				}
				return conns[i].SRTT().Seconds()
			})
		}
		reg.Start(net.Sched, cfg.Metrics.Interval(), cfg.Deadline)
	}

	net.Sched.RunUntil(cfg.Deadline)

	res := TCPResult{Completed: true, EventsRun: net.Sched.EventsRun()}
	for i, s := range sessions {
		rep := SessionReport{Server: s.server, Client: s.client, Done: s.done, Finish: s.finish}
		if conns[i] != nil {
			rep.Sender = conns[i].Stats()
		}
		if rconns[i] != nil {
			rep.Receiver = rconns[i].Stats()
		}
		if !s.done {
			res.Completed = false
			res.SessionMbps = append(res.SessionMbps, 0)
			res.Sessions = append(res.Sessions, rep)
			continue
		}
		if s.finish > res.Elapsed {
			res.Elapsed = s.finish
		}
		rep.Mbps = float64(cfg.FileBytes) * 8 / s.finish.Seconds() / 1e6
		res.SessionMbps = append(res.SessionMbps, rep.Mbps)
		res.Sessions = append(res.Sessions, rep)
	}
	res.ThroughputMbps = res.SessionMbps[0]
	for _, m := range res.SessionMbps {
		if m < res.ThroughputMbps {
			res.ThroughputMbps = m
		}
	}
	for i, node := range net.Nodes {
		res.Nodes = append(res.Nodes, NodeReport{
			ID:            i,
			Role:          roleOf(i, len(net.Nodes)),
			MAC:           node.MAC().Counters(),
			Net:           node.Stats(),
			PreambleBytes: node.MAC().PreambleBytesPerTx(),
		})
	}
	return res
}

// UDPConfig describes a UDP experiment (with optional flooding).
type UDPConfig struct {
	Scheme mac.Scheme
	Rate   phy.Rate
	Hops   int
	// MaxAggBytes caps aggregation (the Figure 7 x-axis); default 5120.
	MaxAggBytes int
	// Burst and Interval select paced generation (Burst packets every
	// Interval); Burst==0 saturates the sender queue.
	Burst    int
	Interval time.Duration
	// PayloadBytes per datagram; default sizes frames to 1140 B.
	PayloadBytes int
	// FloodInterval, when >0, runs a flooding generator on every node
	// (Figure 9's x-axis).
	FloodInterval time.Duration
	// Duration and Warmup bound the measurement.
	Duration time.Duration
	Warmup   time.Duration
	Phy      *phy.Params
	Seed     int64
	// TraceTo streams the channel timeline to the writer; TraceNodes
	// restricts it to events touching the listed nodes; TraceFormat
	// selects TraceText (default) or TraceJSONL.
	TraceTo     io.Writer
	TraceNodes  []int
	TraceFormat string
	// Metrics samples the telemetry catalog on simulated-time ticks;
	// nil schedules nothing.
	Metrics *telemetry.Recorder
}

// UDPResult is what a UDP experiment measures.
type UDPResult struct {
	ThroughputMbps float64
	SinkPackets    int
	// Delay summarises one-way datagram latency over the measurement
	// window (a metric the paper leaves unreported; DBA trades it for
	// aggregation).
	Delay      udp.DelayStats
	FloodsSent int
	FloodsRcvd int
	// EventsRun is the number of discrete events the scheduler executed.
	EventsRun uint64
	Nodes     []NodeReport
}

// RunUDP executes the experiment on a linear chain, node 0 → node Hops.
func RunUDP(cfg UDPConfig) UDPResult {
	if cfg.Hops == 0 {
		cfg.Hops = 2
	}
	if cfg.MaxAggBytes == 0 {
		cfg.MaxAggBytes = 5120
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2 * time.Second
	}
	params := phy.DefaultParams()
	if cfg.Phy != nil {
		params = *cfg.Phy
	}
	optsFor := func(i, n int) mac.Options {
		opts := mac.DefaultOptions(cfg.Scheme, cfg.Rate)
		opts.MaxAggBytes = cfg.MaxAggBytes
		return opts
	}
	net := topology.NewLinear(cfg.Hops, topology.Config{Seed: cfg.Seed, Phy: params, OptsFor: optsFor})
	if obs := traceObserver(cfg.TraceTo, cfg.TraceNodes, cfg.TraceFormat); obs != nil {
		net.Medium.SetObserver(obs)
	}

	eps := make([]*udp.Endpoint, len(net.Nodes))
	for i, node := range net.Nodes {
		eps[i] = udp.NewEndpoint(net.Sched, node)
	}
	sink := udp.NewSink(eps[cfg.Hops], 9000)
	sink.MeasureFrom(cfg.Warmup)
	sender := &udp.Sender{
		Endpoint: eps[0], Dst: network.NodeID(cfg.Hops),
		SrcPort: 9001, DstPort: 9000,
		PayloadBytes: cfg.PayloadBytes,
		Interval:     cfg.Interval, Burst: cfg.Burst,
		Timestamp: true,
	}

	var gens []*flood.Generator
	var counters []*flood.Counter
	if cfg.FloodInterval > 0 {
		for _, node := range net.Nodes {
			gens = append(gens, flood.NewGenerator(net.Sched, node, cfg.FloodInterval))
			counters = append(counters, flood.NewCounter(node))
		}
	}

	net.Sched.After(0, "core:start", func() {
		sender.Start()
		for _, g := range gens {
			g.Start()
		}
	})
	if cfg.Metrics != nil {
		reg := cfg.Metrics.Registry(0)
		registerRunMetrics(reg, net.Sched, net.Medium, net.Nodes, nil, cfg.MaxAggBytes)
		reg.Start(net.Sched, cfg.Metrics.Interval(), cfg.Duration)
	}
	net.Sched.RunUntil(cfg.Duration)
	sender.Stop()
	for _, g := range gens {
		g.Stop()
	}

	res := UDPResult{
		ThroughputMbps: sink.ThroughputMbps(),
		SinkPackets:    sink.Packets,
		Delay:          sink.Delays(),
		EventsRun:      net.Sched.EventsRun(),
	}
	for _, g := range gens {
		res.FloodsSent += g.Sent
	}
	for _, c := range counters {
		res.FloodsRcvd += c.Received
	}
	for i, node := range net.Nodes {
		res.Nodes = append(res.Nodes, NodeReport{
			ID:            i,
			Role:          topology.LinearRole(i, len(net.Nodes)),
			MAC:           node.MAC().Counters(),
			Net:           node.Stats(),
			PreambleBytes: node.MAC().PreambleBytesPerTx(),
		})
	}
	return res
}

// Relay returns the report of the first relay node (the paper's detail
// tables are measured at relays).
func Relay(nodes []NodeReport) NodeReport {
	for _, n := range nodes {
		if n.Role == "relay" || n.Role == "center" {
			return n
		}
	}
	return NodeReport{}
}
