package core

import (
	"bytes"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/telemetry"
	"aggmac/internal/traffic"
)

// meshMetricsConfig is the shared cell for the determinism tests: small
// enough for CI, busy enough that every instrumented layer moves.
func meshMetricsConfig(shards int) MeshTCPConfig {
	return MeshTCPConfig{
		Scheme: mac.BA, Topology: MeshGrid, Nodes: 25, Flows: 4,
		FileBytes: 8000, Seed: 3, Deadline: 120 * time.Second,
		Shards: shards,
	}
}

// TestMetricsOffLeavesRunUntouched: attaching a recorder must not change
// anything the simulation computes except the executed event count (the
// sampler's own ticks). This is the golden-hash contract: metrics off is
// the default, and metrics on only adds observation.
func TestMetricsOffLeavesRunUntouched(t *testing.T) {
	plain := RunMeshTCP(meshMetricsConfig(0))

	cfg := meshMetricsConfig(0)
	cfg.Metrics = telemetry.NewRecorder(100 * time.Millisecond)
	instrumented := RunMeshTCP(cfg)

	if instrumented.EventsRun <= plain.EventsRun {
		t.Fatalf("sampler scheduled no events: %d vs %d", instrumented.EventsRun, plain.EventsRun)
	}
	plain.EventsRun, instrumented.EventsRun = 0, 0
	if h1, h2 := hashMeshResult(plain), hashMeshResult(instrumented); h1 != h2 {
		t.Fatalf("metrics-on run diverged from metrics-off run:\n%s\nvs\n%s", h1, h2)
	}
}

// runMeshJSONL runs the shared cell with a recorder and returns the JSONL
// export bytes.
func runMeshJSONL(t *testing.T, shards int) []byte {
	t.Helper()
	cfg := meshMetricsConfig(shards)
	cfg.Metrics = telemetry.NewRecorder(100 * time.Millisecond)
	RunMeshTCP(cfg)
	var buf bytes.Buffer
	if err := cfg.Metrics.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestMeshMetricsDeterministic: the sampled series are a pure function of
// the config — byte-identical across repeats, sequential and sharded.
func TestMeshMetricsDeterministic(t *testing.T) {
	for _, shards := range []int{0, 2} {
		ref := runMeshJSONL(t, shards)
		for rep := 0; rep < 2; rep++ {
			if got := runMeshJSONL(t, shards); !bytes.Equal(got, ref) {
				t.Fatalf("shards=%d rep %d: JSONL differs across identical runs", shards, rep)
			}
		}
	}
}

// TestMeshMetricsCoverLayers: the catalog's medium, MAC, TCP and sim series
// must all move on a busy mesh — and the paper's core quantity,
// ACKs-suppressed-by-broadcast, must be nonzero under the BA scheme.
func TestMeshMetricsCoverLayers(t *testing.T) {
	cfg := meshMetricsConfig(0)
	cfg.Metrics = telemetry.NewRecorder(100 * time.Millisecond)
	RunMeshTCP(cfg)
	s := cfg.Metrics.Summary()
	if s == nil || s.Ticks == 0 {
		t.Fatalf("no ticks sampled: %+v", s)
	}
	byName := map[string]telemetry.MetricSummary{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	for _, name := range []string{
		"medium.airtime_frac", "mac.agg_fill_ratio", "mac.acks_suppressed",
		"net.tcp_acks_bcast", "tcp.cwnd_bytes", "sim.events_run",
	} {
		m, ok := byName[name]
		if !ok {
			t.Fatalf("series %q missing from summary (have %d series)", name, len(s.Metrics))
		}
		if m.Max <= 0 {
			t.Fatalf("series %q never moved: %+v", name, m)
		}
	}
	if m := byName["mac.agg_body_bytes"]; m.Count == 0 || m.Mean <= 0 {
		t.Fatalf("aggregate-size histogram empty: %+v", m)
	}
}

// TestTCPMetricsSessionSeries: the chain run's per-session cwnd and SRTT
// gauges sample real transport state.
func TestTCPMetricsSessionSeries(t *testing.T) {
	rec := telemetry.NewRecorder(50 * time.Millisecond)
	res := RunTCP(TCPConfig{
		Scheme: mac.BA, Hops: 2, FileBytes: 100000, Seed: 1, Metrics: rec,
	})
	if res.ThroughputMbps <= 0 {
		t.Fatalf("run produced no throughput")
	}
	byName := map[string]telemetry.MetricSummary{}
	for _, m := range rec.Summary().Metrics {
		byName[m.Name] = m
	}
	if m := byName["tcp.session0.cwnd"]; m.Max <= 0 {
		t.Fatalf("session cwnd gauge never moved: %+v", m)
	}
	if m := byName["tcp.session0.srtt_s"]; m.Max <= 0 {
		t.Fatalf("session SRTT gauge never moved: %+v", m)
	}
}

// TestScenarioMetricsDeterministic: the workload engine's series repeat
// byte for byte as well, including the engine's own flow-churn gauges.
func TestScenarioMetricsDeterministic(t *testing.T) {
	run := func() []byte {
		rec := telemetry.NewRecorder(100 * time.Millisecond)
		cfg := ScenarioConfig{
			Scenario: testScenario(traffic.ModeOpen), Scheme: mac.BA, Metrics: rec,
		}
		res := RunScenario(cfg)
		if res.FlowsStarted == 0 {
			t.Fatalf("scenario started no flows")
		}
		var buf bytes.Buffer
		if err := rec.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.Bytes()
	}
	ref := run()
	if !bytes.Equal(run(), ref) {
		t.Fatalf("scenario JSONL differs across identical runs")
	}
	var found bool
	for _, m := range func() []telemetry.MetricSummary {
		rec := telemetry.NewRecorder(100 * time.Millisecond)
		RunScenario(ScenarioConfig{Scenario: testScenario(traffic.ModeOpen), Scheme: mac.BA, Metrics: rec})
		return rec.Summary().Metrics
	}() {
		if m.Name == "scn.flows_completed" && m.Max > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("scn.flows_completed never moved")
	}
}
