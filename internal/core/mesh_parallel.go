// Sharded parallel execution of mesh TCP experiments.
//
// The mesh is partitioned into contiguous spatial strips (cell domains);
// each shard rebuilds its nodes, MACs and TCP stacks on a private scheduler
// and medium, with every medium sharing one read-only link table. The
// shards run concurrently under sim.ShardEngine's conservative bounded-lag
// synchronization with lookahead L = ShardLookahead (the minimum on-air
// time of any frame), and every locally-launched transmission whose source
// has neighbors in other shards is replayed there as a foreign frame.
//
// Correctness argument. A transmission starting at t cannot deliver before
// t+L (no frame is shorter than L on the air), so replaying it into a
// neighboring shard at exactly t+L preserves delivery times bit-exactly.
// What the replay approximates is the first L of carrier sense and
// collision overlap in the *receiving* shard: a foreign frame applies
// energy detect and collision marking from t+L rather than t. The source
// shard marks its own receivers exactly, so the approximation is bounded to
// cross-boundary receivers during one minimum-frame window (~492 µs at the
// calibrated PHY) per foreign frame.
//
// Determinism. Each shard's event order is a pure function of the config:
// same-instant boundary arrivals execute in (time, source shard, source
// sequence) order before local events, so a run's result depends only on
// (config, Shards) — not on GOMAXPROCS, goroutine scheduling or repetition.
// Shards: 1 reuses the sequential seed, construction order and early-halt
// semantics and is byte-identical to the sequential engine, golden hashes
// included. Shards > 1 drains to the deadline (an early cross-shard halt
// would race) and is statistically equivalent to sequential.
package core

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/routing"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/telemetry"
	"aggmac/internal/topology"
	"aggmac/internal/traffic"
)

// MaxShards bounds the partition; foreign-shard sets are 64-bit masks.
const MaxShards = 64

// ShardLookahead returns the parallel engine's conservative lookahead for
// the given PHY: the PLCP preamble plus the smallest control frame (CTS/ACK,
// 14 bytes) at the control rate — the minimum time any frame spends on the
// air, and therefore the minimum delay between a transmission starting in
// one shard and any effect it can have in another.
func ShardLookahead(params phy.Params) time.Duration {
	return params.PreamblePLCP + phy.Airtime(frame.CTSLen, params.ControlRate)
}

// shardPartition assigns each node to one of k contiguous vertical strips
// of (nearly) equal population, ordered by x-position with node id as the
// tie-break. Strips keep cross-shard links between nearby shard indices on
// planar layouts, but correctness never depends on that: the engine
// connects exactly the shard pairs that share a radio link.
func shardPartition(m0 *topology.Mesh, k int) []int {
	n := len(m0.Nodes)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := m0.Pos[ids[a]], m0.Pos[ids[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return ids[a] < ids[b]
	})
	owner := make([]int, n)
	for rank, id := range ids {
		owner[id] = rank * k / n
	}
	return owner
}

// shardSeed derives shard s's scheduler seed. Shard 0 keeps the run's base
// seed so a one-shard run replays the sequential engine's random stream
// draw for draw.
func shardSeed(base int64, s int) int64 {
	if s == 0 {
		return base
	}
	return traffic.DeriveSeed(base, fmt.Sprintf("shard:%d", s))
}

func runMeshTCPSharded(cfg MeshTCPConfig, tcfg tcp.Config) MeshResult {
	switch {
	case cfg.Mobility != "":
		panic("core: Shards supports static topologies only — unset Mobility")
	case cfg.Faults.Enabled():
		panic("core: fault injection needs the sequential engine — unset Faults or Shards")
	case cfg.DenseScan:
		panic("core: Shards requires the neighbor-indexed medium — unset DenseScan")
	case cfg.TraceTo != nil:
		panic("core: channel tracing is unsupported with Shards — unset TraceTo")
	}

	// m0 is a throwaway sequential build: it contributes node positions,
	// the link table, installed routes (for flow planning) and the flow
	// plan, but never executes an event.
	m0 := cfg.buildMesh()
	flows := cfg.planFlows(m0)
	n := len(m0.Nodes)
	k := cfg.Shards
	if k > n {
		k = n
	}
	if k > MaxShards {
		k = MaxShards
	}

	owner := shardPartition(m0, k)

	// foreign[i] is the set of shards other than i's own that contain a
	// neighbor of node i — the shards every transmission by i must be
	// replayed into. adj collects the induced shard adjacency.
	foreign := make([]uint64, n)
	adj := make([]uint64, k)
	for i := 0; i < n; i++ {
		for _, j := range m0.Medium.Neighbors(medium.NodeID(i)) {
			if owner[j] != owner[i] {
				foreign[i] |= 1 << owner[j]
				adj[owner[i]] |= 1 << owner[j]
			}
		}
	}

	params := cfg.phyParams()
	tbl := m0.Medium.Table()
	scheds := make([]*sim.Scheduler, k)
	media := make([]*medium.Medium, k)
	for s := range scheds {
		scheds[s] = sim.NewScheduler(shardSeed(cfg.Seed, s))
		media[s] = medium.NewOnTable(scheds[s], params, tbl)
	}

	// Rebuild nodes, MACs and stacks in ascending node id — the sequential
	// construction order — each on its owner shard's scheduler and medium.
	nodes := make([]*network.Node, n)
	for i := 0; i < n; i++ {
		s := owner[i]
		node := network.NewNode(network.NodeID(i))
		mc := mac.New(scheds[s], media[s], medium.NodeID(i), cfg.optsFor(i, n), node.Bind())
		node.AttachMAC(mc)
		nodes[i] = node
	}
	if cfg.SparseRoutes {
		routing.InstallPathsToward(nodes, m0.Adjacency(), flowEndpoints(flows))
	} else {
		routing.InstallShortestPaths(nodes, m0.Adjacency())
	}

	stacks := make([]*tcp.Stack, n)
	for i, node := range nodes {
		stacks[i] = tcp.NewStack(scheds[owner[i]], node, tcfg)
	}

	look := ShardLookahead(params)
	eng := sim.NewShardEngine(scheds, look)
	for s := 0; s < k; s++ {
		for rest := adj[s]; rest != 0; rest &= rest - 1 {
			if d := bits.TrailingZeros64(rest); d > s {
				eng.Connect(s, d)
			}
		}
	}
	for s := 0; s < k; s++ {
		if adj[s] == 0 {
			continue
		}
		s := s
		media[s].SetBoundary(func(ff medium.ForeignFrame) {
			mask := foreign[ff.Src]
			if mask == 0 {
				return
			}
			// Spans alias the pooled transmission; copy once, shared
			// read-only by every destination shard.
			ff.Spans = append([]frame.Span(nil), ff.Spans...)
			at := ff.Start + look
			for rest := mask; rest != 0; rest &= rest - 1 {
				dst := bits.TrailingZeros64(rest)
				eng.Post(s, dst, at, func() { media[dst].InjectForeign(ff) })
			}
		})
	}

	// A single shard can halt as the last flow completes, exactly like the
	// sequential engine. With several shards an early halt would depend on
	// cross-goroutine timing, so the run drains to the deadline instead.
	var onAllDone func()
	if k == 1 {
		onAllDone = scheds[0].Halt
	}
	wireFlows(&cfg, flows, stacks,
		func(id network.NodeID) *sim.Scheduler { return scheds[owner[id]] }, onAllDone)

	if cfg.Metrics != nil {
		// One registry per shard, each sampled by its own scheduler and
		// reading only shard-owned state (medium, nodes, stacks), so
		// sampling is race-free and each shard's series is a pure
		// function of (config, Shards). Per-flow stall gauges are
		// sequential-only: a flow's endpoints may live on two shards.
		shardNodes := make([][]*network.Node, k)
		shardStacks := make([][]*tcp.Stack, k)
		for i := 0; i < n; i++ {
			shardNodes[owner[i]] = append(shardNodes[owner[i]], nodes[i])
			shardStacks[owner[i]] = append(shardStacks[owner[i]], stacks[i])
		}
		for s := 0; s < k; s++ {
			reg := cfg.Metrics.Registry(s)
			registerRunMetrics(reg, scheds[s], media[s], shardNodes[s], shardStacks[s], cfg.MaxAggBytes)
			reg.Start(scheds[s], cfg.Metrics.Interval(), cfg.Deadline)
		}
	}
	if cfg.ShardTrace != nil {
		eng.EnableDiag()
	}

	if cfg.WallBudget > 0 {
		for _, s := range scheds {
			s.SetWallBudget(cfg.WallBudget)
		}
	}
	eng.Run(cfg.Deadline)

	if cfg.ShardTrace != nil {
		if err := telemetry.WriteChromeTrace(cfg.ShardTrace, eng.DiagSpans()); err != nil {
			panic(fmt.Sprintf("core: writing shard trace: %v", err))
		}
	}

	var eventsRun uint64
	for _, s := range scheds {
		eventsRun += s.EventsRun()
	}
	res := assembleMeshResult(&cfg, flows, nodes, m0.LinkCount, m0.AvgDegree(), &mobilityChurn{},
		eventsRun, cfg.Deadline)
	res.Shards = k
	return res
}
