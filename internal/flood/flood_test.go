package flood

import (
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

func rig(t *testing.T, n int, scheme mac.Scheme) (*sim.Scheduler, []*network.Node) {
	t.Helper()
	s := sim.NewScheduler(23)
	med := medium.New(s, phy.DefaultParams(), n)
	var nodes []*network.Node
	for i := 0; i < n; i++ {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(s, med, medium.NodeID(i), mac.DefaultOptions(scheme, phy.Rate1300k), node.Bind())
		node.AttachMAC(m)
		nodes = append(nodes, node)
	}
	return s, nodes
}

func TestGeneratorEmitsAtInterval(t *testing.T) {
	s, nodes := rig(t, 3, mac.BA)
	g := NewGenerator(s, nodes[0], 100*time.Millisecond)
	c1 := NewCounter(nodes[1])
	c2 := NewCounter(nodes[2])
	s.After(0, "start", func() { g.Start() })
	s.RunUntil(time.Second)
	g.Stop()
	s.RunUntil(1100 * time.Millisecond)
	// ~10 frames in 1s at 100ms interval (jitter ±5ms).
	if g.Sent < 8 || g.Sent > 12 {
		t.Fatalf("generator sent %d frames in 1s at 100ms, want ~10", g.Sent)
	}
	if c1.Received != g.Sent || c2.Received != g.Sent {
		t.Fatalf("receivers got %d/%d of %d", c1.Received, c2.Received, g.Sent)
	}
}

func TestFloodFrameIs160Bytes(t *testing.T) {
	g := &Generator{FrameBytes: PaperFrameBytes}
	pkt := network.Packet{Proto: network.ProtoFlood, TTL: 1, Src: 0,
		Dst: network.BroadcastID, Payload: make([]byte, g.payloadBytes())}
	sf := frame.Subframe{Payload: pkt.Marshal()}
	if sf.WireSize() != PaperFrameBytes {
		t.Fatalf("flood subframe = %d B, want %d", sf.WireSize(), PaperFrameBytes)
	}
}

func TestFloodsAggregateWithUnicastUnderBA(t *testing.T) {
	s, nodes := rig(t, 2, mac.BA)
	g := NewGenerator(s, nodes[0], 20*time.Millisecond)
	NewCounter(nodes[1])
	nodes[0].AddRoute(1, 1)
	// Unicast traffic from the same node: BA combines floods with it.
	s.After(0, "start", func() {
		g.Start()
		for i := 0; i < 30; i++ {
			_ = nodes[0].Send(network.Packet{Proto: network.ProtoUDP, Src: 0, Dst: 1,
				Payload: make([]byte, 1000)})
		}
	})
	s.RunUntil(time.Second)
	g.Stop()
	c := nodes[0].MAC().Counters()
	if c.BroadcastSubTx == 0 || c.UnicastSubTx == 0 {
		t.Fatalf("no mixing: bcast=%d ucast=%d", c.BroadcastSubTx, c.UnicastSubTx)
	}
	// At least one TX carried both portions: total TXs must be fewer than
	// the sum it would take separately.
	if c.DataTx >= c.BroadcastSubTx+30 {
		t.Errorf("BA never combined portions: %d TXs for %d floods + 30 unicast",
			c.DataTx, c.BroadcastSubTx)
	}
}

func TestNoJitterPhaseLockAvoidance(t *testing.T) {
	s, nodes := rig(t, 4, mac.BA)
	var gens []*Generator
	for _, n := range nodes {
		g := NewGenerator(s, n, 50*time.Millisecond)
		gens = append(gens, g)
	}
	counters := []*Counter{NewCounter(nodes[0]), NewCounter(nodes[1])}
	s.After(0, "start", func() {
		for _, g := range gens {
			g.Start()
		}
	})
	s.RunUntil(2 * time.Second)
	for _, g := range gens {
		g.Stop()
	}
	s.RunUntil(2200 * time.Millisecond)
	sent := 0
	for _, g := range gens {
		sent += g.Sent
	}
	// Each of the 2 counted nodes hears the other 3 generators.
	expect := sent * 3 / 4
	got := counters[0].Received
	if got < expect*8/10 {
		t.Fatalf("node 0 heard %d of ~%d floods: excessive collision loss", got, expect)
	}
	_ = counters[1]
}

func TestGeneratorStopIsIdempotent(t *testing.T) {
	s, nodes := rig(t, 2, mac.NA)
	g := NewGenerator(s, nodes[0], 10*time.Millisecond)
	g.Start()
	g.Start() // no-op
	g.Stop()
	g.Stop() // no-op
	s.RunUntil(100 * time.Millisecond)
	if g.Sent > 1 {
		t.Fatalf("stopped generator kept sending: %d", g.Sent)
	}
}
