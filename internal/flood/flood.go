// Package flood generates broadcast control traffic: each node emits a
// fixed-size broadcast frame at a fixed interval, standing in for the
// route discovery/maintenance flooding of DSR or AODV (§6.3: "To simulate
// flooding, each node generated broadcast frames at a fixed rate").
package flood

import (
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/network"
	"aggmac/internal/sim"
)

// PaperFrameBytes is the broadcast MAC frame size used in the experiments
// (the PHY minimum, same as a classified TCP ACK).
const PaperFrameBytes = network.MinSubframeBytes

// Generator emits broadcast frames from one node.
type Generator struct {
	// Interval between frames (the Figure 9 x-axis).
	Interval time.Duration
	// Jitter randomizes each gap by ±Jitter/2 so generators on different
	// nodes do not phase-lock. Defaults to Interval/10.
	Jitter time.Duration
	// FrameBytes is the MAC frame size; defaults to PaperFrameBytes.
	FrameBytes int

	Sent    int
	Dropped int

	sched   *sim.Scheduler
	node    *network.Node
	running bool
	timer   sim.Timer
	emitFn  func() // stable callback for the scheduler (no per-emit closure)
}

// NewGenerator creates a flooding source on node.
func NewGenerator(sched *sim.Scheduler, node *network.Node, interval time.Duration) *Generator {
	return &Generator{Interval: interval, sched: sched, node: node}
}

// Start begins flooding.
func (g *Generator) Start() {
	if g.running || g.Interval <= 0 {
		return
	}
	g.running = true
	if g.FrameBytes <= 0 {
		g.FrameBytes = PaperFrameBytes
	}
	if g.Jitter <= 0 {
		g.Jitter = g.Interval / 10
	}
	g.schedule()
}

// Stop halts flooding.
func (g *Generator) Stop() {
	g.running = false
	g.timer.Stop()
}

func (g *Generator) payloadBytes() int {
	n := g.FrameBytes - frame.SubframeOverhead - network.HeaderLen
	if n < 0 {
		n = 0
	}
	return n
}

func (g *Generator) schedule() {
	if !g.running {
		return
	}
	gap := g.Interval
	if g.Jitter > 0 {
		gap += time.Duration(g.sched.Rand().Int63n(int64(g.Jitter))) - g.Jitter/2
	}
	if gap <= 0 {
		gap = time.Microsecond
	}
	if g.emitFn == nil {
		g.emitFn = g.emitOne
	}
	g.timer = g.sched.After(gap, "flood:emit", g.emitFn)
}

func (g *Generator) emitOne() {
	err := g.node.Send(network.Packet{
		Proto:   network.ProtoFlood,
		Src:     g.node.ID(),
		Dst:     network.BroadcastID,
		Payload: make([]byte, g.payloadBytes()),
	})
	if err != nil {
		g.Dropped++
	} else {
		g.Sent++
	}
	g.schedule()
}

// Counter tallies flooding frames received at a node.
type Counter struct{ Received int }

// NewCounter registers a flood receiver on node.
func NewCounter(node *network.Node) *Counter {
	c := &Counter{}
	node.Handle(network.ProtoFlood, func(network.Packet) { c.Received++ })
	return c
}
