package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSV renders the table as RFC-4180 text: a header row of "label" plus the
// column names, then one record per row. Values keep full float precision
// so CSV output round-trips where Format's 3-decimal text does not.
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{"label"}, t.Columns...)
	_ = w.Write(header)
	for _, r := range t.Rows {
		rec := make([]string, 0, 1+len(r.Values))
		rec = append(rec, r.Label)
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		_ = w.Write(rec)
	}
	w.Flush()
	return b.String()
}

// WriteJSON encodes tables as an indented JSON array.
func WriteJSON(w io.Writer, tables []Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}

// WriteCSV writes each table as an identifying comment line followed by
// its CSV records, with a blank line between tables. Notes — including
// SweepTable's missing-runs disclaimer — survive as a trailing comment.
func WriteCSV(w io.Writer, tables []Table) error {
	for i, t := range tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s — %s\n%s", t.ID, t.Title, t.CSV()); err != nil {
			return err
		}
		if t.Notes != "" {
			if _, err := fmt.Fprintf(w, "# note: %s\n", t.Notes); err != nil {
				return err
			}
		}
	}
	return nil
}
