package experiments

import (
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// jain computes Jain's fairness index: 1.0 is perfectly fair.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// ExtensionFairness measures how fairly the two star sessions share the
// bottleneck under each scheme — a metric the paper leaves unreported
// (§6.4.2 only gives the worst-case session).
func ExtensionFairness(o Options) Table {
	t := Table{
		ID:      "Extension A",
		Title:   "Star topology: per-session fairness (Jain index) and aggregate goodput",
		Columns: []string{"sess0Mbps", "sess1Mbps", "Jain", "sumMbps"},
		Notes:   "beyond the paper: drop-tail queues at the centre can starve one session; aggregation shortens queues and helps fairness",
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		p.tcp("ext-fairness/"+scheme.Name(),
			core.TCPConfig{Scheme: scheme, Rate: detailRate, Star: true, Seed: o.Seed},
			func(r core.TCPResult) {
				sum := 0.0
				for _, m := range r.SessionMbps {
					sum += m
				}
				t.Rows = append(t.Rows, Row{Label: scheme.Name(), Values: []float64{
					r.SessionMbps[0], r.SessionMbps[1], jain(r.SessionMbps), sum,
				}})
			})
	}
	p.run(o)
	return t
}

// ExtensionDelay measures one-way datagram delay under each scheme on
// paced 2-hop UDP — the latency side of the aggregation trade-off the
// paper never quantifies (DBA's floor-holding shows up directly here).
func ExtensionDelay(o Options) Table {
	t := Table{
		ID:      "Extension B",
		Title:   "2-hop UDP one-way delay (ms), light paced traffic at 1.3 Mbps",
		Columns: []string{"meanMs", "p50Ms", "p95Ms", "Mbps"},
		Notes:   "beyond the paper: below saturation DBA pays for aggregation with floor-holding delay; UA/BA are identical on unicast-only traffic",
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		// ~0.3 Mbps offered into ~0.55 Mbps of 2-hop capacity: queues stay
		// short, so the delay is airtime plus scheme-induced waiting.
		p.udp("ext-delay/"+scheme.Name(),
			core.UDPConfig{Scheme: scheme, Rate: phy.Rate1300k, Hops: 2,
				Burst: 1, Interval: 30 * time.Millisecond,
				Seed: o.Seed, Duration: o.udpDur()},
			func(r core.UDPResult) {
				t.Rows = append(t.Rows, Row{Label: scheme.Name(), Values: []float64{
					float64(r.Delay.Mean) / 1e6,
					float64(r.Delay.P50) / 1e6,
					float64(r.Delay.P95) / 1e6,
					r.ThroughputMbps,
				}})
			})
	}
	p.run(o)
	return t
}
