package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/runner"
)

var demo = Table{
	ID: "Table X", Title: "demo",
	Columns: []string{"a", "b"},
	Rows: []Row{
		{Label: "row1", Values: []float64{1.5, 2.25}},
		{Label: "row,2", Values: []float64{0.1234567890123, 3}},
	},
	Notes: "a note",
}

func TestCSVEncoding(t *testing.T) {
	out := demo.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "label,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], `"row,2"`) {
		t.Errorf("comma in label not quoted: %q", lines[2])
	}
	// Full precision survives, unlike Format's 3-decimal text.
	if !strings.Contains(lines[2], "0.1234567890123") {
		t.Errorf("value precision lost: %q", lines[2])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, []Table{demo}); err != nil {
		t.Fatal(err)
	}
	var back []Table
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("JSON does not parse: %v", err)
	}
	if len(back) != 1 || back[0].ID != demo.ID || len(back[0].Rows) != 2 ||
		back[0].Rows[1].Values[0] != demo.Rows[1].Values[0] {
		t.Errorf("round trip mangled the table: %+v", back)
	}
}

func TestWriteCSVMultipleTables(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, []Table{demo, demo}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "# Table X — demo"); got != 2 {
		t.Errorf("%d table headers, want 2:\n%s", got, b.String())
	}
	if !strings.Contains(b.String(), "\n\n#") {
		t.Error("tables not separated by a blank line")
	}
}

// TestSweepTable runs a real miniature sweep end-to-end: grid → pool →
// table, with replications averaged per cell.
func TestSweepTable(t *testing.T) {
	sw := runner.Sweep{
		Traffic: "udp",
		Schemes: []mac.Scheme{mac.NA, mac.BA},
		Rates:   []phy.Rate{phy.Rate1300k},
		Hops:    []int{1, 2},
		Reps:    2, BaseSeed: 7,
		Duration: 5 * time.Second,
	}
	specs := sw.Specs()
	pool := runner.Pool{Workers: 4}
	res, err := pool.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	tab := SweepTable(sw, res)
	if len(tab.Rows) != 4 || len(tab.Columns) != 1 {
		t.Fatalf("sweep table shape %d×%d, want 4×1", len(tab.Rows), len(tab.Columns))
	}
	want := []string{"1-hop NA", "2-hop NA", "1-hop BA", "2-hop BA"}
	for i, r := range tab.Rows {
		if r.Label != want[i] {
			t.Errorf("row %d label %q, want %q", i, r.Label, want[i])
		}
		if r.Values[0] <= 0 {
			t.Errorf("row %q: non-positive mean throughput %v", r.Label, r.Values[0])
		}
	}
	// 1-hop beats 2-hop for each scheme; BA beats NA per hop count.
	if !(tab.Rows[0].Values[0] > tab.Rows[1].Values[0]) {
		t.Error("NA: 1-hop not above 2-hop")
	}
	if !(tab.Rows[2].Values[0] > tab.Rows[0].Values[0]) {
		t.Error("BA 1-hop not above NA 1-hop")
	}
	if tab.Notes != "" {
		t.Errorf("unexpected notes on a clean sweep: %q", tab.Notes)
	}
}

// TestSweepTableSkipsFailedRuns feeds the aggregator a result set with one
// missing run and checks the affected cell averages the survivors.
func TestSweepTableSkipsFailedRuns(t *testing.T) {
	sw := runner.Sweep{
		Traffic: "udp",
		Schemes: []mac.Scheme{mac.NA},
		Rates:   []phy.Rate{phy.Rate1300k},
		Hops:    []int{1},
		Reps:    2, BaseSeed: 7,
		Duration: 5 * time.Second,
	}
	pool := runner.Pool{Workers: 1}
	res, err := pool.Run(context.Background(), sw.Specs())
	if err != nil {
		t.Fatal(err)
	}
	good := res[1].ThroughputMbps()
	res[0] = runner.Result{Index: 0, Key: res[0].Key, Err: context.Canceled}
	tab := SweepTable(sw, res)
	if tab.Rows[0].Values[0] != good {
		t.Errorf("cell = %v, want the surviving rep's %v", tab.Rows[0].Values[0], good)
	}
	if !strings.Contains(tab.Notes, "1 of 2 runs missing") {
		t.Errorf("notes do not report the gap: %q", tab.Notes)
	}
}
