package experiments

import (
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
)

func TestResilienceShape(t *testing.T) {
	tab := Resilience(Options{Seed: 1, Quick: true})
	if tab.ID != "Resilience" {
		t.Fatalf("ID %q", tab.ID)
	}
	// 5 metric columns per flap rate.
	if len(tab.Columns) != 5*len(defaultFlapMTBFs) {
		t.Fatalf("columns %v", tab.Columns)
	}
	// NA/UA/BA × crash MTBF grid.
	if want := 3 * len(defaultCrashMTBFs); len(tab.Rows) != want {
		t.Fatalf("rows %d, want %d", len(tab.Rows), want)
	}
	for _, r := range tab.Rows {
		if len(r.Values) != len(tab.Columns) {
			t.Fatalf("row %q has %d values", r.Label, len(r.Values))
		}
		for i := 0; i < len(r.Values); i += 5 {
			mbps, done, stall, avail := r.Values[i], r.Values[i+1], r.Values[i+2], r.Values[i+4]
			if mbps < 0 || done < 0 || done > 4 || stall < 0 {
				t.Errorf("row %q cell %d implausible: %v", r.Label, i/5, r.Values[i:i+5])
			}
			if avail <= 0 || avail > 1 {
				t.Errorf("row %q availability %v outside (0, 1]", r.Label, avail)
			}
		}
	}
	// Fault-free rows (crash MTBF 0, first flap column has no flaps either)
	// must report perfect availability; the harshest crash row must not.
	for ri, r := range tab.Rows {
		crash := defaultCrashMTBFs[ri%len(defaultCrashMTBFs)]
		if crash == 0 && r.Values[4] != 1 {
			t.Errorf("row %q: availability %v with crashes off", r.Label, r.Values[4])
		}
		if crash == 20*time.Second && r.Values[4] >= 1 {
			t.Errorf("row %q: availability %v despite 20 s crash MTBF", r.Label, r.Values[4])
		}
	}
}

// The EXPERIMENTS.md claim: in every crash-enabled cell the incomplete
// flows are exactly the killed-by-fault ones — routing repairs keep every
// surviving flow completing.
func TestResilienceKilledAccountsForIncomplete(t *testing.T) {
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		for _, crash := range defaultCrashMTBFs {
			r := core.RunMeshTCP(ResilienceCell(scheme, crash, 0, 1))
			if r.FlowsDone+r.FlowsKilledByFault != len(r.Flows) {
				t.Errorf("%s crash=%v: done %d + killed %d != %d flows",
					scheme.Name(), crash, r.FlowsDone, r.FlowsKilledByFault, len(r.Flows))
			}
		}
	}
}
