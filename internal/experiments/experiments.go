// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each function declares the corresponding experiment's
// run matrix as data, delegates execution to the internal/runner worker
// pool, and assembles a structured Table whose rows mirror what the paper
// reports; cmd/aggbench prints them and bench_test.go wraps them as
// benchmarks.
//
// Absolute numbers come from the calibrated simulator rather than the Hydra
// testbed, so they differ from the paper's; the shapes — who wins, by
// roughly what factor, where crossovers fall — are the reproduction target
// (see EXPERIMENTS.md for the side-by-side record).
//
// Execution is deterministic by construction: every run's seed and config
// are fixed when the matrix is declared, the runner returns results in
// matrix order, and table assembly consumes them in that order — so the
// same Options produce byte-identical tables at any worker count.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/runner"
)

// Row is one labeled series of values.
type Row struct {
	Label  string
	Values []float64
}

// Table is a regenerated experiment result.
type Table struct {
	ID      string // e.g. "Figure 7"
	Title   string
	Columns []string
	Rows    []Row
	Notes   string `json:",omitempty"`
}

// Options tune a regeneration run.
type Options struct {
	Seed int64
	// Quick shortens UDP measurement windows (for benchmarks).
	Quick bool
	// Workers caps how many simulations run concurrently; 0 means
	// GOMAXPROCS, 1 forces serial execution. The resulting tables are
	// identical at any setting — only wall-clock time changes.
	Workers int
	// Progress, when set, receives one callback per completed run.
	Progress func(runner.Progress)
	// Cache, when set, durably persists each completed run as it lands;
	// with Resume also set, previously completed cells are served from it
	// instead of re-running. Cached cells are byte-identical to fresh ones
	// (runs are pure functions of their spec and the store round-trip is
	// lossless), so tables regenerate incrementally from a warm store.
	Cache runner.Cache
	// Resume enables cache lookups (writes happen whenever Cache is set).
	Resume bool
	// Retry re-executes transient per-run failures (wall-budget timeouts)
	// with capped exponential backoff; zero value never retries.
	Retry runner.RetryPolicy
	// MeshSizes overrides the scaling experiment's network sizes
	// (default 25, 100, 400); cmd/aggbench's -mesh-sizes flag sets it.
	MeshSizes []int
	// MeshTopos overrides the scaling experiment's topology generators
	// (default grid and disk); cmd/aggbench's -mesh-topos flag sets it.
	MeshTopos []string
	// MobilitySpeeds overrides the mobility experiment's node speeds in
	// spacing units per second (default 1, 4).
	MobilitySpeeds []float64
	// MobilityIntervals overrides the mobility experiment's
	// position/link/route update intervals (default 500 ms, 2 s).
	MobilityIntervals []time.Duration
	// LoadRates overrides the offered-load experiment's open-loop flow
	// arrival rates in flows/s (default 0.2, 1.0).
	LoadRates []float64
	// LoadUsers overrides the offered-load experiment's closed-loop user
	// population (default 6).
	LoadUsers int
}

func (o Options) udpDur() time.Duration {
	if o.Quick {
		return 10 * time.Second
	}
	return 40 * time.Second
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	width := 12
	fmt.Fprintf(&b, "%-*s", 18, "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", width, c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", 18, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%*.3f", width, v)
		}
		b.WriteByte('\n')
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Notes)
	}
	return b.String()
}

var experimentRates = phy.ExperimentRates()

func rateCols() []string {
	cols := make([]string, len(experimentRates))
	for i, r := range experimentRates {
		cols[i] = r.String()
	}
	return cols
}

// plan accumulates an experiment's run matrix alongside per-run sinks that
// assemble the table. The runner may execute runs in any order across any
// number of workers; sinks then fire strictly in declaration order, so
// assembly — including cross-run baselines like Table 3's NA row — stays
// deterministic.
type plan struct {
	specs []runner.Spec
	sinks []func(runner.Result)
}

func (p *plan) tcp(key string, cfg core.TCPConfig, sink func(core.TCPResult)) {
	p.specs = append(p.specs, runner.Spec{Key: key, TCP: &cfg})
	p.sinks = append(p.sinks, func(r runner.Result) { sink(*r.TCP) })
}

func (p *plan) udp(key string, cfg core.UDPConfig, sink func(core.UDPResult)) {
	p.specs = append(p.specs, runner.Spec{Key: key, UDP: &cfg})
	p.sinks = append(p.sinks, func(r runner.Result) { sink(*r.UDP) })
}

func (p *plan) mesh(key string, cfg core.MeshTCPConfig, sink func(core.MeshResult)) {
	p.specs = append(p.specs, runner.Spec{Key: key, Mesh: &cfg})
	p.sinks = append(p.sinks, func(r runner.Result) { sink(*r.Mesh) })
}

func (p *plan) scenario(key string, cfg core.ScenarioConfig, sink func(core.ScenarioResult)) {
	p.specs = append(p.specs, runner.Spec{Key: key, Scenario: &cfg})
	p.sinks = append(p.sinks, func(r runner.Result) { sink(*r.Scenario) })
}

// run executes the accumulated matrix and dispatches sinks in order. A run
// that fails (sim panic) propagates as a panic, matching what the old
// serial loops would have done.
func (p *plan) run(o Options) {
	pool := runner.Pool{Workers: o.Workers, OnResult: o.Progress,
		Cache: o.Cache, Resume: o.Resume, Retry: o.Retry}
	res, err := pool.Run(context.Background(), p.specs)
	if err != nil {
		panic(err)
	}
	for i, r := range res {
		if r.Err != nil {
			panic(r.Err)
		}
		p.sinks[i](r)
	}
}

// tcpRow declares one row of a TCP rate sweep: the label plus the config
// shared by every column (Rate and Seed are filled per cell).
type tcpRow struct {
	label string
	cfg   core.TCPConfig
}

// addTCPRateRows appends one table row per declared row, sweeping
// experimentRates as columns of end-to-end throughput.
func addTCPRateRows(p *plan, t *Table, o Options, id string, rows []tcpRow) {
	for _, row := range rows {
		ri := len(t.Rows)
		t.Rows = append(t.Rows, Row{Label: row.label})
		for _, rate := range experimentRates {
			cfg := row.cfg
			cfg.Rate = rate
			cfg.Seed = o.Seed
			p.tcp(fmt.Sprintf("%s/%s/%s", id, row.label, rate), cfg, func(r core.TCPResult) {
				t.Rows[ri].Values = append(t.Rows[ri].Values, r.ThroughputMbps)
			})
		}
	}
}

// Figure7 sweeps the maximum aggregation size on 1-hop UDP at three rates
// (§6.1): throughput rises with the cap, then collapses past the channel
// coherence budget (≈5/11/15 KB at 0.65/1.3/1.95 Mbps).
func Figure7(o Options) Table {
	sizes := []int{1024, 2048, 3072, 4096, 5120, 6144, 8192, 10240, 12288, 14336, 16384, 18432}
	t := Table{
		ID:    "Figure 7",
		Title: "Throughput vs maximum aggregation size (1-hop UDP)",
		Notes: "columns are the aggregation cap in KB; cliffs mark the 120-Ksample coherence budget",
	}
	for _, s := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("%dK", s/1024))
	}
	var p plan
	for _, rate := range []phy.Rate{phy.Rate650k, phy.Rate1300k, phy.Rate1950k} {
		ri := len(t.Rows)
		t.Rows = append(t.Rows, Row{Label: rate.String()})
		for _, s := range sizes {
			p.udp(fmt.Sprintf("fig7/%s/%dK", rate, s/1024), core.UDPConfig{
				Scheme: mac.BA, Rate: rate, Hops: 1,
				MaxAggBytes: s, Seed: o.Seed, Duration: o.udpDur(),
			}, func(r core.UDPResult) {
				t.Rows[ri].Values = append(t.Rows[ri].Values, r.ThroughputMbps)
			})
		}
	}
	p.run(o)
	return t
}

// Table2 measures 2-hop UDP throughput with and without unicast
// aggregation at 0.65 and 1.3 Mbps (§6.2).
func Table2(o Options) Table {
	t := Table{
		ID:      "Table 2",
		Title:   "2-hop UDP throughput (Mbps)",
		Columns: []string{"NoAgg", "UnicastAgg", "Diff%"},
		Notes:   "paper: 0.253/0.273 (+7.9%) at 0.65; 0.430/0.481 (+11.9%) at 1.3",
	}
	var p plan
	for _, rate := range []phy.Rate{phy.Rate650k, phy.Rate1300k} {
		ri := len(t.Rows)
		t.Rows = append(t.Rows, Row{Label: rate.String()})
		var na float64
		p.udp(fmt.Sprintf("table2/NA/%s", rate),
			core.UDPConfig{Scheme: mac.NA, Rate: rate, Hops: 2, Seed: o.Seed, Duration: o.udpDur()},
			func(r core.UDPResult) { na = r.ThroughputMbps })
		p.udp(fmt.Sprintf("table2/UA/%s", rate),
			core.UDPConfig{Scheme: mac.UA, Rate: rate, Hops: 2, Seed: o.Seed, Duration: o.udpDur()},
			func(r core.UDPResult) {
				ua := r.ThroughputMbps
				t.Rows[ri].Values = []float64{na, ua, 100 * (ua - na) / na}
			})
	}
	p.run(o)
	return t
}

// Figure8 compares NA and UA TCP throughput over 2- and 3-hop chains as a
// function of rate (§6.2).
func Figure8(o Options) Table {
	t := Table{
		ID:      "Figure 8",
		Title:   "TCP throughput, unicast aggregation vs none (Mbps)",
		Columns: rateCols(),
		Notes:   "improvement grows with rate and holds on both chain lengths",
	}
	var rows []tcpRow
	for _, hops := range []int{2, 3} {
		for _, scheme := range []mac.Scheme{mac.NA, mac.UA} {
			rows = append(rows, tcpRow{
				label: fmt.Sprintf("%d-hop %s", hops, scheme.Name()),
				cfg:   core.TCPConfig{Scheme: scheme, Hops: hops},
			})
		}
	}
	var p plan
	addTCPRateRows(&p, &t, o, "fig8", rows)
	p.run(o)
	return t
}

// Figure9 measures 2-hop UDP goodput under flooding at varying intervals,
// with aggregation (broadcast+unicast) and without (§6.3).
func Figure9(o Options) Table {
	// The paper sweeps seconds-scale intervals on a 1 MHz channel where
	// each flood costs several ms of airtime; the gap only becomes visible
	// once flooding occupies a few percent of the channel, so the sweep
	// extends to 50 ms.
	intervals := []time.Duration{2 * time.Second, time.Second, 500 * time.Millisecond,
		200 * time.Millisecond, 100 * time.Millisecond, 50 * time.Millisecond}
	t := Table{
		ID:    "Figure 9",
		Title: "2-hop UDP goodput vs flooding interval (Mbps)",
		Notes: "gap between agg and no-agg widens as flooding quickens",
	}
	for _, iv := range intervals {
		t.Columns = append(t.Columns, fmt.Sprintf("%.2fs", iv.Seconds()))
	}
	var p plan
	for _, rate := range []phy.Rate{phy.Rate650k, phy.Rate1300k} {
		for _, scheme := range []mac.Scheme{mac.NA, mac.BA} {
			label := "NoAgg"
			if scheme.AggregateBroadcast {
				label = "Agg"
			}
			ri := len(t.Rows)
			t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s %s", rate, label)})
			for _, iv := range intervals {
				p.udp(fmt.Sprintf("fig9/%s/%s/%v", rate, label, iv),
					core.UDPConfig{Scheme: scheme, Rate: rate, Hops: 2,
						FloodInterval: iv, Seed: o.Seed, Duration: o.udpDur()},
					func(r core.UDPResult) {
						t.Rows[ri].Values = append(t.Rows[ri].Values, r.ThroughputMbps)
					})
			}
		}
	}
	p.run(o)
	return t
}

// Figure10 pins the broadcast-portion rate (0.65/1.3/2.6) while sweeping
// the unicast rate, against plain UA (§6.4.1).
func Figure10(o Options) Table {
	t := Table{
		ID:      "Figure 10",
		Title:   "2-hop TCP: BA with a fixed broadcast rate vs UA (Mbps)",
		Columns: rateCols(),
		Notes:   "BA(0.65) falls off at high unicast rates; BA(2.6) always wins",
	}
	var rows []tcpRow
	for _, br := range []phy.Rate{phy.Rate650k, phy.Rate1300k, phy.Rate2600k} {
		rows = append(rows, tcpRow{
			label: fmt.Sprintf("BA(bcast %s)", br),
			cfg:   core.TCPConfig{Scheme: mac.BA, FixedBroadcastRate: &br, Hops: 2},
		})
	}
	rows = append(rows, tcpRow{label: "UA", cfg: core.TCPConfig{Scheme: mac.UA, Hops: 2}})
	var p plan
	addTCPRateRows(&p, &t, o, "fig10", rows)
	p.run(o)
	return t
}

// Figure11 is the headline 2-hop TCP comparison with broadcasts at the
// unicast rate: BA > UA > NA at every rate (§6.4.1).
func Figure11(o Options) Table {
	t := Table{
		ID:      "Figure 11",
		Title:   "2-hop TCP: BA vs UA vs NA, broadcast at unicast rate (Mbps)",
		Columns: rateCols(),
		Notes:   "paper reports a maximum BA-over-UA gap of 10%",
	}
	var rows []tcpRow
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		rows = append(rows, tcpRow{label: scheme.Name(), cfg: core.TCPConfig{Scheme: scheme, Hops: 2}})
	}
	var p plan
	addTCPRateRows(&p, &t, o, "fig11", rows)
	p.run(o)
	return t
}

// Figure12 extends the comparison to the 3-hop chain and the two-session
// star (worst-case session), §6.4.2.
func Figure12(o Options) Table {
	t := Table{
		ID:      "Figure 12",
		Title:   "TCP over complex topologies (Mbps; star = worst session)",
		Columns: rateCols(),
		Notes:   "paper: BA-UA gap 12.2% at 3 hops, 11% on the star",
	}
	var rows []tcpRow
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		rows = append(rows, tcpRow{
			label: "3-hop " + scheme.Name(),
			cfg:   core.TCPConfig{Scheme: scheme, Hops: 3},
		})
	}
	for _, scheme := range []mac.Scheme{mac.UA, mac.BA} {
		rows = append(rows, tcpRow{
			label: "star " + scheme.Name(),
			cfg:   core.TCPConfig{Scheme: scheme, Star: true},
		})
	}
	var p plan
	addTCPRateRows(&p, &t, o, "fig12", rows)
	p.run(o)
	return t
}

// Figure13 compares BA against its delayed variant on 2- and 3-hop chains
// (§6.4.3).
func Figure13(o Options) Table {
	t := Table{
		ID:      "Figure 13",
		Title:   "TCP: delayed BA vs BA (Mbps)",
		Columns: rateCols(),
		Notes:   "paper found DBA ≈ BA (max +2%/+4%); 'smaller than we expected'",
	}
	var rows []tcpRow
	for _, hops := range []int{2, 3} {
		for _, scheme := range []mac.Scheme{mac.BA, mac.DBA} {
			rows = append(rows, tcpRow{
				label: fmt.Sprintf("%d-hop %s", hops, scheme.Name()),
				cfg:   core.TCPConfig{Scheme: scheme, Hops: hops},
			})
		}
	}
	var p plan
	addTCPRateRows(&p, &t, o, "fig13", rows)
	p.run(o)
	return t
}

// Figure14 isolates backward aggregation by disabling forward aggregation
// on the 3-hop chain (§6.4.4).
func Figure14(o Options) Table {
	noFwd := mac.BA
	noFwd.DisableForwardAggregation = true
	t := Table{
		ID:      "Figure 14",
		Title:   "3-hop TCP without forward aggregation (Mbps)",
		Columns: rateCols(),
		Notes:   "BA-vs-noFwd gap grows with rate: forward aggregation matters more at speed",
	}
	rows := []tcpRow{
		{label: "NA", cfg: core.TCPConfig{Scheme: mac.NA, Hops: 3}},
		{label: "BA w/o fwd", cfg: core.TCPConfig{Scheme: noFwd, Hops: 3}},
		{label: "BA", cfg: core.TCPConfig{Scheme: mac.BA, Hops: 3}},
	}
	var p plan
	addTCPRateRows(&p, &t, o, "fig14", rows)
	p.run(o)
	return t
}

// relayCfg is the 2-hop TCP run whose relay row feeds the detail tables
// (the paper measures Tables 3–8 at relays).
func relayCfg(scheme mac.Scheme, rate phy.Rate, seed int64) core.TCPConfig {
	return core.TCPConfig{Scheme: scheme, Rate: rate, Hops: 2, Seed: seed}
}

var detailRate = phy.Rate2600k // rate used for the detail tables

// Table3 reports the 2-hop relay detail: average frame size, transmissions
// relative to NA, and size overhead (§6.4.5).
func Table3(o Options) Table {
	t := Table{
		ID:      "Table 3",
		Title:   "2-hop relay detail (at " + detailRate.String() + ")",
		Columns: []string{"FrameB", "TX%", "SizeOv%"},
		Notes:   "paper: NA 765B/100%/15.1 — UA 2662/33.7/6.83 — BA 2727/26.7/6.55 — DBA 3477/21.1/5.8",
	}
	var p plan
	naTx := 0
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		p.tcp("table3/"+scheme.Name(), relayCfg(scheme, detailRate, o.Seed),
			func(r core.TCPResult) {
				rel := core.Relay(r.Nodes)
				if scheme.Name() == "NA" {
					naTx = rel.MAC.DataTx
				}
				t.Rows = append(t.Rows, Row{Label: scheme.Name(), Values: []float64{
					rel.MAC.AvgFrameBytes(),
					100 * float64(rel.MAC.DataTx) / float64(naTx),
					100 * rel.MAC.SizeOverhead(rel.PreambleBytes),
				}})
			})
	}
	p.run(o)
	return t
}

// Table4 reports the relay's time overhead (headers, control frames,
// backoff, IFS as a fraction of exchange airtime) per scheme and rate.
func Table4(o Options) Table {
	t := Table{
		ID:      "Table 4",
		Title:   "2-hop relay time overhead (%)",
		Columns: rateCols(),
		Notes:   "paper NA row: 22.4 / 34.9 / 44.4 / 52.1",
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		ri := len(t.Rows)
		t.Rows = append(t.Rows, Row{Label: scheme.Name()})
		for _, rate := range experimentRates {
			p.tcp(fmt.Sprintf("table4/%s/%s", scheme.Name(), rate),
				relayCfg(scheme, rate, o.Seed),
				func(r core.TCPResult) {
					rel := core.Relay(r.Nodes)
					t.Rows[ri].Values = append(t.Rows[ri].Values, 100*rel.MAC.TimeOverhead())
				})
		}
	}
	p.run(o)
	return t
}

// Tables5to7 compare the relay between the 2-hop chain and the star:
// frame size (Table 5), size overhead (Table 6), transmissions relative to
// NA (Table 7), §6.4.5.
func Tables5to7(o Options) Table {
	t := Table{
		ID:      "Tables 5-7",
		Title:   "Relay: 2-hop chain vs star centre (at " + detailRate.String() + ")",
		Columns: []string{"2hopFrmB", "starFrmB", "2hopOv%", "starOv%", "2hopTX%", "starTX%"},
		Notes:   "paper: UA frame flat (2662→2651), BA grows (2727→3432); TX% drops for both",
	}
	starCfg := func(scheme mac.Scheme) core.TCPConfig {
		return core.TCPConfig{Scheme: scheme, Rate: detailRate, Star: true, Seed: o.Seed}
	}
	var p plan
	var chainNA, starNA core.NodeReport
	p.tcp("table5/NA/chain", relayCfg(mac.NA, detailRate, o.Seed),
		func(r core.TCPResult) { chainNA = core.Relay(r.Nodes) })
	p.tcp("table5/NA/star", starCfg(mac.NA),
		func(r core.TCPResult) { starNA = core.Relay(r.Nodes) })
	for _, scheme := range []mac.Scheme{mac.UA, mac.BA} {
		var chain core.NodeReport
		p.tcp("table5/"+scheme.Name()+"/chain", relayCfg(scheme, detailRate, o.Seed),
			func(r core.TCPResult) { chain = core.Relay(r.Nodes) })
		p.tcp("table5/"+scheme.Name()+"/star", starCfg(scheme),
			func(r core.TCPResult) {
				star := core.Relay(r.Nodes)
				t.Rows = append(t.Rows, Row{Label: scheme.Name(), Values: []float64{
					chain.MAC.AvgFrameBytes(), star.MAC.AvgFrameBytes(),
					100 * chain.MAC.SizeOverhead(chain.PreambleBytes),
					100 * star.MAC.SizeOverhead(star.PreambleBytes),
					100 * float64(chain.MAC.DataTx) / float64(chainNA.MAC.DataTx),
					100 * float64(star.MAC.DataTx) / float64(starNA.MAC.DataTx),
				}})
			})
	}
	p.run(o)
	return t
}

// Table8 reports average frame size at every node of the 2- and 3-hop
// chains for UA and BA (§6.4.5).
func Table8(o Options) Table {
	t := Table{
		ID:      "Table 8",
		Title:   "Frame size at all nodes, 2-hop vs 3-hop (bytes, at " + detailRate.String() + ")",
		Columns: []string{"Srv(2)", "Relay(2)", "Cli(2)", "Srv(3)", "Rly1(3)", "Rly2(3)", "Cli(3)"},
		Notes:   "paper UA: 3897/2662/463 | 3451/2384/2224/443; BA: 3488/2727/447 | 3313/2538/2670/430",
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.UA, mac.BA} {
		ri := len(t.Rows)
		t.Rows = append(t.Rows, Row{Label: scheme.Name()})
		for _, hops := range []int{2, 3} {
			p.tcp(fmt.Sprintf("table8/%s/%dhop", scheme.Name(), hops),
				core.TCPConfig{Scheme: scheme, Rate: detailRate, Hops: hops, Seed: o.Seed},
				func(r core.TCPResult) {
					for _, n := range r.Nodes {
						t.Rows[ri].Values = append(t.Rows[ri].Values, n.MAC.AvgFrameBytes())
					}
				})
		}
	}
	p.run(o)
	return t
}

// Experiment pairs a name with its generator.
type Experiment struct {
	Name string
	Run  func(Options) Table
}

// All lists every regenerable experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig7", Figure7},
		{"table2", Table2},
		{"fig8", Figure8},
		{"fig9", Figure9},
		{"fig10", Figure10},
		{"fig11", Figure11},
		{"fig12", Figure12},
		{"fig13", Figure13},
		{"fig14", Figure14},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", Tables5to7},
		{"table8", Table8},
		{"ext-fairness", ExtensionFairness},
		{"ext-delay", ExtensionDelay},
		{"scaling", ScalingMesh},
		{"mobility", Mobility},
		{"load", Load},
		{"resilience", Resilience},
	}
}
