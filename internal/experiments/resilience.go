package experiments

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/faults"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// Resilience experiment defaults: the crash-rate × flap-rate grid every
// base scheme is degraded under. MTBF 0 means the fault class is off.
var (
	defaultCrashMTBFs = []time.Duration{0, 60 * time.Second, 20 * time.Second}
	defaultFlapMTBFs  = []time.Duration{0, 30 * time.Second}
)

// Resilience measures graceful degradation under seeded fault injection: a
// 5×5 grid mesh whose nodes crash and recover (exponential MTBF/MTTR) and
// whose links flap, swept over crash rate × flap rate under each base
// scheme. Each cell reports aggregate goodput, flows completed, the worst
// per-flow stall (longest gap between payload progress events) and route
// repairs (recompute rounds), plus the run's measured node availability —
// how much performance each ACK scheme keeps per unit of availability
// lost, and how long traffic freezes while routes heal around failures.
func Resilience(o Options) Table {
	t := Table{
		ID:    "Resilience",
		Title: "Fault injection: goodput, stalls and route repairs vs crash and flap rate",
		Notes: "grid N=25, 4 flows x 15 KB, crash MTTR 10 s, flap MTTR 2 s; rows scheme x crash MTBF (0 = no crashes); per flap MTBF f: aggregate Mbps, flows done, max per-flow stall (s), route repair rounds, node availability; incomplete flows count 0 Mbps",
	}
	for _, f := range defaultFlapMTBFs {
		t.Columns = append(t.Columns,
			fmt.Sprintf("Mbps@f%gs", f.Seconds()),
			fmt.Sprintf("Done@f%gs", f.Seconds()),
			fmt.Sprintf("Stall@f%gs", f.Seconds()),
			fmt.Sprintf("Repairs@f%gs", f.Seconds()),
			fmt.Sprintf("Avail@f%gs", f.Seconds()))
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		for _, crash := range defaultCrashMTBFs {
			ri := len(t.Rows)
			t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s crash=%gs", scheme.Name(), crash.Seconds())})
			for _, flap := range defaultFlapMTBFs {
				p.mesh(fmt.Sprintf("resilience/%s/crash%v/flap%v", scheme.Name(), crash, flap),
					ResilienceCell(scheme, crash, flap, o.Seed),
					func(r core.MeshResult) {
						t.Rows[ri].Values = append(t.Rows[ri].Values,
							r.AggregateMbps,
							float64(r.FlowsDone),
							r.MaxFlowStall.Seconds(),
							float64(r.RouteRecomputes),
							r.Availability)
					})
			}
		}
	}
	p.run(o)
	return t
}

// ResilienceCell builds the mesh config of one resilience-experiment cell:
// the mobility experiment's static grid with a fault set layered on.
// cmd/aggbench and the golden harness reuse it so pinned runs measure
// exactly the experiment's configuration.
func ResilienceCell(scheme mac.Scheme, crashMTBF, flapMTBF time.Duration, seed int64) core.MeshTCPConfig {
	cfg := core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 25, Flows: 4,
		FileBytes: 15_000, Seed: seed,
		Deadline: 600 * time.Second,
	}
	if crashMTBF > 0 || flapMTBF > 0 {
		cfg.Faults = &faults.Config{CrashMTBF: crashMTBF, FlapMTBF: flapMTBF}
	}
	return cfg
}
