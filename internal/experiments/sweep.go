package experiments

import (
	"fmt"
	"strings"

	"aggmac/internal/runner"
)

// SweepTable aggregates a runner.Sweep's results into the Table shape the
// rest of the tooling prints and encodes: one row per scheme × hop count,
// one column per PHY rate, each cell the mean end-to-end throughput across
// the sweep's seed replications. results must be what Pool.Run returned
// for sweep.Specs() (same order); cancelled or failed runs are skipped,
// which the Notes line reports.
func SweepTable(sweep runner.Sweep, results []runner.Result) Table {
	t := Table{
		ID:    "Sweep",
		Title: fmt.Sprintf("%s throughput sweep (Mbps; mean of %d seed rep(s), base seed %d)", strings.ToUpper(sweep.Traffic), max(sweep.Reps, 1), sweep.BaseSeed),
	}
	for _, rate := range sweep.Rates {
		t.Columns = append(t.Columns, rate.String())
	}
	reps := max(sweep.Reps, 1)
	skipped := 0
	i := 0
	for _, scheme := range sweep.Schemes {
		for _, hops := range sweep.Hops {
			row := Row{Label: fmt.Sprintf("%d-hop %s", hops, scheme.Name())}
			for range sweep.Rates {
				sum, n := 0.0, 0
				for rep := 0; rep < reps; rep++ {
					r := results[i]
					i++
					if r.Err != nil || (r.TCP == nil && r.UDP == nil) {
						skipped++
						continue
					}
					sum += r.ThroughputMbps()
					n++
				}
				mean := 0.0
				if n > 0 {
					mean = sum / float64(n)
				}
				row.Values = append(row.Values, mean)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	if skipped > 0 {
		t.Notes = fmt.Sprintf("%d of %d runs missing (failed or cancelled); affected cells average the runs that finished", skipped, len(results))
	}
	return t
}
