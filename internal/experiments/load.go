package experiments

import (
	"fmt"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/runner"
	"aggmac/internal/traffic"
)

// Offered-load experiment defaults: the open-loop arrival rates (flows per
// second) and the closed-loop user population the workload family sweeps.
var (
	defaultLoadRates = []float64{0.2, 1.0}
	defaultLoadUsers = 6
)

func (o Options) loadRates() []float64 {
	if len(o.LoadRates) > 0 {
		return o.LoadRates
	}
	return defaultLoadRates
}

func (o Options) loadUsers() int {
	if o.LoadUsers > 0 {
		return o.LoadUsers
	}
	return defaultLoadUsers
}

// LoadScenario builds the canonical offered-load workload: a 16-node grid
// carrying a web-like mix — Pareto objects (mean 12 KB, weight 3) plus
// larger bulk transfers (60 KB, weight 1) — under either open-loop Poisson
// arrivals at arrivalRate flows/s or a closed-loop population of users
// with 2 s mean think time. Quick mode halves the arrival window.
func LoadScenario(mode string, arrivalRate float64, users int, quick bool) traffic.Scenario {
	dur := 60.0
	if quick {
		dur = 30.0
	}
	return traffic.Scenario{
		Version:   traffic.SchemaVersion,
		Name:      "offered-load",
		Seed:      1,
		DurationS: dur,
		DeadlineS: 4 * dur,
		Schemes:   []string{"na", "ua", "ba"},
		RateMbps:  2.6,
		Topology:  traffic.Topology{Kind: "grid", Nodes: 16},
		Traffic: traffic.Traffic{
			Mode:        mode,
			ArrivalRate: arrivalRate,
			Users:       users,
			ThinkS:      2,
			Mix: []traffic.WeightedModel{
				{Model: traffic.Model{Kind: traffic.Pareto, Bytes: 12_000, MaxBytes: 240_000}, Weight: 3},
				{Model: traffic.Model{Kind: traffic.Bulk, Bytes: 60_000}, Weight: 1},
			},
		},
	}
}

// LoadCell builds one offered-load run config. cmd/aggbench's -benchjson
// mode and bench_test.go reuse it so the committed bench records measure
// exactly the experiment's configuration.
func LoadCell(mode string, scheme mac.Scheme, arrivalRate float64, users int, seed int64, quick bool) core.ScenarioConfig {
	sc := LoadScenario(mode, arrivalRate, users, quick)
	return core.ScenarioConfig{Scenario: sc, Scheme: scheme, Seed: seed}
}

// scenarioPct returns completed flows as a percentage of arrivals.
func scenarioPct(r core.ScenarioResult) float64 {
	if r.FlowsStarted == 0 {
		return 0
	}
	return 100 * float64(r.FlowsCompleted) / float64(r.FlowsStarted)
}

// Load measures flow-completion time and goodput as offered load varies,
// under all three base schemes and both arrival disciplines — the workload
// regime the paper's fixed FTP setup never reaches. Open-loop rows push
// Poisson flow arrivals at fixed rates whether or not the network keeps
// up; the closed-loop row lets a think-time user population self-throttle.
// Columns report aggregate goodput, FCT p50/p95/p99 in milliseconds, and
// the fraction of arrived flows that completed by the deadline.
func Load(o Options) Table {
	t := Table{
		ID:    "Load",
		Title: "Offered load: flow completion time under open/closed-loop workloads",
		Columns: []string{
			"Mbps", "FCTp50ms", "FCTp95ms", "FCTp99ms", "Done%",
		},
		Notes: "grid N=16, pareto(12K)x3 + bulk(60K)x1 mix; open rows: Poisson arrivals at λ flows/s; closed row: think-time users (2 s mean); FCT over completed flows only",
	}
	type workload struct {
		label string
		mode  string
		rate  float64
		users int
	}
	var loads []workload
	for _, r := range o.loadRates() {
		loads = append(loads, workload{
			label: fmt.Sprintf("open λ=%g", r),
			mode:  traffic.ModeOpen, rate: r,
		})
	}
	loads = append(loads, workload{
		label: fmt.Sprintf("closed U=%d", o.loadUsers()),
		mode:  traffic.ModeClosed, users: o.loadUsers(),
	})

	var p plan
	for _, w := range loads {
		for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
			w := w
			ri := len(t.Rows)
			t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s %s", scheme.Name(), w.label)})
			key := fmt.Sprintf("load/%s/%s", scheme.Name(), w.label)
			cell := LoadCell(w.mode, scheme, w.rate, w.users, runner.DeriveSeed(o.Seed, key), o.Quick)
			p.scenario(key, cell, func(r core.ScenarioResult) {
				t.Rows[ri].Values = []float64{
					r.AggregateMbps,
					float64(r.FCT.P50.Milliseconds()),
					float64(r.FCT.P95.Milliseconds()),
					float64(r.FCT.P99.Milliseconds()),
					scenarioPct(r),
				}
			})
		}
	}
	p.run(o)
	return t
}
