package experiments

import (
	"reflect"
	"testing"

	"aggmac/internal/traffic"
)

func TestLoadShape(t *testing.T) {
	tab := Load(Options{Seed: 1, Quick: true})
	if tab.ID != "Load" {
		t.Fatalf("ID %q", tab.ID)
	}
	wantCols := []string{"Mbps", "FCTp50ms", "FCTp95ms", "FCTp99ms", "Done%"}
	if !reflect.DeepEqual(tab.Columns, wantCols) {
		t.Fatalf("columns %v, want %v", tab.Columns, wantCols)
	}
	// 2 open-loop rates + 1 closed-loop population, × NA/UA/BA.
	if len(tab.Rows) != 9 {
		t.Fatalf("rows %d, want 9", len(tab.Rows))
	}
	sawFCT := false
	for _, r := range tab.Rows {
		if len(r.Values) != len(wantCols) {
			t.Fatalf("row %q has %d values", r.Label, len(r.Values))
		}
		if r.Values[1] > 0 {
			sawFCT = true
		}
		// p50 ≤ p95 ≤ p99 whenever flows completed.
		if r.Values[1] > r.Values[2] || r.Values[2] > r.Values[3] {
			t.Errorf("row %q: FCT percentiles disordered: %v", r.Label, r.Values[1:4])
		}
	}
	if !sawFCT {
		t.Error("no row recorded a positive FCT p50")
	}
}

func TestLoadDefaults(t *testing.T) {
	var o Options
	if got := o.loadRates(); !reflect.DeepEqual(got, defaultLoadRates) {
		t.Errorf("loadRates() = %v", got)
	}
	if got := o.loadUsers(); got != defaultLoadUsers {
		t.Errorf("loadUsers() = %d", got)
	}
	o = Options{LoadRates: []float64{0.5}, LoadUsers: 3}
	if got := o.loadRates(); !reflect.DeepEqual(got, []float64{0.5}) {
		t.Errorf("override loadRates() = %v", got)
	}
	if got := o.loadUsers(); got != 3 {
		t.Errorf("override loadUsers() = %d", got)
	}
}

func TestLoadScenarioValidates(t *testing.T) {
	for _, quick := range []bool{false, true} {
		sc := LoadScenario(traffic.ModeOpen, 0.5, 0, quick)
		if err := sc.Validate(); err != nil {
			t.Errorf("open quick=%v: %v", quick, err)
		}
		sc = LoadScenario(traffic.ModeClosed, 0, 4, quick)
		if err := sc.Validate(); err != nil {
			t.Errorf("closed quick=%v: %v", quick, err)
		}
	}
}
