package experiments

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// Mobility experiment defaults: the speed × update-interval grid the
// mobile-mesh family sweeps under each base scheme.
var (
	defaultMobilitySpeeds    = []float64{1, 4}
	defaultMobilityIntervals = []time.Duration{500 * time.Millisecond, 2 * time.Second}
)

func (o Options) mobilitySpeeds() []float64 {
	if len(o.MobilitySpeeds) > 0 {
		return o.MobilitySpeeds
	}
	return defaultMobilitySpeeds
}

func (o Options) mobilityIntervals() []time.Duration {
	if len(o.MobilityIntervals) > 0 {
		return o.MobilityIntervals
	}
	return defaultMobilityIntervals
}

// Mobility measures aggregate TCP goodput over a mobile mesh — a 5×5 grid
// whose nodes roam under the seeded random-waypoint model — as node speed
// and the position/link/route update interval vary, under all three base
// schemes. Alongside goodput each cell reports the run's route-flap count
// (route-table entries changed by the periodic shortest-path
// recomputation) and link churn (links that came into or fell out of radio
// range), the counters that tell how much topology motion each scheme had
// to survive.
func Mobility(o Options) Table {
	t := Table{
		ID:    "Mobility",
		Title: "Mobile mesh: TCP goodput and topology churn vs node speed (waypoint model)",
		Notes: "grid N=25, 4 flows x 15 KB, speed v in spacing units/s; per update interval iv: aggregate Mbps, route flaps (table entries changed), link churn (ups+downs); incomplete flows count 0 Mbps",
	}
	intervals := o.mobilityIntervals()
	for _, iv := range intervals {
		t.Columns = append(t.Columns,
			fmt.Sprintf("Mbps@%gs", iv.Seconds()),
			fmt.Sprintf("Flaps@%gs", iv.Seconds()),
			fmt.Sprintf("Churn@%gs", iv.Seconds()))
	}
	var p plan
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
		for _, speed := range o.mobilitySpeeds() {
			ri := len(t.Rows)
			t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s v=%g", scheme.Name(), speed)})
			for _, iv := range intervals {
				p.mesh(fmt.Sprintf("mobility/%s/v%g/iv%v", scheme.Name(), speed, iv),
					MobilityCell(scheme, speed, iv, o.Seed),
					func(r core.MeshResult) {
						t.Rows[ri].Values = append(t.Rows[ri].Values,
							r.AggregateMbps,
							float64(r.RouteFlaps),
							float64(r.LinkUps+r.LinkDowns))
					})
			}
		}
	}
	p.run(o)
	return t
}

// MobilityCell builds the mesh config of one mobility-experiment cell.
// cmd/aggbench's -benchjson mode and bench_test.go reuse it so the
// committed bench records measure exactly the experiment's configuration.
func MobilityCell(scheme mac.Scheme, speed float64, interval time.Duration, seed int64) core.MeshTCPConfig {
	return core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 25, Flows: 4,
		Mobility: core.MobilityWaypoint, Speed: speed,
		Pause: time.Second, MoveInterval: interval,
		FileBytes: 15_000, Seed: seed,
		Deadline: 600 * time.Second,
	}
}
