package experiments

import (
	"strings"
	"testing"

	"aggmac/internal/runner"
)

var opts = Options{Seed: 1, Quick: true}

func TestAllRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"fig7", "table2", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "table3", "table4", "table5", "table8",
		"ext-fairness", "ext-delay", "scaling", "mobility", "load",
		"resilience"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.Name, want[i])
		}
		if e.Run == nil {
			t.Errorf("experiment %q has no runner", e.Name)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		ID: "Table X", Title: "demo",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "row1", Values: []float64{1.5, 2.25}}},
		Notes:   "a note",
	}
	out := tab.Format()
	for _, want := range []string{"Table X", "demo", "a", "b", "row1", "1.500", "2.250", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	tab := Figure11(opts)
	if len(tab.Rows) != 3 || len(tab.Rows[0].Values) != 4 {
		t.Fatalf("Figure 11 shape: %d rows × %d cols", len(tab.Rows), len(tab.Rows[0].Values))
	}
	na, ua, ba := tab.Rows[0], tab.Rows[1], tab.Rows[2]
	for i := range na.Values {
		if !(na.Values[i] < ua.Values[i]) {
			t.Errorf("col %d: NA %.3f !< UA %.3f", i, na.Values[i], ua.Values[i])
		}
		if ba.Values[i] < ua.Values[i]*0.97 {
			t.Errorf("col %d: BA %.3f clearly below UA %.3f", i, ba.Values[i], ua.Values[i])
		}
	}
	// Monotone in rate for every scheme.
	for _, r := range tab.Rows {
		for i := 1; i < len(r.Values); i++ {
			if r.Values[i] <= r.Values[i-1] {
				t.Errorf("%s not monotone in rate: %v", r.Label, r.Values)
			}
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2(opts)
	for _, r := range tab.Rows {
		if r.Values[1] <= r.Values[0] {
			t.Errorf("%s: UA %.3f not above NA %.3f", r.Label, r.Values[1], r.Values[0])
		}
		if r.Values[2] <= 0 || r.Values[2] > 40 {
			t.Errorf("%s: improvement %.1f%% implausible", r.Label, r.Values[2])
		}
	}
	// The paper's improvement grows with rate.
	if tab.Rows[1].Values[2] <= tab.Rows[0].Values[2] {
		t.Errorf("UDP aggregation gain did not grow with rate: %.1f%% then %.1f%%",
			tab.Rows[0].Values[2], tab.Rows[1].Values[2])
	}
}

func TestFigure7Cliff(t *testing.T) {
	tab := Figure7(opts)
	// Every rate: some rise, then zero at the largest cap below 18K only
	// for rates whose budget is exceeded (all three by 18K... 1.95 budget
	// is ~15K, so the last column must be ~0 for all rows).
	for _, r := range tab.Rows {
		last := r.Values[len(r.Values)-1]
		if last > 0.05 {
			t.Errorf("%s: no cliff at 18K cap (%.3f Mbps)", r.Label, last)
		}
		peak := 0.0
		for _, v := range r.Values {
			if v > peak {
				peak = v
			}
		}
		if peak < r.Values[0]*1.02 {
			t.Errorf("%s: no rise before the cliff (first %.3f, peak %.3f)",
				r.Label, r.Values[0], peak)
		}
	}
	// Faster rates peak at larger caps (5K / 11K / 15K in the paper).
	peakIdx := func(vals []float64) int {
		idx := 0
		for i, v := range vals {
			if v > vals[idx] {
				idx = i
			}
			_ = v
		}
		return idx
	}
	if !(peakIdx(tab.Rows[0].Values) <= peakIdx(tab.Rows[1].Values) &&
		peakIdx(tab.Rows[1].Values) <= peakIdx(tab.Rows[2].Values)) {
		t.Error("peak aggregation size does not grow with rate")
	}
}

func TestTable4Shape(t *testing.T) {
	tab := Table4(opts)
	na := tab.Rows[0]
	// NA overhead grows with rate and sits near the paper's anchors.
	for i := 1; i < len(na.Values); i++ {
		if na.Values[i] <= na.Values[i-1] {
			t.Errorf("NA time overhead not increasing: %v", na.Values)
		}
	}
	if na.Values[0] < 12 || na.Values[0] > 35 {
		t.Errorf("NA overhead at 0.65 = %.1f%%, paper 22.4%%", na.Values[0])
	}
	if na.Values[3] < 38 || na.Values[3] > 62 {
		t.Errorf("NA overhead at 2.6 = %.1f%%, paper 52.1%%", na.Values[3])
	}
	// Aggregating schemes always below NA.
	for _, r := range tab.Rows[1:] {
		for i := range r.Values {
			if r.Values[i] >= na.Values[i] {
				t.Errorf("%s overhead %.1f%% not below NA %.1f%%", r.Label, r.Values[i], na.Values[i])
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3(opts)
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d", len(tab.Rows))
	}
	na, ua, ba, dba := tab.Rows[0], tab.Rows[1], tab.Rows[2], tab.Rows[3]
	if na.Values[1] != 100 {
		t.Errorf("NA TX%% = %.1f, must be 100", na.Values[1])
	}
	if !(ua.Values[0] > na.Values[0] && ba.Values[0] >= ua.Values[0]*0.9) {
		t.Errorf("frame sizes not increasing: %v %v %v", na.Values[0], ua.Values[0], ba.Values[0])
	}
	if !(ua.Values[1] < 50 && ba.Values[1] <= ua.Values[1] && dba.Values[1] <= ba.Values[1]*1.05) {
		t.Errorf("TX%% not decreasing: %v %v %v", ua.Values[1], ba.Values[1], dba.Values[1])
	}
	if !(na.Values[2] > ua.Values[2] && ua.Values[2] >= ba.Values[2]*0.95) {
		t.Errorf("size overhead not decreasing: %v %v %v", na.Values[2], ua.Values[2], ba.Values[2])
	}
}

// TestParallelMatchesSerial is the runner's acceptance contract at the
// experiments layer: byte-identical formatted tables at any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	for _, e := range []Experiment{{"fig11", Figure11}, {"table2", Table2}, {"table3", Table3}} {
		serial := e.Run(Options{Seed: 3, Quick: true, Workers: 1})
		for _, workers := range []int{4, 0} { // 0 = GOMAXPROCS
			par := e.Run(Options{Seed: 3, Quick: true, Workers: workers})
			if par.Format() != serial.Format() {
				t.Errorf("%s: workers=%d output differs from serial:\n%s\nvs\n%s",
					e.Name, workers, par.Format(), serial.Format())
			}
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var keys []string
	Table2(Options{Seed: 1, Quick: true, Workers: 2, Progress: func(p runner.Progress) {
		keys = append(keys, p.Key) // serialized by the pool
	}})
	if len(keys) != 4 {
		t.Fatalf("%d progress callbacks, want 4 (2 rates × NA/UA)", len(keys))
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := Figure11(Options{Seed: 5})
	b := Figure11(Options{Seed: 5})
	for i := range a.Rows {
		for j := range a.Rows[i].Values {
			if a.Rows[i].Values[j] != b.Rows[i].Values[j] {
				t.Fatalf("Figure 11 not deterministic at row %d col %d", i, j)
			}
		}
	}
}

func TestExtensionFairness(t *testing.T) {
	tab := ExtensionFairness(opts)
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		j := r.Values[2]
		if j < 0.5 || j > 1.0001 {
			t.Errorf("%s Jain index %.3f out of range", r.Label, j)
		}
		if r.Values[3] <= 0 {
			t.Errorf("%s aggregate goodput %.3f", r.Label, r.Values[3])
		}
	}
}

func TestExtensionDelay(t *testing.T) {
	tab := ExtensionDelay(opts)
	for _, r := range tab.Rows {
		mean, p50, p95 := r.Values[0], r.Values[1], r.Values[2]
		if mean <= 0 || p50 <= 0 || p95 < p50 {
			t.Errorf("%s delay stats broken: %v", r.Label, r.Values)
		}
	}
	// DBA's floor-holding must cost delay relative to BA.
	ba, dba := tab.Rows[2], tab.Rows[3]
	if dba.Values[0] <= ba.Values[0] {
		t.Errorf("DBA mean delay %.2fms not above BA %.2fms", dba.Values[0], ba.Values[0])
	}
}

// TestEveryExperimentRegenerates runs the full registry in quick mode:
// every table must produce finite, labelled rows without panicking. This
// is the same surface cmd/aggbench exposes.
func TestEveryExperimentRegenerates(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			tab := e.Run(opts)
			if tab.ID == "" || tab.Title == "" {
				t.Fatalf("%s: missing ID/title", e.Name)
			}
			if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
				t.Fatalf("%s: empty table", e.Name)
			}
			for _, r := range tab.Rows {
				if r.Label == "" {
					t.Errorf("%s: unlabelled row", e.Name)
				}
				if len(r.Values) != len(tab.Columns) {
					t.Errorf("%s row %q: %d values for %d columns",
						e.Name, r.Label, len(r.Values), len(tab.Columns))
				}
				for i, v := range r.Values {
					if v != v || v < 0 { // NaN or negative
						t.Errorf("%s row %q col %d: bad value %v", e.Name, r.Label, i, v)
					}
				}
			}
			if tab.Format() == "" {
				t.Errorf("%s: empty formatting", e.Name)
			}
		})
	}
}
