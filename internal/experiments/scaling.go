package experiments

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// Scaling experiment defaults: the network sizes the paper's 9-node
// testbed could never reach, exercised on generated sparse meshes.
var (
	defaultMeshSizes = []int{25, 100, 400}
	defaultMeshTopos = []string{core.MeshGrid, core.MeshDisk}
)

func (o Options) meshSizes() []int {
	if len(o.MeshSizes) > 0 {
		return o.MeshSizes
	}
	return defaultMeshSizes
}

func (o Options) meshTopos() []string {
	if len(o.MeshTopos) > 0 {
		return o.MeshTopos
	}
	return defaultMeshTopos
}

// scalingFlows sizes the concurrent-flow population for an N-node mesh.
// The population grows with the mesh up to a cap of 512 concurrent flows:
// past that, more sessions measure scheduler pressure rather than spectrum
// behavior, and the per-flow route state would dominate large-N memory.
// The cap only binds above N=6144, so every size with committed goldens or
// bench baselines (N ≤ 1600) is untouched.
func scalingFlows(n int) int {
	f := n / 12
	if f < 4 {
		return 4
	}
	if f > 512 {
		return 512
	}
	return f
}

// sparseRouteThreshold is the mesh size past which scaling cells switch to
// endpoint-only route installation: behaviorally identical for static mesh
// runs (see core.MeshTCPConfig.SparseRoutes) and avoids the O(N²)
// route-table build that dominated startup at N ≥ 6400. Every size with
// committed goldens or bench baselines sits below it.
const sparseRouteThreshold = 2048

// ScalingMesh measures aggregate TCP goodput over generated sparse meshes
// as the network grows — N ∈ {25, 100, 400} by default — under all three
// base schemes. Each cell runs max(4, N/12) concurrent multi-hop flows
// (30 KB each) through the shared spectrum; the neighbor-indexed medium
// keeps per-transmission cost proportional to node degree, so the N=400
// cells simulate at the same per-event speed as the paper's 4-node chains.
func ScalingMesh(o Options) Table {
	sizes := o.meshSizes()
	t := Table{
		ID:    "Scaling",
		Title: "Mesh scaling: aggregate TCP goodput across concurrent flows (Mbps)",
		Notes: "flows per cell = max(4, N/12); grid is k x k at unit spacing, disk is seeded uniform placement (bridged if split); incomplete flows count 0 Mbps",
	}
	for _, n := range sizes {
		t.Columns = append(t.Columns, fmt.Sprintf("N%d", n))
	}
	var p plan
	for _, topo := range o.meshTopos() {
		for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA} {
			ri := len(t.Rows)
			t.Rows = append(t.Rows, Row{Label: fmt.Sprintf("%s %s", topo, scheme.Name())})
			for _, n := range sizes {
				p.mesh(fmt.Sprintf("scaling/%s/%s/N%d", topo, scheme.Name(), n),
					ScalingCell(topo, scheme, n, o.Seed),
					func(r core.MeshResult) {
						t.Rows[ri].Values = append(t.Rows[ri].Values, r.AggregateMbps)
					})
			}
		}
	}
	p.run(o)
	return t
}

// ScalingCell builds the mesh config of one scaling-experiment cell.
// cmd/aggbench's -benchjson mode and bench_test.go reuse it so the
// committed bench records measure exactly the experiment's configuration.
func ScalingCell(topo string, scheme mac.Scheme, n int, seed int64) core.MeshTCPConfig {
	return core.MeshTCPConfig{
		Scheme: scheme, Rate: phy.Rate2600k,
		Topology: topo, Nodes: n, Flows: scalingFlows(n),
		FileBytes: 30_000, Seed: seed,
		Deadline:     1200 * time.Second,
		SparseRoutes: n >= sparseRouteThreshold,
	}
}
