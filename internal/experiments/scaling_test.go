package experiments

import (
	"testing"

	"aggmac/internal/core"
)

func TestScalingMeshShape(t *testing.T) {
	// Small sizes keep the test quick; the structure is what matters here.
	o := Options{Seed: 1, MeshSizes: []int{16, 25}, MeshTopos: []string{core.MeshGrid}}
	tab := ScalingMesh(o)
	if len(tab.Columns) != 2 || tab.Columns[0] != "N16" || tab.Columns[1] != "N25" {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 3 { // grid × {NA, UA, BA}
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 2 {
			t.Fatalf("row %q has %d values", r.Label, len(r.Values))
		}
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("row %q col %d: aggregate goodput %v", r.Label, i, v)
			}
		}
	}
	if tab.Rows[0].Label != "grid NA" || tab.Rows[2].Label != "grid BA" {
		t.Errorf("row labels = %q, %q, %q", tab.Rows[0].Label, tab.Rows[1].Label, tab.Rows[2].Label)
	}
}

func TestScalingDefaults(t *testing.T) {
	var o Options
	if got := o.meshSizes(); len(got) != 3 || got[0] != 25 || got[2] != 400 {
		t.Errorf("default sizes = %v", got)
	}
	if got := o.meshTopos(); len(got) != 2 || got[0] != core.MeshGrid || got[1] != core.MeshDisk {
		t.Errorf("default topos = %v", got)
	}
	if scalingFlows(25) != 4 || scalingFlows(100) != 8 || scalingFlows(400) != 33 {
		t.Errorf("flow sizing: %d/%d/%d", scalingFlows(25), scalingFlows(100), scalingFlows(400))
	}
}
