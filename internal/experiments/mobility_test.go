package experiments

import (
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
)

func TestMobilityShape(t *testing.T) {
	// One speed and one interval keep the test quick; the column triple
	// (goodput, route flaps, link churn) per interval is the structure
	// under test.
	o := Options{
		Seed:              1,
		MobilitySpeeds:    []float64{3},
		MobilityIntervals: []time.Duration{500 * time.Millisecond},
	}
	tab := Mobility(o)
	wantCols := []string{"Mbps@0.5s", "Flaps@0.5s", "Churn@0.5s"}
	if len(tab.Columns) != len(wantCols) {
		t.Fatalf("columns = %v", tab.Columns)
	}
	for i, c := range wantCols {
		if tab.Columns[i] != c {
			t.Fatalf("column %d = %q, want %q", i, tab.Columns[i], c)
		}
	}
	if len(tab.Rows) != 3 { // {NA, UA, BA} × one speed
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	if tab.Rows[0].Label != "NA v=3" || tab.Rows[2].Label != "BA v=3" {
		t.Errorf("row labels = %q .. %q", tab.Rows[0].Label, tab.Rows[2].Label)
	}
	for _, r := range tab.Rows {
		if len(r.Values) != 3 {
			t.Fatalf("row %q has %d values", r.Label, len(r.Values))
		}
		if r.Values[0] <= 0 {
			t.Errorf("row %q: goodput %v", r.Label, r.Values[0])
		}
		if r.Values[1] <= 0 || r.Values[2] <= 0 {
			t.Errorf("row %q: no churn reported (flaps=%v churn=%v) at speed 3",
				r.Label, r.Values[1], r.Values[2])
		}
	}
}

func TestMobilityDefaults(t *testing.T) {
	var o Options
	if got := o.mobilitySpeeds(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("default speeds = %v", got)
	}
	if got := o.mobilityIntervals(); len(got) != 2 ||
		got[0] != 500*time.Millisecond || got[1] != 2*time.Second {
		t.Errorf("default intervals = %v", got)
	}
	cell := MobilityCell(mac.BA, 2, time.Second, 7)
	if cell.Mobility != core.MobilityWaypoint || cell.Speed != 2 ||
		cell.MoveInterval != time.Second || cell.Seed != 7 {
		t.Errorf("MobilityCell = %+v", cell)
	}
}
