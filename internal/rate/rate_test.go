package rate

import (
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

var peer = frame.NodeAddr(1)

func TestFixedNeverMoves(t *testing.T) {
	var c mac.RateController = Fixed(phy.Rate1300k)
	for i := 0; i < 5; i++ {
		c.OnResult(peer, phy.Rate1300k, false)
		c.OnFeedback(peer, 3)
	}
	if c.TxRate(peer) != phy.Rate1300k {
		t.Fatal("Fixed moved")
	}
}

func TestARFStepsUpAfterSuccesses(t *testing.T) {
	a := NewARF(phy.Rate650k)
	for i := 0; i < a.UpAfter; i++ {
		if a.TxRate(peer) != phy.Rate650k {
			t.Fatalf("shifted early at %d", i)
		}
		a.OnResult(peer, phy.Rate650k, true)
	}
	if a.TxRate(peer) != phy.Rate1300k {
		t.Fatalf("no up-shift after %d successes: %v", a.UpAfter, a.TxRate(peer))
	}
}

func TestARFStepsDownAfterFailures(t *testing.T) {
	a := NewARF(phy.Rate2600k)
	a.OnResult(peer, phy.Rate2600k, false)
	if a.TxRate(peer) != phy.Rate2600k {
		t.Fatal("one failure must not shift")
	}
	a.OnResult(peer, phy.Rate2600k, false)
	if a.TxRate(peer) != phy.Rate1950k {
		t.Fatalf("no down-shift after 2 failures: %v", a.TxRate(peer))
	}
}

func TestARFProbeFailureRetreatsImmediately(t *testing.T) {
	a := NewARF(phy.Rate650k)
	for i := 0; i < a.UpAfter; i++ {
		a.OnResult(peer, phy.Rate650k, true)
	}
	if a.TxRate(peer) != phy.Rate1300k {
		t.Fatal("setup failed")
	}
	// One failure on the probe rate retreats at once.
	a.OnResult(peer, phy.Rate1300k, false)
	if a.TxRate(peer) != phy.Rate650k {
		t.Fatalf("probe failure did not retreat: %v", a.TxRate(peer))
	}
}

func TestARFBounds(t *testing.T) {
	a := NewARF(phy.Rate650k)
	// Never below the bottom rate.
	for i := 0; i < 10; i++ {
		a.OnResult(peer, a.TxRate(peer), false)
	}
	if a.TxRate(peer) != phy.Rate650k {
		t.Fatal("fell below bottom rate")
	}
	// Never above MaxRate.
	a.MaxRate = phy.Rate1300k
	for i := 0; i < 100; i++ {
		a.OnResult(peer, a.TxRate(peer), true)
	}
	if a.TxRate(peer) > phy.Rate1300k {
		t.Fatalf("exceeded MaxRate: %v", a.TxRate(peer))
	}
}

func TestARFStaleResultIgnored(t *testing.T) {
	a := NewARF(phy.Rate1300k)
	// Feedback for a rate we are no longer using must not count.
	a.OnResult(peer, phy.Rate2600k, false)
	a.OnResult(peer, phy.Rate2600k, false)
	if a.TxRate(peer) != phy.Rate1300k {
		t.Fatal("stale results shifted the rate")
	}
}

func TestARFPerPeerState(t *testing.T) {
	a := NewARF(phy.Rate1300k)
	other := frame.NodeAddr(2)
	a.OnResult(peer, phy.Rate1300k, false)
	a.OnResult(peer, phy.Rate1300k, false)
	if a.TxRate(peer) != phy.Rate650k || a.TxRate(other) != phy.Rate1300k {
		t.Fatal("peer states leaked")
	}
}

func TestRBARPicksByFeedback(t *testing.T) {
	r := NewRBAR(phy.DefaultParams(), phy.Rate650k)
	if r.TxRate(peer) != phy.Rate650k {
		t.Fatal("no-feedback fallback wrong")
	}
	// 25 dB (the paper's SNR): 64-QAM is out, 16-QAM 3/4 is fine.
	r.OnFeedback(peer, 25)
	if got := r.TxRate(peer); got != phy.Rate3900k {
		t.Errorf("at 25 dB RBAR picked %v, want 3.9Mbps (fastest reliable)", got)
	}
	// Feed a collapse: smoothing pulls the estimate down over a few
	// samples and the rate follows.
	for i := 0; i < 12; i++ {
		r.OnFeedback(peer, 8)
	}
	if got := r.TxRate(peer); got > phy.Rate1300k {
		t.Errorf("after collapse to 8 dB RBAR still at %v", got)
	}
}

func TestRBARBestRateMonotone(t *testing.T) {
	r := NewRBAR(phy.DefaultParams(), phy.Rate650k)
	prev := phy.Rate650k
	for snr := 0.0; snr <= 40; snr += 1 {
		got := r.BestRate(snr)
		if got < prev {
			t.Fatalf("BestRate not monotone at %v dB: %v after %v", snr, got, prev)
		}
		prev = got
	}
	if prev < phy.Rate5200k {
		t.Errorf("BestRate never reaches 64-QAM even at 40 dB: %v", prev)
	}
}

// Over-the-air convergence: ARF on a clean 25 dB link climbs to the
// fastest reliable rate (3.9 Mbps) and stays there; on a 14 dB link it
// settles low.
func TestARFConvergesOverTheAir(t *testing.T) {
	run := func(snr float64) phy.Rate {
		s := sim.NewScheduler(3)
		med := medium.New(s, phy.DefaultParams(), 2)
		ctrl := NewARF(phy.Rate650k)
		opts := mac.DefaultOptions(mac.UA, phy.Rate650k)
		opts.RateController = ctrl
		var macs []*mac.MAC
		for i := 0; i < 2; i++ {
			macs = append(macs, mac.New(s, med, medium.NodeID(i), opts,
				func(frame.DecodedSubframe, bool) {}))
		}
		med.SetSNR(0, 1, snr)
		// Long steady unicast stream 0 -> 1.
		n := 0
		var feed func()
		feed = func() {
			if n >= 400 {
				return
			}
			_, uq := macs[0].QueueLen()
			for i := uq; i < 3; i++ {
				macs[0].Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
					Payload: make([]byte, 1436)}, false)
				n++
			}
			s.After(5*time.Millisecond, "feed", feed)
		}
		s.After(0, "start", func() { feed() })
		s.RunUntil(30 * time.Second)
		return ctrl.TxRate(frame.NodeAddr(1))
	}
	if got := run(25); got < phy.Rate2600k || got > phy.Rate5200k {
		t.Errorf("at 25 dB ARF settled at %v, want near 3.9Mbps", got)
	}
	if got := run(14); got > phy.Rate1950k {
		t.Errorf("at 14 dB ARF settled at %v, want a low rate", got)
	}
}

// RBAR over the air: SNR feedback from the CTS drives the choice without
// any loss probing.
func TestRBAROverTheAir(t *testing.T) {
	s2 := sim.NewScheduler(4)
	med2 := medium.New(s2, phy.DefaultParams(), 2)
	ctrl2 := NewRBAR(phy.DefaultParams(), phy.Rate650k)
	opts2 := mac.DefaultOptions(mac.UA, phy.Rate650k)
	opts2.RateController = ctrl2
	delivered := 0
	sender := mac.New(s2, med2, medium.NodeID(0), opts2, func(frame.DecodedSubframe, bool) {})
	mac.New(s2, med2, medium.NodeID(1), opts2, func(frame.DecodedSubframe, bool) { delivered++ })
	s2.After(0, "enq", func() {
		for i := 0; i < 20; i++ {
			sender.Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
				Payload: make([]byte, 1436)}, false)
		}
	})
	s2.RunUntil(10 * time.Second)
	if delivered != 20 {
		t.Fatalf("delivered %d of 20", delivered)
	}
	// After the first CTS, RBAR has 25 dB feedback and jumps to 3.9 Mbps.
	if r := ctrl2.TxRate(frame.NodeAddr(1)); r != phy.Rate3900k {
		t.Errorf("RBAR rate after feedback = %v, want 3.9Mbps", r)
	}
}
