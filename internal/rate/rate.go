// Package rate implements the link rate-adaptation algorithms the Hydra
// MAC supports (§4.1.2 of the paper): ARF (auto rate fallback, Kamerman &
// Monteban) and an RBAR-style receiver-based scheme that uses the explicit
// SNR feedback Hydra carries in its RTS/CTS exchange. The paper's
// experiments pin the rate, but §7 proposes rate-adaptive aggregation;
// these controllers plug into mac.Options.RateController to enable it.
package rate

import (
	"math"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
)

// Controller selects the unicast-portion rate per destination and learns
// from transmission outcomes and receiver feedback.
type Controller interface {
	// TxRate returns the rate to use for the next transmission to dst.
	TxRate(dst frame.Addr) phy.Rate
	// OnResult reports one unicast exchange outcome at rate r.
	OnResult(dst frame.Addr, r phy.Rate, ok bool)
	// OnFeedback reports a receiver SNR measurement (from the RTS/CTS
	// exchange; with reciprocal links the CTS reception SNR is
	// equivalent).
	OnFeedback(dst frame.Addr, snrdB float64)
}

// Fixed always uses one rate (the paper's experimental configuration).
type Fixed phy.Rate

// TxRate implements Controller.
func (f Fixed) TxRate(frame.Addr) phy.Rate { return phy.Rate(f) }

// OnResult implements Controller.
func (f Fixed) OnResult(frame.Addr, phy.Rate, bool) {}

// OnFeedback implements Controller.
func (f Fixed) OnFeedback(frame.Addr, float64) {}

// ARF is classic auto rate fallback: step up after a run of successes,
// step down after consecutive failures, and retreat immediately if the
// probe transmission right after an up-shift fails.
type ARF struct {
	// UpAfter successes trigger an up-shift (default 10).
	UpAfter int
	// DownAfter consecutive failures trigger a down-shift (default 2).
	DownAfter int
	// MaxRate bounds the climb (default the top Hydra rate).
	MaxRate phy.Rate

	start phy.Rate
	peers map[frame.Addr]*arfState
}

type arfState struct {
	rate      phy.Rate
	successes int
	failures  int
	probing   bool // the previous up-shift has not proven itself yet
}

// NewARF returns an ARF controller starting every peer at start.
func NewARF(start phy.Rate) *ARF {
	return &ARF{
		UpAfter:   10,
		DownAfter: 2,
		MaxRate:   phy.Rate6500k,
		peers:     map[frame.Addr]*arfState{},
		start:     start,
	}
}

// start is stored outside the exported fields so zero-value tweaks to
// UpAfter/DownAfter don't disturb it.
func (a *ARF) state(dst frame.Addr) *arfState {
	s, ok := a.peers[dst]
	if !ok {
		s = &arfState{rate: a.start}
		a.peers[dst] = s
	}
	return s
}

// TxRate implements Controller.
func (a *ARF) TxRate(dst frame.Addr) phy.Rate { return a.state(dst).rate }

// OnResult implements Controller.
func (a *ARF) OnResult(dst frame.Addr, r phy.Rate, ok bool) {
	s := a.state(dst)
	if r != s.rate {
		return // stale feedback from before a shift
	}
	if ok {
		s.failures = 0
		s.successes++
		s.probing = false
		if s.successes >= a.UpAfter && s.rate < a.MaxRate {
			s.rate++
			s.successes = 0
			s.probing = true
		}
		return
	}
	s.successes = 0
	s.failures++
	if (s.probing || s.failures >= a.DownAfter) && s.rate > phy.Rate650k {
		s.rate--
		s.failures = 0
		s.probing = false
	}
}

// OnFeedback implements Controller (ARF ignores SNR feedback).
func (a *ARF) OnFeedback(frame.Addr, float64) {}

// RBAR picks the fastest rate whose predicted frame error rate stays under
// a target, given the receiver's SNR feedback (Holland, Vaidya & Bahl,
// adapted to Hydra's explicit-feedback RTS/CTS).
type RBAR struct {
	// Params supplies the BER model (implementation loss etc.).
	Params phy.Params
	// FrameBits is the frame size the FER target is evaluated at
	// (default: one maximum aggregate, 5120 bytes).
	FrameBits float64
	// TargetFER is the acceptable frame error rate (default 0.1).
	TargetFER float64
	// Fallback is used before any feedback arrives.
	Fallback phy.Rate

	snr map[frame.Addr]float64
}

// NewRBAR returns an RBAR controller with the paper-calibrated PHY model.
func NewRBAR(params phy.Params, fallback phy.Rate) *RBAR {
	return &RBAR{
		Params:    params,
		FrameBits: 5120 * 8,
		TargetFER: 0.1,
		Fallback:  fallback,
		snr:       map[frame.Addr]float64{},
	}
}

// BestRate returns the fastest rate meeting the FER target at the given
// received SNR.
func (r *RBAR) BestRate(snrdB float64) phy.Rate {
	best := phy.Rate650k
	eff := snrdB - r.Params.ImplLossdB
	for _, cand := range phy.AllRates() {
		ber := phy.BitErrorRate(cand, eff)
		fer := -math.Expm1(r.FrameBits * math.Log1p(-ber))
		if fer <= r.TargetFER {
			best = cand
		}
	}
	return best
}

// TxRate implements Controller.
func (r *RBAR) TxRate(dst frame.Addr) phy.Rate {
	snr, ok := r.snr[dst]
	if !ok {
		return r.Fallback
	}
	return r.BestRate(snr)
}

// OnResult implements Controller (RBAR is feedback-driven).
func (r *RBAR) OnResult(frame.Addr, phy.Rate, bool) {}

// OnFeedback implements Controller.
func (r *RBAR) OnFeedback(dst frame.Addr, snrdB float64) {
	// Exponentially smoothed to ride out per-frame fading.
	if old, ok := r.snr[dst]; ok {
		snrdB = 0.75*old + 0.25*snrdB
	}
	r.snr[dst] = snrdB
}
