package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"aggmac/internal/sim"
)

// A nil Registry must hand out nil handles, and every operation on them
// must be a safe no-op: that is the entire metrics-off fast path.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Add(3)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	reg.Gauge("g", func() float64 { return 1 })
	h := reg.Histogram("h", []float64{1, 2})
	if h != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
	h.Observe(1.5)
	reg.Start(sim.NewScheduler(1), time.Millisecond, time.Second)

	var rec *Recorder
	if rec.Summary() != nil {
		t.Fatalf("nil recorder Summary != nil")
	}
	if err := rec.WriteJSONL(&bytes.Buffer{}); err == nil {
		t.Fatalf("nil recorder WriteJSONL succeeded")
	}
}

func TestCounterAndGaugeSampling(t *testing.T) {
	sched := sim.NewScheduler(1)
	rec := NewRecorder(10 * time.Millisecond)
	reg := rec.Registry(0)
	c := reg.Counter("events")
	g := 0.0
	reg.Gauge("level", func() float64 { return g })

	// Bump the counter and gauge between ticks via scheduled events.
	for i := 1; i <= 5; i++ {
		i := i
		sched.At(sim.Time(i)*sim.Time(10*time.Millisecond)-1, "bump", func() {
			c.Add(uint64(i))
			g = float64(i)
		})
	}
	reg.Start(sched, rec.Interval(), 50*time.Millisecond)
	sched.RunUntil(50 * time.Millisecond)

	if got := reg.Ticks(); got != 5 {
		t.Fatalf("ticks = %d, want 5", got)
	}
	s := rec.Summary()
	byName := map[string]MetricSummary{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	// Counter samples are cumulative: 1, 3, 6, 10, 15.
	if m := byName["events"]; m.Last != 15 || m.Min != 1 || m.Max != 15 {
		t.Fatalf("counter summary = %+v, want last=15 min=1 max=15", m)
	}
	if m := byName["level"]; m.Last != 5 || m.Min != 1 || m.Max != 5 || m.Mean != 3 {
		t.Fatalf("gauge summary = %+v, want last=5 min=1 max=5 mean=3", m)
	}
}

func TestHistogramBuckets(t *testing.T) {
	rec := NewRecorder(0)
	if rec.Interval() != DefaultInterval {
		t.Fatalf("interval = %v, want default %v", rec.Interval(), DefaultInterval)
	}
	h := rec.Registry(0).Histogram("sizes", []float64{10, 20, 30})
	for _, v := range []float64{5, 10, 15, 25, 100} {
		h.Observe(v)
	}
	// Bounds are upper-inclusive: 5,10 land in bucket 0; 15 in bucket 1;
	// 25 in bucket 2; 100 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if h.buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (buckets %v)", i, h.buckets[i], w, h.buckets)
		}
	}
	if h.count != 5 || h.sum != 155 {
		t.Fatalf("count=%d sum=%v, want 5, 155", h.count, h.sum)
	}
}

func TestHistogramObserveDoesNotAllocate(t *testing.T) {
	h := NewRecorder(0).Registry(0).Histogram("h", []float64{1, 2, 4, 8})
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3) }); n != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(3) }); n != 0 {
		t.Fatalf("nil Observe allocates %v per op, want 0", n)
	}
}

func TestRegistryDedupAndGaps(t *testing.T) {
	rec := NewRecorder(time.Millisecond)
	reg := rec.Registry(2) // skipping shards 0, 1 must not panic
	if rec.Registry(2) != reg {
		t.Fatalf("Registry(2) not stable across calls")
	}
	c1 := reg.Counter("dup")
	c2 := reg.Counter("dup")
	if c1 != c2 {
		t.Fatalf("duplicate counter registration returned distinct handles")
	}
}

// sampleRun drives one deterministic run with every metric kind and
// returns the JSONL bytes.
func sampleRun(t *testing.T) []byte {
	t.Helper()
	sched := sim.NewScheduler(7)
	rec := NewRecorder(5 * time.Millisecond)
	reg := rec.Registry(0)
	c := reg.Counter("n")
	reg.Gauge("g", func() float64 { return float64(sched.Now()) })
	h := reg.Histogram("h", []float64{100, 200})
	sched.After(time.Millisecond, "work", func() {
		c.Add(2)
		h.Observe(150)
		h.Observe(999)
	})
	reg.Start(sched, rec.Interval(), 20*time.Millisecond)
	sched.RunUntil(20 * time.Millisecond)
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestWriteJSONLDeterministic(t *testing.T) {
	a := sampleRun(t)
	b := sampleRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs across identical runs:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteJSONLShape(t *testing.T) {
	out := sampleRun(t)
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	// header + ticks + 3 series + summary
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), out)
	}
	var hdr struct {
		Telemetry  int   `json:"telemetry"`
		IntervalNS int64 `json:"interval_ns"`
		Shards     int   `json:"shards"`
		Series     int   `json:"series"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Telemetry != SchemaVersion || hdr.Shards != 1 || hdr.Series != 3 ||
		hdr.IntervalNS != int64(5*time.Millisecond) {
		t.Fatalf("header = %+v", hdr)
	}
	kinds := map[string]int{}
	for _, line := range lines[1:] {
		var generic struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &generic); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		kinds[generic.Kind]++
	}
	if kinds["ticks"] != 1 || kinds["series"] != 3 || kinds["summary"] != 1 {
		t.Fatalf("line kinds = %v", kinds)
	}
}

func TestSummaryHistogram(t *testing.T) {
	rec := NewRecorder(time.Millisecond)
	h := rec.Registry(0).Histogram("h", []float64{10})
	h.Observe(4)
	h.Observe(6)
	s := rec.Summary()
	if len(s.Metrics) != 1 {
		t.Fatalf("metrics = %+v", s.Metrics)
	}
	m := s.Metrics[0]
	if m.Count != 2 || m.Sum != 10 || m.Mean != 5 || m.Last != 5 {
		t.Fatalf("hist summary = %+v, want count=2 sum=10 mean=5 last=5", m)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	spans := []sim.ShardSpan{
		{Shard: 0, Kind: "run", Start: 0, End: 2 * time.Millisecond, SimAt: 10, Events: 42},
		{Shard: 1, Kind: "blocked", Start: time.Millisecond, End: 3 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.Bytes())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0]["ph"] != "X" || events[0]["name"] != "run" {
		t.Fatalf("event[0] = %v", events[0])
	}
	if _, ok := events[0]["args"]; !ok {
		t.Fatalf("run span missing args: %v", events[0])
	}
}
