// Package telemetry is the deterministic observability layer: counters,
// gauges and fixed-bucket histograms registered per component, sampled
// into time-series on simulated-time scheduler ticks, exported as
// versioned JSONL and summarized into the CLIs' -json envelopes.
//
// Determinism contract. Everything exported derives from simulated time
// and simulation state: samples are taken by scheduler events at fixed
// simulated instants, registration order fixes series order, and no
// wall-clock value ever enters a series (wall-clock shard diagnostics
// go to the separate Chrome trace exporter, which is explicitly
// non-deterministic). A metrics-on run therefore produces byte-identical
// JSONL across repeats and GOMAXPROCS settings. A metrics-off run (nil
// Recorder) schedules nothing and draws no randomness, so event
// sequences — and golden hashes — are untouched.
//
// Overhead contract. Disabled is the default and costs almost nothing:
// a nil *Registry hands out nil instrument handles, and every handle
// method nil-checks its receiver, so instrumented hot paths carry one
// predictable branch and zero allocations. Enabled-path sampling
// allocates only when a series grows.
//
// Concurrency contract. A Registry is confined to one scheduler: its
// gauges and histograms are read and written only by that scheduler's
// event loop (sharded runs use one Registry per shard, keyed by shard
// index). Counters alone are atomic, so layers that complete work on
// foreign goroutines — the runner's worker pool — may share them.
package telemetry

import (
	"sync/atomic"
	"time"

	"aggmac/internal/sim"
)

// DefaultInterval is the sampling period used when a Recorder is built
// with a non-positive interval: 10 samples per simulated second.
const DefaultInterval = 100 * time.Millisecond

// Recorder owns the telemetry of one run: a sampling interval and one
// Registry per shard (a sequential run uses shard 0 only). Build it
// before the run, pass it through the config, and export after.
type Recorder struct {
	interval time.Duration
	regs     []*Registry
}

// NewRecorder returns a Recorder sampling every interval of simulated
// time, or every DefaultInterval if interval is not positive.
func NewRecorder(interval time.Duration) *Recorder {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Recorder{interval: interval}
}

// Interval reports the simulated-time sampling period.
func (r *Recorder) Interval() time.Duration { return r.interval }

// Registry returns the registry for the given shard index, creating it
// and any lower-indexed gaps on first use. Call during single-threaded
// run construction, before shard goroutines start.
func (r *Recorder) Registry(shard int) *Registry {
	if r == nil {
		return nil
	}
	for len(r.regs) <= shard {
		r.regs = append(r.regs, &Registry{shard: len(r.regs)})
	}
	return r.regs[shard]
}

// Registry holds one scheduler's instruments in registration order —
// the order that fixes series order in every export.
type Registry struct {
	shard   int
	metrics []*metric
	byName  map[string]*metric
	times   []time.Duration // tick instants, shared by all series
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHist
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "hist"
	}
}

type metric struct {
	name    string
	kind    metricKind
	counter *Counter
	gauge   func() float64
	hist    *Histogram

	samples []float64  // one scalar per tick (counter, gauge)
	ticks   []histTick // one snapshot per tick (hist)
}

type histTick struct {
	count   uint64
	sum     float64
	buckets []uint64
}

// Counter is a monotonically increasing count. Add is atomic and
// nil-safe, so a nil Counter (metrics disabled) is a no-op handle.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n. Safe on a nil receiver and from any
// goroutine.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram accumulates observations into fixed buckets chosen at
// registration. Observe is nil-safe and allocation-free: bucket i
// counts observations v with v <= bounds[i]; the final bucket is the
// overflow. Confined to the owning scheduler's goroutine.
type Histogram struct {
	bounds  []float64
	buckets []uint64
	count   uint64
	sum     float64
}

// Observe records one observation. Safe on a nil receiver; never
// allocates.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i]++
	h.count++
	h.sum += v
}

// Counter registers (or returns the existing) counter under name.
// Returns a nil — still usable — handle on a nil Registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if m := r.byName[name]; m != nil {
		return m.counter
	}
	c := &Counter{}
	r.register(&metric{name: name, kind: kindCounter, counter: c})
	return c
}

// Gauge registers a sampled read-out. fn runs on sampler ticks, on the
// owning scheduler's goroutine; it must not mutate simulation state or
// draw randomness. No-op on a nil Registry.
func (r *Registry) Gauge(name string, fn func() float64) {
	if r == nil {
		return
	}
	if m := r.byName[name]; m != nil {
		m.gauge = fn
		return
	}
	r.register(&metric{name: name, kind: kindGauge, gauge: fn})
}

// Histogram registers a fixed-bucket histogram with the given upper
// bounds (ascending; an overflow bucket is implicit). Returns a nil
// handle on a nil Registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if m := r.byName[name]; m != nil {
		return m.hist
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]uint64, len(bounds)+1),
	}
	r.register(&metric{name: name, kind: kindHist, hist: h})
	return h
}

func (r *Registry) register(m *metric) {
	if r.byName == nil {
		r.byName = make(map[string]*metric)
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// Start schedules sampler ticks on sched every interval of simulated
// time up to and including until. No-op on a nil Registry, so a
// metrics-off run schedules nothing and its event sequence is
// untouched. Tick callbacks only read state and append samples — they
// never mutate the simulation or consume the scheduler's RNG.
func (r *Registry) Start(sched *sim.Scheduler, interval, until time.Duration) {
	if r == nil || interval <= 0 {
		return
	}
	var tick func()
	tick = func() {
		now := sched.Now()
		r.sample(now)
		if now+interval <= until {
			sched.After(interval, "telemetry: sample", tick)
		}
	}
	if interval <= until {
		sched.After(interval, "telemetry: sample", tick)
	}
}

// sample appends one tick at simulated instant now to every series.
func (r *Registry) sample(now time.Duration) {
	r.times = append(r.times, now)
	for _, m := range r.metrics {
		switch m.kind {
		case kindCounter:
			m.samples = append(m.samples, float64(m.counter.Value()))
		case kindGauge:
			m.samples = append(m.samples, m.gauge())
		case kindHist:
			m.ticks = append(m.ticks, histTick{
				count:   m.hist.count,
				sum:     m.hist.sum,
				buckets: append([]uint64(nil), m.hist.buckets...),
			})
		}
	}
}

// Ticks reports how many samples have been taken.
func (r *Registry) Ticks() int {
	if r == nil {
		return 0
	}
	return len(r.times)
}
