// Chrome trace-event export for sharded runs.
//
// The shard engine, with diagnostics enabled, records wall-clock spans
// of each shard goroutine either executing events ("run") or waiting on
// a neighbor's horizon ("blocked"). Rendered as trace events — one
// track per shard — chrome://tracing or https://ui.perfetto.dev makes
// shard imbalance visible at a glance: a laggard shard shows long run
// spans while its neighbors sit blocked.
//
// Unlike the JSONL metrics export this output is wall-clock and
// therefore intentionally NOT deterministic; it never feeds golden
// hashes or -json summaries.
package telemetry

import (
	"encoding/json"
	"io"

	"aggmac/internal/sim"
)

// chromeEvent is one complete ("ph":"X") trace event in the Chrome
// trace-event JSON-array format; ts and dur are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

// WriteChromeTrace renders shard spans as a Chrome trace-event file.
func WriteChromeTrace(w io.Writer, spans []sim.ShardSpan) error {
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Kind,
			Ph:   "X",
			TS:   float64(sp.Start) / 1e3,
			Dur:  float64(sp.End-sp.Start) / 1e3,
			PID:  0,
			TID:  sp.Shard,
		}
		if sp.Kind == "run" {
			ev.Args = map[string]uint64{
				"events": sp.Events,
				"sim_us": uint64(sp.SimAt) / 1e3,
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(events)
}
