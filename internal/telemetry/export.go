// JSONL export and the per-run summary embedded in -json output.
//
// The export is versioned and line-oriented so downstream tooling can
// stream it: a header line, then per shard one tick-times line followed
// by one line per series in registration order, and a final summary
// line. Every value derives from simulated time or simulation state, so
// the bytes are identical across repeats and GOMAXPROCS settings.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// SchemaVersion identifies the JSONL export format.
const SchemaVersion = 1

type headerLine struct {
	Telemetry  int   `json:"telemetry"`
	IntervalNS int64 `json:"interval_ns"`
	Shards     int   `json:"shards"`
	Series     int   `json:"series"`
}

type ticksLine struct {
	Kind  string  `json:"kind"`
	Shard int     `json:"shard"`
	TNS   []int64 `json:"t_ns"`
}

type seriesLine struct {
	Kind   string     `json:"kind"`
	Shard  int        `json:"shard"`
	Name   string     `json:"name"`
	Type   string     `json:"type"`
	V      []float64  `json:"v,omitempty"`
	Bounds []float64  `json:"bounds,omitempty"`
	Count  []uint64   `json:"count,omitempty"`
	Sum    []float64  `json:"sum,omitempty"`
	Bucket [][]uint64 `json:"buckets,omitempty"`
}

type summaryLine struct {
	Kind string `json:"kind"`
	*Summary
}

// WriteJSONL writes the full export: header, per-shard tick times and
// series lines, and a trailing summary line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("telemetry: nil Recorder")
	}
	enc := json.NewEncoder(w)
	series := 0
	for _, reg := range r.regs {
		series += len(reg.metrics)
	}
	if err := enc.Encode(headerLine{
		Telemetry:  SchemaVersion,
		IntervalNS: int64(r.interval),
		Shards:     len(r.regs),
		Series:     series,
	}); err != nil {
		return err
	}
	for _, reg := range r.regs {
		tns := make([]int64, len(reg.times))
		for i, t := range reg.times {
			tns[i] = int64(t)
		}
		if err := enc.Encode(ticksLine{Kind: "ticks", Shard: reg.shard, TNS: tns}); err != nil {
			return err
		}
		for _, m := range reg.metrics {
			line := seriesLine{
				Kind:  "series",
				Shard: reg.shard,
				Name:  m.name,
				Type:  m.kind.String(),
			}
			if m.kind == kindHist {
				line.Bounds = m.hist.bounds
				line.Count = make([]uint64, len(m.ticks))
				line.Sum = make([]float64, len(m.ticks))
				line.Bucket = make([][]uint64, len(m.ticks))
				for i, t := range m.ticks {
					line.Count[i] = t.count
					line.Sum[i] = t.sum
					line.Bucket[i] = t.buckets
				}
			} else {
				line.V = m.samples
			}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
	}
	return enc.Encode(summaryLine{Kind: "summary", Summary: r.Summary()})
}

// Summary is the per-run digest embedded in -json output: one row per
// series with its last/min/max/mean over the sampled ticks. Histogram
// rows report cumulative observation count and sum (mean = sum/count)
// instead of min/max.
type Summary struct {
	Version    int             `json:"version"`
	IntervalNS int64           `json:"interval_ns"`
	Ticks      int             `json:"ticks"`
	Metrics    []MetricSummary `json:"metrics"`
}

// MetricSummary digests one series.
type MetricSummary struct {
	Name  string  `json:"name"`
	Shard int     `json:"shard"`
	Type  string  `json:"type"`
	Last  float64 `json:"last"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Mean  float64 `json:"mean,omitempty"`
	Count uint64  `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
}

// Summary digests every registered series. Deterministic: series order
// is registration order and all arithmetic runs in slice order.
func (r *Recorder) Summary() *Summary {
	if r == nil {
		return nil
	}
	s := &Summary{Version: SchemaVersion, IntervalNS: int64(r.interval)}
	for _, reg := range r.regs {
		if len(reg.times) > s.Ticks {
			s.Ticks = len(reg.times)
		}
		for _, m := range reg.metrics {
			ms := MetricSummary{Name: m.name, Shard: reg.shard, Type: m.kind.String()}
			if m.kind == kindHist {
				ms.Count = m.hist.count
				ms.Sum = m.hist.sum
				if ms.Count > 0 {
					ms.Mean = ms.Sum / float64(ms.Count)
					ms.Last = ms.Mean
				}
			} else if n := len(m.samples); n > 0 {
				ms.Last = m.samples[n-1]
				ms.Min, ms.Max = m.samples[0], m.samples[0]
				sum := 0.0
				for _, v := range m.samples {
					if v < ms.Min {
						ms.Min = v
					}
					if v > ms.Max {
						ms.Max = v
					}
					sum += v
				}
				ms.Mean = sum / float64(n)
			}
			s.Metrics = append(s.Metrics, ms)
		}
	}
	return s
}
