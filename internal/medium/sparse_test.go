package medium

import (
	"math/rand"
	"testing"

	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// shadowTable is a test-local reimplementation of the seed's dense N×N link
// matrix, with exactly its semantics: a zeroed diagonal, every off-diagonal
// SNR initialized to params.SNRdB, connectivity and SNR stored
// unconditionally (SNR persists across disconnects, self-pair SNR is
// writable even though self-links never connect). It is the independent
// oracle the sparse LinkTable is checked against — it shares no code with
// the production store.
type shadowTable struct {
	n         int
	connected [][]bool
	snr       [][]float64
}

func newShadowTable(params phy.Params, n int) *shadowTable {
	st := &shadowTable{
		n:         n,
		connected: make([][]bool, n),
		snr:       make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		st.connected[i] = make([]bool, n)
		st.snr[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				st.snr[i][j] = params.SNRdB
			}
		}
	}
	return st
}

func (st *shadowTable) setConnectedDirected(from, to int, on bool) {
	if from == to {
		return
	}
	st.connected[from][to] = on
}

func (st *shadowTable) setSNR(a, b int, v float64) {
	st.snr[a][b] = v
	st.snr[b][a] = v
}

// check compares every observable of the medium's link state against the
// shadow matrix: directed connectivity, directed SNR, the neighbor lists,
// degrees, and the directed-link count.
func (st *shadowTable) check(t *testing.T, m *Medium, step int) {
	t.Helper()
	directed := 0
	for a := 0; a < st.n; a++ {
		var wantNbrs []NodeID
		for b := 0; b < st.n; b++ {
			wantConn := a != b && st.connected[a][b]
			if got := m.Connected(NodeID(a), NodeID(b)); got != wantConn {
				t.Fatalf("step %d: Connected(%d,%d) = %v, shadow oracle %v", step, a, b, got, wantConn)
			}
			if got := m.SNR(NodeID(a), NodeID(b)); got != st.snr[a][b] {
				t.Fatalf("step %d: SNR(%d,%d) = %v, shadow oracle %v", step, a, b, got, st.snr[a][b])
			}
			if wantConn {
				wantNbrs = append(wantNbrs, NodeID(b))
				directed++
			}
		}
		got := m.Neighbors(NodeID(a))
		if len(got) != len(wantNbrs) {
			t.Fatalf("step %d: Neighbors(%d) = %v, shadow oracle %v", step, a, got, wantNbrs)
		}
		for i := range got {
			if got[i] != wantNbrs[i] {
				t.Fatalf("step %d: Neighbors(%d) = %v, shadow oracle %v", step, a, got, wantNbrs)
			}
		}
		if m.Degree(NodeID(a)) != len(wantNbrs) {
			t.Fatalf("step %d: Degree(%d) = %d, want %d", step, a, m.Degree(NodeID(a)), len(wantNbrs))
		}
	}
	if got := m.Table().DirectedLinks(); got != directed {
		t.Fatalf("step %d: DirectedLinks() = %d, shadow oracle %d", step, got, directed)
	}
}

// checkTableInvariants asserts the sparse store's internal consistency:
// sorted strictly-ascending neighbor lists that agree with the index map,
// slot/free-list accounting, and minimality (no slot holds a
// back-to-default link).
func checkTableInvariants(t *testing.T, tbl *LinkTable, step int) {
	t.Helper()
	directed := 0
	for a := 0; a < tbl.n; a++ {
		nbrs := tbl.nbrs[a]
		directed += len(nbrs)
		for i, b := range nbrs {
			if i > 0 && nbrs[i-1] >= b {
				t.Fatalf("step %d: nbrs[%d] not strictly ascending: %v", step, a, nbrs)
			}
			s, ok := tbl.idx[pairKey(NodeID(a), b)]
			if !ok || !tbl.slots[s].connected {
				t.Fatalf("step %d: nbrs[%d] lists %d but the index disagrees", step, a, b)
			}
		}
	}
	if tbl.directed != directed {
		t.Fatalf("step %d: directed counter %d, neighbor lists sum to %d", step, tbl.directed, directed)
	}
	if len(tbl.idx)+len(tbl.free) != len(tbl.slots) {
		t.Fatalf("step %d: slot accounting broken: %d indexed + %d free != %d slots",
			step, len(tbl.idx), len(tbl.free), len(tbl.slots))
	}
	used := make(map[int32]uint64, len(tbl.idx))
	for k, s := range tbl.idx {
		if s < 0 || int(s) >= len(tbl.slots) {
			t.Fatalf("step %d: slot index %d out of range", step, s)
		}
		if prev, dup := used[s]; dup {
			t.Fatalf("step %d: slot %d owned by both %x and %x", step, s, prev, k)
		}
		used[s] = k
		from, to := NodeID(k>>32), NodeID(uint32(k))
		l := tbl.slots[s]
		if !l.connected && l.snrdB == tbl.defaultSNR(from, to) {
			t.Fatalf("step %d: slot for %d→%d holds a default link (should have been released)", step, from, to)
		}
	}
	for _, s := range tbl.free {
		if _, clash := used[s]; clash {
			t.Fatalf("step %d: slot %d is both free and indexed", step, s)
		}
	}
}

// applyOp drives one churn operation into both the medium and the shadow
// oracle. op selects the kind; a, b, v parameterize it.
func applyOp(m *Medium, st *shadowTable, op int, a, b int, v float64) {
	na, nb := NodeID(a), NodeID(b)
	switch op % 7 {
	case 0: // bidirectional raise/cut
		on := int(v)%2 == 0
		m.SetConnected(na, nb, on)
		st.setConnectedDirected(a, b, on)
		st.setConnectedDirected(b, a, on)
	case 1: // asymmetric directed edit
		on := int(v)%2 == 0
		m.SetConnectedDirected(na, nb, on)
		st.setConnectedDirected(a, b, on)
	case 2: // SNR override (persists across disconnects)
		m.SetSNR(na, nb, v)
		st.setSNR(a, b, v)
	case 3: // self-link: must be a no-op for connectivity
		m.SetConnected(na, na, int(v)%2 == 0)
	case 4: // redundant repeat of the current state
		cur := st.connected[a][b] && a != b
		m.SetConnectedDirected(na, nb, cur)
		st.setConnectedDirected(a, b, cur)
	case 5: // detach: cut then restore a node's whole out-neighborhood
		for dst := 0; dst < st.n; dst++ {
			m.SetConnectedDirected(na, NodeID(dst), false)
			st.setConnectedDirected(a, dst, false)
		}
	case 6: // SNR back to the calibrated default (slot must be reclaimed
		// if the link is also down)
		m.SetSNR(na, nb, m.Params().SNRdB)
		st.setSNR(a, b, m.Params().SNRdB)
	}
}

// TestSparseTableMatchesShadowDenseOracle churns the sparse link table with
// randomized asymmetric cuts, SNR overrides, detach/reattach sweeps and
// redundant writes, comparing every observable against an independent dense
// shadow matrix after every few steps — with the dense mirror materialized
// and dropped mid-churn so both read paths and the materialization itself
// are covered.
func TestSparseTableMatchesShadowDenseOracle(t *testing.T) {
	for _, tc := range []struct {
		name  string
		build func(s *sim.Scheduler, n int) *Medium
	}{
		{"from-full", func(s *sim.Scheduler, n int) *Medium { return New(s, phy.DefaultParams(), n) }},
		{"from-empty", func(s *sim.Scheduler, n int) *Medium { return NewUnconnected(s, phy.DefaultParams(), n) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 19
			s := sim.NewScheduler(11)
			m := tc.build(s, n)
			st := newShadowTable(phy.DefaultParams(), n)
			if tc.name == "from-full" {
				for a := 0; a < n; a++ {
					for b := 0; b < n; b++ {
						st.setConnectedDirected(a, b, true)
					}
				}
			}
			st.check(t, m, -1)
			rng := rand.New(rand.NewSource(1234))
			for i := 0; i < 3000; i++ {
				applyOp(m, st, rng.Intn(7), rng.Intn(n), rng.Intn(n), float64(rng.Intn(40)))
				switch i {
				case 1000:
					m.SetDenseScan(true) // materialize the mirror mid-churn
				case 2000:
					m.SetDenseScan(false) // and drop it again
				}
				if i%97 == 0 {
					st.check(t, m, i)
					checkTableInvariants(t, m.Table(), i)
				}
			}
			st.check(t, m, 3000)
			checkTableInvariants(t, m.Table(), 3000)
		})
	}
}

// FuzzLinkTable decodes arbitrary byte strings into op sequences over a
// small table and cross-checks the sparse store against the shadow dense
// oracle plus its internal invariants after every operation. Each op is 4
// bytes: kind, node a, node b, value.
func FuzzLinkTable(f *testing.F) {
	// Seed corpus: raise/cut cycles, asymmetric edits, SNR churn on a cut
	// link, self-links, a detach sweep, and default-SNR reclaim.
	f.Add([]byte{0, 1, 2, 0, 0, 1, 2, 1, 0, 1, 2, 0})
	f.Add([]byte{1, 0, 3, 0, 1, 3, 0, 0, 2, 0, 3, 17})
	f.Add([]byte{2, 4, 5, 9, 0, 4, 5, 1, 2, 4, 5, 9, 6, 4, 5, 0})
	f.Add([]byte{3, 2, 2, 0, 3, 2, 2, 1, 4, 2, 3, 0})
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 0, 5, 0, 0, 0, 0, 0, 1, 0})
	f.Add([]byte{2, 1, 1, 7, 6, 1, 1, 0, 1, 6, 2, 0, 6, 6, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 8
		s := sim.NewScheduler(1)
		m := NewUnconnected(s, phy.DefaultParams(), n)
		st := newShadowTable(phy.DefaultParams(), n)
		for i := 0; i+4 <= len(data) && i < 4*256; i += 4 {
			op, a, b := int(data[i]), int(data[i+1])%n, int(data[i+2])%n
			v := float64(data[i+3]) / 4
			applyOp(m, st, op, a, b, v)
			if op%11 == 5 { // occasionally flip the dense mirror
				m.SetDenseScan(!m.denseScan)
			}
			checkTableInvariants(t, m.Table(), i)
		}
		st.check(t, m, len(data))
	})
}
