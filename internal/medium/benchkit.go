// Bench harness for the MediumTx workload, in non-test code so
// cmd/aggbench records the exact same measurement the in-package
// BenchmarkMediumTx runs — the committed baseline and the CI bench gate
// then compare like with like.
package medium

import (
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

type nopRadio struct{}

func (nopRadio) CarrierBusy()                                {}
func (nopRadio) CarrierIdle()                                {}
func (nopRadio) RxControl(NodeID, frame.Control, float64)    {}
func (nopRadio) RxAggregate(NodeID, frame.PHYHeader, []byte) {}

// TxBench is the medium scaling workload: a k×k grid mesh wired at the
// 4-neighborhood (degree ≤ 4 however large the grid grows) whose corners
// and edge midpoints transmit concurrently — spatially separate collision
// domains, as in a mesh carrying many flows. One Burst is the benchmark's
// unit of work: eight staggered control transmissions plus a full drain of
// the scheduler (launch, overlapping-collision marking, delivery to the
// audience, carrier release).
type TxBench struct {
	sched *sim.Scheduler
	m     *Medium
	txs   []func()
}

// NewTxBench builds the k×k grid workload; dense selects the O(N)
// dense-scan oracle instead of the neighbor-indexed sparse table.
func NewTxBench(k int, dense bool) *TxBench {
	s := sim.NewScheduler(1)
	p := phy.DefaultParams()
	m := NewUnconnected(s, p, k*k)
	id := func(r, c int) NodeID { return NodeID(r*k + c) }
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			for _, d := range [][2]int{{0, 1}, {1, 0}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= k || nc < 0 || nc >= k {
					continue
				}
				m.SetConnected(id(r, c), id(nr, nc), true)
			}
			m.Attach(id(r, c), nopRadio{})
		}
	}
	m.SetDenseScan(dense)
	h := k / 2
	srcs := []NodeID{
		0, NodeID(k - 1), NodeID(k * (k - 1)), NodeID(k*k - 1), // corners
		NodeID(h), NodeID(k * h), NodeID(k*h + k - 1), NodeID(k*(k-1) + h), // edge midpoints
	}
	ctrl := frame.Control{Type: frame.TypeCTS, RA: frame.Broadcast}
	tb := &TxBench{sched: s, m: m}
	for _, src := range srcs {
		src := src
		tb.txs = append(tb.txs, func() { m.TransmitControl(src, ctrl) })
	}
	return tb
}

// Burst launches the workload's transmissions a microsecond apart and
// drains the scheduler.
func (tb *TxBench) Burst() {
	for j, tx := range tb.txs {
		tb.sched.After(time.Duration(j)*time.Microsecond, "tx", tx)
	}
	tb.sched.Run()
}

// TxPerBurst is the number of transmissions one Burst performs.
func (tb *TxBench) TxPerBurst() int { return len(tb.txs) }

// SimNow is the simulated time consumed so far, for simsec/sec reporting.
func (tb *TxBench) SimNow() time.Duration { return time.Duration(tb.sched.Now()) }
