package medium

import (
	"bytes"
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// fakeRadio records everything the medium tells it.
type fakeRadio struct {
	busyEdges, idleEdges int
	ctrls                []frame.Control
	ctrlSrcs             []NodeID
	snrs                 []float64
	aggs                 []frame.DecodedAggregate
	aggSrcs              []NodeID
}

func (f *fakeRadio) CarrierBusy() { f.busyEdges++ }
func (f *fakeRadio) CarrierIdle() { f.idleEdges++ }
func (f *fakeRadio) RxControl(src NodeID, c frame.Control, snrdB float64) {
	f.ctrls = append(f.ctrls, c)
	f.ctrlSrcs = append(f.ctrlSrcs, src)
	f.snrs = append(f.snrs, snrdB)
}
func (f *fakeRadio) RxAggregate(src NodeID, hdr frame.PHYHeader, body []byte) {
	dec, err := frame.DecodeAggregate(hdr, body)
	if err != nil {
		return
	}
	f.aggs = append(f.aggs, dec)
	f.aggSrcs = append(f.aggSrcs, src)
}

func setup(t *testing.T, n int) (*sim.Scheduler, *Medium, []*fakeRadio) {
	t.Helper()
	s := sim.NewScheduler(1)
	m := New(s, phy.DefaultParams(), n)
	radios := make([]*fakeRadio, n)
	for i := range radios {
		radios[i] = &fakeRadio{}
		m.Attach(NodeID(i), radios[i])
	}
	return s, m, radios
}

func dataAgg(n int, payload int, dst frame.Addr) *frame.Aggregate {
	agg := &frame.Aggregate{UnicastRate: phy.Rate1300k}
	for i := 0; i < n; i++ {
		agg.Unicast = append(agg.Unicast, &frame.Subframe{
			Addr1: dst, Addr2: frame.NodeAddr(0), Payload: make([]byte, payload),
		})
	}
	return agg
}

func TestControlDelivery(t *testing.T) {
	s, m, radios := setup(t, 3)
	c := frame.Control{Type: frame.TypeRTS, Duration: time.Millisecond, RA: frame.NodeAddr(1), TA: frame.NodeAddr(0)}
	var dur time.Duration
	s.After(0, "tx", func() { dur = m.TransmitControl(0, c) })
	s.Run()
	want := m.ControlAirtime(&c)
	if dur != want {
		t.Fatalf("airtime %v, want %v", dur, want)
	}
	// 20 bytes at 0.65 Mbps + 320 µs preamble.
	if want != 320*time.Microsecond+phy.Airtime(frame.RTSLen, phy.Rate650k) {
		t.Fatalf("RTS airtime = %v", want)
	}
	for i := 1; i <= 2; i++ {
		if len(radios[i].ctrls) != 1 {
			t.Fatalf("radio %d got %d controls, want 1", i, len(radios[i].ctrls))
		}
		if radios[i].ctrls[0].Type != frame.TypeRTS || radios[i].ctrlSrcs[0] != 0 {
			t.Fatalf("radio %d got %+v from %d", i, radios[i].ctrls[0], radios[i].ctrlSrcs[0])
		}
	}
	if len(radios[0].ctrls) != 0 {
		t.Fatal("transmitter received its own frame")
	}
}

func TestCarrierSenseEdges(t *testing.T) {
	s, m, radios := setup(t, 3)
	s.After(0, "tx", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.Run()
	for i := 1; i <= 2; i++ {
		if radios[i].busyEdges != 1 || radios[i].idleEdges != 1 {
			t.Fatalf("radio %d edges busy=%d idle=%d, want 1/1", i, radios[i].busyEdges, radios[i].idleEdges)
		}
	}
	if radios[0].busyEdges != 0 {
		t.Fatal("transmitter sensed its own carrier")
	}
	if m.CarrierBusy(1) {
		t.Fatal("carrier still busy after end")
	}
}

func TestCarrierBusyDuringTransmission(t *testing.T) {
	s, m, _ := setup(t, 2)
	agg := dataAgg(1, 1000, frame.NodeAddr(1))
	s.After(0, "tx", func() { m.TransmitAggregate(0, agg) })
	s.After(time.Millisecond, "check", func() {
		if !m.CarrierBusy(1) {
			t.Error("node 1 should sense busy mid-frame")
		}
		if !m.Transmitting(0) {
			t.Error("node 0 should be transmitting")
		}
	})
	s.Run()
}

func TestAggregateDeliveryClean(t *testing.T) {
	s, m, radios := setup(t, 2)
	agg := dataAgg(3, 1436, frame.NodeAddr(1))
	s.After(0, "tx", func() { m.TransmitAggregate(0, agg) })
	s.Run()
	if len(radios[1].aggs) != 1 {
		t.Fatalf("got %d aggregates, want 1", len(radios[1].aggs))
	}
	dec := radios[1].aggs[0]
	if len(dec.Unicast) != 3 {
		t.Fatalf("decoded %d unicast subframes, want 3", len(dec.Unicast))
	}
	for i, d := range dec.Unicast {
		if !d.CRCOK {
			t.Errorf("subframe %d corrupted on a clean 25 dB link", i)
		}
	}
}

func TestAggregateAirtimeComposition(t *testing.T) {
	_, m, _ := setup(t, 2)
	p := m.Params()
	// Unicast-only: preamble + bytes at unicast rate; no broadcast desc.
	u := dataAgg(2, 1436, frame.NodeAddr(1))
	want := p.PreamblePLCP + phy.Airtime(2*1464, phy.Rate1300k)
	if got := m.AggregateAirtime(u); got != want {
		t.Errorf("unicast-only airtime %v, want %v", got, want)
	}
	// Mixed: broadcast desc + broadcast portion at its own rate.
	mix := dataAgg(1, 1436, frame.NodeAddr(1))
	mix.BroadcastRate = phy.Rate650k
	mix.Broadcast = []*frame.Subframe{{Addr1: frame.NodeAddr(1), Payload: make([]byte, 132)}}
	want = p.PreamblePLCP + p.BroadcastDescDuration(true) +
		phy.Airtime(160, phy.Rate650k) + phy.Airtime(1464, phy.Rate1300k)
	if got := m.AggregateAirtime(mix); got != want {
		t.Errorf("mixed airtime %v, want %v", got, want)
	}
}

func TestCollisionDestroysBoth(t *testing.T) {
	s, m, radios := setup(t, 3)
	// Nodes 0 and 1 transmit overlapping frames; node 2 hears both -> loses both.
	s.After(0, "tx0", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)}) })
	s.After(10*time.Microsecond, "tx1", func() {
		m.TransmitControl(1, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)})
	})
	s.Run()
	if len(radios[2].ctrls) != 0 {
		t.Fatalf("node 2 decoded %d frames out of a collision", len(radios[2].ctrls))
	}
	if m.Stats().Collisions == 0 {
		t.Fatal("collision not counted")
	}
}

func TestNoCollisionWhenDisjointInTime(t *testing.T) {
	s, m, radios := setup(t, 3)
	c := frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)}
	air := m.ControlAirtime(&c)
	s.After(0, "tx0", func() { m.TransmitControl(0, c) })
	s.After(air+time.Microsecond, "tx1", func() { m.TransmitControl(1, c) })
	s.Run()
	if len(radios[2].ctrls) != 2 {
		t.Fatalf("node 2 got %d frames, want 2", len(radios[2].ctrls))
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	s, m, radios := setup(t, 3)
	// 0 and 2 cannot hear each other; both transmit to 1 -> collision at 1.
	m.SetConnected(0, 2, false)
	s.After(0, "tx0", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.After(time.Microsecond, "tx2", func() { m.TransmitControl(2, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.Run()
	if len(radios[1].ctrls) != 0 {
		t.Fatal("hidden-terminal collision not destructive at shared receiver")
	}
}

func TestDisconnectedLinkNoDelivery(t *testing.T) {
	s, m, radios := setup(t, 3)
	m.SetConnected(0, 2, false)
	s.After(0, "tx", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.Run()
	if len(radios[1].ctrls) != 1 {
		t.Fatal("connected node missed frame")
	}
	if len(radios[2].ctrls) != 0 {
		t.Fatal("disconnected node received frame")
	}
	if radios[2].busyEdges != 0 {
		t.Fatal("disconnected node sensed carrier")
	}
}

func TestHalfDuplexReceiverTransmitting(t *testing.T) {
	s, m, radios := setup(t, 3)
	// Node 1 starts a long transmission; node 0's frame arrives while node 1
	// is still on the air (no collision at 1's receivers needed): node 1
	// must miss it.
	long := dataAgg(3, 1436, frame.NodeAddr(2))
	m.SetConnected(0, 2, false) // node 2 only hears node 1
	s.After(0, "tx1", func() { m.TransmitAggregate(1, long) })
	s.After(time.Millisecond, "tx0", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeAck, RA: frame.NodeAddr(1)}) })
	s.Run()
	if len(radios[1].ctrls) != 0 {
		t.Fatal("transmitting node decoded an overlapping frame (half duplex violated)")
	}
}

func TestAgedSubframesCorrupted(t *testing.T) {
	s, m, radios := setup(t, 2)
	// 12 KB of unicast at 0.65 Mbps is ~148 ms of airtime: far past the
	// 60 ms coherence budget. Early subframes survive, late ones must die.
	agg := dataAgg(8, 1436, frame.NodeAddr(1))
	agg.UnicastRate = phy.Rate650k
	s.After(0, "tx", func() { m.TransmitAggregate(0, agg) })
	s.Run()
	if len(radios[1].aggs) != 1 {
		t.Fatalf("got %d aggregates", len(radios[1].aggs))
	}
	dec := radios[1].aggs[0]
	okCount := 0
	for _, d := range dec.Unicast {
		if d.CRCOK {
			okCount++
		}
	}
	decoded := len(dec.Unicast)
	// First ~3 subframes fit in budget (3*1464B ≈ 54ms+preamble).
	if decoded > 0 && !dec.Unicast[0].CRCOK {
		t.Error("first subframe (within coherence) corrupted")
	}
	if okCount == decoded && dec.LostBytes == 0 {
		t.Errorf("no aged subframe corrupted: %d/%d ok", okCount, decoded)
	}
}

func TestBroadcastPortionAgesAfterPrefix(t *testing.T) {
	s, m, radios := setup(t, 2)
	// Broadcast subframes ride first: with a huge unicast tail, the
	// broadcasts still survive.
	agg := dataAgg(8, 1436, frame.NodeAddr(1))
	agg.UnicastRate = phy.Rate650k
	agg.BroadcastRate = phy.Rate650k
	agg.Broadcast = []*frame.Subframe{{Addr1: frame.NodeAddr(1), Payload: make([]byte, 132)}}
	s.After(0, "tx", func() { m.TransmitAggregate(0, agg) })
	s.Run()
	if len(radios[1].aggs) != 1 {
		t.Fatalf("got %d aggregates", len(radios[1].aggs))
	}
	dec := radios[1].aggs[0]
	if len(dec.Broadcast) != 1 || !dec.Broadcast[0].CRCOK {
		t.Error("leading broadcast subframe should survive aging")
	}
}

func TestWeakLinkCorruptsFrames(t *testing.T) {
	s, m, radios := setup(t, 2)
	m.SetSNR(0, 1, 3) // 3 dB: hopeless for QPSK
	lost := 0
	const tries = 20
	var send func(i int)
	send = func(i int) {
		if i >= tries {
			return
		}
		agg := dataAgg(1, 1436, frame.NodeAddr(1))
		d := m.TransmitAggregate(0, agg)
		s.After(d+time.Millisecond, "next", func() { send(i + 1) })
	}
	s.After(0, "start", func() { send(0) })
	s.Run()
	for _, dec := range radios[1].aggs {
		for _, sf := range dec.Unicast {
			if !sf.CRCOK {
				lost++
			}
		}
	}
	// Frames that never even decoded count as lost too.
	lost += tries - len(radios[1].aggs)
	if lost < tries/2 {
		t.Fatalf("only %d/%d frames corrupted on a 3 dB link", lost, tries)
	}
}

func TestAttachTwicePanics(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, phy.DefaultParams(), 2)
	m.Attach(0, &fakeRadio{})
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	m.Attach(0, &fakeRadio{})
}

// Zero-copy contract: every receiver that heard the frame cleanly gets the
// SAME backing array (marshal once, deliver many), and those bytes are
// exactly the marshaled aggregate. See Radio.RxAggregate.
func TestCleanDeliverySharesBody(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, phy.DefaultParams(), 3)
	var bodies [][]byte
	for i := 0; i < 3; i++ {
		m.Attach(NodeID(i), &captureRadio{onAgg: func(body []byte) {
			bodies = append(bodies, body)
		}})
	}
	agg := dataAgg(1, 100, frame.NodeAddr(1))
	want, _ := agg.Marshal()
	s.After(0, "tx", func() { m.TransmitAggregate(0, agg) })
	s.Run()
	if len(bodies) != 2 {
		t.Fatalf("got %d bodies", len(bodies))
	}
	if &bodies[0][0] != &bodies[1][0] {
		t.Fatal("clean receivers should share one immutable body (zero-copy delivery)")
	}
	if !bytes.Equal(bodies[0], want) {
		t.Fatal("shared body differs from the marshaled aggregate")
	}
}

// Copy-on-corrupt contract: a receiver whose copy of the air was damaged
// gets private bytes, and the shared clean body is untouched by the
// corruption.
func TestCorruptDeliveryGetsPrivateCopy(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, phy.DefaultParams(), 3)
	var got [3][][]byte
	for i := 0; i < 3; i++ {
		i := i
		m.Attach(NodeID(i), &captureRadio{onAgg: func(body []byte) {
			got[i] = append(got[i], body)
		}})
	}
	m.SetSNR(0, 1, 4) // node 1 hears a badly degraded copy; node 2 is clean
	agg := dataAgg(1, 200, frame.NodeAddr(1))
	want, _ := agg.Marshal()
	const tries = 60
	for i := 0; i < tries; i++ {
		s.After(sim.Time(i)*time.Second, "tx", func() { m.TransmitAggregate(0, agg) })
	}
	s.Run()
	if len(got[2]) != tries {
		t.Fatalf("clean receiver got %d/%d frames", len(got[2]), tries)
	}
	for _, b := range got[2] {
		if !bytes.Equal(b, want) {
			t.Fatal("clean receiver saw corrupted bytes: copy-on-corrupt mutated the shared body")
		}
	}
	// Node 1 is delivered before node 2 on every frame, so if its
	// corruption wrote into the shared body the clean-receiver check above
	// would have tripped. Here just confirm corruption actually happened.
	corrupted := 0
	for _, b := range got[1] {
		if !bytes.Equal(b, want) {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatalf("no corrupted deliveries in %d tries on a 4 dB link", tries)
	}
}

type captureRadio struct{ onAgg func([]byte) }

func (c *captureRadio) CarrierBusy()                                         {}
func (c *captureRadio) CarrierIdle()                                         {}
func (c *captureRadio) RxControl(NodeID, frame.Control, float64)             {}
func (c *captureRadio) RxAggregate(_ NodeID, _ frame.PHYHeader, body []byte) { c.onAgg(body) }

func TestCaptureEffect(t *testing.T) {
	// Nodes 0 (25 dB to receiver 2) and 1 (10 dB) collide at node 2.
	// Without capture both die; with a 10 dB margin the strong one lives.
	run := func(captureDB float64) int {
		s := sim.NewScheduler(9)
		m := New(s, phy.DefaultParams(), 3)
		m.SetCapture(captureDB)
		r := &fakeRadio{}
		m.Attach(2, r)
		m.Attach(0, &fakeRadio{})
		m.Attach(1, &fakeRadio{})
		m.SetSNR(1, 2, 10)
		s.After(0, "tx0", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)}) })
		s.After(time.Microsecond, "tx1", func() { m.TransmitControl(1, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)}) })
		s.Run()
		return len(r.ctrls)
	}
	if got := run(0); got != 0 {
		t.Errorf("no-capture collision delivered %d frames", got)
	}
	if got := run(10); got != 1 {
		t.Errorf("capture with 15 dB margin delivered %d frames, want 1", got)
	}
	// A margin larger than the 15 dB difference blocks capture again.
	if got := run(20); got != 0 {
		t.Errorf("capture with insufficient margin delivered %d frames", got)
	}
}

func TestCaptureNeverRescuesOwnTransmissionLoss(t *testing.T) {
	// Node 1 starts receiving from 0, then begins its own transmission:
	// even with capture on, half-duplex loss stands.
	s := sim.NewScheduler(9)
	m := New(s, phy.DefaultParams(), 3)
	m.SetCapture(1)
	r1 := &fakeRadio{}
	m.Attach(0, &fakeRadio{})
	m.Attach(1, r1)
	m.Attach(2, &fakeRadio{})
	m.SetConnected(1, 2, true)
	agg := dataAgg(3, 1436, frame.NodeAddr(1)) // long frame from 0
	s.After(0, "tx0", func() { m.TransmitAggregate(0, agg) })
	s.After(time.Millisecond, "tx1", func() {
		m.TransmitControl(1, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(2)})
	})
	s.Run()
	if len(r1.aggs) != 0 {
		t.Fatal("capture rescued a frame lost to the receiver's own transmission")
	}
}

func TestDirectedLinkAsymmetry(t *testing.T) {
	s := sim.NewScheduler(9)
	m := New(s, phy.DefaultParams(), 2)
	r0, r1 := &fakeRadio{}, &fakeRadio{}
	m.Attach(0, r0)
	m.Attach(1, r1)
	m.SetConnectedDirected(1, 0, false) // 1 cannot reach 0
	s.After(0, "tx0", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.After(10*time.Millisecond, "tx1", func() { m.TransmitControl(1, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(0)}) })
	s.Run()
	if len(r1.ctrls) != 1 {
		t.Fatalf("forward direction broken: %d", len(r1.ctrls))
	}
	if len(r0.ctrls) != 0 {
		t.Fatalf("cut reverse direction delivered %d frames", len(r0.ctrls))
	}
}
