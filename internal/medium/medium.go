// Package medium models the shared wireless channel: propagation of control
// frames and aggregates to every node in range, carrier-sense (energy
// detect) signaling, half-duplex constraints, collision destruction, and
// per-subframe corruption driven by the PHY error model.
//
// The paper's testbed places all nodes within radio range of each other
// (multi-hop topologies are forced by static routing), so the default
// connectivity is a single collision domain; links can be cut or given
// per-link SNR for extension experiments.
//
// # Complexity model
//
// Per-transmission cost is proportional to the transmitter's neighborhood
// degree, not the network size. The medium maintains an incrementally
// sorted out-neighbor list per node (updated by SetConnected /
// SetConnectedDirected in O(deg) each); every transmission captures its
// audience — the attached radios in range — exactly once at launch, and
// carrier sensing, collision marking, delivery and carrier release all
// iterate that audience. Collision bookkeeping resets through a dirty-mark
// list, so recycling a transmission is O(marked), not O(N).
//
// Link state itself is sparse: the neighbor lists are the primary store,
// backed by a hash/offset map from the packed (src, dst) pair to a slot in
// a flat link-state array, so a directed lookup (connectivity + SNR in one
// query) is O(1) and total memory is O(N·degree + SNR overrides) — never
// the N×N matrix the seed kept. SetDenseScan(true) materializes a dense
// N×N mirror inside the table and routes every lookup through it while
// reproducing the seed's O(N) scan-every-radio launch/finish costs; it is
// the equivalence oracle the sparse store is pinned against and the
// baseline the scaling benchmarks compare with.
package medium

import (
	"fmt"
	"sort"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// NodeID identifies an attached radio. IDs must be small non-negative
// integers (they index internal tables).
type NodeID int

// Radio is the interface the MAC exposes to the channel.
type Radio interface {
	// CarrierBusy and CarrierIdle report energy-detect transitions. They
	// are never called for the node's own transmissions.
	CarrierBusy()
	CarrierIdle()
	// RxControl delivers a control frame that survived the channel, with
	// the received SNR (Hydra's PHY reports it; rate adaptation feeds on
	// the RTS/CTS measurements).
	RxControl(src NodeID, c frame.Control, snrdB float64)
	// RxAggregate delivers an aggregate's PHY header and (possibly
	// corrupted) body bytes at the end of its airtime.
	//
	// The body is shared: every receiver that heard the frame cleanly gets
	// the same backing array (corrupted receivers get a private copy).
	// Receivers may retain subslices — the medium never reuses a body — but
	// MUST NOT write into it; mutating it would corrupt the frame for the
	// other receivers.
	RxAggregate(src NodeID, hdr frame.PHYHeader, body []byte)
}

// link holds per-directed-link channel state.
type link struct {
	connected bool
	snrdB     float64
}

// LinkTable is the connectivity state of a network, stored sparsely: the
// incrementally-maintained sorted neighbor lists are the primary store, and
// a hash map from the packed (from, to) pair to a slot in a flat link-state
// array gives O(1) directed lookup of connectivity and SNR together. Only
// links that differ from the default — connected, or carrying an SNR
// override — occupy a slot, so memory is O(N·degree + overrides) instead of
// the seed's N×N matrix. A table is normally owned by a single Medium, but
// the sharded engine shares one read-only table across every shard's
// medium. Sharing contract: connectivity and SNR must not change while more
// than one medium is attached (the parallel mesh path is static-topology
// only and enforces this).
type LinkTable struct {
	n int
	// defSNR is the SNR every non-self link reports until overridden
	// (params.SNRdB at construction). Self pairs default to 0, matching the
	// seed's zeroed matrix diagonal.
	defSNR float64
	// nbrs[src] lists, in ascending node id, every dst that can hear src.
	// It is maintained incrementally by the connectivity setters and is
	// what the hot paths iterate.
	nbrs [][]NodeID
	// idx maps pairKey(from, to) to a slot index; slots holds the state and
	// free recycles released slots. An entry exists iff the link is
	// connected or its SNR differs from the directed pair's default.
	idx   map[uint64]int32
	slots []link
	free  []int32
	// directed counts connected directed links (Σ len(nbrs)).
	directed int
	// dense, when non-nil, is the materialized N×N mirror that SetDenseScan
	// maintains: every read routes through it so it is a genuinely
	// independent oracle for the sparse store, and the dense-scan launch/
	// finish paths reproduce the seed's costs against it.
	dense [][]link
}

// pairKey packs a directed pair into the sparse index key. NodeIDs index
// in-memory tables and the wire format caps them at 16 bits, so 32 bits per
// endpoint is never lossy.
func pairKey(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// NewLinkTable builds a table for n nodes with every link cut; SNR defaults
// to params.SNRdB once connected. Construction is O(N) — no pair state
// exists until a setter creates it.
func NewLinkTable(params phy.Params, n int) *LinkTable {
	return &LinkTable{
		n:      n,
		defSNR: params.SNRdB,
		nbrs:   make([][]NodeID, n),
		idx:    make(map[uint64]int32),
	}
}

// N returns the number of nodes the table covers.
func (t *LinkTable) N() int { return t.n }

// DirectedLinks returns the number of connected directed links — the
// "N·degree" term of the table's memory footprint.
func (t *LinkTable) DirectedLinks() int { return t.directed }

// defaultSNR is what a pair reports with no slot: params.SNRdB for distinct
// nodes, 0 for the self pair (the seed never initialized its diagonal).
func (t *LinkTable) defaultSNR(from, to NodeID) float64 {
	if from == to {
		return 0
	}
	return t.defSNR
}

// alloc takes a free slot (or grows the slab) and returns its index.
func (t *LinkTable) alloc(l link) int32 {
	if n := len(t.free); n > 0 {
		s := t.free[n-1]
		t.free = t.free[:n-1]
		t.slots[s] = l
		return s
	}
	t.slots = append(t.slots, l)
	return int32(len(t.slots) - 1)
}

// release drops a pair whose state is back to default.
func (t *LinkTable) release(k uint64, s int32) {
	delete(t.idx, k)
	t.free = append(t.free, s)
}

// connected reports whether to can hear from.
func (t *LinkTable) connected(from, to NodeID) bool {
	if from == to {
		return false
	}
	if t.dense != nil {
		return t.dense[from][to].connected
	}
	s, ok := t.idx[pairKey(from, to)]
	return ok && t.slots[s].connected
}

// snrConnected returns the from→to SNR and whether to can hear from in a
// single lookup — the hot paths' combined query.
func (t *LinkTable) snrConnected(from, to NodeID) (float64, bool) {
	if t.dense != nil {
		l := &t.dense[from][to]
		return l.snrdB, from != to && l.connected
	}
	if s, ok := t.idx[pairKey(from, to)]; ok {
		return t.slots[s].snrdB, from != to && t.slots[s].connected
	}
	return t.defaultSNR(from, to), false
}

// snr returns the from→to SNR (the default when no slot exists).
func (t *LinkTable) snr(from, to NodeID) float64 {
	v, _ := t.snrConnected(from, to)
	return v
}

// setConnectedDirected cuts or restores the from→to direction, keeping the
// neighbor list, the sparse index, and the dense mirror (when materialized)
// in step. Reports whether anything changed.
func (t *LinkTable) setConnectedDirected(from, to NodeID, connected bool) bool {
	if from == to {
		return false // self-links are meaningless (Connected is always false)
	}
	k := pairKey(from, to)
	s, ok := t.idx[k]
	if cur := ok && t.slots[s].connected; cur == connected {
		return false
	}
	if connected {
		if !ok {
			s = t.alloc(link{snrdB: t.defSNR})
			t.idx[k] = s
		}
		t.slots[s].connected = true
		t.nbrs[from] = insertSorted(t.nbrs[from], to)
		t.directed++
	} else {
		t.slots[s].connected = false
		if t.slots[s].snrdB == t.defSNR {
			t.release(k, s)
		}
		t.nbrs[from] = removeSorted(t.nbrs[from], to)
		t.directed--
	}
	if t.dense != nil {
		t.dense[from][to].connected = connected
	}
	return true
}

// setSNRDirected overrides the from→to SNR. The override persists across
// disconnects (the seed's matrix kept SNR when a link was cut); a slot is
// dropped only when the pair is disconnected and back at its default SNR.
func (t *LinkTable) setSNRDirected(from, to NodeID, snrdB float64) {
	k := pairKey(from, to)
	if s, ok := t.idx[k]; ok {
		t.slots[s].snrdB = snrdB
		if !t.slots[s].connected && snrdB == t.defaultSNR(from, to) {
			t.release(k, s)
		}
	} else if snrdB != t.defaultSNR(from, to) {
		t.idx[k] = t.alloc(link{snrdB: snrdB})
	}
	if t.dense != nil {
		t.dense[from][to].snrdB = snrdB
	}
}

// connectFull wires every ordered pair at the default SNR — the paper's
// single-collision-domain testbed. O(N²) by definition of the topology; the
// generators for sparse meshes start from NewUnconnected instead.
func (t *LinkTable) connectFull() {
	for i := 0; i < t.n; i++ {
		nb := make([]NodeID, 0, t.n-1)
		for j := 0; j < t.n; j++ {
			if i == j {
				continue
			}
			t.idx[pairKey(NodeID(i), NodeID(j))] = t.alloc(link{connected: true, snrdB: t.defSNR})
			nb = append(nb, NodeID(j))
		}
		t.nbrs[i] = nb
	}
	t.directed = t.n * (t.n - 1)
	if t.dense != nil {
		panic("medium: connectFull on a table with a dense mirror")
	}
}

// materializeDense builds the N×N mirror from the sparse state and switches
// every read onto it. Idempotent.
func (t *LinkTable) materializeDense() {
	if t.dense != nil {
		return
	}
	d := make([][]link, t.n)
	for i := range d {
		d[i] = make([]link, t.n)
		for j := range d[i] {
			if i != j {
				d[i][j].snrdB = t.defSNR
			}
		}
	}
	for k, s := range t.idx {
		d[NodeID(k>>32)][NodeID(uint32(k))] = t.slots[s]
	}
	t.dense = d
}

// dropDense discards the mirror; reads return to the sparse store.
func (t *LinkTable) dropDense() { t.dense = nil }

// transmission is pooled: Medium recycles finished transmissions (and their
// audience/collided/interfSNR/spans backing arrays) through a free list, so
// putting a frame on the air allocates only its marshaled body — which is
// shared with receivers and therefore the one thing that must not be reused.
type transmission struct {
	src        NodeID
	start, end sim.Time
	isControl  bool
	control    frame.Control
	hdr        frame.PHYHeader
	body       []byte
	spans      []frame.Span
	// audience is the set of attached in-range radios, captured once at
	// launch (ascending node id); energy detect, collision marking,
	// delivery and carrier release all iterate it.
	audience  []NodeID
	collided  []bool    // per node id, set when overlap observed
	interfSNR []float64 // strongest interferer per node, for capture
	// marked lists the node ids whose collided/interfSNR entries were
	// touched, so recycling resets O(marked) entries instead of O(N).
	marked []NodeID
	// dense records which launch path put this frame on the air, so finish
	// stays consistent even if SetDenseScan is flipped mid-flight.
	dense     bool
	activeIdx int    // position in Medium.active, for O(1) removal
	finishFn  func() // pooled txEnd callback: m.finish(this)
}

// addInterf records that dst's copy of this transmission overlapped an
// interferer heard at snrdB, keeping the strongest interferer for capture.
func (t *transmission) addInterf(dst NodeID, snrdB float64) {
	if !t.collided[dst] {
		t.collided[dst] = true
		t.interfSNR[dst] = snrdB
		t.marked = append(t.marked, dst)
		return
	}
	if snrdB > t.interfSNR[dst] {
		t.interfSNR[dst] = snrdB
	}
}

// Event is one observable channel event, for tracing.
type Event struct {
	At   time.Duration
	Kind string // "tx-ctrl", "tx-agg", "rx-ctrl", "rx-agg", "collision", "ctrl-noise", "half-duplex"
	Src  NodeID
	Dst  NodeID // -1 for transmissions (broadcast medium)
	Dur  time.Duration
	Info string
}

// Observer receives channel events as they happen.
type Observer func(Event)

// Stats counts channel-level events.
type Stats struct {
	ControlTx    int
	AggregateTx  int
	ForeignTx    int // transmissions replayed from another shard's medium
	Collisions   int // receptions destroyed by overlap
	Captures     int // receptions that survived a collision via capture
	HalfDuplex   int // receptions missed because the receiver was transmitting
	CorruptCtrl  int // control frames destroyed by noise
	AirtimeTotal time.Duration
}

// Add accumulates o's counters into s; the parallel mesh path sums its
// shard media into one channel-wide view.
func (s *Stats) Add(o Stats) {
	s.ControlTx += o.ControlTx
	s.AggregateTx += o.AggregateTx
	s.ForeignTx += o.ForeignTx
	s.Collisions += o.Collisions
	s.Captures += o.Captures
	s.HalfDuplex += o.HalfDuplex
	s.CorruptCtrl += o.CorruptCtrl
	s.AirtimeTotal += o.AirtimeTotal
}

// ForeignFrame describes a locally-launched transmission in the form the
// sharded engine replays into neighboring shards' media. Body is the shared
// immutable marshaled aggregate (nil for control frames) and may be
// retained; Spans aliases the live transmission's pooled backing array, so
// a boundary hook that keeps the frame past its own return MUST copy Spans.
type ForeignFrame struct {
	Src        NodeID
	Start, End sim.Time
	IsControl  bool
	Control    frame.Control
	Hdr        frame.PHYHeader
	Body       []byte
	Spans      []frame.Span
}

// Medium is the shared channel.
type Medium struct {
	sched  *sim.Scheduler
	params phy.Params
	errs   *phy.ErrorCache

	radios []Radio
	busy   []int // energy-detect refcount per node
	txBusy []int // outstanding own transmissions per node (half duplex)
	// tbl holds the link matrix and neighbor index. Normally private to
	// this medium; shard media share one read-only table (see LinkTable).
	tbl *LinkTable
	// denseScan, when set, makes launch/finish scan every radio against
	// the link matrix (the seed behavior) instead of using the neighbor
	// index. It exists as a test oracle and benchmark baseline.
	denseScan bool
	// boundary, when set, observes every locally-originated transmission at
	// launch so the sharded engine can replay it into neighboring shards.
	boundary func(ForeignFrame)

	active   []*transmission
	txFree   []*transmission // recycled transmissions (pooled arrays)
	stats    Stats
	observer Observer
	// captureDB, when > 0, lets the stronger frame of a collision survive
	// if its SNR margin over the strongest interferer exceeds this
	// threshold (physical-layer capture; off by default, matching the
	// paper's conservative any-overlap-destroys model).
	captureDB float64
}

// New creates a medium for up to n nodes, fully connected at params.SNRdB.
func New(sched *sim.Scheduler, params phy.Params, n int) *Medium {
	m := newMedium(sched, params, n)
	m.tbl.connectFull()
	return m
}

// NewUnconnected creates a medium for up to n nodes with every link cut
// (SNR defaults to params.SNRdB once connected). Topology generators wire
// sparse meshes onto it with SetConnected/SetSNR; starting empty keeps
// construction O(E) instead of tearing down O(N²) default links.
func NewUnconnected(sched *sim.Scheduler, params phy.Params, n int) *Medium {
	return newMedium(sched, params, n)
}

// NewOnTable creates a medium that shares an existing link table instead of
// owning one. The sharded engine gives every shard's medium the same table,
// so one N² matrix serves the whole run; see LinkTable for the sharing
// contract.
func NewOnTable(sched *sim.Scheduler, params phy.Params, tbl *LinkTable) *Medium {
	n := tbl.N()
	return &Medium{
		sched:  sched,
		params: params,
		errs:   phy.NewErrorCache(params),
		radios: make([]Radio, n),
		busy:   make([]int, n),
		txBusy: make([]int, n),
		tbl:    tbl,
	}
}

func newMedium(sched *sim.Scheduler, params phy.Params, n int) *Medium {
	return &Medium{
		sched:  sched,
		params: params,
		errs:   phy.NewErrorCache(params),
		radios: make([]Radio, n),
		busy:   make([]int, n),
		txBusy: make([]int, n),
		tbl:    NewLinkTable(params, n),
	}
}

// getTx pops a pooled transmission (or makes the pool's next one). The
// collided/interfSNR entries were already reset by putTx via the dirty-mark
// list, so acquisition is O(1) regardless of network size.
func (m *Medium) getTx() *transmission {
	var t *transmission
	if n := len(m.txFree); n > 0 {
		t = m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
	} else {
		t = &transmission{
			collided:  make([]bool, len(m.radios)),
			interfSNR: make([]float64, len(m.radios)),
		}
		t.finishFn = func() { m.finish(t) }
	}
	return t
}

// putTx recycles a finished transmission, clearing only the collision
// entries the run actually marked. The body is deliberately dropped, not
// reused: receivers may retain subslices of it (see Radio.RxAggregate).
func (m *Medium) putTx(t *transmission) {
	t.body = nil
	t.spans = t.spans[:0]
	t.audience = t.audience[:0]
	for _, id := range t.marked {
		t.collided[id] = false
	}
	t.marked = t.marked[:0]
	t.dense = false
	t.control = frame.Control{}
	t.hdr = frame.PHYHeader{}
	m.txFree = append(m.txFree, t)
}

// Params returns the PHY constants the medium applies.
func (m *Medium) Params() phy.Params { return m.params }

// Stats returns a snapshot of channel counters.
func (m *Medium) Stats() Stats { return m.stats }

// SetObserver installs a channel-event observer (nil disables tracing).
func (m *Medium) SetObserver(o Observer) { m.observer = o }

func (m *Medium) emit(ev Event) {
	if m.observer != nil {
		ev.At = time.Duration(m.sched.Now())
		m.observer(ev)
	}
}

// Attach registers the radio for id. It panics on reuse: double-attachment
// is a wiring bug.
func (m *Medium) Attach(id NodeID, r Radio) {
	if m.radios[id] != nil {
		panic(fmt.Sprintf("medium: node %d attached twice", id))
	}
	m.radios[id] = r
}

// SetConnected cuts or restores the bidirectional link between a and b.
func (m *Medium) SetConnected(a, b NodeID, connected bool) {
	m.SetConnectedDirected(a, b, connected)
	m.SetConnectedDirected(b, a, connected)
}

// SetConnectedDirected cuts or restores only the from→to direction
// (asymmetric links; useful for failure injection). The from-node's
// neighbor list is updated in place, O(deg).
func (m *Medium) SetConnectedDirected(from, to NodeID, connected bool) {
	m.tbl.setConnectedDirected(from, to, connected)
}

// insertSorted adds id to the ascending list (caller guarantees absence).
func insertSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// removeSorted deletes id from the ascending list (caller guarantees
// presence).
func removeSorted(s []NodeID, id NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// SetCapture enables physical-layer capture: a frame survives a collision
// when its SNR beats the strongest interferer by at least marginDB.
// Zero disables (the default).
func (m *Medium) SetCapture(marginDB float64) { m.captureDB = marginDB }

// SetSNR overrides the SNR of the bidirectional link between a and b. The
// override persists even while the link is cut (mobility raises links back
// with fresh SNR; fault injection relies on the stored value surviving).
func (m *Medium) SetSNR(a, b NodeID, snrdB float64) {
	m.tbl.setSNRDirected(a, b, snrdB)
	m.tbl.setSNRDirected(b, a, snrdB)
}

// Table returns the medium's link table, for sharing with NewOnTable.
func (m *Medium) Table() *LinkTable { return m.tbl }

// Connected reports whether b can hear a.
func (m *Medium) Connected(a, b NodeID) bool { return m.tbl.connected(a, b) }

// SNR returns the configured SNR of the a→b link in dB (meaningful only
// while the link is connected; mobility tests use it to audit refreshes).
func (m *Medium) SNR(a, b NodeID) float64 { return m.tbl.snr(a, b) }

// Neighbors returns the nodes that can hear src, in ascending id order.
// The slice is the medium's live index: callers must not modify it and must
// not retain it across connectivity changes.
func (m *Medium) Neighbors(src NodeID) []NodeID { return m.tbl.nbrs[src] }

// Degree returns how many nodes can hear src.
func (m *Medium) Degree(src NodeID) int { return len(m.tbl.nbrs[src]) }

// SetDenseScan switches the medium between the sparse neighbor-indexed hot
// paths (default) and the seed's dense scan over every radio backed by a
// materialized N×N matrix. The two are behaviorally identical — the
// equivalence tests assert it — but dense mode costs O(N²) memory and O(N)
// per transmission; it is kept as a test oracle and as the baseline the
// scaling benchmarks compare against. Enabling it materializes the matrix
// from the sparse state; disabling drops the matrix.
func (m *Medium) SetDenseScan(dense bool) {
	if dense && m.boundary != nil {
		panic("medium: dense scan is incompatible with a boundary hook (sharded runs are neighbor-indexed only)")
	}
	m.denseScan = dense
	if dense {
		m.tbl.materializeDense()
	} else {
		m.tbl.dropDense()
	}
}

// SetBoundary installs the sharded engine's hook: it observes every
// locally-originated transmission at launch (after local collision marking
// and energy detect) so the engine can replay it into neighboring shards.
// See ForeignFrame for the aliasing rules. nil disables.
func (m *Medium) SetBoundary(post func(ForeignFrame)) {
	if post != nil && m.denseScan {
		panic("medium: boundary hook is incompatible with dense scan")
	}
	m.boundary = post
}

// InjectForeign replays a transmission that originated in another shard's
// medium over the same LinkTable. The local clock must be within
// [ff.Start, ff.End]: carrier-busy and collision marking take effect from
// now (the engine injects at Start + lookahead, so at most the first
// lookahead window of overlap is missed locally — the source shard marks
// its own receivers exactly), while delivery to in-range attached radios
// happens at exactly ff.End, byte-identical to a local reception.
func (m *Medium) InjectForeign(ff ForeignFrame) {
	now := m.sched.Now()
	if now < ff.Start || now > ff.End {
		panic(fmt.Sprintf("medium: InjectForeign at %v outside frame window [%v, %v]", now, ff.Start, ff.End))
	}
	t := m.getTx()
	t.src, t.start, t.end = ff.Src, ff.Start, ff.End
	t.isControl, t.control, t.hdr = ff.IsControl, ff.Control, ff.Hdr
	t.body = ff.Body
	t.spans = append(t.spans[:0], ff.Spans...)
	m.stats.ForeignTx++
	m.enter(t)
}

// CarrierBusy reports whether node id currently senses energy from others.
func (m *Medium) CarrierBusy(id NodeID) bool { return m.busy[id] > 0 }

// Transmitting reports whether node id is itself on the air.
func (m *Medium) Transmitting(id NodeID) bool { return m.txBusy[id] > 0 }

// ControlAirtime is the on-air time of a control frame: preamble plus its
// bytes at the control rate.
func (m *Medium) ControlAirtime(c *frame.Control) time.Duration {
	return m.params.PreamblePLCP + phy.Airtime(c.WireSize(), m.params.ControlRate)
}

// AggregateAirtime is the on-air time of an aggregate: preamble, the extra
// broadcast descriptor when present, then each portion at its own rate.
func (m *Medium) AggregateAirtime(agg *frame.Aggregate) time.Duration {
	d := m.params.PreamblePLCP + m.params.BroadcastDescDuration(agg.HasBroadcast())
	if n := agg.BroadcastBytes(); n > 0 {
		d += phy.Airtime(n, agg.BroadcastRate)
	}
	if n := agg.UnicastBytes(); n > 0 {
		d += phy.Airtime(n, agg.UnicastRate)
	}
	return d
}

// TransmitControl puts a control frame on the air and returns its airtime.
func (m *Medium) TransmitControl(src NodeID, c frame.Control) time.Duration {
	d := m.ControlAirtime(&c)
	t := m.getTx()
	t.src, t.start, t.end = src, m.sched.Now(), m.sched.Now()+d
	t.isControl, t.control = true, c
	m.stats.ControlTx++
	if m.observer != nil {
		m.emit(Event{Kind: "tx-ctrl", Src: src, Dst: -1, Dur: d, Info: c.Type.String()})
	}
	m.launch(t)
	return d
}

// TransmitAggregate marshals and puts an aggregate on the air, returning
// its airtime. The body is marshaled exactly once; clean receivers all share
// it (see Radio.RxAggregate).
func (m *Medium) TransmitAggregate(src NodeID, agg *frame.Aggregate) time.Duration {
	d := m.AggregateAirtime(agg)
	t := m.getTx()
	t.src, t.start, t.end = src, m.sched.Now(), m.sched.Now()+d
	t.isControl = false
	t.hdr = agg.Header()
	t.body, t.spans = agg.AppendMarshal(make([]byte, 0, agg.Bytes()), t.spans[:0])
	m.stats.AggregateTx++
	if m.observer != nil {
		m.emit(Event{Kind: "tx-agg", Src: src, Dst: -1, Dur: d,
			Info: fmt.Sprintf("%db+%du %dB @%v", len(agg.Broadcast), len(agg.Unicast), agg.Bytes(), agg.UnicastRate)})
	}
	m.launch(t)
	return d
}

// captureAudience fills t.audience with every attached radio in range of
// t.src, ascending by node id, by walking the neighbor list: O(deg).
func (m *Medium) captureAudience(t *transmission) {
	t.audience = t.audience[:0]
	for _, nid := range m.tbl.nbrs[t.src] {
		if m.radios[nid] != nil {
			t.audience = append(t.audience, nid)
		}
	}
}

func (m *Medium) launch(t *transmission) {
	if m.denseScan {
		m.launchDense(t)
		return
	}
	m.stats.AirtimeTotal += t.end - t.start
	m.enter(t)
	if m.boundary != nil {
		m.boundary(ForeignFrame{
			Src: t.src, Start: t.start, End: t.end,
			IsControl: t.isControl, Control: t.control,
			Hdr: t.hdr, Body: t.body, Spans: t.spans,
		})
	}
}

// enter puts t on the air: audience capture, mutual collision marking,
// energy detect, and the scheduled finish. Shared by local launches (where
// t.start == now) and foreign injections (where t.start is up to the engine
// lookahead in the past).
func (m *Medium) enter(t *transmission) {
	m.captureAudience(t)

	// Mark collisions both ways against transmissions already on the air,
	// and deafen in-progress receptions at the new transmitter (half
	// duplex: transmitting while a frame is arriving loses that frame).
	// Only the new frame's audience needs scanning: a node outside it
	// cannot hear t, so neither reception there can newly overlap t. Nodes
	// with no radio attached are skipped outright — the seed marked
	// collided/interfSNR for them too, wasted work nothing ever read.
	for _, other := range m.active {
		if other.end <= t.start {
			continue
		}
		// The new transmitter deafens itself to in-flight receptions; its
		// own signal is infinitely strong, so capture can never save them.
		other.addInterf(t.src, 1e9)
		for _, nid := range t.audience {
			osnr, ok := m.tbl.snrConnected(other.src, nid)
			if !ok {
				continue
			}
			// nid hears both transmitters: both frames are damaged there.
			t.addInterf(nid, osnr)
			other.addInterf(nid, m.tbl.snr(t.src, nid))
		}
	}
	t.activeIdx = len(m.active)
	m.active = append(m.active, t)
	m.txBusy[t.src]++

	// Energy detect at every node in range.
	for _, nid := range t.audience {
		m.busy[nid]++
		if m.busy[nid] == 1 {
			m.radios[nid].CarrierBusy()
		}
	}

	m.sched.After(t.end-m.sched.Now(), "medium:txEnd", t.finishFn)
}

// launchDense is the seed's launch: collision marking and energy detect
// each scan every node id, O(N) (and O(active·N) for marking) regardless
// of how few are in range. Kept verbatim in cost so the scaling benchmarks
// compare the neighbor index against the real pre-index behavior; the
// equivalence tests pin that both paths observe identical channels.
func (m *Medium) launchDense(t *transmission) {
	d := t.end - t.start
	m.stats.AirtimeTotal += d
	t.dense = true
	for _, other := range m.active {
		if other.end <= t.start {
			continue
		}
		other.addInterf(t.src, 1e9)
		for id := range m.radios {
			nid := NodeID(id)
			if m.Connected(t.src, nid) && m.Connected(other.src, nid) {
				t.addInterf(nid, m.tbl.snr(other.src, nid))
				other.addInterf(nid, m.tbl.snr(t.src, nid))
			}
		}
	}
	t.activeIdx = len(m.active)
	m.active = append(m.active, t)
	m.txBusy[t.src]++
	for id := range m.radios {
		nid := NodeID(id)
		if m.radios[id] == nil || !m.Connected(t.src, nid) {
			continue
		}
		m.busy[id]++
		if m.busy[id] == 1 {
			m.radios[id].CarrierBusy()
		}
	}
	m.sched.After(d, "medium:txEnd", t.finishFn)
}

func (m *Medium) finish(t *transmission) {
	m.txBusy[t.src]--
	// O(1) removal from the active list: swap the tail into our slot.
	last := len(m.active) - 1
	if i := t.activeIdx; i != last {
		m.active[i] = m.active[last]
		m.active[i].activeIdx = i
	}
	m.active[last] = nil
	m.active = m.active[:last]

	if t.dense {
		m.finishDense(t)
		return
	}
	// Deliver to the audience captured at launch, then release carrier.
	// Delivery happens before idle notifications so MACs see the frame
	// before they resume backoff. Using the launch-time audience keeps the
	// busy refcount balanced even if connectivity changed mid-flight (the
	// seed re-evaluated the matrix here and could leak a refcount).
	for _, nid := range t.audience {
		m.deliver(t, nid)
	}
	for _, nid := range t.audience {
		m.busy[nid]--
		if m.busy[nid] == 0 {
			m.radios[nid].CarrierIdle()
		}
	}
	m.putTx(t)
}

// finishDense is the seed's finish: two more O(N) scans (deliver, then
// release carrier) plus an O(N) collision-state reset on recycle.
func (m *Medium) finishDense(t *transmission) {
	for id := range m.radios {
		nid := NodeID(id)
		if m.radios[id] == nil || !m.Connected(t.src, nid) {
			continue
		}
		m.deliver(t, nid)
	}
	for id := range m.radios {
		nid := NodeID(id)
		if m.radios[id] == nil || !m.Connected(t.src, nid) {
			continue
		}
		m.busy[id]--
		if m.busy[id] == 0 {
			m.radios[id].CarrierIdle()
		}
	}
	// The seed reset every per-node entry on reuse; reproduce that cost.
	for i := range t.collided {
		t.collided[i] = false
		t.interfSNR[i] = -1e9
	}
	t.marked = t.marked[:0]
	m.putTx(t)
}

func (m *Medium) deliver(t *transmission, dst NodeID) {
	if m.txBusy[dst] > 0 {
		// Half duplex: a node on the air cannot decode. (Sufficient
		// because every transmission that overlapped ours in any way is
		// still counted busy at our end time only if it is still active;
		// any earlier overlap marked us collided at shared receivers, and
		// our own TX overlapping the tail of this reception is exactly
		// this case.)
		m.stats.HalfDuplex++
		m.emit(Event{Kind: "half-duplex", Src: t.src, Dst: dst})
		return
	}
	snr := m.tbl.snr(t.src, dst)
	if t.collided[dst] {
		captured := m.captureDB > 0 && snr-t.interfSNR[dst] >= m.captureDB
		if !captured {
			m.stats.Collisions++
			m.emit(Event{Kind: "collision", Src: t.src, Dst: dst})
			return
		}
		m.stats.Captures++
	}
	shift := snr - m.params.SNRdB // per-link adjustment

	if t.isControl {
		// Control frames end within the coherence budget; apply the flat
		// error probability for their size.
		end := m.params.Samples(m.params.PreamblePLCP + phy.Airtime(t.control.WireSize(), m.params.ControlRate))
		p := m.shiftedChunkErr(t.control.WireSize(), m.params.ControlRate, end, shift)
		if m.sched.Rand().Float64() < p {
			m.stats.CorruptCtrl++
			m.emit(Event{Kind: "ctrl-noise", Src: t.src, Dst: dst})
			return
		}
		m.emit(Event{Kind: "rx-ctrl", Src: t.src, Dst: dst, Info: t.control.Type.String()})
		m.radios[dst].RxControl(t.src, t.control, snr)
		return
	}

	// Preamble/PLCP failure loses the whole frame.
	preEnd := m.params.Samples(m.params.PreamblePLCP)
	if p := m.shiftedChunkErr(frame.PHYHeaderLen, m.params.ControlRate, preEnd, shift); m.sched.Rand().Float64() < p {
		return
	}

	// Corrupt individual subframes according to their airtime offsets.
	// The leading portion's airtime offsets the trailing portion's clock;
	// which portion leads depends on the header's Trailing flag.
	body := t.body
	copied := false
	prefix := m.params.PreamblePLCP + m.params.BroadcastDescDuration(t.hdr.BroadcastLen > 0)
	leadLen, leadRate := t.hdr.BroadcastLen, t.hdr.BroadcastRate
	if t.hdr.Trailing {
		leadLen, leadRate = t.hdr.UnicastLen, t.hdr.UnicastRate
	}
	leadEnd := prefix + phy.Airtime(leadLen, leadRate)
	for _, sp := range t.spans {
		rate := t.hdr.UnicastRate
		if sp.Broadcast {
			rate = t.hdr.BroadcastRate
		}
		var endT time.Duration
		if sp.Off < leadLen {
			endT = prefix + phy.Airtime(sp.Off+sp.Size, rate)
		} else {
			endT = leadEnd + phy.Airtime(sp.Off+sp.Size-leadLen, rate)
		}
		p := m.shiftedChunkErr(sp.Size, rate, m.params.Samples(endT), shift)
		if m.sched.Rand().Float64() >= p {
			continue
		}
		// Copy-on-corrupt: the shared clean body stays immutable; only a
		// receiver whose copy of the air was damaged gets private bytes.
		if !copied {
			body = append([]byte(nil), t.body...)
			copied = true
		}
		corruptSpan(body[sp.Off:sp.Off+sp.Size], m.sched)
	}
	if m.observer != nil {
		info := "clean"
		if copied {
			info = "corrupted"
		}
		m.emit(Event{Kind: "rx-agg", Src: t.src, Dst: dst, Info: info})
	}
	m.radios[dst].RxAggregate(t.src, t.hdr, body)
}

// shiftedChunkErr applies a per-link SNR shift on top of the global params,
// memoized through the medium's phy.ErrorCache (experiments hit a tiny set
// of {size, rate, offset, shift} keys).
func (m *Medium) shiftedChunkErr(nBytes int, r phy.Rate, endSample int64, snrShift float64) float64 {
	return m.errs.ChunkErrorProb(nBytes, r, endSample, snrShift)
}

// corruptSpan flips a few bits inside the span so the subframe's FCS (or
// its delineation) fails at decode time, exactly as on real hardware.
func corruptSpan(b []byte, sched *sim.Scheduler) {
	rng := sched.Rand()
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
	}
}
