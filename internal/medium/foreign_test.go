package medium

import (
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// splitSetup builds two media over one shared link table, as the sharded
// engine does: nodes 0..1 attach to medium A, nodes 2..3 to medium B, with
// every pair connected. Each medium runs on its own scheduler.
func splitSetup(t *testing.T) (sa, sb *sim.Scheduler, ma, mb *Medium, radios []*fakeRadio) {
	t.Helper()
	params := phy.DefaultParams()
	tbl := NewLinkTable(params, 4)
	sa, sb = sim.NewScheduler(1), sim.NewScheduler(2)
	ma, mb = NewOnTable(sa, params, tbl), NewOnTable(sb, params, tbl)
	for a := NodeID(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			ma.SetConnected(a, b, true)
		}
	}
	radios = make([]*fakeRadio, 4)
	for i := range radios {
		radios[i] = &fakeRadio{}
	}
	ma.Attach(0, radios[0])
	ma.Attach(1, radios[1])
	mb.Attach(2, radios[2])
	mb.Attach(3, radios[3])
	return
}

// TestForeignControlDelivery: a control frame launched on medium A and
// replayed into medium B is delivered to B's attached radios at exactly the
// frame's end time, and the boundary hook sees the launch.
func TestForeignControlDelivery(t *testing.T) {
	sa, sb, ma, mb, radios := splitSetup(t)
	look := 200 * time.Microsecond

	var hooked []ForeignFrame
	ma.SetBoundary(func(ff ForeignFrame) {
		ff.Spans = append([]frame.Span(nil), ff.Spans...)
		hooked = append(hooked, ff)
	})
	c := frame.Control{Type: frame.TypeRTS, Duration: time.Millisecond, RA: frame.NodeAddr(2), TA: frame.NodeAddr(0)}
	sa.After(0, "tx", func() { ma.TransmitControl(0, c) })
	sa.Run()

	if len(hooked) != 1 {
		t.Fatalf("boundary hook saw %d frames, want 1", len(hooked))
	}
	ff := hooked[0]
	if ff.Src != 0 || !ff.IsControl || ff.Start != 0 || ff.End != ma.ControlAirtime(&c) {
		t.Fatalf("boundary frame = %+v", ff)
	}

	// Replay into B at Start+lookahead, as the engine would.
	sb.At(ff.Start+look, "inject", func() { mb.InjectForeign(ff) })
	sb.Run()
	if sb.Now() != ff.End {
		t.Fatalf("B clock %v after drain, want frame end %v", sb.Now(), ff.End)
	}
	for i := 2; i <= 3; i++ {
		r := radios[i]
		if len(r.ctrls) != 1 || r.ctrls[0].Type != frame.TypeRTS || r.ctrlSrcs[0] != 0 {
			t.Fatalf("radio %d controls = %+v from %v", i, r.ctrls, r.ctrlSrcs)
		}
		if r.busyEdges != 1 || r.idleEdges != 1 {
			t.Fatalf("radio %d busy/idle edges = %d/%d, want 1/1", i, r.busyEdges, r.idleEdges)
		}
	}
	// A's own radios saw it locally; the foreign stat landed on B.
	if ma.Stats().ForeignTx != 0 || mb.Stats().ForeignTx != 1 {
		t.Fatalf("ForeignTx A=%d B=%d", ma.Stats().ForeignTx, mb.Stats().ForeignTx)
	}
	if mb.Stats().ControlTx != 0 {
		t.Fatalf("replay must not count as a local control tx")
	}
}

// TestForeignAggregateDelivery: aggregates replay with their marshaled body
// shared and decode cleanly on the far side.
func TestForeignAggregateDelivery(t *testing.T) {
	sa, sb, ma, mb, radios := splitSetup(t)
	agg := dataAgg(3, 200, frame.NodeAddr(2))
	var hooked *ForeignFrame
	ma.SetBoundary(func(ff ForeignFrame) {
		ff.Spans = append([]frame.Span(nil), ff.Spans...)
		hooked = &ff
	})
	sa.After(0, "tx", func() { ma.TransmitAggregate(0, agg) })
	sa.Run()
	if hooked == nil {
		t.Fatal("boundary hook not called for aggregate")
	}
	sb.At(hooked.Start+100*time.Microsecond, "inject", func() { mb.InjectForeign(*hooked) })
	sb.Run()
	if got := len(radios[2].aggs); got != 1 {
		t.Fatalf("radio 2 decoded %d aggregates, want 1", got)
	}
	if got := len(radios[2].aggs[0].Unicast); got != 3 {
		t.Fatalf("decoded %d subframes, want 3", got)
	}
}

// TestForeignCollision: a foreign frame overlapping a local transmission
// destroys the local frame at shared receivers (and vice versa), exactly as
// a same-medium overlap would.
func TestForeignCollision(t *testing.T) {
	_, sb, ma, mb, radios := splitSetup(t)
	c := frame.Control{Type: frame.TypeCTS, Duration: time.Millisecond, RA: frame.NodeAddr(0), TA: frame.NodeAddr(2)}
	air := ma.ControlAirtime(&c)
	ff := ForeignFrame{Src: 0, Start: 0, End: air, IsControl: true, Control: c}

	// Local tx from node 2 starts first; the foreign frame from node 0 is
	// injected mid-flight. Node 3 hears both: both copies must die there.
	sb.At(0, "local-tx", func() { mb.TransmitControl(2, c) })
	sb.At(air/2, "inject", func() { mb.InjectForeign(ff) })
	sb.Run()
	if got := len(radios[3].ctrls); got != 0 {
		t.Fatalf("radio 3 decoded %d controls through a collision", got)
	}
	if mb.Stats().Collisions != 2 {
		t.Fatalf("collisions = %d, want 2 (both frames at node 3)", mb.Stats().Collisions)
	}
	// Carrier refcounts must balance after both frames end.
	for i := 2; i <= 3; i++ {
		if mb.CarrierBusy(NodeID(i)) {
			t.Fatalf("node %d still senses carrier after drain", i)
		}
	}
}

// TestForeignInjectWindow: injection outside [Start, End] is an engine bug
// and panics.
func TestForeignInjectWindow(t *testing.T) {
	_, sb, _, mb, _ := splitSetup(t)
	ff := ForeignFrame{Src: 0, Start: 0, End: 100 * time.Microsecond, IsControl: true,
		Control: frame.Control{Type: frame.TypeCTS}}
	sb.At(200*time.Microsecond, "late", func() {
		defer func() {
			if recover() == nil {
				t.Error("late InjectForeign did not panic")
			}
		}()
		mb.InjectForeign(ff)
	})
	sb.Run()
}

// TestBoundaryDenseScanExclusion: the two modes cannot be combined.
func TestBoundaryDenseScanExclusion(t *testing.T) {
	s := sim.NewScheduler(1)
	m := New(s, phy.DefaultParams(), 2)
	m.SetDenseScan(true)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetBoundary under dense scan did not panic")
			}
		}()
		m.SetBoundary(func(ForeignFrame) {})
	}()
	m.SetDenseScan(false)
	m.SetBoundary(func(ForeignFrame) {})
	defer func() {
		if recover() == nil {
			t.Error("SetDenseScan under boundary hook did not panic")
		}
	}()
	m.SetDenseScan(true)
}
