package medium

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// checkIndexAgainstMatrix asserts, for every source, that the incremental
// neighbor index equals what a fresh scan of the dense link matrix (the
// oracle) produces: exactly the connected non-self destinations, ascending.
func checkIndexAgainstMatrix(t *testing.T, m *Medium, step int) {
	t.Helper()
	n := len(m.radios)
	for src := 0; src < n; src++ {
		var want []NodeID
		for dst := 0; dst < n; dst++ {
			if m.Connected(NodeID(src), NodeID(dst)) {
				want = append(want, NodeID(dst))
			}
		}
		got := m.Neighbors(NodeID(src))
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]NodeID(nil), got...), want) {
			t.Fatalf("step %d: Neighbors(%d) = %v, matrix oracle %v", step, src, got, want)
		}
		if m.Degree(NodeID(src)) != len(want) {
			t.Fatalf("step %d: Degree(%d) = %d, want %d", step, src, m.Degree(NodeID(src)), len(want))
		}
	}
}

// TestNeighborIndexMatchesMatrixOracle churns the connectivity setters —
// bidirectional cuts/restores, asymmetric directed edits, SNR overrides,
// self-link no-ops, redundant repeats — and checks the neighbor index
// against the dense matrix after every few steps.
func TestNeighborIndexMatchesMatrixOracle(t *testing.T) {
	for _, tc := range []struct {
		name  string
		n     int
		start func(s *sim.Scheduler, n int) *Medium
	}{
		{"from-full", 17, func(s *sim.Scheduler, n int) *Medium {
			return New(s, phy.DefaultParams(), n)
		}},
		{"from-empty", 17, func(s *sim.Scheduler, n int) *Medium {
			return NewUnconnected(s, phy.DefaultParams(), n)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := sim.NewScheduler(7)
			m := tc.start(s, tc.n)
			checkIndexAgainstMatrix(t, m, -1)
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 4000; i++ {
				a := NodeID(rng.Intn(tc.n))
				b := NodeID(rng.Intn(tc.n))
				on := rng.Intn(2) == 0
				switch rng.Intn(6) {
				case 0:
					m.SetConnected(a, b, on)
				case 1:
					m.SetConnectedDirected(a, b, on) // asymmetric link
				case 2:
					m.SetSNR(a, b, float64(rng.Intn(30)))
				case 3:
					m.SetConnected(a, a, on) // self-link: must be a no-op
				case 4:
					// Redundant repeat: setting the current state again.
					m.SetConnectedDirected(a, b, m.Connected(a, b))
				case 5:
					m.SetConnectedDirected(a, b, on)
					m.SetSNR(a, b, 3+float64(rng.Intn(25)))
				}
				if i%101 == 0 {
					checkIndexAgainstMatrix(t, m, i)
				}
			}
			checkIndexAgainstMatrix(t, m, 4000)
		})
	}
}

// mobilityTrace generates the churn pattern a mobility tick produces: n
// nodes random-walk inside a square area and, after every move, the trace
// reconciles the medium's connectivity with the distance rule exactly the
// way topology.UpdateLinks does — cuts for pairs that left range, raises
// plus an SNR refresh for pairs in range — using only the incremental
// SetConnected/SetSNR paths.
type mobilityTrace struct {
	rng      *rand.Rand
	x, y     []float64
	side     float64
	rangeLim float64
}

func newMobilityTrace(n int, side, rangeLim float64, seed int64) *mobilityTrace {
	tr := &mobilityTrace{
		rng:      rand.New(rand.NewSource(seed)),
		x:        make([]float64, n),
		y:        make([]float64, n),
		side:     side,
		rangeLim: rangeLim,
	}
	for i := 0; i < n; i++ {
		tr.x[i] = tr.rng.Float64() * side
		tr.y[i] = tr.rng.Float64() * side
	}
	return tr
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// step random-walks every node and pushes the resulting link deltas into
// the medium.
func (tr *mobilityTrace) step(m *Medium, stride float64) {
	for i := range tr.x {
		tr.x[i] = clamp(tr.x[i]+(tr.rng.Float64()*2-1)*stride, 0, tr.side)
		tr.y[i] = clamp(tr.y[i]+(tr.rng.Float64()*2-1)*stride, 0, tr.side)
	}
	n := len(tr.x)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			dx, dy := tr.x[a]-tr.x[b], tr.y[a]-tr.y[b]
			inRange := dx*dx+dy*dy <= tr.rangeLim*tr.rangeLim
			connected := m.Connected(NodeID(a), NodeID(b))
			switch {
			case inRange && !connected:
				m.SetConnected(NodeID(a), NodeID(b), true)
				m.SetSNR(NodeID(a), NodeID(b), 5+tr.rng.Float64()*20)
			case inRange && connected:
				m.SetSNR(NodeID(a), NodeID(b), 5+tr.rng.Float64()*20)
			case !inRange && connected:
				m.SetConnected(NodeID(a), NodeID(b), false)
			}
		}
	}
}

// inRangeOracle recomputes the expected adjacency from scratch.
func (tr *mobilityTrace) inRangeOracle(a, b int) bool {
	dx, dy := tr.x[a]-tr.x[b], tr.y[a]-tr.y[b]
	return a != b && dx*dx+dy*dy <= tr.rangeLim*tr.rangeLim
}

// TestNeighborIndexUnderMobilityTrace drives sustained mobility-style
// churn — every step moves all nodes and reconciles every crossed range
// boundary — and checks after each step that (a) the incremental neighbor
// index still equals a fresh scan of the dense matrix and (b) the matrix
// itself matches the positional ground truth the trace maintains.
func TestNeighborIndexUnderMobilityTrace(t *testing.T) {
	const n = 23
	s := sim.NewScheduler(3)
	m := NewUnconnected(s, phy.DefaultParams(), n)
	tr := newMobilityTrace(n, 6.0, 1.5, 77)
	tr.step(m, 0) // initial reconcile at the starting positions
	for step := 1; step <= 250; step++ {
		// Mix small drifts with occasional large jumps so both sparse and
		// massive per-step deltas are exercised.
		stride := 0.3
		if step%17 == 0 {
			stride = 3.0
		}
		tr.step(m, stride)
		checkIndexAgainstMatrix(t, m, step)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if want := tr.inRangeOracle(a, b); m.Connected(NodeID(a), NodeID(b)) != want {
					t.Fatalf("step %d: Connected(%d,%d) = %v, positional oracle %v",
						step, a, b, !want, want)
				}
			}
		}
	}
}

// runEquivalenceScenario drives an identical randomized partial-mesh
// traffic pattern through the medium and returns everything observable:
// per-radio reception/carrier counts and the channel stats. dense selects
// the seed's O(N) scan path; the default is the neighbor index. Both must
// produce bit-identical observations (same RNG draw sequence included).
func runEquivalenceScenario(t *testing.T, dense bool) ([]fakeRadio, Stats) {
	t.Helper()
	const n = 14
	s := sim.NewScheduler(5)
	m := New(s, phy.DefaultParams(), n)
	m.SetDenseScan(dense)

	// Randomized sparse topology, including asymmetric cuts and per-link
	// SNR spread. Node 9 stays detached (nil radio): the collision loops
	// must skip it.
	rng := rand.New(rand.NewSource(99))
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			switch rng.Intn(4) {
			case 0:
				m.SetConnected(NodeID(a), NodeID(b), false)
			case 1:
				m.SetConnectedDirected(NodeID(a), NodeID(b), false)
			case 2:
				m.SetSNR(NodeID(a), NodeID(b), 6+float64(rng.Intn(22)))
			}
		}
	}
	radios := make([]fakeRadio, n)
	for i := 0; i < n; i++ {
		if i == 9 {
			continue
		}
		m.Attach(NodeID(i), &radios[i])
	}

	// Overlapping traffic: staggered controls and aggregates from many
	// sources, close enough in time to collide at shared receivers.
	at := time.Duration(0)
	for round := 0; round < 40; round++ {
		src := NodeID((round * 5) % n)
		if src == 9 {
			src = 10
		}
		src2 := NodeID((round*7 + 3) % n)
		if src2 == 9 {
			src2 = 8
		}
		c := frame.Control{Type: frame.TypeCTS, RA: frame.Broadcast}
		agg := dataAgg(1+round%3, 400, frame.NodeAddr(int((src+1)%n)))
		rsrc, rsrc2 := src, src2
		s.After(at, "tx-ctrl", func() { m.TransmitControl(rsrc, c) })
		s.After(at+40*time.Microsecond, "tx-agg", func() { m.TransmitAggregate(rsrc2, agg) })
		at += 3 * time.Millisecond
	}
	s.Run()
	return radios, m.Stats()
}

// TestIndexedMatchesDenseScan pins the equivalence of the neighbor-indexed
// hot paths to the dense-scan oracle on a randomized partial mesh with
// collisions, asymmetric links, SNR spread, and a detached radio.
func TestIndexedMatchesDenseScan(t *testing.T) {
	fastRadios, fastStats := runEquivalenceScenario(t, false)
	denseRadios, denseStats := runEquivalenceScenario(t, true)
	if fastStats != denseStats {
		t.Errorf("stats diverged:\nindexed: %+v\ndense:   %+v", fastStats, denseStats)
	}
	for i := range fastRadios {
		f, d := &fastRadios[i], &denseRadios[i]
		if f.busyEdges != d.busyEdges || f.idleEdges != d.idleEdges {
			t.Errorf("radio %d carrier edges diverged: indexed %d/%d dense %d/%d",
				i, f.busyEdges, f.idleEdges, d.busyEdges, d.idleEdges)
		}
		if !reflect.DeepEqual(f.ctrls, d.ctrls) || !reflect.DeepEqual(f.ctrlSrcs, d.ctrlSrcs) {
			t.Errorf("radio %d control receptions diverged", i)
		}
		if !reflect.DeepEqual(f.snrs, d.snrs) {
			t.Errorf("radio %d reported SNRs diverged", i)
		}
		if !reflect.DeepEqual(f.aggs, d.aggs) || !reflect.DeepEqual(f.aggSrcs, d.aggSrcs) {
			t.Errorf("radio %d aggregate receptions diverged", i)
		}
	}
}

// TestUnconnectedMediumDefaults: a virgin NewUnconnected medium hears
// nothing, and connecting a link gives it the calibrated default SNR.
func TestUnconnectedMediumDefaults(t *testing.T) {
	s := sim.NewScheduler(1)
	p := phy.DefaultParams()
	m := NewUnconnected(s, p, 3)
	r := &fakeRadio{}
	m.Attach(1, r)
	m.Attach(0, &fakeRadio{})
	s.After(0, "tx", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.Run()
	if len(r.ctrls) != 0 || r.busyEdges != 0 {
		t.Fatal("unconnected medium delivered a frame")
	}
	if m.Degree(0) != 0 {
		t.Fatalf("unconnected Degree = %d", m.Degree(0))
	}
	m.SetConnected(0, 1, true)
	s.After(time.Millisecond, "tx", func() { m.TransmitControl(0, frame.Control{Type: frame.TypeCTS, RA: frame.NodeAddr(1)}) })
	s.Run()
	if len(r.ctrls) != 1 {
		t.Fatalf("connected link delivered %d frames, want 1", len(r.ctrls))
	}
	if r.snrs[0] != p.SNRdB {
		t.Fatalf("default link SNR = %v, want %v", r.snrs[0], p.SNRdB)
	}
}
