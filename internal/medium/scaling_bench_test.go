package medium

import (
	"fmt"
	"testing"
	"time"
)

// The medium scaling benches: per-transmission cost on a K×K grid mesh
// (8-neighborhood, degree ≤ 8 independent of N) under the neighbor index
// versus the dense scan the seed used. The acceptance shape: indexed ns/op
// stays flat as N grows at fixed degree, while dense-scan ns/op grows
// linearly with N; at N=100 the indexed medium must be ≥5x faster. The
// workload lives in TxBench (benchkit.go) so cmd/aggbench commits baseline
// records of the identical measurement; the CI bench gate also watches
// these rows' B/op.
//
//	go test ./internal/medium -bench MediumTx -benchtime 100000x
func benchMediumTx(b *testing.B, k int, dense bool) {
	b.Helper()
	tb := NewTxBench(k, dense)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		tb.Burst()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(tb.SimNow().Seconds()/wall, "simsec/sec")
	}
	b.ReportMetric(float64(tb.TxPerBurst()), "tx/op")
}

func BenchmarkMediumTx(b *testing.B) {
	for _, k := range []int{5, 10, 20} { // N = 25, 100, 400
		for _, mode := range []struct {
			name  string
			dense bool
		}{{"indexed", false}, {"dense", true}} {
			b.Run(fmt.Sprintf("N%d/%s", k*k, mode.name), func(b *testing.B) {
				benchMediumTx(b, k, mode.dense)
			})
		}
	}
}
