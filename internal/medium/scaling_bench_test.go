package medium

import (
	"fmt"
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// The medium scaling benches: per-transmission cost on a K×K grid mesh
// (8-neighborhood, degree ≤ 8 independent of N) under the neighbor index
// versus the dense scan the seed used. The acceptance shape: indexed ns/op
// stays flat as N grows at fixed degree, while dense-scan ns/op grows
// linearly with N; at N=100 the indexed medium must be ≥5x faster.
//
//	go test ./internal/medium -bench MediumTx -benchtime 100000x

type nopRadio struct{}

func (nopRadio) CarrierBusy()                             {}
func (nopRadio) CarrierIdle()                             {}
func (nopRadio) RxControl(NodeID, frame.Control, float64) {}
func (nopRadio) RxAggregate(NodeID, frame.PHYHeader, []byte) {
}

// buildGridMedium wires a k×k grid: every node connects to its 4-neighbors
// at unit spacing (degree ≤ 4 however large the grid grows).
func buildGridMedium(s *sim.Scheduler, k int) *Medium {
	p := phy.DefaultParams()
	m := NewUnconnected(s, p, k*k)
	id := func(r, c int) NodeID { return NodeID(r*k + c) }
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			for _, d := range [][2]int{{0, 1}, {1, 0}} {
				nr, nc := r+d[0], c+d[1]
				if nr < 0 || nr >= k || nc < 0 || nc >= k {
					continue
				}
				m.SetConnected(id(r, c), id(nr, nc), true)
			}
			m.Attach(id(r, c), nopRadio{})
		}
	}
	return m
}

// benchMediumTx measures the cost of a full transmission lifecycle (launch,
// overlapping-collision marking, delivery to the audience, carrier release)
// on a k×k grid. Each iteration launches eight overlapping control frames
// from the grid's corners and edge midpoints — spatially separate collision
// domains transmitting concurrently, as in a mesh carrying many flows —
// and drains the scheduler.
func benchMediumTx(b *testing.B, k int, dense bool) {
	b.Helper()
	s := sim.NewScheduler(1)
	m := buildGridMedium(s, k)
	m.SetDenseScan(dense)
	h := k / 2
	srcs := []NodeID{
		0, NodeID(k - 1), NodeID(k * (k - 1)), NodeID(k*k - 1), // corners
		NodeID(h), NodeID(k * h), NodeID(k*h + k - 1), NodeID(k*(k-1) + h), // edge midpoints
	}
	c := frame.Control{Type: frame.TypeCTS, RA: frame.Broadcast}
	txs := make([]func(), len(srcs))
	for i, src := range srcs {
		src := src
		txs[i] = func() { m.TransmitControl(src, c) }
	}
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		for j, tx := range txs {
			s.After(time.Duration(j)*time.Microsecond, "tx", tx)
		}
		s.Run()
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(time.Duration(s.Now()).Seconds()/wall, "simsec/sec")
	}
	b.ReportMetric(float64(len(srcs)), "tx/op")
}

func BenchmarkMediumTx(b *testing.B) {
	for _, k := range []int{5, 10, 20} { // N = 25, 100, 400
		for _, mode := range []struct {
			name  string
			dense bool
		}{{"indexed", false}, {"dense", true}} {
			b.Run(fmt.Sprintf("N%d/%s", k*k, mode.name), func(b *testing.B) {
				benchMediumTx(b, k, mode.dense)
			})
		}
	}
}
