package phy

// chunkKey identifies one chunk-error computation exactly. Experiments hit a
// tiny set of keys — subframe sizes, rates and airtime offsets repeat from
// aggregate to aggregate — so an exact-key memo turns the per-span
// Erfc/Expm1/Log1p chain into a map hit.
type chunkKey struct {
	nBytes    int
	rate      Rate
	endSample int64
	snrShift  float64
}

// ErrorCache memoizes ChunkErrorProb for one fixed Params. The cached values
// are the exact float64 results of the uncached computation (same operations
// in the same order), so wiring a cache in cannot change a single RNG
// comparison — the byte-identical-output guarantee of the golden tests.
//
// The cache is not safe for concurrent use; each simulation run owns its
// own (the parallel runner gives every run a private Medium).
type ErrorCache struct {
	params Params
	m      map[chunkKey]float64
}

// NewErrorCache returns an empty cache bound to p.
func NewErrorCache(p Params) *ErrorCache {
	return &ErrorCache{params: p, m: make(map[chunkKey]float64, 64)}
}

// ChunkErrorProb returns Params.ChunkErrorProb for the cache's params with
// SNRdB shifted by snrShift (the per-link adjustment), memoized.
func (c *ErrorCache) ChunkErrorProb(nBytes int, r Rate, endSample int64, snrShift float64) float64 {
	k := chunkKey{nBytes: nBytes, rate: r, endSample: endSample, snrShift: snrShift}
	if p, ok := c.m[k]; ok {
		return p
	}
	params := c.params
	if snrShift != 0 {
		params.SNRdB += snrShift
	}
	p := params.ChunkErrorProb(nBytes, r, endSample)
	c.m[k] = p
	return p
}

// Len reports how many distinct keys the cache has seen (observability for
// tests and profiling).
func (c *ErrorCache) Len() int { return len(c.m) }
