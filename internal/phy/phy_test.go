package phy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRateTable(t *testing.T) {
	cases := []struct {
		r    Rate
		mbps float64
		mod  Modulation
		num  int
		den  int
	}{
		{Rate650k, 0.65, BPSK, 1, 2},
		{Rate1300k, 1.30, QPSK, 1, 2},
		{Rate1950k, 1.95, QPSK, 3, 4},
		{Rate2600k, 2.60, QAM16, 1, 2},
		{Rate3900k, 3.90, QAM16, 3, 4},
		{Rate5200k, 5.20, QAM64, 2, 3},
		{Rate5850k, 5.85, QAM64, 3, 4},
		{Rate6500k, 6.50, QAM64, 5, 6},
	}
	for _, c := range cases {
		if got := c.r.Mbps(); math.Abs(got-c.mbps) > 1e-9 {
			t.Errorf("%v Mbps = %v, want %v", c.r, got, c.mbps)
		}
		if got := c.r.Modulation(); got != c.mod {
			t.Errorf("%v modulation = %v, want %v", c.r, got, c.mod)
		}
		num, den := c.r.CodeRate()
		if num != c.num || den != c.den {
			t.Errorf("%v code rate = %d/%d, want %d/%d", c.r, num, den, c.num, c.den)
		}
	}
}

func TestRateFromMbps(t *testing.T) {
	for _, r := range AllRates() {
		got, err := RateFromMbps(r.Mbps())
		if err != nil || got != r {
			t.Errorf("RateFromMbps(%v) = %v, %v; want %v", r.Mbps(), got, err, r)
		}
	}
	if _, err := RateFromMbps(7.0); err == nil {
		t.Error("RateFromMbps(7.0) should fail")
	}
}

func TestExperimentRatesExclude64QAM(t *testing.T) {
	for _, r := range ExperimentRates() {
		if r.Modulation() == QAM64 {
			t.Errorf("experiment rate %v uses 64-QAM, which 25 dB SNR cannot support", r)
		}
	}
	if len(ExperimentRates()) != 4 {
		t.Fatalf("paper uses 4 rates, got %d", len(ExperimentRates()))
	}
}

func TestAirtime(t *testing.T) {
	// 1140 bytes at 0.65 Mbps = 9120 bits / 650000 bps = 14.0307... ms
	got := Airtime(1140, Rate650k)
	secs := float64(1140*8) / 650_000
	want := time.Duration(secs * float64(time.Second))
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("Airtime(1140, 0.65) = %v, want ~%v", got, want)
	}
	// Doubling the rate halves the airtime.
	if a, b := Airtime(1000, Rate650k), Airtime(1000, Rate1300k); a != 2*b {
		t.Errorf("airtime at 0.65 (%v) should be exactly 2x airtime at 1.3 (%v)", a, b)
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	p := DefaultParams()
	for _, d := range []time.Duration{0, time.Microsecond, 500 * time.Microsecond, 60 * time.Millisecond} {
		s := p.Samples(d)
		back := p.Duration(s)
		if back != d {
			t.Errorf("Duration(Samples(%v)) = %v", d, back)
		}
	}
	// 60 ms at 2 Msps = 120 Ksamples: the paper's coherence budget.
	if s := p.Samples(60 * time.Millisecond); s != 120_000 {
		t.Errorf("60ms = %d samples, want 120000", s)
	}
}

func TestCoherenceBudgetMatchesPaperThresholds(t *testing.T) {
	// §6.1: "For the 0.65 Mbps rate ... 120 Ksamples is 5 KB. For the
	// 1.3 Mbps rate ... 11 KB. For the 1.95 Mbps rate ... 15 KB."
	p := DefaultParams()
	cases := []struct {
		r       Rate
		paperKB float64
	}{
		{Rate650k, 5},
		{Rate1300k, 11},
		{Rate1950k, 15},
	}
	for _, c := range cases {
		gotKB := float64(p.MaxBytesWithinCoherence(c.r)) / 1000
		// Within 25% of the paper's rounded KB values.
		if gotKB < c.paperKB*0.75 || gotKB > c.paperKB*1.25 {
			t.Errorf("coherence budget at %v = %.1f KB, paper says ~%v KB", c.r, gotKB, c.paperKB)
		}
	}
}

func TestBERReliabilityAt25dB(t *testing.T) {
	p := DefaultParams()
	eff := p.EffectiveSNRdB(0)
	// The four experiment rates must be essentially error-free for a
	// max-size frame; 64-QAM rates must not be.
	frameBits := 1464.0 * 8
	for _, r := range ExperimentRates() {
		fer := 1 - math.Pow(1-BitErrorRate(r, eff), frameBits)
		if fer > 1e-3 {
			t.Errorf("%v FER = %g at 25 dB; experiments need reliable operation", r, fer)
		}
	}
	for _, r := range []Rate{Rate5200k, Rate5850k, Rate6500k} {
		fer := 1 - math.Pow(1-BitErrorRate(r, eff), frameBits)
		if fer < 0.5 {
			t.Errorf("%v FER = %g at 25 dB; paper says 64-QAM was unreliable", r, fer)
		}
	}
}

func TestBERMonotoneInSNR(t *testing.T) {
	for _, r := range AllRates() {
		prev := 1.0
		for snr := -5.0; snr <= 40; snr += 0.5 {
			b := BitErrorRate(r, snr)
			if b > prev+1e-15 {
				t.Fatalf("%v BER not monotone at %v dB: %g > %g", r, snr, b, prev)
			}
			if b < 0 || b > 0.5 {
				t.Fatalf("%v BER out of range at %v dB: %g", r, snr, b)
			}
			prev = b
		}
	}
}

func TestBEROrderingAcrossRates(t *testing.T) {
	// At any SNR, a faster rate is never more robust than a slower one.
	for snr := 0.0; snr <= 30; snr += 2 {
		rates := AllRates()
		for i := 1; i < len(rates); i++ {
			lo := BitErrorRate(rates[i-1], snr)
			hi := BitErrorRate(rates[i], snr)
			if hi+1e-18 < lo && lo > 1e-15 {
				// Allow ties at numerically-zero BER.
				t.Errorf("at %v dB, %v (BER %g) beats slower %v (BER %g)",
					snr, rates[i], hi, rates[i-1], lo)
			}
		}
	}
}

func TestAgingPenalty(t *testing.T) {
	p := DefaultParams()
	if got := p.agingPenaltyDB(p.CoherenceSamples); got != 0 {
		t.Errorf("penalty at budget = %v, want 0", got)
	}
	if got := p.agingPenaltyDB(p.CoherenceSamples - 1); got != 0 {
		t.Errorf("penalty below budget = %v, want 0", got)
	}
	if got := p.agingPenaltyDB(p.CoherenceSamples + 1000); math.Abs(got-p.AgingDBPerKSample) > 1e-9 {
		t.Errorf("penalty 1 Ksample past budget = %v, want %v", got, p.AgingDBPerKSample)
	}
	// Penalty makes long frames fail: a subframe ending far past the budget
	// must be nearly certain to be corrupt.
	pe := p.ChunkErrorProb(1464, Rate650k, p.CoherenceSamples+40_000)
	if pe < 0.99 {
		t.Errorf("deep-aged chunk error prob = %v, want ~1", pe)
	}
	// While one ending within the budget is nearly certain to survive.
	pe = p.ChunkErrorProb(1464, Rate650k, p.CoherenceSamples)
	if pe > 1e-6 {
		t.Errorf("in-budget chunk error prob = %v, want ~0", pe)
	}
}

func TestChunkErrorProbProperties(t *testing.T) {
	p := DefaultParams()
	f := func(nBytes uint16, endK uint8) bool {
		n := int(nBytes%4096) + 1
		end := int64(endK) * 2000
		pe := p.ChunkErrorProb(n, Rate1300k, end)
		if pe < 0 || pe > 1 {
			return false
		}
		// More bytes at the same offset can only increase error prob.
		pe2 := p.ChunkErrorProb(n*2, Rate1300k, end)
		return pe2+1e-15 >= pe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastDescDuration(t *testing.T) {
	p := DefaultParams()
	if d := p.BroadcastDescDuration(false); d != 0 {
		t.Errorf("no-broadcast desc duration = %v, want 0", d)
	}
	want := Airtime(p.BroadcastDescBytes, p.ControlRate)
	if d := p.BroadcastDescDuration(true); d != want {
		t.Errorf("broadcast desc duration = %v, want %v", d, want)
	}
}

func TestMaxBytesWithinCoherenceMonotone(t *testing.T) {
	p := DefaultParams()
	prev := 0
	for _, r := range AllRates() {
		n := p.MaxBytesWithinCoherence(r)
		if n < prev {
			t.Errorf("coherence byte budget decreased at %v: %d < %d", r, n, prev)
		}
		prev = n
	}
}

func TestRateStringAndValid(t *testing.T) {
	if Rate650k.String() != "0.65Mbps" {
		t.Errorf("String = %q", Rate650k.String())
	}
	if Rate(99).Valid() {
		t.Error("Rate(99) should be invalid")
	}
	if Rate(-1).Valid() {
		t.Error("Rate(-1) should be invalid")
	}
	for _, m := range []Modulation{BPSK, QPSK, QAM16, QAM64} {
		if m.String() == "" {
			t.Error("empty modulation name")
		}
	}
}

// The memo cache must return bit-identical probabilities to the direct
// computation for every key shape the medium generates (zero and non-zero
// per-link SNR shifts included) — the byte-identical-output guarantee.
func TestErrorCacheMatchesDirect(t *testing.T) {
	p := DefaultParams()
	c := NewErrorCache(p)
	sizes := []int{8, 14, 160, 1464, 5120}
	ends := []int64{640, 10_000, 119_999, 120_001, 200_000}
	shifts := []float64{0, -21, -3, 2.5}
	for _, r := range AllRates() {
		for _, n := range sizes {
			for _, end := range ends {
				for _, shift := range shifts {
					shifted := p
					shifted.SNRdB += shift
					want := shifted.ChunkErrorProb(n, r, end)
					for pass := 0; pass < 2; pass++ { // miss then hit
						got := c.ChunkErrorProb(n, r, end, shift)
						if got != want {
							t.Fatalf("cache(%d,%v,%d,%g) pass %d = %g, direct %g",
								n, r, end, shift, pass, got, want)
						}
					}
				}
			}
		}
	}
	keys := len(sizes) * len(ends) * len(shifts) * int(numRates)
	if c.Len() != keys {
		t.Fatalf("cache holds %d keys, want %d", c.Len(), keys)
	}
}

func TestErrorCacheSteadyStateAllocFree(t *testing.T) {
	c := NewErrorCache(DefaultParams())
	c.ChunkErrorProb(1464, Rate2600k, 50_000, 0)
	allocs := testing.AllocsPerRun(500, func() {
		c.ChunkErrorProb(1464, Rate2600k, 50_000, 0)
	})
	if allocs != 0 {
		t.Fatalf("cache hit allocates %v times per op, want 0", allocs)
	}
}
