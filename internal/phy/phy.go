// Package phy models the Hydra physical layer: the OFDM rate table
// (modulation × convolutional code rate), airtime and sample arithmetic,
// preamble/PLCP timing, and an SNR-driven bit-error model with
// channel-estimate aging.
//
// Hydra (Kim et al., CoNEXT 2008) runs an 802.11n-style PHY scaled to a
// 1 MHz channel, so its eight SISO rates are one tenth of the 802.11n
// 20 MHz rates: 0.65–6.5 Mbps. The USRP front-end samples complex baseband
// at 2 Msps, which makes the paper's "about 120 Ksamples" coherence budget
// ≈ 60 ms of airtime — matching its per-rate aggregation-size thresholds
// (5 KB at 0.65 Mbps, 11 KB at 1.3 Mbps, 15 KB at 1.95 Mbps).
package phy

import (
	"fmt"
	"math"
	"time"
)

// Modulation is the constellation used by a rate.
type Modulation int

const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	}
	return fmt.Sprintf("Modulation(%d)", int(m))
}

// Rate identifies one of Hydra's SISO PHY data rates.
type Rate int

// The eight Hydra SISO rates (Table 1 of the paper).
const (
	Rate650k  Rate = iota // BPSK 1/2, 0.65 Mbps
	Rate1300k             // QPSK 1/2, 1.30 Mbps
	Rate1950k             // QPSK 3/4, 1.95 Mbps
	Rate2600k             // 16-QAM 1/2, 2.60 Mbps
	Rate3900k             // 16-QAM 3/4, 3.90 Mbps
	Rate5200k             // 64-QAM 2/3, 5.20 Mbps
	Rate5850k             // 64-QAM 3/4, 5.85 Mbps
	Rate6500k             // 64-QAM 5/6, 6.50 Mbps
	numRates
)

type rateInfo struct {
	bps     int64 // bits per second
	mod     Modulation
	codeNum int
	codeDen int
	name    string
}

var rateTable = [numRates]rateInfo{
	Rate650k:  {650_000, BPSK, 1, 2, "0.65Mbps"},
	Rate1300k: {1_300_000, QPSK, 1, 2, "1.3Mbps"},
	Rate1950k: {1_950_000, QPSK, 3, 4, "1.95Mbps"},
	Rate2600k: {2_600_000, QAM16, 1, 2, "2.6Mbps"},
	Rate3900k: {3_900_000, QAM16, 3, 4, "3.9Mbps"},
	Rate5200k: {5_200_000, QAM64, 2, 3, "5.2Mbps"},
	Rate5850k: {5_850_000, QAM64, 3, 4, "5.85Mbps"},
	Rate6500k: {6_500_000, QAM64, 5, 6, "6.5Mbps"},
}

// Valid reports whether r names a real Hydra rate.
func (r Rate) Valid() bool { return r >= 0 && r < numRates }

// BitsPerSecond returns the information rate in bits per second.
func (r Rate) BitsPerSecond() int64 { return rateTable[r].bps }

// Mbps returns the information rate in megabits per second.
func (r Rate) Mbps() float64 { return float64(rateTable[r].bps) / 1e6 }

// Modulation returns the constellation the rate uses.
func (r Rate) Modulation() Modulation { return rateTable[r].mod }

// CodeRate returns the convolutional code rate as a fraction.
func (r Rate) CodeRate() (num, den int) { return rateTable[r].codeNum, rateTable[r].codeDen }

func (r Rate) String() string {
	if !r.Valid() {
		return fmt.Sprintf("Rate(%d)", int(r))
	}
	return rateTable[r].name
}

// AllRates returns every Hydra SISO rate, slowest first.
func AllRates() []Rate {
	rs := make([]Rate, numRates)
	for i := range rs {
		rs[i] = Rate(i)
	}
	return rs
}

// ExperimentRates returns the four rates the paper's experiments use
// (25 dB SNR did not allow reliable 64-QAM operation).
func ExperimentRates() []Rate {
	return []Rate{Rate650k, Rate1300k, Rate1950k, Rate2600k}
}

// RateFromMbps maps a megabit value such as 1.3 back to its Rate.
func RateFromMbps(mbps float64) (Rate, error) {
	for i := Rate(0); i < numRates; i++ {
		if math.Abs(rateTable[i].Mbps()-mbps) < 1e-9 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("phy: no Hydra rate is %.3g Mbps", mbps)
}

func (ri rateInfo) Mbps() float64 { return float64(ri.bps) / 1e6 }

// Params are the tunable PHY constants. The defaults are calibrated so the
// simulator reproduces the paper's measured no-aggregation time overheads
// (Table 4) and its Figure 7 aggregation-size thresholds.
type Params struct {
	// SampleRate is complex baseband samples per second (USRP USB limit).
	SampleRate int64
	// PreamblePLCP is the fixed training + PLCP header time prepended to
	// every transmission, regardless of rate.
	PreamblePLCP time.Duration
	// BroadcastDescBytes is the extra PHY-header descriptor (rate + length
	// for the broadcast portion) transmitted at ControlRate when a frame
	// carries broadcast subframes. This is the PHY cost of the paper's
	// broadcast-aggregation format (Figure 2).
	BroadcastDescBytes int
	// ControlRate carries RTS/CTS/ACK and PHY descriptors.
	ControlRate Rate
	// SNRdB is the received signal-to-noise ratio on every link
	// (the paper's node spacing gave 25 dB).
	SNRdB float64
	// ImplLossdB is implementation loss (sync, CFO, quantization) of the
	// software PHY; it is what makes 64-QAM unreliable at 25 dB.
	ImplLossdB float64
	// CoherenceSamples is the airtime budget (in samples) after which the
	// channel estimate from the preamble goes stale.
	CoherenceSamples int64
	// AgingDBPerKSample is the effective-SNR penalty applied per 1000
	// samples past CoherenceSamples.
	AgingDBPerKSample float64
}

// DefaultParams returns the calibrated Hydra-like constants.
func DefaultParams() Params {
	return Params{
		SampleRate:         2_000_000,
		PreamblePLCP:       320 * time.Microsecond,
		BroadcastDescBytes: 4,
		ControlRate:        Rate650k,
		SNRdB:              25,
		ImplLossdB:         6,
		CoherenceSamples:   120_000,
		AgingDBPerKSample:  3,
	}
}

// Airtime returns the time needed to transmit n payload bytes at rate r,
// excluding preamble/PLCP.
func Airtime(n int, r Rate) time.Duration {
	bits := int64(n) * 8
	return time.Duration(bits * int64(time.Second) / r.BitsPerSecond())
}

// Samples converts an airtime duration to baseband samples.
func (p Params) Samples(d time.Duration) int64 {
	return int64(d) * p.SampleRate / int64(time.Second)
}

// Duration converts a sample count back to airtime.
func (p Params) Duration(samples int64) time.Duration {
	return time.Duration(samples * int64(time.Second) / p.SampleRate)
}

// BroadcastDescDuration is the airtime of the extra broadcast rate/length
// descriptor, zero if the frame has no broadcast portion.
func (p Params) BroadcastDescDuration(hasBroadcast bool) time.Duration {
	if !hasBroadcast {
		return 0
	}
	return Airtime(p.BroadcastDescBytes, p.ControlRate)
}

// snrLinear converts dB to a linear power ratio.
func snrLinear(db float64) float64 { return math.Pow(10, db/10) }

// codingGainDB approximates soft-decision Viterbi (K=7) coding gain.
func codingGainDB(num, den int) float64 {
	switch {
	case num*4 == den*2: // 1/2
		return 5.0
	case num*3 == den*2: // 2/3
		return 4.3
	case num*4 == den*3: // 3/4
		return 3.8
	case num*6 == den*5: // 5/6
		return 3.2
	}
	return 0
}

// BitErrorRate returns the post-decoding bit error probability for rate r at
// the given effective SNR (dB). It uses standard Gray-coded AWGN
// approximations with the code rate folded in as an SNR gain.
func BitErrorRate(r Rate, effSNRdB float64) float64 {
	num, den := r.CodeRate()
	es := snrLinear(effSNRdB + codingGainDB(num, den))
	var pb float64
	switch r.Modulation() {
	case BPSK:
		pb = 0.5 * math.Erfc(math.Sqrt(es))
	case QPSK:
		pb = 0.5 * math.Erfc(math.Sqrt(es/2))
	case QAM16:
		pb = (3.0 / 8.0) * math.Erfc(math.Sqrt(es/10))
	case QAM64:
		pb = (7.0 / 24.0) * math.Erfc(math.Sqrt(es/42))
	}
	if pb > 0.5 {
		pb = 0.5
	}
	return pb
}

// agingPenaltyDB is the effective-SNR loss for symbols ending at the given
// sample offset from the start of the preamble.
func (p Params) agingPenaltyDB(endSample int64) float64 {
	if endSample <= p.CoherenceSamples {
		return 0
	}
	return float64(endSample-p.CoherenceSamples) / 1000 * p.AgingDBPerKSample
}

// EffectiveSNRdB is the SNR seen by a symbol ending at endSample, after
// implementation loss and channel-estimate aging.
func (p Params) EffectiveSNRdB(endSample int64) float64 {
	return p.SNRdB - p.ImplLossdB - p.agingPenaltyDB(endSample)
}

// ChunkErrorProb returns the probability that a chunk of nBytes transmitted
// at rate r, ending at endSample samples from the start of the frame's
// preamble, contains at least one uncorrected bit error.
func (p Params) ChunkErrorProb(nBytes int, r Rate, endSample int64) float64 {
	bits := float64(nBytes) * 8
	ber := BitErrorRate(r, p.EffectiveSNRdB(endSample))
	if ber <= 0 {
		return 0
	}
	// 1-(1-ber)^bits, computed stably.
	return -math.Expm1(bits * math.Log1p(-ber))
}

// MaxBytesWithinCoherence returns how many payload bytes fit at rate r
// before the frame (preamble included) exceeds the coherence budget. This
// implements the paper's future-work idea of sizing the aggregate to the
// rate ("rate-adaptive frame aggregation").
func (p Params) MaxBytesWithinCoherence(r Rate) int {
	budget := p.Duration(p.CoherenceSamples) - p.PreamblePLCP
	if budget <= 0 {
		return 0
	}
	bits := int64(budget) * r.BitsPerSecond() / int64(time.Second)
	return int(bits / 8)
}
