// Package faults injects seeded failures into generated meshes: node
// crash/recover cycles, per-link up/down flapping, scheduled area
// partitions, and SNR-degradation bursts. A Set mirrors the mobility
// models' contract — Step advances every fault process to an absolute
// simulated instant and is tick-size invariant, so the fault state at time
// T never depends on how the dynamics tick partitioned [0, T] — and
// implements topology.LinkOverlay, so link cuts and SNR penalties flow
// through the mesh's existing delta-only UpdateLinks reconciliation
// instead of a parallel bookkeeping path. Faults therefore compose with
// mobility: one pooled-scheduler tick steps motion and failures together
// and pays one incremental link reconcile for both.
//
// Determinism: every process draws from a private stream derived from
// (seed, stream kind, entity index) through a splitmix64 finalizer,
// decoupled from the simulation, placement, flow-sampling and mobility
// streams. Enabling one fault class never perturbs the draws of another,
// and the same (config, seed) replays the same failure schedule exactly.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"aggmac/internal/topology"
)

// Partition axes.
const (
	AxisX = "x"
	AxisY = "y"
)

// minMean is the smallest accepted MTBF/MTTR. Renewal processes consume
// exponential legs one by one, so a mean far below the tick interval would
// make Step's cost explode; 1 ms is three orders of magnitude below any
// sane dynamics tick and still keeps legs-per-tick bounded.
const minMean = time.Millisecond

// Partition is one scheduled area partition: for the window
// [Start, Start+Duration) every link crossing the line Axis = At is cut.
// Endpoints are classified by their live positions, so under mobility the
// cut tracks the nodes, not the build-time layout.
type Partition struct {
	Start    time.Duration
	Duration time.Duration
	// Axis is AxisX (cut at X = At) or AxisY (cut at Y = At).
	Axis string
	// At is the cut line's coordinate in spacing units.
	At float64
}

// cuts reports whether the active partition separates positions a and b.
func (p *Partition) cuts(a, b topology.Point) bool {
	if p.Axis == AxisY {
		return (a.Y < p.At) != (b.Y < p.At)
	}
	return (a.X < p.At) != (b.X < p.At)
}

// Config parameterizes a fault set. The zero value injects nothing.
type Config struct {
	// CrashMTBF is each node's mean up time between crashes; 0 disables
	// node crashes. CrashMTTR is the mean repair time (default 10 s when
	// crashes are enabled). Both are means of exponential draws.
	CrashMTBF time.Duration
	CrashMTTR time.Duration
	// FlapMTBF is each link's mean up time between flaps; 0 disables link
	// flapping. FlapMTTR is the mean down time (default 2 s). Flap
	// processes attach to the node pairs linked at build time.
	FlapMTBF time.Duration
	FlapMTTR time.Duration
	// Partitions are scheduled area partitions, applied independently.
	Partitions []Partition
	// SNRBurstMTBF is each node's mean time between SNR-degradation
	// bursts; 0 disables bursts. SNRBurstMTTR is the mean burst duration
	// (default 1 s) and SNRBurstDB the penalty applied to every link of a
	// bursting node while the burst lasts (default 10 dB).
	SNRBurstMTBF time.Duration
	SNRBurstMTTR time.Duration
	SNRBurstDB   float64
}

// Enabled reports whether the config injects any fault at all.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.CrashMTBF > 0 || c.FlapMTBF > 0 || len(c.Partitions) > 0 || c.SNRBurstMTBF > 0
}

// Normalize fills defaulted fields in place; it is idempotent.
func (c *Config) Normalize() {
	if c.CrashMTBF > 0 && c.CrashMTTR == 0 {
		c.CrashMTTR = 10 * time.Second
	}
	if c.FlapMTBF > 0 && c.FlapMTTR == 0 {
		c.FlapMTTR = 2 * time.Second
	}
	if c.SNRBurstMTBF > 0 {
		if c.SNRBurstMTTR == 0 {
			c.SNRBurstMTTR = time.Second
		}
		if c.SNRBurstDB == 0 {
			c.SNRBurstDB = 10
		}
	}
}

// Validate normalizes the config and reports the first problem.
func (c *Config) Validate() error {
	c.Normalize()
	check := func(name string, mtbf, mttr time.Duration) error {
		if mtbf == 0 {
			return nil
		}
		if mtbf < minMean {
			return fmt.Errorf("faults: %s MTBF %v is below the minimum %v", name, mtbf, minMean)
		}
		if mttr < minMean {
			return fmt.Errorf("faults: %s MTTR %v is below the minimum %v", name, mttr, minMean)
		}
		return nil
	}
	if err := check("crash", c.CrashMTBF, c.CrashMTTR); err != nil {
		return err
	}
	if err := check("flap", c.FlapMTBF, c.FlapMTTR); err != nil {
		return err
	}
	if err := check("SNR burst", c.SNRBurstMTBF, c.SNRBurstMTTR); err != nil {
		return err
	}
	for i := range c.Partitions {
		p := &c.Partitions[i]
		if p.Axis == "" {
			p.Axis = AxisX
		}
		if p.Axis != AxisX && p.Axis != AxisY {
			return fmt.Errorf("faults: partition %d axis %q (want %s|%s)", i, p.Axis, AxisX, AxisY)
		}
		if p.Start < 0 {
			return fmt.Errorf("faults: partition %d start %v is negative", i, p.Start)
		}
		if p.Duration <= 0 {
			return fmt.Errorf("faults: partition %d duration %v must be positive", i, p.Duration)
		}
	}
	return nil
}

// Clone deep-copies the config (the Partitions slice is duplicated).
func (c *Config) Clone() *Config {
	if c == nil {
		return nil
	}
	d := *c
	d.Partitions = append([]Partition(nil), c.Partitions...)
	return &d
}

// Fault stream kinds, mixed into per-entity seeds.
const (
	streamCrash = iota
	streamFlap
	streamBurst
)

// faultSeed derives the private stream seed for entity i of the given
// stream kind: the base seed mixed through a splitmix64 finalizer with an
// ascii constant distinct from the mobility/placement/flow salts.
func faultSeed(seed int64, stream, i int) int64 {
	x := uint64(seed) ^ 0x6661756c7473 // "faults"
	x += uint64(int64(stream)+1) * 0xbf58476d1ce4e5b9
	x += uint64(int64(i)+2) * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// renewal is an alternating-exponential up/down process. Legs are drawn
// sequentially from the private stream and consumed one by one, exactly
// like RandomWaypoint's target sequence, so the state at absolute time T
// is independent of how Step calls partition time.
type renewal struct {
	rng              *rand.Rand
	meanUp, meanDown float64 // seconds
	up               bool
	until            float64 // absolute end of the current leg, seconds
}

func newRenewal(meanUp, meanDown time.Duration, seed int64) renewal {
	r := renewal{
		rng:    rand.New(rand.NewSource(seed)),
		meanUp: meanUp.Seconds(), meanDown: meanDown.Seconds(),
		up: true,
	}
	r.until = r.rng.ExpFloat64() * r.meanUp
	return r
}

// stateAt consumes legs up to absolute time now (seconds, non-decreasing
// across calls) and returns whether the process is up.
func (r *renewal) stateAt(now float64) bool {
	for r.until <= now {
		r.up = !r.up
		mean := r.meanUp
		if !r.up {
			mean = r.meanDown
		}
		r.until += r.rng.ExpFloat64() * mean
	}
	return r.up
}

// Delta reports what one Step observed changing. State is sampled at tick
// boundaries (like the mobility link churn counters): a crash and recovery
// both inside one tick interval is unobservable and counts nothing.
type Delta struct {
	// Crashed/Recovered list the node ids whose observed state changed,
	// ascending. The slices are reused across Steps; do not retain them.
	Crashed, Recovered []int
	// FlapsDown/FlapsUp count managed links whose flap state changed.
	FlapsDown, FlapsUp int
	// PartitionsStarted/PartitionsHealed count partition window edges.
	PartitionsStarted, PartitionsHealed int
	// HealLatency sums, over partitions healed this step, the delay
	// between the scheduled window end and this tick — the reconnection
	// latency the periodic reconcile imposes.
	HealLatency time.Duration
	// BurstsStarted counts SNR bursts that began this step.
	BurstsStarted, BurstsEnded int
}

// Changed reports whether anything link-affecting changed.
func (d *Delta) Changed() bool {
	return len(d.Crashed)+len(d.Recovered) > 0 ||
		d.FlapsDown+d.FlapsUp > 0 ||
		d.PartitionsStarted+d.PartitionsHealed > 0 ||
		d.BurstsStarted+d.BurstsEnded > 0
}

// Set is one run's fault state. It implements topology.LinkOverlay: the
// mesh's UpdateLinks consults LinkUp/SNRPenaltyDB on every reconcile, so a
// vetoed link is cut through the same incremental SetConnected path a
// mobility range cut uses, and restored links rise the same way.
type Set struct {
	cfg Config
	m   *topology.Mesh

	crash    []renewal // per node; nil when crashes are disabled
	nodeDown []bool

	links    [][2]int // managed flap links (a < b), build-time link set
	linkIdx  map[[2]int]int
	flap     []renewal
	flapDown []bool

	burst   []renewal // per node; nil when bursts are disabled
	burstOn []bool

	partActive []bool

	now         time.Duration
	downCount   int
	downSeconds float64 // integral of downCount over observed time
}

// New builds the fault set over the mesh's build-time link set. cfg is
// validated (New panics on an invalid config — callers validate at load
// time, so a failure here is a programming error, consistent with the
// run entry points). The returned Set holds a reference to the mesh's
// live position slice for partition classification.
func New(cfg Config, m *topology.Mesh, seed int64) *Set {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	n := len(m.Nodes)
	s := &Set{
		cfg: cfg, m: m,
		nodeDown:   make([]bool, n),
		partActive: make([]bool, len(cfg.Partitions)),
	}
	if cfg.CrashMTBF > 0 {
		s.crash = make([]renewal, n)
		for i := range s.crash {
			s.crash[i] = newRenewal(cfg.CrashMTBF, cfg.CrashMTTR, faultSeed(seed, streamCrash, i))
		}
	}
	if cfg.FlapMTBF > 0 {
		adj := m.Adjacency()
		for a := 0; a < n; a++ {
			for _, b := range adj(a) {
				if b > a {
					s.links = append(s.links, [2]int{a, b})
				}
			}
		}
		s.linkIdx = make(map[[2]int]int, len(s.links))
		s.flap = make([]renewal, len(s.links))
		s.flapDown = make([]bool, len(s.links))
		for i, l := range s.links {
			s.linkIdx[l] = i
			s.flap[i] = newRenewal(cfg.FlapMTBF, cfg.FlapMTTR, faultSeed(seed, streamFlap, i))
		}
	}
	if cfg.SNRBurstMTBF > 0 {
		s.burst = make([]renewal, n)
		s.burstOn = make([]bool, n)
		for i := range s.burst {
			s.burst[i] = newRenewal(cfg.SNRBurstMTBF, cfg.SNRBurstMTTR, faultSeed(seed, streamBurst, i))
		}
	}
	return s
}

// Step advances every fault process to absolute time now (non-decreasing
// across calls) and reports the observed state changes. The caller applies
// the delta — crash/recover hooks, then a link reconcile — before the next
// event runs.
func (s *Set) Step(now time.Duration) Delta {
	var d Delta
	// Integrate the previously observed down state over the elapsed
	// interval before sampling the new one (availability accounting).
	s.downSeconds += (now - s.now).Seconds() * float64(s.downCount)
	t := now.Seconds()
	s.now = now

	for i := range s.crash {
		up := s.crash[i].stateAt(t)
		switch {
		case !up && !s.nodeDown[i]:
			s.nodeDown[i] = true
			s.downCount++
			d.Crashed = append(d.Crashed, i)
		case up && s.nodeDown[i]:
			s.nodeDown[i] = false
			s.downCount--
			d.Recovered = append(d.Recovered, i)
		}
	}
	for i := range s.flap {
		up := s.flap[i].stateAt(t)
		switch {
		case !up && !s.flapDown[i]:
			s.flapDown[i] = true
			d.FlapsDown++
		case up && s.flapDown[i]:
			s.flapDown[i] = false
			d.FlapsUp++
		}
	}
	for i := range s.cfg.Partitions {
		p := &s.cfg.Partitions[i]
		active := now >= p.Start && now < p.Start+p.Duration
		switch {
		case active && !s.partActive[i]:
			s.partActive[i] = true
			d.PartitionsStarted++
		case !active && s.partActive[i]:
			s.partActive[i] = false
			d.PartitionsHealed++
			d.HealLatency += now - (p.Start + p.Duration)
		}
	}
	for i := range s.burst {
		on := !s.burst[i].stateAt(t) // a burst is the process's down leg
		switch {
		case on && !s.burstOn[i]:
			s.burstOn[i] = true
			d.BurstsStarted++
		case !on && s.burstOn[i]:
			s.burstOn[i] = false
			d.BurstsEnded++
		}
	}
	return d
}

// NodeDown reports node i's observed crash state.
func (s *Set) NodeDown(i int) bool { return s.nodeDown[i] }

// LinkUp implements topology.LinkOverlay: a link is up when both endpoints
// are up, its flap process (if managed) is up, and no active partition
// separates the endpoints. Symmetric in (a, b).
func (s *Set) LinkUp(a, b int) bool {
	if s.nodeDown[a] || s.nodeDown[b] {
		return false
	}
	if s.linkIdx != nil {
		if a > b {
			a, b = b, a
		}
		if li, ok := s.linkIdx[[2]int{a, b}]; ok && s.flapDown[li] {
			return false
		}
	}
	for i := range s.partActive {
		if s.partActive[i] && s.cfg.Partitions[i].cuts(s.m.Pos[a], s.m.Pos[b]) {
			return false
		}
	}
	return true
}

// SNRPenaltyDB implements topology.LinkOverlay: each bursting endpoint
// degrades the link by the configured penalty.
func (s *Set) SNRPenaltyDB(a, b int) float64 {
	if s.burstOn == nil {
		return 0
	}
	var p float64
	if s.burstOn[a] {
		p += s.cfg.SNRBurstDB
	}
	if s.burstOn[b] {
		p += s.cfg.SNRBurstDB
	}
	return p
}

// Availability returns the mean fraction of node-time spent up over
// [0, end], extrapolating the currently observed state from the last Step
// to end. It does not mutate the set.
func (s *Set) Availability(end time.Duration) float64 {
	n := len(s.nodeDown)
	if n == 0 || end <= 0 {
		return 1
	}
	down := s.downSeconds
	if end > s.now {
		down += (end - s.now).Seconds() * float64(s.downCount)
	}
	return 1 - down/(end.Seconds()*float64(n))
}
