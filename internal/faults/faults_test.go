package faults

import (
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/topology"
)

func testMesh(seed int64) *topology.Mesh {
	return topology.NewGrid(4, topology.MeshConfig{Config: topology.Config{
		Seed: seed,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			return mac.DefaultOptions(mac.BA, phy.Rate1300k)
		},
	}})
}

func allFaults() Config {
	return Config{
		CrashMTBF: 5 * time.Second, CrashMTTR: 2 * time.Second,
		FlapMTBF: 3 * time.Second, FlapMTTR: time.Second,
		SNRBurstMTBF: 4 * time.Second, SNRBurstMTTR: time.Second, SNRBurstDB: 12,
		Partitions: []Partition{
			{Start: 10 * time.Second, Duration: 5 * time.Second, Axis: AxisX, At: 1.5},
		},
	}
}

// snapshot captures the externally observable fault state.
type snapshot struct {
	nodeDown []bool
	linkUp   map[[2]int]bool
	penalty  map[[2]int]float64
	avail    float64
}

func snap(s *Set, m *topology.Mesh, end time.Duration) snapshot {
	n := len(m.Nodes)
	sn := snapshot{
		nodeDown: make([]bool, n),
		linkUp:   make(map[[2]int]bool),
		penalty:  make(map[[2]int]float64),
		avail:    s.Availability(end),
	}
	for i := 0; i < n; i++ {
		sn.nodeDown[i] = s.NodeDown(i)
		for j := i + 1; j < n; j++ {
			sn.linkUp[[2]int{i, j}] = s.LinkUp(i, j)
			sn.penalty[[2]int{i, j}] = s.SNRPenaltyDB(i, j)
		}
	}
	return sn
}

func (a snapshot) equal(b snapshot) bool {
	for i := range a.nodeDown {
		if a.nodeDown[i] != b.nodeDown[i] {
			return false
		}
	}
	for k, v := range a.linkUp {
		if b.linkUp[k] != v {
			return false
		}
	}
	for k, v := range a.penalty {
		if b.penalty[k] != v {
			return false
		}
	}
	return a.avail == b.avail
}

// TestDeterminism: same (config, seed) replays the exact failure schedule;
// a different seed produces a different one.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) ([]Delta, snapshot) {
		m := testMesh(1)
		s := New(allFaults(), m, seed)
		var deltas []Delta
		for tick := 1; tick <= 30; tick++ {
			d := s.Step(time.Duration(tick) * time.Second)
			// Copy the reused slices before retaining.
			d.Crashed = append([]int(nil), d.Crashed...)
			d.Recovered = append([]int(nil), d.Recovered...)
			deltas = append(deltas, d)
		}
		return deltas, snap(s, m, 30*time.Second)
	}
	d1, s1 := run(7)
	d2, s2 := run(7)
	if !s1.equal(s2) {
		t.Fatal("same seed produced different final state")
	}
	for i := range d1 {
		if len(d1[i].Crashed) != len(d2[i].Crashed) ||
			d1[i].FlapsDown != d2[i].FlapsDown ||
			d1[i].BurstsStarted != d2[i].BurstsStarted {
			t.Fatalf("same seed diverged at tick %d: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	_, s3 := run(8)
	if s1.equal(s3) {
		t.Error("different seeds produced identical fault state (suspicious)")
	}
}

// TestTickSizeInvariance: the fault state at time T does not depend on how
// the dynamics tick partitioned [0, T].
func TestTickSizeInvariance(t *testing.T) {
	const horizon = 60 * time.Second
	mF := testMesh(1)
	fine := New(allFaults(), mF, 42)
	for now := 100 * time.Millisecond; now <= horizon; now += 100 * time.Millisecond {
		fine.Step(now)
	}
	mC := testMesh(1)
	coarse := New(allFaults(), mC, 42)
	for now := 7 * time.Second; now < horizon; now += 7 * time.Second {
		coarse.Step(now)
	}
	coarse.Step(horizon)
	sf, sc := snap(fine, mF, horizon), snap(coarse, mC, horizon)
	for i := range sf.nodeDown {
		if sf.nodeDown[i] != sc.nodeDown[i] {
			t.Errorf("node %d: fine down=%v coarse down=%v", i, sf.nodeDown[i], sc.nodeDown[i])
		}
	}
	for k, v := range sf.linkUp {
		if sc.linkUp[k] != v {
			t.Errorf("link %v: fine up=%v coarse up=%v", k, v, sc.linkUp[k])
		}
	}
	for k, v := range sf.penalty {
		if sc.penalty[k] != v {
			t.Errorf("link %v: fine penalty=%v coarse penalty=%v", k, v, sc.penalty[k])
		}
	}
}

// TestStreamDecoupling: enabling one fault class does not perturb another's
// schedule.
func TestStreamDecoupling(t *testing.T) {
	crashOnly := Config{CrashMTBF: 5 * time.Second, CrashMTTR: 2 * time.Second}
	both := crashOnly
	both.FlapMTBF, both.FlapMTTR = 3*time.Second, time.Second

	m1, m2 := testMesh(1), testMesh(1)
	a, b := New(crashOnly, m1, 9), New(both, m2, 9)
	for tick := 1; tick <= 40; tick++ {
		now := time.Duration(tick) * time.Second
		a.Step(now)
		b.Step(now)
		for i := range m1.Nodes {
			if a.NodeDown(i) != b.NodeDown(i) {
				t.Fatalf("tick %d node %d: crash schedule perturbed by enabling flaps", tick, i)
			}
		}
	}
}

// TestPartitionWindow: the partition cuts exactly the crossing links inside
// its window, heals after it, and heal latency records the tick lag.
func TestPartitionWindow(t *testing.T) {
	m := testMesh(1)
	cfg := Config{Partitions: []Partition{
		{Start: 5 * time.Second, Duration: 4 * time.Second, Axis: AxisX, At: 1.5},
	}}
	s := New(cfg, m, 1)

	d := s.Step(4 * time.Second)
	if d.PartitionsStarted != 0 || !s.LinkUp(1, 2) {
		t.Fatalf("partition active before its window: %+v", d)
	}
	d = s.Step(5 * time.Second)
	if d.PartitionsStarted != 1 {
		t.Fatalf("partition did not start at its window: %+v", d)
	}
	// Grid columns 0..3 at x=0..3: the cut at x=1.5 separates columns 1|2.
	if s.LinkUp(1, 2) {
		t.Error("crossing link up during partition")
	}
	if !s.LinkUp(0, 1) || !s.LinkUp(2, 3) {
		t.Error("non-crossing link cut by partition")
	}
	// The next tick lands 2 s past the scheduled end: heal latency is 2 s.
	d = s.Step(11 * time.Second)
	if d.PartitionsHealed != 1 || d.HealLatency != 2*time.Second {
		t.Fatalf("heal: %+v, want 1 healed with 2s latency", d)
	}
	if !s.LinkUp(1, 2) {
		t.Error("crossing link still down after heal")
	}
}

// TestAvailabilityIntegral: availability integrates the observed down state
// over node-time, extrapolating from the last Step.
func TestAvailabilityIntegral(t *testing.T) {
	m := testMesh(1)
	s := New(Config{CrashMTBF: time.Hour, CrashMTTR: time.Hour}, m, 1)
	n := len(m.Nodes)

	if got := s.Availability(10 * time.Second); got != 1 {
		t.Fatalf("availability with no observed crash = %v, want 1", got)
	}
	// Force one node down through the internal state (the renewal streams
	// with hour-long means will not fire in a short window).
	s.Step(10 * time.Second)
	s.nodeDown[3] = true
	s.downCount++
	// Extrapolation before the next Step: the forced down state is assumed
	// to persist from the last observation (t=10 s) to end.
	want := 1 - 10.0/(20.0*float64(n))
	if got := s.Availability(20 * time.Second); !close(got, want) {
		t.Errorf("extrapolated availability = %v, want %v", got, want)
	}
	// The next Step first integrates the 10 s of down time, then samples the
	// renewal (up at hour-long means), observing the recovery.
	d := s.Step(20 * time.Second)
	if len(d.Recovered) != 1 || d.Recovered[0] != 3 {
		t.Fatalf("forced-down node not recovered on sample: %+v", d)
	}
	want = 1 - 10.0/(30.0*float64(n))
	if got := s.Availability(30 * time.Second); !close(got, want) {
		t.Errorf("post-recovery availability = %v, want %v", got, want)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestLinkUpSymmetry: LinkUp and SNRPenaltyDB are symmetric in (a, b).
func TestLinkUpSymmetry(t *testing.T) {
	m := testMesh(1)
	s := New(allFaults(), m, 3)
	for tick := 1; tick <= 20; tick++ {
		s.Step(time.Duration(tick) * time.Second)
		for a := 0; a < len(m.Nodes); a++ {
			for b := a + 1; b < len(m.Nodes); b++ {
				if s.LinkUp(a, b) != s.LinkUp(b, a) {
					t.Fatalf("tick %d: LinkUp(%d,%d) != LinkUp(%d,%d)", tick, a, b, b, a)
				}
				if s.SNRPenaltyDB(a, b) != s.SNRPenaltyDB(b, a) {
					t.Fatalf("tick %d: SNRPenaltyDB asymmetric for (%d,%d)", tick, a, b)
				}
			}
		}
	}
}

// TestCrashRecoverCycle: with short MTBF/MTTR a long run observes both
// crashes and recoveries, down states match the deltas, and every managed
// link of a down node reports down.
func TestCrashRecoverCycle(t *testing.T) {
	m := testMesh(1)
	s := New(Config{CrashMTBF: 3 * time.Second, CrashMTTR: 2 * time.Second}, m, 5)
	crashes, recoveries := 0, 0
	down := make(map[int]bool)
	for tick := 1; tick <= 120; tick++ {
		d := s.Step(time.Duration(tick) * time.Second)
		for _, i := range d.Crashed {
			if down[i] {
				t.Fatalf("tick %d: node %d crashed while already down", tick, i)
			}
			down[i] = true
			crashes++
		}
		for _, i := range d.Recovered {
			if !down[i] {
				t.Fatalf("tick %d: node %d recovered while already up", tick, i)
			}
			down[i] = false
			recoveries++
		}
		for i := range m.Nodes {
			if s.NodeDown(i) != down[i] {
				t.Fatalf("tick %d: NodeDown(%d)=%v, delta replay says %v", tick, i, s.NodeDown(i), down[i])
			}
			if down[i] && s.LinkUp(i, (i+1)%len(m.Nodes)) {
				t.Fatalf("tick %d: link of down node %d reports up", tick, i)
			}
		}
	}
	if crashes == 0 || recoveries == 0 {
		t.Fatalf("120 s at MTBF 3s saw %d crashes, %d recoveries", crashes, recoveries)
	}
	if avail := s.Availability(120 * time.Second); avail <= 0 || avail >= 1 {
		t.Errorf("availability %v outside (0, 1) despite observed churn", avail)
	}
}

// TestValidate: the rejection surface.
func TestValidate(t *testing.T) {
	bad := []Config{
		{CrashMTBF: time.Microsecond},
		{CrashMTBF: time.Second, CrashMTTR: time.Microsecond},
		{FlapMTBF: 500 * time.Microsecond},
		{SNRBurstMTBF: time.Second, SNRBurstMTTR: time.Microsecond},
		{Partitions: []Partition{{Start: 0, Duration: time.Second, Axis: "z"}}},
		{Partitions: []Partition{{Start: -time.Second, Duration: time.Second}}},
		{Partitions: []Partition{{Start: time.Second, Duration: 0}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) validated", i, c)
		}
	}
	good := allFaults()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Normalize defaults MTTRs and the partition axis.
	c := Config{CrashMTBF: time.Minute, Partitions: []Partition{{Duration: time.Second}}}
	if err := c.Validate(); err != nil {
		t.Fatalf("defaulted config rejected: %v", err)
	}
	if c.CrashMTTR != 10*time.Second || c.Partitions[0].Axis != AxisX {
		t.Errorf("Normalize defaults wrong: MTTR=%v axis=%q", c.CrashMTTR, c.Partitions[0].Axis)
	}
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
}
