// Mobility models: time-stepped node-position processes that turn the
// static mesh generators into mobile scenarios. A model owns every node's
// position and advances it to any simulated instant on demand; the mesh's
// UpdateLinks then reconciles the medium's connectivity and per-link SNR
// with the new distances through the incremental SetConnected/SetSNR
// paths, so the topology becomes a function of time without ever paying a
// dense O(N²) rescan on the hot path.
//
// Both models are seeded and fully deterministic: the same (seed, config)
// replays the same trajectories. The random streams are derived from the
// seed but decoupled from the simulation's RNG and the placement
// generator's stream, so enabling mobility never perturbs backoff or
// error draws of an otherwise-identical run.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Mobility model names (core.MeshTCPConfig.Mobility / aggsim -mobility).
const (
	MobilityWaypoint = "waypoint"
	MobilityDrift    = "drift"
)

// Model is a seeded node-position process. Step advances the process to
// the absolute simulated time now (calls must use non-decreasing now) and
// returns every node's position. The returned slice is the model's live
// state: callers must treat it as read-only and must not retain it across
// steps.
type Model interface {
	Step(now time.Duration) []Point
}

// NewMobility builds the named model over the mesh's current node
// positions and area. speed is in units of nominal node spacing per
// simulated second (<= 0 selects 1); pause applies to the waypoint model
// only.
func NewMobility(kind string, m *Mesh, speed float64, pause time.Duration, seed int64) (Model, error) {
	switch kind {
	case MobilityWaypoint:
		return NewRandomWaypoint(m.Pos, m.Extent, speed, pause, seed), nil
	case MobilityDrift:
		return NewLinearDrift(m.Pos, m.Extent, speed, seed), nil
	}
	return nil, fmt.Errorf("topology: unknown mobility model %q (%s|%s)", kind, MobilityWaypoint, MobilityDrift)
}

// mobilitySeed derives the per-stream seed for node i (or -1 for a
// model-wide stream): the base seed mixed with the index through a
// splitmix64 finalizer, decoupled from the simulation and placement
// streams.
func mobilitySeed(seed int64, i int) int64 {
	x := uint64(seed) ^ 0x6d6f62696c697479 // "mobility"
	x += uint64(int64(i)+2) * 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// RandomWaypoint is the classic random-waypoint process: each node picks a
// uniform target inside the area, travels toward it in a straight line at
// the model speed, dwells there for the pause time, then repeats. Every
// node owns a private random stream derived from (seed, index), so one
// node's trajectory never depends on the others' arrival times — and the
// target sequence is independent of how Step calls partition time.
type RandomWaypoint struct {
	pos    []Point
	extent Point
	speed  float64
	pause  float64 // seconds of dwell per arrival
	now    time.Duration

	rng       []*rand.Rand
	target    []Point
	pauseLeft []float64 // seconds of dwell remaining per node
}

// NewRandomWaypoint builds the process over a copy of the given starting
// positions (the caller's slice is never mutated), roaming the
// [0,extent.X]×[0,extent.Y] area.
func NewRandomWaypoint(start []Point, extent Point, speed float64, pause time.Duration, seed int64) *RandomWaypoint {
	if speed <= 0 {
		speed = 1
	}
	if pause < 0 {
		pause = 0
	}
	w := &RandomWaypoint{
		pos:       append([]Point(nil), start...),
		extent:    extent,
		speed:     speed,
		pause:     pause.Seconds(),
		rng:       make([]*rand.Rand, len(start)),
		target:    make([]Point, len(start)),
		pauseLeft: make([]float64, len(start)),
	}
	for i := range start {
		w.rng[i] = rand.New(rand.NewSource(mobilitySeed(seed, i)))
		w.target[i] = w.draw(i)
	}
	return w
}

func (w *RandomWaypoint) draw(i int) Point {
	return Point{X: w.rng[i].Float64() * w.extent.X, Y: w.rng[i].Float64() * w.extent.Y}
}

// Step advances every node to time now. Each node is simulated exactly leg
// by leg (pause, travel, arrival, redraw), so trajectories do not depend
// on the tick interval beyond float rounding.
func (w *RandomWaypoint) Step(now time.Duration) []Point {
	dt := (now - w.now).Seconds()
	w.now = now
	if dt <= 0 {
		return w.pos
	}
	for i := range w.pos {
		left := dt
		// The leg cap only guards degenerate zero-area layouts (every
		// target equals the position and pause is zero) from spinning.
		for legs := 0; left > 1e-12 && legs < 4096; legs++ {
			if w.pauseLeft[i] > 0 {
				c := math.Min(w.pauseLeft[i], left)
				w.pauseLeft[i] -= c
				left -= c
				continue
			}
			d := w.pos[i].dist(w.target[i])
			if travel := w.speed * left; travel < d {
				f := travel / d
				w.pos[i].X += (w.target[i].X - w.pos[i].X) * f
				w.pos[i].Y += (w.target[i].Y - w.pos[i].Y) * f
				break
			}
			w.pos[i] = w.target[i]
			left -= d / w.speed
			w.target[i] = w.draw(i)
			w.pauseLeft[i] = w.pause
		}
	}
	return w.pos
}

// LinearDrift moves every node along a fixed heading at constant speed,
// reflecting off the area boundary (a deterministic billiard). Headings
// are drawn once from the seed at construction; after that positions are a
// closed-form function of time, so trajectories are bit-identical no
// matter how often Step is called.
type LinearDrift struct {
	origin []Point
	vel    []Point // units per second
	pos    []Point
	extent Point
}

// NewLinearDrift builds the process over a copy of the given starting
// positions (the caller's slice is never mutated), bouncing inside the
// [0,extent.X]×[0,extent.Y] area.
func NewLinearDrift(start []Point, extent Point, speed float64, seed int64) *LinearDrift {
	if speed <= 0 {
		speed = 1
	}
	d := &LinearDrift{
		origin: append([]Point(nil), start...),
		vel:    make([]Point, len(start)),
		pos:    append([]Point(nil), start...),
		extent: extent,
	}
	rng := rand.New(rand.NewSource(mobilitySeed(seed, -1)))
	for i := range d.vel {
		a := 2 * math.Pi * rng.Float64()
		d.vel[i] = Point{X: speed * math.Cos(a), Y: speed * math.Sin(a)}
	}
	return d
}

// reflect1 folds x into [0, w] as a billiard reflection (period 2w). A
// zero-width dimension collapses to 0.
func reflect1(x, w float64) float64 {
	if w <= 0 {
		return 0
	}
	x = math.Mod(x, 2*w)
	if x < 0 {
		x += 2 * w
	}
	if x > w {
		x = 2*w - x
	}
	return x
}

// Step places every node at its closed-form position for time now.
func (d *LinearDrift) Step(now time.Duration) []Point {
	t := now.Seconds()
	for i := range d.pos {
		d.pos[i] = Point{
			X: reflect1(d.origin[i].X+d.vel[i].X*t, d.extent.X),
			Y: reflect1(d.origin[i].Y+d.vel[i].Y*t, d.extent.Y),
		}
	}
	return d.pos
}
