package topology

import (
	"testing"

	"aggmac/internal/mac"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/routing"
)

func meshCfg(seed int64) MeshConfig {
	return MeshConfig{Config: cfg(seed)}
}

func TestGridBuild(t *testing.T) {
	m := NewGrid(4, meshCfg(1))
	if len(m.Nodes) != 16 {
		t.Fatalf("4x4 grid has %d nodes", len(m.Nodes))
	}
	// Default radio model (range 1.5): corner degree 3, interior degree 8.
	if d := m.Medium.Degree(0); d != 3 {
		t.Errorf("corner degree = %d, want 3", d)
	}
	if d := m.Medium.Degree(5); d != 8 {
		t.Errorf("interior degree = %d, want 8", d)
	}
	// Nodes two cells apart are out of range.
	if m.Medium.Connected(0, 2) {
		t.Error("grid connected nodes 2 cells apart (range 1.5)")
	}
	// Diagonal links are weaker than orthogonal ones but present.
	if !m.Medium.Connected(0, 5) {
		t.Error("diagonal neighbor not connected")
	}
	// Shortest-path routes: opposite corners are 3 diagonal hops apart.
	if d := m.HopDistance(0, 15); d != 3 {
		t.Errorf("corner-to-corner route = %d hops, want 3", d)
	}
	if m.Bridged != 0 {
		t.Errorf("grid needed %d bridges", m.Bridged)
	}
}

func TestGridForwardsEndToEnd(t *testing.T) {
	m := NewGrid(4, meshCfg(2))
	got := 0
	m.Nodes[15].Handle(network.ProtoUDP, func(p network.Packet) { got++ })
	m.Sched.After(0, "send", func() {
		_ = m.Nodes[0].Send(network.Packet{Proto: network.ProtoUDP, Src: 0, Dst: 15, Payload: []byte("x")})
	})
	m.Sched.Run()
	if got != 1 {
		t.Fatalf("corner-to-corner delivery failed (got %d)", got)
	}
}

func TestRandomDiskConnectedAndDeterministic(t *testing.T) {
	a := NewRandomDisk(40, meshCfg(7))
	if len(a.Nodes) != 40 {
		t.Fatalf("disk has %d nodes", len(a.Nodes))
	}
	// Bridging must leave a single component (graph-level check), and the
	// installed routes must agree with the graph distances (route walk).
	dist := routing.Distances(len(a.Nodes), a.Adjacency(), 0)
	for j := 1; j < len(a.Nodes); j++ {
		if dist[j] < 0 {
			t.Fatalf("node %d unreachable after bridging", j)
		}
		if got := a.HopDistance(0, j); got != dist[j] {
			t.Fatalf("route walk 0->%d = %d hops, BFS distance %d", j, got, dist[j])
		}
	}
	b := NewRandomDisk(40, meshCfg(7))
	if a.LinkCount != b.LinkCount || a.Bridged != b.Bridged {
		t.Errorf("same seed produced different meshes: %d/%d links, %d/%d bridges",
			a.LinkCount, b.LinkCount, a.Bridged, b.Bridged)
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatalf("same seed placed node %d at %v and %v", i, a.Pos[i], b.Pos[i])
		}
	}
	c := NewRandomDisk(40, meshCfg(8))
	same := 0
	for i := range a.Pos {
		if a.Pos[i] == c.Pos[i] {
			same++
		}
	}
	if same == len(a.Pos) {
		t.Error("different seeds produced identical placements")
	}
}

func TestParallelChains(t *testing.T) {
	// Adjacent chains at spacing 1 share spectrum and can route across.
	m := NewParallelChains(3, 4, 1, meshCfg(3))
	if len(m.Nodes) != 15 {
		t.Fatalf("3 chains x 4 hops = %d nodes, want 15", len(m.Nodes))
	}
	if d := m.HopDistance(ChainNode(0, 0, 4), ChainNode(0, 4, 4)); d != 4 {
		t.Errorf("along-chain distance = %d, want 4", d)
	}
	if d := m.HopDistance(ChainNode(0, 2, 4), ChainNode(2, 2, 4)); d != 2 {
		t.Errorf("cross-chain distance = %d, want 2", d)
	}
	// Spacing past the radio range isolates the chains.
	far := NewParallelChains(2, 3, 5, meshCfg(3))
	if d := far.HopDistance(ChainNode(0, 0, 3), ChainNode(1, 0, 3)); d != -1 {
		t.Errorf("isolated chains still routed (%d hops)", d)
	}
	if far.HopDistance(ChainNode(1, 0, 3), ChainNode(1, 3, 3)) != 3 {
		t.Error("second isolated chain lost its own route")
	}
}

func TestMeshPerNodeOptions(t *testing.T) {
	c := MeshConfig{Config: Config{
		Seed: 5,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			o := mac.DefaultOptions(mac.UA, phy.Rate1300k)
			o.MaxAggBytes = 4096 + i
			return o
		},
	}}
	m := NewGrid(3, c)
	for i, node := range m.Nodes {
		if got := node.MAC().Opts().MaxAggBytes; got != 4096+i {
			t.Fatalf("node %d got MaxAggBytes %d", i, got)
		}
	}
}

func TestAvgDegreeMatchesLinkCount(t *testing.T) {
	m := NewGrid(5, meshCfg(1))
	// Each bidirectional link contributes 2 to the degree total.
	want := float64(2*m.LinkCount) / float64(len(m.Nodes))
	if got := m.AvgDegree(); got != want {
		t.Errorf("AvgDegree = %v, want %v", got, want)
	}
}
