package topology

import (
	"fmt"
	"testing"

	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// BenchmarkGridConstruct measures mesh construction alone — node/MAC
// assembly plus cell-binned link wiring — at sizes where the seed's O(N²)
// link matrix and all-pairs pair scan dominated startup. The acceptance
// shape: ns/op and B/op grow ~linearly in N (constant per-node cost at
// fixed degree), so the N=25600 row runs ~16× the N=1600 row, not ~256×.
// Routes are deferred exactly as large-N runs defer them
// (core.MeshTCPConfig.SparseRoutes); the all-pairs route install would
// otherwise re-quadratize the measurement.
//
//	go test ./internal/topology -bench GridConstruct -benchtime 5x
func BenchmarkGridConstruct(b *testing.B) {
	for _, k := range []int{40, 80, 160} { // N = 1600, 6400, 25600
		b.Run(fmt.Sprintf("N%d", k*k), func(b *testing.B) {
			cfg := MeshConfig{
				Config: Config{
					Seed: 1,
					Phy:  phy.DefaultParams(),
					OptsFor: func(i, n int) mac.Options {
						return mac.DefaultOptions(mac.BA, phy.Rate2600k)
					},
				},
				DeferRoutes: true,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := NewGrid(k, cfg)
				if m.LinkCount == 0 {
					b.Fatal("grid wired no links")
				}
			}
		})
	}
}
