package topology

import (
	"testing"

	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
)

func cfg(seed int64) Config {
	return Config{
		Seed: seed,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			return mac.DefaultOptions(mac.BA, phy.Rate1300k)
		},
	}
}

func TestLinearBuild(t *testing.T) {
	net := NewLinear(3, cfg(1))
	if len(net.Nodes) != 4 {
		t.Fatalf("3-hop chain has %d nodes, want 4", len(net.Nodes))
	}
	if net.Sched == nil || net.Medium == nil {
		t.Fatal("incomplete network")
	}
	// Every node in one collision domain (the paper's testbed property).
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j && !net.Medium.Connected(medium.NodeID(i), medium.NodeID(j)) {
				t.Errorf("nodes %d,%d not in radio range", i, j)
			}
		}
	}
}

func TestLinearRoles(t *testing.T) {
	cases := []struct {
		i, n int
		want string
	}{
		{0, 3, "server"}, {1, 3, "relay"}, {2, 3, "client"},
		{0, 4, "server"}, {1, 4, "relay"}, {2, 4, "relay"}, {3, 4, "client"},
	}
	for _, c := range cases {
		if got := LinearRole(c.i, c.n); got != c.want {
			t.Errorf("LinearRole(%d,%d) = %q, want %q", c.i, c.n, got, c.want)
		}
	}
	if !IsRelay(1, 3) || IsRelay(0, 3) || IsRelay(2, 3) {
		t.Error("IsRelay wrong")
	}
}

func TestStarBuild(t *testing.T) {
	net := NewStar(cfg(2))
	if len(net.Nodes) != 4 {
		t.Fatalf("star has %d nodes, want 4", len(net.Nodes))
	}
	if StarRole(StarClient) != "client" || StarRole(StarCenter) != "center" || StarRole(2) != "server" {
		t.Error("star roles wrong")
	}
	if len(StarServers()) != 2 {
		t.Error("star must have two servers")
	}
}

func TestStarRoutesThroughCenter(t *testing.T) {
	net := NewStar(cfg(3))
	// A packet from server 2 to the client must be forwarded by the
	// centre (2 hops), not delivered directly.
	delivered := false
	net.Nodes[StarClient].Handle(network.ProtoUDP, func(p network.Packet) {
		delivered = true
		if p.TTL != 15 { // one forward consumed
			t.Errorf("TTL %d: route did not pass through the centre", p.TTL)
		}
	})
	net.Sched.After(0, "send", func() {
		_ = net.Nodes[2].Send(network.Packet{Proto: network.ProtoUDP, Src: 2, Dst: StarClient, Payload: []byte("x")})
	})
	net.Sched.Run()
	if !delivered {
		t.Fatal("server->client packet lost")
	}
	if net.Nodes[StarCenter].Stats().Forwarded != 1 {
		t.Fatal("centre did not forward")
	}
}

func TestLinearForwardsEndToEnd(t *testing.T) {
	net := NewLinear(3, cfg(4))
	delivered := false
	net.Nodes[3].Handle(network.ProtoUDP, func(p network.Packet) { delivered = true })
	net.Sched.After(0, "send", func() {
		_ = net.Nodes[0].Send(network.Packet{Proto: network.ProtoUDP, Src: 0, Dst: 3, Payload: []byte("x")})
	})
	net.Sched.Run()
	if !delivered {
		t.Fatal("3-hop forwarding failed")
	}
	for _, i := range []int{1, 2} {
		if net.Nodes[i].Stats().Forwarded != 1 {
			t.Errorf("relay %d forwarded %d packets, want 1", i, net.Nodes[i].Stats().Forwarded)
		}
	}
}

func TestPerNodeOptions(t *testing.T) {
	c := Config{
		Seed: 5,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			s := mac.DBA
			if !IsRelay(i, n) {
				s.DelayMinFrames = 0
			}
			return mac.DefaultOptions(s, phy.Rate1300k)
		},
	}
	net := NewLinear(2, c)
	if net.Nodes[0].MAC().Opts().Scheme.DelayMinFrames != 0 {
		t.Error("server got the relay-only delay")
	}
	if net.Nodes[1].MAC().Opts().Scheme.DelayMinFrames != 3 {
		t.Error("relay missing the DBA delay")
	}
	if net.Nodes[2].MAC().Opts().Scheme.DelayMinFrames != 0 {
		t.Error("client got the relay-only delay")
	}
}
