// Package topology assembles complete simulated networks: scheduler,
// medium, MACs and network nodes, wired into the paper's experimental
// layouts — N-hop linear chains (Figure 5) and the two-session star
// (Figure 6). All nodes share one collision domain, exactly like the
// testbed (§5: every node is in transmission range; static routes force
// the multi-hop paths).
package topology

import (
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// Config parameterizes a build.
type Config struct {
	Seed int64
	Phy  phy.Params
	// OptsFor returns the MAC options for node i of n. Use it to apply
	// per-role settings (e.g. DBA's delay on relays only).
	OptsFor func(i, n int) mac.Options
}

// Network is a fully-wired simulated network.
type Network struct {
	Sched  *sim.Scheduler
	Medium *medium.Medium
	Nodes  []*network.Node
}

// build creates n nodes on a fresh scheduler and a fully connected medium
// (the paper's single collision domain).
func build(n int, cfg Config) *Network {
	return buildOn(medium.New, n, cfg)
}

// buildOn creates n nodes on a fresh scheduler and a medium from newMedium
// (medium.New for the paper's single collision domain, medium.NewUnconnected
// for generated meshes that wire their own sparse links).
func buildOn(newMedium func(*sim.Scheduler, phy.Params, int) *medium.Medium, n int, cfg Config) *Network {
	net := &Network{Sched: sim.NewScheduler(cfg.Seed)}
	net.Medium = newMedium(net.Sched, cfg.Phy, n)
	for i := 0; i < n; i++ {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(net.Sched, net.Medium, medium.NodeID(i), cfg.OptsFor(i, n), node.Bind())
		node.AttachMAC(m)
		net.Nodes = append(net.Nodes, node)
	}
	return net
}

// NewLinear builds a linear chain with the given hop count (hops+1 nodes):
// node 0 — node 1 — … — node hops. Routes force the chain.
func NewLinear(hops int, cfg Config) *Network {
	n := hops + 1
	net := build(n, cfg)
	for i := 0; i < n; i++ {
		for d := 0; d < n; d++ {
			if d == i {
				continue
			}
			next := i + 1
			if d < i {
				next = i - 1
			}
			net.Nodes[i].AddRoute(network.NodeID(d), network.NodeID(next))
		}
	}
	return net
}

// Star node roles (Figure 6, renumbered zero-based: paper node k is ours
// k-1). The two servers are nodes 2 and 3 (see StarServers).
const (
	StarClient = 0 // paper node 1: both TCP streams terminate here
	StarCenter = 1 // paper node 2: the relay/bottleneck
)

// NewStar builds the 4-node star: two servers (nodes 2, 3) each send a TCP
// stream through the centre (node 1) to the client (node 0); each session
// is 2 hops.
func NewStar(cfg Config) *Network {
	net := build(4, cfg)
	leaves := []network.NodeID{0, 2, 3}
	for _, leaf := range leaves {
		for d := network.NodeID(0); d < 4; d++ {
			if d == leaf {
				continue
			}
			if d == StarCenter {
				net.Nodes[leaf].AddRoute(d, d)
			} else {
				net.Nodes[leaf].AddRoute(d, StarCenter)
			}
		}
	}
	for d := network.NodeID(0); d < 4; d++ {
		if d != StarCenter {
			net.Nodes[StarCenter].AddRoute(d, d)
		}
	}
	return net
}

// StarServers lists the two server node IDs.
func StarServers() []network.NodeID { return []network.NodeID{2, 3} }

// LinearRole names node i's role in an (hops+1)-node chain.
func LinearRole(i, n int) string {
	switch i {
	case 0:
		return "server"
	case n - 1:
		return "client"
	default:
		return "relay"
	}
}

// StarRole names node i's role in the star.
func StarRole(i int) string {
	switch i {
	case StarClient:
		return "client"
	case StarCenter:
		return "center"
	default:
		return "server"
	}
}

// IsRelay reports whether node i forwards traffic in an n-node chain.
func IsRelay(i, n int) bool { return i > 0 && i < n-1 }
