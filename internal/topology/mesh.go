// Mesh topology generators: the spatially sparse, multi-collision-domain
// layouts real deployments have (grids, random disk graphs, parallel
// chains), as opposed to the paper's single collision domain. Connectivity
// and per-link SNR derive from node positions through a disk radio model;
// shortest-path routes are computed up front (internal/routing) so the
// stacks start with full reachability. Per-transmission simulation cost on
// these layouts is O(degree), not O(N) — see the medium's complexity model.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"aggmac/internal/medium"
	"aggmac/internal/routing"
)

// Point is a node position, in units of the nominal node spacing.
type Point struct{ X, Y float64 }

func (p Point) dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// RadioModel derives link existence and quality from distance: nodes
// within Range hear each other, at the reference SNR up to unit distance
// and log-distance path loss beyond it.
type RadioModel struct {
	// Range is the connectivity radius. The default 1.5 gives grid nodes
	// their 8-neighborhood (orthogonal at d=1, diagonal at √2).
	Range float64
	// RefSNRdB is the link SNR at unit distance and closer; it defaults to
	// the PHY's calibrated SNRdB.
	RefSNRdB float64
	// Exponent is the path-loss exponent applied beyond unit distance
	// (default 3.5, an urban/indoor multi-hop figure).
	Exponent float64
}

// SNRAt returns the link SNR at distance d.
func (rm RadioModel) SNRAt(d float64) float64 {
	if d <= 1 {
		return rm.RefSNRdB
	}
	return rm.RefSNRdB - 10*rm.Exponent*math.Log10(d)
}

// MeshConfig parameterizes a mesh build.
type MeshConfig struct {
	Config
	// Radio overrides the disk radio model; a zero Range selects the
	// default model at the PHY's calibrated SNR.
	Radio RadioModel
	// DeferRoutes skips the generators' all-pairs shortest-path install —
	// O(N·(N+E)) time and O(N²) route entries, the remaining quadratic
	// term at large N. Callers then install only the routes they need
	// (routing.InstallPathsToward); HopDistance returns -1 for any pair
	// whose destination has no routes yet.
	DeferRoutes bool
}

func (c *MeshConfig) radio() RadioModel {
	rm := c.Radio
	if rm.Range <= 0 {
		rm.Range = 1.5
	}
	if rm.RefSNRdB == 0 {
		rm.RefSNRdB = c.Phy.SNRdB
	}
	if rm.Exponent <= 0 {
		rm.Exponent = 3.5
	}
	return rm
}

// Mesh is a generated multi-collision-domain network.
type Mesh struct {
	*Network
	// Pos holds each node's position. Mobility updates it in place through
	// UpdateLinks.
	Pos []Point
	// Extent is the upper corner of the deployment area: nodes live in
	// [0,Extent.X]×[0,Extent.Y]. Mobility models roam inside it.
	Extent Point
	// LinkCount is the number of bidirectional links currently wired.
	LinkCount int
	// Bridged counts links added beyond radio range to join disconnected
	// components (random layouts only).
	Bridged int

	rm      RadioModel  // resolved radio model, shared by build and UpdateLinks
	overlay LinkOverlay // optional link veto / SNR degradation (fault injection)
}

// LinkOverlay lets a fault layer veto links and degrade SNR without its
// own reconciliation path: UpdateLinks consults it on every refresh, so a
// vetoed link is cut through the same incremental SetConnected delta a
// range cut uses and restored links rise the same way. LinkUp must be
// symmetric in (a, b); SNRPenaltyDB is subtracted from the
// distance-derived SNR of in-range pairs. A nil overlay changes nothing.
type LinkOverlay interface {
	LinkUp(a, b int) bool
	SNRPenaltyDB(a, b int) float64
}

// SetOverlay installs (or, with nil, removes) the link overlay. The next
// UpdateLinks reconciles the medium against it.
func (m *Mesh) SetOverlay(o LinkOverlay) { m.overlay = o }

// newMesh builds nodes at the given positions and wires every pair within
// radio range with a distance-derived SNR. Routes are not yet installed.
// Extent defaults to the bounding box of the positions (NewRandomDisk
// widens it to the full placement square).
func newMesh(pos []Point, cfg MeshConfig) *Mesh {
	n := len(pos)
	net := buildOn(medium.NewUnconnected, n, cfg.Config)
	m := &Mesh{Network: net, Pos: pos, rm: cfg.radio()}
	for _, p := range pos {
		if p.X > m.Extent.X {
			m.Extent.X = p.X
		}
		if p.Y > m.Extent.Y {
			m.Extent.Y = p.Y
		}
	}
	forEachRangePair(pos, m.rm.Range, func(a, b int, d float64) {
		m.connect(a, b, m.rm.SNRAt(d))
	})
	return m
}

// forEachRangePair visits every unordered node pair within rangeLim of each
// other exactly once, passing their distance. Nodes are binned into
// rangeLim-sized cells and only same-cell and adjacent-cell pairs are
// examined, so the cost is O(N · local density) instead of the all-pairs
// O(N²) — the same structure UpdateLinks uses for raise candidates. Visit
// order is unspecified (cell iteration follows map order), so callers must
// only perform order-independent work: idempotent connectivity/SNR writes
// and counters qualify, RNG draws do not.
func forEachRangePair(pos []Point, rangeLim float64, visit func(a, b int, d float64)) {
	bins := make(map[[2]int][]int, len(pos))
	for i := range pos {
		k := [2]int{int(math.Floor(pos[i].X / rangeLim)), int(math.Floor(pos[i].Y / rangeLim))}
		bins[k] = append(bins[k], i)
	}
	try := func(a, b int) {
		if d := pos[a].dist(pos[b]); d <= rangeLim {
			visit(a, b, d)
		}
	}
	// Half-plane offsets visit each unordered cell pair exactly once;
	// within a cell, i<j does the same for node pairs.
	offsets := [...][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}
	for c, members := range bins {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				try(members[i], members[j])
			}
		}
		for _, off := range offsets {
			other := bins[[2]int{c[0] + off[0], c[1] + off[1]}]
			for _, a := range members {
				for _, b := range other {
					try(a, b)
				}
			}
		}
	}
}

func (m *Mesh) connect(a, b int, snrdB float64) {
	m.Medium.SetConnected(medium.NodeID(a), medium.NodeID(b), true)
	m.Medium.SetSNR(medium.NodeID(a), medium.NodeID(b), snrdB)
	m.LinkCount++
}

// Adjacency snapshots the medium's neighbor index (ascending ids) for the
// routing package's BFS. The snapshot is stable: connectivity changes
// after the call — a mobility tick, say — do not leak into an in-progress
// route computation.
func (m *Mesh) Adjacency() func(i int) []int {
	adj := make([][]int, len(m.Nodes))
	for i := range adj {
		nbrs := m.Medium.Neighbors(medium.NodeID(i))
		adj[i] = make([]int, len(nbrs))
		for j, id := range nbrs {
			adj[i][j] = int(id)
		}
	}
	return func(i int) []int { return adj[i] }
}

// installRoutes computes and installs shortest-path next hops everywhere,
// unless the config deferred routing to the caller.
func (m *Mesh) installRoutes(cfg MeshConfig) {
	if cfg.DeferRoutes {
		return
	}
	routing.InstallShortestPaths(m.Nodes, m.Adjacency())
}

// bridgeComponents joins disconnected components (possible in random
// layouts) by linking the globally closest pair of nodes in different
// components, repeatedly, until the graph is connected. Bridge links carry
// the SNR of an at-range link — the deployment answer would be "add a
// relay or a better antenna there".
func (m *Mesh) bridgeComponents() {
	n := len(m.Nodes)
	for {
		comp := m.components()
		split := false
		for _, c := range comp {
			if c > 0 {
				split = true
				break
			}
		}
		if !split {
			return
		}
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if comp[a] == comp[b] {
					continue
				}
				if d := m.Pos[a].dist(m.Pos[b]); d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		m.connect(bestA, bestB, m.rm.SNRAt(m.rm.Range))
		m.Bridged++
	}
}

// components labels each node with its connected-component index (labels
// are assigned in ascending order of the component's lowest node id).
func (m *Mesh) components() []int {
	n := len(m.Nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue := []int{s}
		for head := 0; head < len(queue); head++ {
			for _, v := range m.Medium.Neighbors(medium.NodeID(queue[head])) {
				if comp[v] == -1 {
					comp[v] = next
					queue = append(queue, int(v))
				}
			}
		}
		next++
	}
	return comp
}

// AvgDegree is the mean number of neighbors per node.
func (m *Mesh) AvgDegree() float64 {
	if len(m.Nodes) == 0 {
		return 0
	}
	total := 0
	for i := range m.Nodes {
		total += m.Medium.Degree(medium.NodeID(i))
	}
	return float64(total) / float64(len(m.Nodes))
}

// HopDistance walks the installed routes from a to b and returns the hop
// count (-1 if no route).
func (m *Mesh) HopDistance(a, b int) int {
	if a == b {
		return 0
	}
	hops := 0
	cur := a
	for cur != b {
		next, ok := m.Nodes[cur].Route(m.Nodes[b].ID())
		if !ok {
			return -1
		}
		cur = int(next)
		if hops++; hops > len(m.Nodes) {
			return -1 // defensive: a routing loop would spin forever
		}
	}
	return hops
}

// NewGrid builds a k×k grid mesh at unit spacing with shortest-path routes
// installed. With the default radio model every interior node has its
// 8-neighborhood; per-transmission cost is O(degree) however large k grows.
func NewGrid(k int, cfg MeshConfig) *Mesh {
	if k < 2 {
		panic(fmt.Sprintf("topology: grid needs k >= 2, got %d", k))
	}
	pos := make([]Point, 0, k*k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			pos = append(pos, Point{X: float64(c), Y: float64(r)})
		}
	}
	m := newMesh(pos, cfg)
	m.installRoutes(cfg)
	return m
}

// NewRandomDisk scatters n nodes uniformly over a √n × √n area (unit
// density, so expected degree is fixed as n grows) using a placement
// stream derived from cfg.Seed but decoupled from the simulation's RNG,
// connects pairs within radio range, bridges any disconnected components
// through their closest node pairs, and installs shortest-path routes.
func NewRandomDisk(n int, cfg MeshConfig) *Mesh {
	if n < 2 {
		panic(fmt.Sprintf("topology: disk mesh needs n >= 2, got %d", n))
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x6d657368)) // "mesh"
	side := math.Sqrt(float64(n))
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	m := newMesh(pos, cfg)
	m.Extent = Point{X: side, Y: side}
	m.bridgeComponents()
	m.installRoutes(cfg)
	return m
}

// NewParallelChains builds `chains` horizontal chains of hops+1 nodes each
// (node numbering is row-major: chain i, position j is node i*(hops+1)+j),
// separated vertically by rowSpacing (0 selects 1.0). At the default
// spacing adjacent chains are in radio range of each other — distinct
// linear flows share spectrum and cross-chain routes exist for cross
// traffic; spacing beyond the radio range isolates the chains into
// independent collision domains.
func NewParallelChains(chains, hops int, rowSpacing float64, cfg MeshConfig) *Mesh {
	if chains < 1 || hops < 1 {
		panic(fmt.Sprintf("topology: parallel chains need chains >= 1 and hops >= 1, got %d/%d", chains, hops))
	}
	if rowSpacing <= 0 {
		rowSpacing = 1
	}
	cols := hops + 1
	pos := make([]Point, 0, chains*cols)
	for i := 0; i < chains; i++ {
		for j := 0; j < cols; j++ {
			pos = append(pos, Point{X: float64(j), Y: float64(i) * rowSpacing})
		}
	}
	m := newMesh(pos, cfg)
	m.installRoutes(cfg)
	return m
}

// ChainNode returns the node id of position idx on the given chain of a
// NewParallelChains mesh with the given hop count.
func ChainNode(chain, idx, hops int) int { return chain*(hops+1) + idx }

// LinkDelta summarizes one connectivity refresh.
type LinkDelta struct {
	// Up / Down count links that came into / fell out of radio range.
	Up, Down int
	// InRange counts node pairs within range after the update; each had
	// its SNR refreshed from the new distance.
	InRange int
}

// UpdateLinks moves the mesh's nodes to pos and reconciles the medium's
// connectivity and per-link SNR with the new distances, pushing only
// deltas through the medium's incremental SetConnected/SetSNR paths.
//
// Cuts walk the existing neighbor lists (O(E)); candidate raises come from
// binning nodes into radio-range-sized cells, so only same-cell and
// adjacent-cell pairs are examined — O(N · local density), never an O(N²)
// all-pairs scan and never the medium's O(N) dense path. The setters are
// idempotent state writes with no RNG draws, so the outcome is independent
// of pair visit order and map-ordered bin iteration is safe.
//
// Links wired beyond radio range at build time (component bridges) follow
// the radio model from the first refresh on: mobility either brings the
// endpoints into real range or the bridge is cut. Pos and LinkCount are
// updated in place.
//
// With a LinkOverlay installed, overlay-vetoed pairs are cut (and kept
// cut) and in-range SNRs carry the overlay's penalty; the overlay is
// consulted against the freshly copied positions.
func (m *Mesh) UpdateLinks(pos []Point) LinkDelta {
	copy(m.Pos, pos)
	n := len(m.Pos)
	var delta LinkDelta

	var cuts [][2]int // collected first: Neighbors returns the live index
	for a := 0; a < n; a++ {
		for _, b := range m.Medium.Neighbors(medium.NodeID(a)) {
			if int(b) <= a {
				continue
			}
			if m.Pos[a].dist(m.Pos[int(b)]) > m.rm.Range ||
				(m.overlay != nil && !m.overlay.LinkUp(a, int(b))) {
				cuts = append(cuts, [2]int{a, int(b)})
			}
		}
	}
	for _, c := range cuts {
		m.Medium.SetConnected(medium.NodeID(c[0]), medium.NodeID(c[1]), false)
	}
	delta.Down = len(cuts)

	forEachRangePair(m.Pos, m.rm.Range, func(a, b int, d float64) {
		snr := m.rm.SNRAt(d)
		if m.overlay != nil {
			if !m.overlay.LinkUp(a, b) {
				return
			}
			snr -= m.overlay.SNRPenaltyDB(a, b)
		}
		if !m.Medium.Connected(medium.NodeID(a), medium.NodeID(b)) {
			m.Medium.SetConnected(medium.NodeID(a), medium.NodeID(b), true)
			delta.Up++
		}
		m.Medium.SetSNR(medium.NodeID(a), medium.NodeID(b), snr)
		delta.InRange++
	})
	m.LinkCount += delta.Up - delta.Down
	return delta
}
