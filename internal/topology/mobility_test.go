package topology

import (
	"math"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
)

func testMeshCfg(seed int64) MeshConfig {
	return MeshConfig{Config: Config{
		Seed: seed,
		Phy:  phy.DefaultParams(),
		OptsFor: func(i, n int) mac.Options {
			return mac.DefaultOptions(mac.BA, phy.Rate1300k)
		},
	}}
}

func inArea(p Point, extent Point) bool {
	const eps = 1e-9
	return p.X >= -eps && p.X <= extent.X+eps && p.Y >= -eps && p.Y <= extent.Y+eps
}

// Same seed, same step sequence: trajectories must replay bit-identically
// for both models, and every position must stay inside the area.
func TestMobilityDeterministicAndBounded(t *testing.T) {
	for _, kind := range []string{MobilityWaypoint, MobilityDrift} {
		t.Run(kind, func(t *testing.T) {
			m1 := NewGrid(5, testMeshCfg(3))
			m2 := NewGrid(5, testMeshCfg(3))
			a, err := NewMobility(kind, m1, 2, time.Second, 11)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewMobility(kind, m2, 2, time.Second, 11)
			if err != nil {
				t.Fatal(err)
			}
			for step := 1; step <= 40; step++ {
				now := time.Duration(step) * 500 * time.Millisecond
				pa, pb := a.Step(now), b.Step(now)
				for i := range pa {
					if pa[i] != pb[i] {
						t.Fatalf("step %d node %d: %v vs %v (same seed diverged)", step, i, pa[i], pb[i])
					}
					if !inArea(pa[i], m1.Extent) {
						t.Fatalf("step %d node %d: %v escaped area %v", step, i, pa[i], m1.Extent)
					}
				}
			}
		})
	}
}

// A different seed must produce different trajectories.
func TestMobilitySeedMatters(t *testing.T) {
	m := NewGrid(5, testMeshCfg(3))
	a, _ := NewMobility(MobilityWaypoint, m, 2, 0, 1)
	b, _ := NewMobility(MobilityWaypoint, m, 2, 0, 2)
	pa := a.Step(10 * time.Second)
	pb := b.Step(10 * time.Second)
	for i := range pa {
		if pa[i] != pb[i] {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced identical waypoint trajectories")
}

// Waypoint legs are simulated exactly, so coarse and fine tick sequences
// visit the same trajectory (up to float rounding); drift is closed-form
// and therefore exactly tick-invariant.
func TestMobilityTickInvariance(t *testing.T) {
	mesh := NewGrid(5, testMeshCfg(3))
	coarseW := NewRandomWaypoint(mesh.Pos, mesh.Extent, 3, 500*time.Millisecond, 9)
	fineW := NewRandomWaypoint(mesh.Pos, mesh.Extent, 3, 500*time.Millisecond, 9)
	for step := 1; step <= 200; step++ {
		fineW.Step(time.Duration(step) * 100 * time.Millisecond)
	}
	coarse := coarseW.Step(20 * time.Second)
	fine := fineW.Step(20 * time.Second)
	for i := range coarse {
		if d := coarse[i].dist(fine[i]); d > 1e-6 {
			t.Errorf("waypoint node %d: coarse %v vs fine %v (dist %g)", i, coarse[i], fine[i], d)
		}
	}

	coarseD := NewLinearDrift(mesh.Pos, mesh.Extent, 3, 9)
	fineD := NewLinearDrift(mesh.Pos, mesh.Extent, 3, 9)
	for step := 1; step <= 200; step++ {
		fineD.Step(time.Duration(step) * 100 * time.Millisecond)
	}
	cd, fd := coarseD.Step(20*time.Second), fineD.Step(20*time.Second)
	for i := range cd {
		if cd[i] != fd[i] {
			t.Errorf("drift node %d: %v vs %v (closed form should be exact)", i, cd[i], fd[i])
		}
	}
}

func TestReflect1(t *testing.T) {
	for _, tc := range []struct{ x, w, want float64 }{
		{0.5, 4, 0.5},
		{4.5, 4, 3.5},  // bounce off the far wall
		{-0.5, 4, 0.5}, // bounce off the near wall
		{8.5, 4, 0.5},  // full period
		{3, 0, 0},      // collapsed dimension
	} {
		if got := reflect1(tc.x, tc.w); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("reflect1(%g, %g) = %g, want %g", tc.x, tc.w, got, tc.want)
		}
	}
}

func TestNewMobilityUnknown(t *testing.T) {
	m := NewGrid(3, testMeshCfg(1))
	if _, err := NewMobility("teleport", m, 1, 0, 1); err == nil {
		t.Fatal("unknown mobility model accepted")
	}
}

// UpdateLinks must leave the medium in exactly the state a from-scratch
// rebuild at the new positions would produce: connectivity == (distance <=
// range) for every pair, SNR matching the radio model on every in-range
// link, and LinkCount consistent.
func TestUpdateLinksMatchesRebuild(t *testing.T) {
	m := NewGrid(5, testMeshCfg(7))
	model, err := NewMobility(MobilityWaypoint, m, 3, 0, 21)
	if err != nil {
		t.Fatal(err)
	}
	for step := 1; step <= 30; step++ {
		delta := m.UpdateLinks(model.Step(time.Duration(step) * 300 * time.Millisecond))
		links := 0
		for a := 0; a < len(m.Nodes); a++ {
			for b := a + 1; b < len(m.Nodes); b++ {
				d := m.Pos[a].dist(m.Pos[b])
				want := d <= m.rm.Range
				got := m.Medium.Connected(medium.NodeID(a), medium.NodeID(b))
				if got != want {
					t.Fatalf("step %d: Connected(%d,%d)=%v, distance %g vs range %g", step, a, b, got, d, m.rm.Range)
				}
				if !want {
					continue
				}
				links++
				if back := m.Medium.Connected(medium.NodeID(b), medium.NodeID(a)); !back {
					t.Fatalf("step %d: link %d-%d asymmetric", step, a, b)
				}
				// The SNR must track the new distance, both directions —
				// a refresh that skips already-connected pairs would leave
				// stale values here.
				wantSNR := m.rm.SNRAt(d)
				for _, dir := range [][2]int{{a, b}, {b, a}} {
					if got := m.Medium.SNR(medium.NodeID(dir[0]), medium.NodeID(dir[1])); got != wantSNR {
						t.Fatalf("step %d: SNR(%d,%d) = %v, radio model %v at distance %g",
							step, dir[0], dir[1], got, wantSNR, d)
					}
				}
			}
		}
		if links != m.LinkCount {
			t.Fatalf("step %d: LinkCount=%d, rebuild counts %d (delta %+v)", step, m.LinkCount, links, delta)
		}
	}
}

// An update at unchanged positions must be a no-op for connectivity.
func TestUpdateLinksIdempotent(t *testing.T) {
	m := NewGrid(4, testMeshCfg(5))
	pos := append([]Point(nil), m.Pos...)
	before := m.LinkCount
	delta := m.UpdateLinks(pos)
	if delta.Up != 0 || delta.Down != 0 {
		t.Fatalf("static refresh changed links: %+v", delta)
	}
	if m.LinkCount != before {
		t.Fatalf("LinkCount drifted: %d -> %d", before, m.LinkCount)
	}
	if delta.InRange != before {
		t.Fatalf("InRange=%d, want every existing link (%d) refreshed", delta.InRange, before)
	}
}

// Bridged beyond-range links obey the radio model from the first refresh:
// a mobility update cuts them unless the endpoints moved into range.
func TestUpdateLinksCutsBridges(t *testing.T) {
	// Two distant clusters force bridging in NewRandomDisk only
	// probabilistically; build the situation directly instead.
	m := NewGrid(3, testMeshCfg(1))
	far := len(m.Nodes) - 1
	m.Medium.SetConnected(0, medium.NodeID(far), true) // fake bridge 0 <-> corner
	pos := append([]Point(nil), m.Pos...)
	pos[far] = Point{X: 40, Y: 40} // way out of range of everyone
	delta := m.UpdateLinks(pos)
	if m.Medium.Connected(0, medium.NodeID(far)) {
		t.Fatal("out-of-range bridge survived a refresh")
	}
	if delta.Down == 0 {
		t.Fatal("no cuts counted")
	}
}
