// Package tcp implements the transport layer the paper's evaluation runs
// on: a Reno/NewReno-style TCP with three-way handshake, cumulative
// acknowledgements, slow start, congestion avoidance, fast
// retransmit/recovery, retransmission timeouts, and orderly close.
//
// The paper's §3.3 observation — pure TCP ACKs are small, cumulative and
// redundant, so they can ride unacknowledged as broadcast subframes — is
// exported as IsPureAck, which the network layer's cross-layer classifier
// calls.
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the TCP header size (no options).
const HeaderLen = 20

// Flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// ErrBadSegment reports an undecodable TCP segment.
var ErrBadSegment = errors.New("tcp: malformed segment")

// Segment is one TCP segment.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// HasFlag reports whether all given flag bits are set.
func (s *Segment) HasFlag(f uint8) bool { return s.Flags&f == f }

// IsPureAck reports whether the segment carries only an acknowledgement:
// the ACK flag, no payload, and no part in connection setup or teardown.
// This is the paper's classification rule (§4.2.4).
func (s *Segment) IsPureAck() bool {
	return s.HasFlag(FlagACK) && len(s.Payload) == 0 &&
		s.Flags&(FlagSYN|FlagFIN|FlagRST) == 0
}

// checksum is a 16-bit ones-complement sum over the marshaled segment with
// the checksum field zeroed. It accumulates eight bytes per step (RFC 1071:
// ones-complement addition is associative and width-invariant, so folding a
// wide accumulator yields exactly the word-at-a-time result); segments are
// MSS-sized on the hot path, making this the stack's densest loop.
func checksum(b []byte) uint16 {
	var sum uint64
	for len(b) >= 8 {
		v := binary.BigEndian.Uint64(b)
		sum += v>>48 + v>>32&0xffff + v>>16&0xffff + v&0xffff
		b = b[8:]
	}
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint64(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint64(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal serializes the segment.
func (s *Segment) Marshal() []byte {
	b := make([]byte, HeaderLen+len(s.Payload))
	binary.BigEndian.PutUint16(b[0:2], s.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], s.DstPort)
	binary.BigEndian.PutUint32(b[4:8], s.Seq)
	binary.BigEndian.PutUint32(b[8:12], s.Ack)
	b[12] = 5 << 4 // data offset: 5 words
	b[13] = s.Flags
	binary.BigEndian.PutUint16(b[14:16], s.Window)
	copy(b[HeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(b[16:18], checksum(b))
	return b
}

// DecodeSegment parses and verifies a segment.
func DecodeSegment(b []byte) (Segment, error) {
	var s Segment
	if len(b) < HeaderLen {
		return s, fmt.Errorf("%w: %d bytes", ErrBadSegment, len(b))
	}
	if b[12]>>4 != 5 {
		return s, fmt.Errorf("%w: data offset %d", ErrBadSegment, b[12]>>4)
	}
	if checksum(b) != 0 {
		return s, fmt.Errorf("%w: checksum", ErrBadSegment)
	}
	s.SrcPort = binary.BigEndian.Uint16(b[0:2])
	s.DstPort = binary.BigEndian.Uint16(b[2:4])
	s.Seq = binary.BigEndian.Uint32(b[4:8])
	s.Ack = binary.BigEndian.Uint32(b[8:12])
	s.Flags = b[13]
	s.Window = binary.BigEndian.Uint16(b[14:16])
	s.Payload = b[HeaderLen:]
	return s, nil
}

// IsPureAck is the network-layer classifier entry point: it decodes just
// enough of a transport payload to apply the §4.2.4 rule. Undecodable
// payloads are never classified (they stay on the unicast path).
func IsPureAck(transport []byte) bool {
	s, err := DecodeSegment(transport)
	if err != nil {
		return false
	}
	return s.IsPureAck()
}
