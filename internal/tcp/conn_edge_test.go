package tcp

import (
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/network"
	"aggmac/internal/phy"
)

func TestSendErrorsAfterClose(t *testing.T) {
	s, a, b := loopPair(t)
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		c.OnData = func([]byte) {}
		c.OnPeerClose = func() { c.Close() }
	}
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() {
			_ = sc.Send([]byte("x"))
			sc.Close()
			if err := sc.Send([]byte("y")); err == nil {
				t.Error("Send after Close succeeded")
			}
		}
	})
	s.RunUntil(5 * time.Second)
	if sc.State() != StateClosed && sc.State() != StateTimeWait {
		t.Errorf("state after close: %v", sc.State())
	}
}

func TestSendInClosedStateErrors(t *testing.T) {
	c := &Conn{state: StateClosed, cfg: DefaultConfig()}
	if err := c.Send([]byte("x")); err == nil {
		t.Fatal("Send on closed conn succeeded")
	}
}

func TestOrderlyCloseBothSides(t *testing.T) {
	s, a, b := loopPair(t)
	var cc *Conn
	aClosed, bClosed := false, false
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		cc = c
		c.OnData = func([]byte) {}
		c.OnPeerClose = func() { c.Close() }
		c.OnClose = func() { bClosed = true }
	}
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnClose = func() { aClosed = true }
		sc.OnEstablished = func() {
			_ = sc.Send(pattern(5000))
			sc.Close()
		}
	})
	s.RunUntil(10 * time.Second)
	if !bClosed {
		t.Errorf("passive side never closed (state %v)", cc.State())
	}
	if !aClosed {
		t.Errorf("active side never closed (state %v)", sc.State())
	}
}

func TestDuplicateSynGetsSynAckAgain(t *testing.T) {
	s, a, b := loopPair(t)
	b.Listen(80)
	var sc *Conn
	s.After(0, "go", func() { sc = a.Connect(1, 80) })
	s.RunUntil(time.Second)
	if sc.State() != StateEstablished {
		t.Fatalf("setup: %v", sc.State())
	}
	// Replay the original SYN at the listener: the (still book-kept)
	// connection must not be disturbed.
	syn := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: sc.iss, Flags: FlagSYN, Window: 65535}
	s.After(0, "replay", func() {
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: syn.Marshal()})
	})
	s.RunUntil(2 * time.Second)
	if sc.State() != StateEstablished {
		t.Fatalf("replayed SYN broke the connection: %v", sc.State())
	}
}

func TestPeerWindowLimitsFlight(t *testing.T) {
	s, a, b := loopPair(t)
	cfg := DefaultConfig()
	cfg.Window = 4096 // the RECEIVER advertises 3 segments' worth
	bSmall := b
	bSmall.cfg = cfg
	lis := bSmall.Listen(80)
	consumed := 0
	lis.Setup = func(c *Conn) { c.OnData = func(p []byte) { consumed += len(p) } }
	var sc *Conn
	maxFlight := uint32(0)
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() { _ = sc.Send(pattern(40_000)) }
	})
	// Sample the flight while transferring.
	var sample func()
	sample = func() {
		if sc != nil && sc.flight() > maxFlight {
			maxFlight = sc.flight()
		}
		s.After(2*time.Millisecond, "sample", sample)
	}
	s.After(time.Millisecond, "sample", sample)
	s.RunUntil(20 * time.Second)
	if consumed != 40_000 {
		t.Fatalf("consumed %d of 40000", consumed)
	}
	if maxFlight > 4096 {
		t.Errorf("flight %d exceeded the peer's 4096-byte window", maxFlight)
	}
}

func TestDelayedAckTimerPath(t *testing.T) {
	// A single segment with delayed ACKs: no second segment arrives, so
	// the 40 ms timer must fire the ACK.
	cfg := DefaultConfig()
	cfg.DelayedAck = true
	s, a, b := loopPair(t)
	a.cfg = cfg
	b.cfg = cfg
	var cc *Conn
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		cc = c
		c.OnData = func([]byte) {}
	}
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() { _ = sc.Send(pattern(100)) } // single segment
	})
	s.RunUntil(5 * time.Second)
	if sc.Stats().BytesAcked != 100 {
		t.Fatalf("delayed ACK never fired: acked %d", sc.Stats().BytesAcked)
	}
	if cc.Stats().PureAcksSent == 0 {
		t.Fatal("no pure ACK recorded")
	}
}

func TestOverlappingSegmentTrimmed(t *testing.T) {
	s, a, b := loopPair(t)
	var rcvd []byte
	var cc *Conn
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		cc = c
		c.OnData = func(p []byte) { rcvd = append(rcvd, p...) }
	}
	var sc *Conn
	s.After(0, "go", func() { sc = a.Connect(1, 80) })
	s.RunUntil(time.Second)
	// Deliver "ABCDE", then a segment overlapping the first three bytes:
	// "CDEFG" starting at seq+2. The receiver must emit ABCDEFG.
	base := sc.sndNxt
	seg1 := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: base, Ack: sc.rcvNxt,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: []byte("ABCDE")}
	seg2 := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: base + 2, Ack: sc.rcvNxt,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: []byte("CDEFG")}
	s.After(time.Millisecond, "inject", func() {
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: seg1.Marshal()})
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: seg2.Marshal()})
	})
	s.RunUntil(2 * time.Second)
	if string(rcvd) != "ABCDEFG" {
		t.Fatalf("overlap handling produced %q, want ABCDEFG", rcvd)
	}
	if cc.stats.SegsRcvd < 2 {
		t.Fatal("segments not processed")
	}
}

func TestEntirelyOldSegmentReAcked(t *testing.T) {
	s, a, b := loopPair(t)
	var cc *Conn
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		cc = c
		c.OnData = func([]byte) {}
	}
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() { _ = sc.Send(pattern(2000)) }
	})
	s.RunUntil(time.Second)
	acksBefore := cc.Stats().AcksSent
	// Replay the first data segment (fully below rcvNxt).
	old := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: sc.iss + 1, Ack: cc.sndNxt,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: pattern(1357)}
	s.After(0, "replay", func() {
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: old.Marshal()})
	})
	s.RunUntil(2 * time.Second)
	if cc.Stats().AcksSent <= acksBefore {
		t.Fatal("old duplicate segment was not re-ACKed")
	}
	if cc.Stats().BytesDelivered != 2000 {
		t.Fatalf("duplicate delivered again: %d bytes", cc.Stats().BytesDelivered)
	}
}

func TestConfigZeroValueRejectedByStack(t *testing.T) {
	// A stack built with an explicit config keeps it; the experiment
	// runner substitutes defaults for the zero value — verify DefaultConfig
	// is self-consistent instead.
	cfg := DefaultConfig()
	if cfg.MSS != 1357 {
		t.Errorf("default MSS %d, paper uses 1357", cfg.MSS)
	}
	if cfg.MinRTO <= 0 || cfg.MaxRTO < cfg.MinRTO {
		t.Error("RTO bounds inconsistent")
	}
	if cfg.Window == 0 || cfg.InitialCwndSegs == 0 {
		t.Error("zero window/cwnd defaults")
	}
}

func TestStackStringer(t *testing.T) {
	_ = mac.NA // keep imports honest in case of refactors
	_ = phy.Rate650k
	s, a, _ := loopPair(t)
	_ = s
	if a.String() == "" {
		t.Fatal("empty stack name")
	}
}
