package tcp

import (
	"fmt"
	"time"

	"aggmac/internal/network"
	"aggmac/internal/sim"
)

// State is a TCP connection state (the subset a one-way transfer visits).
type State int

const (
	StateClosed State = iota
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateLastAck
	StateTimeWait
)

func (s State) String() string {
	names := [...]string{"Closed", "SynSent", "SynReceived", "Established",
		"FinWait1", "FinWait2", "CloseWait", "LastAck", "TimeWait"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config holds per-connection TCP parameters.
type Config struct {
	MSS             int           // maximum segment size (paper: 1357)
	Window          uint16        // advertised receive window
	InitialCwndSegs int           // initial congestion window, in segments
	InitialRTO      time.Duration // before the first RTT sample
	MinRTO, MaxRTO  time.Duration
	TimeWait        time.Duration
	// DelayedAck acknowledges every second segment (or after a short
	// timer) instead of every segment — an ablation knob; the paper's
	// stack ACKs every segment.
	DelayedAck      bool
	DelayedAckTimer time.Duration
	// MaxTimeouts aborts the connection after this many consecutive
	// retransmission timeouts (keeps simulations finite when a peer
	// becomes unreachable).
	MaxTimeouts int
}

// DefaultConfig matches the paper's experimental setup. Window is set so a
// relay's aggregation degree matches the paper's Table 3 observations
// (≈3.3 subframes per UA aggregate); MaxRTO is clamped to 10 s because this
// TCP has no SACK or limited transmit, and an RFC-style 60 s cap turns
// drop-tail lockout into minutes of idle backoff the paper's stack did not
// exhibit.
func DefaultConfig() Config {
	return Config{
		MSS:             1357,
		Window:          16384,
		InitialCwndSegs: 2,
		InitialRTO:      time.Second,
		MinRTO:          200 * time.Millisecond,
		MaxRTO:          10 * time.Second,
		TimeWait:        500 * time.Millisecond,
		DelayedAckTimer: 40 * time.Millisecond,
		MaxTimeouts:     8,
	}
}

// Stats counts per-connection protocol events.
type Stats struct {
	SegsSent, SegsRcvd    int
	BytesSent, BytesAcked int64
	BytesDelivered        int64
	AcksSent              int
	PureAcksSent          int
	Retransmits           int
	FastRetransmits       int
	Timeouts              int
	DupAcksRcvd           int
	OutOfOrder            int
	SendBlocked           int // MAC queue backpressure events
}

// Conn is one endpoint of a TCP connection.
type Conn struct {
	stack      *Stack
	cfg        Config
	peer       network.NodeID
	localPort  uint16
	remotePort uint16
	state      State

	// Send side.
	iss       uint32
	sndUna    uint32
	sndNxt    uint32
	buf       []byte // unacked + unsent stream bytes
	bufBase   uint32 // sequence number of buf[0]
	cwnd      float64
	ssthresh  float64
	peerWnd   uint16
	dupacks   int
	inRecov   bool
	recover   uint32
	rto       time.Duration
	srtt      time.Duration
	rttvar    time.Duration
	hasSRTT   bool
	rttSeq    uint32
	rttTime   sim.Time
	rttValid  bool
	rtxTimer  sim.Timer
	rtoFn     func() // stable scheduler callbacks (no per-arm method value)
	rtoStreak int    // consecutive timeouts
	finSent   bool
	finSeq    uint32
	closeReq  bool

	// Receive side.
	rcvNxt   uint32
	reasm    map[uint32][]byte
	finRcvd  bool
	delAckN  int
	delAckT  sim.Timer
	delAckFn func()

	// Callbacks into the application.
	OnEstablished func()
	OnData        func([]byte)
	OnPeerClose   func()
	OnClose       func()

	stats Stats
}

// Sequence-space comparisons (RFC 793 modular arithmetic).
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of the connection's counters.
func (c *Conn) Stats() Stats { return c.stats }

// Cwnd returns the congestion window in bytes.
func (c *Conn) Cwnd() int { return int(c.cwnd) }

// SRTT returns the smoothed RTT estimate (zero before the first sample).
func (c *Conn) SRTT() time.Duration { return c.srtt }

// Send queues stream data for transmission.
func (c *Conn) Send(data []byte) error {
	switch c.state {
	case StateEstablished, StateSynSent, StateSynReceived, StateCloseWait:
	default:
		return fmt.Errorf("tcp: Send in state %v", c.state)
	}
	if c.closeReq {
		return fmt.Errorf("tcp: Send after Close")
	}
	c.buf = append(c.buf, data...)
	c.trySend()
	return nil
}

// Close begins an orderly shutdown once all queued data is delivered.
func (c *Conn) Close() {
	if c.closeReq {
		return
	}
	c.closeReq = true
	c.maybeSendFin()
}

// Buffered returns the number of stream bytes not yet acknowledged.
func (c *Conn) Buffered() int { return len(c.buf) }

// ---- sender internals ----

func (c *Conn) mss() int { return c.cfg.MSS }

func (c *Conn) flight() uint32 { return c.sndNxt - c.sndUna }

func (c *Conn) dataEnd() uint32 { return c.bufBase + uint32(len(c.buf)) }

// trySend emits as many segments as the congestion and peer windows allow.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait {
		return
	}
	wnd := uint32(c.cwnd)
	if pw := uint32(c.peerWnd); pw < wnd {
		wnd = pw
	}
	for seqLT(c.sndNxt, c.dataEnd()) && c.flight() < wnd {
		n := int(c.dataEnd() - c.sndNxt)
		if n > c.mss() {
			n = c.mss()
		}
		if avail := int(wnd - c.flight()); n > avail {
			// Send only whole segments except for the stream tail.
			if seqLT(c.sndNxt+uint32(n), c.dataEnd()) {
				break
			}
			n = avail
			if n <= 0 {
				break
			}
		}
		off := c.sndNxt - c.bufBase
		payload := c.buf[off : off+uint32(n)]
		if err := c.emit(FlagACK|FlagPSH, c.sndNxt, payload); err != nil {
			c.stats.SendBlocked++
			break
		}
		if !c.rttValid {
			c.rttSeq = c.sndNxt
			c.rttTime = c.stack.sched.Now()
			c.rttValid = true
		}
		c.sndNxt += uint32(n)
		c.stats.BytesSent += int64(n)
		c.armRTO()
	}
	c.maybeSendFin()
}

// maybeSendFin sends our FIN once the stream has fully drained.
func (c *Conn) maybeSendFin() {
	if !c.closeReq || c.finSent {
		return
	}
	if c.sndNxt != c.dataEnd() {
		return // stream not fully transmitted yet
	}
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	default:
		return
	}
	c.finSeq = c.sndNxt
	c.finSent = true
	if err := c.emit(FlagACK|FlagFIN, c.sndNxt, nil); err != nil {
		c.stats.SendBlocked++
	}
	c.sndNxt++
	c.armRTO()
}

// emit sends one segment through the stack.
func (c *Conn) emit(flags uint8, seq uint32, payload []byte) error {
	seg := Segment{
		SrcPort: c.localPort, DstPort: c.remotePort,
		Seq: seq, Flags: flags, Window: c.cfg.Window,
		Payload: payload,
	}
	if flags&FlagACK != 0 {
		seg.Ack = c.rcvNxt
	}
	c.stats.SegsSent++
	if seg.IsPureAck() {
		c.stats.PureAcksSent++
	}
	if flags&FlagACK != 0 {
		c.stats.AcksSent++
	}
	return c.stack.send(c.peer, &seg)
}

func (c *Conn) armRTO() {
	if c.rtxTimer.Pending() {
		return
	}
	c.rtxTimer = c.stack.sched.After(c.rto, "tcp:rto", c.rtoFn)
}

func (c *Conn) rearmRTO() {
	c.rtxTimer.Stop()
	c.rtxTimer = c.stack.sched.After(c.rto, "tcp:rto", c.rtoFn)
}

func (c *Conn) stopRTO() {
	c.rtxTimer.Stop()
}

func (c *Conn) onRTO() {
	if c.state == StateClosed || c.state == StateTimeWait {
		return
	}
	if c.flight() == 0 {
		return
	}
	c.stats.Timeouts++
	c.rtoStreak++
	if c.cfg.MaxTimeouts > 0 && c.rtoStreak > c.cfg.MaxTimeouts {
		c.toClosed()
		return
	}
	fs := float64(c.flight())
	c.ssthresh = fs / 2
	if min := float64(2 * c.mss()); c.ssthresh < min {
		c.ssthresh = min
	}
	c.cwnd = float64(c.mss())
	c.inRecov = false
	c.dupacks = 0
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.rttValid = false // Karn: no sampling across retransmissions
	c.retransmitFirst()
	c.rearmRTO()
}

// retransmitFirst resends whatever sndUna points at.
func (c *Conn) retransmitFirst() {
	c.stats.Retransmits++
	c.rttValid = false
	switch {
	case c.state == StateSynSent:
		_ = c.emit(FlagSYN, c.iss, nil)
	case c.state == StateSynReceived:
		_ = c.emit(FlagSYN|FlagACK, c.iss, nil)
	case c.finSent && c.sndUna == c.finSeq:
		_ = c.emit(FlagACK|FlagFIN, c.finSeq, nil)
	default:
		if seqLT(c.sndUna, c.bufBase) || seqGE(c.sndUna, c.dataEnd()) {
			return
		}
		n := int(c.dataEnd() - c.sndUna)
		if n > c.mss() {
			n = c.mss()
		}
		off := c.sndUna - c.bufBase
		_ = c.emit(FlagACK|FlagPSH, c.sndUna, c.buf[off:off+uint32(n)])
	}
}

func (c *Conn) updateRTT(sample time.Duration) {
	if !c.hasSRTT {
		c.srtt = sample
		c.rttvar = sample / 2
		c.hasSRTT = true
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.cfg.MinRTO {
		c.rto = c.cfg.MinRTO
	}
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
}

// ---- segment processing ----

func (c *Conn) onSegment(seg *Segment) {
	c.stats.SegsRcvd++
	switch c.state {
	case StateSynSent:
		if seg.HasFlag(FlagSYN|FlagACK) && seg.Ack == c.sndNxt {
			c.rcvNxt = seg.Seq + 1
			c.sndUna = seg.Ack
			c.peerWnd = seg.Window
			c.state = StateEstablished
			c.stopRTO()
			c.rto = c.cfg.InitialRTO
			_ = c.emit(FlagACK, c.sndNxt, nil)
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			c.trySend()
		}
		return
	case StateSynReceived:
		if seg.HasFlag(FlagACK) && seg.Ack == c.sndNxt {
			c.sndUna = seg.Ack
			c.peerWnd = seg.Window
			c.state = StateEstablished
			c.stopRTO()
			if c.OnEstablished != nil {
				c.OnEstablished()
			}
			// Fall through: the ACK may carry data.
		} else if seg.HasFlag(FlagSYN) {
			// Duplicate SYN: repeat the SYN-ACK.
			_ = c.emit(FlagSYN|FlagACK, c.iss, nil)
			return
		} else {
			return
		}
	case StateClosed:
		return
	}

	c.processAck(seg)
	c.processPayload(seg)
	c.processFin(seg)
}

func (c *Conn) processAck(seg *Segment) {
	if !seg.HasFlag(FlagACK) {
		return
	}
	ack := seg.Ack
	c.peerWnd = seg.Window
	if seqGT(ack, c.sndNxt) {
		return // acks data we never sent
	}
	if seqLE(ack, c.sndUna) {
		if ack == c.sndUna && c.flight() > 0 && len(seg.Payload) == 0 &&
			seg.Flags&(FlagSYN|FlagFIN) == 0 {
			c.dupacks++
			c.stats.DupAcksRcvd++
			if c.inRecov {
				c.cwnd += float64(c.mss()) // inflation
				c.trySend()
			} else if c.dupacks == 3 {
				c.fastRetransmit()
			}
		}
		return
	}

	// New data acknowledged.
	acked := ack - c.sndUna
	if c.rttValid && seqGT(ack, c.rttSeq) {
		c.updateRTT(c.stack.sched.Now() - c.rttTime)
		c.rttValid = false
	}
	c.advanceBuffer(ack)
	c.sndUna = ack
	c.dupacks = 0
	c.rtoStreak = 0
	c.stats.BytesAcked += int64(acked)

	if c.inRecov {
		if seqGE(ack, c.recover) {
			c.inRecov = false
			c.cwnd = c.ssthresh
		} else {
			// NewReno partial ACK: retransmit the next hole, deflate.
			c.retransmitFirst()
			c.cwnd -= float64(acked)
			c.cwnd += float64(c.mss())
			if c.cwnd < float64(c.mss()) {
				c.cwnd = float64(c.mss())
			}
			c.rearmRTO()
		}
	} else {
		if c.cwnd < c.ssthresh {
			inc := float64(acked)
			if m := float64(c.mss()); inc > m {
				inc = m
			}
			c.cwnd += inc // slow start
		} else {
			c.cwnd += float64(c.mss()) * float64(c.mss()) / c.cwnd // CA
		}
	}

	if c.flight() == 0 {
		c.stopRTO()
	} else {
		c.rearmRTO()
	}

	// FIN acknowledged?
	if c.finSent && seqGT(ack, c.finSeq) {
		switch c.state {
		case StateFinWait1:
			c.state = StateFinWait2
		case StateLastAck:
			c.toClosed()
		}
	}
	c.trySend()
}

// advanceBuffer drops acknowledged stream bytes (SYN/FIN sequence numbers
// live outside the buffer).
func (c *Conn) advanceBuffer(ack uint32) {
	start := c.sndUna
	if seqLT(start, c.bufBase) {
		start = c.bufBase
	}
	end := ack
	if de := c.dataEnd(); seqGT(end, de) {
		end = de
	}
	if seqGT(end, start) {
		n := end - start
		c.buf = c.buf[n:]
		c.bufBase = end
	}
}

func (c *Conn) fastRetransmit() {
	c.stats.FastRetransmits++
	fs := float64(c.flight())
	c.ssthresh = fs / 2
	if min := float64(2 * c.mss()); c.ssthresh < min {
		c.ssthresh = min
	}
	c.retransmitFirst()
	c.cwnd = c.ssthresh + 3*float64(c.mss())
	c.inRecov = true
	c.recover = c.sndNxt
	c.rearmRTO()
}

func (c *Conn) processPayload(seg *Segment) {
	if len(seg.Payload) == 0 {
		return
	}
	seq := seg.Seq
	pl := seg.Payload
	endSeq := seq + uint32(len(pl))
	switch {
	case seqLE(endSeq, c.rcvNxt):
		// Entirely old: re-ACK so the sender's dupack logic advances.
	case seqGT(seq, c.rcvNxt):
		// Future: hold for reassembly.
		c.stats.OutOfOrder++
		if _, ok := c.reasm[seq]; !ok {
			c.reasm[seq] = append([]byte(nil), pl...)
		}
	default:
		if seqLT(seq, c.rcvNxt) {
			pl = pl[c.rcvNxt-seq:]
		}
		c.deliver(pl)
		c.drainReasm()
	}
	c.ackData()
}

// deliver hands in-order bytes to the application.
func (c *Conn) deliver(pl []byte) {
	c.rcvNxt += uint32(len(pl))
	c.stats.BytesDelivered += int64(len(pl))
	if c.OnData != nil {
		c.OnData(pl)
	}
}

func (c *Conn) drainReasm() {
	for {
		pl, ok := c.reasm[c.rcvNxt]
		if !ok {
			return
		}
		delete(c.reasm, c.rcvNxt)
		c.deliver(pl)
	}
}

// ackData acknowledges received data, immediately or (optionally) delayed.
func (c *Conn) ackData() {
	if !c.cfg.DelayedAck {
		_ = c.emit(FlagACK, c.sndNxt, nil)
		return
	}
	c.delAckN++
	if c.delAckN >= 2 {
		c.flushDelAck()
		return
	}
	if !c.delAckT.Pending() {
		c.delAckT = c.stack.sched.After(c.cfg.DelayedAckTimer, "tcp:delack", c.delAckFn)
	}
}

func (c *Conn) flushDelAck() {
	if c.delAckN == 0 {
		return
	}
	c.delAckN = 0
	c.delAckT.Stop()
	_ = c.emit(FlagACK, c.sndNxt, nil)
}

func (c *Conn) processFin(seg *Segment) {
	if !seg.HasFlag(FlagFIN) {
		return
	}
	finSeq := seg.Seq + uint32(len(seg.Payload))
	if finSeq != c.rcvNxt {
		return // out of order FIN; reassembly of data will re-trigger
	}
	if c.finRcvd {
		_ = c.emit(FlagACK, c.sndNxt, nil)
		return
	}
	c.finRcvd = true
	c.rcvNxt++
	if c.cfg.DelayedAck {
		c.flushDelAck()
	}
	_ = c.emit(FlagACK, c.sndNxt, nil)
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
	case StateFinWait1:
		// Simultaneous close; our FIN unacked yet.
		c.state = StateTimeWait // collapsed CLOSING+TIME_WAIT
		c.scheduleTimeWait()
	case StateFinWait2:
		c.state = StateTimeWait
		c.scheduleTimeWait()
	}
	c.maybeSendFin()
}

func (c *Conn) scheduleTimeWait() {
	c.stack.sched.After(c.cfg.TimeWait, "tcp:timewait", func() {
		if c.state == StateTimeWait {
			c.toClosed()
		}
	})
}

func (c *Conn) toClosed() {
	c.state = StateClosed
	c.stopRTO()
	c.stack.drop(c)
	if c.OnClose != nil {
		c.OnClose()
	}
}
