package tcp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

func TestSegmentRoundTrip(t *testing.T) {
	s := Segment{SrcPort: 10001, DstPort: 80, Seq: 0xdeadbeef, Ack: 0x1234,
		Flags: FlagACK | FlagPSH, Window: 4096, Payload: []byte("payload!")}
	got, err := DecodeSegment(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != s.SrcPort || got.DstPort != s.DstPort || got.Seq != s.Seq ||
		got.Ack != s.Ack || got.Flags != s.Flags || got.Window != s.Window {
		t.Fatalf("fields mangled: %+v", got)
	}
	if !bytes.Equal(got.Payload, s.Payload) {
		t.Fatal("payload mangled")
	}
}

func TestSegmentChecksumDetectsCorruption(t *testing.T) {
	s := Segment{SrcPort: 1, DstPort: 2, Seq: 3, Flags: FlagACK, Payload: []byte("xyz")}
	b := s.Marshal()
	b[5] ^= 0x40
	if _, err := DecodeSegment(b); err == nil {
		t.Fatal("corrupted segment decoded")
	}
	if _, err := DecodeSegment(b[:10]); err == nil {
		t.Fatal("short segment decoded")
	}
}

func TestIsPureAckClassification(t *testing.T) {
	mk := func(flags uint8, payload []byte) []byte {
		return (&Segment{SrcPort: 1, DstPort: 2, Flags: flags, Payload: payload}).Marshal()
	}
	cases := []struct {
		name string
		b    []byte
		want bool
	}{
		{"pure ack", mk(FlagACK, nil), true},
		{"data segment", mk(FlagACK|FlagPSH, []byte("data")), false},
		{"syn", mk(FlagSYN, nil), false},
		{"syn-ack", mk(FlagSYN|FlagACK, nil), false},
		{"fin-ack", mk(FlagFIN|FlagACK, nil), false},
		{"rst", mk(FlagRST|FlagACK, nil), false},
		{"garbage", []byte{1, 2, 3}, false},
	}
	for _, c := range cases {
		if got := IsPureAck(c.b); got != c.want {
			t.Errorf("%s: IsPureAck = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPropertySegmentRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, wnd uint16, payload []byte) bool {
		if len(payload) > 3000 {
			payload = payload[:3000]
		}
		s := Segment{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Window: wnd, Payload: payload}
		got, err := DecodeSegment(s.Marshal())
		return err == nil && got.Seq == seq && got.Ack == ack && got.Flags == flags &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmeticWraps(t *testing.T) {
	hi := uint32(0xffffff00)
	lo := uint32(0x00000100)
	if !seqLT(hi, lo) {
		t.Error("wrap: hi should be < lo across the wrap point")
	}
	if !seqGT(lo, hi) || !seqGE(lo, lo) || !seqLE(hi, hi) {
		t.Error("seq helpers inconsistent")
	}
}

// ---- over-the-air rigs ----

type airRig struct {
	s      *sim.Scheduler
	med    *medium.Medium
	nodes  []*network.Node
	stacks []*Stack
}

// newChain builds an n-node linear chain (all nodes in radio range; routes
// force the chain, like the paper's static routing).
func newChain(t testing.TB, n int, scheme mac.Scheme, rate phy.Rate, cfg Config) *airRig {
	r := &airRig{s: sim.NewScheduler(99)}
	r.med = medium.New(r.s, phy.DefaultParams(), n)
	opts := mac.DefaultOptions(scheme, rate)
	for i := 0; i < n; i++ {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(r.s, r.med, medium.NodeID(i), opts, node.Bind())
		node.AttachMAC(m)
		r.nodes = append(r.nodes, node)
		r.stacks = append(r.stacks, NewStack(r.s, node, cfg))
	}
	for i := 0; i < n; i++ {
		for d := 0; d < n; d++ {
			if d == i {
				continue
			}
			next := i + 1
			if d < i {
				next = i - 1
			}
			r.nodes[i].AddRoute(network.NodeID(d), network.NodeID(next))
		}
	}
	return r
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*131 + i>>8)
	}
	return b
}

// runTransfer moves size bytes from node 0 to the last node and returns the
// received bytes plus both connections.
func runTransfer(t testing.TB, r *airRig, size int, deadline time.Duration) ([]byte, *Conn, *Conn) {
	t.Helper()
	last := len(r.stacks) - 1
	var rcvd []byte
	var serverConn, clientConn *Conn
	lis := r.stacks[last].Listen(80)
	lis.Setup = func(c *Conn) {
		clientConn = c
		c.OnData = func(b []byte) { rcvd = append(rcvd, b...) }
		c.OnPeerClose = func() { c.Close() }
	}
	data := pattern(size)
	r.s.After(0, "connect", func() {
		serverConn = r.stacks[0].Connect(network.NodeID(last), 80)
		serverConn.OnEstablished = func() {
			if err := serverConn.Send(data); err != nil {
				t.Errorf("Send: %v", err)
			}
			serverConn.Close()
		}
	})
	r.s.RunUntil(deadline)
	if !bytes.Equal(rcvd, data) {
		t.Fatalf("received %d bytes, want %d (content match: %v)", len(rcvd), len(data), bytes.Equal(rcvd, data[:min(len(rcvd), len(data))]))
	}
	return rcvd, serverConn, clientConn
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestHandshakeAndTransfer1Hop(t *testing.T) {
	r := newChain(t, 2, mac.UA, phy.Rate1300k, DefaultConfig())
	_, sc, cc := runTransfer(t, r, 50_000, 60*time.Second)
	if sc.State() != StateClosed && sc.State() != StateTimeWait {
		t.Errorf("server state %v after transfer", sc.State())
	}
	if cc.Stats().BytesDelivered != 50_000 {
		t.Errorf("client delivered %d bytes", cc.Stats().BytesDelivered)
	}
	if sc.Stats().Retransmits != 0 {
		t.Errorf("clean channel caused %d retransmits", sc.Stats().Retransmits)
	}
}

func TestTransfer2HopAllSchemes(t *testing.T) {
	for _, scheme := range []mac.Scheme{mac.NA, mac.UA, mac.BA, mac.DBA} {
		scheme := scheme
		t.Run(scheme.Name(), func(t *testing.T) {
			r := newChain(t, 3, scheme, phy.Rate1300k, DefaultConfig())
			_, _, cc := runTransfer(t, r, 100_000, 120*time.Second)
			if cc.Stats().BytesDelivered != 100_000 {
				t.Errorf("%s: delivered %d", scheme.Name(), cc.Stats().BytesDelivered)
			}
		})
	}
}

func TestBAClassifiesAcksOverTheAir(t *testing.T) {
	r := newChain(t, 3, mac.BA, phy.Rate1300k, DefaultConfig())
	runTransfer(t, r, 100_000, 120*time.Second)
	// The client originates pure ACKs; under BA they must leave through
	// the broadcast queue, and the relay must re-classify them.
	if a := r.nodes[2].Stats().AcksBcast; a == 0 {
		t.Error("client sent no ACKs via the broadcast queue")
	}
	if a := r.nodes[1].Stats().AcksBcast; a == 0 {
		t.Error("relay did not re-classify forwarded ACKs")
	}
	// And the relay actually put subframes in broadcast portions.
	if c := r.nodes[1].MAC().Counters(); c.BroadcastSubTx == 0 {
		t.Error("relay sent no broadcast subframes under BA")
	}
}

func TestNAAcksStayUnicast(t *testing.T) {
	r := newChain(t, 3, mac.NA, phy.Rate1300k, DefaultConfig())
	runTransfer(t, r, 50_000, 120*time.Second)
	if a := r.nodes[2].Stats().AcksBcast; a != 0 {
		t.Errorf("NA classified %d ACKs as broadcasts", a)
	}
	if c := r.nodes[1].MAC().Counters(); c.BroadcastSubTx != 0 {
		t.Error("NA relay used broadcast portions")
	}
}

func TestTransferSurvivesLossyLink(t *testing.T) {
	// 12.5 dB SNR: QPSK data frames fail often (FER ~60%), control frames
	// at BPSK survive. MAC retries mask most loss; TCP recovers the rest.
	r := newChain(t, 2, mac.UA, phy.Rate1300k, DefaultConfig())
	r.med.SetSNR(0, 1, 12.5)
	_, sc, _ := runTransfer(t, r, 30_000, 300*time.Second)
	if sc.Stats().Retransmits == 0 && r.nodes[0].MAC().Counters().Retries == 0 {
		t.Error("lossy link produced no retries at any layer — SNR model suspect")
	}
}

func TestTransferSurvivesAckLoss(t *testing.T) {
	// BA carries ACKs unacknowledged in broadcast portions; degrade the
	// reverse path so some die. Cumulative ACKs must still complete the
	// transfer.
	r := newChain(t, 2, mac.BA, phy.Rate1300k, DefaultConfig())
	r.med.SetSNR(0, 1, 15) // borderline: long data frames + some ACK loss
	_, _, cc := runTransfer(t, r, 30_000, 300*time.Second)
	if cc.Stats().BytesDelivered != 30_000 {
		t.Error("transfer incomplete under ACK loss")
	}
}

func TestDelayedAckReducesAckCount(t *testing.T) {
	cfgEvery := DefaultConfig()
	r1 := newChain(t, 2, mac.UA, phy.Rate1300k, cfgEvery)
	_, _, cc1 := runTransfer(t, r1, 60_000, 120*time.Second)

	cfgDel := DefaultConfig()
	cfgDel.DelayedAck = true
	r2 := newChain(t, 2, mac.UA, phy.Rate1300k, cfgDel)
	_, _, cc2 := runTransfer(t, r2, 60_000, 120*time.Second)

	if cc2.Stats().PureAcksSent >= cc1.Stats().PureAcksSent {
		t.Errorf("delayed ACK sent %d pure ACKs, every-segment sent %d",
			cc2.Stats().PureAcksSent, cc1.Stats().PureAcksSent)
	}
}

func TestConnAbortsWhenPeerVanishes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTimeouts = 3
	cfg.MinRTO = 50 * time.Millisecond
	r := newChain(t, 2, mac.UA, phy.Rate1300k, cfg)
	var sc *Conn
	closed := false
	r.s.After(0, "connect", func() {
		sc = r.stacks[0].Connect(1, 80) // nothing listens; SYN black-holed
		sc.OnClose = func() { closed = true }
	})
	r.s.RunUntil(120 * time.Second)
	if !closed {
		t.Fatalf("connection to void never aborted (state %v)", sc.State())
	}
}

// ---- white-box reassembly and congestion tests ----

// loopPair wires two stacks back-to-back with a zero-loss instant pipe.
func loopPair(t *testing.T) (*sim.Scheduler, *Stack, *Stack) {
	t.Helper()
	s := sim.NewScheduler(5)
	med := medium.New(s, phy.DefaultParams(), 2)
	mkStack := func(i int) *Stack {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(s, med, medium.NodeID(i), mac.DefaultOptions(mac.UA, phy.Rate2600k), node.Bind())
		node.AttachMAC(m)
		node.AddRoute(network.NodeID(1-i), network.NodeID(1-i))
		return NewStack(s, node, DefaultConfig())
	}
	a, b := mkStack(0), mkStack(1)
	// Instant, reliable delivery: bypass the air entirely.
	a.sendOverride = func(peer network.NodeID, seg *Segment) error {
		m := seg.Marshal()
		s.After(500*time.Microsecond, "pipeAB", func() {
			b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: m})
		})
		return nil
	}
	b.sendOverride = func(peer network.NodeID, seg *Segment) error {
		m := seg.Marshal()
		s.After(500*time.Microsecond, "pipeBA", func() {
			a.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 1, Dst: 0, Payload: m})
		})
		return nil
	}
	return s, a, b
}

func TestReassemblyOutOfOrder(t *testing.T) {
	s, a, b := loopPair(t)
	var rcvd []byte
	var cc *Conn
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) {
		cc = c
		c.OnData = func(p []byte) { rcvd = append(rcvd, p...) }
	}
	var sc *Conn
	s.After(0, "go", func() { sc = a.Connect(1, 80) })
	s.RunUntil(time.Second)
	if sc.State() != StateEstablished {
		t.Fatalf("handshake failed: %v", sc.State())
	}
	// Inject data segments out of order, directly.
	seg2 := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: sc.sndNxt + 5, Ack: sc.rcvNxt,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: []byte("WORLD")}
	seg1 := &Segment{SrcPort: sc.localPort, DstPort: 80, Seq: sc.sndNxt, Ack: sc.rcvNxt,
		Flags: FlagACK | FlagPSH, Window: 65535, Payload: []byte("HELLO")}
	s.After(time.Millisecond, "ooo", func() {
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: seg2.Marshal()})
		b.onPacket(network.Packet{Proto: network.ProtoTCP, Src: 0, Dst: 1, Payload: seg1.Marshal()})
	})
	s.RunUntil(2 * time.Second)
	if string(rcvd) != "HELLOWORLD" {
		t.Fatalf("reassembled %q, want HELLOWORLD", rcvd)
	}
	if cc.Stats().OutOfOrder != 1 {
		t.Errorf("OutOfOrder = %d, want 1", cc.Stats().OutOfOrder)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	s, a, b := loopPair(t)
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) { c.OnData = func([]byte) {} }
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() { _ = sc.Send(pattern(60_000)) }
	})
	s.RunUntil(10 * time.Second)
	// With no loss, cwnd must have grown well beyond the initial value.
	if sc.Cwnd() <= 2*sc.cfg.MSS {
		t.Errorf("cwnd never grew: %d", sc.Cwnd())
	}
	if sc.Stats().BytesAcked != 60_000 {
		t.Errorf("acked %d of 60000", sc.Stats().BytesAcked)
	}
}

func TestFastRetransmitOnDupAcks(t *testing.T) {
	s, a, b := loopPair(t)
	// Drop the 8th data segment: by then slow start has opened cwnd far
	// enough that the segments behind the hole generate 3+ dup ACKs.
	dataCount := 0
	dropped := false
	orig := a.sendOverride
	a.sendOverride = func(peer network.NodeID, seg *Segment) error {
		if len(seg.Payload) > 0 {
			dataCount++
			if dataCount == 8 && !dropped {
				dropped = true
				return nil // swallowed
			}
		}
		return orig(peer, seg)
	}
	var rcvd int
	lis := b.Listen(80)
	lis.Setup = func(c *Conn) { c.OnData = func(p []byte) { rcvd += len(p) } }
	var sc *Conn
	s.After(0, "go", func() {
		sc = a.Connect(1, 80)
		sc.OnEstablished = func() { _ = sc.Send(pattern(40_000)) }
	})
	s.RunUntil(30 * time.Second)
	if rcvd != 40_000 {
		t.Fatalf("delivered %d of 40000", rcvd)
	}
	if sc.Stats().FastRetransmits == 0 {
		t.Errorf("loss recovered without fast retransmit (timeouts=%d)", sc.Stats().Timeouts)
	}
}

func TestRTTEstimator(t *testing.T) {
	c := &Conn{cfg: DefaultConfig()}
	c.updateRTT(100 * time.Millisecond)
	if c.srtt != 100*time.Millisecond {
		t.Fatalf("first sample srtt = %v", c.srtt)
	}
	if c.rto < c.cfg.MinRTO {
		t.Fatalf("rto %v below MinRTO", c.rto)
	}
	prev := c.srtt
	c.updateRTT(200 * time.Millisecond)
	if c.srtt <= prev {
		t.Error("srtt did not move toward larger sample")
	}
	// Convergence: many identical samples drive srtt to the sample.
	for i := 0; i < 50; i++ {
		c.updateRTT(80 * time.Millisecond)
	}
	if d := c.srtt - 80*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("srtt did not converge: %v", c.srtt)
	}
}

func TestConnStateString(t *testing.T) {
	for st := StateClosed; st <= StateTimeWait; st++ {
		if st.String() == "" {
			t.Error("empty state name")
		}
	}
}

// The 8-bytes-per-step checksum must equal the word-at-a-time RFC 1071 sum
// for every length and alignment (ones-complement addition is
// width-invariant; this pins the unrolled implementation to the reference).
func TestChecksumMatchesReference(t *testing.T) {
	ref := func(b []byte) uint16 {
		var sum uint32
		for i := 0; i+1 < len(b); i += 2 {
			sum += uint32(b[i])<<8 | uint32(b[i+1])
		}
		if len(b)%2 == 1 {
			sum += uint32(b[len(b)-1]) << 8
		}
		for sum>>16 != 0 {
			sum = sum&0xffff + sum>>16
		}
		return ^uint16(sum)
	}
	rng := rand.New(rand.NewSource(11))
	for n := 0; n < 70; n++ {
		b := make([]byte, n)
		for trial := 0; trial < 20; trial++ {
			rng.Read(b)
			if got, want := checksum(b), ref(b); got != want {
				t.Fatalf("checksum(len %d) = %#x, reference %#x (bytes %x)", n, got, want, b)
			}
		}
	}
	// All-ones input exercises maximal carry folding.
	ones := bytes.Repeat([]byte{0xff}, 61)
	if got, want := checksum(ones), ref(ones); got != want {
		t.Fatalf("checksum(ones) = %#x, reference %#x", got, want)
	}
}
