package tcp

import (
	"fmt"
	"sort"

	"aggmac/internal/network"
	"aggmac/internal/sim"
)

// connKey demultiplexes segments to connections.
type connKey struct {
	peer       network.NodeID
	localPort  uint16
	remotePort uint16
}

// Listener accepts inbound connections on a port.
type Listener struct {
	port uint16
	// OnConn fires when a connection completes the handshake.
	OnConn func(*Conn)
	// Setup customizes a half-open connection (callbacks, config) before
	// the SYN-ACK is sent.
	Setup func(*Conn)
}

// Stack is one node's TCP entity: it owns the connections and plugs the
// pure-ACK classifier into the network layer.
type Stack struct {
	sched     *sim.Scheduler
	node      *network.Node
	cfg       Config
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16

	// retired accumulates the counters of connections removed from the
	// stack (closed or aborted), so Totals never loses history.
	retired Stats

	sendOverride func(network.NodeID, *Segment) error // tests only
}

// NewStack attaches a TCP entity to the node. It registers the protocol
// handler and the cross-layer classifier (the MAC only uses it when the
// scheme says so).
func NewStack(sched *sim.Scheduler, node *network.Node, cfg Config) *Stack {
	st := &Stack{
		sched:     sched,
		node:      node,
		cfg:       cfg,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  10000,
	}
	node.Handle(network.ProtoTCP, st.onPacket)
	node.SetAckClassifier(IsPureAck)
	return st
}

// Config returns the stack's default connection config.
func (st *Stack) Config() Config { return st.cfg }

// Listen accepts connections on port.
func (st *Stack) Listen(port uint16) *Listener {
	l := &Listener{port: port}
	st.listeners[port] = l
	return l
}

// Connect opens a connection to dst:port and sends the SYN.
func (st *Stack) Connect(dst network.NodeID, port uint16) *Conn {
	st.nextPort++
	c := st.newConn(dst, st.nextPort, port)
	c.state = StateSynSent
	c.iss = uint32(st.sched.Rand().Int63())
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.bufBase = c.iss + 1
	_ = c.emit(FlagSYN, c.iss, nil)
	c.armRTO()
	return c
}

func (st *Stack) newConn(peer network.NodeID, localPort, remotePort uint16) *Conn {
	c := &Conn{
		stack:      st,
		cfg:        st.cfg,
		peer:       peer,
		localPort:  localPort,
		remotePort: remotePort,
		reasm:      make(map[uint32][]byte),
		rto:        st.cfg.InitialRTO,
		peerWnd:    65535,
	}
	c.cwnd = float64(st.cfg.InitialCwndSegs * st.cfg.MSS)
	c.ssthresh = float64(int(st.cfg.Window))
	c.rtoFn = c.onRTO
	c.delAckFn = c.flushDelAck
	st.conns[connKey{peer, localPort, remotePort}] = c
	return c
}

func (st *Stack) drop(c *Conn) {
	st.retired.accumulate(c.stats)
	delete(st.conns, connKey{c.peer, c.localPort, c.remotePort})
}

// Totals returns the stack's cumulative counters: every retired
// connection plus every live one. The live sum iterates the connection
// map, but all fields are integers, so the result cannot depend on map
// iteration order — safe for deterministic telemetry sampling.
func (st *Stack) Totals() Stats {
	t := st.retired
	for _, c := range st.conns {
		t.accumulate(c.stats)
	}
	return t
}

// OpenConns reports the number of live connections and the sum of their
// congestion windows in bytes (an integer sum, order-independent).
func (st *Stack) OpenConns() (n, cwndBytes int) {
	for _, c := range st.conns {
		n++
		cwndBytes += int(c.cwnd)
	}
	return n, cwndBytes
}

// accumulate adds o's counters into s.
func (s *Stats) accumulate(o Stats) {
	s.SegsSent += o.SegsSent
	s.SegsRcvd += o.SegsRcvd
	s.BytesSent += o.BytesSent
	s.BytesAcked += o.BytesAcked
	s.BytesDelivered += o.BytesDelivered
	s.AcksSent += o.AcksSent
	s.PureAcksSent += o.PureAcksSent
	s.Retransmits += o.Retransmits
	s.FastRetransmits += o.FastRetransmits
	s.Timeouts += o.Timeouts
	s.DupAcksRcvd += o.DupAcksRcvd
	s.OutOfOrder += o.OutOfOrder
	s.SendBlocked += o.SendBlocked
}

// Abort kills every connection in place, as a node crash would: timers
// stopped, state forced closed, no FIN or RST on the wire and no OnClose
// callbacks — the peer finds out the hard way, through retransmission
// timeouts. Listeners survive (a recovered node accepts new connections).
// Connections are aborted in sorted key order so the (callback-free) walk
// stays deterministic regardless of map iteration order. It returns the
// number of connections aborted.
func (st *Stack) Abort() int {
	if len(st.conns) == 0 {
		return 0
	}
	keys := make([]connKey, 0, len(st.conns))
	for k := range st.conns {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.peer != b.peer {
			return a.peer < b.peer
		}
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		return a.remotePort < b.remotePort
	})
	for _, k := range keys {
		c := st.conns[k]
		c.rtxTimer.Stop()
		c.delAckT.Stop()
		c.delAckN = 0
		// StateClosed makes every still-scheduled event on this connection
		// a guarded no-op (onRTO, the time-wait expiry, flushDelAck).
		c.state = StateClosed
		st.retired.accumulate(c.stats)
		delete(st.conns, k)
	}
	return len(keys)
}

// send marshals a segment into a network packet. Tests may intercept it.
func (st *Stack) send(peer network.NodeID, seg *Segment) error {
	if st.sendOverride != nil {
		return st.sendOverride(peer, seg)
	}
	return st.node.Send(network.Packet{
		Proto:   network.ProtoTCP,
		Src:     st.node.ID(),
		Dst:     peer,
		Payload: seg.Marshal(),
	})
}

// onPacket demultiplexes an inbound TCP packet.
func (st *Stack) onPacket(pkt network.Packet) {
	seg, err := DecodeSegment(pkt.Payload)
	if err != nil {
		return
	}
	key := connKey{pkt.Src, seg.DstPort, seg.SrcPort}
	if c, ok := st.conns[key]; ok {
		c.onSegment(&seg)
		return
	}
	// New connection? Only a SYN to a listening port qualifies.
	if seg.Flags&FlagSYN != 0 && seg.Flags&FlagACK == 0 {
		l, ok := st.listeners[seg.DstPort]
		if !ok {
			return
		}
		c := st.newConn(pkt.Src, seg.DstPort, seg.SrcPort)
		c.state = StateSynReceived
		c.iss = uint32(st.sched.Rand().Int63())
		c.sndUna = c.iss
		c.sndNxt = c.iss + 1
		c.bufBase = c.iss + 1
		c.rcvNxt = seg.Seq + 1
		c.peerWnd = seg.Window
		if l.Setup != nil {
			l.Setup(c)
		}
		established := c.OnEstablished
		c.OnEstablished = func() {
			if l.OnConn != nil {
				l.OnConn(c)
			}
			if established != nil {
				established()
			}
		}
		_ = c.emit(FlagSYN|FlagACK, c.iss, nil)
		c.armRTO()
	}
}

// String identifies the stack in traces.
func (st *Stack) String() string { return fmt.Sprintf("tcp(stack %d)", st.node.ID()) }
