// Package udp provides the datagram transport and the controllable-rate
// traffic application the paper uses for its UDP experiments (§5: "an
// application that simply sent UDP packets at a controllable rate",
// sized so each data packet becomes an 1140-byte MAC frame).
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/network"
	"aggmac/internal/sim"
)

// HeaderLen is the UDP header size.
const HeaderLen = 8

// PaperFrameBytes is the MAC frame size of the paper's UDP data packets.
const PaperFrameBytes = 1140

// PaperPayloadBytes is the application payload that yields an 1140-byte MAC
// frame through this stack's headers.
const PaperPayloadBytes = PaperFrameBytes - frame.SubframeOverhead - network.HeaderLen - HeaderLen

// ErrBadDatagram reports an undecodable datagram.
var ErrBadDatagram = errors.New("udp: malformed datagram")

// Datagram is one UDP datagram.
type Datagram struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Marshal serializes the datagram.
func (d *Datagram) Marshal() []byte {
	b := make([]byte, HeaderLen+len(d.Payload))
	binary.BigEndian.PutUint16(b[0:2], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], d.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(HeaderLen+len(d.Payload)))
	copy(b[HeaderLen:], d.Payload)
	binary.BigEndian.PutUint16(b[6:8], checksum(b))
	return b
}

// Decode parses and verifies a datagram.
func Decode(b []byte) (Datagram, error) {
	var d Datagram
	if len(b) < HeaderLen {
		return d, fmt.Errorf("%w: %d bytes", ErrBadDatagram, len(b))
	}
	if int(binary.BigEndian.Uint16(b[4:6])) != len(b) {
		return d, fmt.Errorf("%w: length", ErrBadDatagram)
	}
	if checksum(b) != 0 {
		return d, fmt.Errorf("%w: checksum", ErrBadDatagram)
	}
	d.SrcPort = binary.BigEndian.Uint16(b[0:2])
	d.DstPort = binary.BigEndian.Uint16(b[2:4])
	d.Payload = b[HeaderLen:]
	return d, nil
}

// Endpoint is one node's UDP entity.
type Endpoint struct {
	sched *sim.Scheduler
	node  *network.Node
	ports map[uint16]func(src network.NodeID, d Datagram)
}

// NewEndpoint attaches a UDP entity to the node.
func NewEndpoint(sched *sim.Scheduler, node *network.Node) *Endpoint {
	e := &Endpoint{sched: sched, node: node, ports: make(map[uint16]func(network.NodeID, Datagram))}
	node.Handle(network.ProtoUDP, e.onPacket)
	return e
}

// Listen registers a receiver on port.
func (e *Endpoint) Listen(port uint16, fn func(src network.NodeID, d Datagram)) {
	e.ports[port] = fn
}

// Send transmits one datagram.
func (e *Endpoint) Send(dst network.NodeID, srcPort, dstPort uint16, payload []byte) error {
	d := Datagram{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
	return e.node.Send(network.Packet{
		Proto: network.ProtoUDP, Src: e.node.ID(), Dst: dst, Payload: d.Marshal(),
	})
}

func (e *Endpoint) onPacket(pkt network.Packet) {
	d, err := Decode(pkt.Payload)
	if err != nil {
		return
	}
	if fn := e.ports[d.DstPort]; fn != nil {
		fn(pkt.Src, d)
	}
}

// Sender generates UDP traffic. Two modes reproduce the paper's app:
//
//   - Paced: every Interval, enqueue Burst packets (the §6.1 "data
//     interval" that controls how much queueing builds up).
//   - Saturate (Burst == 0): keep the sender's MAC queue topped up so the
//     link runs at capacity (the §6.2 table-2 measurements).
type Sender struct {
	Endpoint     *Endpoint
	Dst          network.NodeID
	SrcPort      uint16
	DstPort      uint16
	PayloadBytes int
	Interval     time.Duration
	Burst        int
	// QueueTarget is the MAC backlog Saturate mode maintains.
	QueueTarget int

	// Timestamp embeds the send time in each payload's first 8 bytes so
	// the sink can measure one-way delay.
	Timestamp bool

	Sent    int
	Dropped int

	running bool
	timer   sim.Timer
	tickFn  func() // stable callback for the scheduler (no per-tick closure)
}

// Start begins generation; it runs until Stop.
func (s *Sender) Start() {
	if s.running {
		return
	}
	s.running = true
	if s.PayloadBytes <= 0 {
		s.PayloadBytes = PaperPayloadBytes
	}
	if s.Interval <= 0 {
		s.Interval = 5 * time.Millisecond
	}
	if s.tickFn == nil {
		s.tickFn = s.tick
	}
	if s.QueueTarget <= 0 {
		s.QueueTarget = 20
	}
	s.tick()
}

// Stop halts generation.
func (s *Sender) Stop() {
	s.running = false
	s.timer.Stop()
}

func (s *Sender) sendOne() {
	p := make([]byte, s.PayloadBytes)
	if s.Timestamp && len(p) >= 8 {
		binary.BigEndian.PutUint64(p, uint64(s.Endpoint.sched.Now()))
	}
	if err := s.Endpoint.Send(s.Dst, s.SrcPort, s.DstPort, p); err != nil {
		s.Dropped++
		return
	}
	s.Sent++
}

func (s *Sender) tick() {
	if !s.running {
		return
	}
	if s.Burst > 0 {
		for i := 0; i < s.Burst; i++ {
			s.sendOne()
		}
	} else {
		// Saturate: top the unicast queue up to the target.
		_, uq := s.Endpoint.node.MAC().QueueLen()
		for i := uq; i < s.QueueTarget; i++ {
			s.sendOne()
		}
	}
	s.timer = s.Endpoint.sched.After(s.Interval, "udp:tick", s.tickFn)
}

// Sink counts delivered datagrams on a port and measures goodput and, for
// timestamped senders, one-way delay.
type Sink struct {
	Packets int
	Bytes   int64

	sched       *sim.Scheduler
	start       sim.Time
	winStart    sim.Time
	winBytes    int64
	measureFrom sim.Time
	delays      []time.Duration
}

// maxDelaySamples caps memory for very long runs.
const maxDelaySamples = 1 << 17

// NewSink listens on port at the endpoint.
func NewSink(e *Endpoint, port uint16) *Sink {
	s := &Sink{sched: e.sched, start: e.sched.Now()}
	e.Listen(port, func(_ network.NodeID, d Datagram) {
		s.Packets++
		s.Bytes += int64(len(d.Payload))
		if e.sched.Now() >= s.measureFrom {
			s.winBytes += int64(len(d.Payload))
			if s.winStart == 0 {
				s.winStart = s.measureFrom
			}
			if len(d.Payload) >= 8 && len(s.delays) < maxDelaySamples {
				if ts := sim.Time(binary.BigEndian.Uint64(d.Payload)); ts > 0 && ts <= e.sched.Now() {
					s.delays = append(s.delays, e.sched.Now()-ts)
				}
			}
		}
	})
	return s
}

// DelayStats summarises one-way delay of timestamped datagrams.
type DelayStats struct {
	Count    int
	Mean     time.Duration
	P50, P95 time.Duration
	Max      time.Duration
}

// Delays computes delay statistics over the measurement window.
func (s *Sink) Delays() DelayStats {
	var st DelayStats
	st.Count = len(s.delays)
	if st.Count == 0 {
		return st
	}
	sorted := append([]time.Duration(nil), s.delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	st.Mean = sum / time.Duration(st.Count)
	st.P50 = sorted[st.Count/2]
	st.P95 = sorted[st.Count*95/100]
	st.Max = sorted[st.Count-1]
	return st
}

// MeasureFrom discards traffic before t from the throughput window
// (warm-up exclusion).
func (s *Sink) MeasureFrom(t sim.Time) { s.measureFrom = t }

// ThroughputMbps is application goodput over the measurement window ending
// now.
func (s *Sink) ThroughputMbps() float64 {
	dur := s.sched.Now() - s.measureFrom
	if dur <= 0 {
		return 0
	}
	return float64(s.winBytes) * 8 / dur.Seconds() / 1e6
}
