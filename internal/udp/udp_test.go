package udp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

func TestDatagramRoundTrip(t *testing.T) {
	d := Datagram{SrcPort: 9001, DstPort: 9000, Payload: []byte("datagram")}
	got, err := Decode(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != d.SrcPort || got.DstPort != d.DstPort || !bytes.Equal(got.Payload, d.Payload) {
		t.Fatalf("mangled: %+v", got)
	}
}

func TestDatagramRejectsCorruption(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: []byte("xyz")}
	b := d.Marshal()
	b[9] ^= 0x01
	if _, err := Decode(b); err == nil {
		t.Fatal("corrupted datagram decoded")
	}
	if _, err := Decode(b[:4]); err == nil {
		t.Fatal("short datagram decoded")
	}
	// Truncation changes length vs header.
	if _, err := Decode(d.Marshal()[:HeaderLen+1]); err == nil {
		t.Fatal("truncated datagram decoded")
	}
}

func TestPropertyDatagramRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		d := Datagram{SrcPort: sp, DstPort: dp, Payload: payload}
		got, err := Decode(d.Marshal())
		return err == nil && got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperPayloadSizesFrameTo1140(t *testing.T) {
	d := Datagram{SrcPort: 1, DstPort: 2, Payload: make([]byte, PaperPayloadBytes)}
	pkt := network.Packet{Proto: network.ProtoUDP, TTL: 2, Src: 0, Dst: 1, Payload: d.Marshal()}
	sf := frame.Subframe{Payload: pkt.Marshal()}
	if sf.WireSize() != PaperFrameBytes {
		t.Fatalf("UDP data subframe = %d B, paper says %d", sf.WireSize(), PaperFrameBytes)
	}
}

// rig: two nodes over the air.
func rig(t *testing.T) (*sim.Scheduler, []*Endpoint, []*network.Node) {
	t.Helper()
	s := sim.NewScheduler(17)
	med := medium.New(s, phy.DefaultParams(), 2)
	var eps []*Endpoint
	var nodes []*network.Node
	for i := 0; i < 2; i++ {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(s, med, medium.NodeID(i), mac.DefaultOptions(mac.UA, phy.Rate2600k), node.Bind())
		node.AttachMAC(m)
		node.AddRoute(network.NodeID(1-i), network.NodeID(1-i))
		eps = append(eps, NewEndpoint(s, node))
		nodes = append(nodes, node)
	}
	return s, eps, nodes
}

func TestEndpointSendReceive(t *testing.T) {
	s, eps, _ := rig(t)
	var got []Datagram
	var from network.NodeID
	eps[1].Listen(9000, func(src network.NodeID, d Datagram) {
		got = append(got, d)
		from = src
	})
	s.After(0, "send", func() {
		if err := eps[0].Send(1, 9001, 9000, []byte("ping")); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	s.Run()
	if len(got) != 1 || string(got[0].Payload) != "ping" || from != 0 {
		t.Fatalf("delivery: %+v from %d", got, from)
	}
}

func TestEndpointPortFiltering(t *testing.T) {
	s, eps, _ := rig(t)
	hits := 0
	eps[1].Listen(9000, func(network.NodeID, Datagram) { hits++ })
	s.After(0, "send", func() {
		_ = eps[0].Send(1, 9001, 9999, []byte("wrong port"))
		_ = eps[0].Send(1, 9001, 9000, []byte("right port"))
	})
	s.Run()
	if hits != 1 {
		t.Fatalf("port filter passed %d datagrams, want 1", hits)
	}
}

func TestSenderPacedMode(t *testing.T) {
	s, eps, _ := rig(t)
	sink := NewSink(eps[1], 9000)
	snd := &Sender{Endpoint: eps[0], Dst: 1, SrcPort: 9001, DstPort: 9000,
		PayloadBytes: 100, Interval: 10 * time.Millisecond, Burst: 2}
	s.After(0, "start", func() { snd.Start() })
	s.RunUntil(105 * time.Millisecond)
	snd.Stop()
	s.RunUntil(200 * time.Millisecond)
	// 11 ticks (t=0..100ms) x 2 packets.
	if snd.Sent < 20 || snd.Sent > 24 {
		t.Fatalf("paced sender sent %d, want ~22", snd.Sent)
	}
	if sink.Packets != snd.Sent {
		t.Fatalf("sink got %d of %d", sink.Packets, snd.Sent)
	}
}

func TestSenderSaturateMode(t *testing.T) {
	s, eps, nodes := rig(t)
	sink := NewSink(eps[1], 9000)
	snd := &Sender{Endpoint: eps[0], Dst: 1, SrcPort: 9001, DstPort: 9000}
	s.After(0, "start", func() { snd.Start() })
	s.RunUntil(2 * time.Second)
	snd.Stop()
	s.RunUntil(3 * time.Second)
	if sink.Packets < 100 {
		t.Fatalf("saturate mode delivered only %d packets in 2s", sink.Packets)
	}
	// The queue was kept fed: the MAC never starved for long. 1-hop at
	// 2.6 Mbps moves ~2.3+ Mbps of 1140B frames.
	if tput := float64(sink.Bytes) * 8 / 2 / 1e6; tput < 1.5 {
		t.Fatalf("saturated throughput %.2f Mbps too low", tput)
	}
	if d := nodes[0].MAC().Counters().QueueDrops; d != 0 {
		t.Errorf("saturate mode overflowed the MAC queue %d times", d)
	}
}

func TestSinkMeasurementWindow(t *testing.T) {
	s, eps, _ := rig(t)
	sink := NewSink(eps[1], 9000)
	sink.MeasureFrom(time.Second)
	snd := &Sender{Endpoint: eps[0], Dst: 1, SrcPort: 9001, DstPort: 9000,
		PayloadBytes: 1000, Interval: 50 * time.Millisecond, Burst: 1}
	s.After(0, "start", func() { snd.Start() })
	s.RunUntil(2 * time.Second)
	snd.Stop()
	if sink.Packets == 0 {
		t.Fatal("nothing delivered")
	}
	// Window excludes the first second: winBytes < total bytes.
	if sink.winBytes >= sink.Bytes {
		t.Fatalf("warmup not excluded: win=%d total=%d", sink.winBytes, sink.Bytes)
	}
	if tput := sink.ThroughputMbps(); tput <= 0 {
		t.Fatalf("throughput %v", tput)
	}
}

func TestDelayMeasurement(t *testing.T) {
	s, eps, _ := rig(t)
	sink := NewSink(eps[1], 9000)
	snd := &Sender{Endpoint: eps[0], Dst: 1, SrcPort: 9001, DstPort: 9000,
		PayloadBytes: 1000, Interval: 20 * time.Millisecond, Burst: 1, Timestamp: true}
	s.After(0, "start", func() { snd.Start() })
	s.RunUntil(2 * time.Second)
	snd.Stop()
	st := sink.Delays()
	if st.Count < 90 {
		t.Fatalf("only %d delay samples", st.Count)
	}
	// 1-hop 1000B at 2.6 Mbps: ~3-4 ms per exchange including overheads.
	if st.Mean < time.Millisecond || st.Mean > 20*time.Millisecond {
		t.Errorf("mean delay %v implausible", st.Mean)
	}
	if st.P50 > st.P95 || st.P95 > st.Max {
		t.Errorf("percentiles out of order: %v %v %v", st.P50, st.P95, st.Max)
	}
}

func TestDelayGrowsWithQueueing(t *testing.T) {
	run := func(burst int) time.Duration {
		s, eps, _ := rig(t)
		sink := NewSink(eps[1], 9000)
		snd := &Sender{Endpoint: eps[0], Dst: 1, SrcPort: 9001, DstPort: 9000,
			PayloadBytes: 1000, Interval: 50 * time.Millisecond, Burst: burst, Timestamp: true}
		s.After(0, "start", func() { snd.Start() })
		s.RunUntil(3 * time.Second)
		snd.Stop()
		return sink.Delays().Mean
	}
	light, heavy := run(1), run(10)
	if heavy <= light {
		t.Fatalf("queueing did not raise delay: burst=1 %v vs burst=10 %v", light, heavy)
	}
}
