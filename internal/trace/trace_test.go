package trace

import (
	"strings"
	"testing"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

func TestTracerCapturesExchange(t *testing.T) {
	s := sim.NewScheduler(1)
	med := medium.New(s, phy.DefaultParams(), 2)
	var sb strings.Builder
	tr := New(&sb)
	med.SetObserver(tr.Observe)

	opts := mac.DefaultOptions(mac.UA, phy.Rate1300k)
	m0 := mac.New(s, med, 0, opts, func(frame.DecodedSubframe, bool) {})
	mac.New(s, med, 1, opts, func(frame.DecodedSubframe, bool) {})
	s.After(0, "enq", func() {
		m0.Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
			Payload: make([]byte, 1000)}, false)
	})
	s.Run()

	out := sb.String()
	// A full RTS/CTS/DATA/ACK exchange must be visible.
	for _, want := range []string{"RTS", "CTS", "tx-agg", "ACK", "0b+1u"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if tr.Events() < 4 {
		t.Errorf("only %d events traced", tr.Events())
	}
}

func TestTracerFilter(t *testing.T) {
	s := sim.NewScheduler(1)
	med := medium.New(s, phy.DefaultParams(), 2)
	var sb strings.Builder
	tr := New(&sb)
	tr.Filter = OnlyTransmissions
	med.SetObserver(tr.Observe)

	opts := mac.DefaultOptions(mac.UA, phy.Rate1300k)
	m0 := mac.New(s, med, 0, opts, func(frame.DecodedSubframe, bool) {})
	mac.New(s, med, 1, opts, func(frame.DecodedSubframe, bool) {})
	s.After(0, "enq", func() {
		m0.Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
			Payload: make([]byte, 500)}, false)
	})
	s.Run()
	if strings.Contains(sb.String(), "rx-") {
		t.Error("filter let reception events through")
	}
	if !strings.Contains(sb.String(), "tx-agg") {
		t.Error("filter dropped transmissions")
	}
}

func TestFormatCoversAllKinds(t *testing.T) {
	kinds := []string{"tx-ctrl", "tx-agg", "rx-ctrl", "rx-agg", "collision", "ctrl-noise", "half-duplex"}
	for _, k := range kinds {
		line := Format(medium.Event{Kind: k, Src: 1, Dst: 2, Info: "x"})
		if line == "" || !strings.Contains(line, "node1") {
			t.Errorf("kind %q formats badly: %q", k, line)
		}
	}
}
