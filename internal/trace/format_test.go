package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"aggmac/internal/frame"
	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

// sprintfFormat is the fmt-based reference the zero-alloc formatter
// replaced; AppendFormat must reproduce it byte for byte.
func sprintfFormat(ev medium.Event) string {
	at := time.Duration(ev.At)
	switch ev.Kind {
	case "tx-ctrl", "tx-agg":
		return fmt.Sprintf("%12v  node%-2d  %-8s %-24s air=%v",
			at, int(ev.Src), ev.Kind, ev.Info, ev.Dur)
	case "collision":
		return fmt.Sprintf("%12v  node%-2d  COLLISION at node%d", at, int(ev.Src), int(ev.Dst))
	case "ctrl-noise":
		return fmt.Sprintf("%12v  node%-2d  ctrl lost to noise at node%d", at, int(ev.Src), int(ev.Dst))
	case "half-duplex":
		return fmt.Sprintf("%12v  node%-2d  missed while node%d was transmitting", at, int(ev.Src), int(ev.Dst))
	default:
		return fmt.Sprintf("%12v  node%-2d  %-8s -> node%-2d %s",
			at, int(ev.Src), ev.Kind, int(ev.Dst), ev.Info)
	}
}

func randomEvents(n int) []medium.Event {
	rng := rand.New(rand.NewSource(7))
	kinds := []string{"tx-ctrl", "tx-agg", "rx-ctrl", "rx-agg", "collision", "ctrl-noise", "half-duplex"}
	infos := []string{"", "x", "RTS -> node7", "0b+3u 4112B", "a-very-long-info-string-over-24-chars"}
	evs := make([]medium.Event, n)
	for i := range evs {
		evs[i] = medium.Event{
			At:   time.Duration(rng.Int63n(int64(20 * time.Minute))),
			Kind: kinds[rng.Intn(len(kinds))],
			Src:  medium.NodeID(rng.Intn(120)),
			Dst:  medium.NodeID(rng.Intn(120) - 1),
			Dur:  time.Duration(rng.Int63n(int64(10 * time.Millisecond))),
			Info: infos[rng.Intn(len(infos))],
		}
	}
	return evs
}

func TestAppendFormatMatchesSprintf(t *testing.T) {
	for _, ev := range randomEvents(500) {
		if got, want := Format(ev), sprintfFormat(ev); got != want {
			t.Fatalf("Format mismatch for %+v:\n got %q\nwant %q", ev, got, want)
		}
	}
}

func TestAppendDurationMatchesString(t *testing.T) {
	cases := []time.Duration{
		0, 1, 999, time.Microsecond, 1500, time.Millisecond,
		999999999, time.Second, 61 * time.Second, 90 * time.Minute,
		3*time.Hour + 4*time.Minute + 5*time.Second + 600*time.Millisecond,
		-42 * time.Millisecond, -time.Hour,
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		cases = append(cases, time.Duration(rng.Int63n(int64(100*time.Hour))))
		cases = append(cases, time.Duration(rng.Int63n(int64(time.Second))))
	}
	for _, d := range cases {
		if got := string(appendDuration(nil, d)); got != d.String() {
			t.Fatalf("appendDuration(%d) = %q, want %q", int64(d), got, d.String())
		}
	}
}

func TestAppendFormatDoesNotAllocate(t *testing.T) {
	evs := randomEvents(64)
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		for _, ev := range evs {
			buf = AppendFormat(buf[:0], ev)
		}
	})
	if allocs != 0 {
		t.Errorf("AppendFormat allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkTraceFormat(b *testing.B) {
	ev := medium.Event{
		At:   1234567 * time.Microsecond,
		Kind: "tx-agg",
		Src:  7,
		Dst:  -1,
		Dur:  3 * time.Millisecond,
		Info: "0b+3u 4112B",
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendFormat(buf[:0], ev)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = AppendFormat(buf[:0], ev)
	}); allocs != 0 {
		b.Fatalf("AppendFormat allocates %.1f times per op, want 0", allocs)
	}
}

func TestJSONTracerCapturesExchange(t *testing.T) {
	s := sim.NewScheduler(1)
	med := medium.New(s, phy.DefaultParams(), 2)
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	med.SetObserver(tr.Observe)

	opts := mac.DefaultOptions(mac.UA, phy.Rate1300k)
	m0 := mac.New(s, med, 0, opts, func(frame.DecodedSubframe, bool) {})
	mac.New(s, med, 1, opts, func(frame.DecodedSubframe, bool) {})
	s.After(0, "enq", func() {
		m0.Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
			Payload: make([]byte, 1000)}, false)
	})
	s.Run()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != tr.Events() {
		t.Fatalf("%d lines written for %d events", len(lines), tr.Events())
	}
	kinds := map[string]bool{}
	for _, line := range lines {
		var ev jsonEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if ev.TNS < 0 || ev.Kind == "" {
			t.Fatalf("malformed event %+v", ev)
		}
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"tx-ctrl", "tx-agg", "rx-ctrl", "rx-agg"} {
		if !kinds[want] {
			t.Errorf("JSONL trace missing kind %q", want)
		}
	}
}

func TestJSONTracerFilter(t *testing.T) {
	var buf bytes.Buffer
	tr := NewJSON(&buf)
	tr.Filter = OnlyTransmissions
	tr.Observe(medium.Event{Kind: "rx-agg", Src: 0, Dst: 1})
	tr.Observe(medium.Event{Kind: "tx-agg", Src: 0, Dst: -1})
	if tr.Events() != 1 {
		t.Fatalf("filter kept %d events, want 1", tr.Events())
	}
	if strings.Contains(buf.String(), "rx-agg") {
		t.Error("filter let reception events through")
	}
}

func TestJSONTracerDeterministicBytes(t *testing.T) {
	run := func() []byte {
		s := sim.NewScheduler(1)
		med := medium.New(s, phy.DefaultParams(), 2)
		var buf bytes.Buffer
		tr := NewJSON(&buf)
		med.SetObserver(tr.Observe)
		opts := mac.DefaultOptions(mac.UA, phy.Rate1300k)
		m0 := mac.New(s, med, 0, opts, func(frame.DecodedSubframe, bool) {})
		mac.New(s, med, 1, opts, func(frame.DecodedSubframe, bool) {})
		s.After(0, "enq", func() {
			m0.Enqueue(mac.Outgoing{Dst: frame.NodeAddr(1), Src: frame.NodeAddr(0),
				Payload: make([]byte, 700)}, false)
		})
		s.Run()
		return buf.Bytes()
	}
	if !bytes.Equal(run(), run()) {
		t.Error("JSONL trace bytes differ across identical runs")
	}
}
