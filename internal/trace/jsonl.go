// JSON Lines rendering of channel events — the machine-readable sibling
// of the text tracer. It shares the medium.Observer contract and Filter
// semantics, so the CLIs switch between the two with -trace-format; the
// stream is deterministic for a given run (events carry simulated time
// only) and safe to diff across repeats.
package trace

import (
	"encoding/json"
	"io"
	"sync"

	"aggmac/internal/medium"
)

// jsonEvent is the stable wire shape of one traced event. All times are
// simulated nanoseconds.
type jsonEvent struct {
	TNS   int64  `json:"t_ns"`
	Kind  string `json:"kind"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Info  string `json:"info,omitempty"`
}

// JSONTracer writes one JSON object per observed event.
type JSONTracer struct {
	mu  sync.Mutex
	enc *json.Encoder

	// Filter drops events for which it returns false (nil = keep all).
	Filter func(medium.Event) bool

	events int
}

// NewJSON creates a JSONL tracer writing to w.
func NewJSON(w io.Writer) *JSONTracer {
	return &JSONTracer{enc: json.NewEncoder(w)}
}

// Events returns the number of events written.
func (t *JSONTracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Observe is the medium.Observer entry point.
func (t *JSONTracer) Observe(ev medium.Event) {
	if t.Filter != nil && !t.Filter(ev) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	t.enc.Encode(jsonEvent{
		TNS:   int64(ev.At),
		Kind:  ev.Kind,
		Src:   int(ev.Src),
		Dst:   int(ev.Dst),
		DurNS: int64(ev.Dur),
		Info:  ev.Info,
	})
}
