// Package trace renders channel events into a human-readable timeline —
// the simulator's equivalent of a monitor-mode packet capture. Attach a
// Tracer to a medium to see every RTS/CTS/aggregate/ACK on the air, with
// collisions and noise losses called out.
//
//	tr := trace.New(os.Stdout)
//	med.SetObserver(tr.Observe)
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"aggmac/internal/medium"
)

// Tracer formats events to a writer.
type Tracer struct {
	mu sync.Mutex
	w  io.Writer

	// Filter drops events for which it returns false (nil = keep all).
	Filter func(medium.Event) bool

	events int
}

// New creates a tracer writing to w.
func New(w io.Writer) *Tracer { return &Tracer{w: w} }

// Events returns the number of events written.
func (t *Tracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Observe is the medium.Observer entry point.
func (t *Tracer) Observe(ev medium.Event) {
	if t.Filter != nil && !t.Filter(ev) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	fmt.Fprintln(t.w, Format(ev))
}

// Format renders one event as a fixed-layout line.
func Format(ev medium.Event) string {
	at := time.Duration(ev.At)
	switch ev.Kind {
	case "tx-ctrl", "tx-agg":
		return fmt.Sprintf("%12v  node%-2d  %-8s %-24s air=%v",
			at, int(ev.Src), ev.Kind, ev.Info, ev.Dur)
	case "collision":
		return fmt.Sprintf("%12v  node%-2d  COLLISION at node%d", at, int(ev.Src), int(ev.Dst))
	case "ctrl-noise":
		return fmt.Sprintf("%12v  node%-2d  ctrl lost to noise at node%d", at, int(ev.Src), int(ev.Dst))
	case "half-duplex":
		return fmt.Sprintf("%12v  node%-2d  missed while node%d was transmitting", at, int(ev.Src), int(ev.Dst))
	default:
		return fmt.Sprintf("%12v  node%-2d  %-8s -> node%-2d %s",
			at, int(ev.Src), ev.Kind, int(ev.Dst), ev.Info)
	}
}

// OnlyTransmissions is a Filter keeping the channel-occupancy view.
func OnlyTransmissions(ev medium.Event) bool {
	return ev.Kind == "tx-ctrl" || ev.Kind == "tx-agg" || ev.Kind == "collision"
}
