// Package trace renders channel events into a timeline — the simulator's
// equivalent of a monitor-mode packet capture. Attach a Tracer to a
// medium to see every RTS/CTS/aggregate/ACK on the air, with collisions
// and noise losses called out; NewJSON builds the machine-readable
// sibling emitting one JSON object per event.
//
//	tr := trace.New(os.Stdout)
//	med.SetObserver(tr.Observe)
package trace

import (
	"io"
	"strconv"
	"sync"
	"time"

	"aggmac/internal/medium"
)

// Tracer formats events to a writer.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // reused line buffer: steady-state tracing allocates nothing

	// Filter drops events for which it returns false (nil = keep all).
	Filter func(medium.Event) bool

	events int
}

// New creates a tracer writing to w.
func New(w io.Writer) *Tracer { return &Tracer{w: w} }

// Events returns the number of events written.
func (t *Tracer) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Observe is the medium.Observer entry point.
func (t *Tracer) Observe(ev medium.Event) {
	if t.Filter != nil && !t.Filter(ev) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events++
	t.buf = AppendFormat(t.buf[:0], ev)
	t.buf = append(t.buf, '\n')
	t.w.Write(t.buf)
}

// Format renders one event as a fixed-layout line.
func Format(ev medium.Event) string {
	return string(AppendFormat(nil, ev))
}

// AppendFormat appends the fixed-layout line for ev to dst and returns
// the extended slice. This is the allocation-free core of Format:
// everything, including duration rendering, is composed into dst (or a
// stack scratch buffer), so a caller reusing its buffer pays zero
// allocations per event once capacity has grown.
func AppendFormat(dst []byte, ev medium.Event) []byte {
	dst = appendDurationRight(dst, ev.At, 12)
	dst = append(dst, "  node"...)
	dst = appendIntLeft(dst, int(ev.Src), 2)
	dst = append(dst, "  "...)
	switch ev.Kind {
	case "tx-ctrl", "tx-agg":
		dst = appendStrLeft(dst, ev.Kind, 8)
		dst = append(dst, ' ')
		dst = appendStrLeft(dst, ev.Info, 24)
		dst = append(dst, " air="...)
		dst = appendDuration(dst, ev.Dur)
	case "collision":
		dst = append(dst, "COLLISION at node"...)
		dst = strconv.AppendInt(dst, int64(ev.Dst), 10)
	case "ctrl-noise":
		dst = append(dst, "ctrl lost to noise at node"...)
		dst = strconv.AppendInt(dst, int64(ev.Dst), 10)
	case "half-duplex":
		dst = append(dst, "missed while node"...)
		dst = strconv.AppendInt(dst, int64(ev.Dst), 10)
		dst = append(dst, " was transmitting"...)
	default:
		dst = appendStrLeft(dst, ev.Kind, 8)
		dst = append(dst, " -> node"...)
		dst = appendIntLeft(dst, int(ev.Dst), 2)
		dst = append(dst, ' ')
		dst = append(dst, ev.Info...)
	}
	return dst
}

const pad = "                        " // 24 spaces: the widest field

// appendStrLeft appends s left-aligned in a field of width w.
func appendStrLeft(dst []byte, s string, w int) []byte {
	dst = append(dst, s...)
	if n := w - len(s); n > 0 {
		dst = append(dst, pad[:n]...)
	}
	return dst
}

// appendIntLeft appends v left-aligned in a field of width w.
func appendIntLeft(dst []byte, v, w int) []byte {
	start := len(dst)
	dst = strconv.AppendInt(dst, int64(v), 10)
	if n := w - (len(dst) - start); n > 0 {
		dst = append(dst, pad[:n]...)
	}
	return dst
}

// appendDurationRight appends d right-aligned in a field of width w by
// shifting the rendered text in place — no intermediate string.
func appendDurationRight(dst []byte, d time.Duration, w int) []byte {
	start := len(dst)
	dst = appendDuration(dst, d)
	if n := w - (len(dst) - start); n > 0 {
		dst = append(dst, pad[:n]...)
		copy(dst[start+n:], dst[start:len(dst)-n])
		copy(dst[start:start+n], pad)
	}
	return dst
}

// appendDuration appends d rendered exactly as time.Duration.String,
// composed digit-by-digit into a stack buffer so no allocation occurs.
// Byte-for-byte agreement with the standard library is pinned by
// TestAppendDurationMatchesString.
func appendDuration(dst []byte, d time.Duration) []byte {
	var buf [32]byte
	w := len(buf)
	u := uint64(d)
	neg := d < 0
	if neg {
		u = -u
	}
	if u < uint64(time.Second) {
		// Sub-second: pick ns/µs/ms with a fractional part.
		if u == 0 {
			return append(dst, "0s"...)
		}
		var prec int
		w--
		buf[w] = 's'
		w--
		switch {
		case u < uint64(time.Microsecond):
			prec = 0
			buf[w] = 'n'
		case u < uint64(time.Millisecond):
			prec = 3
			w-- // 'µ' is two bytes
			copy(buf[w:], "µ")
		default:
			prec = 6
			buf[w] = 'm'
		}
		w, u = appendFrac(buf[:w], u, prec)
		w = appendInt(buf[:w], u)
	} else {
		w--
		buf[w] = 's'
		w, u = appendFrac(buf[:w], u, 9)
		w = appendInt(buf[:w], u%60)
		u /= 60
		if u > 0 {
			w--
			buf[w] = 'm'
			w = appendInt(buf[:w], u%60)
			u /= 60
			if u > 0 {
				w--
				buf[w] = 'h'
				w = appendInt(buf[:w], u)
			}
		}
	}
	if neg {
		w--
		buf[w] = '-'
	}
	return append(dst, buf[w:]...)
}

// appendFrac writes the prec-digit fraction of v backwards into buf,
// omitting trailing zeros (and the decimal point when the fraction is
// all zeros), and returns the new write position and v stripped of the
// fraction digits.
func appendFrac(buf []byte, v uint64, prec int) (int, uint64) {
	w := len(buf)
	print := false
	for i := 0; i < prec; i++ {
		digit := v % 10
		print = print || digit != 0
		if print {
			w--
			buf[w] = byte(digit) + '0'
		}
		v /= 10
	}
	if print {
		w--
		buf[w] = '.'
	}
	return w, v
}

// appendInt writes v backwards into buf and returns the new position.
func appendInt(buf []byte, v uint64) int {
	w := len(buf)
	if v == 0 {
		w--
		buf[w] = '0'
		return w
	}
	for v > 0 {
		w--
		buf[w] = byte(v%10) + '0'
		v /= 10
	}
	return w
}

// OnlyTransmissions is a Filter keeping the channel-occupancy view.
func OnlyTransmissions(ev medium.Event) bool {
	return ev.Kind == "tx-ctrl" || ev.Kind == "tx-agg" || ev.Kind == "collision"
}
