// Package routing implements an AODV-style on-demand routing protocol
// (Perkins, Royer & Das — reference [15] of the paper). Route requests
// flood the network as broadcast frames and route replies travel back
// unicast along the reverse path; this is exactly the "flooding-based
// control protocol" traffic whose cost §3.2 argues broadcast aggregation
// absorbs.
//
// It is AODV-lite: request-ID dedup plus hop-count preference stand in for
// full sequence-number freshness, and there is no RERR (the simulated
// links do not churn). Routes are installed directly into the network
// layer's table, so transports stay unaware: a TCP SYN that finds no route
// triggers discovery via network.Node.OnNoRoute, is dropped, and its
// retransmission rides the freshly installed route.
package routing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"aggmac/internal/network"
	"aggmac/internal/sim"
)

// Proto is the IP protocol number of routing control traffic.
const Proto = 254

// Message types.
const (
	typeRREQ = 1
	typeRREP = 2
)

// wireLen is the fixed control-message size before PHY minimum padding.
const wireLen = 12

const magic = 0x4152 // "AR"

// ErrBadMessage reports an undecodable routing message.
var ErrBadMessage = errors.New("routing: malformed message")

// message is a route request or reply.
type message struct {
	Type     uint8
	HopCount uint8
	ReqID    uint32
	Origin   network.NodeID
	Target   network.NodeID
}

func (m *message) marshal() []byte {
	b := make([]byte, wireLen)
	binary.BigEndian.PutUint16(b[0:2], magic)
	b[2] = m.Type
	b[3] = m.HopCount
	binary.BigEndian.PutUint32(b[4:8], m.ReqID)
	binary.BigEndian.PutUint16(b[8:10], uint16(m.Origin))
	binary.BigEndian.PutUint16(b[10:12], uint16(m.Target))
	return b
}

func decode(b []byte) (message, error) {
	var m message
	if len(b) < wireLen || binary.BigEndian.Uint16(b[0:2]) != magic {
		return m, ErrBadMessage
	}
	m.Type = b[2]
	m.HopCount = b[3]
	m.ReqID = binary.BigEndian.Uint32(b[4:8])
	m.Origin = network.NodeID(binary.BigEndian.Uint16(b[8:10]))
	m.Target = network.NodeID(binary.BigEndian.Uint16(b[10:12]))
	if m.Type != typeRREQ && m.Type != typeRREP {
		return m, fmt.Errorf("%w: type %d", ErrBadMessage, m.Type)
	}
	return m, nil
}

// Stats counts protocol events at one router.
type Stats struct {
	RREQSent    int // originated + rebroadcast
	RREQRcvd    int
	RREPSent    int
	RREPFwd     int
	RREPRcvd    int
	Discoveries int
	RoutesAdded int
	Expiries    int
}

// Config tunes the router.
type Config struct {
	// MaxHops bounds RREQ flooding (default 8).
	MaxHops int
	// RetryInterval rate-limits rediscovery for the same target
	// (default 500 ms).
	RetryInterval time.Duration
	// RouteLifetime expires idle routes; 0 (default) keeps them forever,
	// matching the paper's static-route runs.
	RouteLifetime time.Duration
}

// DefaultConfig returns the default router tuning.
func DefaultConfig() Config {
	return Config{MaxHops: 8, RetryInterval: 500 * time.Millisecond}
}

// reqKey dedups flooded requests.
type reqKey struct {
	origin network.NodeID
	id     uint32
}

// Router runs the protocol on one node.
type Router struct {
	sched *sim.Scheduler
	node  *network.Node
	cfg   Config

	nextReq uint32
	seen    map[reqKey]uint8 // best hop count witnessed per request
	lastTry map[network.NodeID]sim.Time
	hops    map[network.NodeID]uint8 // installed route quality
	expiry  map[network.NodeID]sim.Timer
	stats   Stats
}

// New attaches a router to the node: it handles routing-protocol packets
// and starts discovery whenever the node lacks a route.
func New(sched *sim.Scheduler, node *network.Node, cfg Config) *Router {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 8
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 500 * time.Millisecond
	}
	r := &Router{
		sched:   sched,
		node:    node,
		cfg:     cfg,
		seen:    make(map[reqKey]uint8),
		lastTry: make(map[network.NodeID]sim.Time),
		hops:    make(map[network.NodeID]uint8),
		expiry:  make(map[network.NodeID]sim.Timer),
	}
	node.Handle(Proto, r.onPacket)
	node.OnNoRoute = r.Discover
	return r
}

// Stats returns a snapshot of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// Discover originates a route request for dst (rate-limited).
func (r *Router) Discover(dst network.NodeID) {
	if dst == r.node.ID() || dst == network.BroadcastID {
		return
	}
	if _, ok := r.node.Route(dst); ok {
		return
	}
	now := r.sched.Now()
	if last, ok := r.lastTry[dst]; ok && now-last < r.cfg.RetryInterval {
		return
	}
	r.lastTry[dst] = now
	r.nextReq++
	m := message{Type: typeRREQ, ReqID: r.nextReq, Origin: r.node.ID(), Target: dst}
	r.seen[reqKey{m.Origin, m.ReqID}] = 0
	r.stats.Discoveries++
	r.broadcast(&m)
}

func (r *Router) broadcast(m *message) {
	r.stats.RREQSent++
	_ = r.node.Send(network.Packet{
		Proto: Proto, Src: r.node.ID(), Dst: network.BroadcastID,
		Payload: m.marshal(),
	})
}

// install learns a route if it beats what we have.
func (r *Router) install(dst, next network.NodeID, hopCount uint8) bool {
	if dst == r.node.ID() {
		return false
	}
	if old, ok := r.hops[dst]; ok {
		if _, have := r.node.Route(dst); have && old <= hopCount {
			return false
		}
	}
	r.node.AddRoute(dst, next)
	r.hops[dst] = hopCount
	r.stats.RoutesAdded++
	r.armExpiry(dst)
	return true
}

func (r *Router) armExpiry(dst network.NodeID) {
	if r.cfg.RouteLifetime <= 0 {
		return
	}
	r.expiry[dst].Stop()
	r.expiry[dst] = r.sched.After(r.cfg.RouteLifetime, "routing:expire", func() {
		r.node.DelRoute(dst)
		delete(r.hops, dst)
		r.stats.Expiries++
	})
}

// onPacket handles a routing message. pkt.Src is the ORIGINAL sender for
// unicast RREPs, but flooded RREQs are re-originated hop by hop, so for
// them pkt.Src is the previous hop.
func (r *Router) onPacket(pkt network.Packet) {
	m, err := decode(pkt.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case typeRREQ:
		r.onRREQ(pkt.Src, m)
	case typeRREP:
		r.onRREP(pkt.Src, m)
	}
}

func (r *Router) onRREQ(prevHop network.NodeID, m message) {
	r.stats.RREQRcvd++
	if m.Origin == r.node.ID() {
		return // our own flood echoed back
	}
	// Whoever we just heard is a direct neighbour (AODV's previous-hop
	// route) — the RREP unicast back depends on it.
	r.install(prevHop, prevHop, 1)
	key := reqKey{m.Origin, m.ReqID}
	hops := m.HopCount + 1
	if best, ok := r.seen[key]; ok && best <= hops {
		return // already handled a same-or-better copy
	}
	r.seen[key] = hops

	// Reverse route toward the origin via the previous hop.
	r.install(m.Origin, prevHop, hops)

	if m.Target == r.node.ID() {
		// We are the target: unicast a reply along the reverse path.
		rep := message{Type: typeRREP, ReqID: m.ReqID, Origin: m.Origin, Target: m.Target}
		r.stats.RREPSent++
		_ = r.node.Send(network.Packet{
			Proto: Proto, Src: r.node.ID(), Dst: prevHop,
			Payload: rep.marshal(),
		})
		return
	}
	if int(hops) >= r.cfg.MaxHops {
		return
	}
	// Rebroadcast (re-originate: broadcasts are not forwarded by the
	// network layer).
	m.HopCount = hops
	r.broadcast(&m)
}

func (r *Router) onRREP(prevHop network.NodeID, m message) {
	r.stats.RREPRcvd++
	r.install(prevHop, prevHop, 1)
	hops := m.HopCount + 1
	// Forward route toward the target via whoever handed us the reply.
	r.install(m.Target, prevHop, hops)
	if m.Origin == r.node.ID() {
		return // discovery complete
	}
	// Relay the reply toward the origin along the reverse route.
	next, ok := r.node.Route(m.Origin)
	if !ok {
		return
	}
	m.HopCount = hops
	r.stats.RREPFwd++
	_ = r.node.Send(network.Packet{
		Proto: Proto, Src: r.node.ID(), Dst: next,
		Payload: m.marshal(),
	})
}
