package routing

import (
	"bytes"
	"testing"
	"time"

	"aggmac/internal/mac"
	"aggmac/internal/medium"
	"aggmac/internal/network"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
	"aggmac/internal/tcp"
	"aggmac/internal/udp"
)

func TestMessageRoundTrip(t *testing.T) {
	m := message{Type: typeRREQ, HopCount: 3, ReqID: 77, Origin: 1, Target: 5}
	got, err := decode(m.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("mangled: %+v vs %+v", got, m)
	}
	if _, err := decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("short message decoded")
	}
	bad := m.marshal()
	bad[0] = 0
	if _, err := decode(bad); err == nil {
		t.Fatal("bad magic decoded")
	}
	bad = m.marshal()
	bad[2] = 9
	if _, err := decode(bad); err == nil {
		t.Fatal("bad type decoded")
	}
}

// rig builds n nodes with radio range limited to adjacent chain neighbours
// (unlike the paper's one-room testbed, discovery needs real multi-hop RF).
type rig struct {
	s       *sim.Scheduler
	med     *medium.Medium
	nodes   []*network.Node
	routers []*Router
}

func newRig(t *testing.T, n int, scheme mac.Scheme, cfg Config) *rig {
	t.Helper()
	r := &rig{s: sim.NewScheduler(77)}
	r.med = medium.New(r.s, phy.DefaultParams(), n)
	opts := mac.DefaultOptions(scheme, phy.Rate1300k)
	for i := 0; i < n; i++ {
		node := network.NewNode(network.NodeID(i))
		m := mac.New(r.s, r.med, medium.NodeID(i), opts, node.Bind())
		node.AttachMAC(m)
		r.nodes = append(r.nodes, node)
		r.routers = append(r.routers, New(r.s, node, cfg))
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			r.med.SetConnected(medium.NodeID(i), medium.NodeID(j), false)
		}
	}
	return r
}

func TestDiscoveryAcrossThreeHops(t *testing.T) {
	r := newRig(t, 4, mac.BA, DefaultConfig())
	r.s.After(0, "discover", func() { r.routers[0].Discover(3) })
	r.s.RunUntil(2 * time.Second)
	next, ok := r.nodes[0].Route(3)
	if !ok || next != 1 {
		t.Fatalf("node 0 route to 3: next=%v ok=%v, want via 1", next, ok)
	}
	// Forward routes along the chain.
	if next, ok := r.nodes[1].Route(3); !ok || next != 2 {
		t.Fatalf("node 1 route to 3: %v/%v", next, ok)
	}
	// Reverse routes back to the origin were installed by the flood.
	if next, ok := r.nodes[3].Route(0); !ok || next != 2 {
		t.Fatalf("node 3 reverse route to 0: %v/%v", next, ok)
	}
	if r.routers[3].Stats().RREPSent != 1 {
		t.Fatalf("target sent %d RREPs, want 1", r.routers[3].Stats().RREPSent)
	}
}

func TestDiscoveredRoutesCarryData(t *testing.T) {
	r := newRig(t, 4, mac.BA, DefaultConfig())
	eps := make([]*udp.Endpoint, 4)
	for i, n := range r.nodes {
		eps[i] = udp.NewEndpoint(r.s, n)
	}
	got := 0
	eps[3].Listen(9000, func(network.NodeID, udp.Datagram) { got++ })
	r.s.After(0, "discover", func() { r.routers[0].Discover(3) })
	r.s.After(time.Second, "send", func() {
		if err := eps[0].Send(3, 9001, 9000, []byte("via aodv")); err != nil {
			t.Errorf("send after discovery: %v", err)
		}
	})
	r.s.RunUntil(3 * time.Second)
	if got != 1 {
		t.Fatalf("datagram not delivered over discovered route")
	}
}

func TestTCPTriggersDiscoveryTransparently(t *testing.T) {
	// No static routes anywhere: the TCP SYN hits OnNoRoute, discovery
	// runs, the retransmitted SYN rides the new route, and the transfer
	// completes end to end.
	r := newRig(t, 4, mac.BA, DefaultConfig())
	stacks := make([]*tcp.Stack, 4)
	for i, n := range r.nodes {
		stacks[i] = tcp.NewStack(r.s, n, tcp.DefaultConfig())
	}
	var rcvd []byte
	lis := stacks[3].Listen(80)
	lis.Setup = func(c *tcp.Conn) {
		c.OnData = func(b []byte) { rcvd = append(rcvd, b...) }
		c.OnPeerClose = func() { c.Close() }
	}
	data := make([]byte, 30_000)
	for i := range data {
		data[i] = byte(i)
	}
	r.s.After(0, "connect", func() {
		conn := stacks[0].Connect(3, 80)
		conn.OnEstablished = func() {
			_ = conn.Send(data)
			conn.Close()
		}
	})
	r.s.RunUntil(120 * time.Second)
	if !bytes.Equal(rcvd, data) {
		t.Fatalf("received %d of %d bytes over discovered route", len(rcvd), len(data))
	}
	if r.routers[0].Stats().Discoveries == 0 {
		t.Fatal("no discovery was triggered")
	}
	// Note: the client's reverse path rides the reverse routes the RREQ
	// flood installed, so no second discovery is necessary.
}

func TestFloodDedup(t *testing.T) {
	r := newRig(t, 5, mac.BA, DefaultConfig())
	r.s.After(0, "discover", func() { r.routers[0].Discover(4) })
	r.s.RunUntil(2 * time.Second)
	// Every intermediate node rebroadcasts a request once (better-path
	// re-processing may allow one more, but never per-copy explosion).
	for i := 1; i <= 3; i++ {
		if s := r.routers[i].Stats().RREQSent; s > 2 {
			t.Errorf("node %d rebroadcast %d times — dedup failed", i, s)
		}
	}
}

func TestMaxHopsBoundsFlood(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxHops = 2
	r := newRig(t, 5, mac.BA, cfg)
	r.s.After(0, "discover", func() { r.routers[0].Discover(4) })
	r.s.RunUntil(2 * time.Second)
	if _, ok := r.nodes[0].Route(4); ok {
		t.Fatal("4-hop target discovered despite MaxHops=2")
	}
	// A 2-hop target is still reachable.
	r.s.After(0, "discover2", func() { r.routers[0].Discover(2) })
	r.s.RunUntil(4 * time.Second)
	if _, ok := r.nodes[0].Route(2); !ok {
		t.Fatal("2-hop target not discovered with MaxHops=2")
	}
}

func TestDiscoverRateLimited(t *testing.T) {
	r := newRig(t, 3, mac.BA, DefaultConfig())
	r.s.After(0, "spam", func() {
		for i := 0; i < 10; i++ {
			r.routers[0].Discover(99) // unreachable target
		}
	})
	r.s.RunUntil(200 * time.Millisecond)
	if d := r.routers[0].Stats().Discoveries; d != 1 {
		t.Fatalf("%d discoveries for 10 back-to-back calls, want 1", d)
	}
	r.s.RunUntil(time.Second)
	r.s.After(0, "later", func() { r.routers[0].Discover(99) })
	r.s.RunUntil(1100 * time.Millisecond)
	if d := r.routers[0].Stats().Discoveries; d != 2 {
		t.Fatalf("rediscovery after the retry interval did not run (%d)", d)
	}
}

func TestRouteExpiry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RouteLifetime = 500 * time.Millisecond
	r := newRig(t, 3, mac.BA, cfg)
	r.s.After(0, "discover", func() { r.routers[0].Discover(2) })
	r.s.RunUntil(300 * time.Millisecond)
	if _, ok := r.nodes[0].Route(2); !ok {
		t.Fatal("route not installed")
	}
	r.s.RunUntil(2 * time.Second)
	if _, ok := r.nodes[0].Route(2); ok {
		t.Fatal("route did not expire")
	}
	if r.routers[0].Stats().Expiries == 0 {
		t.Fatal("expiry not counted")
	}
}

func TestNoSelfOrBroadcastDiscovery(t *testing.T) {
	r := newRig(t, 2, mac.BA, DefaultConfig())
	r.s.After(0, "d", func() {
		r.routers[0].Discover(0)
		r.routers[0].Discover(network.BroadcastID)
	})
	r.s.RunUntil(100 * time.Millisecond)
	if d := r.routers[0].Stats().Discoveries; d != 0 {
		t.Fatalf("discovered self/broadcast: %d", d)
	}
}

func TestRREQsRideBroadcastPortions(t *testing.T) {
	// Under BA, discovery floods from a node that is also pushing unicast
	// data share PHY frames with that data.
	r := newRig(t, 3, mac.BA, DefaultConfig())
	eps := []*udp.Endpoint{udp.NewEndpoint(r.s, r.nodes[0]), udp.NewEndpoint(r.s, r.nodes[1]), udp.NewEndpoint(r.s, r.nodes[2])}
	r.nodes[0].AddRoute(1, 1) // static unicast next hop for data
	r.s.After(0, "go", func() {
		for i := 0; i < 5; i++ {
			_ = eps[0].Send(1, 9001, 9000, make([]byte, 1000))
		}
		r.routers[0].Discover(2)
	})
	r.s.RunUntil(time.Second)
	c := r.nodes[0].MAC().Counters()
	if c.BroadcastSubTx == 0 {
		t.Fatal("RREQ never left through a broadcast portion")
	}
	if c.DataTx >= c.BroadcastSubTx+5 {
		t.Errorf("flood never aggregated with data: %d TXs for %d bcast + 5 data",
			c.DataTx, c.BroadcastSubTx)
	}
}
