package routing

import (
	"reflect"
	"testing"

	"aggmac/internal/network"
)

// path graph 0-1-2-3 plus a shortcut 0-3: shortest paths must prefer it.
func diamondAdj() func(i int) []int {
	adj := [][]int{
		0: {1, 3},
		1: {0, 2},
		2: {1, 3},
		3: {0, 2},
	}
	return func(i int) []int { return adj[i] }
}

func TestInstallShortestPaths(t *testing.T) {
	nodes := make([]*network.Node, 4)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	installed := InstallShortestPaths(nodes, diamondAdj())
	if installed != 12 { // every ordered pair of the connected 4-node graph
		t.Errorf("installed %d routes, want 12", installed)
	}
	// 1 reaches 3 in two hops either way; the tie must break toward the
	// lowest-id next hop (0), deterministically.
	if next, ok := nodes[1].Route(3); !ok || next != 0 {
		t.Errorf("route 1->3 via %v (ok=%v), want via 0", next, ok)
	}
	// 2's route to 0 ties between 1 and 3; lowest id wins.
	if next, ok := nodes[2].Route(0); !ok || next != 1 {
		t.Errorf("route 2->0 via %v (ok=%v), want via 1", next, ok)
	}
	// Direct neighbors route directly.
	if next, _ := nodes[0].Route(3); next != 3 {
		t.Errorf("route 0->3 via %v, want direct", next)
	}
}

func TestInstallShortestPathsDisconnected(t *testing.T) {
	adj := [][]int{0: {1}, 1: {0}, 2: {}}
	nodes := make([]*network.Node, 3)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	if installed := InstallShortestPaths(nodes, func(i int) []int { return adj[i] }); installed != 2 {
		t.Errorf("installed %d routes, want 2", installed)
	}
	if _, ok := nodes[0].Route(2); ok {
		t.Error("route to unreachable node installed")
	}
}

func TestRecomputeShortestPaths(t *testing.T) {
	nodes := make([]*network.Node, 4)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	InstallShortestPaths(nodes, diamondAdj())

	// Same graph: nothing may change.
	if changed := RecomputeShortestPaths(nodes, diamondAdj()); changed != 0 {
		t.Fatalf("recompute over unchanged graph changed %d routes", changed)
	}

	// Cut the 0-3 shortcut: 0<->3 reroutes through the chain (2 entries),
	// and the 1->3 / 2->0 ties that previously broke toward the shortcut's
	// endpoints re-resolve.
	chain := [][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
	chainAdj := func(i int) []int { return chain[i] }
	changed := RecomputeShortestPaths(nodes, chainAdj)
	if changed == 0 {
		t.Fatal("cutting a link changed no routes")
	}
	if next, ok := nodes[0].Route(3); !ok || next != 1 {
		t.Errorf("route 0->3 via %v (ok=%v), want via 1 after the cut", next, ok)
	}
	if next, ok := nodes[3].Route(0); !ok || next != 2 {
		t.Errorf("route 3->0 via %v (ok=%v), want via 2 after the cut", next, ok)
	}
	// Equilibrium: a second recompute over the same graph is silent.
	if again := RecomputeShortestPaths(nodes, chainAdj); again != 0 {
		t.Fatalf("second recompute changed %d more routes", again)
	}
}

func TestRecomputeRemovesUnreachableRoutes(t *testing.T) {
	nodes := make([]*network.Node, 3)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	line := [][]int{0: {1}, 1: {0, 2}, 2: {1}}
	InstallShortestPaths(nodes, func(i int) []int { return line[i] })
	if _, ok := nodes[0].Route(2); !ok {
		t.Fatal("setup: no initial route 0->2")
	}
	// Isolate node 2: every route to and from it must be withdrawn.
	split := [][]int{0: {1}, 1: {0}, 2: {}}
	changed := RecomputeShortestPaths(nodes, func(i int) []int { return split[i] })
	if changed != 4 { // 0->2, 1->2, 2->0, 2->1
		t.Errorf("changed = %d, want 4 withdrawn entries", changed)
	}
	for _, v := range []int{0, 1} {
		if _, ok := nodes[v].Route(2); ok {
			t.Errorf("node %d kept a route to the unreachable node", v)
		}
	}
	if _, ok := nodes[0].Route(1); !ok {
		t.Error("surviving component lost its own route")
	}
}

func TestDistances(t *testing.T) {
	got := Distances(4, diamondAdj(), 1)
	if want := []int{1, 0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Distances = %v, want %v", got, want)
	}
	adj := [][]int{0: {}, 1: {}}
	if got := Distances(2, func(i int) []int { return adj[i] }, 0); got[1] != -1 {
		t.Errorf("unreachable distance = %d, want -1", got[1])
	}
}

// gridAdj returns the orthogonal adjacency of a k×k grid with the edges
// crossing the vertical line between columns cutAt-1 and cutAt removed
// (cutAt <= 0 cuts nothing). Neighbor lists are ascending.
func gridAdj(k, cutAt int) func(i int) []int {
	adj := make([][]int, k*k)
	for r := 0; r < k; r++ {
		for c := 0; c < k; c++ {
			i := r*k + c
			if r > 0 {
				adj[i] = append(adj[i], i-k)
			}
			if c > 0 && c != cutAt {
				adj[i] = append(adj[i], i-1)
			}
			if c < k-1 && c+1 != cutAt {
				adj[i] = append(adj[i], i+1)
			}
			if r < k-1 {
				adj[i] = append(adj[i], i+k)
			}
		}
	}
	return func(i int) []int { return adj[i] }
}

// routeTable snapshots every installed (src, dst) -> next entry.
func routeTable(nodes []*network.Node) map[[2]int]int {
	tab := make(map[[2]int]int)
	for v := range nodes {
		for d := range nodes {
			if d == v {
				continue
			}
			if next, ok := nodes[v].Route(network.NodeID(d)); ok {
				tab[[2]int{v, d}] = int(next)
			}
		}
	}
	return tab
}

// tableDiff counts entries added, removed or rerouted between snapshots.
func tableDiff(old, new map[[2]int]int) int {
	diff := 0
	for k, v := range new {
		if ov, ok := old[k]; !ok || ov != v {
			diff++
		}
	}
	for k := range old {
		if _, ok := new[k]; !ok {
			diff++
		}
	}
	return diff
}

// TestRecomputePartitionAndHeal drives a 4×4 grid through a partition and
// its heal. The incremental recompute must leave exactly the table a
// from-scratch install over the same adjacency produces (the dense-BFS
// oracle), report a flap count equal to the snapshot diff, and withdraw —
// not stale-route — every cross-partition destination.
func TestRecomputePartitionAndHeal(t *testing.T) {
	const k = 4
	nodes := make([]*network.Node, k*k)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	full := gridAdj(k, 0)
	InstallShortestPaths(nodes, full)
	before := routeTable(nodes)

	// Oracle for any adjacency: install from scratch into fresh nodes.
	oracle := func(adj func(i int) []int) map[[2]int]int {
		fresh := make([]*network.Node, k*k)
		for i := range fresh {
			fresh[i] = network.NewNode(network.NodeID(i))
		}
		InstallShortestPaths(fresh, adj)
		return routeTable(fresh)
	}

	// Partition between columns 1 and 2: two 8-node halves.
	cut := gridAdj(k, 2)
	changed := RecomputeShortestPaths(nodes, cut)
	after := routeTable(nodes)
	want := oracle(cut)
	if !reflect.DeepEqual(after, want) {
		t.Fatal("partitioned table differs from the from-scratch oracle")
	}
	if diff := tableDiff(before, after); changed != diff {
		t.Errorf("recompute reported %d flaps, snapshot diff is %d", changed, diff)
	}
	// No stale routes: every cross-partition pair must be withdrawn. Node
	// ids in the left half have column < 2.
	for v := range nodes {
		for d := range nodes {
			if v == d || (v%k < 2) == (d%k < 2) {
				continue
			}
			if next, ok := nodes[v].Route(network.NodeID(d)); ok {
				t.Fatalf("stale route across the partition: %d->%d via %d", v, d, next)
			}
		}
	}
	// Both halves keep full internal reachability: 8 nodes × 7 peers each.
	if got := len(after); got != 2*8*7 {
		t.Errorf("partitioned table has %d entries, want %d", got, 2*8*7)
	}

	// Heal: the table must return exactly to the pre-partition state (the
	// tie-break is deterministic), with the flap count again matching.
	healed := RecomputeShortestPaths(nodes, full)
	now := routeTable(nodes)
	if !reflect.DeepEqual(now, before) {
		t.Fatal("healed table differs from the original install")
	}
	if diff := tableDiff(after, now); healed != diff {
		t.Errorf("heal reported %d flaps, snapshot diff is %d", healed, diff)
	}
	// Equilibrium after heal.
	if again := RecomputeShortestPaths(nodes, full); again != 0 {
		t.Fatalf("post-heal recompute changed %d routes", again)
	}
}
