package routing

import (
	"reflect"
	"testing"

	"aggmac/internal/network"
)

// path graph 0-1-2-3 plus a shortcut 0-3: shortest paths must prefer it.
func diamondAdj() func(i int) []int {
	adj := [][]int{
		0: {1, 3},
		1: {0, 2},
		2: {1, 3},
		3: {0, 2},
	}
	return func(i int) []int { return adj[i] }
}

func TestInstallShortestPaths(t *testing.T) {
	nodes := make([]*network.Node, 4)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	installed := InstallShortestPaths(nodes, diamondAdj())
	if installed != 12 { // every ordered pair of the connected 4-node graph
		t.Errorf("installed %d routes, want 12", installed)
	}
	// 1 reaches 3 in two hops either way; the tie must break toward the
	// lowest-id next hop (0), deterministically.
	if next, ok := nodes[1].Route(3); !ok || next != 0 {
		t.Errorf("route 1->3 via %v (ok=%v), want via 0", next, ok)
	}
	// 2's route to 0 ties between 1 and 3; lowest id wins.
	if next, ok := nodes[2].Route(0); !ok || next != 1 {
		t.Errorf("route 2->0 via %v (ok=%v), want via 1", next, ok)
	}
	// Direct neighbors route directly.
	if next, _ := nodes[0].Route(3); next != 3 {
		t.Errorf("route 0->3 via %v, want direct", next)
	}
}

func TestInstallShortestPathsDisconnected(t *testing.T) {
	adj := [][]int{0: {1}, 1: {0}, 2: {}}
	nodes := make([]*network.Node, 3)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	if installed := InstallShortestPaths(nodes, func(i int) []int { return adj[i] }); installed != 2 {
		t.Errorf("installed %d routes, want 2", installed)
	}
	if _, ok := nodes[0].Route(2); ok {
		t.Error("route to unreachable node installed")
	}
}

func TestDistances(t *testing.T) {
	got := Distances(4, diamondAdj(), 1)
	if want := []int{1, 0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Distances = %v, want %v", got, want)
	}
	adj := [][]int{0: {}, 1: {}}
	if got := Distances(2, func(i int) []int { return adj[i] }, 0); got[1] != -1 {
		t.Errorf("unreachable distance = %d, want -1", got[1])
	}
}
