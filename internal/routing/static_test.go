package routing

import (
	"reflect"
	"testing"

	"aggmac/internal/network"
)

// path graph 0-1-2-3 plus a shortcut 0-3: shortest paths must prefer it.
func diamondAdj() func(i int) []int {
	adj := [][]int{
		0: {1, 3},
		1: {0, 2},
		2: {1, 3},
		3: {0, 2},
	}
	return func(i int) []int { return adj[i] }
}

func TestInstallShortestPaths(t *testing.T) {
	nodes := make([]*network.Node, 4)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	installed := InstallShortestPaths(nodes, diamondAdj())
	if installed != 12 { // every ordered pair of the connected 4-node graph
		t.Errorf("installed %d routes, want 12", installed)
	}
	// 1 reaches 3 in two hops either way; the tie must break toward the
	// lowest-id next hop (0), deterministically.
	if next, ok := nodes[1].Route(3); !ok || next != 0 {
		t.Errorf("route 1->3 via %v (ok=%v), want via 0", next, ok)
	}
	// 2's route to 0 ties between 1 and 3; lowest id wins.
	if next, ok := nodes[2].Route(0); !ok || next != 1 {
		t.Errorf("route 2->0 via %v (ok=%v), want via 1", next, ok)
	}
	// Direct neighbors route directly.
	if next, _ := nodes[0].Route(3); next != 3 {
		t.Errorf("route 0->3 via %v, want direct", next)
	}
}

func TestInstallShortestPathsDisconnected(t *testing.T) {
	adj := [][]int{0: {1}, 1: {0}, 2: {}}
	nodes := make([]*network.Node, 3)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	if installed := InstallShortestPaths(nodes, func(i int) []int { return adj[i] }); installed != 2 {
		t.Errorf("installed %d routes, want 2", installed)
	}
	if _, ok := nodes[0].Route(2); ok {
		t.Error("route to unreachable node installed")
	}
}

func TestRecomputeShortestPaths(t *testing.T) {
	nodes := make([]*network.Node, 4)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	InstallShortestPaths(nodes, diamondAdj())

	// Same graph: nothing may change.
	if changed := RecomputeShortestPaths(nodes, diamondAdj()); changed != 0 {
		t.Fatalf("recompute over unchanged graph changed %d routes", changed)
	}

	// Cut the 0-3 shortcut: 0<->3 reroutes through the chain (2 entries),
	// and the 1->3 / 2->0 ties that previously broke toward the shortcut's
	// endpoints re-resolve.
	chain := [][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}}
	chainAdj := func(i int) []int { return chain[i] }
	changed := RecomputeShortestPaths(nodes, chainAdj)
	if changed == 0 {
		t.Fatal("cutting a link changed no routes")
	}
	if next, ok := nodes[0].Route(3); !ok || next != 1 {
		t.Errorf("route 0->3 via %v (ok=%v), want via 1 after the cut", next, ok)
	}
	if next, ok := nodes[3].Route(0); !ok || next != 2 {
		t.Errorf("route 3->0 via %v (ok=%v), want via 2 after the cut", next, ok)
	}
	// Equilibrium: a second recompute over the same graph is silent.
	if again := RecomputeShortestPaths(nodes, chainAdj); again != 0 {
		t.Fatalf("second recompute changed %d more routes", again)
	}
}

func TestRecomputeRemovesUnreachableRoutes(t *testing.T) {
	nodes := make([]*network.Node, 3)
	for i := range nodes {
		nodes[i] = network.NewNode(network.NodeID(i))
	}
	line := [][]int{0: {1}, 1: {0, 2}, 2: {1}}
	InstallShortestPaths(nodes, func(i int) []int { return line[i] })
	if _, ok := nodes[0].Route(2); !ok {
		t.Fatal("setup: no initial route 0->2")
	}
	// Isolate node 2: every route to and from it must be withdrawn.
	split := [][]int{0: {1}, 1: {0}, 2: {}}
	changed := RecomputeShortestPaths(nodes, func(i int) []int { return split[i] })
	if changed != 4 { // 0->2, 1->2, 2->0, 2->1
		t.Errorf("changed = %d, want 4 withdrawn entries", changed)
	}
	for _, v := range []int{0, 1} {
		if _, ok := nodes[v].Route(2); ok {
			t.Errorf("node %d kept a route to the unreachable node", v)
		}
	}
	if _, ok := nodes[0].Route(1); !ok {
		t.Error("surviving component lost its own route")
	}
}

func TestDistances(t *testing.T) {
	got := Distances(4, diamondAdj(), 1)
	if want := []int{1, 0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Distances = %v, want %v", got, want)
	}
	adj := [][]int{0: {}, 1: {}}
	if got := Distances(2, func(i int) []int { return adj[i] }, 0); got[1] != -1 {
		t.Errorf("unreachable distance = %d, want -1", got[1])
	}
}
