// Static shortest-path route computation for generated mesh topologies.
// The paper's testbed forces multi-hop paths with static routes; mesh
// scenarios do the same at scale: instead of flooding AODV discoveries
// through hundreds of nodes, the generators compute hop-count shortest
// paths over the connectivity graph up front and install them into the
// network layer's tables, so transports start with full reachability.
// Mobile scenarios re-run the computation periodically with
// RecomputeShortestPaths, which also accounts for how many table entries
// each round changed (the route-flap metric).
package routing

import "aggmac/internal/network"

// InstallShortestPaths computes hop-count shortest-path next hops by a BFS
// per destination over the given adjacency and installs them into every
// node's routing table (network.Node.AddRoute). neighbors(i) must list the
// nodes adjacent to i in ascending order and must be symmetric (mesh
// generators derive it from bidirectional links); ties between equal-length
// paths break toward the lowest-id next hop, so the tables — and every
// simulation run on top of them — are deterministic. Unreachable pairs get
// no route. Cost is O(N·(N+E)); it returns the number of routes installed.
func InstallShortestPaths(nodes []*network.Node, neighbors func(i int) []int) int {
	n := len(nodes)
	next := make([]int, n)  // next hop toward the current destination
	queue := make([]int, n) // BFS ring
	installed := 0
	for d := 0; d < n; d++ {
		bfsNextHops(d, neighbors, next, queue)
		for v := 0; v < n; v++ {
			if v == d || next[v] == -1 {
				continue
			}
			nodes[v].AddRoute(network.NodeID(d), network.NodeID(next[v]))
			installed++
		}
	}
	return installed
}

// bfsNextHops fills next[v] with v's next hop toward destination d (-1
// where unreachable, d at d itself) by one BFS from d over the adjacency.
// next and queue are caller-provided scratch of length n.
func bfsNextHops(d int, neighbors func(i int) []int, next, queue []int) {
	for i := range next {
		next[i] = -1
	}
	next[d] = d
	queue[0] = d
	head, tail := 0, 1
	for head < tail {
		u := queue[head]
		head++
		for _, v := range neighbors(u) {
			if next[v] != -1 {
				continue
			}
			// v reaches d through u: u is one hop closer.
			next[v] = u
			queue[tail] = v
			tail++
		}
	}
}

// InstallPathsToward installs hop-count shortest-path next hops toward just
// the listed destinations: one BFS per destination over the adjacency, with
// exactly InstallShortestPaths' tie-breaking, installed at every node that
// reaches the destination. Duplicate destinations are skipped. For D
// destinations the cost is O(D·(N+E)) time and O(D·N) route entries — the
// large-mesh alternative to the all-pairs install when the set of node ids
// that will ever appear as a packet destination is known up front (a mesh
// run's flow endpoints, say). Any forwarding decision a run actually makes
// then reads the same table entry the full install would have written.
func InstallPathsToward(nodes []*network.Node, neighbors func(i int) []int, dests []int) int {
	n := len(nodes)
	next := make([]int, n)
	queue := make([]int, n)
	seen := make(map[int]bool, len(dests))
	installed := 0
	for _, d := range dests {
		if seen[d] {
			continue
		}
		seen[d] = true
		bfsNextHops(d, neighbors, next, queue)
		for v := 0; v < n; v++ {
			if v == d || next[v] == -1 {
				continue
			}
			nodes[v].AddRoute(network.NodeID(d), network.NodeID(next[v]))
			installed++
		}
	}
	return installed
}

// RecomputeShortestPaths recomputes hop-count shortest-path next hops over
// the (possibly changed) adjacency and syncs every node's routing table
// with the result: newly reachable destinations gain routes, unreachable
// ones lose theirs, and changed next hops are rewritten in place. It
// returns the number of route-table entries that changed (added + removed
// + rerouted) — the route-flap count the mobility experiments report.
// Ties break toward the lowest-id next hop exactly like
// InstallShortestPaths, so recomputing over an unchanged graph changes
// nothing and returns 0.
func RecomputeShortestPaths(nodes []*network.Node, neighbors func(i int) []int) int {
	n := len(nodes)
	next := make([]int, n)
	queue := make([]int, n)
	changed := 0
	for d := 0; d < n; d++ {
		bfsNextHops(d, neighbors, next, queue)
		for v := 0; v < n; v++ {
			if v == d {
				continue
			}
			old, had := nodes[v].Route(network.NodeID(d))
			if next[v] == -1 {
				if had {
					nodes[v].DelRoute(network.NodeID(d))
					changed++
				}
				continue
			}
			if !had || old != network.NodeID(next[v]) {
				nodes[v].AddRoute(network.NodeID(d), network.NodeID(next[v]))
				changed++
			}
		}
	}
	return changed
}

// Distances returns the hop distance from src to every node over the given
// adjacency (-1 where unreachable) — the batch complement of
// InstallShortestPaths for callers that need reachability or path lengths
// without installing routes (the topology tests validate generated-mesh
// connectivity with it).
func Distances(n int, neighbors func(i int) []int, src int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 1, n)
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
