package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/sim"
)

func TestClassify(t *testing.T) {
	wb := &sim.WallBudgetError{Budget: time.Second}
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"nil", nil, ClassNone},
		{"wall budget", wb, ClassTransient},
		{"wrapped wall budget", fmt.Errorf("run %q timed out: %w", "x", wb), ClassTransient},
		{"deadline", context.DeadlineExceeded, ClassTransient},
		{"canceled", context.Canceled, ClassTransient},
		{"panic", errors.New("runner: run \"x\" panicked: boom"), ClassDeterministic},
		{"validation", errors.New("spec must set exactly one"), ClassDeterministic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestErrClassString(t *testing.T) {
	for c, want := range map[ErrClass]string{
		ClassNone: "none", ClassTransient: "transient", ClassDeterministic: "deterministic",
	} {
		if got := c.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 500, 500}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Zero values fall back to the documented defaults.
	var z RetryPolicy
	if got := z.backoff(1); got != 100*time.Millisecond {
		t.Errorf("zero policy backoff(1) = %v, want 100ms", got)
	}
	if got := z.backoff(20); got != 5*time.Second {
		t.Errorf("zero policy backoff(20) = %v, want the 5s cap", got)
	}
}

// transientErr builds an error that classifies as transient.
func transientErr() error {
	return fmt.Errorf("timed out: %w", &sim.WallBudgetError{Budget: time.Millisecond})
}

// TestRetryTransient pins the whole retry path: a spec that fails
// transiently twice succeeds on the third attempt, Attempts records the
// count, and the backoff sequence is the documented doubling.
func TestRetryTransient(t *testing.T) {
	var mu sync.Mutex
	execs := 0
	var slept []time.Duration
	pool := Pool{
		Workers: 1,
		Retry: RetryPolicy{
			MaxAttempts: 4,
			Sleep:       func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
		},
		execute: func(i int, s Spec) Result {
			mu.Lock()
			execs++
			n := execs
			mu.Unlock()
			if n < 3 {
				return Result{Index: i, Key: s.Key, Err: transientErr()}
			}
			return Result{Index: i, Key: s.Key, TCP: &core.TCPResult{ThroughputMbps: 1.5}}
		},
	}
	res, err := pool.Run(context.Background(), []Spec{{Key: "cell"}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Err != nil {
		t.Fatalf("expected success after retries, got %v", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", r.Attempts)
	}
	if want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff sequence = %v, want %v", slept, want)
	}
}

// TestNoRetryDeterministic: deterministic failures execute exactly once and
// keep their original message — retrying them would only reproduce the
// error while hiding how often it fires.
func TestNoRetryDeterministic(t *testing.T) {
	execs := 0
	pool := Pool{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) {}},
		execute: func(i int, s Spec) Result {
			execs++
			return Result{Index: i, Key: s.Key, Err: errors.New("sim panicked: divide by zero")}
		},
	}
	res, err := pool.Run(context.Background(), []Spec{{Key: "cell"}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if execs != 1 || r.Attempts != 1 {
		t.Errorf("executions = %d, Attempts = %d; want 1, 1", execs, r.Attempts)
	}
	if r.Err == nil || r.Err.Error() != "sim panicked: divide by zero" {
		t.Errorf("error message not preserved: %v", r.Err)
	}
	if r.ErrClass() != ClassDeterministic {
		t.Errorf("ErrClass = %v, want deterministic", r.ErrClass())
	}
}

// TestRetryExhaustion: a persistently transient failure stops at
// MaxAttempts and reports the final error with the attempt count.
func TestRetryExhaustion(t *testing.T) {
	execs := 0
	pool := Pool{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 3, Sleep: func(time.Duration) {}},
		execute: func(i int, s Spec) Result {
			execs++
			return Result{Index: i, Key: s.Key, Err: transientErr()}
		},
	}
	res, _ := pool.Run(context.Background(), []Spec{{Key: "cell"}})
	r := res[0]
	if execs != 3 || r.Attempts != 3 {
		t.Errorf("executions = %d, Attempts = %d; want 3, 3", execs, r.Attempts)
	}
	if r.ErrClass() != ClassTransient {
		t.Errorf("ErrClass = %v, want transient", r.ErrClass())
	}
}

// TestRetriedRunBitIdentical pins the determinism contract the store relies
// on: a run that succeeds on attempt N is bit-identical to one that
// succeeds on attempt 1, because the spec (and the derived seed) never
// changes between attempts.
func TestRetriedRunBitIdentical(t *testing.T) {
	spec := smallSweep().Specs()[0]
	direct := runOne(0, spec)
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	execs := 0
	pool := Pool{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
		execute: func(i int, s Spec) Result {
			execs++
			if execs == 1 {
				return Result{Index: i, Key: s.Key, Err: transientErr()}
			}
			return runOne(i, s)
		},
	}
	res, err := pool.Run(context.Background(), []Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", res[0].Attempts)
	}
	if !reflect.DeepEqual(res[0].TCP, direct.TCP) {
		t.Error("retried run's result differs from a first-try run")
	}
}

// TestWallBudgetClassifiesTransient drives a real mesh run into its
// watchdog and checks the resulting error classifies as transient end to
// end — through the runner's panic recovery and %w wrapping.
func TestWallBudgetClassifiesTransient(t *testing.T) {
	spec := Spec{
		Key: "mesh/tiny",
		Mesh: &core.MeshTCPConfig{
			Scheme: mac.BA, Rate: phy.Rate1300k, Topology: core.MeshGrid,
			Nodes: 25, Flows: 2, FileBytes: 50000, MaxAggBytes: 5120, Seed: 1,
		},
		Timeout: time.Nanosecond,
	}
	res := runOne(0, spec)
	if res.Err == nil {
		t.Fatal("expected the 1ns wall budget to fire")
	}
	if got := Classify(res.Err); got != ClassTransient {
		t.Errorf("Classify(%v) = %v, want transient", res.Err, got)
	}
}

// memCache is an in-memory runner.Cache for pool-level tests.
type memCache struct {
	mu      sync.Mutex
	data    map[string]Result
	stores  int
	lookups int
}

func newMemCache() *memCache { return &memCache{data: map[string]Result{}} }

func (c *memCache) Lookup(s Spec) (Result, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lookups++
	r, ok := c.data[s.Key]
	return r, ok, nil
}

func (c *memCache) Store(s Spec, r Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores++
	c.data[s.Key] = r
	return nil
}

// TestPoolCacheWriteThroughAndResume: the first sweep executes everything
// and feeds the cache; a second pool with Resume serves every cell from it,
// bit-identical, with Cached/Attempts reflecting the hit.
func TestPoolCacheWriteThroughAndResume(t *testing.T) {
	specs := smallSweep().Specs()
	cache := newMemCache()

	cold := Pool{Workers: 2, Cache: cache}
	first, err := cold.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != len(specs) {
		t.Fatalf("cache received %d stores, want %d", cache.stores, len(specs))
	}
	for _, r := range first {
		if r.Cached || r.Attempts != 1 {
			t.Fatalf("cold run %s: Cached=%v Attempts=%d, want fresh execution", r.Key, r.Cached, r.Attempts)
		}
	}

	warm := Pool{Workers: 2, Cache: cache, Resume: true}
	second, err := warm.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if cache.stores != len(specs) {
		t.Fatalf("resume re-stored cells: %d stores after warm run", cache.stores)
	}
	for i, r := range second {
		if !r.Cached || r.Attempts != 0 {
			t.Errorf("warm run %s: Cached=%v Attempts=%d, want cache hit", r.Key, r.Cached, r.Attempts)
		}
		if !reflect.DeepEqual(r.TCP, first[i].TCP) {
			t.Errorf("warm run %s: result differs from cold run", r.Key)
		}
	}
}

// failingCache always errors; the sweep must still complete every run and
// surface the first cache error afterwards.
type failingCache struct{}

func (failingCache) Lookup(Spec) (Result, bool, error) { return Result{}, false, nil }
func (failingCache) Store(Spec, Result) error          { return errors.New("disk full") }

func TestCacheFailureDoesNotSinkSweep(t *testing.T) {
	specs := smallSweep().Specs()[:2]
	pool := Pool{Workers: 2, Cache: failingCache{}}
	res, err := pool.Run(context.Background(), specs)
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("expected the cache error surfaced, got %v", err)
	}
	for _, r := range res {
		if r.Err != nil || r.TCP == nil {
			t.Errorf("run %s did not complete despite cache failure: %v", r.Key, r.Err)
		}
	}
}
