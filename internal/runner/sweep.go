package runner

import (
	"fmt"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
)

// Sweep declares a parameter grid — scheme × PHY rate × hop count × seed
// replication — that Specs() enumerates into runnable Specs. Each point's
// seed is DeriveSeed(BaseSeed, key), so regenerating the same sweep with
// the same base seed is bit-identical at any worker count, while distinct
// points (and distinct replications of one point) draw independent
// randomness.
type Sweep struct {
	// Traffic selects the workload: "tcp" (file transfer) or "udp"
	// (saturating datagram stream).
	Traffic string
	Schemes []mac.Scheme
	Rates   []phy.Rate
	Hops    []int
	// Reps is the number of seed replications per grid point (default 1).
	Reps     int
	BaseSeed int64

	// MaxAggBytes caps aggregation (0 = the core default, 5120).
	MaxAggBytes int
	// FileBytes sizes each TCP transfer (0 = core.PaperFileBytes).
	FileBytes int
	// Duration bounds each UDP measurement (0 = the core default).
	Duration time.Duration
	// FloodInterval enables per-node flooding for UDP points.
	FloodInterval time.Duration
	// NoForwardAgg disables forward aggregation on every scheme in the
	// grid (the Figure 14 ablation).
	NoForwardAgg bool
	// BlockAck / AutoAggSize enable the §7 extensions (TCP points only).
	BlockAck    bool
	AutoAggSize bool
	// FixedBroadcastRate pins the broadcast-portion rate (TCP points
	// only); nil broadcasts at the unicast rate.
	FixedBroadcastRate *phy.Rate
}

// Points returns the number of grid points (excluding replications).
func (s Sweep) Points() int { return len(s.Schemes) * len(s.Rates) * len(s.Hops) }

func (s Sweep) reps() int {
	if s.Reps < 1 {
		return 1
	}
	return s.Reps
}

// PointKey names a grid point; replication r of that point has key
// "<PointKey>/rep<r>". Enumeration order is scheme-major, then hops, then
// rate, then replication — the same order Specs returns.
func (s Sweep) PointKey(scheme mac.Scheme, hops int, rate phy.Rate) string {
	return fmt.Sprintf("%s/%s/%dhop/%s", s.Traffic, scheme.Name(), hops, rate)
}

// Specs enumerates the grid in deterministic order.
func (s Sweep) Specs() []Spec {
	specs := make([]Spec, 0, s.Points()*s.reps())
	for _, scheme := range s.Schemes {
		if s.NoForwardAgg {
			scheme.DisableForwardAggregation = true
		}
		for _, hops := range s.Hops {
			for _, rate := range s.Rates {
				for rep := 0; rep < s.reps(); rep++ {
					key := fmt.Sprintf("%s/rep%d", s.PointKey(scheme, hops, rate), rep)
					seed := DeriveSeed(s.BaseSeed, key)
					sp := Spec{Key: key}
					switch s.Traffic {
					case "udp":
						sp.UDP = &core.UDPConfig{
							Scheme: scheme, Rate: rate, Hops: hops,
							MaxAggBytes: s.MaxAggBytes, Duration: s.Duration,
							FloodInterval: s.FloodInterval, Seed: seed,
						}
					default: // "tcp"
						sp.TCP = &core.TCPConfig{
							Scheme: scheme, Rate: rate, Hops: hops,
							MaxAggBytes: s.MaxAggBytes, FileBytes: s.FileBytes,
							BlockAck: s.BlockAck, AutoAggSize: s.AutoAggSize,
							FixedBroadcastRate: s.FixedBroadcastRate,
							Seed:               seed,
						}
					}
					specs = append(specs, sp)
				}
			}
		}
	}
	return specs
}
