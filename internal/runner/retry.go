// Failure classification and the retry policy: the crash-safe execution
// layer re-runs only failures that a retry could plausibly clear (a
// wall-clock watchdog firing on a loaded machine, a context deadline) and
// never failures that are a pure function of the spec (a sim panic, a
// malformed config) — re-running those would reproduce the same error while
// hiding how often it happens. Because every run is a pure function of its
// spec, a retried run is bit-identical to a first-try run: same derived
// seed, same RNG stream, same result (pinned by test).
package runner

import (
	"context"
	"errors"
	"time"

	"aggmac/internal/sim"
)

// ErrClass partitions run failures by whether re-execution could succeed.
type ErrClass int

const (
	// ClassNone: no error.
	ClassNone ErrClass = iota
	// ClassTransient: the run was cut short by wall-clock pressure (wall
	// budget, context deadline) or cancellation; a retry may complete.
	ClassTransient
	// ClassDeterministic: the failure is a function of the spec (panic,
	// validation error); a retry would reproduce it exactly.
	ClassDeterministic
)

func (c ErrClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassTransient:
		return "transient"
	case ClassDeterministic:
		return "deterministic"
	}
	return "unknown"
}

// Classify maps a run error to its class. Wall-budget timeouts keep their
// typed identity through the runner's panic recovery (wrapped with %w), so
// the classification survives message formatting.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var wb *sim.WallBudgetError
	if errors.As(err, &wb) {
		return ClassTransient
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return ClassTransient
	}
	return ClassDeterministic
}

// RetryPolicy bounds re-execution of transient failures with capped
// exponential backoff. The zero value never retries.
type RetryPolicy struct {
	// MaxAttempts is the total execution budget per spec, including the
	// first try; values <= 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Zero values default to 100 ms and
	// 5 s when MaxAttempts enables retries.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep is a test seam; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the wait after the attempt-th execution failed
// (attempt is 1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxB {
			return maxB
		}
	}
	if d > maxB {
		return maxB
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Cache is a durable results store consulted and fed by the Pool (see
// internal/store for the on-disk implementation). Lookup returns the
// previously stored result for a spec's cell; Store persists a completed
// one. Implementations must be safe for concurrent use and must only be
// handed successful results.
type Cache interface {
	Lookup(Spec) (Result, bool, error)
	Store(Spec, Result) error
}
