package runner

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/mac"
	"aggmac/internal/phy"
	"aggmac/internal/traffic"
)

// smallSweep is a cheap grid used across the tests: 8 TCP runs of the
// paper's file transfer.
func smallSweep() Sweep {
	return Sweep{
		Traffic:  "tcp",
		Schemes:  []mac.Scheme{mac.NA, mac.BA},
		Rates:    []phy.Rate{phy.Rate1300k, phy.Rate2600k},
		Hops:     []int{1, 2},
		BaseSeed: 42,
	}
}

func run(t *testing.T, workers int, specs []Spec) []Result {
	t.Helper()
	pool := Pool{Workers: workers}
	res, err := pool.Run(context.Background(), specs)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// TestDeterministicAcrossWorkerCounts is the core contract: the same sweep
// must be bit-identical no matter how many workers execute it.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	specs := smallSweep().Specs()
	base := run(t, 1, specs)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := run(t, workers, specs)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(base))
		}
		for i := range base {
			if got[i].Key != base[i].Key || got[i].Index != base[i].Index {
				t.Errorf("workers=%d result %d: key %q idx %d, want %q %d",
					workers, i, got[i].Key, got[i].Index, base[i].Key, base[i].Index)
			}
			// Full structural equality of the sim outcome, not just the
			// headline metric (Wall is wall-clock and legitimately varies).
			if !reflect.DeepEqual(got[i].TCP, base[i].TCP) {
				t.Errorf("workers=%d result %d (%s): TCP result differs from 1-worker run",
					workers, i, got[i].Key)
			}
		}
	}
}

// TestResultsIndexedBySpecOrder pins that results land at their spec's
// index even though completion order is arbitrary.
func TestResultsIndexedBySpecOrder(t *testing.T) {
	specs := smallSweep().Specs()
	res := run(t, 4, specs)
	for i, r := range res {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Key != specs[i].Key {
			t.Errorf("result %d: key %q, want %q", i, r.Key, specs[i].Key)
		}
		if r.TCP == nil {
			t.Errorf("result %d (%s): missing payload", i, r.Key)
		}
	}
}

// TestCancellationMidSweep cancels after the first completion and checks
// that Run reports the context error, returns promptly, and marks the
// unstarted runs rather than fabricating results for them.
func TestCancellationMidSweep(t *testing.T) {
	sw := smallSweep()
	sw.Reps = 8 // 64 runs: plenty left to cancel
	specs := sw.Specs()

	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	pool := Pool{Workers: 2, OnResult: func(Progress) { once.Do(cancel) }}

	start := time.Now()
	res, err := pool.Run(ctx, specs)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if wall := time.Since(start); wall > 30*time.Second {
		t.Fatalf("cancellation took %v; pool did not stop early", wall)
	}
	if len(res) != len(specs) {
		t.Fatalf("%d results, want %d", len(res), len(specs))
	}
	finished, skipped := 0, 0
	for i, r := range res {
		switch {
		case r.TCP != nil:
			finished++
		case r.Err == context.Canceled:
			skipped++
			if r.Key != specs[i].Key {
				t.Errorf("skipped result %d: key %q, want %q", i, r.Key, specs[i].Key)
			}
		default:
			t.Errorf("result %d (%s): neither finished nor marked cancelled (err=%v)", i, r.Key, r.Err)
		}
	}
	if finished == 0 {
		t.Error("no run finished before cancellation")
	}
	if skipped == 0 {
		t.Error("cancellation skipped nothing; cancel came too late to test anything")
	}
}

func TestMalformedSpecs(t *testing.T) {
	tcp := &core.TCPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Seed: 1}
	udp := &core.UDPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Seed: 1, Duration: time.Second}
	mesh := &core.MeshTCPConfig{Scheme: mac.NA, Rate: phy.Rate1300k, Seed: 1}
	specs := []Spec{
		{Key: "both", TCP: tcp, UDP: udp},
		{Key: "neither"},
		{Key: "tcp+mesh", TCP: tcp, Mesh: mesh},
	}
	res := run(t, 2, specs)
	for i, r := range res {
		if r.Err == nil {
			t.Errorf("spec %d (%s): no error for malformed spec", i, r.Key)
		}
	}
}

// TestMeshSpec: a mesh spec runs through the pool and reports its
// aggregate goodput as the headline metric.
func TestMeshSpec(t *testing.T) {
	mesh := &core.MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 9, Flows: 2,
		FileBytes: 8_000, Seed: 1,
	}
	res := run(t, 1, []Spec{{Key: "mesh", Mesh: mesh}})
	if res[0].Err != nil || res[0].Mesh == nil {
		t.Fatalf("mesh spec failed: %+v", res[0].Err)
	}
	if got := res[0].ThroughputMbps(); got != res[0].Mesh.AggregateMbps || got <= 0 {
		t.Errorf("headline metric %v, aggregate %v", got, res[0].Mesh.AggregateMbps)
	}
}

// TestMeshShardedSpec: the Shards knob rides through the runner into the
// parallel engine, and the result reports which engine ran.
func TestMeshShardedSpec(t *testing.T) {
	mesh := &core.MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 16, Flows: 2,
		FileBytes: 8_000, Seed: 1, Shards: 2,
	}
	res := run(t, 1, []Spec{{Key: "mesh-par", Mesh: mesh}})
	if res[0].Err != nil || res[0].Mesh == nil {
		t.Fatalf("sharded mesh spec failed: %+v", res[0].Err)
	}
	if res[0].Mesh.Shards != 2 {
		t.Errorf("result ran on %d shards, want 2", res[0].Mesh.Shards)
	}
	if res[0].Mesh.FlowsDone != 2 {
		t.Errorf("flows done = %d, want 2", res[0].Mesh.FlowsDone)
	}
}

// TestScenarioSpec: a scenario spec runs through the pool and reports its
// aggregate goodput as the headline metric.
func TestScenarioSpec(t *testing.T) {
	sc := traffic.Scenario{
		Version:   traffic.SchemaVersion,
		Name:      "runner-test",
		DurationS: 20,
		Schemes:   []string{"ba"},
		Topology:  traffic.Topology{Kind: "grid", Nodes: 16},
		Traffic: traffic.Traffic{
			Mode:        traffic.ModeOpen,
			ArrivalRate: 0.5,
			Mix:         []traffic.WeightedModel{{Model: traffic.Model{Kind: traffic.Bulk, Bytes: 10_000}, Weight: 1}},
		},
	}
	spec := Spec{Key: "scn", Scenario: &core.ScenarioConfig{Scenario: sc, Scheme: mac.BA, Seed: 1}}
	res := run(t, 1, []Spec{spec})
	if res[0].Err != nil || res[0].Scenario == nil {
		t.Fatalf("scenario spec failed: %+v", res[0].Err)
	}
	if got := res[0].ThroughputMbps(); got != res[0].Scenario.AggregateMbps || got <= 0 {
		t.Errorf("headline metric %v, aggregate %v", got, res[0].Scenario.AggregateMbps)
	}
	if res[0].Scenario.FlowsCompleted == 0 {
		t.Error("no flow completed through the pool")
	}
}

// TestPanicIsolated checks a run that panics (invalid PHY rate indexes out
// of the rate table) reports via Result.Err without sinking the sweep.
func TestPanicIsolated(t *testing.T) {
	good := &core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate1300k, Hops: 1, Seed: 1}
	bad := &core.TCPConfig{Scheme: mac.BA, Rate: phy.Rate(99), Hops: 1, Seed: 1}
	res := run(t, 2, []Spec{{Key: "bad", TCP: bad}, {Key: "good", TCP: good}})
	if res[0].Err == nil {
		t.Error("panicking run reported no error")
	}
	if res[0].TCP != nil {
		t.Error("panicking run still carries a result")
	}
	if res[1].Err != nil || res[1].TCP == nil {
		t.Errorf("healthy run poisoned by neighbour: err=%v", res[1].Err)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(1, "a") != DeriveSeed(1, "a") {
		t.Error("DeriveSeed is not a pure function")
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("distinct keys produced the same seed")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("distinct base seeds produced the same seed")
	}
	// Golden value: the derivation is part of the reproducibility contract,
	// so a silent change would invalidate recorded sweeps.
	if got := DeriveSeed(1, "tcp/BA/2hop/1.3Mbps/rep0"); got != -1472220571153441843 {
		t.Errorf("DeriveSeed golden value changed: %d", got)
	}
}

func TestSweepSpecsShape(t *testing.T) {
	sw := smallSweep()
	sw.Reps = 3
	specs := sw.Specs()
	if want := sw.Points() * 3; len(specs) != want {
		t.Fatalf("%d specs, want %d", len(specs), want)
	}
	seen := map[string]bool{}
	seeds := map[int64]int{}
	for _, s := range specs {
		if seen[s.Key] {
			t.Errorf("duplicate key %q", s.Key)
		}
		seen[s.Key] = true
		if s.TCP == nil {
			t.Fatalf("spec %q: tcp sweep produced no TCP config", s.Key)
		}
		if s.TCP.Seed != DeriveSeed(sw.BaseSeed, s.Key) {
			t.Errorf("spec %q: seed %d not derived from base seed", s.Key, s.TCP.Seed)
		}
		seeds[s.TCP.Seed]++
	}
	if len(seeds) != len(specs) {
		t.Errorf("seed collisions: %d distinct seeds for %d specs", len(seeds), len(specs))
	}
	// Enumeration order must itself be deterministic.
	again := sw.Specs()
	for i := range specs {
		if specs[i].Key != again[i].Key {
			t.Fatalf("enumeration order unstable at %d: %q vs %q", i, specs[i].Key, again[i].Key)
		}
	}
}

// TestSweepModifierFlags pins that scheme-level ablations and TCP
// extensions reach every generated spec (a silently-dropped modifier
// would yield plausible-looking but wrong sweep data).
func TestSweepModifierFlags(t *testing.T) {
	br := phy.Rate650k
	sw := smallSweep()
	sw.NoForwardAgg = true
	sw.BlockAck = true
	sw.AutoAggSize = true
	sw.FixedBroadcastRate = &br
	for _, s := range sw.Specs() {
		if !s.TCP.Scheme.DisableForwardAggregation {
			t.Errorf("spec %q: NoForwardAgg not applied", s.Key)
		}
		if !s.TCP.BlockAck || !s.TCP.AutoAggSize {
			t.Errorf("spec %q: extensions not applied", s.Key)
		}
		if s.TCP.FixedBroadcastRate == nil || *s.TCP.FixedBroadcastRate != br {
			t.Errorf("spec %q: FixedBroadcastRate not applied", s.Key)
		}
	}
	udp := sw
	udp.Traffic = "udp"
	udp.Duration = time.Second
	for _, s := range udp.Specs() {
		if !s.UDP.Scheme.DisableForwardAggregation {
			t.Errorf("udp spec %q: NoForwardAgg not applied", s.Key)
		}
	}
}

func TestProgressCounts(t *testing.T) {
	specs := smallSweep().Specs()
	var mu sync.Mutex
	var dones []int
	pool := Pool{Workers: 4, OnResult: func(p Progress) {
		mu.Lock()
		dones = append(dones, p.Done)
		if p.Total != len(specs) {
			t.Errorf("progress total %d, want %d", p.Total, len(specs))
		}
		mu.Unlock()
	}}
	if _, err := pool.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(specs) {
		t.Fatalf("%d progress callbacks for %d runs", len(dones), len(specs))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("Done sequence not monotone: %v", dones)
		}
	}
}

// TestMobileMeshSpecDeterministicAcrossWorkers: a mobility-enabled mesh
// spec — time-varying links, periodic route recomputation — is still a
// pure function of its config, bit-identical at any worker count.
func TestMobileMeshSpecDeterministicAcrossWorkers(t *testing.T) {
	specs := func() []Spec {
		var out []Spec
		for _, speed := range []float64{1, 4} {
			out = append(out, Spec{
				Key: "mob", Mesh: &core.MeshTCPConfig{
					Scheme: mac.BA, Rate: phy.Rate2600k,
					Topology: core.MeshGrid, Nodes: 16, Flows: 2,
					Mobility: core.MobilityWaypoint, Speed: speed,
					MoveInterval: 500 * time.Millisecond,
					FileBytes:    10_000, Seed: 1,
					Deadline: 600 * time.Second,
				},
			})
		}
		return out
	}
	base := run(t, 1, specs())
	got := run(t, 2, specs())
	for i := range base {
		if base[i].Err != nil || got[i].Err != nil {
			t.Fatalf("run %d failed: %v / %v", i, base[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(base[i].Mesh, got[i].Mesh) {
			t.Errorf("run %d: mobile mesh result differs between 1 and 2 workers", i)
		}
		if base[i].Mesh.RouteRecomputes == 0 {
			t.Errorf("run %d: mobility never ticked", i)
		}
	}
}

// TestSpecTimeout: a hung run fails loudly instead of wedging the sweep —
// the wall-clock watchdog converts it into a per-run error naming the
// budget — while a generous timeout changes nothing about the result.
func TestSpecTimeout(t *testing.T) {
	mesh := &core.MeshTCPConfig{
		Scheme: mac.BA, Rate: phy.Rate2600k,
		Topology: core.MeshGrid, Nodes: 9, Flows: 2,
		FileBytes: 8_000, Seed: 1,
	}
	res := run(t, 1, []Spec{
		{Key: "hung", Mesh: mesh, Timeout: time.Nanosecond},
		{Key: "fine", Mesh: mesh, Timeout: time.Hour},
		{Key: "plain", Mesh: mesh},
	})
	if res[0].Err == nil || res[0].Mesh != nil {
		t.Fatalf("1 ns timeout did not fail the run: %+v", res[0])
	}
	if !strings.Contains(res[0].Err.Error(), "wall-clock budget") {
		t.Errorf("timeout error does not name the budget: %v", res[0].Err)
	}
	if res[1].Err != nil || res[2].Err != nil {
		t.Fatalf("later specs affected: %v / %v", res[1].Err, res[2].Err)
	}
	if !reflect.DeepEqual(res[1].Mesh, res[2].Mesh) {
		t.Error("an unfired timeout changed the run's result")
	}
}
