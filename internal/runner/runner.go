// Package runner executes declarative sets of simulation runs across a
// worker pool. An experiment (or a CLI sweep) describes its run matrix as a
// slice of Specs — scheme × PHY rate × topology × traffic × seed — and the
// Pool fans the independent, deterministic simulations across workers.
//
// Determinism contract: every run's outcome is a pure function of its
// config (each sim owns its scheduler and seeded random source, and shares
// no mutable state with other runs), and results are returned indexed by
// spec position. A sweep therefore produces bit-identical output no matter
// how many workers execute it or in which order runs complete. Per-run
// seeds for generated grids come from DeriveSeed, a pure function of the
// base seed and the run's key.
package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/sim"
	"aggmac/internal/telemetry"
	"aggmac/internal/traffic"
)

// Spec is one declarative simulation run: a stable key (identity for seed
// derivation and progress display) plus exactly one traffic config.
type Spec struct {
	Key      string
	TCP      *core.TCPConfig
	UDP      *core.UDPConfig
	Mesh     *core.MeshTCPConfig
	Scenario *core.ScenarioConfig
	// Timeout, when positive, bounds the run's wall-clock time: a run that
	// exceeds it fails loudly with a *sim.WallBudgetError in Result.Err
	// instead of hanging its worker (and with it the whole sweep). Applied
	// to Mesh and Scenario runs; the fixed-duration TCP/UDP point runs
	// ignore it. The watchdog never affects what a surviving run computes.
	Timeout time.Duration
}

// Result is one completed run, indexed by its spec's position.
type Result struct {
	Index    int
	Key      string
	TCP      *core.TCPResult
	UDP      *core.UDPResult
	Mesh     *core.MeshResult
	Scenario *core.ScenarioResult
	// Wall is the wall-clock cost of this run (not simulated time).
	Wall time.Duration
	// Err is non-nil when the spec was malformed, the sim panicked, or the
	// sweep was cancelled before this run started. Classify(Err) (also
	// exposed as ErrClass) separates transient failures — wall-budget
	// timeouts a retry could clear — from deterministic ones.
	Err error
	// Attempts counts how many times the spec executed: 1 for a first-try
	// success or a deterministic failure, >1 when transient failures were
	// retried, 0 when the result was served from the cache.
	Attempts int
	// Cached reports the result was served from the Pool's Cache without
	// executing; Wall is then ~0 and Attempts 0.
	Cached bool
}

// ErrClass classifies the result's error (see Classify).
func (r Result) ErrClass() ErrClass { return Classify(r.Err) }

// ThroughputMbps returns the run's headline metric: end-to-end TCP goodput,
// UDP sink goodput, or a mesh run's aggregate goodput across its flows.
func (r Result) ThroughputMbps() float64 {
	switch {
	case r.TCP != nil:
		return r.TCP.ThroughputMbps
	case r.UDP != nil:
		return r.UDP.ThroughputMbps
	case r.Mesh != nil:
		return r.Mesh.AggregateMbps
	case r.Scenario != nil:
		return r.Scenario.AggregateMbps
	}
	return 0
}

// Progress reports one completed run. Done counts completions so far, so a
// reporter can render "[Done/Total] Key".
type Progress struct {
	Done  int
	Total int
	Index int
	Key   string
	Wall  time.Duration
	// Cached and Attempts mirror the completed Result, so reporters (and
	// the CLIs' resume summaries) can distinguish cache hits and retried
	// cells without holding the results slice.
	Cached   bool
	Attempts int
	// Elapsed is the wall time since the sweep started, measured when this
	// completion was reported, so reporters can derive a completion rate
	// and an ETA. Zero only for reporters invoked outside Pool.Run.
	Elapsed time.Duration
}

// StderrProgress is the standard per-run progress reporter the CLIs wire
// to -progress: one "[done/total] key (wall)" line per completed run, with
// a sweep-level rate and ETA once the pool supplies elapsed wall time.
func StderrProgress(p Progress) {
	var rate string
	if p.Elapsed > 0 && p.Done > 0 {
		rps := float64(p.Done) / p.Elapsed.Seconds()
		eta := time.Duration(float64(p.Total-p.Done) / rps * float64(time.Second))
		rate = fmt.Sprintf(" [%.1f runs/s, eta %v]", rps, eta.Round(time.Second))
	}
	if p.Cached {
		fmt.Fprintf(os.Stderr, "[%d/%d] %s (cached)%s\n", p.Done, p.Total, p.Key, rate)
		return
	}
	fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)%s\n", p.Done, p.Total, p.Key, p.Wall.Round(time.Millisecond), rate)
}

// Pool executes specs across Workers goroutines.
type Pool struct {
	// Workers is the concurrency cap; <=0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, is called after each run completes, in completion
	// order. Calls are serialized; the callback must not block for long.
	OnResult func(Progress)
	// Cache, when set, receives every successful result as it completes —
	// durably, before the sweep moves on, so a killed sweep keeps its
	// finished cells. With Resume also set, Cache is consulted before
	// executing and hits skip execution entirely.
	Cache Cache
	// Resume enables cache lookups (Cache writes happen regardless).
	Resume bool
	// Retry re-executes transient failures (wall-budget timeouts, context
	// deadlines) with capped exponential backoff; the zero value never
	// retries. Retried runs are bit-identical to first-try runs: the spec —
	// and with it the derived seed — never changes between attempts.
	Retry RetryPolicy
	// Telemetry, when set, receives sweep-level counters (runner.runs,
	// runner.cache_hits, runner.retries). Counters are atomic, so one
	// registry may be shared by all workers; nil disables the accounting.
	Telemetry *telemetry.Registry

	// execute is a test seam for fault injection; nil means runOne.
	execute func(int, Spec) Result
}

func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every spec and returns results in spec order. The slice
// always has len(specs) entries; on cancellation the unstarted entries
// carry ctx's error, and Run's own error is ctx.Err(). Individual run
// failures (malformed spec, sim panic) land in Result.Err, not in Run's
// error, so one bad cell cannot sink a sweep. A failing Cache is also not
// allowed to sink the sweep: every run still executes, and the first cache
// error is returned after completion so callers can fail loudly.
func (p *Pool) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results, ctx.Err()
	}

	// Nil-receiver handles make the increments below unconditional: with no
	// Telemetry registry each Add is a single predictable branch.
	runs := p.Telemetry.Counter("runner.runs")
	cacheHits := p.Telemetry.Counter("runner.cache_hits")
	retries := p.Telemetry.Counter("runner.retries")
	start := time.Now()

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range specs {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	var cacheErr error
	var cacheErrOnce sync.Once
	noteCacheErr := func(err error) { cacheErrOnce.Do(func() { cacheErr = err }) }
	for w := p.workers(len(specs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					return
				}
				results[i] = p.runSpec(ctx, i, specs[i], noteCacheErr)
				runs.Add(1)
				if results[i].Cached {
					cacheHits.Add(1)
				}
				if results[i].Attempts > 1 {
					retries.Add(uint64(results[i].Attempts - 1))
				}
				// Flush the completed cell durably before reporting it, so
				// a kill at any point loses at most the in-flight runs.
				if p.Cache != nil && results[i].Err == nil && !results[i].Cached {
					if err := p.Cache.Store(specs[i], results[i]); err != nil {
						noteCacheErr(err)
					}
				}
				if p.OnResult != nil {
					mu.Lock()
					done++
					p.OnResult(Progress{Done: done, Total: len(specs),
						Index: i, Key: specs[i].Key, Wall: results[i].Wall,
						Cached: results[i].Cached, Attempts: results[i].Attempts,
						Elapsed: time.Since(start)})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			r := &results[i]
			if r.TCP == nil && r.UDP == nil && r.Mesh == nil && r.Scenario == nil && r.Err == nil {
				results[i] = Result{Index: i, Key: specs[i].Key, Err: err}
			}
		}
		return results, err
	}
	if cacheErr != nil {
		return results, fmt.Errorf("runner: results cache: %w", cacheErr)
	}
	return results, nil
}

// runSpec serves one spec from the cache when allowed, otherwise executes
// it, retrying transient failures under the pool's policy. The spec — and
// with it the derived seed — is identical on every attempt, so a retried
// run reproduces the first attempt's result bit for bit.
func (p *Pool) runSpec(ctx context.Context, i int, s Spec, noteCacheErr func(error)) Result {
	if p.Cache != nil && p.Resume {
		switch r, ok, err := p.Cache.Lookup(s); {
		case err != nil:
			noteCacheErr(err)
		case ok:
			r.Index = i
			r.Key = s.Key
			r.Cached = true
			r.Attempts = 0
			r.Wall = 0
			return r
		}
	}
	exec := p.execute
	if exec == nil {
		exec = runOne
	}
	var res Result
	for attempt := 1; ; attempt++ {
		res = exec(i, s)
		res.Attempts = attempt
		if res.Err == nil || Classify(res.Err) != ClassTransient ||
			attempt >= p.Retry.maxAttempts() || ctx.Err() != nil {
			return res
		}
		p.Retry.sleep(p.Retry.backoff(attempt))
	}
}

// runOne executes a single spec, converting panics into Result.Err so a
// diverging cell reports instead of killing the whole sweep. Error panic
// values are wrapped with %w, so a wall-budget timeout keeps its typed
// identity (*sim.WallBudgetError) and classifies as transient; and a panic
// recovered after an error was already recorded appends to it rather than
// overwriting it — a later watchdog fire can never silently eat the
// original message.
func runOne(i int, s Spec) (res Result) {
	start := time.Now()
	res = Result{Index: i, Key: s.Key}
	defer func() {
		res.Wall = time.Since(start)
		r := recover()
		if r == nil {
			return
		}
		res.TCP, res.UDP, res.Mesh, res.Scenario = nil, nil, nil, nil
		if res.Err != nil {
			// Keep the first error primary (it drives classification);
			// record the panic alongside instead of replacing it.
			res.Err = fmt.Errorf("%w (followed by panic: %v)", res.Err, r)
			return
		}
		if err, ok := r.(error); ok {
			var wb *sim.WallBudgetError
			if errors.As(err, &wb) {
				res.Err = fmt.Errorf("runner: run %q timed out: %w", s.Key, err)
			} else {
				res.Err = fmt.Errorf("runner: run %q panicked: %w", s.Key, err)
			}
			return
		}
		res.Err = fmt.Errorf("runner: run %q panicked: %v", s.Key, r)
	}()
	set := 0
	for _, present := range []bool{s.TCP != nil, s.UDP != nil, s.Mesh != nil, s.Scenario != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		res.Err = fmt.Errorf("runner: spec %q must set exactly one of TCP, UDP, Mesh or Scenario", s.Key)
		return res
	}
	switch {
	case s.TCP != nil:
		r := core.RunTCP(*s.TCP)
		res.TCP = &r
	case s.UDP != nil:
		r := core.RunUDP(*s.UDP)
		res.UDP = &r
	case s.Mesh != nil:
		cfg := *s.Mesh
		if s.Timeout > 0 && cfg.WallBudget == 0 {
			cfg.WallBudget = s.Timeout
		}
		r := core.RunMeshTCP(cfg)
		res.Mesh = &r
	default:
		cfg := *s.Scenario
		if s.Timeout > 0 && cfg.WallBudget == 0 {
			cfg.WallBudget = s.Timeout
		}
		r := core.RunScenario(cfg)
		res.Scenario = &r
	}
	return res
}

// DeriveSeed maps (base seed, run key) to a per-run seed. It is a pure
// function, so the seed a run gets never depends on worker count or
// completion order — only on the sweep's base seed and the run's identity.
// The implementation lives in internal/traffic, which applies the same
// discipline to per-flow random streams; this alias keeps the runner's
// historical call sites (and derived seeds) unchanged.
func DeriveSeed(base int64, key string) int64 { return traffic.DeriveSeed(base, key) }
