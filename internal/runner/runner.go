// Package runner executes declarative sets of simulation runs across a
// worker pool. An experiment (or a CLI sweep) describes its run matrix as a
// slice of Specs — scheme × PHY rate × topology × traffic × seed — and the
// Pool fans the independent, deterministic simulations across workers.
//
// Determinism contract: every run's outcome is a pure function of its
// config (each sim owns its scheduler and seeded random source, and shares
// no mutable state with other runs), and results are returned indexed by
// spec position. A sweep therefore produces bit-identical output no matter
// how many workers execute it or in which order runs complete. Per-run
// seeds for generated grids come from DeriveSeed, a pure function of the
// base seed and the run's key.
package runner

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/traffic"
)

// Spec is one declarative simulation run: a stable key (identity for seed
// derivation and progress display) plus exactly one traffic config.
type Spec struct {
	Key      string
	TCP      *core.TCPConfig
	UDP      *core.UDPConfig
	Mesh     *core.MeshTCPConfig
	Scenario *core.ScenarioConfig
	// Timeout, when positive, bounds the run's wall-clock time: a run that
	// exceeds it fails loudly with a *sim.WallBudgetError in Result.Err
	// instead of hanging its worker (and with it the whole sweep). Applied
	// to Mesh and Scenario runs; the fixed-duration TCP/UDP point runs
	// ignore it. The watchdog never affects what a surviving run computes.
	Timeout time.Duration
}

// Result is one completed run, indexed by its spec's position.
type Result struct {
	Index    int
	Key      string
	TCP      *core.TCPResult
	UDP      *core.UDPResult
	Mesh     *core.MeshResult
	Scenario *core.ScenarioResult
	// Wall is the wall-clock cost of this run (not simulated time).
	Wall time.Duration
	// Err is non-nil when the spec was malformed, the sim panicked, or the
	// sweep was cancelled before this run started.
	Err error
}

// ThroughputMbps returns the run's headline metric: end-to-end TCP goodput,
// UDP sink goodput, or a mesh run's aggregate goodput across its flows.
func (r Result) ThroughputMbps() float64 {
	switch {
	case r.TCP != nil:
		return r.TCP.ThroughputMbps
	case r.UDP != nil:
		return r.UDP.ThroughputMbps
	case r.Mesh != nil:
		return r.Mesh.AggregateMbps
	case r.Scenario != nil:
		return r.Scenario.AggregateMbps
	}
	return 0
}

// Progress reports one completed run. Done counts completions so far, so a
// reporter can render "[Done/Total] Key".
type Progress struct {
	Done  int
	Total int
	Index int
	Key   string
	Wall  time.Duration
}

// StderrProgress is the standard per-run progress reporter the CLIs wire
// to -progress: one "[done/total] key (wall)" line per completed run.
func StderrProgress(p Progress) {
	fmt.Fprintf(os.Stderr, "[%d/%d] %s (%v)\n", p.Done, p.Total, p.Key, p.Wall.Round(time.Millisecond))
}

// Pool executes specs across Workers goroutines.
type Pool struct {
	// Workers is the concurrency cap; <=0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, is called after each run completes, in completion
	// order. Calls are serialized; the callback must not block for long.
	OnResult func(Progress)
}

func (p *Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes every spec and returns results in spec order. The slice
// always has len(specs) entries; on cancellation the unstarted entries
// carry ctx's error, and Run's own error is ctx.Err(). Individual run
// failures (malformed spec, sim panic) land in Result.Err, not in Run's
// error, so one bad cell cannot sink a sweep.
func (p *Pool) Run(ctx context.Context, specs []Spec) ([]Result, error) {
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results, ctx.Err()
	}

	idxCh := make(chan int)
	go func() {
		defer close(idxCh)
		for i := range specs {
			select {
			case idxCh <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := p.workers(len(specs)); w > 0; w-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctx.Err() != nil {
					return
				}
				results[i] = runOne(i, specs[i])
				if p.OnResult != nil {
					mu.Lock()
					done++
					p.OnResult(Progress{Done: done, Total: len(specs),
						Index: i, Key: specs[i].Key, Wall: results[i].Wall})
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range results {
			r := &results[i]
			if r.TCP == nil && r.UDP == nil && r.Mesh == nil && r.Scenario == nil && r.Err == nil {
				results[i] = Result{Index: i, Key: specs[i].Key, Err: err}
			}
		}
		return results, err
	}
	return results, nil
}

// runOne executes a single spec, converting panics into Result.Err so a
// diverging cell reports instead of killing the whole sweep.
func runOne(i int, s Spec) (res Result) {
	start := time.Now()
	res = Result{Index: i, Key: s.Key}
	defer func() {
		res.Wall = time.Since(start)
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("runner: run %q panicked: %v", s.Key, r)
			res.TCP, res.UDP, res.Mesh, res.Scenario = nil, nil, nil, nil
		}
	}()
	set := 0
	for _, present := range []bool{s.TCP != nil, s.UDP != nil, s.Mesh != nil, s.Scenario != nil} {
		if present {
			set++
		}
	}
	if set != 1 {
		res.Err = fmt.Errorf("runner: spec %q must set exactly one of TCP, UDP, Mesh or Scenario", s.Key)
		return res
	}
	switch {
	case s.TCP != nil:
		r := core.RunTCP(*s.TCP)
		res.TCP = &r
	case s.UDP != nil:
		r := core.RunUDP(*s.UDP)
		res.UDP = &r
	case s.Mesh != nil:
		cfg := *s.Mesh
		if s.Timeout > 0 && cfg.WallBudget == 0 {
			cfg.WallBudget = s.Timeout
		}
		r := core.RunMeshTCP(cfg)
		res.Mesh = &r
	default:
		cfg := *s.Scenario
		if s.Timeout > 0 && cfg.WallBudget == 0 {
			cfg.WallBudget = s.Timeout
		}
		r := core.RunScenario(cfg)
		res.Scenario = &r
	}
	return res
}

// DeriveSeed maps (base seed, run key) to a per-run seed. It is a pure
// function, so the seed a run gets never depends on worker count or
// completion order — only on the sweep's base seed and the run's identity.
// The implementation lives in internal/traffic, which applies the same
// discipline to per-flow random streams; this alias keeps the runner's
// historical call sites (and derived seeds) unchanged.
func DeriveSeed(base int64, key string) int64 { return traffic.DeriveSeed(base, key) }
