package runner

import (
	"context"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"aggmac/internal/core"
	"aggmac/internal/telemetry"
)

// TestProgressElapsed: every progress report carries positive, monotone
// sweep-elapsed wall time.
func TestProgressElapsed(t *testing.T) {
	var mu sync.Mutex
	var elapsed []time.Duration
	pool := Pool{
		Workers: 2,
		OnResult: func(p Progress) {
			mu.Lock()
			elapsed = append(elapsed, p.Elapsed)
			mu.Unlock()
		},
		execute: func(i int, s Spec) Result {
			return Result{Index: i, Key: s.Key, TCP: &core.TCPResult{ThroughputMbps: 1}}
		},
	}
	specs := []Spec{{Key: "a"}, {Key: "b"}, {Key: "c"}}
	if _, err := pool.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if len(elapsed) != len(specs) {
		t.Fatalf("%d progress reports for %d specs", len(elapsed), len(specs))
	}
	for i, e := range elapsed {
		if e <= 0 {
			t.Fatalf("report %d: Elapsed = %v, want > 0", i, e)
		}
		if i > 0 && e < elapsed[i-1] {
			t.Fatalf("Elapsed not monotone under the progress lock: %v", elapsed)
		}
	}
}

// TestPoolTelemetryCounters: the pool's shared registry counts runs, cache
// hits and retry attempts across workers.
func TestPoolTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRecorder(time.Second).Registry(0)
	attempt := map[string]int{}
	var mu sync.Mutex
	pool := Pool{
		Workers:   3,
		Telemetry: reg,
		Retry:     RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
		execute: func(i int, s Spec) Result {
			mu.Lock()
			attempt[s.Key]++
			n := attempt[s.Key]
			mu.Unlock()
			if s.Key == "flaky" && n == 1 {
				return Result{Index: i, Key: s.Key, Err: transientErr()}
			}
			return Result{Index: i, Key: s.Key, TCP: &core.TCPResult{ThroughputMbps: 1}}
		},
	}
	specs := []Spec{{Key: "a"}, {Key: "flaky"}, {Key: "c"}, {Key: "d"}}
	if _, err := pool.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("runner.runs").Value(); got != 4 {
		t.Errorf("runner.runs = %d, want 4", got)
	}
	if got := reg.Counter("runner.retries").Value(); got != 1 {
		t.Errorf("runner.retries = %d, want 1", got)
	}
	if got := reg.Counter("runner.cache_hits").Value(); got != 0 {
		t.Errorf("runner.cache_hits = %d, want 0", got)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what it wrote.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestStderrProgressFormats: the reporter keeps its historical line shape
// when Elapsed is zero and appends rate/ETA when the pool supplies it.
func TestStderrProgressFormats(t *testing.T) {
	p := Progress{Done: 2, Total: 8, Key: "cell", Wall: 120 * time.Millisecond}
	if got := captureStderr(t, func() { StderrProgress(p) }); got != "[2/8] cell (120ms)\n" {
		t.Errorf("no-elapsed line = %q", got)
	}
	p.Elapsed = 4 * time.Second
	got := captureStderr(t, func() { StderrProgress(p) })
	if want := "[2/8] cell (120ms) [0.5 runs/s, eta 12s]\n"; got != want {
		t.Errorf("rate line = %q, want %q", got, want)
	}
	p.Cached = true
	got = captureStderr(t, func() { StderrProgress(p) })
	if want := "[2/8] cell (cached) [0.5 runs/s, eta 12s]\n"; got != want {
		t.Errorf("cached line = %q, want %q", got, want)
	}
}
